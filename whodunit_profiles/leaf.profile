whodunit-profile 1
stage leaf
bytes 0 0
cct 0#1
node 1 0 run_query 107 160000000 4
cct 4#1
node 1 0 run_query 15 24000000 6
end
