whodunit-profile 1
stage middle
bytes 0 0
cct 0
node 1 0 business_logic 15 20000000 4
cct 4
node 1 0 business_logic 18 30000000 6
end
