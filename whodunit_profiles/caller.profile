whodunit-profile 1
stage caller
bytes 0 0
cct -
node 1 0 search 7 8000000 4
node 2 0 browse 6 12000000 6
end
