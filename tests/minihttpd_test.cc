// Integration tests for the Apache stand-in: the §8.1 validation that
// transaction flow through shared memory is detected in the web server
// and (correctly) not detected in MySQL-like traffic.
#include "src/apps/minihttpd/minihttpd.h"

#include <gtest/gtest.h>

namespace whodunit::apps {
namespace {

MinihttpdOptions SmallRun(callpath::ProfilerMode mode) {
  MinihttpdOptions o;
  o.mode = mode;
  o.workers = 4;
  o.clients = 16;
  o.duration = sim::Seconds(4);
  o.seed = 7;
  return o;
}

TEST(MinihttpdTest, ServesTrafficAndDetectsQueueFlow) {
  MinihttpdResult r = RunMinihttpd(SmallRun(callpath::ProfilerMode::kWhodunit));
  EXPECT_GT(r.requests, 100u);
  EXPECT_GT(r.connections, 20u);
  EXPECT_GT(r.throughput_mbps, 1.0);
  // The paper's central claim for Apache: the listener->worker flow
  // through ap_queue_push/ap_queue_pop is detected.
  EXPECT_TRUE(r.queue_flow_detected);
  EXPECT_GT(r.flows_detected, 20u);
  // And the pooled allocator is recognized as NOT transaction flow.
  EXPECT_TRUE(r.allocator_demoted);
  EXPECT_GT(r.critical_sections_emulated, 0u);
}

TEST(MinihttpdTest, WorkerCpuDominatesListener) {
  // Figure 8: the listener's own context is a small share (~2.4%);
  // almost all CPU is consumed in worker contexts adopted through the
  // queue (ap_process_connection/sendfile).
  MinihttpdResult r = RunMinihttpd(SmallRun(callpath::ProfilerMode::kWhodunit));
  EXPECT_LT(r.listener_context_share, 20.0);
  EXPECT_GT(r.worker_context_share, 80.0);
  // The profile names the expected procedures.
  EXPECT_NE(r.profile_text.find("ap_queue_push"), std::string::npos);
  EXPECT_NE(r.profile_text.find("ap_process_connection"), std::string::npos);
  EXPECT_NE(r.profile_text.find("sendfile"), std::string::npos);
}

TEST(MinihttpdTest, NoProfilingModeStillServes) {
  MinihttpdResult r = RunMinihttpd(SmallRun(callpath::ProfilerMode::kNone));
  EXPECT_GT(r.requests, 100u);
  EXPECT_EQ(r.flows_detected, 0u);
  EXPECT_EQ(r.critical_sections_emulated, 0u);
}

TEST(MinihttpdTest, WhodunitOverheadIsSmall) {
  // §9.2: Whodunit costs ~2.3% of Apache's peak throughput. Assert
  // the overhead is small but the profiled run is not faster.
  MinihttpdResult off = RunMinihttpd(SmallRun(callpath::ProfilerMode::kNone));
  MinihttpdResult on = RunMinihttpd(SmallRun(callpath::ProfilerMode::kWhodunit));
  EXPECT_LE(on.throughput_mbps, off.throughput_mbps * 1.005);
  EXPECT_GT(on.throughput_mbps, off.throughput_mbps * 0.85);
}

TEST(MinihttpdTest, DeterministicForSameSeed) {
  MinihttpdResult a = RunMinihttpd(SmallRun(callpath::ProfilerMode::kWhodunit));
  MinihttpdResult b = RunMinihttpd(SmallRun(callpath::ProfilerMode::kWhodunit));
  EXPECT_EQ(a.requests, b.requests);
  EXPECT_EQ(a.bytes_served, b.bytes_served);
  EXPECT_EQ(a.flows_detected, b.flows_detected);
  EXPECT_DOUBLE_EQ(a.throughput_mbps, b.throughput_mbps);
}

TEST(MinihttpdTest, PersistentConnectionsNeedAlmostNoEmulation) {
  // §9.2: "if all connections are persistent and no new connections
  // are established, Whodunit does not need to emulate any code [for
  // the queue], and the application can proceed in direct execution
  // mode without any overhead."
  MinihttpdOptions churn = SmallRun(callpath::ProfilerMode::kWhodunit);
  churn.workers = 8;
  churn.clients = 8;
  MinihttpdResult churn_r = RunMinihttpd(churn);

  MinihttpdOptions persistent = churn;
  persistent.persistent_connections = true;
  MinihttpdResult pers_r = RunMinihttpd(persistent);

  // One queue flow per client (the initial connection), instead of one
  // per connection of a churning workload.
  EXPECT_LE(pers_r.connections, 8u);
  EXPECT_LT(pers_r.flows_detected, churn_r.flows_detected / 10);
  EXPECT_GT(pers_r.requests, 1000u);
}

TEST(MysqlValidationTest, NoTransactionFlowInMysql) {
  // §8.1: "Our algorithm detects no transaction flow in MySQL.
  // Whodunit detects a shared counter in MySQL, but correctly deduces
  // that it does not constitute transaction flow."
  MysqlShmValidationResult r = RunMysqlShmValidation();
  EXPECT_EQ(r.flows_detected, 0u);
  // The table resource is demoted once threads appear on both sides.
  EXPECT_TRUE(r.table_lock_demoted);
  EXPECT_GT(r.critical_sections_run, 100u);
}

TEST(MysqlValidationTest, DeterministicAcrossSeeds) {
  for (uint64_t seed : {1ull, 2ull, 3ull}) {
    MysqlShmValidationResult r = RunMysqlShmValidation(4, 200, seed);
    EXPECT_EQ(r.flows_detected, 0u) << "seed " << seed;
  }
}

}  // namespace
}  // namespace whodunit::apps
