#include "src/workload/tpcw.h"

#include <gtest/gtest.h>

#include <map>

#include "src/workload/calibration.h"

namespace whodunit::workload {
namespace {

TEST(TpcwTest, MixPercentsSumToHundred) {
  double total = 0;
  for (int i = 0; i < kTpcwTransactionCount; ++i) {
    total += BrowsingMixPercent(static_cast<TpcwTransaction>(i));
  }
  EXPECT_NEAR(total, 100.0, 1e-9);
}

TEST(TpcwTest, SamplerMatchesMix) {
  util::Rng rng(123);
  std::map<TpcwTransaction, int> counts;
  const int n = 200000;
  for (int i = 0; i < n; ++i) {
    ++counts[SampleBrowsingMix(rng)];
  }
  EXPECT_NEAR(counts[TpcwTransaction::kHome] * 100.0 / n, 29.0, 0.5);
  EXPECT_NEAR(counts[TpcwTransaction::kBestSellers] * 100.0 / n, 11.0, 0.5);
  EXPECT_NEAR(counts[TpcwTransaction::kProductDetail] * 100.0 / n, 21.0, 0.5);
  // Rare transactions occur but rarely.
  EXPECT_GT(counts[TpcwTransaction::kAdminConfirm], 0);
  EXPECT_LT(counts[TpcwTransaction::kAdminConfirm] * 100.0 / n, 0.3);
}

TEST(TpcwTest, NamesUniqueAndStable) {
  std::map<std::string, int> names;
  for (int i = 0; i < kTpcwTransactionCount; ++i) {
    ++names[TpcwName(static_cast<TpcwTransaction>(i))];
  }
  EXPECT_EQ(names.size(), static_cast<size_t>(kTpcwTransactionCount));
  EXPECT_EQ(names.count("BestSellers"), 1u);
}

TEST(TpcwTest, CacheabilityPerSpec) {
  EXPECT_TRUE(IsCacheable(TpcwTransaction::kBestSellers));
  EXPECT_TRUE(IsCacheable(TpcwTransaction::kSearchResult));
  EXPECT_FALSE(IsCacheable(TpcwTransaction::kHome));
  EXPECT_FALSE(IsCacheable(TpcwTransaction::kAdminConfirm));
}

TEST(TpcwTest, AdminConfirmWritesItem) {
  util::Rng rng(7);
  db::Query q = TpcwQuery(TpcwTransaction::kAdminConfirm, rng);
  bool updates_item = false;
  for (const auto& s : q.steps) {
    if (s.kind == db::QueryStep::Kind::kUpdateRow && s.table == "item") {
      updates_item = true;
    }
  }
  EXPECT_TRUE(updates_item);
}

TEST(TpcwTest, ReadOnlyInteractionsDontWrite) {
  util::Rng rng(7);
  for (TpcwTransaction t : {TpcwTransaction::kBestSellers, TpcwTransaction::kSearchResult,
                            TpcwTransaction::kHome, TpcwTransaction::kProductDetail}) {
    db::Query q = TpcwQuery(t, rng);
    for (const auto& s : q.steps) {
      EXPECT_NE(s.kind, db::QueryStep::Kind::kUpdateRow) << TpcwName(t);
    }
  }
}

TEST(TpcwTest, CpuSharesReproduceTable1Regime) {
  // Under the browsing mix, per-transaction DB cost * frequency must
  // make BestSellers and SearchResult dominate with roughly the
  // paper's 51.5 / 43.3 split.
  sim::Scheduler sched;
  sim::CpuResource cpu(sched, 1);
  db::Database database(sched, cpu, db::CostModel{});
  CreateTpcwTables(database, db::LockGranularity::kTableLocks);

  util::Rng rng(99);
  std::map<TpcwTransaction, double> weighted;
  double total = 0;
  for (int i = 0; i < kTpcwTransactionCount; ++i) {
    auto t = static_cast<TpcwTransaction>(i);
    const double cost =
        static_cast<double>(database.EstimateCost(TpcwQuery(t, rng)));
    const double w = cost * BrowsingMixPercent(t);
    weighted[t] = w;
    total += w;
  }
  const double best = 100.0 * weighted[TpcwTransaction::kBestSellers] / total;
  const double search = 100.0 * weighted[TpcwTransaction::kSearchResult] / total;
  const double admin = 100.0 * weighted[TpcwTransaction::kAdminConfirm] / total;
  EXPECT_GT(best, 40.0);
  EXPECT_LT(best, 60.0);
  EXPECT_GT(search, 33.0);
  EXPECT_LT(search, 55.0);
  EXPECT_GT(best, search);  // BestSellers ranks first, as in Table 1
  EXPECT_LT(admin, 3.0);    // AdminConfirm is rare enough to stay small
  EXPECT_GT(admin, 0.1);
}

TEST(TpcwTest, AdminConfirmIsTheHeaviestSingleQuery) {
  sim::Scheduler sched;
  sim::CpuResource cpu(sched, 1);
  db::Database database(sched, cpu, db::CostModel{});
  util::Rng rng(5);
  const auto admin_cost = database.EstimateCost(TpcwQuery(TpcwTransaction::kAdminConfirm, rng));
  for (int i = 0; i < kTpcwTransactionCount; ++i) {
    auto t = static_cast<TpcwTransaction>(i);
    if (t == TpcwTransaction::kAdminConfirm) {
      continue;
    }
    EXPECT_GE(admin_cost, database.EstimateCost(TpcwQuery(t, rng))) << TpcwName(t);
  }
  // And it is in the several-hundred-millisecond class that makes the
  // Figure 11 response times plausible.
  EXPECT_GT(admin_cost, sim::Millis(200));
  EXPECT_LT(admin_cost, sim::Millis(900));
}

TEST(TpcwTest, TablesCreatedWithChosenGranularity) {
  sim::Scheduler sched;
  sim::CpuResource cpu(sched, 1);
  db::Database database(sched, cpu, db::CostModel{});
  CreateTpcwTables(database, db::LockGranularity::kRowLocks);
  EXPECT_EQ(database.table("item").granularity(), db::LockGranularity::kRowLocks);
  EXPECT_EQ(database.table("orders").granularity(), db::LockGranularity::kTableLocks);
  EXPECT_TRUE(database.HasTable("order_line"));
  EXPECT_FALSE(database.HasTable("nonexistent"));
}

}  // namespace
}  // namespace whodunit::workload
