// Tests for profile serialization and the post-mortem presentation
// phase (paper §7.1: profiles written at exit, stitched offline).
#include "src/profiler/profile_io.h"

#include <gtest/gtest.h>

#include "src/profiler/stitcher.h"

namespace whodunit::profiler {
namespace {

using context::Synopsis;

StageProfiler::Options Opts(std::string name) {
  StageProfiler::Options o;
  o.name = std::move(name);
  o.sample_period = 100;
  return o;
}

// Builds a two-stage deployment with some profile data, as the RPC
// tests do.
struct Rig {
  Deployment dep;
  StageProfiler& caller;
  StageProfiler& callee;
  Synopsis request;

  Rig()
      : caller(dep.AddStage(std::make_unique<StageProfiler>(dep, Opts("caller")))),
        callee(dep.AddStage(std::make_unique<StageProfiler>(dep, Opts("callee")))) {
    ThreadProfile& ct = caller.CreateThread("c");
    ThreadProfile& st = callee.CreateThread("s");
    auto main_fn = caller.RegisterFunction("main");
    auto foo_fn = caller.RegisterFunction("foo");
    auto svc_fn = callee.RegisterFunction("svc");
    {
      auto f0 = caller.EnterFrame(ct, main_fn);
      caller.ChargeCpu(ct, 1000);
      auto f1 = caller.EnterFrame(ct, foo_fn);
      request = caller.PrepareSend(ct);
    }
    caller.AccountMessage(500, request.WireBytes());
    callee.OnReceive(st, request);
    {
      auto g = callee.EnterFrame(st, svc_fn);
      callee.ChargeCpu(st, 2500);
    }
  }
};

TEST(ProfileIoTest, SerializeParseRoundTrip) {
  Rig rig;
  std::string text = SerializeProfile(rig.callee);
  EXPECT_NE(text.find("whodunit-profile 1"), std::string::npos);
  EXPECT_NE(text.find("stage callee"), std::string::npos);

  LoadedProfile loaded;
  ASSERT_TRUE(ParseProfile(text, &loaded));
  EXPECT_EQ(loaded.stage_name, "callee");
  ASSERT_EQ(loaded.ccts.size(), 1u);
  EXPECT_EQ(loaded.ccts[0].first, rig.request);
  EXPECT_EQ(loaded.ccts[0].second.TotalCpuTime(), 2500);
  EXPECT_EQ(loaded.ccts[0].second.TotalSamples(), 25u);
  // The function name survived.
  bool found = false;
  for (uint32_t i = 0; i < loaded.functions.size(); ++i) {
    if (loaded.functions.NameOf(i) == "svc") {
      found = true;
    }
  }
  EXPECT_TRUE(found);
}

TEST(ProfileIoTest, ByteCountersRoundTrip) {
  Rig rig;
  LoadedProfile loaded;
  ASSERT_TRUE(ParseProfile(SerializeProfile(rig.caller), &loaded));
  EXPECT_EQ(loaded.payload_bytes, 500u);
  EXPECT_EQ(loaded.context_bytes, rig.request.WireBytes());
}

TEST(ProfileIoTest, DictionaryRoundTrip) {
  Rig rig;
  std::string text = SerializeDictionary(rig.dep);
  std::map<uint32_t, std::string> dict;
  ASSERT_TRUE(ParseDictionary(text, &dict));
  ASSERT_FALSE(dict.empty());
  // The send point's call path is described.
  bool mentions_foo = false;
  for (const auto& [id, desc] : dict) {
    if (desc.find("foo") != std::string::npos) {
      mentions_foo = true;
    }
  }
  EXPECT_TRUE(mentions_foo);
}

TEST(ProfileIoTest, MalformedInputsRejected) {
  LoadedProfile loaded;
  EXPECT_FALSE(ParseProfile("", &loaded));
  EXPECT_FALSE(ParseProfile("not-a-profile\n", &loaded));
  EXPECT_FALSE(ParseProfile("whodunit-profile 1\nstage x\n", &loaded));  // no end
  EXPECT_FALSE(ParseProfile("whodunit-profile 1\nnode 0 0 f 1 1 1\nend\n",
                            &loaded));  // node before cct
  std::map<uint32_t, std::string> dict;
  EXPECT_FALSE(ParseDictionary("garbage", &dict));
}

TEST(ProfileIoTest, OfflineStitchReconstructsEdges) {
  Rig rig;
  std::vector<LoadedProfile> profiles(2);
  ASSERT_TRUE(ParseProfile(SerializeProfile(rig.caller), &profiles[0]));
  ASSERT_TRUE(ParseProfile(SerializeProfile(rig.callee), &profiles[1]));
  std::map<uint32_t, std::string> dict;
  ASSERT_TRUE(ParseDictionary(SerializeDictionary(rig.dep), &dict));

  std::string report = OfflineStitch(profiles, dict);
  EXPECT_NE(report.find("stage 'caller'"), std::string::npos);
  EXPECT_NE(report.find("stage 'callee'"), std::string::npos);
  EXPECT_NE(report.find("svc"), std::string::npos);
  // The request edge caller -> callee was recovered offline.
  EXPECT_NE(report.find("caller (origin) --["), std::string::npos);
  EXPECT_NE(report.find("--> callee"), std::string::npos);
}

TEST(FlatProfileTest, RanksFunctionsByCpu) {
  Rig rig;
  std::string flat = rig.callee.RenderFlatProfile();
  EXPECT_NE(flat.find("svc"), std::string::npos);
  EXPECT_NE(flat.find("100%"), std::string::npos);
  // The flat profile merges contexts: only function totals remain.
  std::string caller_flat = rig.caller.RenderFlatProfile();
  size_t main_pos = caller_flat.find("main");
  size_t foo_pos = caller_flat.find("foo");
  ASSERT_NE(main_pos, std::string::npos);
  ASSERT_NE(foo_pos, std::string::npos);
  EXPECT_LT(main_pos, foo_pos);  // main has all the CPU, listed first
}

TEST(StitcherDotTest, EmitsValidLookingGraphviz) {
  Rig rig;
  Stitcher stitcher(rig.dep);
  std::string dot = stitcher.RenderDot();
  EXPECT_NE(dot.find("digraph whodunit"), std::string::npos);
  EXPECT_NE(dot.find("subgraph cluster_0"), std::string::npos);
  EXPECT_NE(dot.find("\"caller:origin\""), std::string::npos);
  EXPECT_NE(dot.find("style=dashed"), std::string::npos);
  EXPECT_NE(dot.find("}\n"), std::string::npos);
}

}  // namespace
}  // namespace whodunit::profiler
