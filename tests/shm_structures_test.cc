// §3.3.2 validation on further shared data structures: sys/queue.h
// style doubly-linked queues, ring buffers, and a binary heap whose
// element moves must carry transaction contexts along (§3.2).
#include <gtest/gtest.h>

#include <map>

#include "src/shm/flow_detector.h"
#include "src/shm/guest_code.h"
#include "src/vm/interpreter.h"

namespace whodunit::shm {
namespace {

using vm::CpuState;
using vm::Interpreter;
using vm::Memory;
using vm::Program;
using vm::ThreadId;

constexpr uint64_t kLock = 5;
constexpr uint64_t kQ = 0x4000;

class Harness {
 public:
  Harness()
      : detector_([this](ThreadId t) {
          auto it = ctxts_.find(t);
          return it == ctxts_.end() ? CtxtId{0} : it->second;
        }) {}

  void SetCtxt(ThreadId t, CtxtId c) { ctxts_[t] = c; }

  CpuState& Run(const Program& p, ThreadId t, const std::map<int, uint64_t>& regs) {
    CpuState& cpu = cpus_[t];
    for (const auto& [r, v] : regs) {
      cpu.regs[static_cast<size_t>(r)] = v;
    }
    interp_.Execute(p, t, cpu, mem_, &detector_);
    return cpu;
  }

  FlowDetector& detector() { return detector_; }
  Memory& mem() { return mem_; }

 private:
  std::map<ThreadId, CtxtId> ctxts_;
  std::map<ThreadId, CpuState> cpus_;
  Memory mem_;
  Interpreter interp_;
  FlowDetector detector_;
};

TEST(TailqTest, InsertTailRemoveHeadFifoWithContexts) {
  Harness h;
  h.SetCtxt(1, 100);
  h.Run(TailqInsertTail(kLock), 1, {{0, kQ}, {1, 0x4100}, {2, 11}});
  h.SetCtxt(1, 101);
  h.Run(TailqInsertTail(kLock), 1, {{0, kQ}, {1, 0x4200}, {2, 22}});

  CpuState& c1 = h.Run(TailqRemoveHead(kLock), 2, {{0, kQ}});
  EXPECT_EQ(c1.regs[1], 0x4100u);
  EXPECT_EQ(c1.regs[2], 11u);
  CpuState& c2 = h.Run(TailqRemoveHead(kLock), 3, {{0, kQ}});
  EXPECT_EQ(c2.regs[1], 0x4200u);
  EXPECT_EQ(c2.regs[2], 22u);

  ASSERT_EQ(h.detector().flows_detected(), 2u);
  EXPECT_EQ(h.detector().flow_log()[0].ctxt, 100u);
  EXPECT_EQ(h.detector().flow_log()[1].ctxt, 101u);
}

TEST(TailqTest, InsertHeadGivesLifoOrder) {
  Harness h;
  h.SetCtxt(1, 100);
  h.Run(TailqInsertHead(kLock), 1, {{0, kQ}, {1, 0x4100}, {2, 11}});
  h.SetCtxt(1, 101);
  h.Run(TailqInsertHead(kLock), 1, {{0, kQ}, {1, 0x4200}, {2, 22}});

  CpuState& c1 = h.Run(TailqRemoveHead(kLock), 2, {{0, kQ}});
  EXPECT_EQ(c1.regs[2], 22u);  // most recent insert first
  CpuState& c2 = h.Run(TailqRemoveHead(kLock), 2, {{0, kQ}});
  EXPECT_EQ(c2.regs[2], 11u);
  // LIFO: the first pop carries the SECOND insert's context.
  ASSERT_GE(h.detector().flows_detected(), 2u);
  EXPECT_EQ(h.detector().flow_log()[0].ctxt, 101u);
  EXPECT_EQ(h.detector().flow_log()[1].ctxt, 100u);
}

TEST(TailqTest, EmptyRemoveIsNotFlow) {
  Harness h;
  h.SetCtxt(1, 100);
  h.Run(TailqInsertTail(kLock), 1, {{0, kQ}, {1, 0x4100}, {2, 11}});
  h.Run(TailqRemoveHead(kLock), 2, {{0, kQ}});
  EXPECT_EQ(h.detector().flows_detected(), 1u);
  // Queue empty now; head carries the NULL from head->next.
  CpuState& c = h.Run(TailqRemoveHead(kLock), 3, {{0, kQ}});
  EXPECT_EQ(c.regs[1], 0u);
  EXPECT_EQ(h.detector().flows_detected(), 1u);  // no new flow
}

TEST(TailqTest, MixedInsertHeadAndTail) {
  Harness h;
  h.SetCtxt(1, 100);
  h.SetCtxt(2, 200);
  h.Run(TailqInsertTail(kLock), 1, {{0, kQ}, {1, 0x4100}, {2, 1}});
  h.Run(TailqInsertHead(kLock), 2, {{0, kQ}, {1, 0x4200}, {2, 2}});
  h.Run(TailqInsertTail(kLock), 1, {{0, kQ}, {1, 0x4300}, {2, 3}});
  // Order: 0x4200 (head-insert), 0x4100, 0x4300.
  CpuState& c1 = h.Run(TailqRemoveHead(kLock), 3, {{0, kQ}});
  EXPECT_EQ(c1.regs[2], 2u);
  CpuState& c2 = h.Run(TailqRemoveHead(kLock), 3, {{0, kQ}});
  EXPECT_EQ(c2.regs[2], 1u);
  CpuState& c3 = h.Run(TailqRemoveHead(kLock), 3, {{0, kQ}});
  EXPECT_EQ(c3.regs[2], 3u);
  ASSERT_EQ(h.detector().flow_log().size(), 3u);
  EXPECT_EQ(h.detector().flow_log()[0].producer, 2u);
  EXPECT_EQ(h.detector().flow_log()[1].producer, 1u);
}

TEST(RingTest, WrapsAroundAndCarriesContexts) {
  Harness h;
  Program enq = RingEnqueue(kLock);
  Program deq = RingDequeue(kLock);
  // Fill and drain more than capacity so indexes wrap.
  uint32_t next_ctxt = 100;
  for (int round = 0; round < 3; ++round) {
    for (int i = 0; i < kRingCapacity; ++i) {
      h.SetCtxt(1, next_ctxt++);
      h.Run(enq, 1, {{0, kQ}, {1, static_cast<uint64_t>(round * 100 + i)}});
    }
    for (int i = 0; i < kRingCapacity; ++i) {
      CpuState& c = h.Run(deq, 2, {{0, kQ}});
      EXPECT_EQ(c.regs[1], static_cast<uint64_t>(round * 100 + i));
    }
  }
  // One flow per dequeue, each with the matching producer context.
  ASSERT_EQ(h.detector().flows_detected(), 3u * kRingCapacity);
  for (size_t i = 0; i < h.detector().flow_log().size(); ++i) {
    EXPECT_EQ(h.detector().flow_log()[i].ctxt, 100u + i);
  }
}

TEST(RingTest, SlotReuseDoesNotLeakOldContext) {
  Harness h;
  Program enq = RingEnqueue(kLock);
  Program deq = RingDequeue(kLock);
  h.SetCtxt(1, 100);
  h.Run(enq, 1, {{0, kQ}, {1, 7}});
  h.Run(deq, 2, {{0, kQ}});
  ASSERT_EQ(h.detector().flows_detected(), 1u);
  // The same slot is reused by a different producer with a new ctxt.
  for (int i = 0; i < kRingCapacity - 1; ++i) {
    h.SetCtxt(1, 200);
    h.Run(enq, 1, {{0, kQ}, {1, static_cast<uint64_t>(i)}});
    h.Run(deq, 2, {{0, kQ}});
  }
  h.SetCtxt(3, 300);
  h.Run(enq, 3, {{0, kQ}, {1, 99}});
  CpuState& c = h.Run(deq, 2, {{0, kQ}});
  EXPECT_EQ(c.regs[1], 99u);
  EXPECT_EQ(h.detector().flow_log().back().ctxt, 300u);
  EXPECT_EQ(h.detector().flow_log().back().producer, 3u);
}

TEST(HeapTest, ElementMovesCarryContexts) {
  // §3.2: "in a priority queue implementation both producers and
  // consumers move elements in the queue to maintain the priority
  // queue properties. Our algorithm automatically detects that."
  Harness h;
  h.SetCtxt(1, 100);
  h.Run(HeapInsert(kLock), 1, {{0, kQ}, {1, 50}, {2, 0xAAA}});  // key 50
  h.SetCtxt(1, 101);
  h.Run(HeapInsert(kLock), 1, {{0, kQ}, {1, 10}, {2, 0xBBB}});  // key 10 -> sift to root

  // Extract-min returns the SECOND insert (key 10, context 101), and
  // moving the displaced element back must keep context 100 with it.
  CpuState& c1 = h.Run(HeapExtractMin(kLock), 2, {{0, kQ}});
  EXPECT_EQ(c1.regs[1], 10u);
  EXPECT_EQ(c1.regs[2], 0xBBBu);
  ASSERT_GE(h.detector().flows_detected(), 1u);
  EXPECT_EQ(h.detector().flow_log()[0].ctxt, 101u);

  CpuState& c2 = h.Run(HeapExtractMin(kLock), 3, {{0, kQ}});
  EXPECT_EQ(c2.regs[1], 50u);
  EXPECT_EQ(c2.regs[2], 0xAAAu);
  // The element moved twice (sift-up swap, then move-to-root), yet its
  // original producer context survived both moves.
  ASSERT_GE(h.detector().flows_detected(), 2u);
  EXPECT_EQ(h.detector().flow_log()[1].ctxt, 100u);
  EXPECT_EQ(h.detector().flow_log()[1].consumer, 3u);
}

TEST(HeapTest, NoSiftWhenInsertedInOrder) {
  Harness h;
  h.SetCtxt(1, 100);
  h.Run(HeapInsert(kLock), 1, {{0, kQ}, {1, 10}, {2, 0xAAA}});
  h.SetCtxt(1, 101);
  h.Run(HeapInsert(kLock), 1, {{0, kQ}, {1, 50}, {2, 0xBBB}});  // stays put
  CpuState& c1 = h.Run(HeapExtractMin(kLock), 2, {{0, kQ}});
  EXPECT_EQ(c1.regs[1], 10u);
  EXPECT_EQ(h.detector().flow_log()[0].ctxt, 100u);
  CpuState& c2 = h.Run(HeapExtractMin(kLock), 2, {{0, kQ}});
  EXPECT_EQ(c2.regs[1], 50u);
  EXPECT_EQ(h.detector().flow_log()[1].ctxt, 101u);
}

}  // namespace
}  // namespace whodunit::shm
