// Property fuzz for the flow-detection algorithm over the Apache
// queue: for ANY interleaving of pushes and pops by random threads,
// every consumed element's flow must carry exactly the context its
// producer had at push time (LIFO matching for the array queue), and
// no spurious flows may appear.
//
// Plus a differential fuzz for the flow-summary cache: random guest
// programs, random lock interleavings, and random consume-window
// sizes run through two universes — one via shm::SectionCache, one
// via plain emulation — which must stay bit-identical in machine
// state, dictionary state, contexts, and flow events.
#include <gtest/gtest.h>

#include <map>
#include <vector>

#include "src/shm/flow_detector.h"
#include "src/shm/guest_code.h"
#include "src/shm/section_cache.h"
#include "src/util/rng.h"
#include "src/vm/interpreter.h"
#include "src/vm/program_builder.h"

namespace whodunit::shm {
namespace {

constexpr uint64_t kLock = 3;
constexpr uint64_t kQueue = 0x1000;

class ShmFuzzTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(ShmFuzzTest, EveryPopCarriesItsPushersContext) {
  util::Rng rng(GetParam());
  std::map<vm::ThreadId, CtxtId> ctxts;
  FlowDetector detector([&ctxts](vm::ThreadId t) { return ctxts[t]; });
  std::vector<FlowEvent> flows;
  detector.set_flow_callback([&flows](const FlowEvent& ev) { flows.push_back(ev); });

  vm::Interpreter interp;
  vm::Memory mem;
  std::map<vm::ThreadId, vm::CpuState> cpus;
  vm::Program push = ApQueuePush(kLock);
  vm::Program pop = ApQueuePop(kLock);

  // Model the queue as the LIFO stack it is; remember the producing
  // thread and context per element.
  struct Elem {
    vm::ThreadId producer;
    CtxtId ctxt;
    uint64_t value;
  };
  std::vector<Elem> model;
  CtxtId next_ctxt = 1;
  uint64_t next_value = 100;
  size_t expected_flows = 0;

  // §3.1's assumption: threads have predefined roles — producers
  // (0-2, Apache's listener side) or consumers (3-5, workers) of this
  // resource, never both. (A thread on both sides is the allocator
  // pattern, demoted by design — tested elsewhere.)
  for (int op = 0; op < 400; ++op) {
    if (model.empty() || rng.NextBernoulli(0.55)) {
      // Push with a fresh context.
      const auto t = static_cast<vm::ThreadId>(rng.NextBelow(3));
      ctxts[t] = next_ctxt++;
      vm::CpuState& cpu = cpus[t];
      cpu.regs[0] = kQueue;
      cpu.regs[1] = next_value;
      cpu.regs[2] = next_value + 1;
      interp.Execute(push, t, cpu, mem, &detector);
      model.push_back(Elem{t, ctxts[t], next_value});
      next_value += 2;
    } else {
      const auto t = static_cast<vm::ThreadId>(3 + rng.NextBelow(3));
      const Elem expected = model.back();
      model.pop_back();
      vm::CpuState& cpu = cpus[t];
      cpu.regs[0] = kQueue;
      cpu.regs[5] = 0x2000 + t * 64;
      cpu.regs[6] = 0x2008 + t * 64;
      interp.Execute(pop, t, cpu, mem, &detector);
      // Functional correctness of the queue itself.
      ASSERT_EQ(cpu.regs[7], expected.value);
      ++expected_flows;
      // The newest flow must blame the right producer and context.
      ASSERT_FALSE(flows.empty());
      const FlowEvent& ev = flows.back();
      EXPECT_EQ(ev.producer, expected.producer);
      EXPECT_EQ(ev.consumer, t);
      EXPECT_EQ(ev.ctxt, expected.ctxt);
      EXPECT_EQ(ev.lock_id, kLock);
    }
  }
  // Exactly one flow per pop: no spurious detections, none missed.
  EXPECT_EQ(flows.size(), expected_flows);
  // With disjoint roles, the resource is never demoted.
  EXPECT_FALSE(detector.IsDemoted(kLock));
}

INSTANTIATE_TEST_SUITE_P(Seeds, ShmFuzzTest,
                         ::testing::Values(3, 17, 23, 59, 71, 101, 997));

// ---------------------------------------------------------------------------
// Differential fuzz: SectionCache vs full emulation.

// A random critical section: Lock-first, a mix of MOV chains, affine
// updates, arithmetic, compares and forward branches over a small
// shared region, then Unlock, then a couple of post-CS reads so the
// consume window has something to look at. Only forward branches, so
// every program terminates.
vm::Program RandomSection(util::Rng& rng, uint64_t lock_id, int index) {
  vm::ProgramBuilder b("fuzz-section-" + std::to_string(index));
  b.Lock(lock_id);
  const int body = 3 + static_cast<int>(rng.NextBelow(8));
  for (int i = 0; i < body; ++i) {
    const auto reg = [&] { return static_cast<uint8_t>(1 + rng.NextBelow(4)); };
    const auto disp = [&] { return static_cast<int64_t>(rng.NextBelow(6)) * 8; };
    switch (rng.NextBelow(10)) {
      case 0:
        b.MovRI(reg(), static_cast<int64_t>(rng.NextBelow(1000)));
        break;
      case 1:
        b.MovRR(reg(), reg());
        break;
      case 2:
        b.MovRM(reg(), 0, disp());
        break;
      case 3:
        b.MovMR(0, disp(), reg());
        break;
      case 4:
        b.MovMM(0, disp(), 0, disp());
        break;
      case 5:
        b.AddRI(reg(), static_cast<int64_t>(rng.NextBelow(16)));
        break;
      case 6:
        b.IncM(0, disp());
        break;
      case 7:
        b.AddMI(0, disp(), static_cast<int64_t>(rng.NextBelow(32)));
        break;
      case 8:
        b.MulRI(reg(), static_cast<int64_t>(1 + rng.NextBelow(4)));
        break;
      default: {
        // Compare + forward branch over one random instruction.
        const int skip = b.DefineLabel();
        b.CmpRI(reg(), static_cast<int64_t>(rng.NextBelow(4)));
        b.Je(skip);
        b.IncM(0, disp());
        b.Bind(skip);
        break;
      }
    }
  }
  b.Unlock(lock_id);
  b.MovRM(6, 0, 0);
  b.MovRM(7, 0, 8);
  b.Halt();
  return b.Build();
}

class SectionCacheFuzzTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(SectionCacheFuzzTest, ReplayIsIndistinguishableFromEmulation) {
  util::Rng rng(GetParam());

  FlowDetector::Config dcfg;
  const int windows[] = {0, 1, 2, 8, FlowDetector::kDefaultPostWindow};
  dcfg.post_window = windows[rng.NextBelow(5)];

  struct Universe {
    explicit Universe(const FlowDetector::Config& cfg)
        : detector(cfg, [this](vm::ThreadId t) { return ctxts[t]; }) {
      detector.set_flow_callback([this](const FlowEvent& ev) { flows.push_back(ev); });
    }
    vm::Interpreter interp;
    vm::Memory mem;
    std::map<vm::ThreadId, vm::CpuState> cpus;
    std::map<vm::ThreadId, CtxtId> ctxts;
    FlowDetector detector;
    std::vector<FlowEvent> flows;
  };
  Universe cached(dcfg), plain(dcfg);
  SectionCache cache;  // shadow-verify stays at the build default

  // Program pool: the canonical producer/consumer patterns (distinct
  // locks per pattern family, so roles make sense) plus random bodies.
  struct Pooled {
    vm::Program program;
    uint64_t base;  // r0 for every run
  };
  std::vector<Pooled> pool;
  pool.push_back({ApQueuePush(10), 0x1000});
  pool.push_back({ApQueuePop(10), 0x1000});
  pool.push_back({CounterIncrement(11), 0x5000});
  pool.push_back({MemFree(12), 0x6000});
  pool.push_back({MemAlloc(12), 0x6000});
  pool.push_back({ListEnqueue(13), 0x8000});
  pool.push_back({ListDequeue(13), 0x8000});
  const int n_random = 2 + static_cast<int>(rng.NextBelow(4));
  for (int i = 0; i < n_random; ++i) {
    // Random sections share locks 20/21 to fuzz lock interleavings
    // (several distinct program bodies under one lock id).
    pool.push_back({RandomSection(rng, 20 + rng.NextBelow(2), i), 0x9000 + 0x100u * (i % 2)});
  }

  // Seed the queue/freelist regions so consumers have something.
  for (Universe* u : {&cached, &plain}) {
    u->mem.Write(0x6000, 0x6100);   // freelist head -> one block
    u->mem.Write(0x6100, 0);
  }

  CtxtId next_ctxt = 1;
  for (int step = 0; step < 600; ++step) {
    const Pooled& p = pool[rng.NextBelow(pool.size())];
    const auto t = static_cast<vm::ThreadId>(rng.NextBelow(4));
    const bool fresh_ctxt = rng.NextBernoulli(0.3);
    if (fresh_ctxt) {
      ++next_ctxt;
    }
    uint64_t r1 = 0x6100, r2 = 100 + rng.NextBelow(100);
    if (rng.NextBernoulli(0.5)) {
      r1 = 0x8100 + 0x40 * rng.NextBelow(4);  // list elements
    }
    for (Universe* u : {&cached, &plain}) {
      if (fresh_ctxt) {
        u->ctxts[t] = next_ctxt;
      }
      vm::CpuState& cpu = u->cpus[t];
      cpu.regs[0] = p.base;
      cpu.regs[1] = r1;
      cpu.regs[2] = r2;
      cpu.regs[5] = 0x2000 + 0x40u * t;
      cpu.regs[6] = 0x2008 + 0x40u * t;
    }
    const vm::ExecResult rc =
        cache.Run(cached.interp, p.program, t, cached.cpus[t], cached.mem, &cached.detector);
    const vm::ExecResult rp =
        plain.interp.ExecuteWith(p.program, t, plain.cpus[t], plain.mem, &plain.detector);

    // Simulated-cost accounting must be identical on every step, hit
    // or miss (summaries never absorb translation cycles).
    ASSERT_EQ(rc.instructions, rp.instructions) << "step " << step;
    ASSERT_EQ(rc.guest_cycles, rp.guest_cycles) << "step " << step;
    ASSERT_EQ(rc.translated, rp.translated) << "step " << step;
    ASSERT_EQ(cached.cpus[t].regs, plain.cpus[t].regs) << "step " << step;
    ASSERT_EQ(cached.cpus[t].cmp, plain.cpus[t].cmp) << "step " << step;
    if (step % 50 == 0) {
      ASSERT_EQ(cached.mem.Snapshot(), plain.mem.Snapshot()) << "step " << step;
      ASSERT_TRUE(cached.detector.DeepEquals(plain.detector)) << "step " << step;
    }
  }

  EXPECT_EQ(cached.mem.Snapshot(), plain.mem.Snapshot());
  EXPECT_TRUE(cached.detector.DeepEquals(plain.detector));
  ASSERT_EQ(cached.flows.size(), plain.flows.size());
  for (size_t i = 0; i < cached.flows.size(); ++i) {
    ASSERT_EQ(cached.flows[i], plain.flows[i]) << "flow " << i;
  }
  // 600 steps over a dozen-program pool must reach a warm steady
  // state; a cache that never replays is vacuous equivalence.
  EXPECT_GT(cache.hits(), 0u);
}

INSTANTIATE_TEST_SUITE_P(Seeds, SectionCacheFuzzTest,
                         ::testing::Values(5, 29, 31, 47, 83, 211, 499, 1009));

}  // namespace
}  // namespace whodunit::shm
