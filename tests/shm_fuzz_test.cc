// Property fuzz for the flow-detection algorithm over the Apache
// queue: for ANY interleaving of pushes and pops by random threads,
// every consumed element's flow must carry exactly the context its
// producer had at push time (LIFO matching for the array queue), and
// no spurious flows may appear.
#include <gtest/gtest.h>

#include <map>
#include <vector>

#include "src/shm/flow_detector.h"
#include "src/shm/guest_code.h"
#include "src/util/rng.h"
#include "src/vm/interpreter.h"

namespace whodunit::shm {
namespace {

constexpr uint64_t kLock = 3;
constexpr uint64_t kQueue = 0x1000;

class ShmFuzzTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(ShmFuzzTest, EveryPopCarriesItsPushersContext) {
  util::Rng rng(GetParam());
  std::map<vm::ThreadId, CtxtId> ctxts;
  FlowDetector detector([&ctxts](vm::ThreadId t) { return ctxts[t]; });
  std::vector<FlowEvent> flows;
  detector.set_flow_callback([&flows](const FlowEvent& ev) { flows.push_back(ev); });

  vm::Interpreter interp;
  vm::Memory mem;
  std::map<vm::ThreadId, vm::CpuState> cpus;
  vm::Program push = ApQueuePush(kLock);
  vm::Program pop = ApQueuePop(kLock);

  // Model the queue as the LIFO stack it is; remember the producing
  // thread and context per element.
  struct Elem {
    vm::ThreadId producer;
    CtxtId ctxt;
    uint64_t value;
  };
  std::vector<Elem> model;
  CtxtId next_ctxt = 1;
  uint64_t next_value = 100;
  size_t expected_flows = 0;

  // §3.1's assumption: threads have predefined roles — producers
  // (0-2, Apache's listener side) or consumers (3-5, workers) of this
  // resource, never both. (A thread on both sides is the allocator
  // pattern, demoted by design — tested elsewhere.)
  for (int op = 0; op < 400; ++op) {
    if (model.empty() || rng.NextBernoulli(0.55)) {
      // Push with a fresh context.
      const auto t = static_cast<vm::ThreadId>(rng.NextBelow(3));
      ctxts[t] = next_ctxt++;
      vm::CpuState& cpu = cpus[t];
      cpu.regs[0] = kQueue;
      cpu.regs[1] = next_value;
      cpu.regs[2] = next_value + 1;
      interp.Execute(push, t, cpu, mem, &detector);
      model.push_back(Elem{t, ctxts[t], next_value});
      next_value += 2;
    } else {
      const auto t = static_cast<vm::ThreadId>(3 + rng.NextBelow(3));
      const Elem expected = model.back();
      model.pop_back();
      vm::CpuState& cpu = cpus[t];
      cpu.regs[0] = kQueue;
      cpu.regs[5] = 0x2000 + t * 64;
      cpu.regs[6] = 0x2008 + t * 64;
      interp.Execute(pop, t, cpu, mem, &detector);
      // Functional correctness of the queue itself.
      ASSERT_EQ(cpu.regs[7], expected.value);
      ++expected_flows;
      // The newest flow must blame the right producer and context.
      ASSERT_FALSE(flows.empty());
      const FlowEvent& ev = flows.back();
      EXPECT_EQ(ev.producer, expected.producer);
      EXPECT_EQ(ev.consumer, t);
      EXPECT_EQ(ev.ctxt, expected.ctxt);
      EXPECT_EQ(ev.lock_id, kLock);
    }
  }
  // Exactly one flow per pop: no spurious detections, none missed.
  EXPECT_EQ(flows.size(), expected_flows);
  // With disjoint roles, the resource is never demoted.
  EXPECT_FALSE(detector.IsDemoted(kLock));
}

INSTANTIATE_TEST_SUITE_P(Seeds, ShmFuzzTest,
                         ::testing::Values(3, 17, 23, 59, 71, 101, 997));

}  // namespace
}  // namespace whodunit::shm
