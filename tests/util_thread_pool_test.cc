// util::ThreadPool: the fixed-size worker pool under
// sim::ParallelRunner (docs/PERFORMANCE.md, "Parallel execution").
#include "src/util/thread_pool.h"

#include <atomic>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

namespace whodunit::util {
namespace {

TEST(ThreadPoolTest, InlinePoolRunsJobsOnSubmittingThread) {
  ThreadPool pool(1);
  EXPECT_EQ(pool.thread_count(), 0u);  // no workers spawned

  const std::thread::id caller = std::this_thread::get_id();
  std::thread::id observed{};
  pool.Submit([&] { observed = std::this_thread::get_id(); });
  EXPECT_EQ(observed, caller);  // Submit ran the job synchronously
  pool.Wait();                  // trivially returns
}

TEST(ThreadPoolTest, ZeroThreadsAlsoMeansInline) {
  ThreadPool pool(0);
  EXPECT_EQ(pool.thread_count(), 0u);
  int runs = 0;
  pool.Submit([&] { ++runs; });
  EXPECT_EQ(runs, 1);
}

TEST(ThreadPoolTest, RunsEveryJobExactlyOnce) {
  ThreadPool pool(4);
  EXPECT_EQ(pool.thread_count(), 4u);

  constexpr int kJobs = 200;
  std::atomic<int> done{0};
  for (int i = 0; i < kJobs; ++i) {
    pool.Submit([&done] { done.fetch_add(1, std::memory_order_relaxed); });
  }
  pool.Wait();
  EXPECT_EQ(done.load(), kJobs);
}

TEST(ThreadPoolTest, WaitIsReusableAcrossBatches) {
  ThreadPool pool(2);
  std::atomic<int> done{0};
  for (int batch = 0; batch < 3; ++batch) {
    for (int i = 0; i < 10; ++i) {
      pool.Submit([&done] { done.fetch_add(1, std::memory_order_relaxed); });
    }
    pool.Wait();
    EXPECT_EQ(done.load(), (batch + 1) * 10);
  }
}

TEST(ThreadPoolTest, ThreadCountIsCapped) {
  ThreadPool pool(10000);
  EXPECT_LE(pool.thread_count(), ThreadPool::kMaxThreads);
  // Still functional at the cap.
  std::atomic<int> done{0};
  for (int i = 0; i < 100; ++i) {
    pool.Submit([&done] { done.fetch_add(1, std::memory_order_relaxed); });
  }
  pool.Wait();
  EXPECT_EQ(done.load(), 100);
}

TEST(ThreadPoolTest, DestructionJoinsOutstandingWork) {
  std::atomic<int> done{0};
  {
    ThreadPool pool(3);
    for (int i = 0; i < 50; ++i) {
      pool.Submit([&done] { done.fetch_add(1, std::memory_order_relaxed); });
    }
    pool.Wait();
  }  // dtor joins workers; no job may outlive the pool
  EXPECT_EQ(done.load(), 50);
}

}  // namespace
}  // namespace whodunit::util
