// The shard-determinism contract (docs/PERFORMANCE.md): for a fixed
// shard count the merged profile — CCT dump, crosstalk matrix, metrics
// export — is byte-identical no matter how many pool threads ran the
// shards. threads == 1 runs every shard inline on the calling thread,
// so the sweep also proves the parallel runs match a serial fold of
// the same shard list.
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "src/apps/bookstore/bookstore.h"
#include "src/obs/export.h"
#include "src/obs/metrics.h"
#include "src/sim/parallel_runner.h"

namespace whodunit {
namespace {

apps::BookstoreOptions SmallRun(int shards, int threads) {
  apps::BookstoreOptions o;
  o.clients = 32;
  o.duration = sim::Seconds(300);
  o.warmup = sim::Seconds(60);
  o.shards = shards;
  o.threads = threads;
  return o;
}

TEST(ShardInvarianceTest, MergedProfileIsByteIdenticalAcrossThreadCounts) {
  // Fixed logical decomposition (4 shards), varying physical
  // parallelism. Thread count must not change a single byte of the
  // merged profile or a single merged number.
  apps::BookstoreResult reference;
  for (int threads : {1, 2, 4, 8}) {
    const apps::BookstoreResult result = apps::RunBookstore(SmallRun(4, threads));
    if (threads == 1) {
      reference = result;
      ASSERT_FALSE(reference.db_profile_text.empty());
      ASSERT_FALSE(reference.crosstalk_text.empty());
      continue;
    }
    EXPECT_EQ(result.db_profile_text, reference.db_profile_text)
        << threads << " threads";
    EXPECT_EQ(result.crosstalk_text, reference.crosstalk_text)
        << threads << " threads";
    EXPECT_EQ(result.stitched_text, reference.stitched_text)
        << threads << " threads";
    EXPECT_EQ(result.interactions, reference.interactions);
    EXPECT_DOUBLE_EQ(result.throughput_tpm, reference.throughput_tpm);
    EXPECT_EQ(result.payload_bytes, reference.payload_bytes);
    EXPECT_EQ(result.context_bytes, reference.context_bytes);
    for (size_t t = 0; t < reference.per_type.size(); ++t) {
      EXPECT_EQ(result.per_type[t].count, reference.per_type[t].count) << "type " << t;
      EXPECT_EQ(result.per_type[t].db_cpu_ns, reference.per_type[t].db_cpu_ns)
          << "type " << t;
      EXPECT_DOUBLE_EQ(result.per_type[t].mean_response_ms,
                       reference.per_type[t].mean_response_ms)
          << "type " << t;
    }
  }
}

TEST(ShardInvarianceTest, SampledRunIsByteIdenticalAcrossThreadCounts) {
  // The production-sampling contract (docs/PRODUCTION.md): the 1%-rate
  // run composes with shard determinism. Each shard's decision stream
  // is a stateless hash of (seed + shard, decision index), so at a
  // fixed rate and seed the merged profile is still byte-identical at
  // any thread count.
  apps::BookstoreResult reference;
  for (int threads : {1, 2, 4, 8}) {
    apps::BookstoreOptions o = SmallRun(4, threads);
    o.sample_rate = 0.01;
    o.sample_seed = 1234;
    const apps::BookstoreResult result = apps::RunBookstore(o);
    if (threads == 1) {
      reference = result;
      ASSERT_FALSE(reference.db_profile_text.empty());
      continue;
    }
    EXPECT_EQ(result.db_profile_text, reference.db_profile_text)
        << threads << " threads";
    EXPECT_EQ(result.crosstalk_text, reference.crosstalk_text)
        << threads << " threads";
    EXPECT_EQ(result.stitched_text, reference.stitched_text)
        << threads << " threads";
    EXPECT_EQ(result.interactions, reference.interactions);
    EXPECT_DOUBLE_EQ(result.throughput_tpm, reference.throughput_tpm);
  }
}

TEST(ShardInvarianceTest, ShardCountSweepIsSelfDeterministic) {
  // The S-shard run is a workload definition: re-running it at any
  // S (and any thread placement) reproduces itself exactly.
  for (int shards : {1, 2, 4, 8}) {
    const apps::BookstoreResult first =
        apps::RunBookstore(SmallRun(shards, /*threads=*/2));
    const apps::BookstoreResult second =
        apps::RunBookstore(SmallRun(shards, /*threads=*/shards));
    EXPECT_EQ(first.db_profile_text, second.db_profile_text) << shards << " shards";
    EXPECT_EQ(first.crosstalk_text, second.crosstalk_text) << shards << " shards";
    EXPECT_EQ(first.interactions, second.interactions) << shards << " shards";
    EXPECT_DOUBLE_EQ(first.throughput_tpm, second.throughput_tpm)
        << shards << " shards";
  }
}

TEST(ShardInvarianceTest, OpenLoopPoissonIsByteIdenticalAcrossThreadCounts) {
  // The open-loop golden: Poisson generators (several per shard) with
  // 1% transaction sampling must keep the shard-merge byte-identity
  // contract — each generator's seed derives from the shard seed and
  // its spawn index, never from thread placement.
  apps::BookstoreResult reference;
  for (int threads : {1, 2, 4, 8}) {
    apps::BookstoreOptions o = SmallRun(4, threads);
    o.arrivals.kind = workload::ArrivalKind::kPoisson;
    o.arrivals.clients_per_generator = 4;  // 2 generators per 8-client shard
    o.sample_rate = 0.01;
    o.sample_seed = 77;
    const apps::BookstoreResult result = apps::RunBookstore(o);
    if (threads == 1) {
      reference = result;
      ASSERT_FALSE(reference.db_profile_text.empty());
      ASSERT_GT(reference.interactions, 0u);
      continue;
    }
    EXPECT_EQ(result.db_profile_text, reference.db_profile_text)
        << threads << " threads";
    EXPECT_EQ(result.crosstalk_text, reference.crosstalk_text)
        << threads << " threads";
    EXPECT_EQ(result.stitched_text, reference.stitched_text)
        << threads << " threads";
    EXPECT_EQ(result.interactions, reference.interactions);
    EXPECT_EQ(result.sim_events, reference.sim_events);
    EXPECT_EQ(result.peak_event_queue_depth, reference.peak_event_queue_depth);
    EXPECT_DOUBLE_EQ(result.throughput_tpm, reference.throughput_tpm);
  }
}

TEST(ShardInvarianceTest, AttributionArtifactsAreByteIdenticalAcrossThreadCounts) {
  // PR-9 extension of the golden contract: the wait-state attribution
  // artifacts — the whodunit-attr-v1 folded export and the rendered
  // --why-tail report, both per-shard sections in shard order — must
  // also be byte-identical at any thread count. Attribution is pure
  // per-event arithmetic plus an ordered-map fold, so nothing about
  // thread placement may leak into a single byte.
  apps::BookstoreResult reference;
  for (int threads : {1, 2, 4, 8}) {
    apps::BookstoreOptions o = SmallRun(4, threads);
    o.live = true;
    const apps::BookstoreResult result = apps::RunBookstore(o);
    if (threads == 1) {
      reference = result;
      ASSERT_FALSE(reference.live_attr_folded.empty());
      ASSERT_FALSE(reference.live_why_tail_text.empty());
      // Sanity: the folded export carries real wait-state frames.
      EXPECT_NE(reference.live_attr_folded.find(";service "), std::string::npos);
      EXPECT_NE(reference.live_why_tail_text.find("why-tail: p99 vs p50"),
                std::string::npos);
      continue;
    }
    EXPECT_EQ(result.live_attr_folded, reference.live_attr_folded)
        << threads << " threads";
    EXPECT_EQ(result.live_why_tail_text, reference.live_why_tail_text)
        << threads << " threads";
    EXPECT_EQ(result.live_query_json, reference.live_query_json)
        << threads << " threads";
  }
}

TEST(ShardInvarianceTest, FoldedMetricsExportIsThreadCountInvariant) {
  // The full metrics JSON — the third artifact of the golden contract.
  // Each job runs a small bookstore inside its own ShardEnv; folding
  // the shard registries in job order must give the same bytes at any
  // thread count.
  const auto job = [](size_t shard, sim::ShardEnv&) {
    apps::BookstoreOptions o;
    o.clients = 8;
    o.duration = sim::Seconds(120);
    o.warmup = sim::Seconds(30);
    o.seed = 1 + shard;
    apps::RunBookstore(o);
    return 0;
  };
  std::string reference_json;
  for (size_t threads : {1, 4}) {
    auto runs = sim::ParallelRunner::Run(3, threads, job);
    obs::MetricsRegistry folded;
    for (const auto& run : runs) {
      run.env->FoldMetricsInto(folded);
    }
    const std::string json = obs::ToJson(folded.Snapshot());
    if (threads == 1) {
      reference_json = json;
      ASSERT_FALSE(reference_json.empty());
      continue;
    }
    EXPECT_EQ(json, reference_json) << threads << " threads";
  }
}

}  // namespace
}  // namespace whodunit
