#include "src/crosstalk/crosstalk.h"

#include <gtest/gtest.h>

#include "src/sim/task.h"

namespace whodunit::crosstalk {
namespace {

sim::Process HoldFor(sim::Scheduler& sched, sim::SimMutex& m, uint64_t tag, sim::SimTime hold) {
  co_await m.Acquire(tag);
  co_await sim::Delay{sched, hold};
  m.Release(tag);
}

TEST(CrosstalkTest, UncontendedAcquiresProduceNoCrosstalk) {
  sim::Scheduler sched;
  sim::SimMutex m(sched);
  CrosstalkRecorder rec;
  m.set_observer(&rec);
  sim::Spawn(sched, HoldFor(sched, m, 1, 10));
  sched.Run();
  sim::Spawn(sched, HoldFor(sched, m, 2, 10));
  sched.Run();
  EXPECT_EQ(rec.acquires_observed(), 2u);
  EXPECT_EQ(rec.WaitCount(1), 0u);
  EXPECT_EQ(rec.WaitCount(2), 0u);
  EXPECT_TRUE(rec.PairRows().empty());
}

TEST(CrosstalkTest, WaiterHolderPairRecorded) {
  sim::Scheduler sched;
  sim::SimMutex m(sched);
  CrosstalkRecorder rec;
  m.set_observer(&rec);
  // Transaction type A holds 0..100; type B arrives at 10.
  sim::Spawn(sched, HoldFor(sched, m, /*tag=*/7, 100));
  sim::SpawnAfter(sched, 10, HoldFor(sched, m, /*tag=*/9, 10));
  sched.Run();
  EXPECT_EQ(rec.WaitCount(9), 1u);
  EXPECT_DOUBLE_EQ(rec.MeanWait(9), 90.0);
  EXPECT_DOUBLE_EQ(rec.MeanPairWait(9, 7), 90.0);
  EXPECT_DOUBLE_EQ(rec.MeanPairWait(7, 9), 0.0);  // ordered pair
}

TEST(CrosstalkTest, MeanOverMultipleWaits) {
  sim::Scheduler sched;
  sim::SimMutex m(sched);
  CrosstalkRecorder rec;
  m.set_observer(&rec);
  // Holder for 100; two waiters of type 9 arrive at 20 and 40.
  sim::Spawn(sched, HoldFor(sched, m, 7, 100));
  sim::SpawnAfter(sched, 20, HoldFor(sched, m, 9, 10));
  sim::SpawnAfter(sched, 40, HoldFor(sched, m, 9, 10));
  sched.Run();
  // First waits 80; second waits 100-40+10 = 70 (queued behind first).
  EXPECT_EQ(rec.WaitCount(9), 2u);
  EXPECT_DOUBLE_EQ(rec.MeanWait(9), (80.0 + 70.0) / 2);
}

TEST(CrosstalkTest, SecondWaiterBlamesHolderAtEnqueue) {
  sim::Scheduler sched;
  sim::SimMutex m(sched);
  CrosstalkRecorder rec;
  m.set_observer(&rec);
  sim::Spawn(sched, HoldFor(sched, m, 1, 50));
  sim::SpawnAfter(sched, 10, HoldFor(sched, m, 2, 50));
  sim::SpawnAfter(sched, 60, HoldFor(sched, m, 3, 10));  // tag 2 holds now
  sched.Run();
  EXPECT_DOUBLE_EQ(rec.MeanPairWait(2, 1), 40.0);
  EXPECT_DOUBLE_EQ(rec.MeanPairWait(3, 2), 40.0);
  EXPECT_DOUBLE_EQ(rec.MeanPairWait(3, 1), 0.0);
}

TEST(CrosstalkTest, PairRowsSortedByMeanWait) {
  sim::Scheduler sched;
  sim::SimMutex m1(sched), m2(sched);
  CrosstalkRecorder rec;
  m1.set_observer(&rec);
  m2.set_observer(&rec);
  sim::Spawn(sched, HoldFor(sched, m1, 1, 100));
  sim::SpawnAfter(sched, 50, HoldFor(sched, m1, 2, 10));  // waits 50
  sim::Spawn(sched, HoldFor(sched, m2, 3, 30));
  sim::SpawnAfter(sched, 20, HoldFor(sched, m2, 4, 10));  // waits 10
  sched.Run();
  auto rows = rec.PairRows();
  ASSERT_EQ(rows.size(), 2u);
  EXPECT_EQ(rows[0].waiter, 2u);
  EXPECT_EQ(rows[0].holder, 1u);
  EXPECT_EQ(rows[1].waiter, 4u);
  EXPECT_GE(rows[0].mean_wait_ns, rows[1].mean_wait_ns);
}

TEST(CrosstalkTest, RenderUsesNamer) {
  sim::Scheduler sched;
  sim::SimMutex m(sched);
  CrosstalkRecorder rec;
  m.set_observer(&rec);
  sim::Spawn(sched, HoldFor(sched, m, 1, 100));
  sim::SpawnAfter(sched, 10, HoldFor(sched, m, 2, 10));
  sched.Run();
  std::string text = rec.Render([](uint64_t tag) {
    return tag == 1 ? std::string("AdminConfirm") : std::string("BestSellers");
  });
  EXPECT_NE(text.find("BestSellers <- AdminConfirm"), std::string::npos);
}

}  // namespace
}  // namespace whodunit::crosstalk
