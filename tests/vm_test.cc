#include "src/vm/interpreter.h"

#include <gtest/gtest.h>

#include <vector>

#include "src/vm/program_builder.h"

namespace whodunit::vm {
namespace {

TEST(ProgramBuilderTest, BuildsInstructions) {
  ProgramBuilder b("p");
  b.MovRI(1, 42).MovRR(2, 1).Halt();
  Program p = b.Build();
  EXPECT_EQ(p.code.size(), 3u);
  EXPECT_EQ(p.code[0].op, Opcode::kMovRI);
  EXPECT_EQ(p.code[0].imm, 42);
  EXPECT_NE(p.id, 0u);
}

TEST(ProgramBuilderTest, DistinctProgramsDistinctIds) {
  Program a = ProgramBuilder("a").Halt().Build();
  Program b = ProgramBuilder("b").Halt().Build();
  EXPECT_NE(a.id, b.id);
}

TEST(ProgramBuilderTest, ForwardAndBackwardLabels) {
  ProgramBuilder b("loop");
  // r1 = 0; do { r1 += 1 } while (r1 != 5)
  const int loop = b.DefineLabel();
  b.MovRI(1, 0).Bind(loop).AddRI(1, 1).CmpRI(1, 5).Jne(loop).Halt();
  Program p = b.Build();
  CpuState cpu;
  Memory mem;
  Interpreter interp;
  interp.Execute(p, 0, cpu, mem);
  EXPECT_EQ(cpu.regs[1], 5u);
}

TEST(InterpreterTest, MovSemantics) {
  ProgramBuilder b("movs");
  b.MovRI(0, 1000)        // r0 = base
      .MovRI(1, 7)
      .MovMR(0, 0, 1)     // [1000] = 7
      .MovRM(2, 0, 0)     // r2 = [1000]
      .MovMI(0, 8, 9)     // [1008] = 9
      .MovMM(0, 16, 0, 8) // [1016] = [1008]
      .Halt();
  CpuState cpu;
  Memory mem;
  Interpreter interp;
  interp.Execute(b.Build(), 0, cpu, mem);
  EXPECT_EQ(cpu.regs[2], 7u);
  EXPECT_EQ(mem.Read(1008), 9u);
  EXPECT_EQ(mem.Read(1016), 9u);
}

TEST(InterpreterTest, ArithmeticAndMemoryOps) {
  ProgramBuilder b("arith");
  b.MovRI(0, 1000)
      .MovRI(1, 10)
      .AddRI(1, 5)     // 15
      .SubRI(1, 3)     // 12
      .MulRI(1, 4)     // 48
      .MovRI(2, 2)
      .AddRR(1, 2)     // 50
      .MovMI(0, 0, 100)
      .IncM(0, 0)      // 101
      .IncM(0, 0)      // 102
      .DecM(0, 0)      // 101
      .AddMI(0, 0, 9)  // 110
      .Halt();
  CpuState cpu;
  Memory mem;
  Interpreter interp;
  interp.Execute(b.Build(), 0, cpu, mem);
  EXPECT_EQ(cpu.regs[1], 50u);
  EXPECT_EQ(mem.Read(1000), 110u);
}

TEST(InterpreterTest, ConditionalBranches) {
  // Compute max(r1, r2) into r3.
  ProgramBuilder b("max");
  const int r2_bigger = b.DefineLabel();
  const int done = b.DefineLabel();
  b.CmpRR(1, 2).Jl(r2_bigger).MovRR(3, 1).Jmp(done).Bind(r2_bigger).MovRR(3, 2).Bind(done).Halt();
  Program p = b.Build();
  Interpreter interp;
  Memory mem;
  {
    CpuState cpu;
    cpu.regs[1] = 10;
    cpu.regs[2] = 3;
    interp.Execute(p, 0, cpu, mem);
    EXPECT_EQ(cpu.regs[3], 10u);
  }
  {
    CpuState cpu;
    cpu.regs[1] = 2;
    cpu.regs[2] = 8;
    interp.Execute(p, 0, cpu, mem);
    EXPECT_EQ(cpu.regs[3], 8u);
  }
}

TEST(InterpreterTest, CmpMIAndJge) {
  ProgramBuilder b("cmpmi");
  const int ge = b.DefineLabel();
  b.MovRI(0, 500)
      .MovMI(0, 0, 7)
      .CmpMI(0, 0, 7)
      .Jge(ge)
      .MovRI(5, 111)  // skipped
      .Bind(ge)
      .MovRI(6, 222)
      .Halt();
  CpuState cpu;
  Memory mem;
  Interpreter interp;
  interp.Execute(b.Build(), 0, cpu, mem);
  EXPECT_EQ(cpu.regs[5], 0u);
  EXPECT_EQ(cpu.regs[6], 222u);
}

TEST(InterpreterTest, TranslationCachePaysOnce) {
  Program p = ProgramBuilder("t").MovRI(1, 1).Halt().Build();
  Interpreter interp;
  CpuState cpu;
  Memory mem;
  ExecResult first = interp.Execute(p, 0, cpu, mem, nullptr, Interpreter::Mode::kEmulate);
  EXPECT_TRUE(first.translated);
  EXPECT_TRUE(interp.IsTranslated(p.id));
  ExecResult second = interp.Execute(p, 0, cpu, mem, nullptr, Interpreter::Mode::kEmulate);
  EXPECT_FALSE(second.translated);
  EXPECT_LT(second.guest_cycles, first.guest_cycles);
  EXPECT_EQ(interp.translations_performed(), 1u);

  interp.FlushTranslationCache();
  ExecResult third = interp.Execute(p, 0, cpu, mem, nullptr, Interpreter::Mode::kEmulate);
  EXPECT_TRUE(third.translated);
  EXPECT_EQ(third.guest_cycles, first.guest_cycles);
}

TEST(InterpreterTest, CostRegimesOrdered) {
  // Table 3's ordering: direct << cached emulation << translate+emulate.
  Program p = ProgramBuilder("costs").MovRI(0, 64).MovMI(0, 0, 1).IncM(0, 0).Halt().Build();
  Interpreter interp;
  Memory mem;
  CpuState cpu;
  ExecResult cold = interp.Execute(p, 0, cpu, mem, nullptr, Interpreter::Mode::kEmulate);
  ExecResult warm = interp.Execute(p, 0, cpu, mem, nullptr, Interpreter::Mode::kEmulate);
  ExecResult direct = interp.Execute(p, 0, cpu, mem, nullptr, Interpreter::Mode::kDirect);
  EXPECT_LT(direct.guest_cycles, warm.guest_cycles);
  EXPECT_LT(warm.guest_cycles, cold.guest_cycles);
  EXPECT_EQ(direct.guest_cycles, direct.direct_cycles);
}

TEST(InterpreterTest, DirectModeDeliversNoHooks) {
  struct Counting : InstructionObserver {
    int events = 0;
    void OnMov(ThreadId, const Loc&, const Loc&) override { ++events; }
    void OnWriteValue(ThreadId, const Loc&) override { ++events; }
    void OnRead(ThreadId, const Loc&) override { ++events; }
    void OnRetire(ThreadId) override { ++events; }
  } obs;
  Program p = ProgramBuilder("d").MovRI(1, 5).MovRR(2, 1).Halt().Build();
  Interpreter interp;
  CpuState cpu;
  Memory mem;
  interp.Execute(p, 0, cpu, mem, &obs, Interpreter::Mode::kDirect);
  EXPECT_EQ(obs.events, 0);
  interp.Execute(p, 0, cpu, mem, &obs, Interpreter::Mode::kEmulate);
  EXPECT_GT(obs.events, 0);
}

TEST(InterpreterTest, ObserverSeesMovAndWriteEvents) {
  struct Recorder : InstructionObserver {
    std::vector<std::string> log;
    void OnMov(ThreadId, const Loc& dst, const Loc& src) override {
      log.push_back("mov " + dst.ToString() + " <- " + src.ToString());
    }
    void OnWriteValue(ThreadId, const Loc& dst) override {
      log.push_back("write " + dst.ToString());
    }
    void OnLock(ThreadId, uint64_t id) override { log.push_back("lock " + std::to_string(id)); }
    void OnUnlock(ThreadId, uint64_t id) override {
      log.push_back("unlock " + std::to_string(id));
    }
  } obs;
  ProgramBuilder b("events");
  b.Lock(9)
      .MovRI(0, 256)   // write r0
      .MovMR(0, 0, 1)  // mov [256] <- r1
      .IncM(0, 0)      // write [256]
      .Unlock(9)
      .Halt();
  Interpreter interp;
  CpuState cpu;
  Memory mem;
  interp.Execute(b.Build(), 3, cpu, mem, &obs);
  ASSERT_EQ(obs.log.size(), 5u);
  EXPECT_EQ(obs.log[0], "lock 9");
  EXPECT_EQ(obs.log[1], "write r0@t3");
  EXPECT_EQ(obs.log[2], "mov [256] <- r1@t3");
  EXPECT_EQ(obs.log[3], "write [256]");
  EXPECT_EQ(obs.log[4], "unlock 9");
}

TEST(InterpreterTest, InstructionCountsAndRetires) {
  struct Retires : InstructionObserver {
    int64_t retired = 0;
    void OnRetire(ThreadId) override { ++retired; }
  } obs;
  ProgramBuilder b("count");
  const int loop = b.DefineLabel();
  b.MovRI(1, 0).Bind(loop).AddRI(1, 1).CmpRI(1, 10).Jne(loop).Halt();
  CpuState cpu;
  Memory mem;
  Interpreter interp;
  ExecResult r = interp.Execute(b.Build(), 0, cpu, mem, &obs);
  EXPECT_EQ(r.instructions, obs.retired);
  EXPECT_EQ(r.instructions, 1 + 10 * 3 + 1);  // mov + 10*(add,cmp,jne) + halt
}

TEST(InterpreterTest, HaltStopsExecution) {
  Program p = ProgramBuilder("halt").MovRI(1, 1).Halt().MovRI(1, 99).Build();
  CpuState cpu;
  Memory mem;
  Interpreter interp;
  interp.Execute(p, 0, cpu, mem);
  EXPECT_EQ(cpu.regs[1], 1u);
}

TEST(DisassemblerTest, RendersReadableText) {
  ProgramBuilder b("demo");
  b.Lock(4).MovRM(3, 0, 8).IncM(0, 0).Unlock(4).Halt();
  std::string text = Disassemble(b.Build());
  EXPECT_NE(text.find("demo:"), std::string::npos);
  EXPECT_NE(text.find("lock #4"), std::string::npos);
  EXPECT_NE(text.find("mov_rm r3, [r0+8]"), std::string::npos);
  EXPECT_NE(text.find("inc_m [r0+0]"), std::string::npos);
}

TEST(LocTest, EqualityAndHashing) {
  EXPECT_EQ(Loc::Mem(8), Loc::Mem(8));
  EXPECT_NE(Loc::Mem(8), Loc::Mem(16));
  EXPECT_NE(Loc::Mem(8), Loc::Reg(0, 8));
  EXPECT_EQ(Loc::Reg(1, 3), Loc::Reg(1, 3));
  EXPECT_NE(Loc::Reg(1, 3), Loc::Reg(2, 3));
  LocHash h;
  EXPECT_EQ(h(Loc::Mem(8)), h(Loc::Mem(8)));
  EXPECT_NE(h(Loc::Mem(8)), h(Loc::Reg(0, 8)));
}

}  // namespace
}  // namespace whodunit::vm
