#include "src/context/transaction_context.h"

#include <gtest/gtest.h>

#include "src/context/synopsis.h"

namespace whodunit::context {
namespace {

Element H(uint32_t id) { return Element{ElementKind::kHandler, id}; }
Element S(uint32_t id) { return Element{ElementKind::kStage, id}; }
Element P(uint32_t id) { return Element{ElementKind::kCallPath, id}; }

TransactionContext Ctx(std::initializer_list<Element> elems) {
  TransactionContext c;
  for (Element e : elems) {
    c.Append(e);
  }
  return c;
}

TEST(TransactionContextTest, AppendBuildsSequence) {
  TransactionContext c = Ctx({H(1), H(2), H(3)});
  EXPECT_EQ(c.size(), 3u);
  EXPECT_EQ(c.elements()[0], H(1));
  EXPECT_EQ(c.elements()[2], H(3));
}

TEST(TransactionContextTest, ConsecutiveDuplicatesCollapse) {
  // An event handler re-scheduled to finish a partial read:
  // [A, B, B, B] collapses to [A, B] (paper §4.1).
  TransactionContext c = Ctx({H(1), H(2), H(2), H(2)});
  EXPECT_EQ(c, Ctx({H(1), H(2)}));
}

TEST(TransactionContextTest, LoopOfLengthTwoPruned) {
  // Persistent connection: [accept, read, write, read] prunes to
  // [accept, read] — the paper's exact example.
  TransactionContext c;
  c.Append(H(0));  // accept
  c.Append(H(1));  // read
  c.Append(H(2));  // write
  c.Append(H(1));  // read again -> closes loop
  EXPECT_EQ(c, Ctx({H(0), H(1)}));
  // A second iteration of the loop keeps it stable.
  c.Append(H(2));
  c.Append(H(1));
  EXPECT_EQ(c, Ctx({H(0), H(1)}));
}

TEST(TransactionContextTest, PruningDisabledKeepsFullHistory) {
  TransactionContext c;
  c.Append(H(1), /*prune=*/false);
  c.Append(H(2), false);
  c.Append(H(1), false);
  EXPECT_EQ(c.size(), 3u);
}

TEST(TransactionContextTest, DistinctKindsDoNotCollide) {
  // Handler 1 and stage 1 are different elements.
  TransactionContext c = Ctx({H(1), S(1)});
  EXPECT_EQ(c.size(), 2u);
}

TEST(TransactionContextTest, ConcatPrunesAtSeam) {
  TransactionContext prefix = Ctx({H(1), H(2)});
  TransactionContext suffix = Ctx({H(2), H(3)});
  TransactionContext c = TransactionContext::Concat(prefix, suffix);
  EXPECT_EQ(c, Ctx({H(1), H(2), H(3)}));
}

TEST(TransactionContextTest, HasPrefix) {
  TransactionContext full = Ctx({P(1), S(2), S(3)});
  EXPECT_TRUE(full.HasPrefix(Ctx({P(1)})));
  EXPECT_TRUE(full.HasPrefix(Ctx({P(1), S(2)})));
  EXPECT_TRUE(full.HasPrefix(full));
  EXPECT_FALSE(full.HasPrefix(Ctx({S(2)})));
  EXPECT_FALSE(Ctx({P(1)}).HasPrefix(full));
  EXPECT_TRUE(full.HasPrefix(TransactionContext{}));
}

TEST(TransactionContextTest, HashStableAndDiscriminating) {
  EXPECT_EQ(Ctx({H(1), H(2)}).Hash(), Ctx({H(1), H(2)}).Hash());
  EXPECT_NE(Ctx({H(1), H(2)}).Hash(), Ctx({H(2), H(1)}).Hash());
  EXPECT_NE(Ctx({H(1)}).Hash(), Ctx({S(1)}).Hash());
}

TEST(TransactionContextTest, ToStringUsesNamer) {
  TransactionContext c = Ctx({H(0), H(1)});
  auto namer = [](ElementKind, uint32_t id) {
    return id == 0 ? std::string("accept") : std::string("read");
  };
  EXPECT_EQ(c.ToString(namer), "[accept|read]");
}

TEST(SynopsisTest, WireBytesMatchesPaperEncoding) {
  // 4 bytes per part plus one '#' between parts (paper §7.4: "Whodunit
  // uses 4 bytes for each transaction context synopsis").
  EXPECT_EQ(Synopsis{}.WireBytes(), 0u);
  EXPECT_EQ((Synopsis{{1}}).WireBytes(), 4u);
  EXPECT_EQ((Synopsis{{1, 2}}).WireBytes(), 9u);
  EXPECT_EQ((Synopsis{{1, 2, 3}}).WireBytes(), 14u);
}

TEST(SynopsisTest, PrefixRecognition) {
  Synopsis alpha{{12}};
  Synopsis composite = alpha.Extend(Synopsis{{7}});
  EXPECT_EQ(composite, (Synopsis{{12, 7}}));
  EXPECT_TRUE(composite.HasPrefix(alpha));
  EXPECT_FALSE(composite.HasPrefix(Synopsis{{7}}));
  EXPECT_FALSE(alpha.HasPrefix(composite));
}

TEST(SynopsisTest, ToStringUsesDelimiter) {
  EXPECT_EQ((Synopsis{{12, 7}}).ToString(), "12#7");
  EXPECT_EQ((Synopsis{{3}}).ToString(), "3");
}

TEST(SynopsisDictionaryTest, InternsAndLooksUp) {
  SynopsisDictionary dict;
  TransactionContext a = Ctx({H(1)});
  TransactionContext b = Ctx({H(1), H(2)});
  uint32_t ia = dict.Intern(a);
  uint32_t ib = dict.Intern(b);
  EXPECT_NE(ia, ib);
  EXPECT_EQ(dict.Intern(a), ia);
  EXPECT_EQ(dict.Lookup(ia), a);
  EXPECT_EQ(dict.Lookup(ib), b);
  EXPECT_EQ(dict.size(), 2u);
  EXPECT_TRUE(dict.Contains(ia));
  EXPECT_FALSE(dict.Contains(99));
}

}  // namespace
}  // namespace whodunit::context
