// Property-based tests for transaction contexts and synopses.
#include <gtest/gtest.h>

#include <set>

#include "src/context/synopsis.h"
#include "src/context/transaction_context.h"
#include "src/util/rng.h"

namespace whodunit::context {
namespace {

Element RandomElement(util::Rng& rng, uint32_t universe) {
  return Element{static_cast<ElementKind>(rng.NextBelow(3)),
                 static_cast<uint32_t>(rng.NextBelow(universe))};
}

class ContextPropertyTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(ContextPropertyTest, PrunedContextsNeverRepeatAnElement) {
  // The §4.1 pruning rule implies: after any append stream, a pruned
  // context contains each element at most once (a repeat would have
  // closed a loop and been cut).
  util::Rng rng(GetParam());
  TransactionContext ctxt;
  for (int i = 0; i < 500; ++i) {
    ctxt.Append(RandomElement(rng, 10));
    std::set<uint64_t> seen;
    for (const Element& e : ctxt.elements()) {
      EXPECT_TRUE(seen.insert(e.Packed()).second) << "duplicate element after pruning";
    }
  }
}

TEST_P(ContextPropertyTest, PrunedSizeBoundedByUniverse) {
  util::Rng rng(GetParam() ^ 1);
  TransactionContext ctxt;
  constexpr uint32_t kUniverse = 7;
  for (int i = 0; i < 1000; ++i) {
    ctxt.Append(RandomElement(rng, kUniverse));
    // 3 kinds x 7 ids = 21 possible elements.
    EXPECT_LE(ctxt.size(), 3u * kUniverse);
  }
}

TEST_P(ContextPropertyTest, AppendIsDeterministic) {
  util::Rng r1(GetParam() ^ 2), r2(GetParam() ^ 2);
  TransactionContext a, b;
  for (int i = 0; i < 300; ++i) {
    a.Append(RandomElement(r1, 12));
    b.Append(RandomElement(r2, 12));
  }
  EXPECT_EQ(a, b);
  EXPECT_EQ(a.Hash(), b.Hash());
}

TEST_P(ContextPropertyTest, AppendExistingLastElementIsIdempotent) {
  util::Rng rng(GetParam() ^ 3);
  TransactionContext ctxt;
  for (int i = 0; i < 50; ++i) {
    ctxt.Append(RandomElement(rng, 8));
  }
  if (ctxt.empty()) {
    return;
  }
  TransactionContext before = ctxt;
  ctxt.Append(ctxt.elements().back());
  EXPECT_EQ(ctxt, before);
}

TEST_P(ContextPropertyTest, ConcatWithEmptyIsIdentity) {
  util::Rng rng(GetParam() ^ 4);
  TransactionContext ctxt;
  for (int i = 0; i < 30; ++i) {
    ctxt.Append(RandomElement(rng, 8));
  }
  EXPECT_EQ(TransactionContext::Concat(ctxt, TransactionContext{}), ctxt);
  EXPECT_EQ(TransactionContext::Concat(TransactionContext{}, ctxt), ctxt);
}

TEST_P(ContextPropertyTest, PrefixPartialOrder) {
  util::Rng rng(GetParam() ^ 5);
  TransactionContext ctxt;
  for (int i = 0; i < 40; ++i) {
    ctxt.Append(RandomElement(rng, 20));
  }
  // Every prefix of the element list is a HasPrefix-prefix, and the
  // relation is reflexive.
  EXPECT_TRUE(ctxt.HasPrefix(ctxt));
  TransactionContext prefix;
  for (size_t len = 0; len < ctxt.size(); ++len) {
    EXPECT_TRUE(ctxt.HasPrefix(prefix));
    prefix = TransactionContext(std::vector<Element>(
        ctxt.elements().begin(), ctxt.elements().begin() + static_cast<long>(len) + 1));
  }
  EXPECT_TRUE(ctxt.HasPrefix(prefix));
}

TEST_P(ContextPropertyTest, SynopsisExtendPreservesPrefix) {
  util::Rng rng(GetParam() ^ 6);
  Synopsis syn;
  for (int i = 0; i < 10; ++i) {
    Synopsis longer = syn.Extend(Synopsis{{static_cast<uint32_t>(rng.NextBelow(100))}});
    EXPECT_TRUE(longer.HasPrefix(syn));
    EXPECT_EQ(longer.parts.size(), syn.parts.size() + 1);
    // Wire bytes grow by 4 (+1 for the '#' once non-empty).
    EXPECT_EQ(longer.WireBytes(), syn.WireBytes() + (syn.empty() ? 4 : 5));
    syn = longer;
  }
}

TEST_P(ContextPropertyTest, DictionaryInternIsStable) {
  util::Rng rng(GetParam() ^ 7);
  SynopsisDictionary dict;
  std::vector<TransactionContext> ctxts;
  std::vector<uint32_t> ids;
  for (int i = 0; i < 100; ++i) {
    TransactionContext c;
    const int len = 1 + static_cast<int>(rng.NextBelow(5));
    for (int j = 0; j < len; ++j) {
      c.Append(RandomElement(rng, 6));
    }
    ctxts.push_back(c);
    ids.push_back(dict.Intern(c));
  }
  // Re-interning yields the same ids; lookup inverts intern.
  for (size_t i = 0; i < ctxts.size(); ++i) {
    EXPECT_EQ(dict.Intern(ctxts[i]), ids[i]);
    EXPECT_EQ(dict.Lookup(ids[i]), ctxts[i]);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, ContextPropertyTest, ::testing::Values(1, 7, 42, 1001, 9999));

}  // namespace
}  // namespace whodunit::context
