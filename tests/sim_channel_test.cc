#include "src/sim/channel.h"

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "src/sim/task.h"

namespace whodunit::sim {
namespace {

Process Consumer(Channel<int>& ch, std::vector<int>& out) {
  for (;;) {
    auto msg = co_await ch.Receive();
    if (!msg) {
      break;
    }
    out.push_back(*msg);
  }
}

TEST(ChannelTest, FifoDelivery) {
  Scheduler s;
  Channel<int> ch(s);
  std::vector<int> out;
  Spawn(s, Consumer(ch, out));
  ch.Send(1);
  ch.Send(2);
  ch.Send(3);
  ch.Close();
  s.Run();
  EXPECT_EQ(out, (std::vector<int>{1, 2, 3}));
}

TEST(ChannelTest, CloseWakesBlockedReceiver) {
  Scheduler s;
  Channel<int> ch(s);
  std::vector<int> out;
  bool finished = false;
  Spawn(s, [](Channel<int>& c, bool& done) -> Process {
    auto msg = co_await c.Receive();
    EXPECT_FALSE(msg.has_value());
    done = true;
  }(ch, finished));
  s.ScheduleAt(50, [&] { ch.Close(); });
  s.Run();
  EXPECT_TRUE(finished);
  EXPECT_EQ(s.now(), 50);
}

TEST(ChannelTest, LatencyDelaysDelivery) {
  Scheduler s;
  Channel<int> ch(s, /*latency=*/100);
  SimTime received_at = -1;
  Spawn(s, [](Channel<int>& c, Scheduler& sched, SimTime& t) -> Process {
    auto msg = co_await c.Receive();
    EXPECT_TRUE(msg.has_value());
    t = sched.now();
  }(ch, s, received_at));
  s.ScheduleAt(10, [&] { ch.Send(7); });
  s.Run();
  EXPECT_EQ(received_at, 110);
}

TEST(ChannelTest, MultipleReceiversServedFifo) {
  Scheduler s;
  Channel<int> ch(s);
  std::vector<std::pair<int, int>> got;  // (receiver, value)
  auto receiver = [](Channel<int>& c, int who, std::vector<std::pair<int, int>>& g) -> Process {
    auto msg = co_await c.Receive();
    EXPECT_TRUE(msg.has_value());
    g.emplace_back(who, *msg);
  };
  Spawn(s, receiver(ch, 1, got));
  Spawn(s, receiver(ch, 2, got));
  s.ScheduleAt(5, [&] {
    ch.Send(10);
    ch.Send(20);
  });
  s.Run();
  ASSERT_EQ(got.size(), 2u);
  EXPECT_EQ(got[0], std::make_pair(1, 10));
  EXPECT_EQ(got[1], std::make_pair(2, 20));
}

TEST(ChannelTest, BufferedMessagesSurviveUntilReceive) {
  Scheduler s;
  Channel<std::string> ch(s);
  ch.Send("hello");
  s.Run();  // deliver to buffer
  EXPECT_EQ(ch.pending(), 1u);
  std::string got;
  Spawn(s, [](Channel<std::string>& c, std::string& out) -> Process {
    auto msg = co_await c.Receive();
    EXPECT_TRUE(msg.has_value());
    out = *msg;
  }(ch, got));
  s.Run();
  EXPECT_EQ(got, "hello");
  EXPECT_EQ(ch.pending(), 0u);
}

TEST(ChannelTest, DrainsBufferBeforeReportingClosed) {
  Scheduler s;
  Channel<int> ch(s);
  ch.Send(1);
  ch.Send(2);
  s.Run();
  ch.Close();
  std::vector<int> out;
  Spawn(s, Consumer(ch, out));
  s.Run();
  EXPECT_EQ(out, (std::vector<int>{1, 2}));
}

TEST(ChannelTest, CountsMessages) {
  Scheduler s;
  Channel<int> ch(s);
  ch.Send(1);
  ch.Send(2);
  EXPECT_EQ(ch.messages_sent(), 2u);
}

Process PingPong(Scheduler& sched, Channel<int>& ping, Channel<int>& pong, int rounds) {
  for (int i = 0; i < rounds; ++i) {
    ping.Send(i);
    auto r = co_await pong.Receive();
    EXPECT_TRUE(r.has_value());
    EXPECT_EQ(*r, i * 2);
  }
  ping.Close();
  (void)sched;
}

Process Echo(Channel<int>& ping, Channel<int>& pong) {
  for (;;) {
    auto msg = co_await ping.Receive();
    if (!msg) {
      break;
    }
    pong.Send(*msg * 2);
  }
}

TEST(ChannelTest, RequestResponseAcrossLatency) {
  Scheduler s;
  Channel<int> ping(s, 10), pong(s, 10);
  Spawn(s, Echo(ping, pong));
  Spawn(s, PingPong(s, ping, pong, 5));
  s.Run();
  // 5 round trips of 20 ns each, plus 10 ns for the in-band close to
  // propagate to the echo server.
  EXPECT_EQ(s.now(), 110);
}

}  // namespace
}  // namespace whodunit::sim
