// Tests for profile analysis queries (paper §1's motivating example).
#include "src/profiler/analysis.h"

#include <gtest/gtest.h>

#include "src/apps/bookstore/bookstore.h"

namespace whodunit::profiler {
namespace {

StageProfiler::Options Opts(std::string name) {
  StageProfiler::Options o;
  o.name = std::move(name);
  o.sample_period = 100;
  return o;
}

TEST(AnalysisTest, TopContextsRankedByCpu) {
  Deployment dep;
  auto& stage = dep.AddStage(std::make_unique<StageProfiler>(dep, Opts("db")));
  ThreadProfile& tp = stage.CreateThread("t");
  auto fn = stage.RegisterFunction("work");

  stage.OnReceive(tp, context::Synopsis{{1}});
  {
    auto f = stage.EnterFrame(tp, fn);
    stage.ChargeCpu(tp, 3000);
  }
  stage.OnReceive(tp, context::Synopsis{{2}});
  {
    auto f = stage.EnterFrame(tp, fn);
    stage.ChargeCpu(tp, 1000);
  }

  Analysis analysis(dep);
  auto rows = analysis.TopContexts(stage);
  ASSERT_EQ(rows.size(), 2u);
  EXPECT_EQ(rows[0].label, (context::Synopsis{{1}}));
  EXPECT_DOUBLE_EQ(rows[0].share, 75.0);
  EXPECT_DOUBLE_EQ(rows[1].share, 25.0);
}

TEST(AnalysisTest, WhoCausesAttributesFunctionByContext) {
  Deployment dep;
  auto& stage = dep.AddStage(std::make_unique<StageProfiler>(dep, Opts("db")));
  ThreadProfile& tp = stage.CreateThread("t");
  auto exec_fn = stage.RegisterFunction("execute");
  auto sort_fn = stage.RegisterFunction("sort");
  auto scan_fn = stage.RegisterFunction("scan");

  // Context 1 sorts a lot; context 2 only scans.
  stage.OnReceive(tp, context::Synopsis{{1}});
  {
    auto f0 = stage.EnterFrame(tp, exec_fn);
    auto f1 = stage.EnterFrame(tp, sort_fn);
    stage.ChargeCpu(tp, 9000);
  }
  stage.OnReceive(tp, context::Synopsis{{2}});
  {
    auto f0 = stage.EnterFrame(tp, exec_fn);
    {
      auto f1 = stage.EnterFrame(tp, scan_fn);
      stage.ChargeCpu(tp, 5000);
    }
    auto f2 = stage.EnterFrame(tp, sort_fn);
    stage.ChargeCpu(tp, 1000);
  }

  Analysis analysis(dep);
  auto rows = analysis.WhoCauses(stage, "sort");
  ASSERT_EQ(rows.size(), 2u);
  EXPECT_EQ(rows[0].label, (context::Synopsis{{1}}));
  EXPECT_EQ(rows[0].cpu, 9000);
  EXPECT_DOUBLE_EQ(rows[0].share, 90.0);
  EXPECT_EQ(rows[1].cpu, 1000);

  // A function that never ran yields nothing.
  EXPECT_TRUE(analysis.WhoCauses(stage, "no_such_fn").empty());
  // Render form mentions the function and the top context.
  std::string text = analysis.RenderWhoCauses(stage, "sort");
  EXPECT_NE(text.find("who causes 'sort'"), std::string::npos);
  EXPECT_NE(text.find("90%"), std::string::npos);
}

TEST(AnalysisTest, BookstoreSortBlamedOnBestSellers) {
  // End to end: the paper's §1 promise. The DB's sort routine must be
  // blamed primarily on BestSellers and SearchResult requests.
  apps::BookstoreOptions o;
  o.clients = 100;
  o.duration = sim::Seconds(600);
  o.warmup = sim::Seconds(120);
  apps::BookstoreResult r = apps::RunBookstore(o);
  ASSERT_FALSE(r.who_causes_sort.empty());
  const size_t best = r.who_causes_sort.find("servlet_BestSellers");
  const size_t search = r.who_causes_sort.find("servlet_SearchResult");
  ASSERT_NE(best, std::string::npos);
  ASSERT_NE(search, std::string::npos);
  // BestSellers listed first (largest share of the sort's CPU).
  EXPECT_LT(best, search);
}

}  // namespace
}  // namespace whodunit::profiler
