#include "src/util/interner.h"

#include <gtest/gtest.h>

namespace whodunit::util {
namespace {

TEST(InternerTest, DenseIdsFromZero) {
  StringInterner in;
  EXPECT_EQ(in.Intern("alpha"), 0u);
  EXPECT_EQ(in.Intern("beta"), 1u);
  EXPECT_EQ(in.Intern("gamma"), 2u);
  EXPECT_EQ(in.size(), 3u);
}

TEST(InternerTest, RepeatedInternReturnsSameId) {
  StringInterner in;
  uint32_t a = in.Intern("foo");
  EXPECT_EQ(in.Intern("foo"), a);
  EXPECT_EQ(in.size(), 1u);
}

TEST(InternerTest, FindWithoutInsert) {
  StringInterner in;
  in.Intern("x");
  EXPECT_EQ(in.Find("x"), 0u);
  EXPECT_EQ(in.Find("y"), StringInterner::kNotFound);
  EXPECT_EQ(in.size(), 1u);
}

TEST(InternerTest, NameOfRoundTrips) {
  StringInterner in;
  uint32_t id = in.Intern("ap_queue_push");
  EXPECT_EQ(in.NameOf(id), "ap_queue_push");
}

TEST(InternerTest, EmptyStringIsValid) {
  StringInterner in;
  uint32_t id = in.Intern("");
  EXPECT_EQ(in.NameOf(id), "");
  EXPECT_EQ(in.Find(""), id);
}

TEST(InternerTest, ManyStringsStayStable) {
  StringInterner in;
  for (int i = 0; i < 1000; ++i) {
    EXPECT_EQ(in.Intern("fn_" + std::to_string(i)), static_cast<uint32_t>(i));
  }
  for (int i = 0; i < 1000; ++i) {
    EXPECT_EQ(in.NameOf(static_cast<uint32_t>(i)), "fn_" + std::to_string(i));
  }
}

}  // namespace
}  // namespace whodunit::util
