// Interning invariants of the hash-consed context tree, and randomized
// equivalence against the legacy value API (transaction_context.h).
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "src/context/context_tree.h"
#include "src/context/synopsis.h"
#include "src/context/transaction_context.h"
#include "src/util/rng.h"

namespace whodunit::context {
namespace {

Element E(ElementKind kind, uint32_t id) { return Element{kind, id}; }

Element RandomElement(util::Rng& rng, uint32_t universe) {
  return Element{static_cast<ElementKind>(rng.NextBelow(3)),
                 static_cast<uint32_t>(rng.NextBelow(universe))};
}

TEST(ContextTreeTest, EmptyContextProperties) {
  ContextTree tree;
  EXPECT_TRUE(tree.Empty(kEmptyContext));
  EXPECT_EQ(tree.SizeOf(kEmptyContext), 0u);
  EXPECT_EQ(tree.HashOf(kEmptyContext), TransactionContext{}.Hash());
  EXPECT_TRUE(tree.Materialize(kEmptyContext).empty());
}

TEST(ContextTreeTest, SameSequenceSameNodeId) {
  // Hash-consing is canonical: appending the same element sequence
  // twice yields the same 32-bit id, so equality is an integer compare.
  ContextTree tree;
  NodeId a = kEmptyContext;
  NodeId b = kEmptyContext;
  const std::vector<Element> seq = {E(ElementKind::kHandler, 1), E(ElementKind::kStage, 2),
                                    E(ElementKind::kCallPath, 7), E(ElementKind::kHandler, 1)};
  for (const Element& e : seq) {
    a = tree.Append(a, e);
  }
  const size_t nodes_after_first = tree.node_count();
  for (const Element& e : seq) {
    b = tree.Append(b, e);
  }
  EXPECT_EQ(a, b);
  // The second pass allocated nothing: every node was consed.
  EXPECT_EQ(tree.node_count(), nodes_after_first);
}

TEST(ContextTreeTest, AppendMatchesLegacyOnFixedLoop) {
  // An A-B-A-B ping-pong: §4.1 pruning must cut the loop exactly like
  // the value API does.
  ContextTree tree;
  TransactionContext legacy;
  NodeId node = kEmptyContext;
  const Element a = E(ElementKind::kHandler, 1);
  const Element b = E(ElementKind::kHandler, 2);
  for (int i = 0; i < 6; ++i) {
    const Element& e = (i % 2 == 0) ? a : b;
    legacy.Append(e);
    node = tree.Append(node, e);
    EXPECT_EQ(tree.Materialize(node), legacy) << "iteration " << i;
  }
}

TEST(ContextTreeTest, HashMatchesLegacyBitForBit) {
  ContextTree tree;
  TransactionContext legacy;
  NodeId node = kEmptyContext;
  for (uint32_t i = 0; i < 20; ++i) {
    const Element e = E(static_cast<ElementKind>(i % 3), i % 5);
    legacy.Append(e);
    node = tree.Append(node, e);
    EXPECT_EQ(tree.HashOf(node), legacy.Hash());
    EXPECT_EQ(tree.SizeOf(node), legacy.size());
  }
}

TEST(ContextTreeTest, InternMaterializeRoundTrip) {
  ContextTree tree;
  const TransactionContext ctxt({E(ElementKind::kStage, 3), E(ElementKind::kCallPath, 9),
                                 E(ElementKind::kStage, 4)});
  const NodeId node = tree.Intern(ctxt);
  EXPECT_EQ(tree.Materialize(node), ctxt);
  EXPECT_EQ(tree.Intern(ctxt), node);  // idempotent
  EXPECT_EQ(tree.HashOf(node), ctxt.Hash());
  EXPECT_EQ(tree.LastElement(node), (E(ElementKind::kStage, 4)));
}

TEST(ContextTreeTest, HasPrefixIsAncestry) {
  ContextTree tree;
  NodeId a = tree.Append(kEmptyContext, E(ElementKind::kHandler, 1));
  NodeId ab = tree.Append(a, E(ElementKind::kHandler, 2));
  NodeId abc = tree.Append(ab, E(ElementKind::kHandler, 3));
  NodeId other = tree.Append(kEmptyContext, E(ElementKind::kHandler, 9));

  EXPECT_TRUE(tree.HasPrefix(abc, kEmptyContext));
  EXPECT_TRUE(tree.HasPrefix(abc, a));
  EXPECT_TRUE(tree.HasPrefix(abc, ab));
  EXPECT_TRUE(tree.HasPrefix(abc, abc));  // not necessarily proper
  EXPECT_FALSE(tree.HasPrefix(ab, abc));  // longer can't be a prefix
  EXPECT_FALSE(tree.HasPrefix(abc, other));
  EXPECT_EQ(tree.ParentOf(abc), ab);
}

class ContextTreeEquivalenceTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(ContextTreeEquivalenceTest, RandomizedAppendMatchesLegacy) {
  // Drive the same random append stream through the legacy value API
  // and the tree; materialized sequence, size, and hash must agree at
  // every step, with and without pruning.
  for (const bool prune : {true, false}) {
    util::Rng rng(GetParam());
    ContextTree tree;
    TransactionContext legacy;
    NodeId node = kEmptyContext;
    // Unpruned contexts grow without bound; keep the stream short
    // enough that the ancestor walks stay cheap.
    const int steps = prune ? 400 : 60;
    for (int i = 0; i < steps; ++i) {
      const Element e = RandomElement(rng, 8);
      legacy.Append(e, prune);
      node = tree.Append(node, e, prune);
      ASSERT_EQ(tree.Materialize(node), legacy) << "step " << i << " prune=" << prune;
      ASSERT_EQ(tree.HashOf(node), legacy.Hash());
      ASSERT_EQ(tree.SizeOf(node), legacy.size());
    }
  }
}

TEST_P(ContextTreeEquivalenceTest, RandomizedConcatMatchesLegacy) {
  // Concat applies pruning at the seam exactly like the legacy
  // TransactionContext::Concat on randomized prefix/suffix pairs.
  util::Rng rng(GetParam() ^ 0xc0ffee);
  ContextTree tree;
  for (int round = 0; round < 200; ++round) {
    TransactionContext prefix, suffix;
    const int plen = static_cast<int>(rng.NextBelow(6));
    const int slen = static_cast<int>(rng.NextBelow(6));
    for (int i = 0; i < plen; ++i) {
      prefix.Append(RandomElement(rng, 5));
    }
    for (int i = 0; i < slen; ++i) {
      suffix.Append(RandomElement(rng, 5));
    }
    const TransactionContext expect = TransactionContext::Concat(prefix, suffix);
    const NodeId got = tree.Concat(tree.Intern(prefix), tree.Intern(suffix));
    ASSERT_EQ(tree.Materialize(got), expect)
        << "round " << round << " prefix=" << prefix.size() << " suffix=" << suffix.size();
    ASSERT_EQ(tree.HashOf(got), expect.Hash());
  }
}

TEST_P(ContextTreeEquivalenceTest, RandomizedHasPrefixMatchesLegacy) {
  util::Rng rng(GetParam() ^ 0xfeed);
  ContextTree tree;
  for (int round = 0; round < 200; ++round) {
    TransactionContext a, b;
    const int alen = static_cast<int>(rng.NextBelow(5));
    const int blen = static_cast<int>(rng.NextBelow(5));
    for (int i = 0; i < alen; ++i) {
      a.Append(RandomElement(rng, 3));
    }
    for (int i = 0; i < blen; ++i) {
      b.Append(RandomElement(rng, 3));
    }
    ASSERT_EQ(tree.HasPrefix(tree.Intern(a), tree.Intern(b)), a.HasPrefix(b))
        << "round " << round;
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, ContextTreeEquivalenceTest,
                         ::testing::Values(1u, 42u, 0xdeadbeefu, 777u));

TEST(ContextTreeTest, GlobalTreeIsSharedAndStable) {
  ContextTree& g1 = GlobalContextTree();
  ContextTree& g2 = GlobalContextTree();
  EXPECT_EQ(&g1, &g2);
  const NodeId n = g1.Append(kEmptyContext, E(ElementKind::kHandler, 12345));
  EXPECT_EQ(g2.Append(kEmptyContext, E(ElementKind::kHandler, 12345)), n);
}

TEST(ContextTreeTest, SynopsisDictionaryNodeAndValuePathsAgree) {
  // The legacy value Intern and the NodeId hot path must assign the
  // same 4-byte part id to the same element sequence.
  SynopsisDictionary dict;
  const TransactionContext ctxt({E(ElementKind::kHandler, 5), E(ElementKind::kStage, 6)});
  const uint32_t via_value = dict.Intern(ctxt);
  const uint32_t via_node = dict.Intern(GlobalContextTree().Intern(ctxt));
  EXPECT_EQ(via_value, via_node);
  EXPECT_EQ(dict.Lookup(via_value), ctxt);
  EXPECT_EQ(dict.LookupNode(via_value), GlobalContextTree().Intern(ctxt));
}

TEST(ContextTreeTest, ToStringMatchesLegacy) {
  const auto namer = [](ElementKind kind, uint32_t id) {
    return std::string(kind == ElementKind::kHandler ? "H" : "x") + std::to_string(id);
  };
  ContextTree tree;
  const TransactionContext ctxt({E(ElementKind::kHandler, 1), E(ElementKind::kHandler, 2)});
  EXPECT_EQ(tree.ToString(tree.Intern(ctxt), namer), ctxt.ToString(namer));
}

}  // namespace
}  // namespace whodunit::context
