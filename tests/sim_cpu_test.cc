#include "src/sim/cpu.h"

#include <gtest/gtest.h>

#include <vector>

#include "src/sim/task.h"

namespace whodunit::sim {
namespace {

Process Worker(Scheduler& sched, CpuResource& cpu, SimTime cost, std::vector<SimTime>& done) {
  co_await cpu.Consume(cost);
  done.push_back(sched.now());
}

TEST(CpuTest, SingleCoreSerializesWork) {
  Scheduler s;
  CpuResource cpu(s, 1);
  std::vector<SimTime> done;
  Spawn(s, Worker(s, cpu, 100, done));
  Spawn(s, Worker(s, cpu, 100, done));
  Spawn(s, Worker(s, cpu, 100, done));
  s.Run();
  EXPECT_EQ(done, (std::vector<SimTime>{100, 200, 300}));
  EXPECT_EQ(cpu.busy_time(), 300);
}

TEST(CpuTest, TwoCoresRunInParallel) {
  Scheduler s;
  CpuResource cpu(s, 2);
  std::vector<SimTime> done;
  Spawn(s, Worker(s, cpu, 100, done));
  Spawn(s, Worker(s, cpu, 100, done));
  Spawn(s, Worker(s, cpu, 100, done));
  s.Run();
  EXPECT_EQ(done, (std::vector<SimTime>{100, 100, 200}));
}

TEST(CpuTest, ZeroCostCompletesImmediately) {
  Scheduler s;
  CpuResource cpu(s, 1);
  std::vector<SimTime> done;
  Spawn(s, Worker(s, cpu, 0, done));
  s.Run();
  EXPECT_EQ(done, (std::vector<SimTime>{0}));
  EXPECT_EQ(cpu.busy_time(), 0);
  EXPECT_EQ(cpu.requests(), 0u);
}

TEST(CpuTest, LateArrivalStartsAtArrival) {
  Scheduler s;
  CpuResource cpu(s, 1);
  std::vector<SimTime> done;
  SpawnAfter(s, 500, Worker(s, cpu, 50, done));
  s.Run();
  EXPECT_EQ(done, (std::vector<SimTime>{550}));
}

TEST(CpuTest, UtilizationReflectsBusyTime) {
  Scheduler s;
  CpuResource cpu(s, 2);
  std::vector<SimTime> done;
  Spawn(s, Worker(s, cpu, 100, done));
  s.Run();
  // 100 ns busy over a 100 ns window on 2 cores -> 50%.
  EXPECT_DOUBLE_EQ(cpu.Utilization(100), 0.5);
  EXPECT_EQ(cpu.Utilization(0), 0.0);
}

TEST(CpuTest, ConsumeHookSeesEveryCharge) {
  Scheduler s;
  CpuResource cpu(s, 1);
  SimTime hooked = 0;
  cpu.set_consume_hook([&](SimTime c) { hooked += c; });
  std::vector<SimTime> done;
  Spawn(s, Worker(s, cpu, 30, done));
  Spawn(s, Worker(s, cpu, 70, done));
  s.Run();
  EXPECT_EQ(hooked, 100);
}

TEST(CpuTest, FifoQueueingUnderBurst) {
  Scheduler s;
  CpuResource cpu(s, 1);
  std::vector<SimTime> done;
  for (int i = 0; i < 5; ++i) {
    Spawn(s, Worker(s, cpu, 10, done));
  }
  s.Run();
  EXPECT_EQ(done, (std::vector<SimTime>{10, 20, 30, 40, 50}));
  EXPECT_EQ(cpu.requests(), 5u);
}

}  // namespace
}  // namespace whodunit::sim
