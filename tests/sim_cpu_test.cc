#include "src/sim/cpu.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <vector>

#include "src/sim/task.h"
#include "src/util/rng.h"

namespace whodunit::sim {
namespace {

Process Worker(Scheduler& sched, CpuResource& cpu, SimTime cost, std::vector<SimTime>& done) {
  co_await cpu.Consume(cost);
  done.push_back(sched.now());
}

TEST(CpuTest, SingleCoreSerializesWork) {
  Scheduler s;
  CpuResource cpu(s, 1);
  std::vector<SimTime> done;
  Spawn(s, Worker(s, cpu, 100, done));
  Spawn(s, Worker(s, cpu, 100, done));
  Spawn(s, Worker(s, cpu, 100, done));
  s.Run();
  EXPECT_EQ(done, (std::vector<SimTime>{100, 200, 300}));
  EXPECT_EQ(cpu.busy_time(), 300);
}

TEST(CpuTest, TwoCoresRunInParallel) {
  Scheduler s;
  CpuResource cpu(s, 2);
  std::vector<SimTime> done;
  Spawn(s, Worker(s, cpu, 100, done));
  Spawn(s, Worker(s, cpu, 100, done));
  Spawn(s, Worker(s, cpu, 100, done));
  s.Run();
  EXPECT_EQ(done, (std::vector<SimTime>{100, 100, 200}));
}

TEST(CpuTest, ZeroCostCompletesImmediately) {
  Scheduler s;
  CpuResource cpu(s, 1);
  std::vector<SimTime> done;
  Spawn(s, Worker(s, cpu, 0, done));
  s.Run();
  EXPECT_EQ(done, (std::vector<SimTime>{0}));
  EXPECT_EQ(cpu.busy_time(), 0);
  EXPECT_EQ(cpu.requests(), 0u);
}

TEST(CpuTest, LateArrivalStartsAtArrival) {
  Scheduler s;
  CpuResource cpu(s, 1);
  std::vector<SimTime> done;
  SpawnAfter(s, 500, Worker(s, cpu, 50, done));
  s.Run();
  EXPECT_EQ(done, (std::vector<SimTime>{550}));
}

TEST(CpuTest, UtilizationReflectsBusyTime) {
  Scheduler s;
  CpuResource cpu(s, 2);
  std::vector<SimTime> done;
  Spawn(s, Worker(s, cpu, 100, done));
  s.Run();
  // 100 ns busy over a 100 ns window on 2 cores -> 50%.
  EXPECT_DOUBLE_EQ(cpu.Utilization(100), 0.5);
  EXPECT_EQ(cpu.Utilization(0), 0.0);
}

TEST(CpuTest, ConsumeHookSeesEveryCharge) {
  Scheduler s;
  CpuResource cpu(s, 1);
  SimTime hooked = 0;
  cpu.set_consume_hook([&](SimTime c) { hooked += c; });
  std::vector<SimTime> done;
  Spawn(s, Worker(s, cpu, 30, done));
  Spawn(s, Worker(s, cpu, 70, done));
  s.Run();
  EXPECT_EQ(hooked, 100);
}

TEST(CpuTest, FifoQueueingUnderBurst) {
  Scheduler s;
  CpuResource cpu(s, 1);
  std::vector<SimTime> done;
  for (int i = 0; i < 5; ++i) {
    Spawn(s, Worker(s, cpu, 10, done));
  }
  s.Run();
  EXPECT_EQ(done, (std::vector<SimTime>{10, 20, 30, 40, 50}));
  EXPECT_EQ(cpu.requests(), 5u);
}

Process OneJob(Scheduler& sched, CpuResource& cpu, SimTime cost, SimTime& done) {
  co_await cpu.Consume(cost);
  done = sched.now();
}

TEST(CpuTest, ReserveMatchesMinFreeCoreModel) {
  // Regression test for the core free-time heap: random arrival/cost
  // sequences must produce exactly the completion times of the obvious
  // reference model (grab the minimum free-core time, no heap at all).
  // A broken sift after replace-top shows up as a job charged to a
  // core that is not the earliest-free one.
  util::Rng rng(2024);
  for (int trial = 0; trial < 10; ++trial) {
    const int cores = 1 + static_cast<int>(rng.NextBelow(6));
    struct Job {
      SimTime at;
      SimTime cost;
    };
    std::vector<Job> jobs;
    for (int i = 0; i < 300; ++i) {
      jobs.push_back({static_cast<SimTime>(rng.NextBelow(5000)),
                      1 + static_cast<SimTime>(rng.NextBelow(400))});
    }
    // Reservations happen in arrival order; ties keep spawn order.
    std::stable_sort(jobs.begin(), jobs.end(),
                     [](const Job& a, const Job& b) { return a.at < b.at; });

    Scheduler s;
    CpuResource cpu(s, cores);
    std::vector<SimTime> done(jobs.size(), -1);
    for (size_t i = 0; i < jobs.size(); ++i) {
      SpawnAfter(s, jobs[i].at, OneJob(s, cpu, jobs[i].cost, done[i]));
    }
    s.Run();

    std::vector<SimTime> free_at(static_cast<size_t>(cores), 0);
    for (size_t i = 0; i < jobs.size(); ++i) {
      auto it = std::min_element(free_at.begin(), free_at.end());
      const SimTime finish = std::max(jobs[i].at, *it) + jobs[i].cost;
      *it = finish;
      ASSERT_EQ(done[i], finish)
          << "trial " << trial << " cores " << cores << " job " << i;
    }
  }
}

}  // namespace
}  // namespace whodunit::sim
