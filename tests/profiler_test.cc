#include "src/profiler/stage_profiler.h"

#include <gtest/gtest.h>

#include "src/profiler/stitcher.h"

namespace whodunit::profiler {
namespace {

using callpath::ProfilerMode;
using context::Element;
using context::ElementKind;
using context::Synopsis;
using context::TransactionContext;

StageProfiler::Options Opts(std::string name, ProfilerMode mode = ProfilerMode::kWhodunit) {
  StageProfiler::Options o;
  o.name = std::move(name);
  o.mode = mode;
  o.sample_period = 100;  // dense sampling for tests
  return o;
}

TEST(StageProfilerTest, SamplesLandInOriginCct) {
  Deployment dep;
  StageProfiler prof(dep, Opts("web"));
  ThreadProfile& tp = prof.CreateThread("t0");
  auto main_fn = prof.RegisterFunction("main");
  auto work_fn = prof.RegisterFunction("work");
  {
    auto f1 = prof.EnterFrame(tp, main_fn);
    auto f2 = prof.EnterFrame(tp, work_fn);
    prof.ChargeCpu(tp, 1000);
  }
  const auto* cct = prof.FindCct(Synopsis{});
  ASSERT_NE(cct, nullptr);
  EXPECT_EQ(cct->TotalCpuTime(), 1000);
  EXPECT_EQ(cct->TotalSamples(), 10u);
  EXPECT_EQ(prof.total_samples(), 10u);
}

TEST(StageProfilerTest, ChargeCpuAddsSamplingOverhead) {
  Deployment dep;
  auto opts = Opts("s", ProfilerMode::kCsprof);
  opts.costs.per_sample = 7;
  StageProfiler prof(dep, opts);
  ThreadProfile& tp = prof.CreateThread("t");
  // 1000 ns at period 100 -> 10 samples -> 70 ns overhead.
  EXPECT_EQ(prof.ChargeCpu(tp, 1000), 1070);
}

TEST(StageProfilerTest, NoneModeChargesNothingAndDropsSamples) {
  Deployment dep;
  StageProfiler prof(dep, Opts("s", ProfilerMode::kNone));
  ThreadProfile& tp = prof.CreateThread("t");
  EXPECT_EQ(prof.ChargeCpu(tp, 1000), 1000);
  EXPECT_EQ(prof.total_samples(), 0u);
}

TEST(StageProfilerTest, GprofChargesPerCall) {
  Deployment dep;
  auto opts = Opts("s", ProfilerMode::kGprof);
  opts.costs.per_call = 50;
  opts.costs.per_sample = 0;
  StageProfiler prof(dep, opts);
  ThreadProfile& tp = prof.CreateThread("t");
  auto f = prof.RegisterFunction("f");
  auto g = prof.RegisterFunction("g");
  {
    auto f1 = prof.EnterFrame(tp, f);
    auto f2 = prof.EnterFrame(tp, g);
  }
  {
    auto f3 = prof.EnterFrame(tp, f);
    // 3 procedure entries since the last charge -> 150 ns of mcount.
    EXPECT_EQ(prof.ChargeCpu(tp, 1000), 1150);
    // Charged exactly once.
    EXPECT_EQ(prof.ChargeCpu(tp, 1000), 1000);
  }
  // gprof still samples: CCT has data.
  EXPECT_GT(prof.total_samples(), 0u);
}

TEST(StageProfilerTest, CsprofCostIndependentOfCallCount) {
  // The paper's Table 2 observation: csprof's overhead does not grow
  // with call density, gprof's does.
  Deployment dep;
  auto csprof_opts = Opts("a", ProfilerMode::kCsprof);
  csprof_opts.costs.per_sample = 10;
  auto gprof_opts = Opts("b", ProfilerMode::kGprof);
  gprof_opts.costs.per_sample = 10;
  gprof_opts.costs.per_call = 100;
  StageProfiler cs(dep, csprof_opts), gp(dep, gprof_opts);
  ThreadProfile& tc = cs.CreateThread("t");
  ThreadProfile& tg = gp.CreateThread("t");
  auto f = cs.RegisterFunction("f");

  sim::SimTime cs_total = 0, gp_total = 0;
  for (int i = 0; i < 100; ++i) {
    {
      auto g1 = cs.EnterFrame(tc, f);
      cs_total += cs.ChargeCpu(tc, 100);
    }
    {
      auto g2 = gp.EnterFrame(tg, f);
      gp_total += gp.ChargeCpu(tg, 100);
    }
  }
  // Same app work; gprof pays 100 calls * 100 ns extra.
  EXPECT_GT(gp_total, cs_total + 9000);
}

TEST(StageProfilerTest, LocalContextSwitchesCct) {
  Deployment dep;
  StageProfiler prof(dep, Opts("proxy"));
  ThreadProfile& tp = prof.CreateThread("loop");
  auto fn = prof.RegisterFunction("handler_code");

  TransactionContext hit({Element{ElementKind::kHandler, 1}, Element{ElementKind::kHandler, 2}});
  TransactionContext miss({Element{ElementKind::kHandler, 1}, Element{ElementKind::kHandler, 3}});

  prof.SetLocalContext(tp, hit);
  {
    auto g = prof.EnterFrame(tp, fn);
    prof.ChargeCpu(tp, 600);
  }
  prof.SetLocalContext(tp, miss);
  {
    auto g = prof.EnterFrame(tp, fn);
    prof.ChargeCpu(tp, 400);
  }

  auto labeled = prof.LabeledCcts();
  ASSERT_EQ(labeled.size(), 2u);
  EXPECT_EQ(prof.total_cpu_time(), 1000);
  // Each context got its own CCT with its own share.
  uint32_t hit_part = dep.synopses().Intern(hit);
  uint32_t miss_part = dep.synopses().Intern(miss);
  const auto* hit_cct = prof.FindCct(Synopsis{{hit_part}});
  const auto* miss_cct = prof.FindCct(Synopsis{{miss_part}});
  ASSERT_NE(hit_cct, nullptr);
  ASSERT_NE(miss_cct, nullptr);
  EXPECT_EQ(hit_cct->TotalCpuTime(), 600);
  EXPECT_EQ(miss_cct->TotalCpuTime(), 400);
}

TEST(StageProfilerTest, RpcRoundTripAcrossStages) {
  // The Figure 6/7 scenario: a caller with two transaction paths (foo,
  // bar) into one callee; the callee's profile separates by caller
  // context, and the caller recognizes responses.
  Deployment dep;
  StageProfiler caller(dep, Opts("caller"));
  StageProfiler callee(dep, Opts("callee"));
  ThreadProfile& ct = caller.CreateThread("main");
  ThreadProfile& st = callee.CreateThread("svc");

  auto main_fn = caller.RegisterFunction("main_caller");
  auto foo_fn = caller.RegisterFunction("foo");
  auto bar_fn = caller.RegisterFunction("bar");
  auto svc_fn = callee.RegisterFunction("callee_rpc_svc");

  auto do_rpc = [&](callpath::FunctionId via) {
    auto g0 = caller.EnterFrame(ct, main_fn);
    auto g1 = caller.EnterFrame(ct, via);
    Synopsis request = caller.PrepareSend(ct);

    // --- at the callee ---
    bool was_response = callee.OnReceive(st, request);
    EXPECT_FALSE(was_response);
    Synopsis response;
    {
      auto g2 = callee.EnterFrame(st, svc_fn);
      callee.ChargeCpu(st, 500);
      response = callee.PrepareSend(st, /*expect_response=*/false);
    }

    // --- back at the caller ---
    EXPECT_TRUE(response.HasPrefix(request));
    bool is_response = caller.OnReceive(ct, response);
    EXPECT_TRUE(is_response);
    caller.ChargeCpu(ct, 100);
    return request;
  };

  Synopsis via_foo = do_rpc(foo_fn);
  Synopsis via_bar = do_rpc(bar_fn);

  // Different send paths -> different synopses.
  EXPECT_NE(via_foo, via_bar);
  // The callee kept two CCTs, one per caller context (Figure 7: the
  // callee's call-path tree appears twice).
  EXPECT_EQ(callee.LabeledCcts().size(), 2u);
  const auto* cct_foo = callee.FindCct(via_foo);
  ASSERT_NE(cct_foo, nullptr);
  EXPECT_EQ(cct_foo->TotalCpuTime(), 500);
  // Caller profile stayed in the origin CCT (responses restored it).
  ASSERT_EQ(caller.LabeledCcts().size(), 1u);
  EXPECT_TRUE(caller.LabeledCcts()[0].first.empty());
  EXPECT_EQ(caller.total_cpu_time(), 200);
}

TEST(StageProfilerTest, ThreeStageChainExtendsSynopsis) {
  Deployment dep;
  StageProfiler web(dep, Opts("web")), app(dep, Opts("app")), db(dep, Opts("db"));
  ThreadProfile& wt = web.CreateThread("w");
  ThreadProfile& at = app.CreateThread("a");
  ThreadProfile& dt = db.CreateThread("d");
  auto wf = web.RegisterFunction("handle");
  auto af = app.RegisterFunction("logic");

  Synopsis s1;
  {
    auto g = web.EnterFrame(wt, wf);
    s1 = web.PrepareSend(wt);
  }
  app.OnReceive(at, s1);
  Synopsis s2;
  {
    auto g = app.EnterFrame(at, af);
    s2 = app.PrepareSend(at);
  }
  db.OnReceive(dt, s2);
  db.ChargeCpu(dt, 300);

  EXPECT_EQ(s1.parts.size(), 1u);
  EXPECT_EQ(s2.parts.size(), 2u);
  EXPECT_TRUE(s2.HasPrefix(s1));
  // The DB's CCT label is the two-part synopsis: it reflects the call
  // paths through web AND app.
  const auto* dcct = db.FindCct(s2);
  ASSERT_NE(dcct, nullptr);
  EXPECT_EQ(dcct->TotalCpuTime(), 300);
}

TEST(StageProfilerTest, SharedMemoryAdoption) {
  Deployment dep;
  StageProfiler prof(dep, Opts("apache"));
  ThreadProfile& listener = prof.CreateThread("listener");
  ThreadProfile& worker = prof.CreateThread("worker");
  auto accept_fn = prof.RegisterFunction("apr_socket_accept");
  auto push_fn = prof.RegisterFunction("ap_queue_push");
  auto process_fn = prof.RegisterFunction("ap_process_connection");

  uint32_t produce_ctxt;
  {
    auto g0 = prof.EnterFrame(listener, accept_fn);
    auto g1 = prof.EnterFrame(listener, push_fn);
    produce_ctxt = prof.CurrentCtxtId(listener);
  }
  // Flow detected: worker consumes and continues the transaction.
  prof.AdoptCtxt(worker, produce_ctxt);
  {
    auto g = prof.EnterFrame(worker, process_fn);
    prof.ChargeCpu(worker, 900);
  }
  // The worker's samples are in a CCT labeled by the producer's
  // context, not the origin CCT.
  const Synopsis& label = prof.SynopsisOfCtxtId(produce_ctxt);
  const auto* cct = prof.FindCct(label);
  ASSERT_NE(cct, nullptr);
  EXPECT_EQ(cct->TotalCpuTime(), 900);
  // And the label describes the listener's call path at the push.
  std::string desc = dep.DescribeSynopsis(label);
  EXPECT_NE(desc.find("apr_socket_accept>ap_queue_push"), std::string::npos);
}

TEST(StageProfilerTest, MessageByteAccounting) {
  Deployment dep;
  StageProfiler prof(dep, Opts("s"));
  prof.AccountMessage(1000, 4);
  prof.AccountMessage(500, 9);
  EXPECT_EQ(prof.payload_bytes_sent(), 1500u);
  EXPECT_EQ(prof.context_bytes_sent(), 13u);
}

TEST(StageProfilerTest, CrosstalkTagStableForSameContext) {
  Deployment dep;
  StageProfiler prof(dep, Opts("db"));
  ThreadProfile& t1 = prof.CreateThread("t1");
  ThreadProfile& t2 = prof.CreateThread("t2");
  Synopsis req{{7}};
  prof.OnReceive(t1, req);
  prof.OnReceive(t2, req);
  EXPECT_EQ(prof.CrosstalkTag(t1), prof.CrosstalkTag(t2));
  Synopsis other{{8}};
  prof.OnReceive(t2, other);
  EXPECT_NE(prof.CrosstalkTag(t1), prof.CrosstalkTag(t2));
}

TEST(StitcherTest, RecoversRequestEdges) {
  Deployment dep;
  auto& caller = dep.AddStage(std::make_unique<StageProfiler>(dep, Opts("caller")));
  auto& callee = dep.AddStage(std::make_unique<StageProfiler>(dep, Opts("callee")));
  ThreadProfile& ct = caller.CreateThread("c");
  ThreadProfile& st = callee.CreateThread("s");
  auto foo = caller.RegisterFunction("foo");

  caller.ChargeCpu(ct, 100);  // origin CCT exists
  Synopsis req;
  {
    auto g = caller.EnterFrame(ct, foo);
    req = caller.PrepareSend(ct);
  }
  callee.OnReceive(st, req);
  callee.ChargeCpu(st, 200);

  Stitcher stitcher(dep);
  auto edges = stitcher.Edges();
  ASSERT_EQ(edges.size(), 1u);
  EXPECT_EQ(edges[0].from_stage, "caller");
  EXPECT_EQ(edges[0].to_stage, "callee");
  EXPECT_EQ(edges[0].to_label, req);
  EXPECT_NE(edges[0].send_context.find("foo"), std::string::npos);

  std::string text = stitcher.Render();
  EXPECT_NE(text.find("caller"), std::string::npos);
  EXPECT_NE(text.find("-->"), std::string::npos);
}

}  // namespace
}  // namespace whodunit::profiler
