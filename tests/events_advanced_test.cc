// Armed events (commSetSelect pattern), pruning toggles, and the
// per-lock crosstalk report.
#include <gtest/gtest.h>

#include "src/crosstalk/crosstalk.h"
#include "src/events/event_loop.h"
#include "src/seda/stage.h"

namespace whodunit {
namespace {

using context::Element;
using context::ElementKind;
using context::TransactionContext;
using events::EventLoop;

TEST(ArmedEventTest, PostedEventKeepsRegistrationContext) {
  // An I/O completion handler must run under the context current when
  // interest was REGISTERED, not whatever the loop ran in between.
  sim::Scheduler sched;
  EventLoop loop(sched);
  std::vector<TransactionContext> reply_ctxts;
  events::HandlerId reply_h = 0, other_h = 0;

  events::HandlerId start_h = loop.RegisterHandler(
      "start", [&](EventLoop::HandlerContext& hc) -> sim::Task<void> {
        events::Event armed = hc.loop.MakeEvent(reply_h, hc.payload);
        // Simulate async I/O: the event fires 10 ms later, after other
        // unrelated handlers have run.
        sched.ScheduleAfter(sim::Millis(10),
                            [&hc, armed = std::move(armed)]() mutable {
                              hc.loop.Post(std::move(armed));
                            });
        co_return;
      });
  reply_h = loop.RegisterHandler("reply", [&](EventLoop::HandlerContext& hc) -> sim::Task<void> {
    reply_ctxts.push_back(hc.loop.current_context());
    co_return;
  });
  other_h = loop.RegisterHandler("other", [](EventLoop::HandlerContext&) -> sim::Task<void> {
    co_return;
  });

  loop.AddExternalEvent(start_h, 1);
  // Unrelated traffic runs while the I/O is outstanding.
  for (int i = 0; i < 5; ++i) {
    loop.AddExternalEvent(other_h, 0);
  }
  sim::Spawn(sched, loop.Run());
  sched.ScheduleAt(sim::Seconds(1), [&] { loop.Stop(); });
  sched.Run();

  ASSERT_EQ(reply_ctxts.size(), 1u);
  EXPECT_EQ(reply_ctxts[0],
            TransactionContext({Element{ElementKind::kHandler, start_h},
                                Element{ElementKind::kHandler, reply_h}}));
}

TEST(PruningToggleTest, EventLoopFullHistoryForDebugging) {
  sim::Scheduler sched;
  EventLoop loop(sched);
  loop.set_pruning(false);
  std::vector<size_t> sizes;
  events::HandlerId pong_h = 0;
  int rounds = 0;
  events::HandlerId ping_h = loop.RegisterHandler(
      "ping", [&](EventLoop::HandlerContext& hc) -> sim::Task<void> {
        sizes.push_back(hc.loop.current_context().size());
        if (++rounds < 6) {
          hc.loop.AddEvent(pong_h, 0);
        }
        co_return;
      });
  pong_h = loop.RegisterHandler("pong", [&](EventLoop::HandlerContext& hc) -> sim::Task<void> {
    hc.loop.AddEvent(ping_h, 0);
    co_return;
  });
  loop.AddExternalEvent(ping_h, 0);
  sim::Spawn(sched, loop.Run());
  sched.ScheduleAt(sim::Seconds(1), [&] { loop.Stop(); });
  sched.Run();
  // Without pruning the history grows: 1, 3, 5, ...
  ASSERT_GE(sizes.size(), 3u);
  EXPECT_EQ(sizes[0], 1u);
  EXPECT_EQ(sizes[1], 3u);
  EXPECT_EQ(sizes[2], 5u);
}

TEST(PruningToggleTest, SedaFullHistoryForDebugging) {
  sim::Scheduler sched;
  seda::StageGraph graph(sched);
  graph.set_pruning(false);
  std::vector<size_t> sizes;
  int rounds = 0;
  seda::StageId b = 0;
  seda::StageId a = graph.AddStage("a", 1, [&](auto& wc) -> sim::Task<void> {
    sizes.push_back(wc.current_context().size());
    if (++rounds < 4) {
      wc.EnqueueTo(b, wc.payload);
    }
    co_return;
  });
  b = graph.AddStage("b", 1, [&](auto& wc) -> sim::Task<void> {
    wc.EnqueueTo(a, wc.payload);
    co_return;
  });
  graph.Start();
  graph.InjectExternal(a, 0);
  sched.ScheduleAt(sim::Seconds(1), [&] { graph.Stop(); });
  sched.Run();
  ASSERT_GE(sizes.size(), 3u);
  EXPECT_EQ(sizes[0], 1u);
  EXPECT_EQ(sizes[1], 3u);
  EXPECT_EQ(sizes[2], 5u);
}

sim::Process HoldFor(sim::Scheduler& sched, sim::SimMutex& m, uint64_t tag, sim::SimTime hold) {
  co_await m.Acquire(tag);
  co_await sim::Delay{sched, hold};
  m.Release(tag);
}

TEST(CrosstalkLockRowsTest, AttributesWaitsToNamedLocks) {
  sim::Scheduler sched;
  sim::SimMutex item(sched, "item.table_lock");
  sim::SimMutex orders(sched, "orders.table_lock");
  crosstalk::CrosstalkRecorder rec;
  item.set_observer(&rec);
  orders.set_observer(&rec);

  sim::Spawn(sched, HoldFor(sched, item, 1, 100));
  sim::SpawnAfter(sched, 10, HoldFor(sched, item, 2, 10));   // waits 90 on item
  sim::Spawn(sched, HoldFor(sched, orders, 3, 30));
  sim::SpawnAfter(sched, 20, HoldFor(sched, orders, 4, 10)); // waits 10 on orders
  sched.Run();

  auto rows = rec.LockRows();
  ASSERT_EQ(rows.size(), 2u);
  EXPECT_EQ(rows[0].lock_name, "item.table_lock");  // heaviest first
  EXPECT_DOUBLE_EQ(rows[0].total_wait_ns, 90.0);
  EXPECT_EQ(rows[0].count, 1u);
  EXPECT_EQ(rows[1].lock_name, "orders.table_lock");
  std::string text = rec.Render([](uint64_t t) { return std::to_string(t); });
  EXPECT_NE(text.find("item.table_lock"), std::string::npos);
}

}  // namespace
}  // namespace whodunit
