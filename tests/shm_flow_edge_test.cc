// Edge cases of the §3 flow-detection algorithm around the consume
// window, nested locks, demotion, and the role-list introspection API.
#include <gtest/gtest.h>

#include <map>
#include <utility>

#include "src/shm/flow_detector.h"
#include "src/vm/program_builder.h"

namespace whodunit::shm {
namespace {

using vm::CpuState;
using vm::Interpreter;
using vm::Memory;
using vm::Program;
using vm::ProgramBuilder;
using vm::ThreadId;

constexpr uint64_t kLockA = 1;
constexpr uint64_t kLockB = 2;
constexpr uint64_t kSharedAddr = 0x1000;
constexpr uint64_t kOutAddr = 0x2000;

class Harness {
 public:
  Harness() : detector_(MakeProvider()) {}
  explicit Harness(FlowDetector::Config config) : detector_(config, MakeProvider()) {}

  void SetCtxt(ThreadId t, CtxtId c) { ctxts_[t] = c; }

  vm::ExecResult Run(const Program& p, ThreadId t,
                     const std::map<int, uint64_t>& regs = {}) {
    CpuState& cpu = cpus_[t];
    for (const auto& [r, v] : regs) {
      cpu.regs[static_cast<size_t>(r)] = v;
    }
    return interp_.Execute(p, t, cpu, mem_, &detector_);
  }

  FlowDetector& detector() { return detector_; }

 private:
  FlowDetector::CtxtProvider MakeProvider() {
    return [this](ThreadId t) {
      auto it = ctxts_.find(t);
      return it == ctxts_.end() ? CtxtId{0} : it->second;
    };
  }

  std::map<ThreadId, CtxtId> ctxts_;
  std::map<ThreadId, CpuState> cpus_;
  Memory mem_;
  Interpreter interp_;
  FlowDetector detector_;
};

// r0 = kSharedAddr, r1 = value: produce the value into shared memory
// under the lock.
Program Produce(uint64_t lock) {
  return ProgramBuilder("produce").Lock(lock).MovMR(0, 0, 1).Unlock(lock).Build();
}

// r0 = kSharedAddr, r5 = kOutAddr: pick the value up under the lock,
// then touch it `pad_after` instructions after the unlock.
Program ConsumeAfter(uint64_t lock, int pad_after) {
  ProgramBuilder b("consume");
  b.Lock(lock).MovRM(7, 0).Unlock(lock);
  for (int i = 0; i < pad_after; ++i) {
    b.Nop();
  }
  // The post-critical-section read of r7 is the consumption point.
  b.MovMR(5, 0, 7);
  return b.Build();
}

// The consume window starts at post_window when the outermost lock is
// released and shrinks by one per retired instruction outside the
// critical section. The unlock instruction itself retires first, so a
// read `pad` instructions later sees post_window - 1 - pad window
// slots left: pad = post_window - 2 is the last flow-detecting
// position and pad = post_window - 1 just misses.
TEST(FlowDetectorEdgeTest, ConsumeWindowExpiresExactlyAtPostWindow) {
  for (const auto& [pad, expect_flow] :
       {std::pair<int, bool>{FlowDetector::kDefaultPostWindow - 2, true},
        std::pair<int, bool>{FlowDetector::kDefaultPostWindow - 1, false}}) {
    Harness h;
    h.SetCtxt(1, 100);
    h.Run(Produce(kLockA), 1, {{0, kSharedAddr}, {1, 0xAB}});
    h.Run(ConsumeAfter(kLockA, pad), 2, {{0, kSharedAddr}, {5, kOutAddr}});
    EXPECT_EQ(h.detector().flows_detected(), expect_flow ? 1u : 0u)
        << "pad=" << pad;
  }
}

TEST(FlowDetectorEdgeTest, SmallWindowBoundary) {
  // Same boundary with a custom (small) window, to pin the arithmetic
  // rather than the default constant.
  FlowDetector::Config config;
  config.post_window = 4;
  for (const auto& [pad, expect_flow] :
       {std::pair<int, bool>{2, true}, std::pair<int, bool>{3, false}}) {
    Harness h{config};
    h.SetCtxt(1, 100);
    h.Run(Produce(kLockA), 1, {{0, kSharedAddr}, {1, 0xAB}});
    h.Run(ConsumeAfter(kLockA, pad), 2, {{0, kSharedAddr}, {5, kOutAddr}});
    EXPECT_EQ(h.detector().flows_detected(), expect_flow ? 1u : 0u)
        << "pad=" << pad;
  }
}

// §3.3.2 nested locks: analysis is governed by the *outermost* held
// lock. A location set under lock A and touched inside a critical
// section whose outermost lock is B was "used for different purposes
// at different times" — its stale entry is flushed, so no flow is
// reported even though bytes moved between threads.
TEST(FlowDetectorEdgeTest, NestedLockFlushesForeignEntryUnderOutermost) {
  Harness h;
  h.SetCtxt(1, 100);
  h.SetCtxt(2, 200);
  h.Run(Produce(kLockA), 1, {{0, kSharedAddr}, {1, 0xCD}});

  // Thread 2 reads the location while holding B (outermost) then A
  // (nested) — the entry written under A is foreign to this section.
  Program nested = ProgramBuilder("nested")
                       .Lock(kLockB)
                       .Lock(kLockA)
                       .MovRM(7, 0)
                       .Unlock(kLockA)
                       .Unlock(kLockB)
                       .MovMR(5, 0, 7)
                       .Build();
  h.Run(nested, 2, {{0, kSharedAddr}, {5, kOutAddr}});

  // The flush re-associated the value with thread 2's own context, so
  // the post-section read is a self-read: no flow, and thread 2 shows
  // up as a producer of the *outermost* lock's resource, not A's.
  EXPECT_EQ(h.detector().flows_detected(), 0u);
  EXPECT_TRUE(h.detector().producers_of(kLockA).contains(1));
  EXPECT_FALSE(h.detector().producers_of(kLockA).contains(2));
}

// The allocator pattern (§3.4): once a lock's producer and consumer
// lists intersect, ShouldEmulate flips mid-run and stays flipped —
// later critical sections under that lock report no flows even for
// genuine cross-thread movement.
TEST(FlowDetectorEdgeTest, DemotionMidRunSuppressesLaterFlows) {
  Harness h;
  h.SetCtxt(1, 100);
  h.SetCtxt(2, 200);
  h.SetCtxt(3, 300);

  uint64_t demoted_lock = 0;
  h.detector().set_demote_callback([&](uint64_t lock_id) { demoted_lock = lock_id; });

  EXPECT_TRUE(h.detector().ShouldEmulate(kLockA));

  // Thread 1 produces and then consumes its own value: both role
  // lists now contain thread 1 => demotion.
  h.Run(Produce(kLockA), 1, {{0, kSharedAddr}, {1, 0x11}});
  h.Run(ConsumeAfter(kLockA, 0), 1, {{0, kSharedAddr}, {5, kOutAddr}});
  EXPECT_TRUE(h.detector().IsDemoted(kLockA));
  EXPECT_FALSE(h.detector().ShouldEmulate(kLockA));
  EXPECT_EQ(demoted_lock, kLockA);
  EXPECT_EQ(h.detector().flows_detected(), 0u);

  // Re-entry after the flip: a clean producer/consumer pair under the
  // demoted lock must stay silent...
  h.Run(Produce(kLockA), 2, {{0, kSharedAddr}, {1, 0x22}});
  h.Run(ConsumeAfter(kLockA, 0), 3, {{0, kSharedAddr}, {5, kOutAddr}});
  EXPECT_EQ(h.detector().flows_detected(), 0u);

  // ...while an undemoted lock keeps detecting normally.
  h.Run(Produce(kLockB), 2, {{0, kSharedAddr + 8}, {1, 0x33}});
  h.Run(ConsumeAfter(kLockB, 0), 3, {{0, kSharedAddr + 8}, {5, kOutAddr}});
  EXPECT_EQ(h.detector().flows_detected(), 1u);
}

// Regression: producers_of/consumers_of on a lock id the detector has
// never seen must yield a safe empty set, and the returned value must
// stay valid while the role table grows (the old implementation
// returned references into a rehashing container).
TEST(FlowDetectorEdgeTest, RoleListsOfUnknownLockAreSafe) {
  Harness h;
  h.SetCtxt(1, 100);

  const ThreadSet unknown_producers = h.detector().producers_of(0xdead);
  const ThreadSet unknown_consumers = h.detector().consumers_of(0xdead);
  EXPECT_TRUE(unknown_producers.empty());
  EXPECT_TRUE(unknown_consumers.empty());
  EXPECT_FALSE(unknown_producers.contains(1));

  // Populate many locks to force the role table through growth.
  for (uint64_t lock = 100; lock < 200; ++lock) {
    h.Run(Produce(lock), 1, {{0, kSharedAddr + lock * 8}, {1, lock}});
  }
  EXPECT_TRUE(unknown_producers.empty());
  EXPECT_TRUE(h.detector().producers_of(150).contains(1));
  EXPECT_TRUE(h.detector().producers_of(0xdead).empty());
}

// Thread ids at and past the 64-bit dense range of ThreadSet spill to
// the overflow path and must behave identically.
TEST(FlowDetectorEdgeTest, ThreadSetOverflowIds) {
  Harness h;
  h.SetCtxt(70, 700);  // beyond the one-word bitset
  h.SetCtxt(2, 200);

  h.Run(Produce(kLockA), 70, {{0, kSharedAddr}, {1, 0x44}});
  h.Run(ConsumeAfter(kLockA, 0), 2, {{0, kSharedAddr}, {5, kOutAddr}});

  EXPECT_EQ(h.detector().flows_detected(), 1u);
  EXPECT_TRUE(h.detector().producers_of(kLockA).contains(70));
  EXPECT_TRUE(h.detector().consumers_of(kLockA).contains(2));
  EXPECT_FALSE(h.detector().producers_of(kLockA).contains(69));
}

// OnRetire and OnRetireBatch must agree: a batch of n behaves like n
// single retires with no hooks in between. Whether a read consumed is
// observable through the allocator-pattern demotion it triggers.
TEST(FlowDetectorEdgeTest, RetireBatchMatchesSingleRetires) {
  FlowDetector::Config config;
  config.post_window = 10;
  const auto retire = [](FlowDetector& det, bool batched, int n) {
    if (batched) {
      det.OnRetireBatch(1, n);
    } else {
      for (int i = 0; i < n; ++i) {
        det.OnRetire(1);
      }
    }
  };
  const auto produce = [](FlowDetector& det) {
    det.OnLock(1, kLockA);
    det.OnMov(1, vm::Loc::Mem(kSharedAddr), vm::Loc::Reg(1, 1));
    det.OnUnlock(1, kLockA);
  };
  for (const bool batched : {false, true}) {
    // One window slot left: the self-read still consumes => demotion.
    {
      FlowDetector det(config, [](ThreadId) { return CtxtId{7}; });
      produce(det);
      retire(det, batched, 9);
      det.OnRead(1, vm::Loc::Mem(kSharedAddr));
      EXPECT_TRUE(det.IsDemoted(kLockA)) << "batched=" << batched;
      EXPECT_EQ(det.flows_detected(), 0u);  // self-read is never a flow
    }
    // Window exhausted exactly: the read no longer consumes.
    {
      FlowDetector det(config, [](ThreadId) { return CtxtId{7}; });
      produce(det);
      retire(det, batched, 10);
      det.OnRead(1, vm::Loc::Mem(kSharedAddr));
      EXPECT_FALSE(det.IsDemoted(kLockA)) << "batched=" << batched;
      // An over-large batch on an exhausted window must clamp, not wrap
      // around into a fresh window.
      det.OnRetireBatch(1, 1'000'000);
      det.OnRead(1, vm::Loc::Mem(kSharedAddr));
      EXPECT_FALSE(det.IsDemoted(kLockA));
    }
  }
}

}  // namespace
}  // namespace whodunit::shm
