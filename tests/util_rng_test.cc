#include "src/util/rng.h"

#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "src/util/zipf.h"

namespace whodunit::util {
namespace {

TEST(RngTest, DeterministicForSameSeed) {
  Rng a(42), b(42);
  for (int i = 0; i < 1000; ++i) {
    EXPECT_EQ(a.NextU64(), b.NextU64());
  }
}

TEST(RngTest, DifferentSeedsDiverge) {
  Rng a(1), b(2);
  int equal = 0;
  for (int i = 0; i < 1000; ++i) {
    if (a.NextU64() == b.NextU64()) {
      ++equal;
    }
  }
  EXPECT_LT(equal, 5);
}

TEST(RngTest, NextBelowRespectsBound) {
  Rng rng(7);
  for (uint64_t bound : {1ull, 2ull, 3ull, 10ull, 1000ull, 1ull << 40}) {
    for (int i = 0; i < 200; ++i) {
      EXPECT_LT(rng.NextBelow(bound), bound);
    }
  }
}

TEST(RngTest, NextBelowOneAlwaysZero) {
  Rng rng(9);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(rng.NextBelow(1), 0u);
  }
}

TEST(RngTest, NextInRangeInclusive) {
  Rng rng(11);
  bool saw_lo = false, saw_hi = false;
  for (int i = 0; i < 5000; ++i) {
    int64_t v = rng.NextInRange(-3, 3);
    EXPECT_GE(v, -3);
    EXPECT_LE(v, 3);
    saw_lo |= (v == -3);
    saw_hi |= (v == 3);
  }
  EXPECT_TRUE(saw_lo);
  EXPECT_TRUE(saw_hi);
}

TEST(RngTest, NextDoubleInUnitInterval) {
  Rng rng(13);
  for (int i = 0; i < 10000; ++i) {
    double d = rng.NextDouble();
    EXPECT_GE(d, 0.0);
    EXPECT_LT(d, 1.0);
  }
}

TEST(RngTest, UniformMeanNearHalf) {
  Rng rng(17);
  double sum = 0;
  const int n = 100000;
  for (int i = 0; i < n; ++i) {
    sum += rng.NextDouble();
  }
  EXPECT_NEAR(sum / n, 0.5, 0.01);
}

TEST(RngTest, ExponentialMeanMatches) {
  Rng rng(19);
  double sum = 0;
  const int n = 200000;
  for (int i = 0; i < n; ++i) {
    sum += rng.NextExponential(5.0);
  }
  EXPECT_NEAR(sum / n, 5.0, 0.1);
}

TEST(RngTest, BernoulliFrequency) {
  Rng rng(23);
  int hits = 0;
  const int n = 100000;
  for (int i = 0; i < n; ++i) {
    hits += rng.NextBernoulli(0.3) ? 1 : 0;
  }
  EXPECT_NEAR(static_cast<double>(hits) / n, 0.3, 0.01);
}

TEST(RngTest, ParetoAtLeastScale) {
  Rng rng(29);
  for (int i = 0; i < 10000; ++i) {
    EXPECT_GE(rng.NextPareto(2.0, 1.5), 2.0);
  }
}

TEST(RngTest, SplitProducesIndependentStream) {
  Rng a(31);
  Rng b = a.Split();
  int equal = 0;
  for (int i = 0; i < 1000; ++i) {
    if (a.NextU64() == b.NextU64()) {
      ++equal;
    }
  }
  EXPECT_LT(equal, 5);
}

TEST(ZipfTest, RanksWithinUniverse) {
  Rng rng(37);
  ZipfSampler zipf(100, 0.8);
  for (int i = 0; i < 10000; ++i) {
    EXPECT_LT(zipf.Sample(rng), 100u);
  }
}

TEST(ZipfTest, SkewFavorsLowRanks) {
  Rng rng(41);
  ZipfSampler zipf(1000, 1.0);
  std::vector<int> counts(1000, 0);
  for (int i = 0; i < 200000; ++i) {
    ++counts[zipf.Sample(rng)];
  }
  // Rank 0 should dominate rank 99 by roughly 100x under theta=1.
  EXPECT_GT(counts[0], counts[99] * 20);
  // Top-10 ranks should cover a large share of draws under theta=1.
  int top10 = 0;
  for (int i = 0; i < 10; ++i) {
    top10 += counts[i];
  }
  EXPECT_GT(top10, 200000 * 0.35);
}

TEST(ZipfTest, ThetaZeroIsUniform) {
  Rng rng(43);
  ZipfSampler zipf(10, 0.0);
  std::vector<int> counts(10, 0);
  const int n = 100000;
  for (int i = 0; i < n; ++i) {
    ++counts[zipf.Sample(rng)];
  }
  for (int c : counts) {
    EXPECT_NEAR(static_cast<double>(c) / n, 0.1, 0.01);
  }
}

TEST(ZipfTest, SingleItemUniverse) {
  Rng rng(47);
  ZipfSampler zipf(1, 1.2);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(zipf.Sample(rng), 0u);
  }
}

}  // namespace
}  // namespace whodunit::util
