// Integration tests for the Haboob stand-in (paper §8.3, Figure 10).
#include "src/apps/sedaserver/sedaserver.h"

#include <gtest/gtest.h>

namespace whodunit::apps {
namespace {

SedaServerOptions SmallRun(callpath::ProfilerMode mode) {
  SedaServerOptions o;
  o.mode = mode;
  o.clients = 24;
  o.duration = sim::Seconds(6);
  o.seed = 3;
  return o;
}

TEST(SedaServerTest, ServesTraffic) {
  SedaServerResult r = RunSedaServer(SmallRun(callpath::ProfilerMode::kWhodunit));
  EXPECT_GT(r.requests, 100u);
  EXPECT_GT(r.cache_hits, 10u);
  EXPECT_GT(r.cache_misses, 10u);
  EXPECT_GT(r.throughput_mbps, 0.5);
}

TEST(SedaServerTest, WriteStageInTwoContexts) {
  // Figure 10: the WriteStage is reached via the cache-hit path and
  // via the miss path (MissStage -> FileIoStage), as two distinct
  // transaction contexts with separate CPU shares.
  SedaServerResult r = RunSedaServer(SmallRun(callpath::ProfilerMode::kWhodunit));
  EXPECT_EQ(r.write_stage_context_count, 2u);
  EXPECT_GT(r.write_hit_share, 1.0);
  EXPECT_GT(r.write_miss_share, 1.0);
  // WriteStage dominates the profile, as in the paper (37.65 + 46.58 =
  // ~84% of total CPU across the two contexts).
  EXPECT_GT(r.write_hit_share + r.write_miss_share, 40.0);
  EXPECT_NE(r.profile_text.find("CacheStage"), std::string::npos);
  EXPECT_NE(r.profile_text.find("MissStage"), std::string::npos);
  EXPECT_NE(r.profile_text.find("WriteStage"), std::string::npos);
}

TEST(SedaServerTest, ProfilingOverheadSmall) {
  // §9.3: Haboob's throughput drops ~4.2% under Whodunit.
  SedaServerResult off = RunSedaServer(SmallRun(callpath::ProfilerMode::kNone));
  SedaServerResult on = RunSedaServer(SmallRun(callpath::ProfilerMode::kWhodunit));
  EXPECT_LE(on.throughput_mbps, off.throughput_mbps);
  EXPECT_GT(on.throughput_mbps, off.throughput_mbps * 0.85);
}

TEST(SedaServerTest, Deterministic) {
  SedaServerResult a = RunSedaServer(SmallRun(callpath::ProfilerMode::kWhodunit));
  SedaServerResult b = RunSedaServer(SmallRun(callpath::ProfilerMode::kWhodunit));
  EXPECT_EQ(a.requests, b.requests);
  EXPECT_DOUBLE_EQ(a.throughput_mbps, b.throughput_mbps);
  EXPECT_DOUBLE_EQ(a.write_hit_share, b.write_hit_share);
}

}  // namespace
}  // namespace whodunit::apps
