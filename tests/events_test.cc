#include "src/events/event_loop.h"

#include <gtest/gtest.h>

#include <vector>

namespace whodunit::events {
namespace {

using context::Element;
using context::ElementKind;
using context::TransactionContext;

Element H(HandlerId id) { return Element{ElementKind::kHandler, id}; }

struct LoopFixture {
  sim::Scheduler sched;
  EventLoop loop{sched};
  std::vector<TransactionContext> contexts_seen;

  LoopFixture() {
    loop.set_context_listener([this](context::NodeId node, bool) {
      contexts_seen.push_back(context::GlobalContextTree().Materialize(node));
    });
  }
};

TEST(EventLoopTest, HandlersRunAndContextsGrow) {
  LoopFixture f;
  std::vector<std::string> order;
  HandlerId read = 0;
  HandlerId accept = f.loop.RegisterHandler("accept", [&](EventLoop::HandlerContext& hc)
                                                          -> sim::Task<void> {
    order.push_back("accept");
    hc.loop.AddEvent(read, hc.payload);
    co_return;
  });
  read = f.loop.RegisterHandler("read", [&](EventLoop::HandlerContext&) -> sim::Task<void> {
    order.push_back("read");
    co_return;
  });

  f.loop.AddExternalEvent(accept, 1);
  sim::Spawn(f.sched, f.loop.Run());
  f.sched.ScheduleAt(sim::Seconds(1), [&] { f.loop.Stop(); });
  f.sched.Run();

  EXPECT_EQ(order, (std::vector<std::string>{"accept", "read"}));
  ASSERT_EQ(f.contexts_seen.size(), 2u);
  // First dispatch: context is just [accept].
  EXPECT_EQ(f.contexts_seen[0], TransactionContext({H(accept)}));
  // Second dispatch: [accept, read] — the read event inherited the
  // accept handler's context.
  EXPECT_EQ(f.contexts_seen[1], TransactionContext({H(accept), H(read)}));
}

TEST(EventLoopTest, RepeatedHandlerCollapses) {
  // An event handler re-arming itself (partial I/O) must not grow the
  // context: [read, read, read] collapses to [read].
  LoopFixture f;
  int runs = 0;
  HandlerId read = f.loop.RegisterHandler(
      "read", [&](EventLoop::HandlerContext& hc) -> sim::Task<void> {
        if (++runs < 3) {
          hc.loop.AddEvent(hc.loop.current_context().elements()[0].id, hc.payload);
        }
        co_return;
      });
  f.loop.AddExternalEvent(read, 0);
  sim::Spawn(f.sched, f.loop.Run());
  f.sched.ScheduleAt(sim::Seconds(1), [&] { f.loop.Stop(); });
  f.sched.Run();
  EXPECT_EQ(runs, 3);
  for (const auto& c : f.contexts_seen) {
    EXPECT_EQ(c, TransactionContext({H(read)}));
  }
}

TEST(EventLoopTest, PersistentConnectionLoopPruned) {
  // accept -> read -> write -> read -> write ... the paper's example:
  // pruning keeps the context bounded at [accept, read] / [accept,
  // read, write].
  LoopFixture f;
  HandlerId read_h = 0, write_h = 0;
  int requests = 0;
  HandlerId accept_h =
      f.loop.RegisterHandler("accept", [&](EventLoop::HandlerContext& hc) -> sim::Task<void> {
        hc.loop.AddEvent(read_h, hc.payload);
        co_return;
      });
  read_h = f.loop.RegisterHandler("read", [&](EventLoop::HandlerContext& hc) -> sim::Task<void> {
    hc.loop.AddEvent(write_h, hc.payload);
    co_return;
  });
  write_h =
      f.loop.RegisterHandler("write", [&](EventLoop::HandlerContext& hc) -> sim::Task<void> {
        if (++requests < 3) {
          hc.loop.AddEvent(read_h, hc.payload);  // next request, same connection
        }
        co_return;
      });

  f.loop.AddExternalEvent(accept_h, 7);
  sim::Spawn(f.sched, f.loop.Run());
  f.sched.ScheduleAt(sim::Seconds(1), [&] { f.loop.Stop(); });
  f.sched.Run();

  EXPECT_EQ(requests, 3);
  // No context ever exceeds 3 elements despite 3 round trips.
  for (const auto& c : f.contexts_seen) {
    EXPECT_LE(c.size(), 3u);
  }
  // And the write handler always ran under [accept, read, write].
  int write_dispatches = 0;
  for (const auto& c : f.contexts_seen) {
    if (!c.elements().empty() && c.elements().back() == H(write_h)) {
      ++write_dispatches;
      EXPECT_EQ(c, TransactionContext({H(accept_h), H(read_h), H(write_h)}));
    }
  }
  EXPECT_EQ(write_dispatches, 3);
}

TEST(EventLoopTest, DistinctPathsDistinctContexts) {
  // A DNS-server-like split: hit and miss handlers create different
  // transaction contexts.
  LoopFixture f;
  HandlerId hit = 0, miss = 0;
  HandlerId lookup =
      f.loop.RegisterHandler("lookup", [&](EventLoop::HandlerContext& hc) -> sim::Task<void> {
        hc.loop.AddEvent(hc.payload == 0 ? hit : miss, hc.payload);
        co_return;
      });
  hit = f.loop.RegisterHandler("hit", [](EventLoop::HandlerContext&) -> sim::Task<void> {
    co_return;
  });
  miss = f.loop.RegisterHandler("miss", [](EventLoop::HandlerContext&) -> sim::Task<void> {
    co_return;
  });
  f.loop.AddExternalEvent(lookup, 0);
  f.loop.AddExternalEvent(lookup, 1);
  sim::Spawn(f.sched, f.loop.Run());
  f.sched.ScheduleAt(sim::Seconds(1), [&] { f.loop.Stop(); });
  f.sched.Run();

  // Dispatch order: lookup(0), lookup(1), then the queued hit/miss.
  ASSERT_EQ(f.contexts_seen.size(), 4u);
  EXPECT_EQ(f.contexts_seen[2], TransactionContext({H(lookup), H(hit)}));
  EXPECT_EQ(f.contexts_seen[3], TransactionContext({H(lookup), H(miss)}));
}

TEST(EventLoopTest, TrackingOffBehavesLikeStockLibevent) {
  LoopFixture f;
  f.loop.set_tracking(false);
  HandlerId b = 0;
  HandlerId a = f.loop.RegisterHandler("a", [&](EventLoop::HandlerContext& hc) -> sim::Task<void> {
    hc.loop.AddEvent(b, 0);
    co_return;
  });
  b = f.loop.RegisterHandler("b", [](EventLoop::HandlerContext&) -> sim::Task<void> {
    co_return;
  });
  f.loop.AddExternalEvent(a, 0);
  sim::Spawn(f.sched, f.loop.Run());
  f.sched.ScheduleAt(sim::Seconds(1), [&] { f.loop.Stop(); });
  f.sched.Run();
  EXPECT_EQ(f.loop.events_dispatched(), 2u);
  EXPECT_TRUE(f.contexts_seen.empty());
  EXPECT_TRUE(f.loop.current_context().empty());
}

TEST(EventLoopTest, HandlersMayAwaitVirtualTime) {
  LoopFixture f;
  sim::SimTime done_at = 0;
  HandlerId slow =
      f.loop.RegisterHandler("slow", [&](EventLoop::HandlerContext& hc) -> sim::Task<void> {
        co_await sim::Delay{hc.loop.scheduler(), sim::Millis(5)};
        done_at = hc.loop.scheduler().now();
      });
  f.loop.AddExternalEvent(slow, 0);
  sim::Spawn(f.sched, f.loop.Run());
  f.sched.ScheduleAt(sim::Seconds(1), [&] { f.loop.Stop(); });
  f.sched.Run();
  EXPECT_EQ(done_at, sim::Millis(5));
}

}  // namespace
}  // namespace whodunit::events
