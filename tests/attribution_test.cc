// Critical-path wait-state attribution (src/obs/live/attribution.cc,
// docs/OBSERVABILITY.md): golden decomposition of a hand-built 3-tier
// DAG, the exact-sum invariant, overlap/orphan edge cases, and the
// aggregator's attribution fold (MergeFrom ctxt remapping, folded
// export).
#include "src/obs/live/attribution.h"

#include <gtest/gtest.h>

#include <numeric>
#include <string>
#include <string_view>
#include <vector>

#include "src/obs/live/aggregator.h"
#include "src/obs/live/daemon.h"
#include "src/sim/scheduler.h"

namespace whodunit::obs::live {
namespace {

// Events are built with interned SymIds; tests intern through the
// thread-current table, the same one the one-shot AttributeTxn and
// default-constructed daemons resolve against.
SymId S(std::string_view name) { return Syms().Intern(name); }

int64_t SliceSum(const AttrVec& slices) {
  int64_t sum = 0;
  for (const AttrSlice& s : slices) {
    sum += s.ns;
  }
  return sum;
}

// {stage, start, dur, parent, link, queue, service, lock}
TxnEvent ThreeTierEvent() {
  TxnEvent ev;
  ev.txn_id = 1;
  ev.type = S("checkout");
  ev.start_ns = 0;
  ev.end_ns = 10000;
  ev.spans.push_back({S("proxy"), 0, 10000, -1, 0, 0, 2000, 0});
  ev.spans.push_back({S("httpd"), 1500, 7000, 0, 1, 500, 1500, 0});
  ev.spans.push_back({S("db"), 3000, 4000, 1, 2, 200, 1000, 1800});
  return ev;
}

TEST(AttributionTest, GoldenThreeTierDecomposition) {
  // proxy [0,10000) -> httpd [1500,8500) -> db [3000,7000), with
  // measured queue/service/lock per span. Every interval classifies:
  //   proxy: 1000+1000 service burned around the child, 500 tail
  //     sched_other; the 500 gap before httpd is httpd's queue wait.
  //   httpd: 1300+200 service, 1300 sched_other; db's 200 queue wait.
  //   db: 1000 service, 1800 lock wait, 1200 sched_other (disk etc).
  const auto slices = AttributeTxn(ThreeTierEvent());

  // Byte-exact: ordered by (stage, ctxt, state) with the enum order
  // queue_wait < service < lock_wait < downstream_wait < sched_other.
  const std::vector<AttrSlice> expected = {
      {S("db"), 0, WaitState::kQueueWait, 200},
      {S("db"), 0, WaitState::kService, 1000},
      {S("db"), 0, WaitState::kLockWait, 1800},
      {S("db"), 0, WaitState::kSchedOther, 1200},
      {S("httpd"), 0, WaitState::kQueueWait, 500},
      {S("httpd"), 0, WaitState::kService, 1500},
      {S("httpd"), 0, WaitState::kSchedOther, 1300},
      {S("proxy"), 0, WaitState::kService, 2000},
      {S("proxy"), 0, WaitState::kSchedOther, 500},
  };
  ASSERT_EQ(slices.size(), expected.size());
  for (size_t i = 0; i < expected.size(); ++i) {
    EXPECT_EQ(slices[i].stage, expected[i].stage) << "slice " << i;
    EXPECT_EQ(slices[i].ctxt, expected[i].ctxt) << "slice " << i;
    EXPECT_EQ(slices[i].state, expected[i].state) << "slice " << i;
    EXPECT_EQ(slices[i].ns, expected[i].ns) << "slice " << i;
  }
  EXPECT_EQ(SliceSum(slices), 10000);
}

TEST(AttributionTest, SlicesSumToEndToEndExactly) {
  // The acceptance invariant: for any span DAG the slices sum to
  // end_ns - start_ns, with no nanosecond gained or lost.
  std::vector<TxnEvent> events;
  events.push_back(ThreeTierEvent());

  // Span durations that overrun the transaction window.
  TxnEvent overrun = ThreeTierEvent();
  overrun.spans[2].duration_ns = 50000;
  events.push_back(overrun);

  // Measured components larger than the time available to classify.
  TxnEvent overmeasured = ThreeTierEvent();
  overmeasured.spans[0].service_ns = 1 << 30;
  overmeasured.spans[1].queue_ns = 1 << 30;
  overmeasured.spans[2].lock_ns = 1 << 30;
  events.push_back(overmeasured);

  // Single-span transaction with no measurements at all.
  TxnEvent bare;
  bare.start_ns = 5;
  bare.end_ns = 777;
  bare.spans.push_back({S("solo"), 5, 772, -1, 0});
  events.push_back(bare);

  for (size_t i = 0; i < events.size(); ++i) {
    const auto slices = AttributeTxn(events[i]);
    EXPECT_EQ(SliceSum(slices), events[i].end_ns - events[i].start_ns)
        << "event " << i;
  }
}

TEST(AttributionTest, OverlappingDownstreamWaitsSplitOnce) {
  // Two children of the proxy with overlapping windows: the overlap is
  // owned by the earlier child's subtree; the later child only gets
  // the non-overlapped remainder, so nothing is double-counted.
  TxnEvent ev;
  ev.start_ns = 0;
  ev.end_ns = 10000;
  ev.spans.push_back({S("proxy"), 0, 10000, -1, 0});
  ev.spans.push_back({S("httpd"), 1000, 5000, 0, 1});  // [1000, 6000)
  ev.spans.push_back({S("db"), 2000, 7000, 0, 2});     // [2000, 9000) overlaps
  const auto slices = AttributeTxn(ev);

  const std::vector<AttrSlice> expected = {
      {S("db"), 0, WaitState::kSchedOther, 3000},     // [6000, 9000) only
      {S("httpd"), 0, WaitState::kSchedOther, 5000},  // [1000, 6000)
      {S("proxy"), 0, WaitState::kDownstreamWait, 1000},  // gap before httpd
      {S("proxy"), 0, WaitState::kSchedOther, 1000},      // [9000, 10000)
  };
  ASSERT_EQ(slices.size(), expected.size());
  for (size_t i = 0; i < expected.size(); ++i) {
    EXPECT_EQ(slices[i].stage, expected[i].stage) << "slice " << i;
    EXPECT_EQ(slices[i].state, expected[i].state) << "slice " << i;
    EXPECT_EQ(slices[i].ns, expected[i].ns) << "slice " << i;
  }
  EXPECT_EQ(SliceSum(slices), 10000);
}

TEST(AttributionTest, OrphanSpansGraftOntoOrigin) {
  // A span whose recorded parent is invalid (negative, or not an
  // earlier index) grafts onto the origin: its time is still
  // attributed rather than dropped.
  TxnEvent ev;
  ev.start_ns = 0;
  ev.end_ns = 1000;
  ev.spans.push_back({S("origin"), 0, 1000, -1, 0});
  ev.spans.push_back({S("orphan"), 200, 300, 7, 0});  // parent 7 does not precede
  const auto slices = AttributeTxn(ev);
  EXPECT_EQ(SliceSum(slices), 1000);
  bool saw_orphan = false;
  for (const AttrSlice& s : slices) {
    saw_orphan = saw_orphan || s.stage == S("orphan");
  }
  EXPECT_TRUE(saw_orphan);
}

TEST(AttributionTest, SliceCtxtFallsBackToRootCtxt) {
  TxnEvent ev = ThreeTierEvent();
  ev.root_ctxt = 42;
  ev.spans[2].ctxt = 9;  // the db span ran under its own context
  const auto slices = AttributeTxn(ev);
  for (const AttrSlice& s : slices) {
    EXPECT_EQ(s.ctxt, s.stage == S("db") ? 9u : 42u)
        << Syms().Name(s.stage) << "/" << WaitStateName(s.state);
  }
  EXPECT_EQ(SliceSum(slices), 10000);
}

TEST(AttributionTest, EmptyAndDegenerateEventsYieldNothing) {
  TxnEvent ev;
  EXPECT_TRUE(AttributeTxn(ev).empty());
  ev.start_ns = 100;
  ev.end_ns = 100;  // zero-width window
  ev.spans.push_back({S("s"), 100, 0, -1, 0});
  EXPECT_TRUE(AttributeTxn(ev).empty());
}

// ---- Daemon integration ----------------------------------------------

TEST(AttributionTest, DaemonAttributesPublishedTransactions) {
  sim::Scheduler sched;
  Whodunitd daemon(sched);
  const uint64_t txn = daemon.BeginTxn("proxy", 0);
  ASSERT_NE(txn, 0u);
  daemon.SetTxnType(txn, "checkout");
  sched.RunUntil(1500);
  daemon.JoinSpan(txn, "db", /*link=*/1, sched.now(), /*queue_ns=*/300);
  daemon.AddSpanWait(txn, "db", WaitState::kService, 400);
  daemon.AddSpanWait(txn, "db", WaitState::kLockWait, 700);
  sched.RunUntil(4000);
  daemon.EndSpan(txn, "db", sched.now());
  sched.RunUntil(5000);
  daemon.CompleteTxn(txn, sched.now());
  daemon.Shutdown();
  sched.Run();

  const auto events = daemon.RecentEvents();
  ASSERT_EQ(events.size(), 1u);
  const TxnEvent& ev = events[0];
  EXPECT_EQ(SliceSum(ev.attr), ev.end_ns - ev.start_ns);
  bool saw_lock = false;
  for (const AttrSlice& s : ev.attr) {
    if (s.stage == S("db") && s.state == WaitState::kLockWait) {
      saw_lock = true;
      EXPECT_EQ(s.ns, 700);
    }
  }
  EXPECT_TRUE(saw_lock);

  // The folded export carries the same totals, type;stage;state keyed.
  const std::string folded = daemon.ExportAttrFolded();
  EXPECT_NE(folded.find("checkout;db;lock_wait 700\n"), std::string::npos)
      << folded;
}

TEST(AttributionTest, DaemonAttributionKnobOff) {
  sim::Scheduler sched;
  LiveOptions lo;
  lo.attribution = false;
  Whodunitd daemon(sched, lo);
  const uint64_t txn = daemon.BeginTxn("proxy", 0);
  sched.RunUntil(100);
  daemon.CompleteTxn(txn, sched.now());
  daemon.Shutdown();
  sched.Run();
  const auto events = daemon.RecentEvents();
  ASSERT_EQ(events.size(), 1u);
  EXPECT_TRUE(events[0].attr.empty());
  EXPECT_TRUE(daemon.ExportAttrFolded().empty());
}

// ---- Aggregator fold -------------------------------------------------

TxnEvent AttributedEvent(const std::string& type, context::NodeId ctxt,
                         int64_t ns) {
  TxnEvent ev;
  ev.type = S(type);
  ev.start_ns = 0;
  ev.end_ns = ns;
  ev.spans.push_back({S("stage"), 0, ns, -1, 0});
  ev.attr.push_back({S("stage"), ctxt, WaitState::kService, ns});
  return ev;
}

TEST(AttributionTest, AggregatorMergeRemapsAttrContexts) {
  LiveAggregator a, b;
  a.Ingest(AttributedEvent("checkout", /*ctxt=*/1, 100));
  b.Ingest(AttributedEvent("checkout", /*ctxt=*/1, 40));
  b.Ingest(AttributedEvent("browse", /*ctxt=*/2, 7));

  // b's shard-local node 1 is node 5 on this side, node 2 is node 1:
  // the checkout rows must NOT merge (different post-remap contexts),
  // while browse lands on ctxt 1.
  a.MergeFrom(b, /*ctxt_remap=*/{0, 5, 1});

  const auto rows = a.AttrRows();
  ASSERT_EQ(rows.size(), 3u);
  EXPECT_EQ(rows[0].type, "browse");
  EXPECT_EQ(rows[0].ctxt, 1u);
  EXPECT_EQ(rows[0].ns, 7);
  EXPECT_EQ(rows[1].type, "checkout");
  EXPECT_EQ(rows[1].ctxt, 1u);
  EXPECT_EQ(rows[1].ns, 100);
  EXPECT_EQ(rows[2].type, "checkout");
  EXPECT_EQ(rows[2].ctxt, 5u);
  EXPECT_EQ(rows[2].ns, 40);

  // The folded export folds the context dimension back out.
  EXPECT_EQ(a.ExportAttrFolded(),
            "browse;stage;service 7\ncheckout;stage;service 140\n");
}

}  // namespace
}  // namespace whodunit::obs::live
