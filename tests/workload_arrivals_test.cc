#include "src/workload/arrivals.h"

#include <gtest/gtest.h>

#include <vector>

#include "src/sim/time.h"

namespace whodunit::workload {
namespace {

TEST(ArrivalsTest, ParseKnownKinds) {
  ArrivalKind kind = ArrivalKind::kBursty;
  EXPECT_TRUE(ParseArrivalKind("closed", &kind));
  EXPECT_EQ(kind, ArrivalKind::kClosed);
  EXPECT_TRUE(ParseArrivalKind("poisson", &kind));
  EXPECT_EQ(kind, ArrivalKind::kPoisson);
  EXPECT_TRUE(ParseArrivalKind("bursty", &kind));
  EXPECT_EQ(kind, ArrivalKind::kBursty);
  EXPECT_FALSE(ParseArrivalKind("open", &kind));
  EXPECT_EQ(kind, ArrivalKind::kBursty);  // untouched on failure
  EXPECT_STREQ(ArrivalKindName(ArrivalKind::kPoisson), "poisson");
}

TEST(ArrivalsTest, EffectiveOfferedTpsFallbacks) {
  ArrivalConfig cfg;
  // Explicit load wins.
  cfg.offered_load_tps = 42.5;
  EXPECT_DOUBLE_EQ(EffectiveOfferedTps(cfg, 70, sim::Millis(7000)), 42.5);
  // Otherwise: population / mean think time.
  cfg.offered_load_tps = 0.0;
  EXPECT_DOUBLE_EQ(EffectiveOfferedTps(cfg, 70, sim::Millis(7000)), 10.0);
  // No think time: one per client per second.
  EXPECT_DOUBLE_EQ(EffectiveOfferedTps(cfg, 70, 0), 70.0);
}

TEST(ArrivalsTest, PoissonMeanInterarrivalMatchesRate) {
  ArrivalConfig cfg;
  cfg.kind = ArrivalKind::kPoisson;
  ArrivalProcess p(cfg, /*tps=*/200.0, /*seed=*/9);
  constexpr int kDraws = 200000;
  double sum_ns = 0.0;
  for (int i = 0; i < kDraws; ++i) {
    sum_ns += static_cast<double>(p.NextInterarrival());
  }
  const double mean_s = sum_ns / kDraws / 1e9;
  EXPECT_NEAR(mean_s, 1.0 / 200.0, 0.05 / 200.0);
  EXPECT_EQ(p.arrivals_drawn(), static_cast<uint64_t>(kDraws));
}

TEST(ArrivalsTest, BurstyLongRunRateMatchesTarget) {
  // The MMPP's OFF rate is solved so the long-run mean equals the
  // target exactly; measure it over many ON/OFF cycles.
  ArrivalConfig cfg;
  cfg.kind = ArrivalKind::kBursty;
  ArrivalProcess p(cfg, /*tps=*/100.0, /*seed=*/31);
  constexpr int kDraws = 500000;
  double sum_ns = 0.0;
  for (int i = 0; i < kDraws; ++i) {
    sum_ns += static_cast<double>(p.NextInterarrival());
  }
  const double rate = kDraws / (sum_ns / 1e9);
  EXPECT_NEAR(rate, 100.0, 15.0);
}

TEST(ArrivalsTest, BurstyIsActuallyBursty) {
  // Short windows should see rates far above and far below the mean.
  ArrivalConfig cfg;
  cfg.kind = ArrivalKind::kBursty;
  ArrivalProcess p(cfg, /*tps=*/100.0, /*seed=*/5);
  const auto window = static_cast<double>(sim::Millis(500));
  std::vector<int> per_window;
  double in_window = 0.0;
  int count = 0;
  for (int i = 0; i < 200000; ++i) {
    in_window += static_cast<double>(p.NextInterarrival());
    ++count;
    while (in_window >= window) {
      per_window.push_back(count);
      count = 0;
      in_window -= window;
    }
  }
  // Mean per 500 ms window is 50; an MMPP with burst_factor 4 must show
  // both quiet and hot windows.
  int hot = 0, quiet = 0;
  for (int c : per_window) {
    if (c >= 100) ++hot;
    if (c <= 10) ++quiet;
  }
  EXPECT_GT(hot, 0);
  EXPECT_GT(quiet, 0);
}

TEST(ArrivalsTest, SameSeedSameStream) {
  ArrivalConfig cfg;
  cfg.kind = ArrivalKind::kBursty;
  ArrivalProcess a(cfg, 50.0, 77);
  ArrivalProcess b(cfg, 50.0, 77);
  ArrivalProcess c(cfg, 50.0, 78);
  bool diverged = false;
  for (int i = 0; i < 1000; ++i) {
    const sim::SimTime ga = a.NextInterarrival();
    ASSERT_EQ(ga, b.NextInterarrival()) << i;
    if (ga != c.NextInterarrival()) {
      diverged = true;
    }
  }
  EXPECT_TRUE(diverged);
}

}  // namespace
}  // namespace whodunit::workload
