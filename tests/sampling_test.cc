// Production sampling (docs/PRODUCTION.md): the per-transaction
// decision stream and the retention-bounded history store.
#include <cmath>
#include <cstdint>
#include <vector>

#include <gtest/gtest.h>

#include "src/obs/live/history.h"
#include "src/obs/metrics.h"
#include "src/profiler/sampling.h"

namespace whodunit {
namespace {

using obs::MetricsRegistry;
using obs::ScopedMetricsRegistry;
using obs::live::HistoryOptions;
using obs::live::Syms;
using obs::live::TxnEvent;
using obs::live::TxnHistory;
using profiler::SamplingConfig;
using profiler::SamplingPolicy;

TEST(SamplingPolicyTest, DefaultRateSamplesEverything) {
  MetricsRegistry reg;
  ScopedMetricsRegistry scope(reg);
  SamplingPolicy policy;
  EXPECT_TRUE(policy.always_on());
  for (int i = 0; i < 1000; ++i) {
    EXPECT_TRUE(policy.Decide());
  }
}

TEST(SamplingPolicyTest, RateZeroSamplesNothing) {
  MetricsRegistry reg;
  ScopedMetricsRegistry scope(reg);
  SamplingPolicy policy;
  policy.Configure(SamplingConfig{0.0, 7});
  EXPECT_FALSE(policy.always_on());
  for (int i = 0; i < 1000; ++i) {
    EXPECT_FALSE(policy.Decide());
  }
}

TEST(SamplingPolicyTest, ObservedRateMatchesConfiguredRate) {
  // Binomial check: at rate p over n trials the observed fraction is
  // within 6 standard deviations of p (false-failure odds ~1e-9, and
  // the stream is deterministic anyway — this guards the threshold
  // arithmetic, not luck).
  MetricsRegistry reg;
  ScopedMetricsRegistry scope(reg);
  for (double rate : {0.5, 0.1, 0.01}) {
    SamplingPolicy policy;
    policy.Configure(SamplingConfig{rate, 42});
    const int n = 200000;
    int sampled = 0;
    for (int i = 0; i < n; ++i) {
      if (policy.Decide()) ++sampled;
    }
    const double observed = static_cast<double>(sampled) / n;
    const double sigma = std::sqrt(rate * (1.0 - rate) / n);
    EXPECT_NEAR(observed, rate, 6.0 * sigma) << "rate " << rate;
  }
}

TEST(SamplingPolicyTest, SameSeedReproducesDecisionStream) {
  MetricsRegistry reg;
  ScopedMetricsRegistry scope(reg);
  SamplingPolicy a, b;
  a.Configure(SamplingConfig{0.3, 99});
  b.Configure(SamplingConfig{0.3, 99});
  for (int i = 0; i < 10000; ++i) {
    ASSERT_EQ(a.Decide(), b.Decide()) << "decision " << i;
  }
}

TEST(SamplingPolicyTest, DifferentSeedsGiveDifferentStreams) {
  MetricsRegistry reg;
  ScopedMetricsRegistry scope(reg);
  SamplingPolicy a, b;
  a.Configure(SamplingConfig{0.5, 1});
  b.Configure(SamplingConfig{0.5, 2});
  int differing = 0;
  for (int i = 0; i < 10000; ++i) {
    if (a.Decide() != b.Decide()) ++differing;
  }
  EXPECT_GT(differing, 1000);
}

TEST(SamplingPolicyTest, CountersTrackDecisions) {
  MetricsRegistry reg;
  ScopedMetricsRegistry scope(reg);
  SamplingPolicy policy;
  policy.Configure(SamplingConfig{0.5, 5});
  uint64_t sampled = 0;
  for (int i = 0; i < 1000; ++i) {
    if (policy.Decide()) ++sampled;
  }
  EXPECT_EQ(policy.decisions(), 1000u);
  EXPECT_EQ(reg.GetCounter("sampling.txns_total").Value(), 1000u);
  EXPECT_EQ(reg.GetCounter("sampling.txns_sampled").Value(), sampled);
  EXPECT_GT(sampled, 0u);
  EXPECT_LT(sampled, 1000u);
}

// ---- TxnHistory ------------------------------------------------------

TxnEvent MakeEvent(uint64_t id, int64_t end_ns) {
  TxnEvent ev;
  ev.txn_id = id;
  ev.type = Syms().Intern("checkout");
  ev.origin_stage = Syms().Intern("squid");
  ev.start_ns = end_ns - 1000;
  ev.end_ns = end_ns;
  ev.spans.push_back({Syms().Intern("squid"), ev.start_ns, 1000, -1, 0});
  return ev;
}

TEST(TxnHistoryTest, FlushPromotesPendingOnInterval) {
  MetricsRegistry reg;
  ScopedMetricsRegistry scope(reg);
  TxnHistory history(HistoryOptions{1 << 20, 1000});
  history.Ingest(MakeEvent(1, 0), 0);
  // Pending until the flush interval elapses.
  EXPECT_EQ(history.retained_txns(), 0u);
  EXPECT_EQ(history.pending_txns(), 1u);
  history.Ingest(MakeEvent(2, 500), 500);
  EXPECT_EQ(history.retained_txns(), 0u);
  // This ingest crosses the interval and triggers the flush.
  history.Ingest(MakeEvent(3, 1500), 1500);
  EXPECT_EQ(history.retained_txns(), 3u);
  EXPECT_EQ(history.pending_txns(), 0u);
  EXPECT_EQ(history.flushes(), 1u);
  EXPECT_EQ(reg.GetCounter("history.txns_ingested").Value(), 3u);
}

TEST(TxnHistoryTest, EvictsOldestFirstToStayUnderBudget) {
  MetricsRegistry reg;
  ScopedMetricsRegistry scope(reg);
  const size_t per_event = TxnHistory::ApproxBytes(MakeEvent(0, 0));
  // Budget for roughly three records.
  TxnHistory history(HistoryOptions{per_event * 3 + per_event / 2, 100});
  for (int i = 0; i < 6; ++i) {
    history.Ingest(MakeEvent(static_cast<uint64_t>(i), i * 1000), i * 1000);
  }
  history.Flush(10000);
  EXPECT_LE(history.retained_bytes(), history.options().max_bytes);
  EXPECT_GT(history.evicted_txns(), 0u);
  // Survivors are the newest records, oldest first.
  const auto scan = history.Scan();
  ASSERT_FALSE(scan.empty());
  for (size_t i = 1; i < scan.size(); ++i) {
    EXPECT_LT(scan[i - 1]->txn_id, scan[i]->txn_id);
  }
  EXPECT_EQ(scan.back()->txn_id, 5u);
  EXPECT_EQ(reg.GetCounter("history.evicted_txns").Value(), history.evicted_txns());
}

TEST(TxnHistoryTest, BudgetIsASoftLimitBetweenFlushes) {
  MetricsRegistry reg;
  ScopedMetricsRegistry scope(reg);
  const size_t per_event = TxnHistory::ApproxBytes(MakeEvent(0, 0));
  // Budget for one record, long flush interval: pending accumulation
  // may exceed the budget until the next flush settles it.
  TxnHistory history(HistoryOptions{per_event, 1'000'000});
  for (int i = 0; i < 5; ++i) {
    history.Ingest(MakeEvent(static_cast<uint64_t>(i), i), i);
  }
  EXPECT_EQ(history.pending_txns(), 5u);
  history.Flush(10);
  EXPECT_LE(history.retained_bytes(), per_event);
  EXPECT_EQ(history.retained_txns(), 1u);
  EXPECT_EQ(history.Scan().back()->txn_id, 4u);
  EXPECT_EQ(history.evicted_txns(), 4u);
}

TEST(TxnHistoryTest, ZeroBudgetDisablesTheStore) {
  MetricsRegistry reg;
  ScopedMetricsRegistry scope(reg);
  TxnHistory history(HistoryOptions{0, 100});
  EXPECT_FALSE(history.enabled());
  history.Ingest(MakeEvent(1, 0), 0);
  history.Flush(1000);
  EXPECT_EQ(history.retained_txns(), 0u);
  EXPECT_EQ(history.pending_txns(), 0u);
}

TEST(TxnHistoryTest, ExportJsonListsRetainedOldestFirst) {
  MetricsRegistry reg;
  ScopedMetricsRegistry scope(reg);
  TxnHistory history(HistoryOptions{1 << 20, 100});
  history.Ingest(MakeEvent(7, 0), 0);
  history.Ingest(MakeEvent(8, 50), 50);
  history.Flush(200);
  const std::string json = history.ExportJson();
  EXPECT_NE(json.find("whodunit-history-v1"), std::string::npos);
  const size_t first = json.find("\"txn_id\":7");
  const size_t second = json.find("\"txn_id\":8");
  ASSERT_NE(first, std::string::npos);
  ASSERT_NE(second, std::string::npos);
  EXPECT_LT(first, second);
}

}  // namespace
}  // namespace whodunit
