// sim::ParallelRunner and the deterministic-merge primitives it rests
// on: ShardEnv isolation, shard-registered id-counter restarts, and
// the name/id remapping merges of ContextTree, FunctionRegistry,
// CallingContextTree, and CrosstalkRecorder.
#include "src/sim/parallel_runner.h"

#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "src/callpath/cct.h"
#include "src/callpath/function_registry.h"
#include "src/context/context_tree.h"
#include "src/context/transaction_context.h"
#include "src/crosstalk/crosstalk.h"
#include "src/obs/export.h"
#include "src/obs/metrics.h"
#include "src/sim/lock.h"
#include "src/sim/scheduler.h"

namespace whodunit {
namespace {

using context::Element;
using context::ElementKind;

TEST(ParallelRunnerTest, ShardMetricsAreIsolatedFromTheProcessRegistry) {
  const uint64_t before = obs::Registry().GetCounter("test.shard_iso").Value();

  auto runs = sim::ParallelRunner::Run(4, 2, [](size_t shard, sim::ShardEnv&) {
    // Inside the scope, Registry() resolves to the shard's registry.
    obs::Registry().GetCounter("test.shard_iso").Add(shard + 1);
    return shard;
  });

  // Nothing leaked into the process-wide registry while shards ran.
  EXPECT_EQ(obs::Registry().GetCounter("test.shard_iso").Value(), before);
  // Each shard kept its own count, retrievable after the run.
  for (size_t shard = 0; shard < runs.size(); ++shard) {
    EXPECT_EQ(runs[shard].result, shard);
    EXPECT_EQ(runs[shard].env->metrics().GetCounter("test.shard_iso").Value(),
              shard + 1);
  }

  // The canonical-order fold sums them.
  obs::MetricsRegistry target;
  for (const auto& run : runs) {
    run.env->FoldMetricsInto(target);
  }
  EXPECT_EQ(target.GetCounter("test.shard_iso").Value(), 1u + 2u + 3u + 4u);
}

TEST(ParallelRunnerTest, ShardIdCountersRestartPerShard) {
  // Lock ids come from a shard-registered thread-local allocator
  // (src/util/shard_state.h): every shard must see the same id stream
  // regardless of which pool thread runs it.
  auto runs = sim::ParallelRunner::Run(4, 4, [](size_t, sim::ShardEnv&) {
    sim::Scheduler sched;
    sim::SimMutex first(sched, "a");
    sim::SimMutex second(sched, "b");
    return std::pair<uint64_t, uint64_t>(first.id(), second.id());
  });
  for (size_t shard = 1; shard < runs.size(); ++shard) {
    EXPECT_EQ(runs[shard].result, runs[0].result) << "shard " << shard;
  }
  EXPECT_EQ(runs[0].result.second, runs[0].result.first + 1);
}

TEST(ParallelRunnerTest, ResultsAndFoldedMetricsAreThreadCountInvariant) {
  const auto job = [](size_t shard, sim::ShardEnv&) {
    obs::Registry().GetCounter("test.work").Add(10 * (shard + 1));
    context::ContextTree& tree = context::GlobalContextTree();
    context::NodeId ctxt = context::kEmptyContext;
    for (size_t i = 0; i <= shard; ++i) {
      ctxt = tree.Append(ctxt, Element{ElementKind::kHandler,
                                       static_cast<uint32_t>(i)});
    }
    return std::to_string(shard) + ":" + std::to_string(tree.SizeOf(ctxt));
  };

  std::vector<std::string> reference;
  std::string reference_json;
  for (size_t threads : {1, 2, 8}) {
    auto runs = sim::ParallelRunner::Run(6, threads, job);
    std::vector<std::string> results;
    obs::MetricsRegistry folded;
    for (const auto& run : runs) {
      results.push_back(run.result);
      run.env->FoldMetricsInto(folded);
    }
    const std::string json = obs::ToJson(folded.Snapshot());
    if (threads == 1) {
      reference = results;
      reference_json = json;
      continue;
    }
    EXPECT_EQ(results, reference) << threads << " threads";
    EXPECT_EQ(json, reference_json) << threads << " threads";
  }
}

TEST(ContextTreeMergeTest, RemapsCollidingNodeIds) {
  // Two trees whose NodeId spaces collide: id 1 spells a different
  // element sequence in each.
  context::ContextTree a;
  context::NodeId a1 = a.Append(context::kEmptyContext,
                                Element{ElementKind::kHandler, 7});
  a.Append(a1, Element{ElementKind::kStage, 3});

  context::ContextTree b;
  context::NodeId b1 = b.Append(context::kEmptyContext,
                                Element{ElementKind::kHandler, 99});
  context::NodeId b2 = b.Append(b1, Element{ElementKind::kHandler, 7});
  ASSERT_EQ(b1, a1);  // same raw id, different sequence — the collision

  const std::vector<context::NodeId> remap = a.MergeFrom(b);
  ASSERT_EQ(remap.size(), b.node_count());

  // Every node of b must map to a node of a spelling the same element
  // sequence.
  for (context::NodeId id = 0; id < b.node_count(); ++id) {
    EXPECT_EQ(a.Materialize(remap[id]).elements(),
              b.Materialize(id).elements())
        << "node " << id;
  }
  // The colliding id landed on a fresh node, not on a's id 1.
  EXPECT_NE(remap[b1], a1);
  EXPECT_NE(remap[b2], remap[b1]);
}

TEST(ContextTreeMergeTest, SharedSequencesMapOntoExistingNodes) {
  context::ContextTree a;
  context::NodeId shared = a.Append(context::kEmptyContext,
                                    Element{ElementKind::kHandler, 1});

  context::ContextTree b;
  context::NodeId b_shared = b.Append(context::kEmptyContext,
                                      Element{ElementKind::kHandler, 1});

  const size_t nodes_before = a.node_count();
  const std::vector<context::NodeId> remap = a.MergeFrom(b);
  EXPECT_EQ(remap[b_shared], shared);       // hash-consed onto the existing node
  EXPECT_EQ(a.node_count(), nodes_before);  // nothing new was created
}

TEST(MergePrimitivesTest, FunctionRegistryMergesByName) {
  callpath::FunctionRegistry a;
  const callpath::FunctionId a_f = a.Register("f");
  const callpath::FunctionId a_g = a.Register("g");

  callpath::FunctionRegistry b;
  b.Register("g");
  b.Register("h");

  const std::vector<callpath::FunctionId> remap = a.MergeFrom(b);
  ASSERT_EQ(remap.size(), 2u);
  EXPECT_EQ(remap[0], a_g);  // "g" unified with a's id
  EXPECT_EQ(a.NameOf(remap[1]), "h");
  EXPECT_NE(remap[1], a_f);
  EXPECT_EQ(a.size(), 3u);
}

TEST(MergePrimitivesTest, CctMergeTranslatesFunctionIds) {
  callpath::FunctionRegistry reg_a;
  const callpath::FunctionId a_main = reg_a.Register("main");

  callpath::FunctionRegistry reg_b;
  const callpath::FunctionId b_helper = reg_b.Register("helper");  // id 0 == a_main!
  const callpath::FunctionId b_main = reg_b.Register("main");

  callpath::CallingContextTree cct_a;
  const auto a_node = cct_a.Child(cct_a.root(), a_main);
  cct_a.AddSample(a_node, 5);

  callpath::CallingContextTree cct_b;
  const auto b_node = cct_b.Child(cct_b.root(), b_main);
  cct_b.AddSample(b_node, 7);
  const auto b_leaf = cct_b.Child(b_node, b_helper);
  cct_b.AddSample(b_leaf, 2);

  const std::vector<callpath::FunctionId> remap = reg_a.MergeFrom(reg_b);
  cct_a.MergeFrom(cct_b, remap);

  // "main" merged onto a's existing node (5 + 7 samples); "helper"
  // hangs beneath it with its translated id.
  const auto merged_main = cct_a.Child(cct_a.root(), a_main);
  EXPECT_EQ(merged_main, a_node);
  EXPECT_EQ(cct_a.node(merged_main).samples, 12u);
  const auto merged_helper = cct_a.Child(merged_main, remap[b_helper]);
  EXPECT_EQ(cct_a.node(merged_helper).samples, 2u);
  EXPECT_EQ(reg_a.NameOf(cct_a.node(merged_helper).function), "helper");
  EXPECT_EQ(cct_a.TotalSamples(), 14u);
}

TEST(MergePrimitivesTest, CrosstalkMergeRemapsTags) {
  sim::Scheduler sched;
  sim::SimMutex lock(sched, "item_table");

  crosstalk::CrosstalkRecorder a;
  a.OnAcquired(lock, /*waiter=*/1, /*blocking=*/2, /*wait=*/100);

  // The shard recorder used a different tag space: its tag 1 is a
  // different transaction type that must NOT fold into a's tag 1.
  crosstalk::CrosstalkRecorder b;
  b.OnAcquired(lock, /*waiter=*/1, /*blocking=*/2, /*wait=*/300);
  b.OnAcquired(lock, /*waiter=*/1, /*blocking=*/2, /*wait=*/0);  // uncontended

  const auto remap = [](uint64_t tag) { return tag + 10; };
  a.MergeFrom(b, remap);

  EXPECT_EQ(a.acquires_observed(), 3u);
  EXPECT_DOUBLE_EQ(a.MeanPairWait(1, 2), 100.0);    // untouched
  EXPECT_DOUBLE_EQ(a.MeanPairWait(11, 12), 300.0);  // remapped
  EXPECT_DOUBLE_EQ(a.MeanWaitAllAcquires(11), 150.0);
  const std::vector<uint64_t> tags = a.Tags();
  EXPECT_EQ(tags, (std::vector<uint64_t>{1, 2, 11, 12}));

  // Identity merge (no remap) folds stats exactly.
  crosstalk::CrosstalkRecorder c;
  c.OnAcquired(lock, 1, 2, 500);
  a.MergeFrom(c);
  EXPECT_DOUBLE_EQ(a.MeanPairWait(1, 2), 300.0);  // (100 + 500) / 2
}

}  // namespace
}  // namespace whodunit
