#include "src/sim/scheduler.h"

#include <gtest/gtest.h>

#include <functional>
#include <vector>

#include "src/sim/task.h"
#include "src/util/rng.h"

namespace whodunit::sim {
namespace {

TEST(SchedulerTest, RunsEventsInTimeOrder) {
  Scheduler s;
  std::vector<int> order;
  s.ScheduleAt(30, [&] { order.push_back(3); });
  s.ScheduleAt(10, [&] { order.push_back(1); });
  s.ScheduleAt(20, [&] { order.push_back(2); });
  s.Run();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
  EXPECT_EQ(s.now(), 30);
}

TEST(SchedulerTest, TiesBreakFifo) {
  Scheduler s;
  std::vector<int> order;
  for (int i = 0; i < 10; ++i) {
    s.ScheduleAt(5, [&order, i] { order.push_back(i); });
  }
  s.Run();
  for (int i = 0; i < 10; ++i) {
    EXPECT_EQ(order[i], i);
  }
}

TEST(SchedulerTest, PastTimesClampToNow) {
  Scheduler s;
  SimTime seen = -1;
  s.ScheduleAt(100, [&] {
    s.ScheduleAt(50, [&] { seen = s.now(); });  // in the past
  });
  s.Run();
  EXPECT_EQ(seen, 100);
}

TEST(SchedulerTest, EventsCanScheduleMoreEvents) {
  Scheduler s;
  int depth = 0;
  std::function<void()> chain = [&] {
    if (++depth < 100) {
      s.ScheduleAfter(1, chain);
    }
  };
  s.ScheduleAt(0, chain);
  s.Run();
  EXPECT_EQ(depth, 100);
  EXPECT_EQ(s.now(), 99);
}

TEST(SchedulerTest, RunUntilStopsAndAdvancesClock) {
  Scheduler s;
  int fired = 0;
  s.ScheduleAt(10, [&] { ++fired; });
  s.ScheduleAt(200, [&] { ++fired; });
  s.RunUntil(100);
  EXPECT_EQ(fired, 1);
  EXPECT_EQ(s.now(), 100);
  s.Run();
  EXPECT_EQ(fired, 2);
}

TEST(SchedulerTest, StepReturnsFalseWhenEmpty) {
  Scheduler s;
  EXPECT_FALSE(s.Step());
  s.ScheduleAt(1, [] {});
  EXPECT_TRUE(s.Step());
  EXPECT_FALSE(s.Step());
}

TEST(SchedulerTest, RunUntilIncludesEventsAtExactBoundary) {
  Scheduler s;
  int fired = 0;
  s.ScheduleAt(100, [&] { ++fired; });
  s.ScheduleAt(101, [&] { ++fired; });
  s.RunUntil(100);
  EXPECT_EQ(fired, 1);
  EXPECT_EQ(s.now(), 100);
  s.Run();
  EXPECT_EQ(fired, 2);
}

TEST(SchedulerTest, NegativeScheduleAfterClampsToNow) {
  Scheduler s;
  SimTime seen = -1;
  s.ScheduleAt(100, [&] {
    s.ScheduleAfter(-30, [&] { seen = s.now(); });
  });
  s.Run();
  EXPECT_EQ(seen, 100);
  EXPECT_EQ(s.now(), 100);
}

TEST(SchedulerTest, FifoSurvivesSpillAndRungRefill) {
  // Far more events than the calendar's bottom tier holds, drawn from
  // a handful of timestamps so heavy tie groups are split across the
  // bottom/rung/top spill paths. The executed sequence must still be
  // the exact (time, insertion order) total order.
  Scheduler s;
  struct Rec {
    SimTime t;
    int i;
  };
  std::vector<Rec> order;
  util::Rng rng(7);
  constexpr int kEvents = 5000;
  for (int i = 0; i < kEvents; ++i) {
    const auto t = static_cast<SimTime>(rng.NextBelow(16) * 1000);
    s.ScheduleAt(t, [&order, t, i] { order.push_back({t, i}); });
  }
  s.Run();
  ASSERT_EQ(order.size(), static_cast<size_t>(kEvents));
  for (size_t k = 1; k < order.size(); ++k) {
    const bool in_order =
        order[k - 1].t < order[k].t ||
        (order[k - 1].t == order[k].t && order[k - 1].i < order[k].i);
    ASSERT_TRUE(in_order) << "at position " << k;
  }
  // The point of the test: the spill machinery actually engaged.
  EXPECT_GT(s.queue_stats().spills + s.queue_stats().promotions, 0u);
  EXPECT_EQ(s.queue_stats().peak_depth, static_cast<size_t>(kEvents));
}

// Runs an identical randomized workload — events rescheduling further
// events with heavy timestamp collisions — on the given scheduler and
// returns the execution order of event ids.
template <typename S>
std::vector<int> RandomWorkloadOrder(uint64_t seed) {
  S s;
  util::Rng rng(seed);
  std::vector<int> order;
  int next_id = 0;
  constexpr int kMaxEvents = 20000;
  std::function<void(int)> fire = [&](int id) {
    order.push_back(id);
    const uint64_t kids = rng.NextBelow(3);
    for (uint64_t k = 0; k < kids && next_id < kMaxEvents; ++k) {
      const int cid = next_id++;
      // Mix zero/near-tie deltas with far jumps so events cross every
      // tier of the calendar.
      const auto dt = static_cast<SimTime>(
          rng.NextBelow(4) == 0 ? rng.NextBelow(3) : rng.NextBelow(50000));
      s.ScheduleAfter(dt, [&fire, cid] { fire(cid); });
    }
  };
  while (next_id < 2000) {
    const int id = next_id++;
    const auto t = static_cast<SimTime>(rng.NextBelow(20000));
    s.ScheduleAt(t, [&fire, id] { fire(id); });
  }
  s.Run();
  return order;
}

TEST(SchedulerTest, LadderMatchesHeapOnRandomWorkloads) {
  // Differential check: the calendar queue and the reference binary
  // heap must execute byte-identical event sequences, including events
  // scheduled from inside callbacks.
  for (const uint64_t seed : {1ULL, 42ULL, 1234ULL}) {
    const std::vector<int> ladder = RandomWorkloadOrder<Scheduler>(seed);
    const std::vector<int> heap = RandomWorkloadOrder<HeapScheduler>(seed);
    ASSERT_GE(ladder.size(), 2000u) << "seed " << seed;
    EXPECT_EQ(ladder, heap) << "seed " << seed;
  }
}

Process CountTo(Scheduler& sched, int n, int& counter) {
  for (int i = 0; i < n; ++i) {
    co_await Delay{sched, 10};
    ++counter;
  }
}

TEST(ProcessTest, DelayAdvancesVirtualTime) {
  Scheduler s;
  int counter = 0;
  Spawn(s, CountTo(s, 5, counter));
  s.Run();
  EXPECT_EQ(counter, 5);
  EXPECT_EQ(s.now(), 50);
}

TEST(ProcessTest, ConcurrentProcessesInterleave) {
  Scheduler s;
  int a = 0, b = 0;
  Spawn(s, CountTo(s, 3, a));
  Spawn(s, CountTo(s, 7, b));
  s.Run();
  EXPECT_EQ(a, 3);
  EXPECT_EQ(b, 7);
  EXPECT_EQ(s.now(), 70);
}

TEST(ProcessTest, SpawnAfterDelaysStart) {
  Scheduler s;
  int counter = 0;
  SpawnAfter(s, 100, CountTo(s, 1, counter));
  s.RunUntil(99);
  EXPECT_EQ(counter, 0);
  s.Run();
  EXPECT_EQ(counter, 1);
  EXPECT_EQ(s.now(), 110);
}

Task<int> AddAfter(Scheduler& sched, int x, int y) {
  co_await Delay{sched, 5};
  co_return x + y;
}

Process UseTask(Scheduler& sched, int& out) {
  out = co_await AddAfter(sched, 2, 3);
}

TEST(TaskTest, NestedTaskReturnsValue) {
  Scheduler s;
  int out = 0;
  Spawn(s, UseTask(s, out));
  s.Run();
  EXPECT_EQ(out, 5);
  EXPECT_EQ(s.now(), 5);
}

Task<void> Inner(Scheduler& sched, std::vector<int>& log) {
  log.push_back(1);
  co_await Delay{sched, 1};
  log.push_back(2);
}

Process Outer(Scheduler& sched, std::vector<int>& log) {
  co_await Inner(sched, log);
  log.push_back(3);
}

TEST(TaskTest, VoidTaskSequencing) {
  Scheduler s;
  std::vector<int> log;
  Spawn(s, Outer(s, log));
  s.Run();
  EXPECT_EQ(log, (std::vector<int>{1, 2, 3}));
}

Task<int> DeepChain(Scheduler& sched, int depth) {
  if (depth == 0) {
    co_return 0;
  }
  int below = co_await DeepChain(sched, depth - 1);
  co_return below + 1;
}

Process RunDeep(Scheduler& sched, int& out) { out = co_await DeepChain(sched, 5000); }

TEST(TaskTest, DeepChainsDoNotOverflowStack) {
  Scheduler s;
  int out = 0;
  Spawn(s, RunDeep(s, out));
  s.Run();
  EXPECT_EQ(out, 5000);
}

}  // namespace
}  // namespace whodunit::sim
