// Tests for the live observability service (src/obs/live): aggregator
// round-trips, the daemon's publish/pump/query cycle, Chrome-trace
// span export (golden + validity), and end-to-end smokes on the apps.
#include <gtest/gtest.h>

#include <cctype>
#include <sstream>
#include <string>
#include <string_view>

#include "src/apps/bookstore/bookstore.h"
#include "src/apps/minihttpd/minihttpd.h"
#include "src/apps/sedaserver/sedaserver.h"
#include "src/obs/live/aggregator.h"
#include "src/obs/live/daemon.h"
#include "src/obs/live/span_export.h"
#include "src/obs/live/txn_event.h"
#include "src/obs/metrics.h"
#include "src/sim/parallel_runner.h"
#include "src/sim/scheduler.h"
#include "src/sim/time.h"

namespace whodunit::obs::live {
namespace {

// ---- Minimal JSON validity checker ----------------------------------
// Recursive-descent acceptor for the JSON grammar — enough to prove
// the exports are well-formed without a JSON library in the image.
class JsonChecker {
 public:
  explicit JsonChecker(const std::string& s) : s_(s) {}

  bool Valid() {
    SkipWs();
    if (!Value()) return false;
    SkipWs();
    return pos_ == s_.size();
  }

 private:
  bool Value() {
    if (pos_ >= s_.size()) return false;
    switch (s_[pos_]) {
      case '{':
        return Object();
      case '[':
        return Array();
      case '"':
        return String();
      case 't':
        return Literal("true");
      case 'f':
        return Literal("false");
      case 'n':
        return Literal("null");
      default:
        return Number();
    }
  }

  bool Object() {
    ++pos_;  // '{'
    SkipWs();
    if (Peek('}')) return true;
    while (true) {
      SkipWs();
      if (!String()) return false;
      SkipWs();
      if (!Peek(':')) return false;
      SkipWs();
      if (!Value()) return false;
      SkipWs();
      if (Peek('}')) return true;
      if (!Peek(',')) return false;
    }
  }

  bool Array() {
    ++pos_;  // '['
    SkipWs();
    if (Peek(']')) return true;
    while (true) {
      SkipWs();
      if (!Value()) return false;
      SkipWs();
      if (Peek(']')) return true;
      if (!Peek(',')) return false;
    }
  }

  bool String() {
    if (pos_ >= s_.size() || s_[pos_] != '"') return false;
    ++pos_;
    while (pos_ < s_.size() && s_[pos_] != '"') {
      if (s_[pos_] == '\\') ++pos_;
      ++pos_;
    }
    if (pos_ >= s_.size()) return false;
    ++pos_;  // closing quote
    return true;
  }

  bool Number() {
    const size_t start = pos_;
    if (pos_ < s_.size() && s_[pos_] == '-') ++pos_;
    while (pos_ < s_.size() &&
           (std::isdigit(static_cast<unsigned char>(s_[pos_])) || s_[pos_] == '.' ||
            s_[pos_] == 'e' || s_[pos_] == 'E' || s_[pos_] == '+' || s_[pos_] == '-')) {
      ++pos_;
    }
    return pos_ > start;
  }

  bool Literal(const char* word) {
    const size_t len = std::string(word).size();
    if (s_.compare(pos_, len, word) != 0) return false;
    pos_ += len;
    return true;
  }

  bool Peek(char c) {
    if (pos_ < s_.size() && s_[pos_] == c) {
      ++pos_;
      return true;
    }
    return false;
  }

  void SkipWs() {
    while (pos_ < s_.size() && std::isspace(static_cast<unsigned char>(s_[pos_]))) {
      ++pos_;
    }
  }

  const std::string& s_;
  size_t pos_ = 0;
};

TEST(JsonCheckerTest, AcceptsAndRejects) {
  EXPECT_TRUE(JsonChecker(R"({"a":[1,2.5,-3e2],"b":"x\"y","c":null,"d":true})").Valid());
  EXPECT_FALSE(JsonChecker(R"({"a":1,)").Valid());
  EXPECT_FALSE(JsonChecker(R"([1,2,])").Valid());
  EXPECT_FALSE(JsonChecker("{} trailing").Valid());
}

// ---- Aggregator ------------------------------------------------------

// Names intern through the thread-current symbol table — the same one
// default-constructed aggregators/daemons resolve against.
SymId S(std::string_view name) { return Syms().Intern(name); }

TxnEvent MakeEvent(uint64_t id, const std::string& type, int64_t start,
                   int64_t end, bool error = false) {
  TxnEvent ev;
  ev.txn_id = id;
  ev.type = S(type);
  ev.origin_stage = S("front");
  ev.start_ns = start;
  ev.end_ns = end;
  ev.error = error;
  ev.spans.push_back({S("front"), start, end - start, -1, 0});
  ev.spans.push_back({S("back"), start + 10, end - start - 10, 0, 7});
  return ev;
}

TEST(LiveAggregatorTest, IngestRoundTrip) {
  LiveAggregator agg;
  agg.Ingest(MakeEvent(1, "read", 0, sim::Millis(10)));
  agg.Ingest(MakeEvent(2, "read", 0, sim::Millis(30)));
  agg.Ingest(MakeEvent(3, "write", 0, sim::Millis(50), /*error=*/true));

  EXPECT_EQ(agg.txns(), 3u);
  EXPECT_EQ(agg.errors(), 1u);

  const auto types = agg.TypeRows();
  ASSERT_EQ(types.size(), 2u);
  EXPECT_EQ(types[0].type, "read");  // highest count first
  EXPECT_EQ(types[0].count, 2u);
  EXPECT_EQ(types[0].errors, 0u);
  EXPECT_NEAR(types[0].mean_ms, 20.0, 20.0 * 0.15);
  EXPECT_EQ(types[1].type, "write");
  EXPECT_EQ(types[1].errors, 1u);
  // Quantiles come from the mergeable histogram: within 15% of truth.
  EXPECT_NEAR(types[1].p99_ms, 50.0, 50.0 * 0.15);

  const auto stages = agg.StageRows();
  ASSERT_EQ(stages.size(), 2u);
  for (const auto& s : stages) {
    EXPECT_EQ(s.spans, 3u) << s.stage;
    EXPECT_GT(s.busy_ms, 0.0) << s.stage;
  }

  ASSERT_NE(agg.HistogramFor("read"), nullptr);
  EXPECT_EQ(agg.HistogramFor("read")->count(), 2u);
  EXPECT_EQ(agg.HistogramFor("nosuch"), nullptr);
}

TEST(LiveAggregatorTest, CostAndCrosstalk) {
  LiveAggregator agg;
  agg.AddCost(/*ctxt=*/5, 1000);
  agg.AddCost(/*ctxt=*/9, 3000);
  agg.AddCost(/*ctxt=*/5, 500);

  auto top = agg.TopContexts(10);
  ASSERT_EQ(top.size(), 2u);
  EXPECT_EQ(top[0].ctxt, 9u);  // heaviest first
  EXPECT_EQ(top[0].cost_ns, 3000u);
  EXPECT_EQ(top[1].ctxt, 5u);
  EXPECT_EQ(top[1].cost_ns, 1500u);
  EXPECT_EQ(agg.TopContexts(1).size(), 1u);

  agg.NameTag(11, "OrderStatus");
  agg.IngestWait(/*waiter=*/11, /*holder=*/22, sim::Millis(4));
  agg.IngestWait(/*waiter=*/11, /*holder=*/22, sim::Millis(8));
  const auto pairs = agg.CrosstalkRows();
  ASSERT_EQ(pairs.size(), 1u);
  EXPECT_EQ(pairs[0].waiter, "OrderStatus");
  EXPECT_EQ(pairs[0].holder, "tag_22");  // unnamed tag
  EXPECT_EQ(pairs[0].count, 2u);
  EXPECT_DOUBLE_EQ(pairs[0].mean_wait_ms, 6.0);
}

// ---- Daemon ----------------------------------------------------------

TEST(WhodunitdTest, PublishPumpQuery) {
  sim::Scheduler sched;
  {
    // publish_batch = 1: every completion crosses the channel alone,
    // so mid-run queries see the event as soon as the pump runs.
    LiveOptions options;
    options.publish_batch = 1;
    Whodunitd d(sched, options);

    const uint64_t txn = d.BeginTxn("front", d.now());
    ASSERT_NE(txn, 0u);
    EXPECT_EQ(d.inflight(), 1u);
    d.SetTxnType(txn, "checkout");
    d.NoteSend(txn, "front", /*link=*/42);
    sched.ScheduleAt(sim::Micros(10), [&] {
      d.JoinSpan(txn, "back", /*link=*/42, d.now());
    });
    sched.ScheduleAt(sim::Micros(30), [&] { d.EndSpan(txn, "back", d.now()); });
    sched.ScheduleAt(sim::Micros(40), [&] {
      d.SetTxnCtxt(txn, 17);
      d.CompleteTxn(txn, d.now());
    });
    sched.Run();  // pump drains the published event

    EXPECT_EQ(d.inflight(), 0u);
    EXPECT_EQ(d.aggregator().txns(), 1u);

    const auto events = d.RecentEvents();
    ASSERT_EQ(events.size(), 1u);
    const TxnEvent& ev = events[0];
    EXPECT_EQ(ev.type, S("checkout"));
    EXPECT_EQ(ev.origin_stage, S("front"));
    EXPECT_EQ(ev.root_ctxt, 17u);
    EXPECT_EQ(ev.end_ns, sim::Micros(40));
    ASSERT_EQ(ev.spans.size(), 2u);
    // The origin span stayed open until CompleteTxn closed it.
    EXPECT_EQ(ev.spans[0].stage, S("front"));
    EXPECT_EQ(ev.spans[0].duration_ns, sim::Micros(40));
    // The joined span linked to the origin via the noted send part.
    EXPECT_EQ(ev.spans[1].stage, S("back"));
    EXPECT_EQ(ev.spans[1].parent, 0);
    EXPECT_EQ(ev.spans[1].link, 42u);
    EXPECT_EQ(ev.spans[1].duration_ns, sim::Micros(20));

    const auto snap = d.Top();
    EXPECT_EQ(snap.txns, 1u);
    ASSERT_EQ(snap.types.size(), 1u);
    EXPECT_EQ(snap.types[0].type, "checkout");

    const std::string table = d.RenderTop(snap);
    EXPECT_NE(table.find("whodunitd"), std::string::npos);
    EXPECT_NE(table.find("checkout"), std::string::npos);

    const std::string json = d.QueryJson();
    EXPECT_TRUE(JsonChecker(json).Valid()) << json;
    EXPECT_NE(json.find("\"whodunit-live-v1\""), std::string::npos);

    EXPECT_TRUE(JsonChecker(d.ExportSpansJson()).Valid());

    // Drain the in-band close while the daemon (and its channel) is
    // still alive — same order the apps use.
    d.Shutdown();
    sched.Run();
  }
}

TEST(WhodunitdTest, InflightCapDropsAndShutdownAbandons) {
  sim::Scheduler sched;
  {
    LiveOptions options;
    options.max_inflight = 2;
    Whodunitd d(sched, options);
    const uint64_t a = d.BeginTxn("s", 0);
    const uint64_t b = d.BeginTxn("s", 0);
    EXPECT_NE(a, 0u);
    EXPECT_NE(b, 0u);
    EXPECT_EQ(d.BeginTxn("s", 0), 0u);  // over the cap: dropped
    // Hooks on a dropped (0) txn are no-ops, not crashes.
    d.SetTxnType(0, "x");
    d.JoinSpan(0, "s", 0, 0);
    d.EndSpan(0, "s", 0);
    d.CompleteTxn(0, 0);
    EXPECT_EQ(d.inflight(), 2u);
    d.Shutdown();  // abandons a and b
    EXPECT_EQ(d.inflight(), 0u);
    EXPECT_EQ(d.BeginTxn("s", 0), 0u);  // after shutdown: dropped
    sched.Run();
  }
}

TEST(WhodunitdTest, SpanRingKeepsNewest) {
  sim::Scheduler sched;
  {
    LiveOptions options;
    options.span_ring = 3;
    options.publish_batch = 1;
    Whodunitd d(sched, options);
    for (int i = 0; i < 5; ++i) {
      const uint64_t txn = d.BeginTxn("s", d.now());
      d.SetTxnType(txn, "t" + std::to_string(i));
      d.CompleteTxn(txn, d.now());
    }
    sched.Run();
    const auto events = d.RecentEvents();
    ASSERT_EQ(events.size(), 3u);
    EXPECT_EQ(events.front().type, S("t2"));  // oldest retained
    EXPECT_EQ(events.back().type, S("t4"));   // newest last
    EXPECT_EQ(d.aggregator().txns(), 5u);  // ring does not limit aggregation
    d.Shutdown();
    sched.Run();
  }
}

// The lifecycle counters must reconcile: every transaction that began
// is either published or abandoned once the daemon shuts down (dropped
// transactions never count as begun), and the aggregator-side ingest
// counter matches the publish count after the pump drains. See
// docs/METRICS.md "Live pipeline counters" for the exact semantics.
TEST(WhodunitdTest, LifecycleCountersReconcileAtShutdown) {
  MetricsRegistry reg;
  ScopedMetricsRegistry scope(reg);
  sim::Scheduler sched;
  {
    LiveOptions options;
    options.max_inflight = 2;
    options.publish_batch = 2;
    Whodunitd d(sched, options);
    const uint64_t a = d.BeginTxn("s", 0);
    const uint64_t b = d.BeginTxn("s", 0);
    ASSERT_NE(a, 0u);
    ASSERT_NE(b, 0u);
    EXPECT_EQ(d.BeginTxn("s", 0), 0u);  // over the cap: dropped, not begun
    d.CompleteTxn(a, 10);
    // Mid-run: begun == published + abandoned + in-flight.
    EXPECT_EQ(reg.GetCounter("live.txns_begun").Value(),
              reg.GetCounter("live.txns_published").Value() +
                  reg.GetCounter("live.txns_abandoned").Value() + d.inflight());
    d.Shutdown();  // abandons b, flushes the partial batch
    sched.Run();
    EXPECT_EQ(reg.GetCounter("live.txns_begun").Value(), 2u);
    EXPECT_EQ(reg.GetCounter("live.txns_published").Value(), 1u);
    EXPECT_EQ(reg.GetCounter("live.txns_abandoned").Value(), 1u);
    EXPECT_EQ(reg.GetCounter("live.txns_dropped").Value(), 1u);
    EXPECT_EQ(d.inflight(), 0u);
    EXPECT_EQ(reg.GetCounter("live.txns_begun").Value(),
              reg.GetCounter("live.txns_published").Value() +
                  reg.GetCounter("live.txns_abandoned").Value());
    // Aggregator-side: one ingested txn (== published), and its spans.
    EXPECT_EQ(reg.GetCounter("live.txns_ingested").Value(),
              reg.GetCounter("live.txns_published").Value());
    EXPECT_EQ(reg.GetCounter("live.spans_ingested").Value(), 1u);
    EXPECT_EQ(reg.GetCounter("live.batches_published").Value(), 1u);
  }
}

// ---- Span export -----------------------------------------------------

TEST(SpanExportTest, GoldenChromeTrace) {
  TxnEvent ev;
  ev.txn_id = 7;
  ev.type = S("checkout");
  ev.origin_stage = S("frontend");
  ev.root_ctxt = 3;
  ev.start_ns = 1000;
  ev.end_ns = 5000;
  ev.spans.push_back({S("frontend"), 1000, 4000, -1, 0});
  ev.spans.push_back({S("db"), 2000, 1500, 0, 42});

  // Byte-exact golden: the export is deterministic (fixed three-decimal
  // microsecond timestamps, tracks numbered by first appearance).
  const std::string expected =
      "{\"displayTimeUnit\":\"ms\",\"traceEvents\":[\n"
      "{\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":1,\"tid\":1,\"args\":{\"name\":\"db\"}},\n"
      "{\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":1,\"tid\":0,\"args\":{\"name\":\"frontend\"}},\n"
      "{\"name\":\"checkout\",\"cat\":\"txn\",\"ph\":\"X\",\"cname\":\"grey\",\"pid\":1,"
      "\"tid\":0,\"ts\":1.000,"
      "\"dur\":4.000,\"args\":{\"txn\":7,\"stage\":\"frontend\",\"ctxt\":3}},\n"
      "{\"name\":\"checkout\",\"cat\":\"txn\",\"ph\":\"X\",\"cname\":\"grey\",\"pid\":1,"
      "\"tid\":1,\"ts\":2.000,"
      "\"dur\":1.500,\"args\":{\"txn\":7,\"stage\":\"db\",\"ctxt\":3}},\n"
      "{\"name\":\"synopsis_42\",\"cat\":\"flow\",\"ph\":\"s\",\"pid\":1,\"tid\":0,"
      "\"ts\":2.000,\"id\":1},\n"
      "{\"name\":\"synopsis_42\",\"cat\":\"flow\",\"ph\":\"f\",\"bp\":\"e\",\"pid\":1,"
      "\"tid\":1,\"ts\":2.000,\"id\":1}\n"
      "]}\n";
  EXPECT_EQ(ExportChromeTrace({ev}), expected);
  EXPECT_TRUE(JsonChecker(expected).Valid());
}

// Spans with wait-state measurements are color-coded by dominant
// component: lock wait red ("terrible"), queue wait light green
// ("thread_state_runnable"), service dark green
// ("thread_state_running"); unmeasured spans stay grey.
TEST(SpanExportTest, ColorCodesSpansByDominantWaitState) {
  TxnEvent ev;
  ev.txn_id = 9;
  ev.type = S("checkout");
  ev.start_ns = 0;
  ev.end_ns = 10000;
  // {stage, start, dur, parent, link, queue, service, lock, ctxt}
  ev.spans.push_back({S("proxy"), 0, 10000, -1, 0, 0, 4000, 0, 0});      // service-heavy
  ev.spans.push_back({S("httpd"), 1000, 8000, 0, 1, 5000, 2000, 0, 0});  // queue-heavy
  ev.spans.push_back({S("db"), 2000, 6000, 1, 2, 100, 200, 4000, 0});    // lock-heavy
  ev.spans.push_back({S("cache"), 3000, 1000, 2, 3});                    // unmeasured

  const std::string out = ExportChromeTrace({ev});
  EXPECT_TRUE(JsonChecker(out).Valid()) << out;
  EXPECT_NE(out.find("\"cname\":\"thread_state_running\",\"pid\":1,\"tid\":0"),
            std::string::npos)
      << out;
  EXPECT_NE(out.find("\"cname\":\"thread_state_runnable\",\"pid\":1,\"tid\":1"),
            std::string::npos)
      << out;
  EXPECT_NE(out.find("\"cname\":\"terrible\",\"pid\":1,\"tid\":2"), std::string::npos)
      << out;
  EXPECT_NE(out.find("\"cname\":\"grey\",\"pid\":1,\"tid\":3"), std::string::npos) << out;
}

TEST(SpanExportTest, EmptyAndEscaping) {
  EXPECT_TRUE(JsonChecker(ExportChromeTrace({})).Valid());

  TxnEvent ev;
  ev.txn_id = 1;
  ev.type = S("quo\"te\\slash");
  ev.spans.push_back({S("sta\"ge"), 0, 10, -1, 0});
  const std::string out = ExportChromeTrace({ev});
  EXPECT_TRUE(JsonChecker(out).Valid()) << out;
}

// ---- End-to-end smokes -----------------------------------------------

TEST(LiveEndToEndTest, BookstorePublishesLiveProfile) {
  apps::BookstoreOptions options;
  options.clients = 20;
  options.duration = sim::Seconds(40);
  options.warmup = sim::Seconds(5);
  options.live = true;
  options.live_span_ring = 16;
  const auto result = apps::RunBookstore(options);

  EXPECT_NE(result.live_top_text.find("whodunitd"), std::string::npos);
  // At least one TPC-W interaction type made it into the table.
  EXPECT_NE(result.live_top_text.find("Home"), std::string::npos);
  EXPECT_TRUE(JsonChecker(result.live_query_json).Valid());
  EXPECT_NE(result.live_query_json.find("\"whodunit-live-v1\""), std::string::npos);
  EXPECT_TRUE(JsonChecker(result.live_span_json).Valid());
  // Spans flowed through all three stages and were linked into traces.
  EXPECT_NE(result.live_span_json.find("\"squid\""), std::string::npos);
  EXPECT_NE(result.live_span_json.find("\"mysql\""), std::string::npos);
  EXPECT_NE(result.live_span_json.find("synopsis_"), std::string::npos);
  // The live path must not disturb the measured run.
  EXPECT_GT(result.interactions, 0u);
}

TEST(LiveEndToEndTest, BookstoreWhyTailBlamesDbLockWait) {
  // The acceptance scenario for the attribution work: on a contended
  // bookstore, the p99-vs-p50 differential must attribute the tail
  // gap to lock waiting on the DB stage — the writes serialize on
  // row locks, so tail transactions spend their extra time in
  // mysql/lock_wait, not in more service.
  apps::BookstoreOptions options;
  options.clients = 50;
  options.duration = sim::Seconds(120);
  options.warmup = sim::Seconds(10);
  options.live = true;
  const auto result = apps::RunBookstore(options);

  ASSERT_FALSE(result.live_why_tail_text.empty());
  ASSERT_FALSE(result.live_attr_folded.empty());
  EXPECT_NE(result.live_why_tail_text.find("why-tail: p99 vs p50"),
            std::string::npos);
  // The folded whodunit-attr-v1 export carries DB lock-wait frames.
  EXPECT_NE(result.live_attr_folded.find(";mysql;lock_wait "),
            std::string::npos)
      << result.live_attr_folded;

  // Per type the delta rows are sorted largest-gap-first: for at least
  // one transaction type the dominant tail contributor must be
  // mysql/lock_wait (the row right after the STAGE/STATE header).
  bool lock_wait_dominates = false;
  std::istringstream lines(result.live_why_tail_text);
  std::string line;
  bool next_is_top_row = false;
  while (std::getline(lines, line)) {
    if (next_is_top_row) {
      next_is_top_row = false;
      if (line.find("mysql") != std::string::npos &&
          line.find("lock_wait") != std::string::npos) {
        lock_wait_dominates = true;
        break;
      }
    }
    if (line.find("STAGE") != std::string::npos &&
        line.find("STATE") != std::string::npos) {
      next_is_top_row = true;
    }
  }
  EXPECT_TRUE(lock_wait_dominates) << result.live_why_tail_text;
}

// Batching determinism (docs/OBSERVABILITY.md "Batching and
// determinism"): the publish batch preserves completion order and the
// channel is FIFO, so every end-of-run export must be byte-identical
// for any --publish-batch value. Each run executes under a fresh
// ShardEnv so context NodeIds, metrics, and SymIds restart from the
// same seeds.
TEST(LiveEndToEndTest, ExportsAreInvariantUnderPublishBatchSize) {
  auto run = [](size_t batch) {
    sim::ShardEnv env;
    sim::ShardEnv::Scope scope(env);
    apps::BookstoreOptions options;
    options.clients = 10;
    options.duration = sim::Seconds(20);
    options.warmup = sim::Seconds(2);
    options.live = true;
    options.live_span_ring = 16;
    options.live_publish_batch = batch;
    return apps::RunBookstore(options);
  };
  const auto unbatched = run(1);
  const auto batched = run(64);
  const auto coarse = run(1024);
  ASSERT_FALSE(unbatched.live_query_json.empty());
  EXPECT_EQ(unbatched.live_query_json, batched.live_query_json);
  EXPECT_EQ(unbatched.live_query_json, coarse.live_query_json);
  EXPECT_EQ(unbatched.live_top_text, batched.live_top_text);
  EXPECT_EQ(unbatched.live_top_text, coarse.live_top_text);
  EXPECT_EQ(unbatched.live_span_json, batched.live_span_json);
  EXPECT_EQ(unbatched.live_span_json, coarse.live_span_json);
  EXPECT_EQ(unbatched.live_attr_folded, batched.live_attr_folded);
  EXPECT_EQ(unbatched.live_attr_folded, coarse.live_attr_folded);
  EXPECT_EQ(unbatched.live_why_tail_text, batched.live_why_tail_text);
  EXPECT_EQ(unbatched.live_why_tail_text, coarse.live_why_tail_text);
}

// The merged sharded exports must also be invariant across worker
// thread counts and batch sizes together (the acceptance matrix).
TEST(LiveEndToEndTest, ShardedExportsInvariantAcrossThreadsAndBatch) {
  auto run = [](int threads, size_t batch) {
    apps::BookstoreOptions options;
    options.clients = 12;
    options.duration = sim::Seconds(20);
    options.warmup = sim::Seconds(2);
    options.live = true;
    options.live_span_ring = 16;
    options.live_publish_batch = batch;
    options.shards = 4;
    options.threads = threads;
    return apps::RunBookstore(options);
  };
  const auto serial = run(1, 1);
  const auto threaded = run(4, 64);
  const auto wide = run(8, 1024);
  ASSERT_FALSE(serial.live_query_json.empty());
  EXPECT_EQ(serial.live_query_json, threaded.live_query_json);
  EXPECT_EQ(serial.live_query_json, wide.live_query_json);
  EXPECT_EQ(serial.live_attr_folded, threaded.live_attr_folded);
  EXPECT_EQ(serial.live_attr_folded, wide.live_attr_folded);
  EXPECT_EQ(serial.live_top_text, threaded.live_top_text);
  EXPECT_EQ(serial.live_top_text, wide.live_top_text);
  EXPECT_EQ(serial.db_profile_text, threaded.db_profile_text);
  EXPECT_EQ(serial.db_profile_text, wide.db_profile_text);
}

TEST(LiveEndToEndTest, MinihttpdTracksConnections) {
  apps::MinihttpdOptions options;
  options.workers = 4;
  options.clients = 16;
  options.duration = sim::Seconds(5);
  options.live = true;
  const auto result = apps::RunMinihttpd(options);

  EXPECT_NE(result.live_top_text.find("whodunitd"), std::string::npos);
  // Connections are typed by response size at accept.
  const bool typed =
      result.live_top_text.find("conn_small") != std::string::npos ||
      result.live_top_text.find("conn_large") != std::string::npos;
  EXPECT_TRUE(typed) << result.live_top_text;
  EXPECT_TRUE(JsonChecker(result.live_span_json).Valid());
  EXPECT_GT(result.connections, 0u);
}

TEST(LiveEndToEndTest, SedaServerRetypesByCacheOutcome) {
  apps::SedaServerOptions options;
  options.clients = 16;
  options.duration = sim::Seconds(5);
  options.live = true;
  const auto result = apps::RunSedaServer(options);

  EXPECT_NE(result.live_top_text.find("whodunitd"), std::string::npos);
  // CacheStage re-labels each transaction with its real outcome.
  EXPECT_NE(result.live_top_text.find("cache_hit"), std::string::npos);
  EXPECT_NE(result.live_top_text.find("cache_miss"), std::string::npos);
  EXPECT_TRUE(JsonChecker(result.live_span_json).Valid());
  // One track per SEDA stage in the trace.
  EXPECT_NE(result.live_span_json.find("\"WriteStage\""), std::string::npos);
  EXPECT_NE(result.live_span_json.find("\"FileIoStage\""), std::string::npos);
  EXPECT_GT(result.requests, 0u);
}

}  // namespace
}  // namespace whodunit::obs::live
