#include "src/callpath/cct.h"

#include <gtest/gtest.h>

#include "src/callpath/function_registry.h"
#include "src/callpath/sampler.h"
#include "src/callpath/shadow_stack.h"

namespace whodunit::callpath {
namespace {

TEST(CctTest, RootOnlyInitially) {
  CallingContextTree cct;
  EXPECT_EQ(cct.size(), 1u);
  EXPECT_EQ(cct.TotalSamples(), 0u);
}

TEST(CctTest, ChildIsCreatedOnceAndReused) {
  CallingContextTree cct;
  NodeIndex a = cct.Child(cct.root(), 7);
  NodeIndex b = cct.Child(cct.root(), 7);
  EXPECT_EQ(a, b);
  EXPECT_EQ(cct.size(), 2u);
  NodeIndex c = cct.Child(cct.root(), 8);
  EXPECT_NE(a, c);
}

TEST(CctTest, PathNodeBuildsChain) {
  CallingContextTree cct;
  NodeIndex n = cct.PathNode({1, 2, 3});
  EXPECT_EQ(cct.PathTo(n), (std::vector<FunctionId>{1, 2, 3}));
  EXPECT_EQ(cct.size(), 4u);
}

TEST(CctTest, DistinctPathsDistinctNodes) {
  CallingContextTree cct;
  // Same leaf function via two different callers: context sensitivity.
  NodeIndex via_a = cct.PathNode({1, 3});
  NodeIndex via_b = cct.PathNode({2, 3});
  EXPECT_NE(via_a, via_b);
  cct.AddSample(via_a, 5);
  cct.AddSample(via_b, 2);
  EXPECT_EQ(cct.node(via_a).samples, 5u);
  EXPECT_EQ(cct.node(via_b).samples, 2u);
}

TEST(CctTest, InclusiveAggregation) {
  CallingContextTree cct;
  NodeIndex a = cct.PathNode({1});
  NodeIndex ab = cct.PathNode({1, 2});
  NodeIndex ac = cct.PathNode({1, 3});
  cct.AddCpuTime(a, 100);
  cct.AddCpuTime(ab, 50);
  cct.AddCpuTime(ac, 25);
  EXPECT_EQ(cct.InclusiveCpuTime(a), 175);
  EXPECT_EQ(cct.InclusiveCpuTime(ab), 50);
  EXPECT_EQ(cct.TotalCpuTime(), 175);
  cct.AddSample(ab, 4);
  EXPECT_EQ(cct.InclusiveSamples(a), 4u);
}

TEST(CctTest, MergeSumsMatchingNodes) {
  CallingContextTree a, b;
  a.AddSample(a.PathNode({1, 2}), 3);
  b.AddSample(b.PathNode({1, 2}), 4);
  b.AddSample(b.PathNode({9}), 1);
  a.MergeFrom(b);
  EXPECT_EQ(a.node(a.PathNode({1, 2})).samples, 7u);
  EXPECT_EQ(a.node(a.PathNode({9})).samples, 1u);
  EXPECT_EQ(a.TotalSamples(), 8u);
}

TEST(CctTest, RenderContainsNamesAndPercents) {
  FunctionRegistry reg;
  CallingContextTree cct;
  FunctionId main_fn = reg.Register("main");
  FunctionId work_fn = reg.Register("work");
  cct.AddCpuTime(cct.PathNode({main_fn, work_fn}), sim::Millis(10));
  std::string text = cct.Render(reg);
  EXPECT_NE(text.find("main"), std::string::npos);
  EXPECT_NE(text.find("work"), std::string::npos);
  EXPECT_NE(text.find("100%"), std::string::npos);
}

TEST(ShadowStackTest, TracksPathAndNode) {
  CallingContextTree cct;
  ShadowStack stack;
  stack.AttachCct(&cct);
  EXPECT_EQ(stack.current_node(), cct.root());
  stack.Push(1);
  stack.Push(2);
  EXPECT_EQ(stack.path(), (std::vector<FunctionId>{1, 2}));
  EXPECT_EQ(stack.current_node(), cct.PathNode({1, 2}));
  stack.Pop();
  EXPECT_EQ(stack.current_node(), cct.PathNode({1}));
  stack.Pop();
  EXPECT_EQ(stack.depth(), 0u);
}

TEST(ShadowStackTest, DetachedStackStillTracksPath) {
  ShadowStack stack;
  stack.Push(5);
  EXPECT_EQ(stack.depth(), 1u);
  EXPECT_EQ(stack.current_node(), kNoNode);
}

TEST(ShadowStackTest, SwitchingCctReplaysLivePath) {
  CallingContextTree cct1, cct2;
  ShadowStack stack;
  stack.AttachCct(&cct1);
  stack.Push(1);
  stack.Push(2);
  // Whodunit switches the thread to a new transaction's CCT mid-call.
  stack.AttachCct(&cct2);
  EXPECT_EQ(stack.current_node(), cct2.PathNode({1, 2}));
  stack.Pop();
  EXPECT_EQ(stack.current_node(), cct2.PathNode({1}));
}

TEST(ShadowStackTest, ScopedFrameBalances) {
  CallingContextTree cct;
  ShadowStack stack;
  stack.AttachCct(&cct);
  {
    ScopedFrame f1(stack, 1);
    {
      ScopedFrame f2(stack, 2);
      EXPECT_EQ(stack.depth(), 2u);
    }
    EXPECT_EQ(stack.depth(), 1u);
  }
  EXPECT_EQ(stack.depth(), 0u);
  EXPECT_EQ(stack.pushes(), 2u);
}

TEST(ShadowStackTest, CallCountsRecorded) {
  CallingContextTree cct;
  ShadowStack stack;
  stack.AttachCct(&cct);
  for (int i = 0; i < 3; ++i) {
    ScopedFrame f(stack, 1);
  }
  EXPECT_EQ(cct.node(cct.PathNode({1})).calls, 3u);
}

TEST(SamplerTest, SamplesAtConfiguredPeriod) {
  CallingContextTree cct;
  ShadowStack stack;
  stack.AttachCct(&cct);
  Sampler sampler(/*period=*/100);
  stack.Push(1);
  sampler.OnCpu(stack, 250);
  EXPECT_EQ(sampler.samples_taken(), 2u);
  sampler.OnCpu(stack, 50);  // residue 50 + 50 = 100 -> one more
  EXPECT_EQ(sampler.samples_taken(), 3u);
  EXPECT_EQ(cct.node(cct.PathNode({1})).samples, 3u);
  EXPECT_EQ(cct.node(cct.PathNode({1})).cpu_time, 300);
}

TEST(SamplerTest, AttributesToCurrentNode) {
  CallingContextTree cct;
  ShadowStack stack;
  stack.AttachCct(&cct);
  Sampler sampler(100);
  stack.Push(1);
  sampler.OnCpu(stack, 100);
  stack.Push(2);
  sampler.OnCpu(stack, 200);
  EXPECT_EQ(cct.node(cct.PathNode({1})).samples, 1u);
  EXPECT_EQ(cct.node(cct.PathNode({1, 2})).samples, 2u);
}

TEST(SamplerTest, DetachedChargesAreDropped) {
  ShadowStack stack;
  Sampler sampler(100);
  sampler.OnCpu(stack, 1000);
  EXPECT_EQ(sampler.samples_taken(), 0u);
}

TEST(SamplerTest, ZeroAndNegativeCostsIgnored) {
  CallingContextTree cct;
  ShadowStack stack;
  stack.AttachCct(&cct);
  Sampler sampler(100);
  sampler.OnCpu(stack, 0);
  sampler.OnCpu(stack, -5);
  EXPECT_EQ(sampler.samples_taken(), 0u);
  EXPECT_EQ(cct.TotalCpuTime(), 0);
}

}  // namespace
}  // namespace whodunit::callpath
