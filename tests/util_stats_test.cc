#include "src/util/stats.h"

#include <gtest/gtest.h>

namespace whodunit::util {
namespace {

TEST(RunningStatTest, EmptyIsZero) {
  RunningStat s;
  EXPECT_EQ(s.count(), 0u);
  EXPECT_EQ(s.mean(), 0.0);
  EXPECT_EQ(s.variance(), 0.0);
  EXPECT_EQ(s.min(), 0.0);
  EXPECT_EQ(s.max(), 0.0);
}

TEST(RunningStatTest, SingleValue) {
  RunningStat s;
  s.Add(4.0);
  EXPECT_EQ(s.count(), 1u);
  EXPECT_EQ(s.mean(), 4.0);
  EXPECT_EQ(s.variance(), 0.0);
  EXPECT_EQ(s.min(), 4.0);
  EXPECT_EQ(s.max(), 4.0);
}

TEST(RunningStatTest, MeanAndVariance) {
  RunningStat s;
  for (double x : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) {
    s.Add(x);
  }
  EXPECT_DOUBLE_EQ(s.mean(), 5.0);
  EXPECT_NEAR(s.variance(), 32.0 / 7.0, 1e-12);
  EXPECT_EQ(s.min(), 2.0);
  EXPECT_EQ(s.max(), 9.0);
  EXPECT_DOUBLE_EQ(s.sum(), 40.0);
}

TEST(RunningStatTest, MergeMatchesSequential) {
  RunningStat all, a, b;
  for (int i = 0; i < 100; ++i) {
    double x = i * 0.37 - 5;
    all.Add(x);
    (i < 40 ? a : b).Add(x);
  }
  a.Merge(b);
  EXPECT_EQ(a.count(), all.count());
  EXPECT_NEAR(a.mean(), all.mean(), 1e-9);
  EXPECT_NEAR(a.variance(), all.variance(), 1e-9);
  EXPECT_EQ(a.min(), all.min());
  EXPECT_EQ(a.max(), all.max());
}

TEST(RunningStatTest, MergeWithEmpty) {
  RunningStat a, b;
  a.Add(1.0);
  a.Add(3.0);
  RunningStat before = a;
  a.Merge(b);  // no-op
  EXPECT_EQ(a.count(), 2u);
  EXPECT_DOUBLE_EQ(a.mean(), before.mean());
  b.Merge(a);  // copy
  EXPECT_EQ(b.count(), 2u);
  EXPECT_DOUBLE_EQ(b.mean(), 2.0);
}

TEST(SampleSetTest, QuantilesExact) {
  SampleSet s;
  for (int i = 10; i >= 1; --i) {
    s.Add(i);
  }
  EXPECT_EQ(s.count(), 10u);
  EXPECT_DOUBLE_EQ(s.Quantile(0.0), 1.0);
  EXPECT_DOUBLE_EQ(s.Quantile(1.0), 10.0);
  EXPECT_DOUBLE_EQ(s.Quantile(0.5), 6.0);  // nearest rank of 4.5 -> index 5
  EXPECT_DOUBLE_EQ(s.mean(), 5.5);
}

TEST(SampleSetTest, EmptyQuantileIsZero) {
  SampleSet s;
  EXPECT_EQ(s.Quantile(0.5), 0.0);
  EXPECT_EQ(s.mean(), 0.0);
}

TEST(SampleSetTest, AddAfterQuantileResorts) {
  SampleSet s;
  s.Add(5.0);
  EXPECT_DOUBLE_EQ(s.Quantile(1.0), 5.0);
  s.Add(9.0);
  s.Add(1.0);
  EXPECT_DOUBLE_EQ(s.Quantile(0.0), 1.0);
  EXPECT_DOUBLE_EQ(s.Quantile(1.0), 9.0);
}

}  // namespace
}  // namespace whodunit::util
