#include "src/util/stats.h"

#include <gtest/gtest.h>

#include "src/util/rng.h"

namespace whodunit::util {
namespace {

TEST(RunningStatTest, EmptyIsZero) {
  RunningStat s;
  EXPECT_EQ(s.count(), 0u);
  EXPECT_EQ(s.mean(), 0.0);
  EXPECT_EQ(s.variance(), 0.0);
  EXPECT_EQ(s.min(), 0.0);
  EXPECT_EQ(s.max(), 0.0);
}

TEST(RunningStatTest, SingleValue) {
  RunningStat s;
  s.Add(4.0);
  EXPECT_EQ(s.count(), 1u);
  EXPECT_EQ(s.mean(), 4.0);
  EXPECT_EQ(s.variance(), 0.0);
  EXPECT_EQ(s.min(), 4.0);
  EXPECT_EQ(s.max(), 4.0);
}

TEST(RunningStatTest, MeanAndVariance) {
  RunningStat s;
  for (double x : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) {
    s.Add(x);
  }
  EXPECT_DOUBLE_EQ(s.mean(), 5.0);
  EXPECT_NEAR(s.variance(), 32.0 / 7.0, 1e-12);
  EXPECT_EQ(s.min(), 2.0);
  EXPECT_EQ(s.max(), 9.0);
  EXPECT_DOUBLE_EQ(s.sum(), 40.0);
}

TEST(RunningStatTest, MergeMatchesSequential) {
  RunningStat all, a, b;
  for (int i = 0; i < 100; ++i) {
    double x = i * 0.37 - 5;
    all.Add(x);
    (i < 40 ? a : b).Add(x);
  }
  a.Merge(b);
  EXPECT_EQ(a.count(), all.count());
  EXPECT_NEAR(a.mean(), all.mean(), 1e-9);
  EXPECT_NEAR(a.variance(), all.variance(), 1e-9);
  EXPECT_EQ(a.min(), all.min());
  EXPECT_EQ(a.max(), all.max());
}

TEST(RunningStatTest, MergeWithEmpty) {
  RunningStat a, b;
  a.Add(1.0);
  a.Add(3.0);
  RunningStat before = a;
  a.Merge(b);  // no-op
  EXPECT_EQ(a.count(), 2u);
  EXPECT_DOUBLE_EQ(a.mean(), before.mean());
  b.Merge(a);  // copy
  EXPECT_EQ(b.count(), 2u);
  EXPECT_DOUBLE_EQ(b.mean(), 2.0);
}

TEST(SampleSetTest, QuantilesExact) {
  SampleSet s;
  for (int i = 10; i >= 1; --i) {
    s.Add(i);
  }
  EXPECT_EQ(s.count(), 10u);
  EXPECT_DOUBLE_EQ(s.Quantile(0.0), 1.0);
  EXPECT_DOUBLE_EQ(s.Quantile(1.0), 10.0);
  EXPECT_DOUBLE_EQ(s.Quantile(0.5), 6.0);  // nearest rank of 4.5 -> index 5
  EXPECT_DOUBLE_EQ(s.mean(), 5.5);
}

TEST(SampleSetTest, EmptyQuantileIsZero) {
  SampleSet s;
  EXPECT_EQ(s.Quantile(0.5), 0.0);
  EXPECT_EQ(s.mean(), 0.0);
}

TEST(SampleSetTest, AddAfterQuantileResorts) {
  SampleSet s;
  s.Add(5.0);
  EXPECT_DOUBLE_EQ(s.Quantile(1.0), 5.0);
  s.Add(9.0);
  s.Add(1.0);
  EXPECT_DOUBLE_EQ(s.Quantile(0.0), 1.0);
  EXPECT_DOUBLE_EQ(s.Quantile(1.0), 9.0);
}

TEST(LogHistogramTest, EmptyIsZero) {
  LogHistogram h;
  EXPECT_EQ(h.count(), 0u);
  EXPECT_EQ(h.mean(), 0.0);
  EXPECT_EQ(h.Quantile(0.5), 0.0);
}

TEST(LogHistogramTest, SmallValuesAreExact) {
  LogHistogram h;
  for (uint64_t v = 0; v < 8; ++v) {
    EXPECT_EQ(LogHistogram::BucketOf(v), v);
    EXPECT_EQ(LogHistogram::BucketLowerBound(v), v);
    h.Add(v);
  }
  EXPECT_EQ(h.count(), 8u);
  EXPECT_DOUBLE_EQ(h.mean(), 3.5);
}

TEST(LogHistogramTest, BucketGeometryIsMonotone) {
  // Lower bounds strictly increase and every value maps into the
  // bucket whose range contains it.
  for (size_t i = 1; i < LogHistogram::kBuckets; ++i) {
    EXPECT_LT(LogHistogram::BucketLowerBound(i - 1),
              LogHistogram::BucketLowerBound(i))
        << "bucket " << i;
  }
  for (size_t i = 0; i + 1 < LogHistogram::kBuckets; ++i) {
    const uint64_t lo = LogHistogram::BucketLowerBound(i);
    EXPECT_EQ(LogHistogram::BucketOf(lo), i);
    EXPECT_EQ(LogHistogram::BucketOf(LogHistogram::BucketLowerBound(i + 1) - 1),
              i);
  }
}

TEST(LogHistogramTest, QuantileErrorIsBounded) {
  // Against the exact SampleSet on a heavy-tailed stream: the
  // sub-bucket geometry bounds relative error at 12.5% (plus
  // interpolation slack — allow 15%).
  LogHistogram h;
  SampleSet exact;
  Rng rng(7);
  for (int i = 0; i < 20000; ++i) {
    const uint64_t v = 100 + (rng.NextU64() % 1000) * (rng.NextU64() % 1000);
    h.Add(v);
    exact.Add(static_cast<double>(v));
  }
  for (double q : {0.5, 0.9, 0.95, 0.99, 0.999}) {
    const double want = exact.Quantile(q);
    const double got = h.Quantile(q);
    EXPECT_NEAR(got, want, want * 0.15) << "q=" << q;
  }
}

TEST(LogHistogramTest, MergeOfHalvesMatchesWhole) {
  LogHistogram whole, a, b;
  Rng rng(11);
  for (int i = 0; i < 5000; ++i) {
    const uint64_t v = rng.NextU64() % 1000000;
    whole.Add(v);
    (i % 2 == 0 ? a : b).Add(v);
  }
  a.Merge(b);
  EXPECT_EQ(a.count(), whole.count());
  EXPECT_DOUBLE_EQ(a.sum(), whole.sum());
  EXPECT_EQ(a.buckets(), whole.buckets());
  EXPECT_DOUBLE_EQ(a.Quantile(0.5), whole.Quantile(0.5));
  EXPECT_DOUBLE_EQ(a.Quantile(0.99), whole.Quantile(0.99));
  // The p99.9 the live top table reports must survive shard merging
  // the same way: merge-then-quantile equals whole-population quantile.
  EXPECT_DOUBLE_EQ(a.Quantile(0.999), whole.Quantile(0.999));
}

TEST(LogHistogramTest, TailQuantileSeparatesOutliers) {
  // 995 fast samples and five 100x outliers: p99.9 must land in the
  // outlier bucket while p50/p99 stay at the bulk — the property the
  // --why-tail cohort split depends on.
  LogHistogram h;
  for (int i = 0; i < 995; ++i) {
    h.Add(1000);
  }
  h.Add(100000, 5);
  EXPECT_LT(h.Quantile(0.99), 2000.0);
  EXPECT_GT(h.Quantile(0.999), 50000.0);
}

TEST(LogHistogramTest, WeightedAdd) {
  LogHistogram h;
  h.Add(100, 7);
  EXPECT_EQ(h.count(), 7u);
  EXPECT_DOUBLE_EQ(h.sum(), 700.0);
  // All mass in one bucket: every quantile lands inside its range.
  const size_t idx = LogHistogram::BucketOf(100);
  EXPECT_GE(h.Quantile(0.5), LogHistogram::BucketLowerBound(idx));
  EXPECT_LE(h.Quantile(0.5), LogHistogram::BucketLowerBound(idx + 1));
}

}  // namespace
}  // namespace whodunit::util
