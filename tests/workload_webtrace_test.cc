// Tests for the synthetic Rice-like web trace (paper §8, §9.2).
#include "src/workload/webtrace.h"

#include <gtest/gtest.h>

#include <map>

namespace whodunit::workload {
namespace {

TEST(WebTraceTest, ConnectionLengthsHaveConfiguredMean) {
  WebTrace trace;
  util::Rng rng(101);
  double total = 0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) {
    total += static_cast<double>(trace.DrawConnection(rng).size());
  }
  EXPECT_NEAR(total / n, kRequestsPerConnectionMean, 0.3);
}

TEST(WebTraceTest, EveryConnectionHasAtLeastOneRequest) {
  WebTrace trace;
  util::Rng rng(7);
  for (int i = 0; i < 5000; ++i) {
    EXPECT_GE(trace.DrawConnection(rng).size(), 1u);
  }
}

TEST(WebTraceTest, PopularitySkewed) {
  WebTrace trace;
  util::Rng rng(13);
  std::map<uint32_t, int> counts;
  int total = 0;
  for (int i = 0; i < 5000; ++i) {
    for (uint32_t obj : trace.DrawConnection(rng)) {
      ++counts[obj];
      ++total;
    }
  }
  // Top-100 objects (of 20,000) dominate a Zipf-0.85 stream.
  std::vector<int> sorted;
  sorted.reserve(counts.size());
  for (const auto& [obj, c] : counts) {
    sorted.push_back(c);
  }
  std::sort(sorted.rbegin(), sorted.rend());
  int top100 = 0;
  for (size_t i = 0; i < 100 && i < sorted.size(); ++i) {
    top100 += sorted[i];
  }
  EXPECT_GT(static_cast<double>(top100) / total, 0.25);
}

TEST(WebTraceTest, ObjectSizesHeavyTailed) {
  WebTrace trace;
  uint64_t max_seen = 0;
  double total = 0;
  const uint32_t n = 20000;
  for (uint32_t obj = 0; obj < n; ++obj) {
    const uint64_t bytes = trace.ObjectBytes(obj);
    EXPECT_GE(bytes, kTraceMinObjectBytes);
    EXPECT_LE(bytes, kTraceMaxObjectBytes);
    max_seen = std::max(max_seen, bytes);
    total += static_cast<double>(bytes);
  }
  const double mean = total / n;
  // Heavy tail: the max object is far above the mean.
  EXPECT_GT(static_cast<double>(max_seen), 20 * mean);
  // But the mean stays in the "typical web object" range.
  EXPECT_GT(mean, 2000);
  EXPECT_LT(mean, 50000);
}

TEST(WebTraceTest, SizesDeterministicPerObject) {
  WebTrace a, b;
  for (uint32_t obj : {0u, 1u, 99u, 19999u}) {
    EXPECT_EQ(a.ObjectBytes(obj), b.ObjectBytes(obj));
  }
}

TEST(WebTraceTest, DrawsDeterministicForSeed) {
  WebTrace trace;
  util::Rng r1(5), r2(5);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(trace.DrawConnection(r1), trace.DrawConnection(r2));
  }
}

TEST(WebTraceTest, CustomModelRespected) {
  WebTraceModel model;
  model.objects = 10;
  model.requests_per_connection_mean = 2;
  WebTrace trace(model);
  util::Rng rng(3);
  for (int i = 0; i < 1000; ++i) {
    for (uint32_t obj : trace.DrawConnection(rng)) {
      EXPECT_LT(obj, 10u);
    }
  }
}

}  // namespace
}  // namespace whodunit::workload
