// SymbolTable (src/obs/live/symbol_table.h): the interning contract,
// the single-writer / lock-free-reader concurrency claim, MergeFrom's
// remap stability, and a golden proving the name-sorted exports are
// byte-identical to what the pre-interning string-keyed pipeline
// produced.
#include <atomic>
#include <string>
#include <string_view>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "src/obs/live/aggregator.h"
#include "src/obs/live/symbol_table.h"
#include "src/obs/live/txn_event.h"
#include "src/obs/metrics.h"

namespace whodunit::obs::live {
namespace {

using obs::MetricsRegistry;
using obs::ScopedMetricsRegistry;

TEST(SymbolTableTest, EmptyStringIsIdZero) {
  SymbolTable table;
  EXPECT_EQ(table.size(), 1u);  // "" pre-interned at construction
  EXPECT_EQ(table.Intern(""), 0u);
  EXPECT_EQ(table.Name(0), "");
}

TEST(SymbolTableTest, IdsAssignedInFirstInternOrderAndStable) {
  SymbolTable table;
  const SymId squid = table.Intern("squid");
  const SymId tomcat = table.Intern("tomcat");
  const SymId mysql = table.Intern("mysql");
  EXPECT_EQ(squid, 1u);
  EXPECT_EQ(tomcat, 2u);
  EXPECT_EQ(mysql, 3u);
  // Re-interning returns the same id; ids never change.
  EXPECT_EQ(table.Intern("tomcat"), tomcat);
  EXPECT_EQ(table.Intern("squid"), squid);
  EXPECT_EQ(table.size(), 4u);
  EXPECT_EQ(table.Name(squid), "squid");
  EXPECT_EQ(table.Name(tomcat), "tomcat");
  EXPECT_EQ(table.Name(mysql), "mysql");
}

TEST(SymbolTableTest, OutOfRangeIdsResolveToEmpty) {
  SymbolTable table;
  table.Intern("only");
  EXPECT_EQ(table.Name(99), "");
  EXPECT_EQ(table.Name(static_cast<SymId>(-1)), "");
}

TEST(SymbolTableTest, InterningCrossesChunkBoundaries) {
  SymbolTable table;
  std::vector<SymId> ids;
  const size_t n = SymbolTable::kChunkSize * 2 + 17;
  ids.reserve(n);
  for (size_t i = 0; i < n; ++i) {
    ids.push_back(table.Intern("sym_" + std::to_string(i)));
  }
  for (size_t i = 0; i < n; ++i) {
    EXPECT_EQ(table.Name(ids[i]), "sym_" + std::to_string(i));
  }
}

TEST(SymbolTableTest, ScopedTableRedirectsSymsAndRestores) {
  SymbolTable& before = Syms();
  SymbolTable local;
  {
    ScopedSymbolTable scope(local);
    EXPECT_EQ(&Syms(), &local);
    SymbolTable inner;
    {
      ScopedSymbolTable nested(inner);
      EXPECT_EQ(&Syms(), &inner);
    }
    EXPECT_EQ(&Syms(), &local);
  }
  EXPECT_EQ(&Syms(), &before);
}

// The concurrency contract: one writer interning, any number of
// readers resolving lock-free. A reader that observes id < size() must
// be able to resolve Name(id) to the exact final string. Run under the
// TSan preset this also proves the release/acquire pairing is real.
TEST(SymbolTableTest, ConcurrentReadersSeeConsistentNames) {
  SymbolTable table;
  constexpr size_t kNames = 2000;  // crosses several 256-entry chunks
  std::atomic<bool> stop{false};
  std::atomic<uint64_t> resolved{0};

  std::vector<std::thread> readers;
  for (int r = 0; r < 4; ++r) {
    readers.emplace_back([&] {
      uint64_t local = 0;
      while (!stop.load(std::memory_order_acquire)) {
        const size_t size = table.size();
        for (SymId id = 1; id < size; ++id) {
          const std::string& name = table.Name(id);
          // Names encode their own id, so a torn or stale read is
          // detectable without synchronizing with the writer.
          if (name != "sym_" + std::to_string(id)) {
            ADD_FAILURE() << "id " << id << " resolved to \"" << name << "\"";
            return;
          }
          ++local;
        }
      }
      resolved.fetch_add(local, std::memory_order_relaxed);
    });
  }

  for (SymId id = 1; id <= kNames; ++id) {
    ASSERT_EQ(table.Intern("sym_" + std::to_string(id)), id);
  }
  stop.store(true, std::memory_order_release);
  for (auto& t : readers) {
    t.join();
  }
  EXPECT_EQ(table.size(), kNames + 1);
}

TEST(SymbolTableTest, MergeFromRemapsIdsToSameNames) {
  SymbolTable mine;
  mine.Intern("squid");
  mine.Intern("tomcat");

  SymbolTable other;
  other.Intern("mysql");   // new to mine
  other.Intern("tomcat");  // already interned here, different id there
  other.Intern("apache");  // new to mine

  const std::vector<SymId> remap = mine.MergeFrom(other);
  ASSERT_EQ(remap.size(), other.size());
  // Every id of `other` resolves to the same name through the remap.
  for (SymId id = 0; id < other.size(); ++id) {
    EXPECT_EQ(mine.Name(remap[id]), other.Name(id)) << "other id " << id;
  }
  // Pre-existing ids on this side are untouched.
  EXPECT_EQ(mine.Name(1), "squid");
  EXPECT_EQ(mine.Name(2), "tomcat");
  // Shared names fold onto the existing id; new names append in the
  // other table's id order (the deterministic shard-merge order).
  EXPECT_EQ(remap[other.Intern("tomcat")], 2u);
  EXPECT_EQ(mine.Name(3), "mysql");
  EXPECT_EQ(mine.Name(4), "apache");
}

TEST(SymbolTableTest, MergeFromIsIdempotent) {
  SymbolTable mine;
  SymbolTable other;
  other.Intern("a");
  other.Intern("b");
  const std::vector<SymId> first = mine.MergeFrom(other);
  const size_t size_after_first = mine.size();
  const std::vector<SymId> second = mine.MergeFrom(other);
  EXPECT_EQ(first, second);
  EXPECT_EQ(mine.size(), size_after_first);
}

// Byte-identity golden: the folded attribution export sorts by
// resolved name, so its bytes must not depend on intern order — this
// is the exact output the pre-interning string-keyed aggregator
// produced for the same events.
TEST(SymbolTableGoldenTest, AttrFoldedExportIsInternOrderInvariant) {
  const char* kGolden =
      "browse;squid;queue_wait 250\n"
      "checkout;db;lock_wait 500\n"
      "checkout;squid;service 1000\n";

  const auto fold = [](const std::vector<std::string_view>& intern_order) {
    MetricsRegistry reg;
    ScopedMetricsRegistry metrics_scope(reg);
    SymbolTable table;
    ScopedSymbolTable syms_scope(table);
    for (std::string_view name : intern_order) {
      table.Intern(name);
    }
    LiveAggregator agg;
    TxnEvent checkout;
    checkout.txn_id = 1;
    checkout.type = table.Intern("checkout");
    checkout.end_ns = 1500;
    checkout.attr.push_back({table.Intern("squid"), 0, WaitState::kService, 1000});
    checkout.attr.push_back({table.Intern("db"), 0, WaitState::kLockWait, 500});
    agg.Ingest(checkout);
    TxnEvent browse;
    browse.txn_id = 2;
    browse.type = table.Intern("browse");
    browse.end_ns = 250;
    browse.attr.push_back({table.Intern("squid"), 0, WaitState::kQueueWait, 250});
    agg.Ingest(browse);
    return agg.ExportAttrFolded();
  };

  EXPECT_EQ(fold({"checkout", "browse", "squid", "db"}), kGolden);
  EXPECT_EQ(fold({"db", "squid", "browse", "checkout"}), kGolden);
  EXPECT_EQ(fold({}), kGolden);  // first-use intern order
}

}  // namespace
}  // namespace whodunit::obs::live
