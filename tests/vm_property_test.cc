// Property-based tests for MiniVM.
//
// The load-bearing invariant: EMULATION IS TRANSPARENT. Running any
// program under kEmulate (hooks, translation, cycle model) must leave
// exactly the same architectural state — registers, flags, memory — as
// running it under kDirect. Whodunit relies on this: it freely switches
// critical sections between emulated and native execution (§7.2), so a
// semantic difference would corrupt the application being profiled.
#include <gtest/gtest.h>

#include "src/shm/flow_detector.h"
#include "src/util/rng.h"
#include "src/vm/interpreter.h"
#include "src/vm/program_builder.h"

namespace whodunit::vm {
namespace {

// Generates a random straight-line-with-forward-branches program that
// always terminates: jumps only target labels bound later.
Program RandomProgram(util::Rng& rng, int length, uint64_t lock_id) {
  ProgramBuilder b("fuzz");
  b.Lock(lock_id);
  // A register holding a valid base address so memory operands stay in
  // a small arena.
  b.MovRI(0, 0x1000);
  std::vector<int> pending_labels;
  for (int i = 0; i < length; ++i) {
    // Bind a previously created forward label with probability ~1/2.
    if (!pending_labels.empty() && rng.NextBernoulli(0.5)) {
      b.Bind(pending_labels.back());
      pending_labels.pop_back();
    }
    const auto r1 = static_cast<uint8_t>(1 + rng.NextBelow(7));
    const auto r2 = static_cast<uint8_t>(1 + rng.NextBelow(7));
    const auto disp = static_cast<int64_t>(rng.NextBelow(16) * 8);
    const auto imm = static_cast<int64_t>(rng.NextBelow(1000));
    switch (rng.NextBelow(14)) {
      case 0: b.MovRR(r1, r2); break;
      case 1: b.MovRI(r1, imm); break;
      case 2: b.MovRM(r1, 0, disp); break;
      case 3: b.MovMR(0, disp, r1); break;
      case 4: b.MovMI(0, disp, imm); break;
      case 5: b.MovMM(0, disp, 0, static_cast<int64_t>(rng.NextBelow(16) * 8)); break;
      case 6: b.AddRR(r1, r2); break;
      case 7: b.AddRI(r1, imm); break;
      case 8: b.SubRI(r1, imm); break;
      case 9: b.MulRI(r1, 1 + static_cast<int64_t>(rng.NextBelow(4))); break;
      case 10: b.IncM(0, disp); break;
      case 11: b.CmpRI(r1, imm); break;
      case 12: b.CmpRR(r1, r2); break;
      case 13: {
        // Forward conditional branch to a label bound later.
        const int label = b.DefineLabel();
        pending_labels.push_back(label);
        switch (rng.NextBelow(4)) {
          case 0: b.Je(label); break;
          case 1: b.Jne(label); break;
          case 2: b.Jl(label); break;
          default: b.Jge(label); break;
        }
        break;
      }
    }
  }
  b.Unlock(lock_id);
  // Post-critical-section tail so the consume window sees activity.
  b.CmpRI(1, 0);
  for (int unbound = static_cast<int>(pending_labels.size()); unbound-- > 0;) {
    b.Bind(pending_labels[static_cast<size_t>(unbound)]);
  }
  b.Halt();
  return b.Build();
}

class VmFuzzTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(VmFuzzTest, EmulationIsArchitecturallyTransparent) {
  util::Rng rng(GetParam());
  for (int trial = 0; trial < 20; ++trial) {
    Program p = RandomProgram(rng, 40, /*lock_id=*/9);

    CpuState direct_cpu, emu_cpu;
    for (int r = 1; r < kNumRegs; ++r) {
      direct_cpu.regs[static_cast<size_t>(r)] = emu_cpu.regs[static_cast<size_t>(r)] =
          rng.NextU64() % 1000;
    }
    Memory direct_mem, emu_mem;
    for (int w = 0; w < 16; ++w) {
      const uint64_t v = rng.NextU64() % 500;
      direct_mem.Write(0x1000 + static_cast<Addr>(w) * 8, v);
      emu_mem.Write(0x1000 + static_cast<Addr>(w) * 8, v);
    }

    Interpreter di, ei;
    shm::FlowDetector detector([](ThreadId) { return 7u; });
    ExecResult dr = di.Execute(p, 0, direct_cpu, direct_mem, nullptr,
                               Interpreter::Mode::kDirect);
    ExecResult er = ei.Execute(p, 0, emu_cpu, emu_mem, &detector,
                               Interpreter::Mode::kEmulate);

    ASSERT_EQ(dr.instructions, er.instructions) << "trial " << trial;
    EXPECT_EQ(direct_cpu.regs, emu_cpu.regs) << "trial " << trial;
    EXPECT_EQ(direct_cpu.cmp, emu_cpu.cmp) << "trial " << trial;
    EXPECT_EQ(direct_mem.Snapshot(), emu_mem.Snapshot()) << "trial " << trial;
    // Cost regimes hold for arbitrary programs too.
    EXPECT_EQ(dr.guest_cycles, dr.direct_cycles);
    EXPECT_GT(er.guest_cycles, dr.guest_cycles);
  }
}

TEST_P(VmFuzzTest, ReexecutionIsDeterministic) {
  util::Rng rng(GetParam() ^ 0xD5);
  Program p = RandomProgram(rng, 30, 9);
  CpuState a, b;
  Memory ma, mb;
  Interpreter ia, ib;
  ExecResult ra = ia.Execute(p, 0, a, ma);
  ExecResult rb = ib.Execute(p, 0, b, mb);
  EXPECT_EQ(ra.instructions, rb.instructions);
  EXPECT_EQ(ra.guest_cycles, rb.guest_cycles);
  EXPECT_EQ(a.regs, b.regs);
  EXPECT_EQ(ma.Snapshot(), mb.Snapshot());
}

TEST_P(VmFuzzTest, FlowDetectorNeverCrashesOnRandomPrograms) {
  // The detector must tolerate arbitrary instruction streams (it sees
  // whatever the application's critical sections contain).
  util::Rng rng(GetParam() ^ 0xF10);
  shm::FlowDetector detector([](ThreadId t) { return t; });
  Interpreter interp;
  Memory mem;
  for (int trial = 0; trial < 10; ++trial) {
    Program p = RandomProgram(rng, 60, 1 + trial % 3);
    CpuState cpu;
    cpu.regs[0] = 0x1000;
    interp.Execute(p, static_cast<ThreadId>(trial % 4), cpu, mem, &detector);
  }
  // Sanity: the dictionary stays bounded by the touched locations.
  EXPECT_LT(detector.dictionary_size(), 1000u);
}

INSTANTIATE_TEST_SUITE_P(Seeds, VmFuzzTest,
                         ::testing::Values(1, 2, 3, 5, 8, 13, 21, 34, 55, 89));

}  // namespace
}  // namespace whodunit::vm
