// Tests for the self-observability layer (src/obs): instrument
// correctness under concurrent writers, snapshot merging across
// thread shards, and the JSON export round trip.
#include <cstdint>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "src/obs/export.h"
#include "src/obs/metrics.h"
#include "src/obs/trace.h"

namespace whodunit::obs {
namespace {

TEST(CounterTest, SingleThreadedAdds) {
  MetricsRegistry reg;
  Counter& c = reg.GetCounter("test.counter");
  EXPECT_EQ(c.Value(), 0u);
  c.Add();
  c.Add(41);
  EXPECT_EQ(c.Value(), 42u);
  c.Reset();
  EXPECT_EQ(c.Value(), 0u);
}

TEST(CounterTest, SameNameSameInstrument) {
  MetricsRegistry reg;
  Counter& a = reg.GetCounter("test.counter");
  Counter& b = reg.GetCounter("test.counter");
  EXPECT_EQ(&a, &b);
}

TEST(CounterTest, ConcurrentIncrementsAreLossless) {
  MetricsRegistry reg;
  Counter& c = reg.GetCounter("test.concurrent");
  constexpr int kThreads = 8;
  constexpr uint64_t kPerThread = 100'000;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&c] {
      for (uint64_t i = 0; i < kPerThread; ++i) {
        c.Add();
      }
    });
  }
  for (auto& th : threads) {
    th.join();
  }
  EXPECT_EQ(c.Value(), kThreads * kPerThread);
}

TEST(GaugeTest, SetAndAdd) {
  MetricsRegistry reg;
  Gauge& g = reg.GetGauge("test.gauge");
  g.Set(10);
  g.Add(-3);
  EXPECT_EQ(g.Value(), 7);
}

TEST(HistogramTest, BucketAssignment) {
  MetricsRegistry reg;
  Histogram& h = reg.GetHistogram("test.hist", {10, 100, 1000});
  h.Observe(5);     // <= 10
  h.Observe(10);    // <= 10 (bounds are inclusive)
  h.Observe(11);    // <= 100
  h.Observe(1000);  // <= 1000
  h.Observe(5000);  // overflow
  EXPECT_EQ(h.Count(), 5u);
  EXPECT_EQ(h.Sum(), 5u + 10 + 11 + 1000 + 5000);
  const std::vector<uint64_t> counts = h.BucketCounts();
  ASSERT_EQ(counts.size(), 4u);
  EXPECT_EQ(counts[0], 2u);
  EXPECT_EQ(counts[1], 1u);
  EXPECT_EQ(counts[2], 1u);
  EXPECT_EQ(counts[3], 1u);
}

TEST(HistogramTest, ConcurrentObservationsAreLossless) {
  MetricsRegistry reg;
  Histogram& h = reg.GetHistogram("test.hist", {1, 2, 4, 8});
  constexpr int kThreads = 8;
  constexpr uint64_t kPerThread = 50'000;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&h, t] {
      for (uint64_t i = 0; i < kPerThread; ++i) {
        h.Observe(static_cast<uint64_t>(t) % 10);
      }
    });
  }
  for (auto& th : threads) {
    th.join();
  }
  EXPECT_EQ(h.Count(), kThreads * kPerThread);
  uint64_t bucket_total = 0;
  for (uint64_t c : h.BucketCounts()) {
    bucket_total += c;
  }
  EXPECT_EQ(bucket_total, kThreads * kPerThread);
}

TEST(SnapshotTest, MergesAllInstrumentKinds) {
  MetricsRegistry reg;
  reg.GetCounter("c.one").Add(7);
  reg.GetGauge("g.one").Set(-5);
  reg.GetHistogram("h.one", {100}).Observe(42);

  MetricsSnapshot snap = reg.Snapshot();
  EXPECT_EQ(snap.counters.at("c.one"), 7u);
  EXPECT_EQ(snap.gauges.at("g.one"), -5);
  EXPECT_EQ(snap.histograms.at("h.one").count, 1u);
  EXPECT_EQ(snap.histograms.at("h.one").sum, 42u);

  reg.Reset();
  snap = reg.Snapshot();
  EXPECT_EQ(snap.counters.at("c.one"), 0u);
  EXPECT_EQ(snap.gauges.at("g.one"), 0);
  EXPECT_EQ(snap.histograms.at("h.one").count, 0u);
}

// A snapshot taken while writers run must see a consistent-enough
// view: every value it reports was true at some point (no torn or
// garbage values for a monotonic counter means: <= final total).
TEST(SnapshotTest, ConcurrentWithWriters) {
  MetricsRegistry reg;
  Counter& c = reg.GetCounter("c.racing");
  std::thread writer([&c] {
    for (int i = 0; i < 100'000; ++i) {
      c.Add();
    }
  });
  uint64_t last = 0;
  for (int i = 0; i < 100; ++i) {
    const uint64_t v = reg.Snapshot().counters.at("c.racing");
    EXPECT_GE(v, last);  // monotone
    last = v;
  }
  writer.join();
  EXPECT_LE(last, c.Value());
  EXPECT_EQ(c.Value(), 100'000u);
}

TEST(TraceTest, RecordsAndDropsAtCapacity) {
  TraceLog log(4);
  for (int i = 0; i < 6; ++i) {
    log.Record(SpanRecord{"span", "detail", 0, i, 1});
  }
  EXPECT_EQ(log.recorded(), 6u);
  EXPECT_EQ(log.dropped(), 2u);
  const std::vector<SpanRecord> spans = log.Snapshot();
  ASSERT_EQ(spans.size(), 4u);
  // Oldest survivors first: spans 2..5.
  EXPECT_EQ(spans.front().start_ns, 2);
  EXPECT_EQ(spans.back().start_ns, 5);
}

TEST(ExportTest, JsonRoundTrip) {
  MetricsRegistry reg;
  reg.GetCounter("shm.flows_detected").Add(12);
  reg.GetCounter("sampler.samples_taken").Add(34);
  reg.GetGauge("shm.dict_size").Set(-1);
  Histogram& h = reg.GetHistogram("events.handler_ns", {10, 100});
  h.Observe(5);
  h.Observe(50);
  h.Observe(500);

  std::vector<SpanRecord> spans = {
      {"events.handler", "read \"quoted\"\nname", 0xdeadbeefull, 100, 42},
      {"seda.element", "WriteStage", 7, 200, 0},
  };

  const std::string json = ToJson(reg.Snapshot(), spans);

  MetricsSnapshot parsed;
  std::vector<SpanRecord> parsed_spans;
  ASSERT_TRUE(ParseJson(json, &parsed, &parsed_spans));

  EXPECT_EQ(parsed.counters.at("shm.flows_detected"), 12u);
  EXPECT_EQ(parsed.counters.at("sampler.samples_taken"), 34u);
  EXPECT_EQ(parsed.gauges.at("shm.dict_size"), -1);
  const HistogramSnapshot& ph = parsed.histograms.at("events.handler_ns");
  EXPECT_EQ(ph.bounds, (std::vector<uint64_t>{10, 100}));
  EXPECT_EQ(ph.counts, (std::vector<uint64_t>{1, 1, 1}));
  EXPECT_EQ(ph.count, 3u);
  EXPECT_EQ(ph.sum, 555u);

  ASSERT_EQ(parsed_spans.size(), 2u);
  EXPECT_EQ(parsed_spans[0].name, "events.handler");
  EXPECT_EQ(parsed_spans[0].detail, "read \"quoted\"\nname");
  EXPECT_EQ(parsed_spans[0].ctxt_hash, 0xdeadbeefull);
  EXPECT_EQ(parsed_spans[0].start_ns, 100);
  EXPECT_EQ(parsed_spans[0].duration_ns, 42);
  EXPECT_EQ(parsed_spans[1].detail, "WriteStage");

  // Re-serializing the parsed snapshot reproduces the same JSON.
  EXPECT_EQ(ToJson(parsed, parsed_spans), json);
}

TEST(ExportTest, EmptySnapshotRoundTrip) {
  MetricsSnapshot empty;
  const std::string json = ToJson(empty);
  MetricsSnapshot parsed;
  EXPECT_TRUE(ParseJson(json, &parsed));
  EXPECT_TRUE(parsed.counters.empty());
  EXPECT_TRUE(parsed.gauges.empty());
  EXPECT_TRUE(parsed.histograms.empty());
}

TEST(ExportTest, RejectsMalformedInput) {
  MetricsSnapshot out;
  EXPECT_FALSE(ParseJson("", &out));
  EXPECT_FALSE(ParseJson("{}", &out));  // missing version
  EXPECT_FALSE(ParseJson("{\"schema\": \"other\", \"version\": 1}", &out));
  EXPECT_FALSE(ParseJson("{\"schema\": \"whodunit-metrics\", \"version\": 2}", &out));
  EXPECT_FALSE(
      ParseJson("{\"schema\": \"whodunit-metrics\", \"version\": 1, \"counters\": {\"x\": }}",
                &out));
}

TEST(ExportTest, RenderTextMentionsEveryInstrument) {
  MetricsRegistry reg;
  reg.GetCounter("a.counter").Add(1);
  reg.GetGauge("a.gauge").Set(2);
  reg.GetHistogram("a.hist", {10}).Observe(3);
  const std::string text = RenderText(reg.Snapshot());
  EXPECT_NE(text.find("a.counter"), std::string::npos);
  EXPECT_NE(text.find("a.gauge"), std::string::npos);
  EXPECT_NE(text.find("a.hist"), std::string::npos);
}

// The built-in instrumentation registers its metrics in the global
// registry the moment the instrumented classes are constructed.
TEST(GlobalRegistryTest, IsSingleton) {
  EXPECT_EQ(&Registry(), &Registry());
  EXPECT_EQ(&Tracer(), &Tracer());
}

}  // namespace
}  // namespace whodunit::obs
