#include "src/seda/stage.h"

#include <gtest/gtest.h>

#include <map>
#include <vector>

namespace whodunit::seda {
namespace {

using context::Element;
using context::ElementKind;
using context::TransactionContext;

Element S(StageId id) { return Element{ElementKind::kStage, id}; }

TEST(SedaTest, PipelinePropagatesContexts) {
  sim::Scheduler sched;
  StageGraph graph(sched);
  std::vector<std::pair<StageId, TransactionContext>> seen;
  graph.set_context_listener([&](StageId s, int, context::NodeId node, bool) {
    seen.emplace_back(s, context::GlobalContextTree().Materialize(node));
  });

  StageId write = 0;
  StageId read = graph.AddStage("read", 1, [&](StageGraph::WorkerContext& wc) -> sim::Task<void> {
    wc.EnqueueTo(write, wc.payload);
    co_return;
  });
  write = graph.AddStage("write", 1, [](StageGraph::WorkerContext&) -> sim::Task<void> {
    co_return;
  });

  graph.Start();
  graph.InjectExternal(read, 5);
  sched.ScheduleAt(sim::Seconds(1), [&] { graph.Stop(); });
  sched.Run();

  ASSERT_EQ(seen.size(), 2u);
  EXPECT_EQ(seen[0].second, TransactionContext({S(read)}));
  EXPECT_EQ(seen[1].second, TransactionContext({S(read), S(write)}));
  EXPECT_EQ(graph.stage(read).processed(), 1u);
  EXPECT_EQ(graph.stage(write).processed(), 1u);
}

TEST(SedaTest, BranchingCreatesDistinctContexts) {
  // CacheStage routes to WriteStage directly (hit) or via MissStage:
  // WriteStage executes under two different transaction contexts.
  sim::Scheduler sched;
  StageGraph graph(sched);
  std::vector<TransactionContext> write_ctxts;

  StageId write = 0, miss = 0;
  StageId cache =
      graph.AddStage("cache", 1, [&](StageGraph::WorkerContext& wc) -> sim::Task<void> {
        wc.EnqueueTo(wc.payload == 0 ? write : miss, wc.payload);
        co_return;
      });
  miss = graph.AddStage("miss", 1, [&](StageGraph::WorkerContext& wc) -> sim::Task<void> {
    wc.EnqueueTo(write, wc.payload);
    co_return;
  });
  write = graph.AddStage("write", 1, [&](StageGraph::WorkerContext& wc) -> sim::Task<void> {
    write_ctxts.push_back(wc.current_context());
    co_return;
  });

  graph.Start();
  graph.InjectExternal(cache, 0);  // hit
  graph.InjectExternal(cache, 1);  // miss
  sched.ScheduleAt(sim::Seconds(1), [&] { graph.Stop(); });
  sched.Run();

  ASSERT_EQ(write_ctxts.size(), 2u);
  EXPECT_EQ(write_ctxts[0], TransactionContext({S(cache), S(write)}));
  EXPECT_EQ(write_ctxts[1], TransactionContext({S(cache), S(miss), S(write)}));
}

TEST(SedaTest, MultipleWorkersShareTheQueue) {
  sim::Scheduler sched;
  StageGraph graph(sched);
  std::map<int, int> per_worker;
  StageId st = graph.AddStage("work", 4, [&](StageGraph::WorkerContext& wc) -> sim::Task<void> {
    ++per_worker[wc.worker];
    co_await sim::Delay{wc.graph.scheduler(), sim::Millis(1)};
  });
  graph.Start();
  for (int i = 0; i < 8; ++i) {
    graph.InjectExternal(st, static_cast<uint64_t>(i));
  }
  sched.ScheduleAt(sim::Seconds(1), [&] { graph.Stop(); });
  sched.Run();
  EXPECT_EQ(graph.stage(st).processed(), 8u);
  // With 4 workers and 1 ms jobs arriving together, work spreads out.
  EXPECT_EQ(per_worker.size(), 4u);
}

TEST(SedaTest, StageLoopPruning) {
  // Ping-pong between two stages (RPC-like): context stays bounded.
  sim::Scheduler sched;
  StageGraph graph(sched);
  std::vector<TransactionContext> a_ctxts;
  int rounds = 0;

  StageId b = 0;
  StageId a = graph.AddStage("a", 1, [&](StageGraph::WorkerContext& wc) -> sim::Task<void> {
    a_ctxts.push_back(wc.current_context());
    if (++rounds < 4) {
      wc.EnqueueTo(b, wc.payload);
    }
    co_return;
  });
  b = graph.AddStage("b", 1, [&](StageGraph::WorkerContext& wc) -> sim::Task<void> {
    wc.EnqueueTo(a, wc.payload);
    co_return;
  });

  graph.Start();
  graph.InjectExternal(a, 0);
  sched.ScheduleAt(sim::Seconds(1), [&] { graph.Stop(); });
  sched.Run();

  ASSERT_EQ(a_ctxts.size(), 4u);
  for (const auto& c : a_ctxts) {
    EXPECT_LE(c.size(), 2u);
    EXPECT_EQ(c.elements().back(), S(a));
  }
}

TEST(SedaTest, TrackingOffLeavesContextsEmpty) {
  sim::Scheduler sched;
  StageGraph graph(sched);
  graph.set_tracking(false);
  bool saw_empty = false;
  StageId st = graph.AddStage("s", 1, [&](StageGraph::WorkerContext& wc) -> sim::Task<void> {
    saw_empty = wc.current_context().empty();
    co_return;
  });
  graph.Start();
  graph.InjectExternal(st, 0);
  sched.ScheduleAt(sim::Seconds(1), [&] { graph.Stop(); });
  sched.Run();
  EXPECT_TRUE(saw_empty);
}

}  // namespace
}  // namespace whodunit::seda
