// Tests for the conventional (gprof-style) report, and the key
// contrast with the transactional profile: context loss.
#include "src/callpath/gprof_report.h"

#include <gtest/gtest.h>

namespace whodunit::callpath {
namespace {

TEST(GprofReportTest, AggregatesSelfAndChildren) {
  FunctionRegistry reg;
  CallingContextTree cct;
  auto main_fn = reg.Register("main");
  auto work_fn = reg.Register("work");
  NodeIndex m = cct.PathNode({main_fn});
  NodeIndex w = cct.PathNode({main_fn, work_fn});
  cct.AddCpuTime(m, 100);
  cct.AddCpuTime(w, 900);
  cct.AddCall(w);
  cct.AddCall(w);

  auto entries = BuildGprofEntries(cct);
  ASSERT_EQ(entries.size(), 2u);
  // Sorted by self time: work first.
  EXPECT_EQ(entries[0].function, work_fn);
  EXPECT_EQ(entries[0].self, 900);
  EXPECT_EQ(entries[0].children, 0);
  EXPECT_EQ(entries[0].calls, 2u);
  EXPECT_EQ(entries[1].function, main_fn);
  EXPECT_EQ(entries[1].self, 100);
  EXPECT_EQ(entries[1].children, 900);
}

TEST(GprofReportTest, ArcsLinkCallersAndCallees) {
  FunctionRegistry reg;
  CallingContextTree cct;
  auto a = reg.Register("a");
  auto b = reg.Register("b");
  auto sort_fn = reg.Register("sort");
  cct.AddCpuTime(cct.PathNode({a, sort_fn}), 300);
  cct.AddCpuTime(cct.PathNode({b, sort_fn}), 100);

  auto entries = BuildGprofEntries(cct);
  const GprofEntry* sort_entry = nullptr;
  for (const auto& e : entries) {
    if (e.function == sort_fn) {
      sort_entry = &e;
    }
  }
  ASSERT_NE(sort_entry, nullptr);
  ASSERT_EQ(sort_entry->callers.size(), 2u);
  EXPECT_EQ(sort_entry->callers[0].caller, a);  // heavier arc first
  EXPECT_EQ(sort_entry->callers[0].callee_inclusive, 300);
  EXPECT_EQ(sort_entry->callers[1].caller, b);
}

TEST(GprofReportTest, ContextSensitivityIsLost) {
  // The paper's point: gprof merges all contexts. The same `sort`
  // reached from two transaction types becomes ONE entry with one
  // total — the per-transaction split only exists in the CCT-per-
  // context transactional profile.
  FunctionRegistry reg;
  CallingContextTree merged;
  auto svc = reg.Register("svc");
  auto sort_fn = reg.Register("sort");
  // Two "transactions" worth of data merged into one tree, as gprof
  // sees the world.
  merged.AddCpuTime(merged.PathNode({svc, sort_fn}), 300);
  merged.AddCpuTime(merged.PathNode({svc, sort_fn}), 100);

  auto entries = BuildGprofEntries(merged);
  int sort_entries = 0;
  for (const auto& e : entries) {
    if (e.function == sort_fn) {
      ++sort_entries;
      EXPECT_EQ(e.self, 400);  // one undifferentiated total
    }
  }
  EXPECT_EQ(sort_entries, 1);
}

TEST(GprofReportTest, RenderedReportHasBothSections) {
  FunctionRegistry reg;
  CallingContextTree cct;
  auto main_fn = reg.Register("main");
  auto sort_fn = reg.Register("db_sort");
  NodeIndex n = cct.PathNode({main_fn, sort_fn});
  cct.AddCpuTime(n, sim::Millis(42));
  cct.AddCall(n);

  std::string text = RenderGprofReport(cct, reg);
  EXPECT_NE(text.find("Flat profile:"), std::string::npos);
  EXPECT_NE(text.find("Call graph:"), std::string::npos);
  EXPECT_NE(text.find("db_sort"), std::string::npos);
  EXPECT_NE(text.find("<- main"), std::string::npos);
  EXPECT_NE(text.find("-> db_sort"), std::string::npos);
}

TEST(GprofReportTest, EmptyTreeRendersCleanly) {
  FunctionRegistry reg;
  CallingContextTree cct;
  std::string text = RenderGprofReport(cct, reg);
  EXPECT_NE(text.find("Flat profile:"), std::string::npos);
}

}  // namespace
}  // namespace whodunit::callpath
