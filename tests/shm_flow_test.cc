// Tests for the paper's §3 algorithm: transaction flow through shared
// memory, false-positive avoidance, and the §3.3.2 edge cases.
#include "src/shm/flow_detector.h"

#include <gtest/gtest.h>

#include <map>

#include "src/shm/guest_code.h"
#include "src/vm/program_builder.h"

namespace whodunit::shm {
namespace {

using vm::CpuState;
using vm::Interpreter;
using vm::Memory;
using vm::Program;
using vm::ProgramBuilder;
using vm::ThreadId;

constexpr uint64_t kLock = 42;
constexpr uint64_t kQueueBase = 0x1000;
constexpr uint64_t kOutSd = 0x2000;
constexpr uint64_t kOutP = 0x2008;

// A test harness with per-thread contexts and per-thread register
// files over one shared memory.
class Harness {
 public:
  Harness() : detector_(MakeProvider()) {}
  explicit Harness(FlowDetector::Config config) : detector_(config, MakeProvider()) {}

  void SetCtxt(ThreadId t, CtxtId c) { ctxts_[t] = c; }

  vm::ExecResult Run(const Program& p, ThreadId t,
                     const std::map<int, uint64_t>& regs = {}) {
    CpuState& cpu = cpus_[t];
    for (const auto& [r, v] : regs) {
      cpu.regs[static_cast<size_t>(r)] = v;
    }
    return interp_.Execute(p, t, cpu, mem_, &detector_);
  }

  FlowDetector& detector() { return detector_; }
  Memory& mem() { return mem_; }
  CpuState& cpu(ThreadId t) { return cpus_[t]; }

 private:
  FlowDetector::CtxtProvider MakeProvider() {
    return [this](ThreadId t) {
      auto it = ctxts_.find(t);
      return it == ctxts_.end() ? CtxtId{0} : it->second;
    };
  }

  std::map<ThreadId, CtxtId> ctxts_;
  std::map<ThreadId, CpuState> cpus_;
  Memory mem_;
  Interpreter interp_;
  FlowDetector detector_;
};

TEST(FlowDetectorTest, ApacheQueueFlowDetected) {
  Harness h;
  h.SetCtxt(1, 100);  // listener thread, context 100
  h.SetCtxt(2, 200);  // worker thread

  h.Run(ApQueuePush(kLock), 1, {{0, kQueueBase}, {1, 0xAAAA}, {2, 0xBBBB}});
  EXPECT_EQ(h.detector().flows_detected(), 0u);
  h.Run(ApQueuePop(kLock), 2, {{0, kQueueBase}, {5, kOutSd}, {6, kOutP}});

  ASSERT_EQ(h.detector().flows_detected(), 1u);
  const FlowEvent& ev = h.detector().flow_log()[0];
  EXPECT_EQ(ev.producer, 1u);
  EXPECT_EQ(ev.consumer, 2u);
  EXPECT_EQ(ev.ctxt, 100u);  // the listener's context at produce time
  EXPECT_EQ(ev.lock_id, kLock);

  // The values actually moved through the queue.
  EXPECT_EQ(h.cpu(2).regs[7], 0xAAAAu);
  EXPECT_EQ(h.cpu(2).regs[8], 0xBBBBu);

  // Roles: listener produces, worker consumes; no demotion.
  EXPECT_TRUE(h.detector().producers_of(kLock).contains(1));
  EXPECT_TRUE(h.detector().consumers_of(kLock).contains(2));
  EXPECT_FALSE(h.detector().IsDemoted(kLock));
  EXPECT_TRUE(h.detector().ShouldEmulate(kLock));
}

TEST(FlowDetectorTest, MultiplePushesPreserveDistinctContexts) {
  Harness h;
  h.SetCtxt(1, 100);
  h.Run(ApQueuePush(kLock), 1, {{0, kQueueBase}, {1, 11}, {2, 12}});
  h.SetCtxt(1, 101);  // listener's context changes (new connection)
  h.Run(ApQueuePush(kLock), 1, {{0, kQueueBase}, {1, 21}, {2, 22}});

  h.SetCtxt(2, 200);
  h.SetCtxt(3, 300);
  // LIFO array queue: pop gets the most recent element first.
  h.Run(ApQueuePop(kLock), 2, {{0, kQueueBase}, {5, kOutSd}, {6, kOutP}});
  h.Run(ApQueuePop(kLock), 3, {{0, kQueueBase}, {5, 0x3000}, {6, 0x3008}});

  ASSERT_EQ(h.detector().flows_detected(), 2u);
  EXPECT_EQ(h.detector().flow_log()[0].ctxt, 101u);
  EXPECT_EQ(h.detector().flow_log()[0].consumer, 2u);
  EXPECT_EQ(h.detector().flow_log()[1].ctxt, 100u);
  EXPECT_EQ(h.detector().flow_log()[1].consumer, 3u);
}

TEST(FlowDetectorTest, OnePopYieldsOneLogicalFlow) {
  // sd and p are two words of the same element; consuming both is one
  // flow, not two.
  Harness h;
  h.SetCtxt(1, 100);
  h.Run(ApQueuePush(kLock), 1, {{0, kQueueBase}, {1, 5}, {2, 6}});
  h.Run(ApQueuePop(kLock), 2, {{0, kQueueBase}, {5, kOutSd}, {6, kOutP}});
  EXPECT_EQ(h.detector().flows_detected(), 1u);
}

TEST(FlowDetectorTest, SharedCounterIsNotFlow) {
  // Figure 2: two threads incrementing a shared counter.
  Harness h;
  h.SetCtxt(1, 100);
  h.SetCtxt(2, 200);
  Program inc = CounterIncrement(kLock);
  for (int i = 0; i < 10; ++i) {
    h.Run(inc, 1, {{0, 0x5000}});
    h.Run(inc, 2, {{0, 0x5000}});
  }
  EXPECT_EQ(h.detector().flows_detected(), 0u);
  EXPECT_EQ(h.mem().Read(0x5000), 20u);
  EXPECT_TRUE(h.detector().producers_of(kLock).empty());
  EXPECT_TRUE(h.detector().consumers_of(kLock).empty());
}

TEST(FlowDetectorTest, AllocatorPatternDemoted) {
  // Figure 3: every thread both frees (produces) and allocates
  // (consumes) -> role lists intersect -> demote.
  Harness h;
  h.SetCtxt(1, 100);
  constexpr uint64_t kHead = 0x6000;
  constexpr uint64_t kBlockA = 0x6100;

  bool demoted = false;
  h.detector().set_demote_callback([&](uint64_t lock) {
    demoted = true;
    EXPECT_EQ(lock, kLock);
  });

  h.Run(MemFree(kLock), 1, {{0, kHead}, {1, kBlockA}});
  EXPECT_TRUE(h.detector().producers_of(kLock).contains(1));
  h.Run(MemAlloc(kLock), 1, {{0, kHead}});
  EXPECT_EQ(h.cpu(1).regs[1], kBlockA);

  EXPECT_TRUE(demoted);
  EXPECT_TRUE(h.detector().IsDemoted(kLock));
  EXPECT_FALSE(h.detector().ShouldEmulate(kLock));
  // Self-consumption never counts as a transaction flow.
  EXPECT_EQ(h.detector().flows_detected(), 0u);
}

TEST(FlowDetectorTest, AllocatorAcrossThreadsAlsoDemoted) {
  // Thread 1 frees, thread 2 allocates, then thread 2 frees: thread 2
  // ends up in both role lists.
  Harness h;
  h.SetCtxt(1, 100);
  h.SetCtxt(2, 200);
  constexpr uint64_t kHead = 0x6000;

  h.Run(MemFree(kLock), 1, {{0, kHead}, {1, 0x6100}});
  h.Run(MemAlloc(kLock), 2, {{0, kHead}});
  EXPECT_FALSE(h.detector().IsDemoted(kLock));  // so far looks like flow
  h.Run(MemFree(kLock), 2, {{0, kHead}, {1, 0x6200}});
  EXPECT_TRUE(h.detector().IsDemoted(kLock));
}

TEST(FlowDetectorTest, LinkedQueueFlowAndFifoContexts) {
  Harness h;
  h.SetCtxt(1, 100);
  constexpr uint64_t kQ = 0x7000;
  h.Run(ListEnqueue(kLock), 1, {{0, kQ}, {1, 0x7100}, {2, 77}});
  h.SetCtxt(1, 101);
  h.Run(ListEnqueue(kLock), 1, {{0, kQ}, {1, 0x7200}, {2, 88}});

  h.SetCtxt(2, 200);
  h.Run(ListDequeue(kLock), 2, {{0, kQ}});
  EXPECT_EQ(h.cpu(2).regs[1], 0x7100u);
  EXPECT_EQ(h.cpu(2).regs[2], 77u);
  h.Run(ListDequeue(kLock), 2, {{0, kQ}});
  EXPECT_EQ(h.cpu(2).regs[1], 0x7200u);
  EXPECT_EQ(h.cpu(2).regs[2], 88u);

  ASSERT_GE(h.detector().flows_detected(), 2u);
  EXPECT_EQ(h.detector().flow_log()[0].ctxt, 100u);
  EXPECT_EQ(h.detector().flow_log()[1].ctxt, 101u);
}

TEST(FlowDetectorTest, EmptyDequeueNullPropagationIsNotFlow) {
  // §3.3.2: dequeuing the last element moves the producer's NULL
  // (invlctxt) into the head pointer; a subsequent dequeue of the empty
  // queue must not report a flow.
  Harness h;
  h.SetCtxt(1, 100);
  constexpr uint64_t kQ = 0x7000;
  h.Run(ListEnqueue(kLock), 1, {{0, kQ}, {1, 0x7100}, {2, 5}});
  h.Run(ListDequeue(kLock), 2, {{0, kQ}});
  EXPECT_EQ(h.detector().flows_detected(), 1u);

  // Queue now empty; head holds NULL carried from elem->next.
  h.Run(ListDequeue(kLock), 3, {{0, kQ}});
  EXPECT_EQ(h.cpu(3).regs[1], 0u);
  EXPECT_EQ(h.detector().flows_detected(), 1u);  // unchanged
}

TEST(FlowDetectorTest, ForeignLockFlushesContext) {
  // A value produced under lock A, then read under lock B: the entry
  // is flushed, so no flow is reported (the location was reused for a
  // different purpose, §3.2).
  Harness h;
  h.SetCtxt(1, 100);
  h.SetCtxt(2, 200);
  constexpr uint64_t kAddr = 0x8000;
  constexpr uint64_t kLockA = 1, kLockB = 2;

  // Producer stores under lock A.
  ProgramBuilder store("store_under_a");
  store.Lock(kLockA).MovMR(0, 0, 1).Unlock(kLockA).Halt();
  h.Run(store.Build(), 1, {{0, kAddr}, {1, 0xDEAD}});

  // Consumer reads under lock B and uses the value.
  ProgramBuilder load("load_under_b");
  load.Lock(kLockB).MovRM(3, 0, 0).Unlock(kLockB).CmpRI(3, 0).Halt();
  h.Run(load.Build(), 2, {{0, kAddr}});

  EXPECT_EQ(h.detector().flows_detected(), 0u);
}

TEST(FlowDetectorTest, SameLockDifferentProgramStillFlows) {
  // Sanity check for the previous test: the same read under the SAME
  // lock does flow.
  Harness h;
  h.SetCtxt(1, 100);
  constexpr uint64_t kAddr = 0x8000;
  ProgramBuilder store("store");
  store.Lock(kLock).MovMR(0, 0, 1).Unlock(kLock).Halt();
  h.Run(store.Build(), 1, {{0, kAddr}, {1, 0xDEAD}});
  ProgramBuilder load("load");
  load.Lock(kLock).MovRM(3, 0, 0).Unlock(kLock).CmpRI(3, 0).Halt();
  h.Run(load.Build(), 2, {{0, kAddr}});
  EXPECT_EQ(h.detector().flows_detected(), 1u);
}

TEST(FlowDetectorTest, ConsumeWindowExpires) {
  // Using the value more than `post_window` instructions after the
  // unlock is outside the emulation window: no consumption detected.
  FlowDetector::Config config;
  config.post_window = 8;
  Harness h(config);
  h.SetCtxt(1, 100);
  constexpr uint64_t kAddr = 0x9000;
  ProgramBuilder store("store");
  store.Lock(kLock).MovMR(0, 0, 1).Unlock(kLock).Halt();
  h.Run(store.Build(), 1, {{0, kAddr}, {1, 1234}});

  ProgramBuilder late("late_use");
  late.Lock(kLock).MovRM(3, 0, 0).Unlock(kLock);
  for (int i = 0; i < 10; ++i) {
    late.Nop();
  }
  late.CmpRI(3, 0).Halt();  // use after window closed
  h.Run(late.Build(), 2, {{0, kAddr}});
  EXPECT_EQ(h.detector().flows_detected(), 0u);

  // Same shape within the window does flow.
  h.Run(store.Build(), 1, {{0, kAddr}, {1, 1234}});
  ProgramBuilder in_time("in_time_use");
  in_time.Lock(kLock).MovRM(3, 0, 0).Unlock(kLock).Nop().CmpRI(3, 0).Halt();
  h.Run(in_time.Build(), 3, {{0, kAddr}});
  EXPECT_EQ(h.detector().flows_detected(), 1u);
}

TEST(FlowDetectorTest, TablePatternDemotesLikeMysql) {
  // §8.1: MySQL threads both read and write table rows under the same
  // lock; Whodunit correctly concludes no transaction flow.
  Harness h;
  h.SetCtxt(1, 100);
  h.SetCtxt(2, 200);
  constexpr uint64_t kTable = 0xA000;
  Program rd = TableRead(kLock);
  Program wr = TableWrite(kLock);

  h.Run(wr, 1, {{0, kTable}, {1, 0}, {2, 42}});  // t1 writes row 0
  h.Run(rd, 2, {{0, kTable}, {1, 0}});           // t2 reads row 0
  h.Run(wr, 2, {{0, kTable}, {1, 1}, {2, 43}});  // t2 writes row 1
  h.Run(rd, 1, {{0, kTable}, {1, 1}});           // t1 reads row 1

  EXPECT_TRUE(h.detector().IsDemoted(kLock));
  EXPECT_FALSE(h.detector().ShouldEmulate(kLock));
}

TEST(FlowDetectorTest, NestedLocksAnalyzedUnderOutermost) {
  // §3.3.2: instructions in an inner critical section belong to the
  // outermost lock's analysis.
  Harness h;
  h.SetCtxt(1, 100);
  h.SetCtxt(2, 200);
  constexpr uint64_t kOuter = 1, kInner = 2;
  constexpr uint64_t kAddr = 0xB000;

  ProgramBuilder store("nested_store");
  store.Lock(kOuter).Lock(kInner).MovMR(0, 0, 1).Unlock(kInner).Unlock(kOuter).Halt();
  h.Run(store.Build(), 1, {{0, kAddr}, {1, 7}});
  // The producer role must be attributed to the OUTER lock.
  EXPECT_TRUE(h.detector().producers_of(kOuter).contains(1));
  EXPECT_TRUE(h.detector().producers_of(kInner).empty());

  ProgramBuilder load("nested_load");
  load.Lock(kOuter).MovRM(3, 0, 0).Unlock(kOuter).CmpRI(3, 0).Halt();
  h.Run(load.Build(), 2, {{0, kAddr}});
  EXPECT_EQ(h.detector().flows_detected(), 1u);
  EXPECT_EQ(h.detector().flow_log()[0].lock_id, kOuter);
}

TEST(FlowDetectorTest, FlowCallbackFires) {
  Harness h;
  h.SetCtxt(1, 55);
  std::vector<FlowEvent> seen;
  h.detector().set_flow_callback([&](const FlowEvent& e) { seen.push_back(e); });
  h.Run(ApQueuePush(kLock), 1, {{0, kQueueBase}, {1, 1}, {2, 2}});
  h.Run(ApQueuePop(kLock), 2, {{0, kQueueBase}, {5, kOutSd}, {6, kOutP}});
  ASSERT_EQ(seen.size(), 1u);
  EXPECT_EQ(seen[0].ctxt, 55u);
}

TEST(FlowDetectorTest, RegistersClearedBetweenCriticalSections) {
  // A register holding a context from a previous critical section must
  // not leak it into the next one (native code ran in between).
  Harness h;
  h.SetCtxt(1, 100);
  h.SetCtxt(2, 200);
  constexpr uint64_t kA = 0xC000, kB = 0xC100;

  // Thread 1: load a produced value into r3 under the lock (r3 gets a
  // context), then in a SECOND critical section store r3 to kB. If
  // registers were not cleared on CS entry, kB would inherit thread
  // 1's old context even though r3 was (conceptually) recomputed by
  // native code in between.
  ProgramBuilder first("first_cs");
  first.Lock(kLock).MovMR(0, 0, 1).Unlock(kLock).Halt();
  h.Run(first.Build(), 2, {{0, kA}, {1, 9}});  // t2 produces at kA

  ProgramBuilder second("second_cs");
  second.Lock(kLock).MovRM(3, 0, 0).Unlock(kLock).Halt();  // t1 loads kA -> r3
  h.Run(second.Build(), 1, {{0, kA}});

  ProgramBuilder third("third_cs");
  third.Lock(kLock).MovMR(0, 0, 3).Unlock(kLock).Halt();  // t1 stores r3 -> kB
  h.Run(third.Build(), 1, {{0, kB}});

  // t3 consumes kB: the flow context must be t1's CURRENT context
  // (fresh production), not a stale propagation from t2.
  h.SetCtxt(1, 111);
  ProgramBuilder use("use");
  use.Lock(kLock).MovRM(4, 0, 0).Unlock(kLock).CmpRI(4, 0).Halt();
  h.Run(use.Build(), 3, {{0, kB}});
  // Exactly one flow (kB), and it carries t1's context at production
  // time of the third critical section (100, set before third ran).
  bool found = false;
  for (const auto& ev : h.detector().flow_log()) {
    if (ev.consumer == 3) {
      found = true;
      EXPECT_EQ(ev.producer, 1u);
      EXPECT_EQ(ev.ctxt, 100u);
    }
  }
  EXPECT_TRUE(found);
}

}  // namespace
}  // namespace whodunit::shm
