// Additional profiler-runtime coverage: pipelined RPCs, transaction
// resets, mode gating, and render output details.
#include <gtest/gtest.h>

#include "src/profiler/stage_profiler.h"

namespace whodunit::profiler {
namespace {

using callpath::ProfilerMode;
using context::Synopsis;

StageProfiler::Options Opts(std::string name, ProfilerMode mode = ProfilerMode::kWhodunit) {
  StageProfiler::Options o;
  o.name = std::move(name);
  o.mode = mode;
  o.sample_period = 100;
  return o;
}

TEST(ProfilerAdvancedTest, PipelinedRequestsMatchInAnyOrder) {
  // Two outstanding RPCs from one thread; the responses return in the
  // opposite order and must each restore the right context.
  Deployment dep;
  StageProfiler caller(dep, Opts("caller"));
  StageProfiler callee(dep, Opts("callee"));
  ThreadProfile& ct = caller.CreateThread("c");
  ThreadProfile& st = callee.CreateThread("s");
  auto foo = caller.RegisterFunction("foo");
  auto bar = caller.RegisterFunction("bar");

  Synopsis req_foo, req_bar;
  {
    auto f = caller.EnterFrame(ct, foo);
    req_foo = caller.PrepareSend(ct);
  }
  {
    auto f = caller.EnterFrame(ct, bar);
    req_bar = caller.PrepareSend(ct);
  }

  // Callee answers bar first.
  callee.OnReceive(st, req_bar);
  Synopsis resp_bar = callee.PrepareSend(st, false);
  callee.OnReceive(st, req_foo);
  Synopsis resp_foo = callee.PrepareSend(st, false);

  EXPECT_TRUE(caller.OnReceive(ct, resp_bar));
  EXPECT_TRUE(caller.OnReceive(ct, resp_foo));
  // Both pending sends consumed: replaying a response is now treated
  // as a new request, not a response.
  EXPECT_FALSE(caller.OnReceive(ct, resp_foo));
}

TEST(ProfilerAdvancedTest, ResetClearsPendingSends) {
  Deployment dep;
  StageProfiler prof(dep, Opts("s"));
  ThreadProfile& tp = prof.CreateThread("t");
  auto fn = prof.RegisterFunction("fn");
  Synopsis req;
  {
    auto f = prof.EnterFrame(tp, fn);
    req = prof.PrepareSend(tp);
  }
  prof.ResetTransaction(tp);
  // A response to the pre-reset request no longer matches.
  Synopsis fake_response = req.Extend(Synopsis{{999}});
  EXPECT_FALSE(prof.OnReceive(tp, fake_response));
}

TEST(ProfilerAdvancedTest, NoneModeDisablesContextMachinery) {
  Deployment dep;
  StageProfiler prof(dep, Opts("s", ProfilerMode::kNone));
  ThreadProfile& tp = prof.CreateThread("t");
  EXPECT_TRUE(prof.PrepareSend(tp).empty());
  EXPECT_FALSE(prof.OnReceive(tp, Synopsis{{1, 2}}));
  EXPECT_TRUE(tp.incoming().empty());
  prof.AdoptCtxt(tp, 0);  // no-op, no crash
}

TEST(ProfilerAdvancedTest, CsprofTracksNoContextsButSamples) {
  Deployment dep;
  StageProfiler prof(dep, Opts("s", ProfilerMode::kCsprof));
  ThreadProfile& tp = prof.CreateThread("t");
  auto fn = prof.RegisterFunction("fn");
  prof.OnReceive(tp, Synopsis{{5}});  // ignored: csprof has no contexts
  {
    auto f = prof.EnterFrame(tp, fn);
    prof.ChargeCpu(tp, 1000);
  }
  auto labeled = prof.LabeledCcts();
  ASSERT_EQ(labeled.size(), 1u);
  EXPECT_TRUE(labeled[0].first.empty());  // single unlabeled CCT
  EXPECT_EQ(prof.total_samples(), 10u);
}

TEST(ProfilerAdvancedTest, WireBytesGrowAlongTheChain) {
  Deployment dep;
  StageProfiler a(dep, Opts("a")), b(dep, Opts("b")), c(dep, Opts("c"));
  ThreadProfile& at = a.CreateThread("a");
  ThreadProfile& bt = b.CreateThread("b");
  ThreadProfile& ct = c.CreateThread("c");
  auto fn_a = a.RegisterFunction("fa");
  auto fn_b = b.RegisterFunction("fb");

  Synopsis s1;
  {
    auto f = a.EnterFrame(at, fn_a);
    s1 = a.PrepareSend(at);
  }
  EXPECT_EQ(s1.WireBytes(), 4u);  // one 4-byte part
  b.OnReceive(bt, s1);
  Synopsis s2;
  {
    auto f = b.EnterFrame(bt, fn_b);
    s2 = b.PrepareSend(bt);
  }
  EXPECT_EQ(s2.WireBytes(), 9u);  // two parts + '#'
  c.OnReceive(ct, s2);
  Synopsis s3 = c.PrepareSend(ct, false);
  EXPECT_EQ(s3.WireBytes(), 14u);  // three parts + two '#'
  EXPECT_TRUE(s3.HasPrefix(s2));
  EXPECT_TRUE(s2.HasPrefix(s1));
}

TEST(ProfilerAdvancedTest, SameCallPathSameSynopsisPart) {
  // The paper (§8.4): requests through the same call path transfer the
  // SAME transaction context — the synopsis must be identical, not a
  // fresh id per message.
  Deployment dep;
  StageProfiler prof(dep, Opts("squid"));
  ThreadProfile& tp = prof.CreateThread("t");
  auto fn = prof.RegisterFunction("forward");
  Synopsis first, second;
  {
    auto f = prof.EnterFrame(tp, fn);
    first = prof.PrepareSend(tp);
  }
  {
    auto f = prof.EnterFrame(tp, fn);
    second = prof.PrepareSend(tp);
  }
  EXPECT_EQ(first, second);
  EXPECT_EQ(dep.synopses().size(), 1u);
}

TEST(ProfilerAdvancedTest, RenderMentionsContextsAndShares) {
  Deployment dep;
  StageProfiler prof(dep, Opts("db"));
  ThreadProfile& tp = prof.CreateThread("t");
  auto fn = prof.RegisterFunction("query");
  prof.OnReceive(tp, Synopsis{{3}});
  {
    auto f = prof.EnterFrame(tp, fn);
    prof.ChargeCpu(tp, 1000);
  }
  std::string text = prof.RenderTransactionalProfile();
  EXPECT_NE(text.find("transactional profile of stage 'db'"), std::string::npos);
  EXPECT_NE(text.find("query"), std::string::npos);
  EXPECT_NE(text.find("[100% of stage CPU"), std::string::npos);
}

}  // namespace
}  // namespace whodunit::profiler
