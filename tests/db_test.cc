#include "src/db/database.h"

#include <gtest/gtest.h>

#include <vector>

#include "src/crosstalk/crosstalk.h"
#include "src/sim/task.h"

namespace whodunit::db {
namespace {

using Kind = QueryStep::Kind;

struct Fixture {
  sim::Scheduler sched;
  sim::CpuResource cpu{sched, 1, "db_cpu"};
  Database database{sched, cpu, CostModel{}};
};

sim::Process RunQuery(Fixture& f, Query q, uint64_t tag, sim::SimTime* cost_out = nullptr) {
  sim::SimTime cost = co_await f.database.Execute(q, tag);
  if (cost_out != nullptr) {
    *cost_out = cost;
  }
}

TEST(DatabaseTest, EstimateCostComposesSteps) {
  Fixture f;
  f.database.CreateTable("t", 1000, LockGranularity::kTableLocks);
  Query q{"q", {{Kind::kScan, "t", 100}, {Kind::kPointRead, "t", 1}}};
  const CostModel& c = f.database.costs();
  EXPECT_EQ(f.database.EstimateCost(q),
            c.fixed_per_query + 100 * c.per_row_scan + c.per_point_read);
}

TEST(DatabaseTest, SortCostSuperlinear) {
  Fixture f;
  Query small{"s", {{Kind::kSort, "", 1000}}};
  Query large{"l", {{Kind::kSort, "", 10000}}};
  const auto cs = f.database.EstimateCost(small) - f.database.costs().fixed_per_query;
  const auto cl = f.database.EstimateCost(large) - f.database.costs().fixed_per_query;
  EXPECT_GT(cl, 10 * cs);  // n log n growth
}

TEST(DatabaseTest, ExecuteConsumesCpuTime) {
  Fixture f;
  f.database.CreateTable("t", 1000, LockGranularity::kTableLocks);
  Query q{"q", {{Kind::kScan, "t", 1000}}};
  sim::SimTime cost = 0;
  sim::Spawn(f.sched, RunQuery(f, q, 1, &cost));
  f.sched.Run();
  EXPECT_EQ(cost, f.database.EstimateCost(q));
  EXPECT_EQ(f.cpu.busy_time(), cost);
  // Wall time = disk wait (while holding locks) + CPU service.
  EXPECT_EQ(f.sched.now(), cost + f.database.EstimateDiskTime(q));
  EXPECT_EQ(f.database.queries_executed(), 1u);
}

TEST(DatabaseTest, ChargeHookInflatesConsumption) {
  Fixture f;
  f.database.CreateTable("t", 1000, LockGranularity::kTableLocks);
  Query q{"q", {{Kind::kScan, "t", 1000}}};
  sim::Spawn(f.sched, [](Fixture& fx, Query qq) -> sim::Process {
    co_await fx.database.Execute(qq, 1, [](sim::SimTime c) { return c + 500; });
  }(f, q));
  f.sched.Run();
  // The hook runs once for the per-query fixed cost and once per step:
  // two inflations of 500 for this one-step plan.
  EXPECT_EQ(f.cpu.busy_time(), f.database.EstimateCost(q) + 2 * 500);
}

TEST(DatabaseTest, MyisamReadersShareWritersExclude) {
  Fixture f;
  f.database.CreateTable("item", 1000, LockGranularity::kTableLocks);
  crosstalk::CrosstalkRecorder rec;
  f.database.SetLockObserver(&rec);

  Query read{"read", {{Kind::kScan, "item", 10000}}};           // 9 ms
  Query write{"write", {{Kind::kUpdateRow, "item", 1, 5}}};     // short

  // Two readers start together (share); the writer arrives during.
  sim::Spawn(f.sched, RunQuery(f, read, /*tag=*/1));
  sim::Spawn(f.sched, RunQuery(f, read, /*tag=*/2));
  sim::SpawnAfter(f.sched, sim::Millis(1), RunQuery(f, write, /*tag=*/3));
  f.sched.Run();

  // The writer waited for both readers (blame recorded), readers did
  // not wait for each other.
  EXPECT_EQ(rec.WaitCount(3), 1u);
  EXPECT_GT(rec.MeanWait(3), 0.0);
  EXPECT_EQ(rec.WaitCount(1), 0u);
  EXPECT_EQ(rec.WaitCount(2), 0u);
}

TEST(DatabaseTest, InnodbReadersDontBlockBehindWriter) {
  Fixture f;
  f.database.CreateTable("item", 1000, LockGranularity::kRowLocks);
  crosstalk::CrosstalkRecorder rec;
  f.database.SetLockObserver(&rec);

  Query write{"write", {{Kind::kScan, "item", 50000}, {Kind::kUpdateRow, "item", 1, 5}}};
  Query read{"read", {{Kind::kScan, "item", 10000}}};

  sim::Spawn(f.sched, RunQuery(f, write, 1));
  sim::SpawnAfter(f.sched, sim::Millis(1), RunQuery(f, read, 2));
  f.sched.Run();

  // MVCC: the reader acquired no lock at all.
  EXPECT_EQ(rec.WaitCount(2), 0u);
}

TEST(DatabaseTest, InnodbWritersOnSameRowStripeConflict) {
  Fixture f;
  f.database.CreateTable("item", 1000, LockGranularity::kRowLocks);
  crosstalk::CrosstalkRecorder rec;
  f.database.SetLockObserver(&rec);

  // Same row -> same stripe -> serialized.
  Query w1{"w1", {{Kind::kScan, "item", 20000}, {Kind::kUpdateRow, "item", 1, 7}}};
  Query w2{"w2", {{Kind::kUpdateRow, "item", 1, 7}}};
  sim::Spawn(f.sched, RunQuery(f, w1, 1));
  sim::SpawnAfter(f.sched, sim::Micros(100), RunQuery(f, w2, 2));
  f.sched.Run();
  EXPECT_EQ(rec.WaitCount(2), 1u);
}

TEST(DatabaseTest, MultiTableLocksAcquiredInNameOrder) {
  // Two queries touching the same two tables in opposite step order
  // must not deadlock (locks are acquired in canonical order).
  Fixture f;
  f.database.CreateTable("a", 100, LockGranularity::kTableLocks);
  f.database.CreateTable("b", 100, LockGranularity::kTableLocks);
  Query q1{"q1", {{Kind::kUpdateRow, "a", 1, 0}, {Kind::kUpdateRow, "b", 1, 0}}};
  Query q2{"q2", {{Kind::kUpdateRow, "b", 1, 0}, {Kind::kUpdateRow, "a", 1, 0}}};
  int done = 0;
  auto run = [&](Query q, uint64_t tag) -> sim::Process {
    co_await f.database.Execute(q, tag);
    ++done;
  };
  sim::Spawn(f.sched, run(q1, 1));
  sim::Spawn(f.sched, run(q2, 2));
  f.sched.Run();
  EXPECT_EQ(done, 2);
  EXPECT_FALSE(f.database.table("a").table_lock().held());
  EXPECT_FALSE(f.database.table("b").table_lock().held());
}

TEST(DatabaseTest, GranularityCanBeSwitched) {
  Fixture f;
  Table& t = f.database.CreateTable("item", 100, LockGranularity::kTableLocks);
  EXPECT_EQ(t.granularity(), LockGranularity::kTableLocks);
  t.set_granularity(LockGranularity::kRowLocks);
  EXPECT_EQ(f.database.table("item").granularity(), LockGranularity::kRowLocks);
}

}  // namespace
}  // namespace whodunit::db
