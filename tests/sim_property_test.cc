// Property-based tests for the simulation kernel: invariants that must
// hold for arbitrary interleavings of lockers, CPU consumers, and
// channel users.
#include <gtest/gtest.h>

#include <vector>

#include "src/sim/channel.h"
#include "src/sim/cpu.h"
#include "src/sim/lock.h"
#include "src/sim/task.h"
#include "src/util/rng.h"

namespace whodunit::sim {
namespace {

// A lock observer that checks mutual-exclusion invariants online.
class InvariantChecker : public LockObserver {
 public:
  void OnAcquired(const SimMutex& lock, uint64_t waiter_tag, uint64_t blocking_tag,
                  SimTime wait) override {
    ++holders_;
    EXPECT_GE(wait, 0);
    if (wait > 0) {
      // A contended acquire must blame someone (the lock was held when
      // the wait began).
      EXPECT_NE(blocking_tag, kNoTag);
      EXPECT_NE(blocking_tag, waiter_tag) << "self-blame";
      total_wait_ += wait;
      ++contended_;
    }
    max_holders_ = std::max(max_holders_, holders_);
    (void)lock;
  }
  void OnReleased(const SimMutex&, uint64_t) override { --holders_; }

  int holders_ = 0;
  int max_holders_ = 0;
  uint64_t contended_ = 0;
  SimTime total_wait_ = 0;
};

class LockStressTest : public ::testing::TestWithParam<uint64_t> {};

Process RandomLocker(Scheduler& sched, SimMutex& m, uint64_t tag, util::Rng* rng, int ops,
                     int* exclusive_inside, int* shared_inside) {
  for (int i = 0; i < ops; ++i) {
    co_await Delay{sched, static_cast<SimTime>(rng->NextBelow(50))};
    const bool exclusive = rng->NextBernoulli(0.3);
    co_await m.Acquire(tag, exclusive ? LockMode::kExclusive : LockMode::kShared);
    if (exclusive) {
      ++*exclusive_inside;
      EXPECT_EQ(*shared_inside, 0) << "writer overlapped readers";
      EXPECT_EQ(*exclusive_inside, 1) << "two writers inside";
    } else {
      ++*shared_inside;
      EXPECT_EQ(*exclusive_inside, 0) << "reader overlapped a writer";
    }
    co_await Delay{sched, static_cast<SimTime>(1 + rng->NextBelow(30))};
    if (exclusive) {
      --*exclusive_inside;
    } else {
      --*shared_inside;
    }
    m.Release(tag);
  }
}

TEST_P(LockStressTest, MutualExclusionUnderRandomSchedules) {
  Scheduler sched;
  SimMutex m(sched);
  InvariantChecker checker;
  m.set_observer(&checker);
  util::Rng rng(GetParam());
  int exclusive_inside = 0, shared_inside = 0;
  std::vector<util::Rng> rngs;
  for (int t = 0; t < 8; ++t) {
    rngs.push_back(rng.Split());
  }
  for (int t = 0; t < 8; ++t) {
    Spawn(sched, RandomLocker(sched, m, static_cast<uint64_t>(t + 1), &rngs[t], 50,
                              &exclusive_inside, &shared_inside));
  }
  sched.Run();
  EXPECT_EQ(exclusive_inside, 0);
  EXPECT_EQ(shared_inside, 0);
  EXPECT_FALSE(m.held());
  EXPECT_EQ(m.queue_length(), 0u);
  // Accounting: the lock's own wait total equals the observer's.
  EXPECT_EQ(m.total_wait(), checker.total_wait_);
  // A waiter may suspend and be granted at the same virtual instant
  // (zero wait): counted as contended by the lock, not by the
  // observer's positive-wait tally.
  EXPECT_GE(m.contended_count(), checker.contended_);
  EXPECT_EQ(m.acquire_count(), 8u * 50u);
  // Shared mode allowed real concurrency at least once.
  EXPECT_GT(checker.max_holders_, 1);
}

Process ConsumeRandom(Scheduler& sched, CpuResource& cpu, util::Rng* rng, int ops,
                      SimTime* total_cost) {
  for (int i = 0; i < ops; ++i) {
    co_await Delay{sched, static_cast<SimTime>(rng->NextBelow(20))};
    const auto cost = static_cast<SimTime>(1 + rng->NextBelow(100));
    *total_cost += cost;
    co_await cpu.Consume(cost);
  }
}

TEST_P(LockStressTest, CpuConservesWork) {
  Scheduler sched;
  CpuResource cpu(sched, 3);
  util::Rng rng(GetParam() ^ 0xC0FFEE);
  SimTime total_cost = 0;
  std::vector<util::Rng> rngs;
  for (int t = 0; t < 6; ++t) {
    rngs.push_back(rng.Split());
  }
  for (int t = 0; t < 6; ++t) {
    Spawn(sched, ConsumeRandom(sched, cpu, &rngs[t], 40, &total_cost));
  }
  sched.Run();
  // Conservation: busy time equals the sum of all requested costs.
  EXPECT_EQ(cpu.busy_time(), total_cost);
  // And the run can't finish faster than the work divided by cores.
  EXPECT_GE(sched.now(), total_cost / 3);
  EXPECT_EQ(cpu.requests(), 6u * 40u);
}

Process Producer(Channel<uint64_t>& ch, util::Rng* rng, int n, Scheduler& sched,
                 uint64_t* sent_sum) {
  for (int i = 0; i < n; ++i) {
    co_await Delay{sched, static_cast<SimTime>(rng->NextBelow(10))};
    const uint64_t v = rng->NextBelow(1000);
    *sent_sum += v;
    ch.Send(v);
  }
}

Process Consumer(Channel<uint64_t>& ch, uint64_t* received_sum, uint64_t* received_count) {
  for (;;) {
    auto v = co_await ch.Receive();
    if (!v) {
      break;
    }
    *received_sum += *v;
    ++*received_count;
  }
}

TEST_P(LockStressTest, ChannelConservesMessages) {
  Scheduler sched;
  Channel<uint64_t> ch(sched, /*latency=*/5);
  util::Rng rng(GetParam() ^ 0xCAFE);
  uint64_t sent_sum = 0, received_sum = 0, received_count = 0;
  std::vector<util::Rng> rngs;
  for (int p = 0; p < 4; ++p) {
    rngs.push_back(rng.Split());
  }
  for (int p = 0; p < 4; ++p) {
    Spawn(sched, Producer(ch, &rngs[p], 30, sched, &sent_sum));
  }
  for (int c = 0; c < 3; ++c) {
    Spawn(sched, Consumer(ch, &received_sum, &received_count));
  }
  sched.ScheduleAt(Seconds(10), [&] { ch.Close(); });
  sched.Run();
  EXPECT_EQ(received_count, 4u * 30u);
  EXPECT_EQ(received_sum, sent_sum);
  EXPECT_EQ(ch.messages_sent(), 120u);
  EXPECT_EQ(ch.pending(), 0u);
}

INSTANTIATE_TEST_SUITE_P(Seeds, LockStressTest, ::testing::Values(11, 22, 33, 44, 55, 66));

}  // namespace
}  // namespace whodunit::sim
