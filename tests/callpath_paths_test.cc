// Tests for call-path interning and disassembler coverage.
#include <gtest/gtest.h>

#include "src/callpath/path_table.h"
#include "src/vm/interpreter.h"
#include "src/vm/program_builder.h"

namespace whodunit {
namespace {

TEST(PathTableTest, InternsAndRendersPaths) {
  callpath::FunctionRegistry reg;
  callpath::CallPathTable paths;
  auto main_fn = reg.Register("main");
  auto foo_fn = reg.Register("foo");
  auto send_fn = reg.Register("send");

  callpath::PathId p1 = paths.Intern({main_fn, foo_fn, send_fn});
  callpath::PathId p2 = paths.Intern({main_fn, foo_fn, send_fn});
  callpath::PathId p3 = paths.Intern({main_fn, send_fn});
  EXPECT_EQ(p1, p2);
  EXPECT_NE(p1, p3);
  EXPECT_EQ(paths.size(), 2u);
  EXPECT_EQ(paths.PathOf(p1), (std::vector<callpath::FunctionId>{main_fn, foo_fn, send_fn}));
  EXPECT_EQ(paths.Render(p1, reg), "main>foo>send");
  EXPECT_EQ(paths.Render(p3, reg), "main>send");
}

TEST(PathTableTest, EmptyPathIsValid) {
  callpath::FunctionRegistry reg;
  callpath::CallPathTable paths;
  callpath::PathId p = paths.Intern({});
  EXPECT_EQ(paths.Render(p, reg), "");
  EXPECT_EQ(paths.Intern({}), p);
}

TEST(PathTableTest, PrefixPathsAreDistinct) {
  callpath::FunctionRegistry reg;
  callpath::CallPathTable paths;
  auto a = reg.Register("a");
  auto b = reg.Register("b");
  EXPECT_NE(paths.Intern({a}), paths.Intern({a, b}));
  EXPECT_NE(paths.Intern({a, b}), paths.Intern({b, a}));
}

TEST(DisassemblerTest, CoversEveryOpcode) {
  using namespace vm;
  ProgramBuilder b("all_ops");
  const int label = b.DefineLabel();
  b.MovRR(1, 2)
      .MovRI(1, 5)
      .MovRM(1, 0, 8)
      .MovMR(0, 8, 1)
      .MovMI(0, 8, 7)
      .MovMM(0, 8, 0, 16)
      .AddRR(1, 2)
      .AddRI(1, 3)
      .SubRI(1, 1)
      .MulRI(1, 2)
      .IncM(0, 0)
      .DecM(0, 0)
      .AddMI(0, 0, 4)
      .CmpRI(1, 0)
      .CmpRR(1, 2)
      .CmpMI(0, 0, 9)
      .Je(label)
      .Jne(label)
      .Jl(label)
      .Jge(label)
      .Jmp(label)
      .Lock(3)
      .Unlock(3)
      .Nop()
      .Bind(label)
      .Halt();
  const std::string text = Disassemble(b.Build());
  for (const char* op :
       {"mov_rr", "mov_ri", "mov_rm", "mov_mr", "mov_mi", "mov_mm", "add_rr", "add_ri",
        "sub_ri", "mul_ri", "inc_m", "dec_m", "add_mi", "cmp_ri", "cmp_rr", "cmp_mi", "je",
        "jne", "jl", "jge", "jmp", "lock", "unlock", "nop", "halt"}) {
    EXPECT_NE(text.find(op), std::string::npos) << op;
  }
}

TEST(InterpreterGuardTest, RunawayLoopTerminatesAtMaxSteps) {
  using namespace vm;
  ProgramBuilder b("forever");
  const int loop = b.DefineLabel();
  b.Bind(loop).Nop().Jmp(loop);
  Interpreter interp;
  CpuState cpu;
  Memory mem;
  ExecResult r = interp.Execute(b.Build(), 0, cpu, mem, nullptr,
                                Interpreter::Mode::kDirect, /*max_steps=*/1000);
  EXPECT_EQ(r.instructions, 1000);
}

}  // namespace
}  // namespace whodunit
