// Flow-summary cache (src/shm/section_cache.h): warm executions must
// hit, replays must be bit-identical to full emulation — machine
// state, dictionary state, flow events, and simulated-cost accounting
// — and every invalidation rule must actually invalidate.
#include <gtest/gtest.h>

#include <map>
#include <vector>

#include "src/shm/flow_detector.h"
#include "src/shm/guest_code.h"
#include "src/shm/section_cache.h"
#include "src/vm/interpreter.h"
#include "src/vm/program_builder.h"

namespace whodunit::shm {
namespace {

constexpr uint64_t kLock = 7;
constexpr uint64_t kQueue = 0x1000;
constexpr uint64_t kCounterAddr = 0x5000;

SectionCache::Config NoShadow() {
  SectionCache::Config cfg;
  cfg.shadow_verify = false;
  return cfg;
}

// Two universes run the same schedule: one through the cache, one
// through plain emulation. They must stay indistinguishable.
struct Universe {
  explicit Universe(FlowDetector::Config dcfg = {})
      : detector(dcfg, [this](vm::ThreadId t) { return ctxts[t]; }) {
    detector.set_flow_callback([this](const FlowEvent& ev) { flows.push_back(ev); });
  }
  vm::Interpreter interp;
  vm::Memory mem;
  std::map<vm::ThreadId, vm::CpuState> cpus;
  std::map<vm::ThreadId, CtxtId> ctxts;
  FlowDetector detector;
  std::vector<FlowEvent> flows;
};

void ExpectSame(Universe& a, Universe& b) {
  ASSERT_EQ(a.cpus.size(), b.cpus.size());
  for (auto& [t, cpu] : a.cpus) {
    ASSERT_TRUE(b.cpus.count(t));
    EXPECT_EQ(cpu.regs, b.cpus[t].regs) << "thread " << t;
    EXPECT_EQ(cpu.cmp, b.cpus[t].cmp) << "thread " << t;
  }
  EXPECT_EQ(a.mem.Snapshot(), b.mem.Snapshot());
  EXPECT_TRUE(a.detector.DeepEquals(b.detector));
  ASSERT_EQ(a.flows.size(), b.flows.size());
  for (size_t i = 0; i < a.flows.size(); ++i) {
    EXPECT_EQ(a.flows[i], b.flows[i]) << "flow " << i;
  }
}

TEST(SectionCacheTest, CounterHitsAfterWarmup) {
  vm::Program cnt = CounterIncrement(kLock);
  Universe u;
  SectionCache cache(NoShadow());
  vm::CpuState& cpu = u.cpus[0];
  cpu.regs[0] = kCounterAddr;
  for (int i = 0; i < 10; ++i) {
    cache.Run(u.interp, cnt, 0, cpu, u.mem, &u.detector);
  }
  // Run 1 translates (no recording), run 2 records, runs 3..10 replay:
  // the counter's IncM is affine, so its walking value never pins.
  EXPECT_EQ(cache.hits(), 8u);
  EXPECT_EQ(cache.misses(), 2u);
  EXPECT_EQ(u.mem.Read(kCounterAddr), 10u);
}

TEST(SectionCacheTest, QueueSteadyStateHitsAndMatchesPlainEmulation) {
  vm::Program push = ApQueuePush(kLock);
  vm::Program pop = ApQueuePop(kLock);
  Universe cached, plain;
  SectionCache cache(NoShadow());
  CtxtId next_ctxt = 1;
  for (int i = 0; i < 50; ++i) {
    const CtxtId c = next_ctxt++;
    for (Universe* u : {&cached, &plain}) {
      u->ctxts[0] = c;
      vm::CpuState& producer = u->cpus[0];
      producer.regs[0] = kQueue;
      producer.regs[1] = 100 + static_cast<uint64_t>(i);
      producer.regs[2] = 200 + static_cast<uint64_t>(i);
      vm::CpuState& consumer = u->cpus[3];
      consumer.regs[0] = kQueue;
      consumer.regs[5] = 0x2000;
      consumer.regs[6] = 0x2008;
    }
    const vm::ExecResult c1 = cache.Run(cached.interp, push, 0, cached.cpus[0], cached.mem,
                                        &cached.detector);
    const vm::ExecResult p1 =
        plain.interp.ExecuteWith(push, 0, plain.cpus[0], plain.mem, &plain.detector);
    const vm::ExecResult c2 = cache.Run(cached.interp, pop, 3, cached.cpus[3], cached.mem,
                                        &cached.detector);
    const vm::ExecResult p2 =
        plain.interp.ExecuteWith(pop, 3, plain.cpus[3], plain.mem, &plain.detector);
    // Simulated cost accounting must survive replay bit-for-bit.
    EXPECT_EQ(c1.guest_cycles, p1.guest_cycles);
    EXPECT_EQ(c1.instructions, p1.instructions);
    EXPECT_EQ(c2.guest_cycles, p2.guest_cycles);
    EXPECT_EQ(c2.instructions, p2.instructions);
  }
  ExpectSame(cached, plain);
  // The queue depth oscillates between 0 and 1, so both sections reach
  // a steady state well inside the variant ring.
  EXPECT_GT(cache.hits(), 80u);
  EXPECT_EQ(cached.flows.size(), 50u);
}

TEST(SectionCacheTest, DepthChangeRecordsNewVariant) {
  vm::Program push = ApQueuePush(kLock);
  Universe u;
  SectionCache cache(NoShadow());
  vm::CpuState& cpu = u.cpus[0];
  // Pushes at strictly increasing depth: nelts feeds the element
  // address computation, so every depth is a distinct fingerprint.
  for (int i = 0; i < 6; ++i) {
    cpu.regs[0] = kQueue;
    cpu.regs[1] = 1;
    cpu.regs[2] = 2;
    cache.Run(u.interp, push, 0, cpu, u.mem, &u.detector);
  }
  EXPECT_EQ(cache.hits(), 0u);
  EXPECT_EQ(cache.misses(), 6u);
  EXPECT_EQ(u.mem.Read(kQueue), 6u);
  // Revisiting an already-recorded depth hits.
  u.mem.Write(kQueue, 3);
  cache.Run(u.interp, push, 0, cpu, u.mem, &u.detector);
  EXPECT_EQ(cache.hits(), 1u);
}

TEST(SectionCacheTest, ChurnGuardDemotesWalkingSection) {
  vm::Program push = ApQueuePush(kLock);
  Universe cached, plain;
  SectionCache::Config cfg = NoShadow();
  cfg.max_variants = 8;
  SectionCache cache(cfg);
  // A queue that only ever grows pins a fresh depth on every push:
  // each run re-records and the full ring evicts, and recording costs
  // several plain emulations. After the ring has evicted
  // churn_demote_records summaries with no replays to show for them,
  // the (program, thread) ring must fall back to plain emulation for
  // good. 48 runs = 1 translate + 8 ring fills + 32 evictions + tail.
  for (int i = 0; i < 48; ++i) {
    for (Universe* u : {&cached, &plain}) {
      vm::CpuState& cpu = u->cpus[0];
      cpu.regs[0] = kQueue;
      cpu.regs[1] = 100 + static_cast<uint64_t>(i);
      cpu.regs[2] = 200 + static_cast<uint64_t>(i);
    }
    cache.Run(cached.interp, push, 0, cached.cpus[0], cached.mem, &cached.detector);
    plain.interp.ExecuteWith(push, 0, plain.cpus[0], plain.mem, &plain.detector);
  }
  EXPECT_EQ(cache.hits(), 0u);
  EXPECT_EQ(cache.misses(), 48u);
  EXPECT_EQ(cache.variants(), 0u);  // demoted: summaries dropped
  ExpectSame(cached, plain);
  // Demotion is sticky — later runs stop recording entirely.
  cached.cpus[0].regs[1] = 999;
  plain.cpus[0].regs[1] = 999;
  cache.Run(cached.interp, push, 0, cached.cpus[0], cached.mem, &cached.detector);
  plain.interp.ExecuteWith(push, 0, plain.cpus[0], plain.mem, &plain.detector);
  EXPECT_EQ(cache.variants(), 0u);
  EXPECT_EQ(cache.hits(), 0u);
  ExpectSame(cached, plain);
}

TEST(SectionCacheTest, PerThreadRingsSurviveMultiThreadThrash) {
  // Two server threads walk the same 8 row indices of a shared table.
  // With rings keyed per (program, thread) each thread's 8 variants
  // fit its own ring even at max_variants = 8; a shared ring would
  // thrash — 16 live fingerprints in 8 slots, near-zero hits.
  constexpr uint64_t kTableBase = 0x9000;
  vm::Program read = TableRead(kLock);
  Universe cached, plain;
  SectionCache::Config cfg = NoShadow();
  cfg.max_variants = 8;
  SectionCache cache(cfg);
  for (Universe* u : {&cached, &plain}) {
    for (uint64_t row = 0; row < 8; ++row) {
      u->mem.Write(kTableBase + 8 * row, 1000 + row);
    }
  }
  for (int round = 0; round < 10; ++round) {
    for (vm::ThreadId t : {vm::ThreadId{0}, vm::ThreadId{1}}) {
      for (uint64_t row = 0; row < 8; ++row) {
        for (Universe* u : {&cached, &plain}) {
          vm::CpuState& cpu = u->cpus[t];
          cpu.regs[0] = kTableBase;
          cpu.regs[1] = row;
        }
        const vm::ExecResult c =
            cache.Run(cached.interp, read, t, cached.cpus[t], cached.mem, &cached.detector);
        const vm::ExecResult p =
            plain.interp.ExecuteWith(read, t, plain.cpus[t], plain.mem, &plain.detector);
        EXPECT_EQ(c.guest_cycles, p.guest_cycles);
        EXPECT_EQ(c.instructions, p.instructions);
      }
    }
  }
  ExpectSame(cached, plain);
  // 160 runs: 1 translation, 16 recordings, everything else replays.
  EXPECT_GT(cache.hits(), 120u);
  EXPECT_EQ(cache.variants(), 16u);
}

TEST(SectionCacheTest, WalkingRowIndexReplaysWithSymbolicPayload) {
  // TableRead's fingerprint pins the walking row index (it feeds the
  // address computation) but keeps the row payload symbolic: the value
  // flows through a MOV chain into r3 and into the section's final
  // compare. Revisiting a recorded index must replay even after the
  // payload changed, and the replay must deliver the *live* payload —
  // both in r3 and in the comparison flags.
  constexpr uint64_t kTableBase = 0x9000;
  vm::Program read = TableRead(kLock);
  Universe u;
  SectionCache cache(NoShadow());
  vm::CpuState& cpu = u.cpus[0];
  for (uint64_t row = 0; row < 16; ++row) {
    u.mem.Write(kTableBase + 8 * row, 500 + row);
  }
  // Pass 1 warms: one translation plus one recording per index.
  // Pass 2 replays every index.
  for (int pass = 0; pass < 2; ++pass) {
    for (uint64_t row = 0; row < 16; ++row) {
      cpu.regs[0] = kTableBase;
      cpu.regs[1] = row;
      cache.Run(u.interp, read, 0, cpu, u.mem, &u.detector);
      EXPECT_EQ(cpu.regs[3], 500 + row);
    }
  }
  EXPECT_EQ(cache.hits(), 15u);  // pass 2, minus the re-record after translation
  // Overwrite every payload; the fingerprints still match (the value
  // was never pinned) and replay reproduces the new value and its sign.
  for (uint64_t row = 0; row < 16; ++row) {
    u.mem.Write(kTableBase + 8 * row, row == 0 ? 0 : 9000 + row);
  }
  const uint64_t hits_before = cache.hits();
  for (uint64_t row = 0; row < 16; ++row) {
    cpu.regs[0] = kTableBase;
    cpu.regs[1] = row;
    cache.Run(u.interp, read, 0, cpu, u.mem, &u.detector);
    EXPECT_EQ(cpu.regs[3], row == 0 ? 0u : 9000 + row);
    EXPECT_EQ(cpu.cmp, row == 0 ? 0 : 1);  // sign(payload - 0), recomputed live
  }
  EXPECT_EQ(cache.hits(), hits_before + 16);
}

TEST(SectionCacheTest, GuestCodeChangeMisses) {
  Universe u;
  SectionCache cache(NoShadow());
  vm::CpuState& cpu = u.cpus[0];
  cpu.regs[0] = kCounterAddr;
  vm::Program cnt = CounterIncrement(kLock);
  for (int i = 0; i < 4; ++i) {
    cache.Run(u.interp, cnt, 0, cpu, u.mem, &u.detector);
  }
  EXPECT_EQ(cache.hits(), 2u);
  // A rebuilt section gets a fresh program id from the builder, so the
  // cache cannot confuse it with the old body.
  vm::Program rebuilt = CounterIncrement(kLock);
  EXPECT_NE(rebuilt.id, cnt.id);
  cache.Run(u.interp, rebuilt, 0, cpu, u.mem, &u.detector);
  EXPECT_EQ(cache.hits(), 2u);
  // Explicit invalidation forces a re-record as well.
  cache.Invalidate(cnt.id);
  cache.Run(u.interp, cnt, 0, cpu, u.mem, &u.detector);
  EXPECT_EQ(cache.hits(), 2u);  // first run after Invalidate re-records
  cache.Run(u.interp, cnt, 0, cpu, u.mem, &u.detector);
  EXPECT_EQ(cache.hits(), 3u);
}

TEST(SectionCacheTest, TranslationFlushForcesColdRun) {
  Universe u;
  SectionCache cache(NoShadow());
  vm::CpuState& cpu = u.cpus[0];
  cpu.regs[0] = kCounterAddr;
  vm::Program cnt = CounterIncrement(kLock);
  for (int i = 0; i < 4; ++i) {
    cache.Run(u.interp, cnt, 0, cpu, u.mem, &u.detector);
  }
  EXPECT_EQ(cache.hits(), 2u);
  u.interp.FlushTranslationCache();
  // The summary must not mask the re-translation cost: the next run
  // pays it for real and reports translated=true.
  const vm::ExecResult res = cache.Run(u.interp, cnt, 0, cpu, u.mem, &u.detector);
  EXPECT_TRUE(res.translated);
  EXPECT_EQ(cache.hits(), 2u);
  // With the translation warm again, the old summary is valid again.
  cache.Run(u.interp, cnt, 0, cpu, u.mem, &u.detector);
  EXPECT_EQ(cache.hits(), 3u);
}

TEST(SectionCacheTest, WindowConfigMismatchNeverReplays) {
  // A summary recorded under one consume-window configuration must not
  // replay into a detector configured differently.
  vm::Program pop = ApQueuePop(kLock);
  vm::Program push = ApQueuePush(kLock);
  SectionCache cache(NoShadow());
  FlowDetector::Config wide;
  wide.post_window = 128;
  FlowDetector::Config narrow;
  narrow.post_window = 2;
  Universe u_wide(wide), u_narrow(narrow);
  for (Universe* u : {&u_wide, &u_narrow}) {
    for (int i = 0; i < 4; ++i) {
      vm::CpuState& cpu = u->cpus[0];
      cpu.regs[0] = kQueue;
      cpu.regs[1] = 9;
      cpu.regs[2] = 9;
      cache.Run(u->interp, push, 0, cpu, u->mem, &u->detector);
      vm::CpuState& con = u->cpus[3];
      con.regs[0] = kQueue;
      con.regs[5] = 0x2000;
      con.regs[6] = 0x2008;
      cache.Run(u->interp, pop, 3, con, u->mem, &u->detector);
    }
  }
  // Both universes share one cache and one program id, but the narrow
  // universe has its own interpreter (untranslated at first) and its
  // own dictionary; every replay it did must have been validated
  // against its own window config. Flows still come out right:
  EXPECT_EQ(u_wide.detector.flows_detected(), 4u);
  EXPECT_EQ(u_narrow.detector.flows_detected(), 4u);
}

TEST(SectionCacheTest, DemotionEquivalence) {
  // The allocator pattern: thread 0 both frees and allocates, so the
  // lock demotes mid-run. Cached and plain universes must agree on the
  // demotion point and everything after it.
  vm::Program mem_free = MemFree(kLock);
  vm::Program mem_alloc = MemAlloc(kLock);
  Universe cached, plain;
  SectionCache cache(NoShadow());
  for (int i = 0; i < 12; ++i) {
    const uint64_t block = 0x7000 + 0x100 * static_cast<uint64_t>(i % 3);
    for (Universe* u : {&cached, &plain}) {
      u->ctxts[0] = static_cast<CtxtId>(i + 1);
      vm::CpuState& cpu = u->cpus[0];
      cpu.regs[0] = 0x6000;
      cpu.regs[1] = block;
    }
    cache.Run(cached.interp, mem_free, 0, cached.cpus[0], cached.mem, &cached.detector);
    plain.interp.ExecuteWith(mem_free, 0, plain.cpus[0], plain.mem, &plain.detector);
    for (Universe* u : {&cached, &plain}) {
      u->cpus[0].regs[0] = 0x6000;
    }
    cache.Run(cached.interp, mem_alloc, 0, cached.cpus[0], cached.mem, &cached.detector);
    plain.interp.ExecuteWith(mem_alloc, 0, plain.cpus[0], plain.mem, &plain.detector);
  }
  ExpectSame(cached, plain);
  EXPECT_TRUE(cached.detector.IsDemoted(kLock));
}

TEST(SectionCacheTest, ShadowVerifyPassesOnHits) {
  SectionCache::Config cfg;
  cfg.shadow_verify = true;
  SectionCache cache(cfg);
  Universe u;
  vm::CpuState& cpu = u.cpus[0];
  cpu.regs[0] = kCounterAddr;
  vm::Program cnt = CounterIncrement(kLock);
  for (int i = 0; i < 10; ++i) {
    cache.Run(u.interp, cnt, 0, cpu, u.mem, &u.detector);
  }
  // Every hit re-ran the full emulation and compared; reaching here
  // means zero divergences. State is the authoritative run's.
  EXPECT_EQ(cache.hits(), 8u);
  EXPECT_EQ(u.mem.Read(kCounterAddr), 10u);
}

TEST(SectionCacheTest, DisabledCacheIsTransparent) {
  SectionCache::Config cfg;
  cfg.enabled = false;
  SectionCache cache(cfg);
  Universe cached, plain;
  vm::Program cnt = CounterIncrement(kLock);
  for (int i = 0; i < 5; ++i) {
    for (Universe* u : {&cached, &plain}) {
      u->cpus[0].regs[0] = kCounterAddr;
    }
    cache.Run(cached.interp, cnt, 0, cached.cpus[0], cached.mem, &cached.detector);
    plain.interp.ExecuteWith(cnt, 0, plain.cpus[0], plain.mem, &plain.detector);
  }
  EXPECT_EQ(cache.hits(), 0u);
  ExpectSame(cached, plain);
}

TEST(SectionCacheTest, ArchOnlyRunsCacheWithoutDetector) {
  // det == nullptr: pure architectural memoization (the Table 3
  // "emulate cached" regime without observation).
  SectionCache cache(NoShadow());
  vm::Interpreter interp;
  vm::Memory mem;
  vm::CpuState cpu;
  cpu.regs[0] = kQueue;
  vm::Program push = ApQueuePush(kLock);
  vm::Program pop = ApQueuePop(kLock);
  for (int i = 0; i < 20; ++i) {
    cpu.regs[1] = 40 + static_cast<uint64_t>(i);
    cpu.regs[2] = 50 + static_cast<uint64_t>(i);
    cpu.regs[5] = 0x2000;
    cpu.regs[6] = 0x2008;
    cache.Run(interp, push, 0, cpu, mem, nullptr);
    cache.Run(interp, pop, 0, cpu, mem, nullptr);
    // The popped payload is symbolic (MOV chain), so changing it never
    // causes a miss, and the replay must still deliver the live value.
    EXPECT_EQ(cpu.regs[7], 40 + static_cast<uint64_t>(i));
    EXPECT_EQ(cpu.regs[8], 50 + static_cast<uint64_t>(i));
  }
  EXPECT_GT(cache.hits(), 30u);
  EXPECT_EQ(mem.Read(kQueue), 0u);
}

TEST(SectionCacheTest, UncacheableSectionStaysCorrect) {
  // A section that ends still holding its lock is never summarized;
  // the cache must keep running it faithfully.
  vm::ProgramBuilder b("locked-tail");
  b.Lock(kLock);
  b.IncM(0, 0);
  b.Halt();
  vm::Program prog = b.Build();
  SectionCache cache(NoShadow());
  Universe u;
  vm::CpuState& cpu = u.cpus[0];
  cpu.regs[0] = kCounterAddr;
  for (int i = 0; i < 6; ++i) {
    cache.Run(u.interp, prog, 0, cpu, u.mem, &u.detector);
  }
  EXPECT_EQ(cache.hits(), 0u);
  EXPECT_EQ(u.mem.Read(kCounterAddr), 6u);
}

}  // namespace
}  // namespace whodunit::shm
