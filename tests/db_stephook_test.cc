// Per-step execution hooks and disk-time accounting in MiniDB.
#include <gtest/gtest.h>

#include <vector>

#include "src/db/database.h"
#include "src/sim/task.h"

namespace whodunit::db {
namespace {

using Kind = QueryStep::Kind;

struct Fixture {
  sim::Scheduler sched;
  sim::CpuResource cpu{sched, 1};
  Database database{sched, cpu, CostModel{}};
};

TEST(DbStepHookTest, HookSeesEveryStepWithItsCost) {
  Fixture f;
  f.database.CreateTable("t", 100, LockGranularity::kTableLocks);
  Query q{"q",
          {{Kind::kScan, "t", 100},
           {Kind::kSort, "", 50},
           {Kind::kUpdateRow, "t", 1, 3}}};
  std::vector<std::pair<Kind, sim::SimTime>> seen;
  sim::Spawn(f.sched, [](Fixture& fx, Query qq,
                         std::vector<std::pair<Kind, sim::SimTime>>& log) -> sim::Process {
    co_await fx.database.Execute(qq, 1, nullptr,
                                 [&log](const QueryStep& step, sim::SimTime c) {
                                   log.emplace_back(step.kind, c);
                                   return c;
                                 });
  }(f, q, seen));
  f.sched.Run();
  ASSERT_EQ(seen.size(), 3u);
  EXPECT_EQ(seen[0].first, Kind::kScan);
  EXPECT_EQ(seen[0].second, f.database.StepCost(q.steps[0]));
  EXPECT_EQ(seen[1].first, Kind::kSort);
  EXPECT_EQ(seen[2].first, Kind::kUpdateRow);
}

TEST(DbStepHookTest, HookControlsConsumedCost) {
  Fixture f;
  f.database.CreateTable("t", 100, LockGranularity::kTableLocks);
  Query q{"q", {{Kind::kScan, "t", 1000}}};
  sim::Spawn(f.sched, [](Fixture& fx, Query qq) -> sim::Process {
    co_await fx.database.Execute(qq, 1, nullptr,
                                 [](const QueryStep&, sim::SimTime c) { return c * 2; });
  }(f, q));
  f.sched.Run();
  // Fixed cost unhooked + doubled step cost.
  EXPECT_EQ(f.cpu.busy_time(),
            f.database.costs().fixed_per_query + 2 * f.database.StepCost(q.steps[0]));
}

TEST(DbStepHookTest, StepCostsSumToEstimate) {
  Fixture f;
  Query q{"q",
          {{Kind::kScan, "t", 123},
           {Kind::kSort, "", 77},
           {Kind::kTempTable, "", 10},
           {Kind::kPointRead, "t", 1},
           {Kind::kUpdateRow, "t", 1, 0}}};
  sim::SimTime sum = f.database.costs().fixed_per_query;
  for (const QueryStep& s : q.steps) {
    sum += f.database.StepCost(s);
  }
  EXPECT_EQ(sum, f.database.EstimateCost(q));
}

TEST(DbStepHookTest, DiskTimeOnlyFromScans) {
  Fixture f;
  Query scan_heavy{"a", {{Kind::kScan, "t", 10000}, {Kind::kSort, "", 10000}}};
  Query cpu_only{"b", {{Kind::kSort, "", 10000}, {Kind::kPointRead, "t", 1}}};
  EXPECT_EQ(f.database.EstimateDiskTime(scan_heavy),
            10000 * f.database.costs().per_row_disk);
  EXPECT_EQ(f.database.EstimateDiskTime(cpu_only), 0);
}

}  // namespace
}  // namespace whodunit::db
