// Integration tests for the TPC-W rig (paper §8.4, §9.1; Tables 1-2,
// Figures 11-12).
#include "src/apps/bookstore/bookstore.h"

#include <gtest/gtest.h>

namespace whodunit::apps {
namespace {

using workload::TpcwTransaction;

BookstoreOptions SmallRun() {
  BookstoreOptions o;
  o.clients = 100;
  o.duration = sim::Seconds(600);
  o.warmup = sim::Seconds(120);
  o.seed = 5;
  return o;
}

const BookstorePerType& Row(const BookstoreResult& r, TpcwTransaction t) {
  return r.per_type[static_cast<size_t>(t)];
}

TEST(BookstoreTest, ServesBrowsingMix) {
  BookstoreResult r = RunBookstore(SmallRun());
  EXPECT_GT(r.interactions, 3000u);
  EXPECT_GT(r.throughput_tpm, 400.0);
  // Frequent interactions present in roughly mix proportion.
  EXPECT_GT(Row(r, TpcwTransaction::kHome).count, Row(r, TpcwTransaction::kBestSellers).count);
  EXPECT_GT(Row(r, TpcwTransaction::kBestSellers).count, 100u);
}

TEST(BookstoreTest, Table1CpuSharesShape) {
  // Table 1's regime: BestSellers and SearchResult dominate MySQL CPU
  // (paper: 51.50% and 43.28%), everything else is small.
  BookstoreResult r = RunBookstore(SmallRun());
  const double best = Row(r, TpcwTransaction::kBestSellers).db_cpu_percent;
  const double search = Row(r, TpcwTransaction::kSearchResult).db_cpu_percent;
  EXPECT_GT(best, 40.0);
  EXPECT_LT(best, 65.0);
  EXPECT_GT(search, 30.0);
  EXPECT_LT(search, 55.0);
  EXPECT_GT(best, search);
  EXPECT_GT(best + search, 85.0);
  EXPECT_LT(Row(r, TpcwTransaction::kHome).db_cpu_percent, 2.0);
  EXPECT_LT(Row(r, TpcwTransaction::kAdminRequest).db_cpu_percent, 0.1);
}

TEST(BookstoreTest, LabelDerivedSharesMatchGroundTruth) {
  // Whodunit derives per-transaction DB CPU from CCT labels; it must
  // agree with direct accounting (the whole point of the mechanism).
  BookstoreResult r = RunBookstore(SmallRun());
  for (int t = 0; t < workload::kTpcwTransactionCount; ++t) {
    const auto& row = r.per_type[static_cast<size_t>(t)];
    EXPECT_NEAR(row.db_cpu_percent, row.db_cpu_percent_ground, 2.5)
        << workload::TpcwName(static_cast<TpcwTransaction>(t));
  }
}

TEST(BookstoreTest, AdminConfirmHasWorstCrosstalk) {
  // Table 1: AdminConfirm's mean crosstalk wait (93.76 ms) is the
  // maximum across all transactions, caused by its exclusive lock on
  // the MyISAM item table.
  BookstoreOptions o = SmallRun();
  o.duration = sim::Seconds(2400);  // enough AdminConfirm instances
  BookstoreResult r = RunBookstore(o);
  const double admin = Row(r, TpcwTransaction::kAdminConfirm).mean_crosstalk_ms;
  EXPECT_GT(admin, 20.0);
  for (int t = 0; t < workload::kTpcwTransactionCount; ++t) {
    if (static_cast<TpcwTransaction>(t) == TpcwTransaction::kAdminConfirm) {
      continue;
    }
    EXPECT_GE(admin, r.per_type[static_cast<size_t>(t)].mean_crosstalk_ms)
        << workload::TpcwName(static_cast<TpcwTransaction>(t));
  }
  EXPECT_NE(r.crosstalk_text.find("AdminConfirm"), std::string::npos);
}

TEST(BookstoreTest, InnodbEliminatesAdminConfirmCrosstalk) {
  // Figure 11's mechanism: converting `item` to row locks removes
  // AdminConfirm's table-lock waits entirely (readers are MVCC).
  BookstoreOptions o = SmallRun();
  // AdminConfirm is 0.09% of the mix: a long run is needed before its
  // mean response time is statistically meaningful.
  o.duration = sim::Seconds(9600);
  BookstoreResult myisam = RunBookstore(o);
  o.item_granularity = db::LockGranularity::kRowLocks;
  BookstoreResult innodb = RunBookstore(o);
  EXPECT_LT(Row(innodb, TpcwTransaction::kAdminConfirm).mean_crosstalk_ms,
            Row(myisam, TpcwTransaction::kAdminConfirm).mean_crosstalk_ms * 0.2);
  // The paper measures a 640 ms -> 550 ms response-time win. In our
  // non-preemptive FIFO CPU model the lock-wait saving is partially
  // offset by losing MyISAM's incidental admission control (blocked
  // readers vacate the CPU queue), so the end-to-end latency effect is
  // within queueing noise — EXPERIMENTS.md records this as a known
  // deviation. Assert the response time does not materially regress.
  EXPECT_LT(Row(innodb, TpcwTransaction::kAdminConfirm).mean_response_ms,
            Row(myisam, TpcwTransaction::kAdminConfirm).mean_response_ms * 1.15);
}

TEST(BookstoreTest, CachingSlashesBestSellersResponse) {
  // Figure 11: result caching cuts BestSellers/SearchResult response
  // times dramatically.
  BookstoreOptions o = SmallRun();
  BookstoreResult plain = RunBookstore(o);
  o.servlet_caching = true;
  BookstoreResult cached = RunBookstore(o);
  EXPECT_LT(Row(cached, TpcwTransaction::kBestSellers).mean_response_ms,
            Row(plain, TpcwTransaction::kBestSellers).mean_response_ms * 0.5);
  EXPECT_LT(Row(cached, TpcwTransaction::kSearchResult).mean_response_ms,
            Row(plain, TpcwTransaction::kSearchResult).mean_response_ms * 0.5);
}

TEST(BookstoreTest, CachingLiftsSaturatedThroughput) {
  // Figure 12: at high client counts the no-cache configuration is
  // DB-bound; caching raises throughput by roughly 3x.
  BookstoreOptions o = SmallRun();
  o.clients = 450;
  BookstoreResult plain = RunBookstore(o);
  o.servlet_caching = true;
  BookstoreResult cached = RunBookstore(o);
  EXPECT_GT(cached.throughput_tpm, plain.throughput_tpm * 2.0);
  EXPECT_LT(cached.throughput_tpm, plain.throughput_tpm * 4.5);
}

TEST(BookstoreTest, ContextBytesAreSmallFractionOfData) {
  // §9.1: ~1% communication overhead (0.95 MB of synopses vs 92.52 MB
  // of application data).
  BookstoreResult r = RunBookstore(SmallRun());
  EXPECT_GT(r.context_bytes, 0u);
  EXPECT_LT(static_cast<double>(r.context_bytes),
            0.02 * static_cast<double>(r.payload_bytes));
}

TEST(BookstoreTest, ProfilerOverheadOrdering) {
  // Table 2: none >= csprof ~ whodunit >> gprof.
  BookstoreOptions o = SmallRun();
  o.clients = 300;  // saturated: throughput == capacity
  o.duration = sim::Seconds(900);
  o.mode = callpath::ProfilerMode::kNone;
  const double none = RunBookstore(o).throughput_tpm;
  o.mode = callpath::ProfilerMode::kCsprof;
  const double csprof = RunBookstore(o).throughput_tpm;
  o.mode = callpath::ProfilerMode::kWhodunit;
  const double whodunit = RunBookstore(o).throughput_tpm;
  o.mode = callpath::ProfilerMode::kGprof;
  const double gprof = RunBookstore(o).throughput_tpm;

  EXPECT_GE(none * 1.01, csprof);
  EXPECT_GE(csprof * 1.02, whodunit);  // Whodunit within a hair of csprof
  EXPECT_LT(gprof, none * 0.90);       // gprof clearly worse (paper: -24%)
  EXPECT_GT(gprof, none * 0.50);
}

TEST(BookstoreTest, NoProfilingMeansNoContextBytes) {
  BookstoreOptions o = SmallRun();
  o.mode = callpath::ProfilerMode::kNone;
  BookstoreResult r = RunBookstore(o);
  EXPECT_EQ(r.context_bytes, 0u);
  EXPECT_GT(r.interactions, 1000u);
}

TEST(BookstoreTest, StitcherConnectsAllThreeStages) {
  BookstoreResult r = RunBookstore(SmallRun());
  // The Figure 7-style stitched profile names all stages and recovers
  // request edges squid -> tomcat -> mysql.
  EXPECT_NE(r.stitched_text.find("stage 'squid'"), std::string::npos);
  EXPECT_NE(r.stitched_text.find("stage 'tomcat'"), std::string::npos);
  EXPECT_NE(r.stitched_text.find("stage 'mysql'"), std::string::npos);
  EXPECT_NE(r.stitched_text.find("squid (origin) --"), std::string::npos);
  EXPECT_NE(r.stitched_text.find("--> mysql"), std::string::npos);
  // And the Graphviz form is present.
  EXPECT_NE(r.stitched_dot.find("digraph whodunit"), std::string::npos);
  EXPECT_NE(r.stitched_dot.find("style=dashed"), std::string::npos);
}

TEST(BookstoreTest, MysqlSharedMemoryYieldsNoFlows) {
  // §8.1 inside the full rig: the flow detector watches the DB's own
  // critical sections during the profiled run. The shared counter and
  // the read/write row-buffer traffic must yield no transaction flow,
  // and the buffer resource is demoted once threads appear on both
  // role lists.
  BookstoreResult r = RunBookstore(SmallRun());
  EXPECT_EQ(r.db_shm_flows, 0u);
  EXPECT_TRUE(r.db_shared_state_demoted);
}

TEST(BookstoreTest, BottleneckMovesWithCaching) {
  // Figure 12's mechanism: without caching the DB CPU saturates; with
  // caching the database relaxes and the app server becomes the
  // constraint.
  BookstoreOptions o = SmallRun();
  o.clients = 400;
  o.duration = sim::Seconds(900);
  BookstoreResult plain = RunBookstore(o);
  EXPECT_GT(plain.db_utilization, 0.9);
  EXPECT_LT(plain.tomcat_utilization, 0.6);

  o.servlet_caching = true;
  BookstoreResult cached = RunBookstore(o);
  EXPECT_LT(cached.db_utilization, 0.6);
  EXPECT_GT(cached.tomcat_utilization, plain.tomcat_utilization * 1.5);
}

TEST(BookstoreTest, Deterministic) {
  BookstoreResult a = RunBookstore(SmallRun());
  BookstoreResult b = RunBookstore(SmallRun());
  EXPECT_EQ(a.interactions, b.interactions);
  EXPECT_DOUBLE_EQ(a.throughput_tpm, b.throughput_tpm);
  EXPECT_DOUBLE_EQ(Row(a, TpcwTransaction::kBestSellers).db_cpu_percent,
                   Row(b, TpcwTransaction::kBestSellers).db_cpu_percent);
}

}  // namespace
}  // namespace whodunit::apps
