// Integration tests for the Squid stand-in (paper §8.2, Figure 9).
#include "src/apps/miniproxy/miniproxy.h"

#include <gtest/gtest.h>

namespace whodunit::apps {
namespace {

MiniproxyOptions SmallRun(callpath::ProfilerMode mode) {
  MiniproxyOptions o;
  o.mode = mode;
  o.clients = 24;
  o.duration = sim::Seconds(6);
  o.seed = 11;
  return o;
}

TEST(MiniproxyTest, ServesWithHitsAndMisses) {
  MiniproxyResult r = RunMiniproxy(SmallRun(callpath::ProfilerMode::kWhodunit));
  EXPECT_GT(r.requests, 200u);
  EXPECT_GT(r.cache_hits, 10u);
  EXPECT_GT(r.cache_misses, 10u);
  EXPECT_GT(r.hit_ratio, 0.2);
  EXPECT_LT(r.hit_ratio, 0.98);
  EXPECT_GT(r.throughput_mbps, 1.0);
}

TEST(MiniproxyTest, WriteHandlerAppearsInTwoContexts) {
  // Figure 9's headline: commHandleWrite runs under exactly two
  // transaction contexts — after [httpAccept, clientReadRequest]
  // (cache hit), and after [... httpReadReply] (cache miss).
  MiniproxyResult r = RunMiniproxy(SmallRun(callpath::ProfilerMode::kWhodunit));
  EXPECT_EQ(r.write_handler_context_count, 2u);
  EXPECT_GT(r.hit_path_share, 1.0);
  EXPECT_GT(r.miss_path_share, 1.0);
  // The profile names Squid's handlers.
  EXPECT_NE(r.profile_text.find("httpAccept"), std::string::npos);
  EXPECT_NE(r.profile_text.find("clientReadRequest"), std::string::npos);
  EXPECT_NE(r.profile_text.find("commConnectHandle"), std::string::npos);
  EXPECT_NE(r.profile_text.find("httpReadReply"), std::string::npos);
  EXPECT_NE(r.profile_text.find("commHandleWrite"), std::string::npos);
}

TEST(MiniproxyTest, ProfilingOverheadSmall) {
  // §9.3: Squid's throughput drops ~5.5% under Whodunit.
  MiniproxyResult off = RunMiniproxy(SmallRun(callpath::ProfilerMode::kNone));
  MiniproxyResult on = RunMiniproxy(SmallRun(callpath::ProfilerMode::kWhodunit));
  EXPECT_LE(on.throughput_mbps, off.throughput_mbps);
  EXPECT_GT(on.throughput_mbps, off.throughput_mbps * 0.85);
}

TEST(MiniproxyTest, UnprofiledRunTracksNoContexts) {
  MiniproxyResult r = RunMiniproxy(SmallRun(callpath::ProfilerMode::kNone));
  EXPECT_EQ(r.write_handler_context_count, 0u);
}

TEST(MiniproxyTest, Deterministic) {
  MiniproxyResult a = RunMiniproxy(SmallRun(callpath::ProfilerMode::kWhodunit));
  MiniproxyResult b = RunMiniproxy(SmallRun(callpath::ProfilerMode::kWhodunit));
  EXPECT_EQ(a.requests, b.requests);
  EXPECT_EQ(a.cache_hits, b.cache_hits);
  EXPECT_DOUBLE_EQ(a.throughput_mbps, b.throughput_mbps);
}

}  // namespace
}  // namespace whodunit::apps
