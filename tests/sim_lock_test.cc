#include "src/sim/lock.h"

#include <gtest/gtest.h>

#include <vector>

#include "src/sim/task.h"

namespace whodunit::sim {
namespace {

struct Recorded {
  uint64_t waiter;
  uint64_t blocker;
  SimTime wait;
};

class RecordingObserver : public LockObserver {
 public:
  void OnAcquired(const SimMutex&, uint64_t waiter_tag, uint64_t blocking_tag,
                  SimTime wait) override {
    acquired.push_back({waiter_tag, blocking_tag, wait});
  }
  void OnReleased(const SimMutex&, uint64_t holder_tag) override {
    released.push_back(holder_tag);
  }

  std::vector<Recorded> acquired;
  std::vector<uint64_t> released;
};

Process HoldFor(Scheduler& sched, SimMutex& m, uint64_t tag, SimTime hold) {
  co_await m.Acquire(tag);
  co_await Delay{sched, hold};
  m.Release(tag);
}

TEST(SimMutexTest, UncontendedAcquireIsImmediate) {
  Scheduler s;
  SimMutex m(s);
  RecordingObserver obs;
  m.set_observer(&obs);
  Spawn(s, HoldFor(s, m, 1, 10));
  s.Run();
  ASSERT_EQ(obs.acquired.size(), 1u);
  EXPECT_EQ(obs.acquired[0].wait, 0);
  EXPECT_EQ(obs.acquired[0].blocker, LockObserver::kNoTag);
  EXPECT_FALSE(m.held());
  EXPECT_EQ(m.acquire_count(), 1u);
  EXPECT_EQ(m.contended_count(), 0u);
}

TEST(SimMutexTest, ExclusiveContentionWaitsAndRecordsBlocker) {
  Scheduler s;
  SimMutex m(s);
  RecordingObserver obs;
  m.set_observer(&obs);
  Spawn(s, HoldFor(s, m, 100, 50));
  SpawnAfter(s, 10, HoldFor(s, m, 200, 5));
  s.Run();
  ASSERT_EQ(obs.acquired.size(), 2u);
  EXPECT_EQ(obs.acquired[1].waiter, 200u);
  EXPECT_EQ(obs.acquired[1].blocker, 100u);
  EXPECT_EQ(obs.acquired[1].wait, 40);  // waited from t=10 to t=50
  EXPECT_EQ(m.total_wait(), 40);
  EXPECT_EQ(m.contended_count(), 1u);
}

TEST(SimMutexTest, FifoOrderingAmongWaiters) {
  Scheduler s;
  SimMutex m(s);
  RecordingObserver obs;
  m.set_observer(&obs);
  Spawn(s, HoldFor(s, m, 1, 100));
  SpawnAfter(s, 10, HoldFor(s, m, 2, 10));
  SpawnAfter(s, 20, HoldFor(s, m, 3, 10));
  SpawnAfter(s, 30, HoldFor(s, m, 4, 10));
  s.Run();
  ASSERT_EQ(obs.acquired.size(), 4u);
  EXPECT_EQ(obs.acquired[1].waiter, 2u);
  EXPECT_EQ(obs.acquired[2].waiter, 3u);
  EXPECT_EQ(obs.acquired[3].waiter, 4u);
}

Process HoldShared(Scheduler& sched, SimMutex& m, uint64_t tag, SimTime hold,
                   std::vector<SimTime>* acquire_times) {
  co_await m.Acquire(tag, LockMode::kShared);
  acquire_times->push_back(sched.now());
  co_await Delay{sched, hold};
  m.Release(tag);
}

TEST(SimMutexTest, SharedHoldersOverlap) {
  Scheduler s;
  SimMutex m(s);
  std::vector<SimTime> times;
  Spawn(s, HoldShared(s, m, 1, 100, &times));
  SpawnAfter(s, 10, HoldShared(s, m, 2, 100, &times));
  s.Run();
  ASSERT_EQ(times.size(), 2u);
  EXPECT_EQ(times[0], 0);
  EXPECT_EQ(times[1], 10);  // no waiting: both shared
  EXPECT_EQ(s.now(), 110);
}

TEST(SimMutexTest, ExclusiveWaitsForAllSharedHolders) {
  Scheduler s;
  SimMutex m(s);
  RecordingObserver obs;
  m.set_observer(&obs);
  std::vector<SimTime> times;
  Spawn(s, HoldShared(s, m, 1, 50, &times));
  SpawnAfter(s, 5, HoldShared(s, m, 2, 100, &times));
  SpawnAfter(s, 10, HoldFor(s, m, 3, 10));
  s.Run();
  // Exclusive tag 3 must wait until t=105 when the second reader exits.
  ASSERT_EQ(obs.acquired.size(), 3u);
  EXPECT_EQ(obs.acquired[2].waiter, 3u);
  EXPECT_EQ(obs.acquired[2].wait, 95);
}

TEST(SimMutexTest, SharedBehindExclusiveDoesNotOvertake) {
  Scheduler s;
  SimMutex m(s);
  RecordingObserver obs;
  m.set_observer(&obs);
  std::vector<SimTime> times;
  Spawn(s, HoldShared(s, m, 1, 100, &times));   // reader holds 0..100
  SpawnAfter(s, 10, HoldFor(s, m, 2, 10));      // writer queued at 10
  SpawnAfter(s, 20, HoldShared(s, m, 3, 10, &times));  // reader queued at 20
  s.Run();
  ASSERT_EQ(times.size(), 2u);
  EXPECT_EQ(times[0], 0);
  // FIFO: the writer runs 100..110, the second reader starts at 110.
  EXPECT_EQ(times[1], 110);
}

TEST(SimMutexTest, SharedBatchGrantedTogether) {
  Scheduler s;
  SimMutex m(s);
  std::vector<SimTime> times;
  Spawn(s, HoldFor(s, m, 1, 50));
  SpawnAfter(s, 10, HoldShared(s, m, 2, 20, &times));
  SpawnAfter(s, 11, HoldShared(s, m, 3, 20, &times));
  s.Run();
  ASSERT_EQ(times.size(), 2u);
  EXPECT_EQ(times[0], 50);
  EXPECT_EQ(times[1], 50);  // both readers granted together at release
}

Process ScopedUser(Scheduler& sched, SimMutex& m, uint64_t tag, SimTime hold) {
  LockGuard g = co_await m.AcquireScoped(tag);
  co_await Delay{sched, hold};
  // g releases on scope exit
}

TEST(SimMutexTest, LockGuardReleasesOnScopeExit) {
  Scheduler s;
  SimMutex m(s);
  Spawn(s, ScopedUser(s, m, 1, 25));
  SpawnAfter(s, 5, ScopedUser(s, m, 2, 25));
  s.Run();
  EXPECT_FALSE(m.held());
  EXPECT_EQ(s.now(), 50);
  EXPECT_EQ(m.acquire_count(), 2u);
}

TEST(SimMutexTest, DistinctLocksHaveDistinctIds) {
  Scheduler s;
  SimMutex a(s, "a"), b(s, "b");
  EXPECT_NE(a.id(), b.id());
  EXPECT_EQ(a.name(), "a");
}

}  // namespace
}  // namespace whodunit::sim
