# Empty compiler generated dependencies file for bench_sec92_apache_overhead.
# This may be replaced when dependencies are built.
