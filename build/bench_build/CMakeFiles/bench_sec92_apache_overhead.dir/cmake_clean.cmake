file(REMOVE_RECURSE
  "../bench/bench_sec92_apache_overhead"
  "../bench/bench_sec92_apache_overhead.pdb"
  "CMakeFiles/bench_sec92_apache_overhead.dir/bench_sec92_apache_overhead.cc.o"
  "CMakeFiles/bench_sec92_apache_overhead.dir/bench_sec92_apache_overhead.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_sec92_apache_overhead.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
