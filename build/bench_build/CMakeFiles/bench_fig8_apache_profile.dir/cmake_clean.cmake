file(REMOVE_RECURSE
  "../bench/bench_fig8_apache_profile"
  "../bench/bench_fig8_apache_profile.pdb"
  "CMakeFiles/bench_fig8_apache_profile.dir/bench_fig8_apache_profile.cc.o"
  "CMakeFiles/bench_fig8_apache_profile.dir/bench_fig8_apache_profile.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig8_apache_profile.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
