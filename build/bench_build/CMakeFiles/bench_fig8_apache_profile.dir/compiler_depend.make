# Empty compiler generated dependencies file for bench_fig8_apache_profile.
# This may be replaced when dependencies are built.
