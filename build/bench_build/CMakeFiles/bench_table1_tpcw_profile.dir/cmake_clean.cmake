file(REMOVE_RECURSE
  "../bench/bench_table1_tpcw_profile"
  "../bench/bench_table1_tpcw_profile.pdb"
  "CMakeFiles/bench_table1_tpcw_profile.dir/bench_table1_tpcw_profile.cc.o"
  "CMakeFiles/bench_table1_tpcw_profile.dir/bench_table1_tpcw_profile.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table1_tpcw_profile.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
