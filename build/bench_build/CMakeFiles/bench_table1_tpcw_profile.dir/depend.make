# Empty dependencies file for bench_table1_tpcw_profile.
# This may be replaced when dependencies are built.
