# Empty dependencies file for bench_sec93_proxy_seda_overhead.
# This may be replaced when dependencies are built.
