file(REMOVE_RECURSE
  "../bench/bench_sec93_proxy_seda_overhead"
  "../bench/bench_sec93_proxy_seda_overhead.pdb"
  "CMakeFiles/bench_sec93_proxy_seda_overhead.dir/bench_sec93_proxy_seda_overhead.cc.o"
  "CMakeFiles/bench_sec93_proxy_seda_overhead.dir/bench_sec93_proxy_seda_overhead.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_sec93_proxy_seda_overhead.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
