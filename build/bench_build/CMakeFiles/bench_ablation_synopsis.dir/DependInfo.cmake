
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/bench/bench_ablation_synopsis.cc" "bench_build/CMakeFiles/bench_ablation_synopsis.dir/bench_ablation_synopsis.cc.o" "gcc" "bench_build/CMakeFiles/bench_ablation_synopsis.dir/bench_ablation_synopsis.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/apps/CMakeFiles/whodunit_apps.dir/DependInfo.cmake"
  "/root/repo/build/src/profiler/CMakeFiles/whodunit_profiler.dir/DependInfo.cmake"
  "/root/repo/build/src/callpath/CMakeFiles/whodunit_callpath.dir/DependInfo.cmake"
  "/root/repo/build/src/shm/CMakeFiles/whodunit_shm.dir/DependInfo.cmake"
  "/root/repo/build/src/vm/CMakeFiles/whodunit_vm.dir/DependInfo.cmake"
  "/root/repo/build/src/events/CMakeFiles/whodunit_events.dir/DependInfo.cmake"
  "/root/repo/build/src/seda/CMakeFiles/whodunit_seda.dir/DependInfo.cmake"
  "/root/repo/build/src/crosstalk/CMakeFiles/whodunit_crosstalk.dir/DependInfo.cmake"
  "/root/repo/build/src/workload/CMakeFiles/whodunit_workload.dir/DependInfo.cmake"
  "/root/repo/build/src/db/CMakeFiles/whodunit_db.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/whodunit_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/context/CMakeFiles/whodunit_context.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/whodunit_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
