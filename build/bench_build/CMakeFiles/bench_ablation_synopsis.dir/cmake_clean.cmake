file(REMOVE_RECURSE
  "../bench/bench_ablation_synopsis"
  "../bench/bench_ablation_synopsis.pdb"
  "CMakeFiles/bench_ablation_synopsis.dir/bench_ablation_synopsis.cc.o"
  "CMakeFiles/bench_ablation_synopsis.dir/bench_ablation_synopsis.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_synopsis.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
