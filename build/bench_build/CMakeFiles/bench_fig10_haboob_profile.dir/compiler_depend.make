# Empty compiler generated dependencies file for bench_fig10_haboob_profile.
# This may be replaced when dependencies are built.
