# Empty dependencies file for bench_fig9_squid_profile.
# This may be replaced when dependencies are built.
