file(REMOVE_RECURSE
  "../bench/bench_table3_emulation"
  "../bench/bench_table3_emulation.pdb"
  "CMakeFiles/bench_table3_emulation.dir/bench_table3_emulation.cc.o"
  "CMakeFiles/bench_table3_emulation.dir/bench_table3_emulation.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table3_emulation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
