# Empty dependencies file for shared_memory_flow.
# This may be replaced when dependencies are built.
