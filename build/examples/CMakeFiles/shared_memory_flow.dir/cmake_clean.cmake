file(REMOVE_RECURSE
  "CMakeFiles/shared_memory_flow.dir/shared_memory_flow.cpp.o"
  "CMakeFiles/shared_memory_flow.dir/shared_memory_flow.cpp.o.d"
  "shared_memory_flow"
  "shared_memory_flow.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/shared_memory_flow.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
