
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/examples/shared_memory_flow.cpp" "examples/CMakeFiles/shared_memory_flow.dir/shared_memory_flow.cpp.o" "gcc" "examples/CMakeFiles/shared_memory_flow.dir/shared_memory_flow.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/shm/CMakeFiles/whodunit_shm.dir/DependInfo.cmake"
  "/root/repo/build/src/vm/CMakeFiles/whodunit_vm.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/whodunit_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
