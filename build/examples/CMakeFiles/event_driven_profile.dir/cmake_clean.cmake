file(REMOVE_RECURSE
  "CMakeFiles/event_driven_profile.dir/event_driven_profile.cpp.o"
  "CMakeFiles/event_driven_profile.dir/event_driven_profile.cpp.o.d"
  "event_driven_profile"
  "event_driven_profile.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/event_driven_profile.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
