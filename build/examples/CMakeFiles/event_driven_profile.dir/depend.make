# Empty dependencies file for event_driven_profile.
# This may be replaced when dependencies are built.
