# Empty dependencies file for offline_report.
# This may be replaced when dependencies are built.
