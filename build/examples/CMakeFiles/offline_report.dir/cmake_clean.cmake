file(REMOVE_RECURSE
  "CMakeFiles/offline_report.dir/offline_report.cpp.o"
  "CMakeFiles/offline_report.dir/offline_report.cpp.o.d"
  "offline_report"
  "offline_report.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/offline_report.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
