# Empty compiler generated dependencies file for bookstore_tuning.
# This may be replaced when dependencies are built.
