file(REMOVE_RECURSE
  "CMakeFiles/bookstore_tuning.dir/bookstore_tuning.cpp.o"
  "CMakeFiles/bookstore_tuning.dir/bookstore_tuning.cpp.o.d"
  "bookstore_tuning"
  "bookstore_tuning.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bookstore_tuning.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
