# Empty compiler generated dependencies file for gprof_report_test.
# This may be replaced when dependencies are built.
