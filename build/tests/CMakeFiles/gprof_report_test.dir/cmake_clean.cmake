file(REMOVE_RECURSE
  "CMakeFiles/gprof_report_test.dir/gprof_report_test.cc.o"
  "CMakeFiles/gprof_report_test.dir/gprof_report_test.cc.o.d"
  "gprof_report_test"
  "gprof_report_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gprof_report_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
