# Empty compiler generated dependencies file for callpath_paths_test.
# This may be replaced when dependencies are built.
