file(REMOVE_RECURSE
  "CMakeFiles/callpath_paths_test.dir/callpath_paths_test.cc.o"
  "CMakeFiles/callpath_paths_test.dir/callpath_paths_test.cc.o.d"
  "callpath_paths_test"
  "callpath_paths_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/callpath_paths_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
