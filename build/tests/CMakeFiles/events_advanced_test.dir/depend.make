# Empty dependencies file for events_advanced_test.
# This may be replaced when dependencies are built.
