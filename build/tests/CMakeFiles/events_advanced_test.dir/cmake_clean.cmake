file(REMOVE_RECURSE
  "CMakeFiles/events_advanced_test.dir/events_advanced_test.cc.o"
  "CMakeFiles/events_advanced_test.dir/events_advanced_test.cc.o.d"
  "events_advanced_test"
  "events_advanced_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/events_advanced_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
