file(REMOVE_RECURSE
  "CMakeFiles/crosstalk_test.dir/crosstalk_test.cc.o"
  "CMakeFiles/crosstalk_test.dir/crosstalk_test.cc.o.d"
  "crosstalk_test"
  "crosstalk_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/crosstalk_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
