# Empty compiler generated dependencies file for crosstalk_test.
# This may be replaced when dependencies are built.
