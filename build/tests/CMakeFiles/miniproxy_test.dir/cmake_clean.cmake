file(REMOVE_RECURSE
  "CMakeFiles/miniproxy_test.dir/miniproxy_test.cc.o"
  "CMakeFiles/miniproxy_test.dir/miniproxy_test.cc.o.d"
  "miniproxy_test"
  "miniproxy_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/miniproxy_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
