# Empty dependencies file for miniproxy_test.
# This may be replaced when dependencies are built.
