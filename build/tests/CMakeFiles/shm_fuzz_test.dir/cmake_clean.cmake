file(REMOVE_RECURSE
  "CMakeFiles/shm_fuzz_test.dir/shm_fuzz_test.cc.o"
  "CMakeFiles/shm_fuzz_test.dir/shm_fuzz_test.cc.o.d"
  "shm_fuzz_test"
  "shm_fuzz_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/shm_fuzz_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
