# Empty compiler generated dependencies file for callpath_cct_test.
# This may be replaced when dependencies are built.
