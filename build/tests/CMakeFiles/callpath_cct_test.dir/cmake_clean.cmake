file(REMOVE_RECURSE
  "CMakeFiles/callpath_cct_test.dir/callpath_cct_test.cc.o"
  "CMakeFiles/callpath_cct_test.dir/callpath_cct_test.cc.o.d"
  "callpath_cct_test"
  "callpath_cct_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/callpath_cct_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
