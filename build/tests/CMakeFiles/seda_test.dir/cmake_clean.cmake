file(REMOVE_RECURSE
  "CMakeFiles/seda_test.dir/seda_test.cc.o"
  "CMakeFiles/seda_test.dir/seda_test.cc.o.d"
  "seda_test"
  "seda_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/seda_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
