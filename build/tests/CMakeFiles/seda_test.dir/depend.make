# Empty dependencies file for seda_test.
# This may be replaced when dependencies are built.
