# Empty compiler generated dependencies file for workload_webtrace_test.
# This may be replaced when dependencies are built.
