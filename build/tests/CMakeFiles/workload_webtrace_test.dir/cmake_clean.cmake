file(REMOVE_RECURSE
  "CMakeFiles/workload_webtrace_test.dir/workload_webtrace_test.cc.o"
  "CMakeFiles/workload_webtrace_test.dir/workload_webtrace_test.cc.o.d"
  "workload_webtrace_test"
  "workload_webtrace_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/workload_webtrace_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
