file(REMOVE_RECURSE
  "CMakeFiles/sim_lock_test.dir/sim_lock_test.cc.o"
  "CMakeFiles/sim_lock_test.dir/sim_lock_test.cc.o.d"
  "sim_lock_test"
  "sim_lock_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sim_lock_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
