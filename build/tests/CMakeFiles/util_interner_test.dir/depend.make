# Empty dependencies file for util_interner_test.
# This may be replaced when dependencies are built.
