file(REMOVE_RECURSE
  "CMakeFiles/util_interner_test.dir/util_interner_test.cc.o"
  "CMakeFiles/util_interner_test.dir/util_interner_test.cc.o.d"
  "util_interner_test"
  "util_interner_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/util_interner_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
