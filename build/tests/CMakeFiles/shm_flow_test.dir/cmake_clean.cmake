file(REMOVE_RECURSE
  "CMakeFiles/shm_flow_test.dir/shm_flow_test.cc.o"
  "CMakeFiles/shm_flow_test.dir/shm_flow_test.cc.o.d"
  "shm_flow_test"
  "shm_flow_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/shm_flow_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
