# Empty dependencies file for minihttpd_test.
# This may be replaced when dependencies are built.
