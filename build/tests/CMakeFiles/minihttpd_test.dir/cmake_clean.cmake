file(REMOVE_RECURSE
  "CMakeFiles/minihttpd_test.dir/minihttpd_test.cc.o"
  "CMakeFiles/minihttpd_test.dir/minihttpd_test.cc.o.d"
  "minihttpd_test"
  "minihttpd_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/minihttpd_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
