file(REMOVE_RECURSE
  "CMakeFiles/vm_property_test.dir/vm_property_test.cc.o"
  "CMakeFiles/vm_property_test.dir/vm_property_test.cc.o.d"
  "vm_property_test"
  "vm_property_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/vm_property_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
