# Empty dependencies file for vm_property_test.
# This may be replaced when dependencies are built.
