# Empty dependencies file for context_property_test.
# This may be replaced when dependencies are built.
