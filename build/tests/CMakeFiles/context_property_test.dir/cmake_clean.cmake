file(REMOVE_RECURSE
  "CMakeFiles/context_property_test.dir/context_property_test.cc.o"
  "CMakeFiles/context_property_test.dir/context_property_test.cc.o.d"
  "context_property_test"
  "context_property_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/context_property_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
