file(REMOVE_RECURSE
  "CMakeFiles/db_stephook_test.dir/db_stephook_test.cc.o"
  "CMakeFiles/db_stephook_test.dir/db_stephook_test.cc.o.d"
  "db_stephook_test"
  "db_stephook_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/db_stephook_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
