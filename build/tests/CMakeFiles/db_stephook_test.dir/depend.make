# Empty dependencies file for db_stephook_test.
# This may be replaced when dependencies are built.
