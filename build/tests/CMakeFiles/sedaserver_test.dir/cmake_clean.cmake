file(REMOVE_RECURSE
  "CMakeFiles/sedaserver_test.dir/sedaserver_test.cc.o"
  "CMakeFiles/sedaserver_test.dir/sedaserver_test.cc.o.d"
  "sedaserver_test"
  "sedaserver_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sedaserver_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
