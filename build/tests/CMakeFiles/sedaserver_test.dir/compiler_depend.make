# Empty compiler generated dependencies file for sedaserver_test.
# This may be replaced when dependencies are built.
