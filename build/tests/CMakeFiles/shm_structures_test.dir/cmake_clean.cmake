file(REMOVE_RECURSE
  "CMakeFiles/shm_structures_test.dir/shm_structures_test.cc.o"
  "CMakeFiles/shm_structures_test.dir/shm_structures_test.cc.o.d"
  "shm_structures_test"
  "shm_structures_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/shm_structures_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
