file(REMOVE_RECURSE
  "CMakeFiles/profiler_advanced_test.dir/profiler_advanced_test.cc.o"
  "CMakeFiles/profiler_advanced_test.dir/profiler_advanced_test.cc.o.d"
  "profiler_advanced_test"
  "profiler_advanced_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/profiler_advanced_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
