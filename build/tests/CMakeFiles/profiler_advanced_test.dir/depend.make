# Empty dependencies file for profiler_advanced_test.
# This may be replaced when dependencies are built.
