file(REMOVE_RECURSE
  "CMakeFiles/whodunit_util.dir/interner.cc.o"
  "CMakeFiles/whodunit_util.dir/interner.cc.o.d"
  "CMakeFiles/whodunit_util.dir/rng.cc.o"
  "CMakeFiles/whodunit_util.dir/rng.cc.o.d"
  "CMakeFiles/whodunit_util.dir/stats.cc.o"
  "CMakeFiles/whodunit_util.dir/stats.cc.o.d"
  "CMakeFiles/whodunit_util.dir/zipf.cc.o"
  "CMakeFiles/whodunit_util.dir/zipf.cc.o.d"
  "libwhodunit_util.a"
  "libwhodunit_util.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/whodunit_util.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
