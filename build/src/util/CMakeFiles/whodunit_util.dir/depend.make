# Empty dependencies file for whodunit_util.
# This may be replaced when dependencies are built.
