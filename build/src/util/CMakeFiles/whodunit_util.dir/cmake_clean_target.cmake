file(REMOVE_RECURSE
  "libwhodunit_util.a"
)
