# Empty dependencies file for whodunit_events.
# This may be replaced when dependencies are built.
