file(REMOVE_RECURSE
  "libwhodunit_events.a"
)
