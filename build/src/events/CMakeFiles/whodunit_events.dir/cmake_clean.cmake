file(REMOVE_RECURSE
  "CMakeFiles/whodunit_events.dir/event_loop.cc.o"
  "CMakeFiles/whodunit_events.dir/event_loop.cc.o.d"
  "libwhodunit_events.a"
  "libwhodunit_events.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/whodunit_events.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
