file(REMOVE_RECURSE
  "CMakeFiles/whodunit_crosstalk.dir/crosstalk.cc.o"
  "CMakeFiles/whodunit_crosstalk.dir/crosstalk.cc.o.d"
  "libwhodunit_crosstalk.a"
  "libwhodunit_crosstalk.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/whodunit_crosstalk.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
