file(REMOVE_RECURSE
  "libwhodunit_crosstalk.a"
)
