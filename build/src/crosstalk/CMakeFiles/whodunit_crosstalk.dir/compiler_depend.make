# Empty compiler generated dependencies file for whodunit_crosstalk.
# This may be replaced when dependencies are built.
