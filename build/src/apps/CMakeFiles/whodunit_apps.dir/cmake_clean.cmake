file(REMOVE_RECURSE
  "CMakeFiles/whodunit_apps.dir/bookstore/bookstore.cc.o"
  "CMakeFiles/whodunit_apps.dir/bookstore/bookstore.cc.o.d"
  "CMakeFiles/whodunit_apps.dir/minihttpd/minihttpd.cc.o"
  "CMakeFiles/whodunit_apps.dir/minihttpd/minihttpd.cc.o.d"
  "CMakeFiles/whodunit_apps.dir/miniproxy/miniproxy.cc.o"
  "CMakeFiles/whodunit_apps.dir/miniproxy/miniproxy.cc.o.d"
  "CMakeFiles/whodunit_apps.dir/sedaserver/sedaserver.cc.o"
  "CMakeFiles/whodunit_apps.dir/sedaserver/sedaserver.cc.o.d"
  "libwhodunit_apps.a"
  "libwhodunit_apps.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/whodunit_apps.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
