# Empty dependencies file for whodunit_apps.
# This may be replaced when dependencies are built.
