file(REMOVE_RECURSE
  "libwhodunit_apps.a"
)
