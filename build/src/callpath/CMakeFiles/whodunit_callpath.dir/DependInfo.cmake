
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/callpath/cct.cc" "src/callpath/CMakeFiles/whodunit_callpath.dir/cct.cc.o" "gcc" "src/callpath/CMakeFiles/whodunit_callpath.dir/cct.cc.o.d"
  "/root/repo/src/callpath/gprof_report.cc" "src/callpath/CMakeFiles/whodunit_callpath.dir/gprof_report.cc.o" "gcc" "src/callpath/CMakeFiles/whodunit_callpath.dir/gprof_report.cc.o.d"
  "/root/repo/src/callpath/sampler.cc" "src/callpath/CMakeFiles/whodunit_callpath.dir/sampler.cc.o" "gcc" "src/callpath/CMakeFiles/whodunit_callpath.dir/sampler.cc.o.d"
  "/root/repo/src/callpath/shadow_stack.cc" "src/callpath/CMakeFiles/whodunit_callpath.dir/shadow_stack.cc.o" "gcc" "src/callpath/CMakeFiles/whodunit_callpath.dir/shadow_stack.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/util/CMakeFiles/whodunit_util.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/whodunit_sim.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
