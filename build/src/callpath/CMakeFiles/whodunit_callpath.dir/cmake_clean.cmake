file(REMOVE_RECURSE
  "CMakeFiles/whodunit_callpath.dir/cct.cc.o"
  "CMakeFiles/whodunit_callpath.dir/cct.cc.o.d"
  "CMakeFiles/whodunit_callpath.dir/gprof_report.cc.o"
  "CMakeFiles/whodunit_callpath.dir/gprof_report.cc.o.d"
  "CMakeFiles/whodunit_callpath.dir/sampler.cc.o"
  "CMakeFiles/whodunit_callpath.dir/sampler.cc.o.d"
  "CMakeFiles/whodunit_callpath.dir/shadow_stack.cc.o"
  "CMakeFiles/whodunit_callpath.dir/shadow_stack.cc.o.d"
  "libwhodunit_callpath.a"
  "libwhodunit_callpath.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/whodunit_callpath.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
