# Empty compiler generated dependencies file for whodunit_callpath.
# This may be replaced when dependencies are built.
