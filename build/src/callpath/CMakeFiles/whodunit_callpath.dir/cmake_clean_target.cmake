file(REMOVE_RECURSE
  "libwhodunit_callpath.a"
)
