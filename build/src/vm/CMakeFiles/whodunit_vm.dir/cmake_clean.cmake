file(REMOVE_RECURSE
  "CMakeFiles/whodunit_vm.dir/interpreter.cc.o"
  "CMakeFiles/whodunit_vm.dir/interpreter.cc.o.d"
  "CMakeFiles/whodunit_vm.dir/isa.cc.o"
  "CMakeFiles/whodunit_vm.dir/isa.cc.o.d"
  "CMakeFiles/whodunit_vm.dir/program_builder.cc.o"
  "CMakeFiles/whodunit_vm.dir/program_builder.cc.o.d"
  "libwhodunit_vm.a"
  "libwhodunit_vm.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/whodunit_vm.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
