file(REMOVE_RECURSE
  "libwhodunit_vm.a"
)
