# Empty compiler generated dependencies file for whodunit_vm.
# This may be replaced when dependencies are built.
