# Empty compiler generated dependencies file for whodunit_workload.
# This may be replaced when dependencies are built.
