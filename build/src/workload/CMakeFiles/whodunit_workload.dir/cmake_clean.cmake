file(REMOVE_RECURSE
  "CMakeFiles/whodunit_workload.dir/tpcw.cc.o"
  "CMakeFiles/whodunit_workload.dir/tpcw.cc.o.d"
  "libwhodunit_workload.a"
  "libwhodunit_workload.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/whodunit_workload.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
