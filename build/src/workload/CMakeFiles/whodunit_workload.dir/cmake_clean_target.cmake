file(REMOVE_RECURSE
  "libwhodunit_workload.a"
)
