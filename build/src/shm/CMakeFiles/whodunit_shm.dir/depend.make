# Empty dependencies file for whodunit_shm.
# This may be replaced when dependencies are built.
