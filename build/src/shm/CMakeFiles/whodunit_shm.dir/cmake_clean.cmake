file(REMOVE_RECURSE
  "CMakeFiles/whodunit_shm.dir/flow_detector.cc.o"
  "CMakeFiles/whodunit_shm.dir/flow_detector.cc.o.d"
  "CMakeFiles/whodunit_shm.dir/guest_code.cc.o"
  "CMakeFiles/whodunit_shm.dir/guest_code.cc.o.d"
  "libwhodunit_shm.a"
  "libwhodunit_shm.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/whodunit_shm.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
