file(REMOVE_RECURSE
  "libwhodunit_shm.a"
)
