
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/shm/flow_detector.cc" "src/shm/CMakeFiles/whodunit_shm.dir/flow_detector.cc.o" "gcc" "src/shm/CMakeFiles/whodunit_shm.dir/flow_detector.cc.o.d"
  "/root/repo/src/shm/guest_code.cc" "src/shm/CMakeFiles/whodunit_shm.dir/guest_code.cc.o" "gcc" "src/shm/CMakeFiles/whodunit_shm.dir/guest_code.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/vm/CMakeFiles/whodunit_vm.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/whodunit_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
