file(REMOVE_RECURSE
  "CMakeFiles/whodunit_profiler.dir/analysis.cc.o"
  "CMakeFiles/whodunit_profiler.dir/analysis.cc.o.d"
  "CMakeFiles/whodunit_profiler.dir/deployment.cc.o"
  "CMakeFiles/whodunit_profiler.dir/deployment.cc.o.d"
  "CMakeFiles/whodunit_profiler.dir/profile_io.cc.o"
  "CMakeFiles/whodunit_profiler.dir/profile_io.cc.o.d"
  "CMakeFiles/whodunit_profiler.dir/stage_profiler.cc.o"
  "CMakeFiles/whodunit_profiler.dir/stage_profiler.cc.o.d"
  "CMakeFiles/whodunit_profiler.dir/stitcher.cc.o"
  "CMakeFiles/whodunit_profiler.dir/stitcher.cc.o.d"
  "libwhodunit_profiler.a"
  "libwhodunit_profiler.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/whodunit_profiler.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
