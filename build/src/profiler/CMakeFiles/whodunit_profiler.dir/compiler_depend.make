# Empty compiler generated dependencies file for whodunit_profiler.
# This may be replaced when dependencies are built.
