file(REMOVE_RECURSE
  "libwhodunit_profiler.a"
)
