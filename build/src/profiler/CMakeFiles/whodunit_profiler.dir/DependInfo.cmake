
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/profiler/analysis.cc" "src/profiler/CMakeFiles/whodunit_profiler.dir/analysis.cc.o" "gcc" "src/profiler/CMakeFiles/whodunit_profiler.dir/analysis.cc.o.d"
  "/root/repo/src/profiler/deployment.cc" "src/profiler/CMakeFiles/whodunit_profiler.dir/deployment.cc.o" "gcc" "src/profiler/CMakeFiles/whodunit_profiler.dir/deployment.cc.o.d"
  "/root/repo/src/profiler/profile_io.cc" "src/profiler/CMakeFiles/whodunit_profiler.dir/profile_io.cc.o" "gcc" "src/profiler/CMakeFiles/whodunit_profiler.dir/profile_io.cc.o.d"
  "/root/repo/src/profiler/stage_profiler.cc" "src/profiler/CMakeFiles/whodunit_profiler.dir/stage_profiler.cc.o" "gcc" "src/profiler/CMakeFiles/whodunit_profiler.dir/stage_profiler.cc.o.d"
  "/root/repo/src/profiler/stitcher.cc" "src/profiler/CMakeFiles/whodunit_profiler.dir/stitcher.cc.o" "gcc" "src/profiler/CMakeFiles/whodunit_profiler.dir/stitcher.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/callpath/CMakeFiles/whodunit_callpath.dir/DependInfo.cmake"
  "/root/repo/build/src/context/CMakeFiles/whodunit_context.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/whodunit_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/whodunit_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
