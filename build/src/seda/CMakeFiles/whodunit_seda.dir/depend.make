# Empty dependencies file for whodunit_seda.
# This may be replaced when dependencies are built.
