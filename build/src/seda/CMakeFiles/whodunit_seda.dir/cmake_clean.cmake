file(REMOVE_RECURSE
  "CMakeFiles/whodunit_seda.dir/stage.cc.o"
  "CMakeFiles/whodunit_seda.dir/stage.cc.o.d"
  "libwhodunit_seda.a"
  "libwhodunit_seda.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/whodunit_seda.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
