file(REMOVE_RECURSE
  "libwhodunit_seda.a"
)
