file(REMOVE_RECURSE
  "libwhodunit_db.a"
)
