# Empty compiler generated dependencies file for whodunit_db.
# This may be replaced when dependencies are built.
