file(REMOVE_RECURSE
  "CMakeFiles/whodunit_db.dir/database.cc.o"
  "CMakeFiles/whodunit_db.dir/database.cc.o.d"
  "libwhodunit_db.a"
  "libwhodunit_db.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/whodunit_db.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
