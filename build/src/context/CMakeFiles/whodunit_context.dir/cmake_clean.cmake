file(REMOVE_RECURSE
  "CMakeFiles/whodunit_context.dir/synopsis.cc.o"
  "CMakeFiles/whodunit_context.dir/synopsis.cc.o.d"
  "CMakeFiles/whodunit_context.dir/transaction_context.cc.o"
  "CMakeFiles/whodunit_context.dir/transaction_context.cc.o.d"
  "libwhodunit_context.a"
  "libwhodunit_context.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/whodunit_context.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
