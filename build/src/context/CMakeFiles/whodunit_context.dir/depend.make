# Empty dependencies file for whodunit_context.
# This may be replaced when dependencies are built.
