file(REMOVE_RECURSE
  "libwhodunit_context.a"
)
