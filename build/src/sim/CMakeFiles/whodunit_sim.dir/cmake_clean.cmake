file(REMOVE_RECURSE
  "CMakeFiles/whodunit_sim.dir/cpu.cc.o"
  "CMakeFiles/whodunit_sim.dir/cpu.cc.o.d"
  "CMakeFiles/whodunit_sim.dir/lock.cc.o"
  "CMakeFiles/whodunit_sim.dir/lock.cc.o.d"
  "CMakeFiles/whodunit_sim.dir/scheduler.cc.o"
  "CMakeFiles/whodunit_sim.dir/scheduler.cc.o.d"
  "libwhodunit_sim.a"
  "libwhodunit_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/whodunit_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
