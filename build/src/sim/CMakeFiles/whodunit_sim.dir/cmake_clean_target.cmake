file(REMOVE_RECURSE
  "libwhodunit_sim.a"
)
