# Empty dependencies file for whodunit_sim.
# This may be replaced when dependencies are built.
