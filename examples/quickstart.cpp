// Quickstart: profile a two-stage RPC application with Whodunit.
//
// This is the Figure 6/7 scenario from the paper: a caller with two
// transaction paths (through `foo` and through `bar`) into one RPC
// service. A conventional profiler reports ONE number for the callee's
// service routine; Whodunit keeps a separate calling-context tree per
// transaction context, so the cost splits by which caller path caused
// it — and the post-mortem stitcher connects the per-stage profiles
// into one end-to-end transactional profile.
//
// Build & run:  ./build/examples/quickstart
#include <cstdio>

#include "src/callpath/gprof_report.h"
#include "src/profiler/deployment.h"
#include "src/profiler/stage_profiler.h"
#include "src/profiler/stitcher.h"

int main() {
  using namespace whodunit;
  using profiler::StageProfiler;

  // One Deployment = one profiled multi-tier application.
  profiler::Deployment deployment;
  StageProfiler::Options caller_opts;
  caller_opts.name = "caller";
  StageProfiler::Options callee_opts;
  callee_opts.name = "callee";
  auto& caller = deployment.AddStage(
      std::make_unique<StageProfiler>(deployment, caller_opts));
  auto& callee = deployment.AddStage(
      std::make_unique<StageProfiler>(deployment, callee_opts));

  // Each simulated thread of control gets a ThreadProfile.
  profiler::ThreadProfile& ct = caller.CreateThread("main_caller");
  profiler::ThreadProfile& st = callee.CreateThread("svc_run");

  // Declare the procedure structure with RAII frames.
  auto main_fn = caller.RegisterFunction("main_caller");
  auto foo_fn = caller.RegisterFunction("foo");
  auto bar_fn = caller.RegisterFunction("bar");
  auto rpc_fn = caller.RegisterFunction("rpc_call");
  auto svc_fn = callee.RegisterFunction("callee_rpc_svc");
  auto sort_fn = callee.RegisterFunction("db_sort");

  // Two RPCs through different caller paths. The callee's work is
  // charged to a CCT labeled by the caller's transaction context.
  auto do_rpc = [&](callpath::FunctionId via, sim::SimTime callee_work) {
    auto f0 = caller.EnterFrame(ct, main_fn);
    auto f1 = caller.EnterFrame(ct, via);
    auto f2 = caller.EnterFrame(ct, rpc_fn);

    // send: compute the synopsis and piggy-back it on the message.
    context::Synopsis request = caller.PrepareSend(ct);

    // ---- network ----> at the callee:
    callee.OnReceive(st, request);  // adopts the caller's context
    context::Synopsis response;
    {
      auto g0 = callee.EnterFrame(st, svc_fn);
      auto g1 = callee.EnterFrame(st, sort_fn);
      callee.ChargeCpu(st, callee_work);  // samples land per-context
      response = callee.PrepareSend(st, /*expect_response=*/false);
    }

    // <---- network ---- back at the caller: the response's synopsis
    // extends the one we sent, so it is recognized and our context is
    // restored.
    caller.OnReceive(ct, response);
    caller.ChargeCpu(ct, sim::Millis(1));
  };

  do_rpc(foo_fn, sim::Millis(30));  // foo's transactions sort a lot
  do_rpc(bar_fn, sim::Millis(5));   // bar's barely at all

  // First, what a CONVENTIONAL profiler reports at the callee: one
  // undifferentiated number for db_sort.
  callpath::CallingContextTree merged;
  for (const auto& [label, cct] : callee.LabeledCcts()) {
    merged.MergeFrom(*cct);
  }
  std::printf("--- conventional (gprof-style) view of the callee ---\n%s\n",
              callpath::RenderGprofReport(merged, deployment.functions(), 5).c_str());

  // Now the transactional profile: the same db_sort routine appears
  // under two contexts with different costs — foo's transactions are
  // the expensive ones.
  std::printf("%s\n", callee.RenderTransactionalProfile().c_str());

  // And the stitched end-to-end view (Figure 7): request edges from
  // caller contexts to callee CCTs.
  profiler::Stitcher stitcher(deployment);
  std::printf("%s\n", stitcher.Render().c_str());
  return 0;
}
