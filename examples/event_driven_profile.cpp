// Profiling an event-driven application (paper §4, §8.2).
//
// Builds a miniature DNS-ish cache server on the instrumented event
// library and shows how transaction contexts distinguish the hit and
// miss paths through the SAME response handler — the distinction
// Figure 9 highlights for Squid's commHandleWrite.
//
// Build & run:  ./build/examples/event_driven_profile
#include <cstdio>

#include "src/events/event_loop.h"
#include "src/profiler/deployment.h"
#include "src/profiler/stage_profiler.h"
#include "src/sim/cpu.h"

int main() {
  using namespace whodunit;
  using events::EventLoop;

  sim::Scheduler sched;
  sim::CpuResource cpu(sched, 1);
  profiler::Deployment deployment;
  profiler::StageProfiler::Options opts;
  opts.name = "dns_cache";
  profiler::StageProfiler prof(deployment, opts);
  profiler::ThreadProfile& tp = prof.CreateThread("event_loop");

  EventLoop loop(sched);
  // The profiler follows the event library's current transaction
  // context — the only glue an application needs.
  loop.set_context_listener([&](context::NodeId node, bool sampled) {
    prof.SetSampled(tp, sampled);
    prof.SetLocalContext(tp, node);
  });
  deployment.set_element_namer([&](context::ElementKind kind, uint32_t id) {
    return kind == context::ElementKind::kHandler ? loop.HandlerName(id) : "?";
  });

  events::HandlerId hit_h = 0, miss_h = 0, respond_h = 0;
  const auto lookup_work = prof.RegisterFunction("cache_lookup");
  const auto send_work = prof.RegisterFunction("send_response");

  events::HandlerId query_h = loop.RegisterHandler(
      "query", [&](EventLoop::HandlerContext& hc) -> sim::Task<void> {
        auto f = prof.EnterFrame(tp, lookup_work);
        co_await cpu.Consume(prof.ChargeCpu(tp, sim::Micros(20)));
        // Even payloads hit the cache, odd ones miss.
        hc.loop.AddEvent(hc.payload % 2 == 0 ? hit_h : miss_h, hc.payload);
      });
  hit_h = loop.RegisterHandler("cache_hit",
                               [&](EventLoop::HandlerContext& hc) -> sim::Task<void> {
                                 co_await cpu.Consume(prof.ChargeCpu(tp, sim::Micros(5)));
                                 hc.loop.AddEvent(respond_h, hc.payload);
                               });
  miss_h = loop.RegisterHandler(
      "cache_miss", [&](EventLoop::HandlerContext& hc) -> sim::Task<void> {
        // A miss recursively resolves upstream: much more work.
        co_await cpu.Consume(prof.ChargeCpu(tp, sim::Millis(2)));
        hc.loop.AddEvent(respond_h, hc.payload);
      });
  respond_h = loop.RegisterHandler(
      "respond", [&](EventLoop::HandlerContext&) -> sim::Task<void> {
        auto f = prof.EnterFrame(tp, send_work);
        co_await cpu.Consume(prof.ChargeCpu(tp, sim::Micros(50)));
      });

  for (uint64_t q = 0; q < 1000; ++q) {
    loop.AddExternalEvent(query_h, q);
  }
  sim::Spawn(sched, loop.Run());
  sched.ScheduleAt(sim::Seconds(60), [&] { loop.Stop(); });
  sched.Run();

  // The `respond` handler ran 1000 times, but its cost splits across
  // two transaction contexts: [query, cache_hit, respond] and
  // [query, cache_miss, respond].
  std::printf("%s\n", prof.RenderTransactionalProfile().c_str());
  std::printf("events dispatched: %lu\n",
              static_cast<unsigned long>(loop.events_dispatched()));
  return 0;
}
