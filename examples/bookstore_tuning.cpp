// Whodunit-guided performance tuning of a multi-tier application
// (paper §8.4, condensed).
//
// Runs the TPC-W bookstore, reads the transactional profile the way a
// performance engineer would, and applies the two optimizations the
// profile suggests — showing the before/after effect on the very
// numbers that motivated them.
//
// Build & run:  ./build/examples/bookstore_tuning
#include <cstdio>

#include "src/apps/bookstore/bookstore.h"

int main() {
  using namespace whodunit;
  using workload::TpcwTransaction;

  apps::BookstoreOptions options;
  options.clients = 100;
  options.duration = sim::Seconds(2400);
  options.warmup = sim::Seconds(300);

  std::printf("== Step 1: profile the original system ==\n");
  apps::BookstoreResult before = apps::RunBookstore(options);
  const auto& bs = before.per_type[static_cast<size_t>(TpcwTransaction::kBestSellers)];
  const auto& sr = before.per_type[static_cast<size_t>(TpcwTransaction::kSearchResult)];
  const auto& ac = before.per_type[static_cast<size_t>(TpcwTransaction::kAdminConfirm)];
  std::printf("Whodunit's per-transaction MySQL profile says:\n");
  std::printf("  BestSellers  : %5.1f%% of DB CPU, %6.0f ms mean response\n",
              bs.db_cpu_percent, bs.mean_response_ms);
  std::printf("  SearchResult : %5.1f%% of DB CPU, %6.0f ms mean response\n",
              sr.db_cpu_percent, sr.mean_response_ms);
  std::printf("  AdminConfirm : %5.1f%% of DB CPU, %6.0f ms mean response, "
              "%5.1f ms mean lock wait (worst)\n",
              ac.db_cpu_percent, ac.mean_response_ms, ac.mean_crosstalk_ms);
  std::printf("Crosstalk pairs:\n%s\n", before.crosstalk_text.c_str());
  std::printf("%s\n", before.who_causes_sort.c_str());
  std::printf("=> the expensive DB queries (BestSellers/SearchResult) and the\n"
              "   table-lock interference on `item` (AdminConfirm) are the\n"
              "   optimization candidates — exactly the paper's conclusion.\n\n");

  std::printf("== Step 2: convert `item` to row-level locking (InnoDB) ==\n");
  apps::BookstoreOptions innodb = options;
  innodb.item_granularity = db::LockGranularity::kRowLocks;
  apps::BookstoreResult after_innodb = apps::RunBookstore(innodb);
  const auto& ac2 = after_innodb.per_type[static_cast<size_t>(TpcwTransaction::kAdminConfirm)];
  std::printf("  AdminConfirm response: %6.0f -> %6.0f ms (%.0f%% better)\n",
              ac.mean_response_ms, ac2.mean_response_ms,
              100.0 * (ac.mean_response_ms - ac2.mean_response_ms) / ac.mean_response_ms);
  std::printf("  AdminConfirm lock wait: %5.1f -> %5.1f ms\n\n", ac.mean_crosstalk_ms,
              ac2.mean_crosstalk_ms);

  std::printf("== Step 3: cache BestSellers/SearchResult results (30 s TTL) ==\n");
  apps::BookstoreOptions cached = options;
  cached.servlet_caching = true;
  apps::BookstoreResult after_cache = apps::RunBookstore(cached);
  const auto& bs2 = after_cache.per_type[static_cast<size_t>(TpcwTransaction::kBestSellers)];
  const auto& sr2 = after_cache.per_type[static_cast<size_t>(TpcwTransaction::kSearchResult)];
  std::printf("  BestSellers  response: %6.0f -> %6.0f ms\n", bs.mean_response_ms,
              bs2.mean_response_ms);
  std::printf("  SearchResult response: %6.0f -> %6.0f ms\n", sr.mean_response_ms,
              sr2.mean_response_ms);

  std::printf("\n== Step 4: throughput at 450 clients, before vs after caching ==\n");
  apps::BookstoreOptions plain450 = options;
  plain450.clients = 450;
  plain450.duration = sim::Seconds(1200);
  apps::BookstoreOptions cached450 = plain450;
  cached450.servlet_caching = true;
  const double tpm_before = apps::RunBookstore(plain450).throughput_tpm;
  const double tpm_after = apps::RunBookstore(cached450).throughput_tpm;
  std::printf("  %0.f -> %0.f tx/min (%.2fx; paper: 1184 -> 3376, ~2.85x)\n", tpm_before,
              tpm_after, tpm_after / tpm_before);
  return 0;
}
