// Post-mortem reporting from serialized profiles (paper §7.1).
//
// Whodunit's run-time writes one profile file per stage plus a context
// dictionary when the profiled programs exit; a separate presentation
// step stitches them. This example does the full round trip through
// real files:
//
//   offline_report [output_dir]     (default: ./whodunit_profiles)
//
// Step 1 profiles a three-stage deployment and writes
//   <dir>/caller.profile, <dir>/middle.profile, <dir>/leaf.profile,
//   <dir>/contexts.dict
// Step 2 reads the files back — using nothing else — and prints the
// stitched end-to-end transactional profile.
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <sstream>

#include "src/obs/export.h"
#include "src/profiler/deployment.h"
#include "src/profiler/profile_io.h"
#include "src/profiler/stage_profiler.h"

namespace {

using namespace whodunit;
using profiler::StageProfiler;

void WriteFile(const std::filesystem::path& path, const std::string& contents) {
  std::ofstream out(path);
  out << contents;
}

std::string ReadFile(const std::filesystem::path& path) {
  std::ifstream in(path);
  std::ostringstream buf;
  buf << in.rdbuf();
  return buf.str();
}

StageProfiler::Options Opts(std::string name) {
  StageProfiler::Options o;
  o.name = std::move(name);
  return o;
}

}  // namespace

int main(int argc, char** argv) {
  const std::filesystem::path dir = argc > 1 ? argv[1] : "whodunit_profiles";
  std::filesystem::create_directories(dir);

  // ---- Step 1: a profiled run (three stages, two request types) ----
  profiler::Deployment dep;
  auto& caller = dep.AddStage(std::make_unique<StageProfiler>(dep, Opts("caller")));
  auto& middle = dep.AddStage(std::make_unique<StageProfiler>(dep, Opts("middle")));
  auto& leaf = dep.AddStage(std::make_unique<StageProfiler>(dep, Opts("leaf")));
  auto& ct = caller.CreateThread("main");
  auto& mt = middle.CreateThread("svc");
  auto& lt = leaf.CreateThread("db");
  auto search_fn = caller.RegisterFunction("search");
  auto browse_fn = caller.RegisterFunction("browse");
  auto logic_fn = middle.RegisterFunction("business_logic");
  auto query_fn = leaf.RegisterFunction("run_query");

  for (int i = 0; i < 10; ++i) {
    auto via = i % 3 == 0 ? search_fn : browse_fn;
    auto f0 = caller.EnterFrame(ct, via);
    caller.ChargeCpu(ct, sim::Millis(2));
    context::Synopsis s1 = caller.PrepareSend(ct);
    middle.OnReceive(mt, s1);
    context::Synopsis s2;
    {
      auto f1 = middle.EnterFrame(mt, logic_fn);
      middle.ChargeCpu(mt, sim::Millis(5));
      s2 = middle.PrepareSend(mt);
    }
    leaf.OnReceive(lt, s2);
    {
      auto f2 = leaf.EnterFrame(lt, query_fn);
      leaf.ChargeCpu(lt, via == search_fn ? sim::Millis(40) : sim::Millis(4));
      context::Synopsis resp = leaf.PrepareSend(lt, false);
      middle.OnReceive(mt, resp);
    }
    context::Synopsis resp2 = middle.PrepareSend(mt, false);
    caller.OnReceive(ct, resp2);
  }

  // "When the program exits, Whodunit ... writes the profile data to
  // disk."
  WriteFile(dir / "caller.profile", profiler::SerializeProfile(caller));
  WriteFile(dir / "middle.profile", profiler::SerializeProfile(middle));
  WriteFile(dir / "leaf.profile", profiler::SerializeProfile(leaf));
  WriteFile(dir / "contexts.dict", profiler::SerializeDictionary(dep));
  std::printf("wrote 3 stage profiles + dictionary to %s/\n\n", dir.c_str());

  // ---- Step 2: the presentation phase, from files alone ----
  std::vector<profiler::LoadedProfile> profiles(3);
  bool ok = profiler::ParseProfile(ReadFile(dir / "caller.profile"), &profiles[0]) &&
            profiler::ParseProfile(ReadFile(dir / "middle.profile"), &profiles[1]) &&
            profiler::ParseProfile(ReadFile(dir / "leaf.profile"), &profiles[2]);
  std::map<uint32_t, std::string> dictionary;
  ok = ok && profiler::ParseDictionary(ReadFile(dir / "contexts.dict"), &dictionary);
  if (!ok) {
    std::fprintf(stderr, "failed to re-read the profile files\n");
    return 1;
  }
  std::printf("%s", profiler::OfflineStitch(profiles, dictionary).c_str());
  std::printf("\nNote how the leaf's run_query cost is split by which caller path\n"
              "(search vs browse) reached it, two stages upstream.\n");

  // ---- Step 3: the profiler's own telemetry, same round trip ----
  // The obs layer (docs/METRICS.md) watched the run from the inside:
  // dump its JSON export next to the profiles, then re-read and render
  // it from the file alone — the path every bench's
  // BENCH_*.metrics.json dump takes.
  const std::filesystem::path metrics_path = dir / "metrics.json";
  if (!obs::DumpGlobalMetrics(metrics_path.string())) {
    std::fprintf(stderr, "failed to write %s\n", metrics_path.c_str());
    return 1;
  }
  obs::MetricsSnapshot snapshot;
  std::vector<obs::SpanRecord> spans;
  if (!obs::ParseJson(ReadFile(metrics_path), &snapshot, &spans)) {
    std::fprintf(stderr, "failed to re-read %s\n", metrics_path.c_str());
    return 1;
  }
  std::printf("\n===== profiler self-observability (re-read from %s) =====\n",
              metrics_path.c_str());
  std::printf("%s", obs::RenderText(snapshot, &spans).c_str());
  return 0;
}
