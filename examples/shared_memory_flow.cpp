// Shared-memory transaction flow, end to end (paper §3).
//
// Runs the paper's three canonical shared-memory patterns through the
// MiniVM emulator and the flow-detection algorithm, narrating what the
// algorithm concludes about each:
//   1. Apache's fd_queue push/pop   -> transaction flow detected;
//   2. a shared statistics counter  -> no flow (invlctxt poisoning);
//   3. a pooled memory allocator    -> demoted via producer/consumer
//                                      role intersection.
//
// Build & run:  ./build/examples/shared_memory_flow
#include <cstdio>

#include "src/shm/flow_detector.h"
#include "src/shm/guest_code.h"
#include "src/vm/interpreter.h"

int main() {
  using namespace whodunit;

  // Context provider: thread 1 (the listener) executes transaction
  // context 100, thread 2 (a worker) context 200.
  shm::FlowDetector detector([](vm::ThreadId t) { return t * 100; });
  detector.set_flow_callback([](const shm::FlowEvent& ev) {
    std::printf("  -> FLOW: thread %u consumed a value produced by thread %u\n"
                "           under lock %lu, carrying transaction context %u\n",
                ev.consumer, ev.producer, static_cast<unsigned long>(ev.lock_id), ev.ctxt);
  });
  detector.set_demote_callback([](uint64_t lock_id) {
    std::printf("  -> DEMOTED: lock %lu's resource is not transaction flow\n",
                static_cast<unsigned long>(lock_id));
  });

  vm::Memory mem;
  vm::Interpreter interp;

  std::printf("1) Apache fd_queue (Figure 1): listener pushes, worker pops\n");
  std::printf("%s", Disassemble(shm::ApQueuePush(99)).c_str());
  {
    constexpr uint64_t kLock = 1, kQueue = 0x1000;
    vm::CpuState listener;
    listener.regs[0] = kQueue;
    listener.regs[1] = 0xFD;    // the accepted socket
    listener.regs[2] = 0xB00;   // its pool
    interp.Execute(shm::ApQueuePush(kLock), /*thread=*/1, listener, mem, &detector);
    std::printf("  listener pushed fd=0x%lx\n",
                static_cast<unsigned long>(listener.regs[1]));
    vm::CpuState worker;
    worker.regs[0] = kQueue;
    worker.regs[5] = 0x2000;  // &out_sd
    worker.regs[6] = 0x2008;  // &out_p
    interp.Execute(shm::ApQueuePop(kLock), /*thread=*/2, worker, mem, &detector);
    std::printf("  worker popped fd=0x%lx\n",
                static_cast<unsigned long>(worker.regs[7]));
  }

  std::printf("\n2) Shared counter (Figure 2): both threads increment count\n");
  {
    constexpr uint64_t kLock = 2, kCounter = 0x5000;
    vm::Program inc = shm::CounterIncrement(kLock);
    for (vm::ThreadId t : {1u, 2u, 1u, 2u}) {
      vm::CpuState cpu;
      cpu.regs[0] = kCounter;
      interp.Execute(inc, t, cpu, mem, &detector);
    }
    std::printf("  count=%lu after 4 increments; flows detected so far: %lu\n",
                static_cast<unsigned long>(mem.Read(kCounter)),
                static_cast<unsigned long>(detector.flows_detected()));
  }

  std::printf("\n3) Memory allocator (Figure 3): thread 2 frees then allocates\n");
  {
    constexpr uint64_t kLock = 3, kHead = 0x6000, kBlock = 0x6100;
    vm::CpuState cpu;
    cpu.regs[0] = kHead;
    cpu.regs[1] = kBlock;
    interp.Execute(shm::MemFree(kLock), 2, cpu, mem, &detector);
    interp.Execute(shm::MemAlloc(kLock), 2, cpu, mem, &detector);
    std::printf("  allocator demoted: %s\n", detector.IsDemoted(kLock) ? "yes" : "no");
    std::printf("  Whodunit now runs lock %d's critical sections natively\n", 3);
  }

  std::printf("\ntotal transaction flows detected: %lu (expected: 1, the queue)\n",
              static_cast<unsigned long>(detector.flows_detected()));
  return 0;
}
