#!/bin/sh
# Perf regression gate: re-runs the Table 3 emulation bench and
# compares the emulate-from-cache per-op cost against the committed
# baseline in bench/baselines/. A >10% slowdown FAILS. On noisy or
# shared hardware (CI runners), set CHECK_PERF_WARN_ONLY=1 to demote
# the failure to a warning.
#
# Also re-runs the sampling-rate ablation (bench_ablation_sampling):
# its pass/fail criteria — per-transaction overhead monotonically
# decreasing with the rate, 0.1% within 10% of profiler-off — are
# asserted by the bench itself in SIMULATED time, so they gate hard
# even under CHECK_PERF_WARN_ONLY (wall-clock noise cannot excuse a
# broken sampling gate).
#
# Usage: scripts/check_perf.sh [-B BUILD_DIR] [-n RUNS]
set -u

repo_root=$(CDPATH= cd -- "$(dirname -- "$0")/.." && pwd)
build_dir="$repo_root/build"
runs=3
threshold_pct=10

while getopts "B:n:" opt; do
  case "$opt" in
    B) build_dir="$OPTARG" ;;
    n) runs="$OPTARG" ;;
    *) echo "usage: $0 [-B BUILD_DIR] [-n RUNS]" >&2; exit 2 ;;
  esac
done

# The gate compares against a baseline recorded serially; pin the
# parallelism knobs so an inherited BENCH_THREADS/BENCH_SHARDS cannot
# skew the fresh measurement (bench/bench_util.h).
BENCH_THREADS=${BENCH_THREADS:-1}
BENCH_SHARDS=${BENCH_SHARDS:-1}
BENCH_SAMPLE_RATE=${BENCH_SAMPLE_RATE:-1.0}
export BENCH_THREADS BENCH_SHARDS BENCH_SAMPLE_RATE

baseline="$repo_root/bench/baselines/BENCH_table3_emulation.json"
if [ ! -f "$baseline" ]; then
  echo "check_perf: no committed baseline at $baseline; run scripts/run_benches.sh first" >&2
  exit 1
fi

fresh_dir=$(mktemp -d)
trap 'rm -rf "$fresh_dir"' EXIT

# run_benches.sh fails the suite if any bench exits non-zero, which is
# how bench_ablation_sampling's simulated-time assertions gate the run.
"$repo_root/scripts/run_benches.sh" -n "$runs" -B "$build_dir" -o "$fresh_dir" \
    bench_table3_emulation bench_ablation_sampling || exit 1
echo "check_perf: sampling ablation assertions passed (monotone overhead, 0.1% within 10% of off)"

python3 - "$baseline" "$fresh_dir/BENCH_table3_emulation.json" "$threshold_pct" <<'PYEOF'
import json, os, sys

baseline_path, fresh_path, threshold = sys.argv[1], sys.argv[2], float(sys.argv[3])
with open(baseline_path) as f:
    baseline = json.load(f)
with open(fresh_path) as f:
    fresh = json.load(f)

def cached_ns(doc, floor=False):
    derived = doc.get("derived", {})
    if floor and "emulate_cached_ns_per_op_min" in derived:
        return derived["emulate_cached_ns_per_op_min"]
    return derived.get("emulate_cached_ns_per_op")

# Gate the fresh *min* against the baseline median: individual runs on
# shared/containerized hosts routinely read 15%+ hot, but a lost fast
# path slows every run, including the best one.
base, now = cached_ns(baseline), cached_ns(fresh, floor=True)
if base is None or now is None:
    print("check_perf: emulate_cached_ns_per_op missing from bench JSON", file=sys.stderr)
    sys.exit(1)

delta_pct = 100.0 * (now - base) / base
print(f"check_perf: emulate-from-cache {base:.1f} ns/op (baseline) -> "
      f"{now:.1f} ns/op (fresh min), {delta_pct:+.1f}%")
if delta_pct > threshold:
    msg = (f"bench_table3_emulation emulate-from-cache regressed "
           f"{delta_pct:.1f}% (> {threshold:.0f}% threshold)")
    if os.environ.get("CHECK_PERF_WARN_ONLY") == "1":
        print(f"WARNING (CHECK_PERF_WARN_ONLY=1): {msg}", file=sys.stderr)
    else:
        print(f"FAIL: {msg}", file=sys.stderr)
        sys.exit(1)
else:
    print("check_perf: OK")
PYEOF
