#!/bin/sh
# Perf regression gate: re-runs the Table 3 emulation bench and
# compares the emulate-from-cache per-op cost against the committed
# baseline in bench/baselines/. A >10% slowdown FAILS. On noisy or
# shared hardware (CI runners), set CHECK_PERF_WARN_ONLY=1 to demote
# the failure to a warning.
#
# Also re-runs the sampling-rate ablation (bench_ablation_sampling):
# its pass/fail criteria — per-transaction overhead monotonically
# decreasing with the rate, 0.1% within 10% of profiler-off — are
# asserted by the bench itself in SIMULATED time, so they gate hard
# even under CHECK_PERF_WARN_ONLY (wall-clock noise cannot excuse a
# broken sampling gate).
#
# Two more gates ride on the same suite (PR 7):
#   * derived.section_cache_hit_rate must stay above 0.5 on
#     bench_fig12_throughput AND bench_ablation_section_cache. Hit
#     rates count deterministic cache events, not wall time, so this
#     floor also gates hard under CHECK_PERF_WARN_ONLY.
#   * derived.detector_cached_ratio (detector-on section-cache replay
#     over detector-off cached replay, bench_table3_emulation) must
#     stay below 3.0. A within-run ratio — noise mostly cancels — but
#     still wall-clock-derived, so CHECK_PERF_WARN_ONLY demotes it.
#
# The attribution gate rides on bench_ablation_live_obs (PR 9): the
# critical-path attribution pass's added cost per transaction must stay
# under 15% of the no-daemon per-transaction baseline
# (derived.attr_publish_overhead_pct). The numerator is measured
# directly inside the bench (tight loop over representative span
# DAGs), but the baseline denominator is wall-clock, so
# CHECK_PERF_WARN_ONLY demotes a miss; the bench's sim-identity
# assertion (the daemon must not perturb the run) gates hard inside the
# binary.
#
# The million-client DES gates ride on bench_scaling_clients (PR 8),
# run here with a reduced 1k..100k sweep (BENCH_SCALING_MAX_CLIENTS):
#   * the flat-memory assertion (per-client heap at the top scale
#     <= 1.1x the 10k value) is checked inside the bench binary, so it
#     gates hard — a non-zero exit fails run_benches.sh outright.
#   * derived.scheduler_speedup (heap Step() cost over ladder Step()
#     cost at 2^17 pending events) must stay >= 2.0. Within-run ratio,
#     but wall-clock-derived, so CHECK_PERF_WARN_ONLY demotes it.
#   * derived.events_per_sec must stay above an absolute floor; raw
#     wall clock, so CHECK_PERF_WARN_ONLY demotes it.
#
# Usage: scripts/check_perf.sh [-B BUILD_DIR] [-n RUNS]
set -u

repo_root=$(CDPATH= cd -- "$(dirname -- "$0")/.." && pwd)
build_dir="$repo_root/build"
runs=3
threshold_pct=10

while getopts "B:n:" opt; do
  case "$opt" in
    B) build_dir="$OPTARG" ;;
    n) runs="$OPTARG" ;;
    *) echo "usage: $0 [-B BUILD_DIR] [-n RUNS]" >&2; exit 2 ;;
  esac
done

# The gate compares against a baseline recorded serially; pin the
# parallelism knobs so an inherited BENCH_THREADS/BENCH_SHARDS cannot
# skew the fresh measurement (bench/bench_util.h).
BENCH_THREADS=${BENCH_THREADS:-1}
BENCH_SHARDS=${BENCH_SHARDS:-1}
BENCH_SAMPLE_RATE=${BENCH_SAMPLE_RATE:-1.0}
export BENCH_THREADS BENCH_SHARDS BENCH_SAMPLE_RATE

# The gate sweep stops at 100k clients; the full 1M point is for
# recorded baselines (scripts/run_benches.sh with the default cap).
BENCH_SCALING_MAX_CLIENTS=${BENCH_SCALING_MAX_CLIENTS:-100000}
export BENCH_SCALING_MAX_CLIENTS

baseline="$repo_root/bench/baselines/BENCH_table3_emulation.json"
if [ ! -f "$baseline" ]; then
  echo "check_perf: no committed baseline at $baseline; run scripts/run_benches.sh first" >&2
  exit 1
fi

fresh_dir=$(mktemp -d)
trap 'rm -rf "$fresh_dir"' EXIT

# run_benches.sh fails the suite if any bench exits non-zero, which is
# how bench_ablation_sampling's simulated-time assertions gate the run.
"$repo_root/scripts/run_benches.sh" -n "$runs" -B "$build_dir" -o "$fresh_dir" \
    bench_table3_emulation bench_ablation_sampling \
    bench_ablation_section_cache bench_fig12_throughput \
    bench_scaling_clients bench_ablation_live_obs || exit 1
echo "check_perf: sampling ablation assertions passed (monotone overhead, 0.1% within 10% of off)"
echo "check_perf: scaling flat-memory assertion passed (top-scale B/client <= 1.1x the 10k value)"

# Hard floor: the section cache must actually hit under the app-level
# workloads (fig12's bookstore mix) and its own ablation. A hit rate is
# a deterministic event count, so wall-clock noise cannot excuse it —
# no CHECK_PERF_WARN_ONLY escape here.
python3 - "$fresh_dir" <<'PYEOF'
import json, os, sys

fresh_dir = sys.argv[1]
floor = 0.5
failed = False
for name in ("fig12_throughput", "ablation_section_cache"):
    with open(os.path.join(fresh_dir, f"BENCH_{name}.json")) as f:
        doc = json.load(f)
    rate = doc.get("derived", {}).get("section_cache_hit_rate")
    if rate is None:
        print(f"check_perf: FAIL: {name} recorded no section-cache traffic", file=sys.stderr)
        failed = True
        continue
    verdict = "OK" if rate > floor else "FAIL"
    print(f"check_perf: {name} section_cache_hit_rate {rate:.4f} (floor {floor}) {verdict}")
    if rate <= floor:
        failed = True
if failed:
    sys.exit(1)
PYEOF
[ $? -eq 0 ] || exit 1

# Detector tax with the cache hitting: < 3x cached replay. Wall-clock
# derived (though within-run), so WARN_ONLY may demote a miss.
python3 - "$fresh_dir/BENCH_table3_emulation.json" <<'PYEOF'
import json, os, sys

with open(sys.argv[1]) as f:
    doc = json.load(f)
ratio = doc.get("derived", {}).get("detector_cached_ratio")
if ratio is None:
    print("check_perf: detector_cached_ratio missing from bench JSON", file=sys.stderr)
    sys.exit(1)
print(f"check_perf: detector_cached_ratio {ratio:.2f}x (limit 3.0x)")
if ratio >= 3.0:
    msg = f"detector-to-cached ratio {ratio:.2f}x breaches the 3x budget"
    if os.environ.get("CHECK_PERF_WARN_ONLY") == "1":
        print(f"WARNING (CHECK_PERF_WARN_ONLY=1): {msg}", file=sys.stderr)
    else:
        print(f"FAIL: {msg}", file=sys.stderr)
        sys.exit(1)
PYEOF
[ $? -eq 0 ] || exit 1

# Live publish pipeline gates (bench_ablation_live_obs, PR 10):
#   * derived.steady_allocs == 0: the direct pipeline loop must not
#     heap-allocate once warm. A deterministic allocation count, not a
#     timing — no CHECK_PERF_WARN_ONLY escape.
#   * derived.publish_ns_per_txn <= 800: the full publish->pump->
#     aggregate cost per transaction, measured directly against a real
#     daemon. Wall-clock timed, so WARN_ONLY may demote a miss.
#   * derived.live_publish_pct_of_base < 15: that direct cost as a
#     share of the no-daemon per-transaction baseline — the "publish
#     plus attribution under 15% of baseline wall" acceptance number.
#     The denominator is wall-clock, so WARN_ONLY may demote a miss.
#   * derived.live_publish_overhead_pct < 24.5: end-to-end wall
#     overhead of the daemon-attached TPC-W arm. A difference of whole
#     arm times — it cannot resolve finer than a few points through
#     container scheduling jitter — so its ceiling is the PR 10
#     acceptance target of a >=2x cut from the ~49% PR 9 delta, not
#     the 15% figure the direct share gates. Wall-clock,
#     WARN_ONLY-demotable.
#   * derived.attr_publish_overhead_pct < 15 (PR 9): the attribution
#     pass's added per-transaction cost over the no-daemon baseline.
#     The baseline denominator is wall-clock, so WARN_ONLY demotes it.
# The bench's sim-identity assertion (the daemon must not perturb the
# run) gates hard inside the binary.
python3 - "$fresh_dir/BENCH_ablation_live_obs.json" <<'PYEOF'
import json, os, sys

with open(sys.argv[1]) as f:
    doc = json.load(f)
derived = doc.get("derived", {})
warn_only = os.environ.get("CHECK_PERF_WARN_ONLY") == "1"
failed = False

def miss(msg, demotable):
    global failed
    if demotable and warn_only:
        print(f"WARNING (CHECK_PERF_WARN_ONLY=1): {msg}", file=sys.stderr)
    else:
        print(f"FAIL: {msg}", file=sys.stderr)
        failed = True

allocs = derived.get("steady_allocs")
if allocs is None:
    print("check_perf: steady_allocs missing from bench JSON", file=sys.stderr)
    sys.exit(1)
print(f"check_perf: live publish steady-state allocations {allocs} (must be 0)")
if allocs != 0:
    miss(f"live publish path allocated {allocs} times in steady state", demotable=False)

publish_ns = derived.get("publish_ns_per_txn")
if publish_ns is None:
    print("check_perf: publish_ns_per_txn missing from bench JSON", file=sys.stderr)
    sys.exit(1)
print(f"check_perf: live publish pipeline {publish_ns} ns/txn (limit 800)")
if publish_ns > 800:
    miss(f"publish pipeline {publish_ns} ns/txn breaches the 800ns budget", demotable=True)

share_pct = derived.get("live_publish_pct_of_base")
if share_pct is None:
    print("check_perf: live_publish_pct_of_base missing from bench JSON", file=sys.stderr)
    sys.exit(1)
print(f"check_perf: live publish direct cost {share_pct:+.2f}% of baseline (limit 15%)")
if share_pct >= 15.0:
    miss(f"live publish direct cost {share_pct:.2f}% of baseline breaches the 15% budget", demotable=True)

live_pct = derived.get("live_publish_overhead_pct")
if live_pct is None:
    print("check_perf: live_publish_overhead_pct missing from bench JSON", file=sys.stderr)
    sys.exit(1)
print(f"check_perf: live publish wall overhead {live_pct:+.2f}% (limit 24.5% = half the PR 9 delta)")
if live_pct >= 24.5:
    miss(f"live publish wall overhead {live_pct:.2f}% is not a 2x cut of the 49% PR 9 delta", demotable=True)

attr_pct = derived.get("attr_publish_overhead_pct")
if attr_pct is None:
    print("check_perf: attr_publish_overhead_pct missing from bench JSON", file=sys.stderr)
    sys.exit(1)
print(f"check_perf: attribution publish overhead {attr_pct:+.2f}% of baseline (limit 15%)")
if attr_pct >= 15.0:
    miss(f"attribution publish overhead {attr_pct:.2f}% breaches the 15% budget", demotable=True)

if failed:
    sys.exit(1)
PYEOF
[ $? -eq 0 ] || exit 1

# Million-client DES gates (bench_scaling_clients). Both are wall-clock
# derived, so CHECK_PERF_WARN_ONLY may demote a miss; the flat-memory
# ratio already gated hard inside the bench binary above.
python3 - "$fresh_dir/BENCH_scaling_clients.json" <<'PYEOF'
import json, os, sys

with open(sys.argv[1]) as f:
    doc = json.load(f)
derived = doc.get("derived", {})
warn_only = os.environ.get("CHECK_PERF_WARN_ONLY") == "1"
failed = False

def miss(msg):
    global failed
    if warn_only:
        print(f"WARNING (CHECK_PERF_WARN_ONLY=1): {msg}", file=sys.stderr)
    else:
        print(f"FAIL: {msg}", file=sys.stderr)
        failed = True

# Ladder-vs-heap hold model at 2^17 pending events: the tentpole's
# acceptance headline is a >= 2x Step() speedup.
speedup = derived.get("scheduler_speedup")
if speedup is None:
    print("check_perf: scheduler_speedup missing from bench JSON", file=sys.stderr)
    sys.exit(1)
print(f"check_perf: scheduler_speedup {speedup:.2f}x at 131072 pending (floor 2.0x)")
if speedup < 2.0:
    miss(f"ladder-vs-heap speedup {speedup:.2f}x is below the 2x floor")

# Engine throughput at the sweep's top scale. Absolute floor rather
# than a baseline diff: the gate sweep tops out at 100k clients while
# committed baselines record the 1M point, so the two are not
# comparable run-to-run.
eps = derived.get("events_per_sec")
if eps is None:
    print("check_perf: events_per_sec missing from bench JSON", file=sys.stderr)
    sys.exit(1)
floor = 100000
print(f"check_perf: open-loop engine {eps} events/sec (floor {floor})")
if eps < floor:
    miss(f"open-loop engine ran {eps} events/sec, below the {floor} floor")

if failed:
    sys.exit(1)
PYEOF
[ $? -eq 0 ] || exit 1

python3 - "$baseline" "$fresh_dir/BENCH_table3_emulation.json" "$threshold_pct" <<'PYEOF'
import json, os, sys

baseline_path, fresh_path, threshold = sys.argv[1], sys.argv[2], float(sys.argv[3])
with open(baseline_path) as f:
    baseline = json.load(f)
with open(fresh_path) as f:
    fresh = json.load(f)

def cached_ns(doc, floor=False):
    derived = doc.get("derived", {})
    if floor and "emulate_cached_ns_per_op_min" in derived:
        return derived["emulate_cached_ns_per_op_min"]
    return derived.get("emulate_cached_ns_per_op")

# Gate the fresh *min* against the baseline median: individual runs on
# shared/containerized hosts routinely read 15%+ hot, but a lost fast
# path slows every run, including the best one.
base, now = cached_ns(baseline), cached_ns(fresh, floor=True)
if base is None or now is None:
    print("check_perf: emulate_cached_ns_per_op missing from bench JSON", file=sys.stderr)
    sys.exit(1)

delta_pct = 100.0 * (now - base) / base
print(f"check_perf: emulate-from-cache {base:.1f} ns/op (baseline) -> "
      f"{now:.1f} ns/op (fresh min), {delta_pct:+.1f}%")
if delta_pct > threshold:
    msg = (f"bench_table3_emulation emulate-from-cache regressed "
           f"{delta_pct:.1f}% (> {threshold:.0f}% threshold)")
    if os.environ.get("CHECK_PERF_WARN_ONLY") == "1":
        print(f"WARNING (CHECK_PERF_WARN_ONLY=1): {msg}", file=sys.stderr)
    else:
        print(f"FAIL: {msg}", file=sys.stderr)
        sys.exit(1)
else:
    print("check_perf: OK")
PYEOF
