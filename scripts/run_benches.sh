#!/bin/sh
# Bench trajectory harness: runs each bench_* binary N times and writes
# one BENCH_<name>.json per bench with median/min wall time, the
# google-benchmark per-op timings (when the bench embeds gbench), the
# instruction counts, and the obs-layer metrics snapshot of the last
# run. The JSON schema is documented in docs/METRICS.md ("Bench
# trajectory files"). Future PRs diff these files to prove a hot-path
# change actually moved the needle (scripts/check_perf.sh).
#
# Usage: scripts/run_benches.sh [-n RUNS] [-B BUILD_DIR] [-o OUT_DIR] [bench_name ...]
#   bench_name defaults to every build/bench/bench_* binary.
#
# $BENCH_THREADS (default 1) sets each bench's job-list parallelism
# and $BENCH_SHARDS (default 1) the apps' logical shard count
# (bench/bench_util.h); both are recorded in the output JSON. Baselines
# are recorded at 1/1 — bump the knobs only for scaling experiments,
# not for committed baselines.
#
# Output is atomic: BENCH_*.json files are staged in the workdir and
# only moved into OUT_DIR after every bench has succeeded, so a bench
# failing mid-suite can never leave OUT_DIR with a half-updated mix of
# fresh and stale files.
set -u

repo_root=$(CDPATH= cd -- "$(dirname -- "$0")/.." && pwd)
runs=5
build_dir="$repo_root/build"
out_dir="$repo_root/bench/baselines"

while getopts "n:B:o:" opt; do
  case "$opt" in
    n) runs="$OPTARG" ;;
    B) build_dir="$OPTARG" ;;
    o) out_dir="$OPTARG" ;;
    *) echo "usage: $0 [-n RUNS] [-B BUILD_DIR] [-o OUT_DIR] [bench ...]" >&2; exit 2 ;;
  esac
done
shift $((OPTIND - 1))

# Benches run from a temp workdir (metric dumps land there), so the
# build dir must be absolute or a relative -B would dangle after cd.
case "$build_dir" in
  /*) ;;
  *) build_dir=$(CDPATH= cd -- "$build_dir" 2>/dev/null && pwd) || {
       echo "run_benches: build dir not found" >&2; exit 1; } ;;
esac

bench_dir="$build_dir/bench"
if [ ! -d "$bench_dir" ]; then
  echo "run_benches: no bench binaries in $bench_dir (build first)" >&2
  exit 1
fi

if [ "$#" -gt 0 ]; then
  benches="$*"
else
  benches=$(cd "$bench_dir" && ls bench_* 2>/dev/null)
fi
if [ -z "$benches" ]; then
  echo "run_benches: nothing to run" >&2
  exit 1
fi

mkdir -p "$out_dir"
workdir=$(mktemp -d)
trap 'rm -rf "$workdir"' EXIT
# Belt and braces with the cd below: metric dumps (bench_util.h)
# honor this and land in the workdir, never the source tree.
WHODUNIT_METRICS_DIR="$workdir"
export WHODUNIT_METRICS_DIR

# Parallelism knobs, threaded through to the bench binaries
# (bench/bench_util.h) and recorded in the output JSON.
# BENCH_SAMPLE_RATE (default 1.0) is the production-sampling rate the
# apps-level benches run at (docs/PRODUCTION.md); committed baselines
# are recorded at 1.0.
BENCH_THREADS=${BENCH_THREADS:-1}
BENCH_SHARDS=${BENCH_SHARDS:-1}
BENCH_SAMPLE_RATE=${BENCH_SAMPLE_RATE:-1.0}
export BENCH_THREADS BENCH_SHARDS BENCH_SAMPLE_RATE

# Finished JSONs are staged here and promoted to $out_dir only once
# the whole suite has passed.
staging="$workdir/staged"
mkdir -p "$staging"

for bench in $benches; do
  bin="$bench_dir/$bench"
  if [ ! -x "$bin" ]; then
    # A named bench without a binary is an error, not a skip: a silent
    # skip lets a stale baseline masquerade as a fresh measurement.
    echo "run_benches: no binary for $bench at $bin (build first)" >&2
    exit 1
  fi
  # Metric dumps are named after the bench with the bench_ prefix
  # stripped (bench_util.h: DumpMetrics("table3_emulation")).
  name=${bench#bench_}
  echo "== $bench ($runs runs) =="
  # Scrub the previous bench's per-run droppings so a bench that does
  # not write gbench/metrics files can never pick up a predecessor's.
  rm -f "$workdir"/gbench_*.json "$workdir"/run_*.log \
        "$workdir"/BENCH_*.metrics.json "$workdir"/*.walls
  : > "$workdir/$name.walls"
  run=1
  while [ "$run" -le "$runs" ]; do
    # Benches that embed google-benchmark honor --benchmark_out; the
    # plain table-printer benches never parse argv, so the flags are
    # harmless there (gbench_N.json simply is not written).
    start=$(date +%s%N)
    (cd "$workdir" && "$bin" \
        --benchmark_out="$workdir/gbench_$run.json" \
        --benchmark_out_format=json >"$workdir/run_$run.log" 2>&1)
    rc=$?
    end=$(date +%s%N)
    if [ "$rc" -ne 0 ]; then
      echo "run_benches: $bench run $run FAILED (rc=$rc); log follows" >&2
      cat "$workdir/run_$run.log" >&2
      exit 1
    fi
    echo "$((end - start))" >> "$workdir/$name.walls"
    run=$((run + 1))
  done

  python3 - "$name" "$workdir" "$runs" "$staging" <<'PYEOF'
import json, os, statistics, sys

name, workdir, runs, out_dir = sys.argv[1], sys.argv[2], int(sys.argv[3]), sys.argv[4]

walls_ns = [int(line) for line in open(os.path.join(workdir, name + ".walls"))]
wall_ms = sorted(w / 1e6 for w in walls_ns)

out = {
    "schema": "whodunit-bench-v1",
    "bench": name,
    "binary": "bench_" + name,
    "runs": runs,
    # Parallelism the suite ran with (docs/PERFORMANCE.md). Committed
    # baselines use 1/1; comparing trajectories only makes sense when
    # these match.
    "threads": int(os.environ.get("BENCH_THREADS", "1")),
    "shards": int(os.environ.get("BENCH_SHARDS", "1")),
    "sample_rate": float(os.environ.get("BENCH_SAMPLE_RATE", "1.0")),
    "wall_ms": {
        "median": round(statistics.median(wall_ms), 3),
        "min": round(wall_ms[0], 3),
        "all": [round(w, 3) for w in wall_ms],
    },
}

# google-benchmark per-op timings: median across runs, per benchmark.
gbench = {}
for run in range(1, runs + 1):
    path = os.path.join(workdir, f"gbench_{run}.json")
    if not os.path.exists(path):
        continue
    with open(path) as f:
        doc = json.load(f)
    for b in doc.get("benchmarks", []):
        if b.get("run_type", "iteration") != "iteration":
            continue
        gbench.setdefault(b["name"], []).append(
            (b["real_time"], b["cpu_time"], b["iterations"]))
if gbench:
    out["google_benchmark"] = {
        bname: {
            "real_time_ns": round(statistics.median(r[0] for r in rows), 2),
            "cpu_time_ns": round(statistics.median(r[1] for r in rows), 2),
            "iterations": max(r[2] for r in rows),
        }
        for bname, rows in sorted(gbench.items())
    }

# Obs-layer metrics of the last run (deltas: each process starts at 0).
metrics_path = os.path.join(workdir, f"BENCH_{name}.metrics.json")
if os.path.exists(metrics_path):
    with open(metrics_path) as f:
        metrics = json.load(f)
    out["metrics"] = metrics
    counters = metrics.get("counters", metrics)
    instr = {}
    for key, dst in (("vm.instructions_emulated", "emulated"),
                     ("vm.instructions_direct", "direct")):
        if key in counters:
            instr[dst] = counters[key]
    if instr:
        out["instructions"] = instr

# The acceptance-criteria headline for the emulation bench. The median
# is the record; the min is the noise floor scripts/check_perf.sh gates
# on (container scheduling inflates individual runs by 15%+).
gb = out.get("google_benchmark", {})
derived = {}
if "BM_EmulationFromCache" in gb:
    derived["emulate_cached_ns_per_op"] = gb["BM_EmulationFromCache"]["cpu_time_ns"]
    derived["emulate_cached_ns_per_op_min"] = round(
        min(r[1] for r in gbench["BM_EmulationFromCache"]), 2)

# Detector tax with the section cache hitting, relative to cached
# replay without observation — the "<3x" acceptance headline
# (docs/PERFORMANCE.md). A within-run ratio, so host noise that
# inflates both numerators cancels out.
if "BM_SectionCacheWithDetector" in gb and "BM_EmulationFromCache" in gb:
    derived["detector_cached_ratio"] = round(
        gb["BM_SectionCacheWithDetector"]["cpu_time_ns"]
        / gb["BM_EmulationFromCache"]["cpu_time_ns"], 3)

# Section-cache hit rate from the obs counters, wherever the bench
# exercised the flow-summary cache (docs/METRICS.md).
counters = out.get("metrics", {}).get("counters", {})
sc_hits = counters.get("shm.section_cache.hits", 0)
sc_misses = counters.get("shm.section_cache.misses", 0)
if sc_hits + sc_misses > 0:
    derived["section_cache_hit_rate"] = round(sc_hits / (sc_hits + sc_misses), 6)

# Million-client scaling headlines (bench_scaling_clients): open-loop
# engine throughput, flat per-client memory, and the ladder-vs-heap
# hold-model speedup at 2^17 pending events (docs/PERFORMANCE.md).
gauges = out.get("metrics", {}).get("gauges", {})
if "bench.scaling.events_per_sec" in gauges:
    derived["events_per_sec"] = gauges["bench.scaling.events_per_sec"]
    derived["bytes_per_client"] = gauges.get("bench.scaling.bytes_per_client_max", 0)
    ten_k = gauges.get("bench.scaling.bytes_per_client_10k", 0)
    if ten_k:
        derived["bytes_per_client_10k"] = ten_k
        derived["bytes_per_client_ratio"] = round(
            derived["bytes_per_client"] / ten_k, 3)
if "BM_LadderHold/131072" in gb and "BM_HeapHold/131072" in gb:
    derived["scheduler_speedup"] = round(
        gb["BM_HeapHold/131072"]["cpu_time_ns"]
        / gb["BM_LadderHold/131072"]["cpu_time_ns"], 3)

# Live-observability ablation headlines (bench_ablation_live_obs):
#   * publish_ns_per_txn — the full publish->pump->aggregate pipeline
#     cost per transaction, measured directly against a real daemon
#     (check_perf.sh <=800ns gate);
#   * live_publish_pct_of_base — that direct cost as a percentage of
#     the no-daemon per-transaction baseline (<15% gate: the "publish
#     plus attribution under 15% of baseline wall" acceptance number,
#     computed from the tight direct measurement);
#   * live_publish_overhead_pct — the wall-clock overhead of the
#     daemon-attached arm over the detached arm. A difference of whole
#     arm times, so it carries this container's scheduling jitter;
#     gated only against the PR 10 >=2x-cut ceiling (<24.5%, half the
#     ~49% PR 9 wall delta);
#   * attr_publish_overhead_pct — the attribution pass's added cost as
#     a percentage of the no-daemon per-transaction baseline (<15%);
#   * steady_allocs — heap allocations in the steady-state windows of
#     the direct pipeline loop (==0 hard gate: the publish path must
#     never touch the allocator once warm).
if "bench.ablation_live_obs.base_ns_per_txn" in gauges:
    base_ns = gauges["bench.ablation_live_obs.base_ns_per_txn"]
    publish_ns = gauges.get("bench.ablation_live_obs.publish_ns_per_txn", 0)
    attr_ns = gauges.get("bench.ablation_live_obs.attr_publish_ns_per_txn", 0)
    derived["publish_ns_per_txn"] = publish_ns
    derived["attr_publish_ns_per_txn"] = attr_ns
    if base_ns > 0:
        derived["attr_publish_overhead_pct"] = round(100.0 * attr_ns / base_ns, 2)
        derived["live_publish_pct_of_base"] = round(
            100.0 * publish_ns / base_ns, 2)
    if "bench.ablation_live_obs.live_overhead_pct_x100" in gauges:
        derived["live_publish_overhead_pct"] = round(
            gauges["bench.ablation_live_obs.live_overhead_pct_x100"] / 100.0, 2)
    if "bench.ablation_live_obs.steady_allocs" in gauges:
        derived["steady_allocs"] = gauges["bench.ablation_live_obs.steady_allocs"]

if derived:
    out["derived"] = derived

dest = os.path.join(out_dir, f"BENCH_{name}.json")
with open(dest, "w") as f:
    json.dump(out, f, indent=2, sort_keys=False)
    f.write("\n")
print(f"   staged BENCH_{name}.json")
PYEOF
  [ $? -eq 0 ] || exit 1
done

# Every bench passed: promote the staged JSONs in one pass.
for staged in "$staging"/BENCH_*.json; do
  [ -e "$staged" ] || continue
  mv -f "$staged" "$out_dir/"
  echo "   -> $out_dir/$(basename "$staged")"
done
