#!/bin/sh
# Docs drift check: every src/<subsystem>/ directory must have a section in
# docs/ARCHITECTURE.md, and the files docs link to must exist. Run from
# anywhere; registered with ctest as `check_docs`.
set -u

repo_root=$(CDPATH= cd -- "$(dirname -- "$0")/.." && pwd)
arch="$repo_root/docs/ARCHITECTURE.md"
status=0

if [ ! -f "$arch" ]; then
  echo "check_docs: missing $arch" >&2
  exit 1
fi

for dir in "$repo_root"/src/*/; do
  name=$(basename "$dir")
  if ! grep -q "src/$name" "$arch"; then
    echo "check_docs: src/$name/ has no section in docs/ARCHITECTURE.md" >&2
    status=1
  fi
done

for doc in docs/ARCHITECTURE.md docs/METRICS.md docs/OBSERVABILITY.md \
           docs/PROFILE_FORMAT.md docs/PRODUCTION.md; do
  if [ ! -f "$repo_root/$doc" ]; then
    echo "check_docs: missing $doc" >&2
    status=1
  fi
done

# README must point at the docs so they stay discoverable.
for doc in ARCHITECTURE.md METRICS.md OBSERVABILITY.md PROFILE_FORMAT.md \
           PRODUCTION.md; do
  if ! grep -q "docs/$doc" "$repo_root/README.md"; then
    echo "check_docs: README.md does not link docs/$doc" >&2
    status=1
  fi
done

# Every metric the code exports (a string literal passed to
# GetCounter/GetGauge/GetHistogram anywhere under src/) must be
# documented in the docs/METRICS.md catalog.
metrics_doc="$repo_root/docs/METRICS.md"
exported=$(grep -rhoE 'Get(Counter|Gauge|Histogram)\("[^"]+"' "$repo_root/src" \
           | sed 's/.*("//; s/"$//' | sort -u)
for metric in $exported; do
  if ! grep -qF "$metric" "$metrics_doc"; then
    echo "check_docs: metric \"$metric\" is exported in src/ but not documented in docs/METRICS.md" >&2
    status=1
  fi
done

if [ "$status" -eq 0 ]; then
  echo "check_docs: OK"
fi
exit "$status"
