// Ablation: production sampling rate sweep (docs/PRODUCTION.md).
//
// The production deployment model (FoundationDB's `profile client set
// 0.01 100MB`) gates the whole pipeline — sampler, synopsis
// piggybacking, shm flow emulation, live publish — behind one
// per-transaction coin flip. This bench runs the identical Apache
// stand-in workload with the profiler off and at sampling rates 100%,
// 10%, 1%, and 0.1%, and reports the per-transaction profiling
// overhead at each rate, measured in SIMULATED time (deterministic:
// the same machine-independent numbers on every run).
//
// The claims under test:
//   * overhead decreases monotonically as the rate drops (each gate
//     really is behind the coin flip — nothing keeps charging
//     full-rate costs);
//   * at 0.1% the per-transaction cost is within 10% of the
//     profiler-off cost: an unsampled transaction pays only the flip.
#include <cstdio>

#include "bench/bench_util.h"
#include "src/apps/minihttpd/minihttpd.h"

int main() {
  using namespace whodunit;
  bench::Header("Ablation: sampling rate sweep (minihttpd, 30s sim)");

  struct Arm {
    const char* label;
    callpath::ProfilerMode mode;
    double rate;
  };
  const Arm arms[] = {
      {"profiler off", callpath::ProfilerMode::kNone, 1.0},
      {"rate 100%", callpath::ProfilerMode::kWhodunit, 1.0},
      {"rate  10%", callpath::ProfilerMode::kWhodunit, 0.1},
      {"rate   1%", callpath::ProfilerMode::kWhodunit, 0.01},
      {"rate 0.1%", callpath::ProfilerMode::kWhodunit, 0.001},
  };
  constexpr size_t kArms = sizeof(arms) / sizeof(arms[0]);

  const auto results = bench::RunJobs(kArms, [&arms](size_t i) {
    apps::MinihttpdOptions options;
    options.clients = 64;
    options.workers = 8;
    options.duration = sim::Seconds(30);
    options.mode = arms[i].mode;
    options.sample_rate = arms[i].rate;
    options.shards = bench::BenchShards();
    return apps::RunMinihttpd(options);
  });

  // Per-transaction cost in simulated nanoseconds: the measurement
  // window divided by requests completed in it. Profiling costs slow
  // the (closed-loop) clients down, so fewer requests complete in the
  // same window; the per-request quotient isolates that cost.
  const double window_ns = static_cast<double>(sim::Seconds(30) - sim::Seconds(30) / 5);
  double per_req[kArms];
  std::printf("%-14s %12s %12s %14s %10s\n", "arm", "Mb/s", "requests",
              "ns/request", "overhead");
  for (size_t i = 0; i < kArms; ++i) {
    per_req[i] = window_ns / static_cast<double>(results[i].requests);
    const double overhead_pct = 100.0 * (per_req[i] - per_req[0]) / per_req[0];
    std::printf("%-14s %12.2f %12lu %14.1f %+9.2f%%\n", arms[i].label,
                results[i].throughput_mbps,
                static_cast<unsigned long>(results[i].requests), per_req[i],
                overhead_pct);
  }
  std::printf("emulated critical sections: 100%%=%lu  10%%=%lu  1%%=%lu  0.1%%=%lu\n",
              static_cast<unsigned long>(results[1].critical_sections_emulated),
              static_cast<unsigned long>(results[2].critical_sections_emulated),
              static_cast<unsigned long>(results[3].critical_sections_emulated),
              static_cast<unsigned long>(results[4].critical_sections_emulated));

  int rc = 0;
  // Claim 1: monotonically decreasing per-transaction overhead as the
  // rate drops. Simulated time is deterministic, but the closed-loop
  // clients draw slightly different connection mixes at each rate
  // (different decision streams → different schedules), which moves
  // the per-request quotient by a few tenths of a percent even when
  // the profiling cost itself is zero. Allow that mix noise; it is an
  // order of magnitude below the rate-to-rate deltas under test.
  const double mix_eps = 0.005 * per_req[0];
  for (size_t i = 2; i < kArms; ++i) {
    if (per_req[i] > per_req[i - 1] + mix_eps) {
      std::printf("FAIL: per-request cost rose when rate dropped "
                  "(%s %.1f ns > %s %.1f ns)\n",
                  arms[i].label, per_req[i], arms[i - 1].label, per_req[i - 1]);
      rc = 1;
    }
  }
  // Claim 2: at 0.1% the per-transaction cost is within 10% of the
  // profiler-off cost.
  if (per_req[kArms - 1] > 1.10 * per_req[0]) {
    std::printf("FAIL: 0.1%% rate costs %.1f ns/request, more than 10%% over "
                "profiler-off %.1f ns/request\n",
                per_req[kArms - 1], per_req[0]);
    rc = 1;
  }
  std::printf("monotonic overhead decrease: %s\n", rc == 0 ? "yes" : "NO (BUG)");

  whodunit::bench::DumpMetrics("ablation_sampling");
  return rc;
}
