// Table 3: execution cost of Apache's critical sections under direct
// execution, translation + emulation, and cached emulation.
//
// Two complementary measurements:
//   1. The guest-cycle model (deterministic): what the simulator
//      charges for each mode — calibrated to land in the paper's
//      regimes (~10^2 cycles direct, ~10^4-10^5 translate+emulate,
//      ~10^4 cached emulation).
//   2. Real host time via google-benchmark: a native C++ rendering of
//      ap_queue_push/pop vs the MiniVM interpreter cold and warm. The
//      ordering (direct << cached emulation << translate+emulate) is a
//      property of the design and must hold on real hardware too.
#include <benchmark/benchmark.h>

#include <cstdio>

#include "bench/bench_util.h"
#include "src/shm/flow_detector.h"
#include "src/shm/guest_code.h"
#include "src/shm/section_cache.h"
#include "src/vm/interpreter.h"
#include "src/vm/program_builder.h"

namespace {

using namespace whodunit;

constexpr uint64_t kLockId = 1;
constexpr uint64_t kQueueBase = 0x1000;

// Native rendering of Figure 1's ap_queue_push/pop over the same
// sparse Memory, for an apples-to-apples "direct execution" number.
void NativePush(vm::Memory& mem, uint64_t sd, uint64_t p) {
  const uint64_t nelts = mem.Read(kQueueBase);
  const uint64_t elem = kQueueBase + shm::kApQueueDataOffset + nelts * shm::kApQueueElemSize;
  mem.Write(elem, sd);
  mem.Write(elem + 8, p);
  mem.Write(kQueueBase, nelts + 1);
}

std::pair<uint64_t, uint64_t> NativePop(vm::Memory& mem) {
  const uint64_t nelts = mem.Read(kQueueBase) - 1;
  mem.Write(kQueueBase, nelts);
  const uint64_t elem = kQueueBase + shm::kApQueueDataOffset + nelts * shm::kApQueueElemSize;
  return {mem.Read(elem), mem.Read(elem + 8)};
}

void BM_DirectExecution(benchmark::State& state) {
  vm::Memory mem;
  for (auto _ : state) {
    NativePush(mem, 42, 43);
    auto [sd, p] = NativePop(mem);
    benchmark::DoNotOptimize(sd);
    benchmark::DoNotOptimize(p);
  }
}
BENCHMARK(BM_DirectExecution);

void BM_TranslationAndEmulation(benchmark::State& state) {
  vm::Program push = shm::ApQueuePush(kLockId);
  vm::Program pop = shm::ApQueuePop(kLockId);
  vm::Memory mem;
  vm::CpuState cpu;
  cpu.regs[0] = kQueueBase;
  cpu.regs[5] = 0x2000;
  cpu.regs[6] = 0x2008;
  vm::Interpreter interp;
  for (auto _ : state) {
    interp.FlushTranslationCache();  // every run pays translation
    cpu.regs[1] = 42;
    cpu.regs[2] = 43;
    interp.Execute(push, 0, cpu, mem);
    interp.Execute(pop, 0, cpu, mem);
    benchmark::DoNotOptimize(cpu.regs[7]);
  }
}
BENCHMARK(BM_TranslationAndEmulation);

// Warm translation cache, but still interpreting every instruction —
// the pre-section-cache fast path, kept as the ablation baseline.
void BM_EmulationInterpreted(benchmark::State& state) {
  vm::Program push = shm::ApQueuePush(kLockId);
  vm::Program pop = shm::ApQueuePop(kLockId);
  vm::Memory mem;
  vm::CpuState cpu;
  cpu.regs[0] = kQueueBase;
  cpu.regs[5] = 0x2000;
  cpu.regs[6] = 0x2008;
  vm::Interpreter interp;
  for (auto _ : state) {
    cpu.regs[1] = 42;
    cpu.regs[2] = 43;
    interp.Execute(push, 0, cpu, mem);
    interp.Execute(pop, 0, cpu, mem);
    benchmark::DoNotOptimize(cpu.regs[7]);
  }
}
BENCHMARK(BM_EmulationInterpreted);

// Warm runs through the flow-summary cache (src/shm/section_cache.h):
// the steady state replays recorded summaries instead of re-entering
// the MiniVM dispatch loop. This is the Table 3 "emulate cached"
// regime and the headline number for the cache.
void BM_EmulationFromCache(benchmark::State& state) {
  vm::Program push = shm::ApQueuePush(kLockId);
  vm::Program pop = shm::ApQueuePop(kLockId);
  vm::Memory mem;
  vm::CpuState cpu;
  cpu.regs[0] = kQueueBase;
  cpu.regs[5] = 0x2000;
  cpu.regs[6] = 0x2008;
  vm::Interpreter interp;
  shm::SectionCache::Config cfg;
  cfg.shadow_verify = false;  // measure the production fast path
  shm::SectionCache cache(cfg);
  for (auto _ : state) {
    cpu.regs[1] = 42;
    cpu.regs[2] = 43;
    cache.Run(interp, push, 0, cpu, mem, nullptr);
    cache.Run(interp, pop, 0, cpu, mem, nullptr);
    benchmark::DoNotOptimize(cpu.regs[7]);
  }
  state.counters["hit_rate"] =
      static_cast<double>(cache.hits()) / static_cast<double>(cache.hits() + cache.misses());
}
BENCHMARK(BM_EmulationFromCache);

// Cached emulation with the flow detector attached — the full
// Whodunit observation cost. The devirtualized variant binds the hook
// calls to the concrete (final) FlowDetector at compile time via
// ExecuteWith; the virtual variant goes through the
// InstructionObserver vtable, the pre-optimization dispatch path.
template <bool kDevirtualized>
void EmulationWithDetector(benchmark::State& state) {
  vm::Program push = shm::ApQueuePush(kLockId);
  vm::Program pop = shm::ApQueuePop(kLockId);
  vm::Memory mem;
  vm::CpuState cpu;
  cpu.regs[0] = kQueueBase;
  cpu.regs[5] = 0x2000;
  cpu.regs[6] = 0x2008;
  vm::Interpreter interp;
  shm::FlowDetector detector([](vm::ThreadId t) { return shm::CtxtId{t}; });
  for (auto _ : state) {
    cpu.regs[1] = 42;
    cpu.regs[2] = 43;
    if constexpr (kDevirtualized) {
      interp.ExecuteWith(push, 0, cpu, mem, &detector);
      interp.ExecuteWith(pop, 0, cpu, mem, &detector);
    } else {
      interp.Execute(push, 0, cpu, mem, &detector);
      interp.Execute(pop, 0, cpu, mem, &detector);
    }
    benchmark::DoNotOptimize(cpu.regs[7]);
  }
  benchmark::DoNotOptimize(detector.flows_detected());
}

void BM_EmulationWithDetector(benchmark::State& state) {
  EmulationWithDetector<true>(state);
}
BENCHMARK(BM_EmulationWithDetector);

void BM_EmulationWithDetectorVirtual(benchmark::State& state) {
  EmulationWithDetector<false>(state);
}
BENCHMARK(BM_EmulationWithDetectorVirtual);

// Full observation cost through the section cache: dictionary effects
// replay symbolically (contexts resolved against the live dictionary)
// instead of re-running the per-instruction flow hooks.
void BM_SectionCacheWithDetector(benchmark::State& state) {
  vm::Program push = shm::ApQueuePush(kLockId);
  vm::Program pop = shm::ApQueuePop(kLockId);
  vm::Memory mem;
  vm::CpuState cpu;
  cpu.regs[0] = kQueueBase;
  cpu.regs[5] = 0x2000;
  cpu.regs[6] = 0x2008;
  vm::Interpreter interp;
  shm::FlowDetector detector([](vm::ThreadId t) { return shm::CtxtId{t}; });
  shm::SectionCache::Config cfg;
  cfg.shadow_verify = false;
  shm::SectionCache cache(cfg);
  for (auto _ : state) {
    cpu.regs[1] = 42;
    cpu.regs[2] = 43;
    cache.Run(interp, push, 0, cpu, mem, &detector);
    cache.Run(interp, pop, 0, cpu, mem, &detector);
    benchmark::DoNotOptimize(cpu.regs[7]);
  }
  benchmark::DoNotOptimize(detector.flows_detected());
  state.counters["hit_rate"] =
      static_cast<double>(cache.hits()) / static_cast<double>(cache.hits() + cache.misses());
}
BENCHMARK(BM_SectionCacheWithDetector);

void PrintGuestCycleTable() {
  bench::Header(
      "Table 3: Apache critical-section cost in guest cycles (model)\n"
      "paper:  ap_queue_push  direct 131.64 | translate+emulate 62508 | cached 11606.8\n"
      "        ap_queue_pop   direct 109.72 | translate+emulate 40852 | cached 12118");

  vm::Interpreter interp;
  vm::Memory mem;
  const struct {
    const char* name;
    vm::Program program;
  } sections[] = {
      {"ap_queue_push", shm::ApQueuePush(kLockId)},
      {"ap_queue_pop", shm::ApQueuePop(kLockId)},
  };
  std::printf("%-15s | %10s | %20s | %15s\n", "critical sec.", "direct", "translate+emulate",
              "emulate cached");
  std::printf("----------------+------------+----------------------+----------------\n");
  for (const auto& section : sections) {
    vm::CpuState cpu;
    cpu.regs[0] = kQueueBase;
    cpu.regs[1] = 42;
    cpu.regs[2] = 43;
    cpu.regs[5] = 0x2000;
    cpu.regs[6] = 0x2008;
    vm::Memory fresh;
    // Prime the queue so pop has an element.
    vm::CpuState primer = cpu;
    vm::Interpreter direct_interp;
    direct_interp.Execute(shm::ApQueuePush(kLockId), 0, primer, fresh,
                          nullptr, vm::Interpreter::Mode::kDirect);

    vm::Interpreter cold;
    vm::CpuState c1 = cpu;
    auto translated = cold.Execute(section.program, 0, c1, fresh);
    vm::CpuState c2 = cpu;
    auto cached = cold.Execute(section.program, 0, c2, fresh);
    vm::CpuState c3 = cpu;
    auto direct = cold.Execute(section.program, 0, c3, fresh, nullptr,
                               vm::Interpreter::Mode::kDirect);
    std::printf("%-15s | %10ld | %20ld | %15ld\n", section.name,
                static_cast<long>(direct.guest_cycles),
                static_cast<long>(translated.guest_cycles),
                static_cast<long>(cached.guest_cycles));
  }
  std::printf("\nReal host-time ordering follows below (google-benchmark):\n");
}

}  // namespace

int main(int argc, char** argv) {
  PrintGuestCycleTable();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  whodunit::bench::DumpMetrics("table3_emulation");
  return 0;
}
