// Section 9.2: Whodunit's overhead on the Apache stand-in.
//
// Reproduced claims:
//   * the connection-churn workload forces repeated emulation of the
//     queue critical sections, yet throughput drops only a few percent
//     (paper: 393.64 -> 384.58 Mb/s, 2.3%) thanks to the translation
//     cache and allocator demotion;
//   * with all-persistent connections there would be nothing to
//     emulate at all (shown here by the emulated-sections count).
#include <cstdio>

#include "bench/bench_util.h"
#include "src/apps/minihttpd/minihttpd.h"

int main() {
  using namespace whodunit;
  bench::Header("Section 9.2: Whodunit overhead on Apache (minihttpd)");

  // Two jobs (unprofiled, profiled) on $BENCH_THREADS workers.
  const callpath::ProfilerMode modes[] = {callpath::ProfilerMode::kNone,
                                          callpath::ProfilerMode::kWhodunit};
  const auto results = bench::RunJobs(2, [&modes](size_t i) {
    apps::MinihttpdOptions options;
    options.clients = 64;
    options.workers = 8;
    options.duration = sim::Seconds(30);
    options.mode = modes[i];
    options.sample_rate = bench::BenchSampleRate();
    options.shards = bench::BenchShards();
    return apps::RunMinihttpd(options);
  });
  const apps::MinihttpdResult& off = results[0];
  const apps::MinihttpdResult& on = results[1];

  std::printf("normal execution:   %8.2f Mb/s   (paper: 393.64 Mb/s)\n", off.throughput_mbps);
  std::printf("profiled (Whodunit):%8.2f Mb/s   (paper: 384.58 Mb/s)\n", on.throughput_mbps);
  std::printf("overhead:           %8.2f %%     (paper: 2.3%%)\n",
              100.0 * (off.throughput_mbps - on.throughput_mbps) / off.throughput_mbps);
  std::printf("critical sections emulated: %lu over %lu connections\n",
              static_cast<unsigned long>(on.critical_sections_emulated),
              static_cast<unsigned long>(on.connections));
  std::printf("allocator critical sections demoted to direct execution: %s\n",
              on.allocator_demoted ? "yes" : "NO");
  whodunit::bench::DumpMetrics("sec92_apache_overhead");
  return 0;
}
