// Section 9.3: Whodunit's overhead on Squid and Haboob.
//
// Reproduced claims:
//   * Squid: peak throughput drops ~5.5% when profiled (paper:
//     262.27 -> 247.85 Mb/s) — the cost of per-event context tracking
//     in the instrumented event loop plus sampling;
//   * Haboob: ~4.2% (paper: 31.16 -> 29.84 Mb/s).
#include <cstdio>

#include "bench/bench_util.h"
#include "src/apps/miniproxy/miniproxy.h"
#include "src/apps/sedaserver/sedaserver.h"

int main() {
  using namespace whodunit;
  bench::Header("Section 9.3: Whodunit overhead on Squid and Haboob");

  // Four jobs (Squid off/on, Haboob off/on) on $BENCH_THREADS workers.
  // Jobs return only the throughput, so one job list covers both apps.
  const callpath::ProfilerMode modes[] = {callpath::ProfilerMode::kNone,
                                          callpath::ProfilerMode::kWhodunit};
  const auto results = bench::RunJobs(4, [&modes](size_t i) {
    if (i < 2) {
      apps::MiniproxyOptions options;
      options.clients = 64;
      options.duration = sim::Seconds(30);
      options.mode = modes[i];
      options.shards = bench::BenchShards();
      return apps::RunMiniproxy(options).throughput_mbps;
    }
    apps::SedaServerOptions options;
    options.clients = 64;
    options.duration = sim::Seconds(30);
    options.mode = modes[i - 2];
    options.shards = bench::BenchShards();
    return apps::RunSedaServer(options).throughput_mbps;
  });
  {
    const double off = results[0], on = results[1];
    std::printf("Squid   unprofiled: %8.2f Mb/s   (paper: 262.27 Mb/s)\n", off);
    std::printf("Squid   profiled:   %8.2f Mb/s   (paper: 247.85 Mb/s)\n", on);
    std::printf("Squid   overhead:   %8.2f %%     (paper: 5.5%%)\n\n",
                100.0 * (off - on) / off);
  }
  {
    const double off = results[2], on = results[3];
    std::printf("Haboob  unprofiled: %8.2f Mb/s   (paper: 31.16 Mb/s)\n", off);
    std::printf("Haboob  profiled:   %8.2f Mb/s   (paper: 29.84 Mb/s)\n", on);
    std::printf("Haboob  overhead:   %8.2f %%     (paper: 4.2%%)\n",
                100.0 * (off - on) / off);
  }
  whodunit::bench::DumpMetrics("sec93_proxy_seda_overhead");
  return 0;
}
