// Section 9.3: Whodunit's overhead on Squid and Haboob.
//
// Reproduced claims:
//   * Squid: peak throughput drops ~5.5% when profiled (paper:
//     262.27 -> 247.85 Mb/s) — the cost of per-event context tracking
//     in the instrumented event loop plus sampling;
//   * Haboob: ~4.2% (paper: 31.16 -> 29.84 Mb/s).
#include <cstdio>

#include "bench/bench_util.h"
#include "src/apps/miniproxy/miniproxy.h"
#include "src/apps/sedaserver/sedaserver.h"

int main() {
  using namespace whodunit;
  bench::Header("Section 9.3: Whodunit overhead on Squid and Haboob");

  {
    apps::MiniproxyOptions options;
    options.clients = 64;
    options.duration = sim::Seconds(30);
    options.mode = callpath::ProfilerMode::kNone;
    apps::MiniproxyResult off = apps::RunMiniproxy(options);
    options.mode = callpath::ProfilerMode::kWhodunit;
    apps::MiniproxyResult on = apps::RunMiniproxy(options);
    std::printf("Squid   unprofiled: %8.2f Mb/s   (paper: 262.27 Mb/s)\n",
                off.throughput_mbps);
    std::printf("Squid   profiled:   %8.2f Mb/s   (paper: 247.85 Mb/s)\n",
                on.throughput_mbps);
    std::printf("Squid   overhead:   %8.2f %%     (paper: 5.5%%)\n\n",
                100.0 * (off.throughput_mbps - on.throughput_mbps) / off.throughput_mbps);
  }
  {
    apps::SedaServerOptions options;
    options.clients = 64;
    options.duration = sim::Seconds(30);
    options.mode = callpath::ProfilerMode::kNone;
    apps::SedaServerResult off = apps::RunSedaServer(options);
    options.mode = callpath::ProfilerMode::kWhodunit;
    apps::SedaServerResult on = apps::RunSedaServer(options);
    std::printf("Haboob  unprofiled: %8.2f Mb/s   (paper: 31.16 Mb/s)\n",
                off.throughput_mbps);
    std::printf("Haboob  profiled:   %8.2f Mb/s   (paper: 29.84 Mb/s)\n",
                on.throughput_mbps);
    std::printf("Haboob  overhead:   %8.2f %%     (paper: 4.2%%)\n",
                100.0 * (off.throughput_mbps - on.throughput_mbps) / off.throughput_mbps);
  }
  whodunit::bench::DumpMetrics("sec93_proxy_seda_overhead");
  return 0;
}
