// Shard-parallel scaling: wall-clock speedup of the S-shard bookstore
// run (sim::ParallelRunner) as worker threads grow, plus the engine's
// central correctness claim — for a fixed shard count the merged
// profile is byte-identical no matter how many threads ran it.
//
// There is no paper row for this bench: it measures the reproduction's
// own parallel engine. The committed baseline was recorded on a
// single-core container, where speedup is necessarily ~1x; on an
// 8-core machine the 8 independent shard deployments are
// embarrassingly parallel and the same binary is expected to reach
// 6x or more at 8 threads (docs/PERFORMANCE.md, "Parallel execution").
#include <chrono>
#include <cstdio>
#include <functional>
#include <string>
#include <vector>

#include "bench/bench_util.h"
#include "src/apps/bookstore/bookstore.h"

namespace {

double WallSeconds(const std::function<void()>& fn) {
  const auto start = std::chrono::steady_clock::now();
  fn();
  const auto end = std::chrono::steady_clock::now();
  return std::chrono::duration<double>(end - start).count();
}

}  // namespace

int main() {
  using namespace whodunit;
  bench::Header(
      "Shard-parallel scaling: 8-shard TPC-W run vs worker threads\n"
      "merged profile must be byte-identical at every thread count");

  constexpr int kShards = 8;
  apps::BookstoreOptions options;
  options.clients = 200;
  options.duration = sim::Seconds(600);
  options.warmup = sim::Seconds(120);
  options.shards = kShards;

  double serial_s = 0;
  std::string reference_profile, reference_crosstalk;
  bool deterministic = true;
  std::printf("%8s | %9s | %8s | %s\n", "threads", "wall s", "speedup",
              "profile identical");
  std::printf("---------+-----------+----------+------------------\n");
  for (int threads : {1, 2, 4, 8}) {
    options.threads = threads;
    apps::BookstoreResult result;
    const double wall_s = WallSeconds([&] { result = apps::RunBookstore(options); });
    if (threads == 1) {
      serial_s = wall_s;
      reference_profile = result.db_profile_text;
      reference_crosstalk = result.crosstalk_text;
    }
    const bool identical = result.db_profile_text == reference_profile &&
                           result.crosstalk_text == reference_crosstalk;
    deterministic = deterministic && identical;
    std::printf("%8d | %9.2f | %7.2fx | %s\n", threads, wall_s,
                wall_s > 0 ? serial_s / wall_s : 0.0, identical ? "yes" : "NO");
  }
  std::printf("\nshard merge deterministic across thread counts: %s\n",
              deterministic ? "yes" : "NO");
  whodunit::bench::DumpMetrics("scaling_shards");
  return deterministic ? 0 : 1;
}
