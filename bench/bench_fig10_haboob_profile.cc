// Figure 10: transactional profile of the SEDA server (Haboob).
//
// Reproduced claim: the WriteStage is reached via two transaction
// paths — CacheStage -> WriteStage (hit) and CacheStage -> MissStage
// -> FileIoStage -> WriteStage (miss) — and Whodunit reports the CPU
// share of WriteStage separately per path (paper: 37.65% vs 46.58%).
#include <cstdio>

#include "bench/bench_util.h"
#include "src/apps/sedaserver/sedaserver.h"

int main() {
  using namespace whodunit;
  bench::Header("Figure 10: transactional profile of Haboob (sedaserver)");

  apps::SedaServerOptions options;
  options.mode = callpath::ProfilerMode::kWhodunit;
  options.clients = 64;
  options.duration = sim::Seconds(30);
  apps::SedaServerResult r = apps::RunSedaServer(options);

  std::printf("%s\n", r.profile_text.c_str());
  std::printf("requests served:        %lu (hits %lu / misses %lu)\n",
              static_cast<unsigned long>(r.requests),
              static_cast<unsigned long>(r.cache_hits),
              static_cast<unsigned long>(r.cache_misses));
  std::printf("throughput:             %.1f Mb/s   (paper: Haboob peaks ~31 Mb/s)\n",
              r.throughput_mbps);
  std::printf("WriteStage contexts:    %zu (paper: 2 — hit path and miss path)\n",
              r.write_stage_context_count);
  std::printf("  via cache-hit path:   %.2f%% of CPU   (paper: 37.65%%)\n",
              r.write_hit_share);
  std::printf("  via miss path:        %.2f%% of CPU   (paper: 46.58%%)\n",
              r.write_miss_share);
  whodunit::bench::DumpMetrics("fig10_haboob_profile");
  return 0;
}
