// Table 2 + §9.1: peak TPC-W throughput under no profiling, csprof,
// Whodunit, and gprof, plus the communication overhead of synopses.
//
// Reproduced claims:
//   * csprof's sampling overhead is small (paper: 1184 -> 1151, <3%);
//   * Whodunit adds almost nothing on top of csprof (paper: 1151 ->
//     1150, <0.1%);
//   * gprof's per-call instrumentation costs an order of magnitude
//     more on a call-dense server (paper: 898, ~24% drop);
//   * transaction-context synopses are ~1% of the bytes moved between
//     stages (paper: 0.95 MB vs 92.52 MB at peak throughput).
#include <cstdio>
#include <iterator>

#include "bench/bench_util.h"
#include "src/apps/bookstore/bookstore.h"

int main() {
  using namespace whodunit;
  bench::Header("Table 2: peak TPC-W throughput (tx/min) under the profilers");

  struct ModeRow {
    const char* name;
    callpath::ProfilerMode mode;
    double paper_tpm;
  };
  const ModeRow rows[] = {
      {"no profile", callpath::ProfilerMode::kNone, 1184},
      {"csprof", callpath::ProfilerMode::kCsprof, 1151},
      {"Whodunit", callpath::ProfilerMode::kWhodunit, 1150},
      {"gprof", callpath::ProfilerMode::kGprof, 898},
  };

  // One job per profiler mode, run on $BENCH_THREADS workers
  // (bench_util.h); results print in job order.
  const auto results = bench::RunJobs(std::size(rows), [&rows](size_t i) {
    apps::BookstoreOptions options;
    options.mode = rows[i].mode;
    // Saturated (the peak of the Figure 12 curve is the DB capacity).
    options.clients = 300;
    options.duration = sim::Seconds(1800);
    options.warmup = sim::Seconds(300);
    options.shards = bench::BenchShards();
    return apps::RunBookstore(options);
  });

  double none_tpm = 0;
  uint64_t whodunit_payload = 0, whodunit_context = 0;
  std::printf("%-12s | %10s | %10s | %s\n", "profiler", "paper", "measured",
              "drop vs none");
  std::printf("-------------+------------+------------+-------------\n");
  for (size_t i = 0; i < std::size(rows); ++i) {
    const ModeRow& row = rows[i];
    const apps::BookstoreResult& r = results[i];
    if (row.mode == callpath::ProfilerMode::kNone) {
      none_tpm = r.throughput_tpm;
    }
    if (row.mode == callpath::ProfilerMode::kWhodunit) {
      whodunit_payload = r.payload_bytes;
      whodunit_context = r.context_bytes;
    }
    std::printf("%-12s | %10.0f | %10.0f | %+.1f%%\n", row.name, row.paper_tpm,
                r.throughput_tpm,
                none_tpm > 0 ? 100.0 * (r.throughput_tpm - none_tpm) / none_tpm : 0.0);
  }

  bench::Header("Section 9.1: communication overhead of synopses (Whodunit run)");
  std::printf("application data between stages: %.2f MB (paper: 92.52 MB)\n",
              static_cast<double>(whodunit_payload) / 1e6);
  std::printf("transaction-context synopses:    %.3f MB (paper: 0.95 MB)\n",
              static_cast<double>(whodunit_context) / 1e6);
  std::printf("communication overhead:          %.2f%% (paper: ~1%%)\n",
              100.0 * static_cast<double>(whodunit_context) /
                  static_cast<double>(whodunit_payload));
  whodunit::bench::DumpMetrics("table2_overhead");
  return 0;
}
