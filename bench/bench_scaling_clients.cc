// Million-client DES scaling: the ladder-queue scheduler + arena-pooled
// events + open-loop arrival generators, measured end to end.
//
// Two measurements:
//   1. Scheduler hold model (google-benchmark): one Step() per
//      iteration on a queue holding N self-rescheduling events, for
//      the calendar/ladder queue vs the reference binary heap. The
//      acceptance headline is the >= 2x ladder speedup at >= 100k
//      pending events (derived.scheduler_speedup in the bench JSON).
//   2. Open-loop TPC-W sweep: Poisson arrivals from 1k to 1M logical
//      clients (~1 generator coroutine per 10k clients), stage cores
//      and worker pools provisioned proportionally to offered load so
//      the variable under test is population size. Per-client heap
//      must stay flat: bytes_per_client at the top scale must be
//      <= 1.1x its 10k-client value, asserted here and gated again in
//      scripts/check_perf.sh via derived.bytes_per_client.
//
// $BENCH_SCALING_MAX_CLIENTS caps the sweep (default 1000000; CI runs
// 100000 to keep the gate fast — scripts/check_perf.sh).
// $BENCH_SCALING_SCALES (comma-separated client counts) replaces the
// sweep entirely — a bisection tool, not a baseline configuration.
#include <benchmark/benchmark.h>

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cinttypes>
#include <cmath>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <thread>
#include <vector>

#include "bench/bench_util.h"
#include "src/apps/bookstore/bookstore.h"
#include "src/obs/metrics.h"
#include "src/sim/scheduler.h"
#include "src/util/arena.h"
#include "src/util/rng.h"

namespace {

using namespace whodunit;

// ---- Part 1: scheduler hold model ------------------------------------

// Each fired event schedules exactly one replacement, so the pending
// population stays at N while Step() churns through the queue.
template <typename Sched>
struct Hold {
  Sched* sched;
  util::Rng* rng;
  void operator()() const {
    const auto dt = static_cast<sim::SimTime>(1 + rng->NextBelow(100000));
    sched->ScheduleAfter(dt, Hold<Sched>{sched, rng});
  }
};

template <typename Sched>
void HoldModel(benchmark::State& state) {
  const auto n = static_cast<size_t>(state.range(0));
  Sched sched;
  util::Rng rng(42);
  for (size_t i = 0; i < n; ++i) {
    const auto t = static_cast<sim::SimTime>(rng.NextBelow(100000));
    sched.ScheduleAt(t, Hold<Sched>{&sched, &rng});
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(sched.Step());
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()));
}

void BM_LadderHold(benchmark::State& state) { HoldModel<sim::Scheduler>(state); }
void BM_HeapHold(benchmark::State& state) {
  HoldModel<sim::HeapScheduler>(state);
}

BENCHMARK(BM_LadderHold)->Arg(1 << 10)->Arg(1 << 14)->Arg(1 << 17)->Arg(1 << 20);
BENCHMARK(BM_HeapHold)->Arg(1 << 10)->Arg(1 << 14)->Arg(1 << 17)->Arg(1 << 20);

// ---- Part 2: open-loop client sweep ----------------------------------

// Samples the process heap while the simulation runs and keeps the
// high-water mark; mallinfo2 behind util::ApproxHeapBytes() reports
// live malloc'd bytes, which is what must stay proportional to the
// in-flight work, not to the client population.
class HeapWatermark {
 public:
  explicit HeapWatermark(std::chrono::milliseconds period)
      : peak_(util::ApproxHeapBytes()), sampler_([this, period] {
          while (!stop_.load(std::memory_order_relaxed)) {
            Sample();
            std::this_thread::sleep_for(period);
          }
        }) {}
  ~HeapWatermark() {
    stop_.store(true, std::memory_order_relaxed);
    sampler_.join();
  }
  uint64_t peak() {
    Sample();
    return peak_.load(std::memory_order_relaxed);
  }

 private:
  void Sample() {
    const uint64_t now = util::ApproxHeapBytes();
    uint64_t prev = peak_.load(std::memory_order_relaxed);
    while (now > prev &&
           !peak_.compare_exchange_weak(prev, now, std::memory_order_relaxed)) {
    }
  }
  std::atomic<bool> stop_{false};
  std::atomic<uint64_t> peak_;
  std::thread sampler_;
};

struct ScalePoint {
  uint64_t clients = 0;
  double duration_s = 0;
  double wall_s = 0;
  uint64_t interactions = 0;
  uint64_t sim_events = 0;
  uint64_t peak_queue_depth = 0;
  uint64_t heap_used_bytes = 0;
  double bytes_per_client = 0;
  double events_per_sec = 0;
  double db_utilization = 0;
  double tomcat_utilization = 0;
  double proxy_utilization = 0;
};

ScalePoint RunScale(uint64_t clients) {
  apps::BookstoreOptions o;
  o.clients = static_cast<int>(clients);
  o.arrivals.kind = workload::ArrivalKind::kPoisson;
  o.sample_rate = bench::BenchSampleRate();
  // The §8.4 tuned configuration: row locks + servlet caching. The
  // untuned config hits the paper's Figure 11 pathology (exclusive
  // item-table locks serialize the DB at a few hundred tps), which
  // would measure the bottleneck, not the engine.
  o.item_granularity = db::LockGranularity::kRowLocks;
  o.servlet_caching = true;
  // Keep the interaction count comparable across scales: offered load
  // grows with the population, so the window shrinks.
  const double dur_s =
      std::clamp(140000.0 / static_cast<double>(clients), 4.0, 60.0);
  o.duration = sim::Seconds(static_cast<int64_t>(std::llround(dur_s)));
  o.warmup = o.duration / 5;
  // Provision stages proportionally to offered load (clients / think
  // time): the §8.4 one-box calibration saturates around a hundred
  // closed-loop clients, so scale cores and worker pools linearly from
  // there. The variable under test is the population, not saturation.
  const int cores = static_cast<int>(std::max<uint64_t>(2, clients / 25));
  o.proxy_cores = o.tomcat_cores = o.db_cores = cores;
  // Workers hold their slot across downstream round trips (a tomcat
  // worker waits out its DB query), so pool capacity — not CPU — is
  // the first ceiling; provision it with headroom.
  const int workers = static_cast<int>(std::max<uint64_t>(24, clients / 16));
  o.proxy_workers = o.tomcat_workers = o.db_workers = workers;

  // Release the previous scale's cached arena blocks so each point
  // measures its own footprint, not its predecessor's high-water mark.
  util::ArenaPool::ThisThread().Trim();
  const uint64_t base_heap = util::ApproxHeapBytes();

  ScalePoint p;
  p.clients = clients;
  p.duration_s = dur_s;
  {
    // Small scales finish in a fraction of a second, so they need a
    // fine sampling period to catch the transient peak; the big scales
    // run for seconds and mallinfo2 gets expensive there (it contends
    // with the mutator on the malloc lock), so back off to 10ms.
    HeapWatermark watermark(
        std::chrono::milliseconds(clients <= 100000 ? 1 : 10));
    const auto start = std::chrono::steady_clock::now();
    const apps::BookstoreResult result = apps::RunBookstore(o);
    const auto end = std::chrono::steady_clock::now();
    p.wall_s = std::chrono::duration<double>(end - start).count();
    p.interactions = result.interactions;
    p.sim_events = result.sim_events;
    p.peak_queue_depth = result.peak_event_queue_depth;
    p.db_utilization = result.db_utilization;
    p.tomcat_utilization = result.tomcat_utilization;
    p.proxy_utilization = result.proxy_utilization;
    const uint64_t peak = watermark.peak();
    p.heap_used_bytes = peak > base_heap ? peak - base_heap : 0;
  }
  p.bytes_per_client =
      static_cast<double>(p.heap_used_bytes) / static_cast<double>(clients);
  p.events_per_sec =
      p.wall_s > 0 ? static_cast<double>(p.sim_events) / p.wall_s : 0;
  return p;
}

// The sub-second scale points are the flat-memory gate's denominator,
// and their absolute heap delta is a few MB — small enough that
// watermark jitter between runs can move the ratio. They are also
// nearly free to repeat, so measure them as the median-of-three by
// bytes_per_client. The big points are single-trial: their peak is
// integrated over seconds and is stable run to run.
ScalePoint MeasureScale(uint64_t clients) {
  const int trials = clients <= 10000 ? 3 : 1;
  std::vector<ScalePoint> runs;
  runs.reserve(static_cast<size_t>(trials));
  for (int i = 0; i < trials; ++i) {
    runs.push_back(RunScale(clients));
  }
  std::sort(runs.begin(), runs.end(),
            [](const ScalePoint& a, const ScalePoint& b) {
              return a.bytes_per_client < b.bytes_per_client;
            });
  return runs[runs.size() / 2];
}

uint64_t MaxClients() {
  const char* v = std::getenv("BENCH_SCALING_MAX_CLIENTS");
  if (v == nullptr || v[0] == '\0') {
    return 1000000;
  }
  const long long n = std::atoll(v);
  return n < 1000 ? 1000 : static_cast<uint64_t>(n);
}

int RunSweep() {
  const uint64_t max_clients = MaxClients();
  std::vector<uint64_t> scales;
  // $BENCH_SCALING_SCALES (comma-separated client counts) overrides
  // the default sweep — for bisecting scaling behavior, not baselines.
  if (const char* override = std::getenv("BENCH_SCALING_SCALES");
      override != nullptr && override[0] != '\0') {
    const char* s = override;
    while (*s != '\0') {
      char* end = nullptr;
      const long long n = std::strtoll(s, &end, 10);
      if (end == s) {
        break;
      }
      if (n >= 1000) {
        scales.push_back(static_cast<uint64_t>(n));
      }
      s = (*end == ',') ? end + 1 : end;
    }
  }
  if (scales.empty()) {
    for (uint64_t n : {1000ULL, 10000ULL, 100000ULL, 1000000ULL}) {
      if (n <= max_clients) {
        scales.push_back(n);
      }
    }
  }

  bench::Header(
      "Open-loop client scaling: Poisson arrivals, ladder scheduler,\n"
      "arena-pooled events. Per-client heap must stay flat.");
  std::printf("%9s | %6s | %8s | %10s | %11s | %8s | %9s | %9s | %s\n",
              "clients", "dur s", "wall s", "interact", "sim events", "Mev/s",
              "peak q", "B/client", "util p/t/db");
  std::printf(
      "----------+--------+----------+------------+-------------+----------+-"
      "----------+-----------+------------\n");

  std::vector<ScalePoint> points;
  for (uint64_t n : scales) {
    points.push_back(MeasureScale(n));
    const ScalePoint& p = points.back();
    std::printf("%9" PRIu64 " | %6.0f | %8.2f | %10" PRIu64 " | %11" PRIu64
                " | %8.2f | %9" PRIu64 " | %9.1f | %.2f/%.2f/%.2f\n",
                p.clients, p.duration_s, p.wall_s, p.interactions, p.sim_events,
                p.events_per_sec / 1e6, p.peak_queue_depth, p.bytes_per_client,
                p.proxy_utilization, p.tomcat_utilization, p.db_utilization);
  }

  // Export the headline numbers for run_benches.sh / check_perf.sh.
  auto& reg = obs::Registry();
  const ScalePoint& top = points.back();
  reg.GetGauge("bench.scaling.max_clients")
      .Set(static_cast<int64_t>(top.clients));
  reg.GetGauge("bench.scaling.events_per_sec")
      .Set(static_cast<int64_t>(std::llround(top.events_per_sec)));
  reg.GetGauge("bench.scaling.bytes_per_client_max")
      .Set(static_cast<int64_t>(std::llround(top.bytes_per_client)));

  const ScalePoint* ten_k = nullptr;
  for (const ScalePoint& p : points) {
    if (p.clients == 10000) {
      ten_k = &p;
    }
  }
  int rc = 0;
  if (ten_k != nullptr) {
    reg.GetGauge("bench.scaling.bytes_per_client_10k")
        .Set(static_cast<int64_t>(std::llround(ten_k->bytes_per_client)));
    if (top.clients > ten_k->clients) {
      const double ratio = top.bytes_per_client / ten_k->bytes_per_client;
      std::printf(
          "\nper-client heap at %" PRIu64 " clients = %.2fx the 10k value "
          "(must be <= 1.10x)\n",
          top.clients, ratio);
      if (ratio > 1.10) {
        std::fprintf(stderr,
                     "FAIL: per-client memory grew with the population "
                     "(%.1f B/client at %" PRIu64 " vs %.1f B/client at 10k)\n",
                     top.bytes_per_client, top.clients,
                     ten_k->bytes_per_client);
        rc = 1;
      }
    }
  }
  bench::Note(
      "\nClaim: open-loop memory tracks in-flight work, not population;"
      "\nthe sweep's bytes/client column must not grow with the scale.");
  return rc;
}

}  // namespace

int main(int argc, char** argv) {
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();

  const int rc = RunSweep();
  whodunit::bench::DumpMetrics("scaling_clients");
  return rc;
}
