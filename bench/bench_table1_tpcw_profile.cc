// Table 1: MySQL CPU profile (%) and mean crosstalk waiting time per
// TPC-W transaction, browsing mix, 100 concurrent clients.
//
// Reproduced claims:
//   * BestSellers and SearchResult dominate MySQL CPU (paper: 51.50%
//     and 43.28%) with BestSellers first;
//   * AdminConfirm has the worst mean crosstalk wait (paper: 93.76 ms)
//     because its UPDATE needs an exclusive lock on the MyISAM `item`
//     table that every read query also locks;
//   * the per-transaction separation itself — impossible with gprof —
//     falls out of Whodunit's per-context CCTs at the DB.
#include <cstdio>

#include "bench/bench_util.h"
#include "src/apps/bookstore/bookstore.h"

namespace {

struct PaperRow {
  whodunit::workload::TpcwTransaction t;
  double cpu_percent;
  double crosstalk_ms;
};

// Table 1 as printed in the paper (OrderInquiry is absent there).
constexpr PaperRow kPaper[] = {
    {whodunit::workload::TpcwTransaction::kAdminConfirm, 0.82, 93.76},
    {whodunit::workload::TpcwTransaction::kAdminRequest, 0.00, 6.68},
    {whodunit::workload::TpcwTransaction::kBestSellers, 51.50, 22.16},
    {whodunit::workload::TpcwTransaction::kBuyConfirm, 0.04, 68.55},
    {whodunit::workload::TpcwTransaction::kBuyRequest, 0.03, 0.11},
    {whodunit::workload::TpcwTransaction::kCustomerRegistration, 0.00, 0.01},
    {whodunit::workload::TpcwTransaction::kHome, 0.57, 1.51},
    {whodunit::workload::TpcwTransaction::kNewProducts, 3.29, 1.59},
    {whodunit::workload::TpcwTransaction::kOrderDisplay, 0.01, 0.09},
    {whodunit::workload::TpcwTransaction::kOrderInquiry, -1, -1},
    {whodunit::workload::TpcwTransaction::kProductDetail, 0.22, 0.66},
    {whodunit::workload::TpcwTransaction::kSearchRequest, 0.16, 1.15},
    {whodunit::workload::TpcwTransaction::kSearchResult, 43.28, 5.52},
    {whodunit::workload::TpcwTransaction::kShoppingCart, 0.07, 0.86},
};

}  // namespace

int main() {
  using namespace whodunit;
  bench::Header(
      "Table 1: MySQL CPU profile (%) and mean crosstalk wait per TPC-W\n"
      "transaction — browsing mix, 100 concurrent clients");

  apps::BookstoreOptions options;
  options.clients = 100;
  options.duration = sim::Seconds(3600);
  options.warmup = sim::Seconds(300);
  apps::BookstoreResult r = apps::RunBookstore(options);

  std::printf("%-22s | %12s %12s | %14s %14s\n", "Transaction", "CPU% paper", "CPU% ours",
              "xtalk ms paper", "xtalk ms ours");
  std::printf("%-22s-+-%12s-%12s-+-%14s-%14s\n", "----------------------", "------------",
              "------------", "--------------", "--------------");
  for (const PaperRow& row : kPaper) {
    const auto& ours = r.per_type[static_cast<size_t>(row.t)];
    if (row.cpu_percent < 0) {
      std::printf("%-22s | %12s %11.2f%% | %14s %13.2f\n",
                  workload::TpcwName(row.t), "(n/a)", ours.db_cpu_percent, "(n/a)",
                  ours.mean_crosstalk_ms);
    } else {
      std::printf("%-22s | %11.2f%% %11.2f%% | %14.2f %13.2f\n",
                  workload::TpcwName(row.t), row.cpu_percent, ours.db_cpu_percent,
                  row.crosstalk_ms, ours.mean_crosstalk_ms);
    }
  }
  std::printf("\nthroughput: %.0f tx/min over %lu interactions\n", r.throughput_tpm,
              static_cast<unsigned long>(r.interactions));
  std::printf("\nMySQL transactional profile (per-transaction CCTs):\n%s\n",
              r.db_profile_text.c_str());
  std::printf("Crosstalk pairs (waiter <- holder):\n%s\n", r.crosstalk_text.c_str());
  std::printf("The paper's §1 query, answered from the profile:\n%s\n",
              r.who_causes_sort.c_str());
  whodunit::bench::DumpMetrics("table1_tpcw_profile");
  return 0;
}
