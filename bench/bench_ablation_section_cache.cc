// Ablation: the flow-summary cache (src/shm/section_cache.h).
//
// Four configurations of the same steady-state Apache queue workload:
//   interpreted     — warm translation cache, no summary cache
//   cache (arch)    — summaries replayed, no flow detector attached
//   cache+detector  — summaries replayed incl. dictionary effects
//   cache+shadow    — every hit re-verified against full emulation
//                     (the asan-ubsan configuration; upper cost bound)
// plus a sweep of the variant ring against queue-depth churn: a
// section whose fingerprint pins a walking value (the queue depth)
// needs one variant per distinct depth, so hit rate degrades once the
// working set outgrows max_variants.
#include <benchmark/benchmark.h>

#include <cstdio>

#include "bench/bench_util.h"
#include "src/shm/flow_detector.h"
#include "src/shm/guest_code.h"
#include "src/shm/section_cache.h"
#include "src/vm/interpreter.h"

namespace {

using namespace whodunit;

constexpr uint64_t kLockId = 1;
constexpr uint64_t kQueueBase = 0x1000;

struct Fixture {
  vm::Program push = shm::ApQueuePush(kLockId);
  vm::Program pop = shm::ApQueuePop(kLockId);
  vm::Memory mem;
  vm::CpuState cpu;
  vm::Interpreter interp;

  Fixture() {
    cpu.regs[0] = kQueueBase;
    cpu.regs[5] = 0x2000;
    cpu.regs[6] = 0x2008;
  }
};

void BM_Interpreted(benchmark::State& state) {
  Fixture f;
  for (auto _ : state) {
    f.cpu.regs[1] = 42;
    f.cpu.regs[2] = 43;
    f.interp.Execute(f.push, 0, f.cpu, f.mem);
    f.interp.Execute(f.pop, 0, f.cpu, f.mem);
    benchmark::DoNotOptimize(f.cpu.regs[7]);
  }
}
BENCHMARK(BM_Interpreted);

void BM_CacheArchOnly(benchmark::State& state) {
  Fixture f;
  shm::SectionCache::Config cfg;
  cfg.shadow_verify = false;
  shm::SectionCache cache(cfg);
  for (auto _ : state) {
    f.cpu.regs[1] = 42;
    f.cpu.regs[2] = 43;
    cache.Run(f.interp, f.push, 0, f.cpu, f.mem, nullptr);
    cache.Run(f.interp, f.pop, 0, f.cpu, f.mem, nullptr);
    benchmark::DoNotOptimize(f.cpu.regs[7]);
  }
  state.counters["hit_rate"] =
      static_cast<double>(cache.hits()) / static_cast<double>(cache.hits() + cache.misses());
}
BENCHMARK(BM_CacheArchOnly);

template <bool kShadow>
void CacheWithDetector(benchmark::State& state) {
  Fixture f;
  shm::FlowDetector detector([](vm::ThreadId t) { return shm::CtxtId{t + 1}; });
  shm::SectionCache::Config cfg;
  cfg.shadow_verify = kShadow;
  shm::SectionCache cache(cfg);
  for (auto _ : state) {
    f.cpu.regs[1] = 42;
    f.cpu.regs[2] = 43;
    cache.Run(f.interp, f.push, 0, f.cpu, f.mem, &detector);
    cache.Run(f.interp, f.pop, 0, f.cpu, f.mem, &detector);
    benchmark::DoNotOptimize(f.cpu.regs[7]);
  }
  benchmark::DoNotOptimize(detector.flows_detected());
  state.counters["hit_rate"] =
      static_cast<double>(cache.hits()) / static_cast<double>(cache.hits() + cache.misses());
}

void BM_CacheWithDetector(benchmark::State& state) { CacheWithDetector<false>(state); }
BENCHMARK(BM_CacheWithDetector);

void BM_CacheShadowVerified(benchmark::State& state) { CacheWithDetector<true>(state); }
BENCHMARK(BM_CacheShadowVerified);

// Variant-ring churn: the producer cycles the queue depth through
// `depth_range` values before the consumer drains it. Every depth is a
// distinct fingerprint for both sections, so hit rate collapses once a
// section's depth_range variants outgrow its (program, thread) ring.
// The ring is pinned to 8 slots here (the production default is 64) so
// the sweep crosses the cliff inside a small argument range.
void BM_VariantChurn(benchmark::State& state) {
  const auto depth_range = static_cast<uint64_t>(state.range(0));
  Fixture f;
  shm::SectionCache::Config cfg;
  cfg.shadow_verify = false;
  cfg.max_variants = 8;
  shm::SectionCache cache(cfg);
  for (auto _ : state) {
    for (uint64_t i = 0; i < depth_range; ++i) {
      f.cpu.regs[1] = 42;
      f.cpu.regs[2] = 43;
      cache.Run(f.interp, f.push, 0, f.cpu, f.mem, nullptr);
    }
    for (uint64_t i = 0; i < depth_range; ++i) {
      cache.Run(f.interp, f.pop, 0, f.cpu, f.mem, nullptr);
    }
    benchmark::DoNotOptimize(f.cpu.regs[7]);
  }
  state.counters["hit_rate"] =
      static_cast<double>(cache.hits()) / static_cast<double>(cache.hits() + cache.misses());
  state.counters["variants"] = static_cast<double>(cache.variants());
}
BENCHMARK(BM_VariantChurn)->Arg(1)->Arg(2)->Arg(4)->Arg(8)->Arg(16);

}  // namespace

int main(int argc, char** argv) {
  bench::Header(
      "Ablation: flow-summary cache\n"
      "interpreted vs arch-only replay vs replay+dictionary vs shadow-verified,\n"
      "then hit-rate vs queue-depth churn (ring pinned to max_variants=8)");
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  whodunit::bench::DumpMetrics("ablation_section_cache");
  return 0;
}
