// Figure 9: transactional profile of the Squid stand-in.
//
// Reproduced claim: the commHandleWrite event handler executes under
// two distinct transaction contexts — one reached via the cache-hit
// handler sequence [httpAccept, clientReadRequest], one via the miss
// sequence [..., commConnectHandle, httpReadReply] — and Whodunit
// separates their CPU shares (a regular profiler reports one number).
#include <cstdio>

#include "bench/bench_util.h"
#include "src/apps/miniproxy/miniproxy.h"

int main() {
  using namespace whodunit;
  bench::Header("Figure 9: transactional profile of Squid (miniproxy)");

  apps::MiniproxyOptions options;
  options.mode = callpath::ProfilerMode::kWhodunit;
  options.clients = 64;
  options.duration = sim::Seconds(30);
  apps::MiniproxyResult r = apps::RunMiniproxy(options);

  std::printf("%s\n", r.profile_text.c_str());
  std::printf("requests served:         %lu   hit ratio %.1f%%\n",
              static_cast<unsigned long>(r.requests), 100.0 * r.hit_ratio);
  std::printf("throughput:              %.1f Mb/s   (paper: Squid peaks ~262 Mb/s)\n",
              r.throughput_mbps);
  std::printf("commHandleWrite appears in %zu transaction contexts (paper: 2)\n",
              r.write_handler_context_count);
  std::printf("  via cache-hit path:    %.2f%% of proxy CPU\n", r.hit_path_share);
  std::printf("  via cache-miss path:   %.2f%% of proxy CPU\n", r.miss_path_share);
  bench::Note("(paper Figure 9 reports 38.5% and 14.5% for the two contexts;\n"
              " the split depends on the trace's hit ratio)");
  whodunit::bench::DumpMetrics("fig9_squid_profile");
  return 0;
}
