// Ablation: the post-critical-section consume window (MAX, §7.2).
//
// Whodunit keeps emulating for MAX instructions after a critical
// section exits, watching for the consumer's first use of the value.
// Too small a window misses consumption (no flow detected -> the
// worker's CPU is misattributed); a large window only costs emulation
// time. The paper uses MAX = 128. This bench sweeps the window against
// consumers that use the popped value after increasing amounts of
// unrelated work.
#include <cstdio>
#include <map>

#include "bench/bench_util.h"
#include "src/shm/flow_detector.h"
#include "src/shm/guest_code.h"
#include "src/vm/program_builder.h"

int main() {
  using namespace whodunit;
  bench::Header("Ablation: post-critical-section consume window (MAX = 128 in the paper)");

  constexpr uint64_t kLock = 1;
  constexpr uint64_t kQueue = 0x1000;

  std::printf("%8s |", "window");
  const int gaps[] = {0, 4, 16, 64, 120, 200};
  for (int gap : gaps) {
    std::printf(" gap=%-4d", gap);
  }
  std::printf("   (gap = instructions between unlock and first use)\n");
  std::printf("---------+------------------------------------------------------\n");

  for (int window : {8, 32, 128, 512}) {
    std::printf("%8d |", window);
    for (int gap : gaps) {
      shm::FlowDetector::Config config;
      config.post_window = window;
      shm::FlowDetector detector(config, [](vm::ThreadId t) { return t * 100; });
      vm::Memory mem;
      vm::Interpreter interp;

      // Producer pushes.
      vm::CpuState prod;
      prod.regs[0] = kQueue;
      prod.regs[1] = 42;
      prod.regs[2] = 43;
      interp.Execute(shm::ApQueuePush(kLock), 1, prod, mem, &detector);

      // Consumer pops, does `gap` instructions of unrelated work, then
      // uses the value.
      vm::ProgramBuilder b("pop_then_use");
      b.Lock(kLock)
          .MovRM(3, 0, 0)
          .SubRI(3, 1)
          .MovMR(0, 0, 3)
          .MovRR(4, 3)
          .MulRI(4, shm::kApQueueElemSize)
          .AddRR(4, 0)
          .AddRI(4, shm::kApQueueDataOffset)
          .MovRM(1, 4, 0)
          .Unlock(kLock);
      for (int i = 0; i < gap; ++i) {
        b.Nop();
      }
      b.CmpRI(1, 0).Halt();
      vm::CpuState cons;
      cons.regs[0] = kQueue;
      interp.Execute(b.Build(), 2, cons, mem, &detector);

      std::printf(" %-8s", detector.flows_detected() > 0 ? "FLOW" : "miss");
    }
    std::printf("\n");
  }
  bench::Note(
      "\nMAX=128 catches consumers that use the value within a realistic\n"
      "procedure-return distance; a tiny window misses legitimate flows,\n"
      "a huge window only adds emulation cost after every critical section.");
  whodunit::bench::DumpMetrics("ablation_window");
  return 0;
}
