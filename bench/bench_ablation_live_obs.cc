// Ablation: live-observability publish path on vs off.
//
// The whodunitd daemon (src/obs/live, docs/OBSERVABILITY.md) rides the
// profiler's hot paths: every ChargeCpu accumulates into a per-thread
// cost batch, every PrepareSend notes the outgoing synopsis part, and
// each transaction opens/joins/completes spans in the builder table.
// The design claim is that an always-on collector must cost low single
// digits of wall time; this bench runs the identical TPC-W rig with
// the daemon attached and detached and reports the wall-clock delta
// plus the per-transaction publish cost.
//
// check_perf.sh-style guard: the derived overhead percentage lives in
// bench/baselines/BENCH_ablation_live_obs.json for future PRs to diff.
#include <chrono>
#include <cstdio>

#include "bench/bench_util.h"
#include "src/apps/bookstore/bookstore.h"

namespace {

double RunOnce(bool live, whodunit::apps::BookstoreResult* out) {
  whodunit::apps::BookstoreOptions options;
  options.clients = 100;
  options.duration = whodunit::sim::Seconds(300);
  options.warmup = whodunit::sim::Seconds(30);
  options.live = live;
  const auto t0 = std::chrono::steady_clock::now();
  *out = whodunit::apps::RunBookstore(options);
  const auto t1 = std::chrono::steady_clock::now();
  return std::chrono::duration<double, std::milli>(t1 - t0).count();
}

}  // namespace

int main() {
  using namespace whodunit;
  bench::Header("Ablation: live observability publish path (TPC-W, 300s sim)");

  apps::BookstoreResult off_result, live_result;
  // Interleave off/live pairs so machine drift hits both arms equally;
  // keep the fastest of each arm (noise only ever adds time).
  double off_ms = 1e300, live_ms = 1e300;
  for (int round = 0; round < 3; ++round) {
    const double off = RunOnce(/*live=*/false, &off_result);
    const double live = RunOnce(/*live=*/true, &live_result);
    off_ms = off < off_ms ? off : off_ms;
    live_ms = live < live_ms ? live : live_ms;
  }

  const double overhead_pct = 100.0 * (live_ms - off_ms) / off_ms;
  const double per_txn_us =
      live_result.interactions > 0
          ? 1000.0 * (live_ms - off_ms) / static_cast<double>(live_result.interactions)
          : 0.0;

  std::printf("daemon off:            %10.1f ms wall\n", off_ms);
  std::printf("daemon on:             %10.1f ms wall\n", live_ms);
  std::printf("publish-path overhead: %+9.1f%%  (%.1f us per transaction)\n",
              overhead_pct, per_txn_us);
  std::printf("interactions:          %10lu (live arm)\n",
              static_cast<unsigned long>(live_result.interactions));
  std::printf("live table rendered:   %s\n",
              live_result.live_top_text.empty() ? "NO (BUG)" : "yes");

  // The simulated result must be identical either way: the daemon
  // observes the run, it must not perturb it.
  const bool identical =
      off_result.interactions == live_result.interactions &&
      off_result.throughput_tpm == live_result.throughput_tpm;
  std::printf("sim results identical: %s\n", identical ? "yes" : "NO (BUG)");

  whodunit::bench::DumpMetrics("ablation_live_obs");
  return identical ? 0 : 1;
}
