// Ablation: live-observability publish path on vs off, and the
// critical-path attribution pass on vs off.
//
// The whodunitd daemon (src/obs/live, docs/OBSERVABILITY.md) rides the
// profiler's hot paths: every ChargeCpu accumulates into a per-thread
// cost batch, every PrepareSend notes the outgoing synopsis part, and
// each transaction opens/joins/completes spans in the builder table.
// The design claim is that an always-on collector must cost less than
// the emulation hot path it observes; this bench measures that three
// ways:
//
//   1. Wall arms: the identical TPC-W rig with the daemon detached,
//      attached with attribution off, and attached with attribution on
//      — the end-to-end overhead an operator sees
//      (derived.live_publish_overhead_pct, <24.5% gate — half the
//      PR 9 delta; the tight <15%-of-baseline gate rides on the
//      direct pipeline measurement, derived.live_publish_pct_of_base,
//      because wall-arm deltas on a 1-core container carry several
//      points of scheduling noise).
//   2. Direct pipeline: a tight loop drives a real Whodunitd end to
//      end — publish hooks, batch flush, channel hop, pump,
//      attribution, aggregation, history — and reports ns per
//      transaction (derived.publish_ns_per_txn, <=800ns gate).
//   3. Steady-state allocations: this TU overrides global operator
//      new/delete with a counting hook; after warmup the direct
//      pipeline loop must not allocate at all — interned SymIds,
//      pooled PooledVec blocks, and recycled batches make the
//      publish->pump->aggregate path heap-silent
//      (derived.steady_allocs, ==0 hard gate).
//
// Each arm runs inside its own sim::ShardEnv scope, so its live.*
// counters land in a throwaway registry instead of accumulating across
// arms and rounds in this process's global dump — the final metrics
// snapshot only carries the bench.* gauges (docs/METRICS.md "Live
// pipeline counters" explains the per-run invariants).
#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <new>
#include <utility>
#include <vector>

#include "bench/bench_util.h"
#include "src/apps/bookstore/bookstore.h"
#include "src/obs/live/aggregator.h"
#include "src/obs/live/attribution.h"
#include "src/obs/live/daemon.h"
#include "src/obs/live/symbol_table.h"
#include "src/obs/metrics.h"
#include "src/sim/parallel_runner.h"
#include "src/sim/scheduler.h"

// ---- Heap allocation counter ----------------------------------------
// Counts every global operator new in the binary. The steady-state
// window of the direct pipeline measurement snapshots the counter
// before and after; a nonzero delta means the publish path still
// touches the allocator after warmup.
namespace {
std::atomic<uint64_t> g_heap_allocs{0};

void* CountedAlloc(std::size_t n) noexcept {
  g_heap_allocs.fetch_add(1, std::memory_order_relaxed);
  return std::malloc(n ? n : 1);
}

void* CountedAlignedAlloc(std::size_t n, std::size_t align) noexcept {
  g_heap_allocs.fetch_add(1, std::memory_order_relaxed);
  if (align < sizeof(void*)) {
    align = sizeof(void*);
  }
  void* p = nullptr;
  if (posix_memalign(&p, align, n ? n : align) != 0) {
    return nullptr;
  }
  return p;
}

uint64_t HeapAllocs() { return g_heap_allocs.load(std::memory_order_relaxed); }
}  // namespace

void* operator new(std::size_t n) {
  void* p = CountedAlloc(n);
  if (p == nullptr) throw std::bad_alloc();
  return p;
}
void* operator new[](std::size_t n) {
  void* p = CountedAlloc(n);
  if (p == nullptr) throw std::bad_alloc();
  return p;
}
void* operator new(std::size_t n, const std::nothrow_t&) noexcept { return CountedAlloc(n); }
void* operator new[](std::size_t n, const std::nothrow_t&) noexcept { return CountedAlloc(n); }
void* operator new(std::size_t n, std::align_val_t a) {
  void* p = CountedAlignedAlloc(n, static_cast<std::size_t>(a));
  if (p == nullptr) throw std::bad_alloc();
  return p;
}
void* operator new[](std::size_t n, std::align_val_t a) {
  void* p = CountedAlignedAlloc(n, static_cast<std::size_t>(a));
  if (p == nullptr) throw std::bad_alloc();
  return p;
}
void* operator new(std::size_t n, std::align_val_t a, const std::nothrow_t&) noexcept {
  return CountedAlignedAlloc(n, static_cast<std::size_t>(a));
}
void* operator new[](std::size_t n, std::align_val_t a, const std::nothrow_t&) noexcept {
  return CountedAlignedAlloc(n, static_cast<std::size_t>(a));
}
void operator delete(void* p) noexcept { std::free(p); }
void operator delete[](void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t) noexcept { std::free(p); }
void operator delete(void* p, std::align_val_t) noexcept { std::free(p); }
void operator delete[](void* p, std::align_val_t) noexcept { std::free(p); }
void operator delete(void* p, std::size_t, std::align_val_t) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t, std::align_val_t) noexcept { std::free(p); }
void operator delete(void* p, const std::nothrow_t&) noexcept { std::free(p); }
void operator delete[](void* p, const std::nothrow_t&) noexcept { std::free(p); }

namespace {

double RunOnce(bool live, bool attribution, whodunit::apps::BookstoreResult* out) {
  // A fresh shard env per arm: private metrics registry (the arm's
  // live.* counters never pollute the process dump), context tree, and
  // symbol table, so arms cannot leak state into each other.
  whodunit::sim::ShardEnv env;
  whodunit::sim::ShardEnv::Scope scope(env);
  whodunit::apps::BookstoreOptions options;
  options.clients = 100;
  // Long arms on purpose: the wall-overhead headline is a difference
  // of arm times, and a ~30 ms arm (300 sim-seconds) leaves the delta
  // inside this container's scheduling jitter. A ~200 ms arm keeps the
  // delta several times the noise floor at a few seconds per run.
  options.duration = whodunit::sim::Seconds(1800);
  options.warmup = whodunit::sim::Seconds(30);
  options.live = live;
  options.live_attribution = attribution;
  const auto t0 = std::chrono::steady_clock::now();
  *out = whodunit::apps::RunBookstore(options);
  const auto t1 = std::chrono::steady_clock::now();
  return std::chrono::duration<double, std::milli>(t1 - t0).count();
}

// Span DAGs shaped like the bookstore's interactions: a proxy origin,
// an app-server hop, zero to two DB spans with queue/service/lock
// components. {stage, start, dur, parent, link, queue, service, lock}.
std::vector<whodunit::obs::live::TxnEvent> RepresentativeEvents() {
  using whodunit::obs::live::Syms;
  using whodunit::obs::live::TxnEvent;
  const auto S = [](std::string_view name) { return Syms().Intern(name); };
  std::vector<TxnEvent> events;
  {
    TxnEvent ev;  // cache hit: two tiers, no DB
    ev.type = S("Home");
    ev.end_ns = 2'000'000;
    ev.spans.push_back({S("squid"), 0, 2'000'000, -1, 0, 0, 300'000, 0});
    ev.spans.push_back({S("tomcat"), 400'000, 1'200'000, 0, 1, 150'000, 800'000, 0});
    events.push_back(std::move(ev));
  }
  {
    TxnEvent ev;  // read: three tiers
    ev.type = S("ProductDetail");
    ev.end_ns = 6'000'000;
    ev.spans.push_back({S("squid"), 0, 6'000'000, -1, 0, 0, 400'000, 0});
    ev.spans.push_back({S("tomcat"), 500'000, 5'000'000, 0, 1, 200'000, 1'000'000, 0});
    ev.spans.push_back({S("mysql"), 1'500'000, 3'000'000, 1, 2, 100'000, 900'000, 400'000});
    events.push_back(std::move(ev));
  }
  {
    TxnEvent ev;  // write: three tiers, two DB visits, lock-heavy
    ev.type = S("BuyConfirm");
    ev.end_ns = 12'000'000;
    ev.spans.push_back({S("squid"), 0, 12'000'000, -1, 0, 0, 500'000, 0});
    ev.spans.push_back({S("tomcat"), 600'000, 10'500'000, 0, 1, 250'000, 1'500'000, 0});
    ev.spans.push_back({S("mysql"), 1'800'000, 4'000'000, 1, 2, 120'000, 700'000, 2'500'000});
    ev.spans.push_back({S("mysql"), 7'000'000, 3'500'000, 1, 3, 90'000, 600'000, 1'800'000});
    events.push_back(std::move(ev));
  }
  return events;
}

// ns per event of one pass over `events`, minimum of `rounds` timed
// loops of `iters` passes each.
template <typename Fn>
double TimedNsPerEvent(int rounds, int iters, size_t events_per_pass, Fn&& fn) {
  double best = 1e300;
  for (int r = 0; r < rounds; ++r) {
    const auto t0 = std::chrono::steady_clock::now();
    for (int i = 0; i < iters; ++i) {
      fn();
    }
    const auto t1 = std::chrono::steady_clock::now();
    const double ns =
        std::chrono::duration<double, std::nano>(t1 - t0).count() /
        (static_cast<double>(iters) * static_cast<double>(events_per_pass));
    best = ns < best ? ns : best;
  }
  return best;
}

// The marginal per-transaction cost of attribution on the daemon's
// ingest path: attribute + fold + the attr-fattened history copy,
// minus ingest + copy without attribution.
double MeasureAttrNsPerTxn() {
  using namespace whodunit::obs::live;
  whodunit::sim::ShardEnv env;
  whodunit::sim::ShardEnv::Scope scope(env);
  const std::vector<TxnEvent> events = RepresentativeEvents();
  const SymbolTable& syms = Syms();
  AttrScratch scratch;
  constexpr int kRounds = 7;
  constexpr int kIters = 20000;

  LiveAggregator with_agg;
  int64_t sink = 0;
  const double with_ns = TimedNsPerEvent(kRounds, kIters, events.size(), [&] {
    for (const TxnEvent& ev : events) {
      TxnEvent copy = ev;  // the channel hand-off copy
      AttributeTxn(copy, syms, scratch, copy.attr);
      with_agg.Ingest(copy);
      sink += static_cast<int64_t>(copy.attr.size());
    }
  });

  LiveAggregator without_agg;
  const double without_ns = TimedNsPerEvent(kRounds, kIters, events.size(), [&] {
    for (const TxnEvent& ev : events) {
      TxnEvent copy = ev;
      without_agg.Ingest(copy);
      sink += static_cast<int64_t>(copy.spans.size());
    }
  });

  if (sink == 42) {
    std::printf("(unreachable)\n");
  }
  const double delta = with_ns - without_ns;
  return delta > 0 ? delta : 0;
}

// The full publish pipeline, measured directly: a loop drives a real
// Whodunitd — BeginTxn/SetTxnType/JoinSpan/AddSpanWait/EndSpan/
// CompleteTxn, the batch flush, the channel hop, the pump's
// attribution + aggregation + history ingest — under the default
// LiveOptions (attribution on, publish_batch 64, 1 MiB history).
// Virtual time advances 10 ms per transaction so the history store
// crosses its 30 s flush interval many times and reaches retention
// steady state during warmup. Reports the fastest of three timed
// steady windows (noise only adds time) and the heap-allocation count
// summed across all of them (which must be zero).
struct PipelineCost {
  double ns_per_txn = 0;
  uint64_t steady_allocs = 0;
  uint64_t steady_txns = 0;
};

PipelineCost MeasurePublishPipeline() {
  using namespace whodunit::obs::live;
  whodunit::sim::ShardEnv env;
  whodunit::sim::ShardEnv::Scope scope(env);
  whodunit::sim::Scheduler sched;
  Whodunitd daemon(sched, LiveOptions{});
  SymbolTable& syms = daemon.symbols();
  const SymId squid = syms.Intern("squid");
  const SymId tomcat = syms.Intern("tomcat");
  const SymId mysql = syms.Intern("mysql");
  const SymId types[3] = {syms.Intern("Home"), syms.Intern("ProductDetail"),
                          syms.Intern("BuyConfirm")};

  int64_t t = 0;
  const auto one_txn = [&](int shape) {
    t += 10'000'000;  // 10 ms of virtual time per transaction
    sched.RunUntil(t);  // deliver previously flushed batches to the pump
    const int64_t now = sched.now();
    const uint64_t txn = daemon.BeginTxn(squid, now);
    daemon.SetTxnType(txn, types[static_cast<size_t>(shape)]);
    daemon.AddSpanWait(txn, squid, WaitState::kService, 300);
    daemon.NoteSend(txn, squid, 1);
    daemon.JoinSpan(txn, tomcat, 1, now + 400, /*queue_ns=*/150);
    daemon.AddSpanWait(txn, tomcat, WaitState::kService, 800);
    if (shape > 0) {  // three-tier shapes visit the DB
      daemon.NoteSend(txn, tomcat, 2);
      daemon.JoinSpan(txn, mysql, 2, now + 1500, /*queue_ns=*/100);
      daemon.AddSpanWait(txn, mysql, WaitState::kService, 900);
      daemon.AddSpanWait(txn, mysql, WaitState::kLockWait, 400);
      daemon.EndSpan(txn, mysql, now + 4500);
    }
    daemon.EndSpan(txn, tomcat, now + 5400);
    daemon.CompleteTxn(txn, now + 6000);
  };

  // Warmup: fill the history store to its byte budget, cross several
  // retention flushes, and let every pooled freelist / hash table /
  // ring reach its steady capacity.
  constexpr int kWarmup = 30000;
  constexpr int kSteady = 20000;
  constexpr int kWindows = 3;
  for (int i = 0; i < kWarmup; ++i) {
    one_txn(i % 3);
  }
  sched.RunUntil(t);

  // Three timed windows, keeping the fastest: a machine-speed epoch
  // can slow one window, but noise only adds time. Allocations are
  // summed across ALL windows — zero must hold everywhere, not just
  // in the lucky one.
  PipelineCost cost;
  cost.ns_per_txn = 1e300;
  for (int w = 0; w < kWindows; ++w) {
    const uint64_t allocs_before = HeapAllocs();
    const auto t0 = std::chrono::steady_clock::now();
    for (int i = 0; i < kSteady; ++i) {
      one_txn(i % 3);
    }
    t += 1;
    sched.RunUntil(t);  // deliver the last flushed batch
    const auto t1 = std::chrono::steady_clock::now();
    const uint64_t allocs_after = HeapAllocs();
    const double ns =
        std::chrono::duration<double, std::nano>(t1 - t0).count() /
        static_cast<double>(kSteady);
    cost.ns_per_txn = ns < cost.ns_per_txn ? ns : cost.ns_per_txn;
    cost.steady_allocs += allocs_after - allocs_before;
    cost.steady_txns += kSteady;
  }
  return cost;
}

}  // namespace

int main() {
  using namespace whodunit;
  bench::Header("Ablation: live observability publish path (TPC-W, 1800s sim)");

  apps::BookstoreResult off_result, live_result, attr_result;
  // Interleave the arms so machine drift hits all three equally. The
  // arms are short (~30 ms), so the machine can change speed *between*
  // rounds; comparing min(live) against min(off) across rounds then
  // charges an epoch shift to the daemon. Within one round the arms
  // are adjacent in time and drift cancels, so the overhead estimate
  // is the MEDIAN of the per-round (live - off) / off ratios; the
  // per-arm minima are kept only for display.
  constexpr int kWallRounds = 5;
  double off_ms = 1e300, live_ms = 1e300, attr_ms = 1e300;
  std::vector<double> round_pct, round_delta_ms;
  for (int round = 0; round < kWallRounds; ++round) {
    const double off = RunOnce(/*live=*/false, /*attribution=*/false, &off_result);
    const double live = RunOnce(/*live=*/true, /*attribution=*/false, &live_result);
    const double attr = RunOnce(/*live=*/true, /*attribution=*/true, &attr_result);
    off_ms = off < off_ms ? off : off_ms;
    live_ms = live < live_ms ? live : live_ms;
    attr_ms = attr < attr_ms ? attr : attr_ms;
    round_pct.push_back(100.0 * (live - off) / off);
    round_delta_ms.push_back(live - off);
  }
  auto median = [](std::vector<double> v) {
    std::sort(v.begin(), v.end());
    const size_t n = v.size();
    return n % 2 ? v[n / 2] : 0.5 * (v[n / 2 - 1] + v[n / 2]);
  };

  const double attr_ns_per_txn = MeasureAttrNsPerTxn();
  const PipelineCost pipeline = MeasurePublishPipeline();

  const auto txns = static_cast<double>(live_result.interactions);
  const double base_ns_per_txn = txns > 0 ? 1e6 * off_ms / txns : 0.0;
  const double overhead_pct = median(round_pct);
  const double delta_ms = median(round_delta_ms);
  const double per_txn_us = txns > 0 ? 1000.0 * delta_ms / txns : 0.0;
  const double attr_pct =
      base_ns_per_txn > 0 ? 100.0 * attr_ns_per_txn / base_ns_per_txn : 0.0;

  std::printf("daemon off:            %10.1f ms wall\n", off_ms);
  std::printf("daemon on, attr off:   %10.1f ms wall\n", live_ms);
  std::printf("daemon on, attr on:    %10.1f ms wall\n", attr_ms);
  std::printf("publish-path overhead: %+9.1f%%  (%.1f us per transaction)\n",
              overhead_pct, per_txn_us);
  std::printf("attribution cost:      %10.0f ns per transaction (direct), %.1f%% of baseline\n",
              attr_ns_per_txn, attr_pct);
  std::printf("full publish pipeline: %10.0f ns per transaction "
              "(hooks + batch + pump + attr + aggregate, target <= 800)\n",
              pipeline.ns_per_txn);
  std::printf("steady-state allocs:   %10llu in %llu txns (target 0)\n",
              static_cast<unsigned long long>(pipeline.steady_allocs),
              static_cast<unsigned long long>(pipeline.steady_txns));
  std::printf("interactions:          %10lu (live arm)\n",
              static_cast<unsigned long>(live_result.interactions));
  std::printf("live table rendered:   %s\n",
              live_result.live_top_text.empty() ? "NO (BUG)" : "yes");
  std::printf("why-tail rendered:     %s\n",
              attr_result.live_why_tail_text.empty() ? "NO (BUG)" : "yes");

  // The simulated result must be identical in all three arms: the
  // daemon observes the run, it must not perturb it — and the
  // attribution pass runs entirely inside the daemon.
  const bool identical =
      off_result.interactions == live_result.interactions &&
      off_result.throughput_tpm == live_result.throughput_tpm &&
      off_result.interactions == attr_result.interactions &&
      off_result.throughput_tpm == attr_result.throughput_tpm;
  std::printf("sim results identical: %s\n", identical ? "yes" : "NO (BUG)");

  // Per-transaction costs in ns for run_benches.sh's derived block and
  // the check_perf.sh gates: publish_ns_per_txn <= 800 (direct),
  // live_publish_overhead_pct < 15 (wall), attr_publish_overhead_pct
  // < 15 (direct over wall baseline), steady_allocs == 0 (hard).
  auto& gauges = obs::Registry();
  if (txns > 0) {
    gauges.GetGauge("bench.ablation_live_obs.base_ns_per_txn")
        .Set(static_cast<int64_t>(base_ns_per_txn));
    gauges.GetGauge("bench.ablation_live_obs.wall_delta_ns_per_txn")
        .Set(static_cast<int64_t>(1e6 * delta_ms / txns));
    gauges.GetGauge("bench.ablation_live_obs.live_overhead_pct_x100")
        .Set(static_cast<int64_t>(100.0 * overhead_pct));
    gauges.GetGauge("bench.ablation_live_obs.attr_publish_ns_per_txn")
        .Set(static_cast<int64_t>(attr_ns_per_txn));
  }
  gauges.GetGauge("bench.ablation_live_obs.publish_ns_per_txn")
      .Set(static_cast<int64_t>(pipeline.ns_per_txn));
  gauges.GetGauge("bench.ablation_live_obs.steady_allocs")
      .Set(static_cast<int64_t>(pipeline.steady_allocs));

  whodunit::bench::DumpMetrics("ablation_live_obs");
  return identical ? 0 : 1;
}
