// Ablation: live-observability publish path on vs off, and the
// critical-path attribution pass on vs off.
//
// The whodunitd daemon (src/obs/live, docs/OBSERVABILITY.md) rides the
// profiler's hot paths: every ChargeCpu accumulates into a per-thread
// cost batch, every PrepareSend notes the outgoing synopsis part, and
// each transaction opens/joins/completes spans in the builder table.
// The design claim is that an always-on collector must cost low single
// digits of wall time; this bench runs the identical TPC-W rig three
// ways — daemon detached, daemon attached with attribution off, and
// daemon attached with the per-transaction wait-state attribution pass
// on — and reports the wall-clock deltas.
//
// check_perf.sh gate: the attribution pass's added cost per
// transaction must stay under 15% of the no-daemon per-transaction
// baseline (derived.attr_publish_overhead_pct, computed by
// run_benches.sh from the gauges dumped here). Wall-clock deltas
// between ~tens-of-ms arms cannot resolve a sub-microsecond per-txn
// effect through machine noise, so the attribution cost that feeds the
// gate is measured directly: a tight loop pushes representative TPC-W
// span DAGs through the exact per-event work the daemon adds when
// attribution is on (AttributeTxn + the aggregator's attribution fold
// + the fatter history copy), minus the same loop without it.
#include <chrono>
#include <cstdio>
#include <utility>
#include <vector>

#include "bench/bench_util.h"
#include "src/apps/bookstore/bookstore.h"
#include "src/obs/live/aggregator.h"
#include "src/obs/live/attribution.h"
#include "src/obs/metrics.h"

namespace {

double RunOnce(bool live, bool attribution, whodunit::apps::BookstoreResult* out) {
  whodunit::apps::BookstoreOptions options;
  options.clients = 100;
  options.duration = whodunit::sim::Seconds(300);
  options.warmup = whodunit::sim::Seconds(30);
  options.live = live;
  options.live_attribution = attribution;
  const auto t0 = std::chrono::steady_clock::now();
  *out = whodunit::apps::RunBookstore(options);
  const auto t1 = std::chrono::steady_clock::now();
  return std::chrono::duration<double, std::milli>(t1 - t0).count();
}

// Span DAGs shaped like the bookstore's interactions: a proxy origin,
// an app-server hop, zero to two DB spans with queue/service/lock
// components. {stage, start, dur, parent, link, queue, service, lock}.
std::vector<whodunit::obs::live::TxnEvent> RepresentativeEvents() {
  using whodunit::obs::live::TxnEvent;
  std::vector<TxnEvent> events;
  {
    TxnEvent ev;  // cache hit: two tiers, no DB
    ev.type = "Home";
    ev.end_ns = 2'000'000;
    ev.spans.push_back({"squid", 0, 2'000'000, -1, 0, 0, 300'000, 0});
    ev.spans.push_back({"tomcat", 400'000, 1'200'000, 0, 1, 150'000, 800'000, 0});
    events.push_back(std::move(ev));
  }
  {
    TxnEvent ev;  // read: three tiers
    ev.type = "ProductDetail";
    ev.end_ns = 6'000'000;
    ev.spans.push_back({"squid", 0, 6'000'000, -1, 0, 0, 400'000, 0});
    ev.spans.push_back({"tomcat", 500'000, 5'000'000, 0, 1, 200'000, 1'000'000, 0});
    ev.spans.push_back({"mysql", 1'500'000, 3'000'000, 1, 2, 100'000, 900'000, 400'000});
    events.push_back(std::move(ev));
  }
  {
    TxnEvent ev;  // write: three tiers, two DB visits, lock-heavy
    ev.type = "BuyConfirm";
    ev.end_ns = 12'000'000;
    ev.spans.push_back({"squid", 0, 12'000'000, -1, 0, 0, 500'000, 0});
    ev.spans.push_back({"tomcat", 600'000, 10'500'000, 0, 1, 250'000, 1'500'000, 0});
    ev.spans.push_back({"mysql", 1'800'000, 4'000'000, 1, 2, 120'000, 700'000, 2'500'000});
    ev.spans.push_back({"mysql", 7'000'000, 3'500'000, 1, 3, 90'000, 600'000, 1'800'000});
    events.push_back(std::move(ev));
  }
  return events;
}

// ns per event of one pass over `events`, minimum of `rounds` timed
// loops of `iters` passes each.
template <typename Fn>
double TimedNsPerEvent(int rounds, int iters, size_t events_per_pass, Fn&& fn) {
  double best = 1e300;
  for (int r = 0; r < rounds; ++r) {
    const auto t0 = std::chrono::steady_clock::now();
    for (int i = 0; i < iters; ++i) {
      fn();
    }
    const auto t1 = std::chrono::steady_clock::now();
    const double ns =
        std::chrono::duration<double, std::nano>(t1 - t0).count() /
        (static_cast<double>(iters) * static_cast<double>(events_per_pass));
    best = ns < best ? ns : best;
  }
  return best;
}

// The marginal per-transaction cost of attribution on the daemon's
// ingest path: attribute + fold + the attr-fattened history copy,
// minus ingest + copy without attribution.
double MeasureAttrNsPerTxn() {
  using namespace whodunit::obs::live;
  const std::vector<TxnEvent> events = RepresentativeEvents();
  AttrScratch scratch;
  constexpr int kRounds = 7;
  constexpr int kIters = 20000;

  LiveAggregator with_agg;
  int64_t sink = 0;
  const double with_ns = TimedNsPerEvent(kRounds, kIters, events.size(), [&] {
    for (const TxnEvent& ev : events) {
      TxnEvent copy = ev;  // the channel hand-off copy
      copy.attr = AttributeTxn(copy, scratch);
      with_agg.Ingest(copy);
      sink += static_cast<int64_t>(copy.attr.size());
    }
  });

  LiveAggregator without_agg;
  const double without_ns = TimedNsPerEvent(kRounds, kIters, events.size(), [&] {
    for (const TxnEvent& ev : events) {
      TxnEvent copy = ev;
      without_agg.Ingest(copy);
      sink += static_cast<int64_t>(copy.spans.size());
    }
  });

  if (sink == 42) {
    std::printf("(unreachable)\n");
  }
  const double delta = with_ns - without_ns;
  return delta > 0 ? delta : 0;
}

}  // namespace

int main() {
  using namespace whodunit;
  bench::Header("Ablation: live observability publish path (TPC-W, 300s sim)");

  apps::BookstoreResult off_result, live_result, attr_result;
  // Interleave the arms so machine drift hits all three equally; keep
  // the fastest of each arm (noise only ever adds time).
  double off_ms = 1e300, live_ms = 1e300, attr_ms = 1e300;
  for (int round = 0; round < 3; ++round) {
    const double off = RunOnce(/*live=*/false, /*attribution=*/false, &off_result);
    const double live = RunOnce(/*live=*/true, /*attribution=*/false, &live_result);
    const double attr = RunOnce(/*live=*/true, /*attribution=*/true, &attr_result);
    off_ms = off < off_ms ? off : off_ms;
    live_ms = live < live_ms ? live : live_ms;
    attr_ms = attr < attr_ms ? attr : attr_ms;
  }

  const double attr_ns_per_txn = MeasureAttrNsPerTxn();

  const auto txns = static_cast<double>(live_result.interactions);
  const double base_ns_per_txn = txns > 0 ? 1e6 * off_ms / txns : 0.0;
  const double overhead_pct = 100.0 * (live_ms - off_ms) / off_ms;
  const double per_txn_us = txns > 0 ? 1000.0 * (live_ms - off_ms) / txns : 0.0;
  const double attr_pct =
      base_ns_per_txn > 0 ? 100.0 * attr_ns_per_txn / base_ns_per_txn : 0.0;

  std::printf("daemon off:            %10.1f ms wall\n", off_ms);
  std::printf("daemon on, attr off:   %10.1f ms wall\n", live_ms);
  std::printf("daemon on, attr on:    %10.1f ms wall\n", attr_ms);
  std::printf("publish-path overhead: %+9.1f%%  (%.1f us per transaction)\n",
              overhead_pct, per_txn_us);
  std::printf("attribution cost:      %10.0f ns per transaction (direct), %.1f%% of baseline\n",
              attr_ns_per_txn, attr_pct);
  std::printf("interactions:          %10lu (live arm)\n",
              static_cast<unsigned long>(live_result.interactions));
  std::printf("live table rendered:   %s\n",
              live_result.live_top_text.empty() ? "NO (BUG)" : "yes");
  std::printf("why-tail rendered:     %s\n",
              attr_result.live_why_tail_text.empty() ? "NO (BUG)" : "yes");

  // The simulated result must be identical in all three arms: the
  // daemon observes the run, it must not perturb it — and the
  // attribution pass runs entirely inside the daemon.
  const bool identical =
      off_result.interactions == live_result.interactions &&
      off_result.throughput_tpm == live_result.throughput_tpm &&
      off_result.interactions == attr_result.interactions &&
      off_result.throughput_tpm == attr_result.throughput_tpm;
  std::printf("sim results identical: %s\n", identical ? "yes" : "NO (BUG)");

  // Per-transaction costs in ns, for run_benches.sh's derived block
  // (attr_publish_overhead_pct) and the check_perf.sh <15% gate.
  auto& gauges = obs::Registry();
  if (txns > 0) {
    gauges.GetGauge("bench.ablation_live_obs.base_ns_per_txn")
        .Set(static_cast<int64_t>(base_ns_per_txn));
    gauges.GetGauge("bench.ablation_live_obs.publish_ns_per_txn")
        .Set(static_cast<int64_t>(1e6 * (live_ms - off_ms) / txns));
    gauges.GetGauge("bench.ablation_live_obs.attr_publish_ns_per_txn")
        .Set(static_cast<int64_t>(attr_ns_per_txn));
  }

  whodunit::bench::DumpMetrics("ablation_live_obs");
  return identical ? 0 : 1;
}
