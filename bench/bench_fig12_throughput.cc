// Figure 12: TPC-W throughput (tx/min) vs concurrent clients, with and
// without BestSellers/SearchResult result caching.
//
// Reproduced claims:
//   * without caching, the database CPU saturates around 200 clients
//     at ~1184 tx/min;
//   * with caching, throughput grows almost linearly to ~450 clients
//     and peaks close to 3x higher (paper: 3376 vs 1184 tx/min).
#include <algorithm>
#include <cstdio>
#include <vector>

#include "bench/bench_util.h"
#include "src/apps/bookstore/bookstore.h"

int main() {
  using namespace whodunit;
  bench::Header(
      "Figure 12: throughput (tx/min) under the browsing mix\n"
      "paper: no-cache saturates ~200 clients at 1184; caching scales to ~450\n"
      "clients and peaks at 3376 (~2.85x)");

  // Fixed job list, run on $BENCH_THREADS workers (bench_util.h);
  // results print in job order, so output is thread-count-invariant.
  struct Job {
    int clients;
    bool cached;
  };
  std::vector<Job> jobs;
  for (int clients : {50, 100, 150, 200, 250, 300, 350, 400, 450, 500}) {
    jobs.push_back({clients, false});
    jobs.push_back({clients, true});
  }
  const auto results = bench::RunJobs(jobs.size(), [&jobs](size_t i) {
    apps::BookstoreOptions options;
    options.clients = jobs[i].clients;
    options.duration = sim::Seconds(1800);
    options.warmup = sim::Seconds(300);
    options.servlet_caching = jobs[i].cached;
    options.sample_rate = bench::BenchSampleRate();
    options.shards = bench::BenchShards();
    return apps::RunBookstore(options);
  });

  double peak_plain = 0, peak_cached = 0;
  std::printf("%7s | %12s | %12s\n", "clients", "original", "caching");
  std::printf("--------+--------------+-------------\n");
  for (size_t i = 0; i + 1 < jobs.size(); i += 2) {
    const apps::BookstoreResult& plain = results[i];
    const apps::BookstoreResult& cached = results[i + 1];
    peak_plain = std::max(peak_plain, plain.throughput_tpm);
    peak_cached = std::max(peak_cached, cached.throughput_tpm);
    std::printf("%7d | %12.0f | %12.0f\n", jobs[i].clients, plain.throughput_tpm,
                cached.throughput_tpm);
  }
  std::printf("\npeak throughput: original %.0f tx/min (paper: 1184), caching %.0f\n"
              "tx/min (paper: 3376) — ratio %.2fx (paper: 2.85x)\n",
              peak_plain, peak_cached, peak_cached / peak_plain);
  whodunit::bench::DumpMetrics("fig12_throughput");
  return 0;
}
