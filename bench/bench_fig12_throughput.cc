// Figure 12: TPC-W throughput (tx/min) vs concurrent clients, with and
// without BestSellers/SearchResult result caching.
//
// Reproduced claims:
//   * without caching, the database CPU saturates around 200 clients
//     at ~1184 tx/min;
//   * with caching, throughput grows almost linearly to ~450 clients
//     and peaks close to 3x higher (paper: 3376 vs 1184 tx/min).
#include <algorithm>
#include <cstdio>

#include "bench/bench_util.h"
#include "src/apps/bookstore/bookstore.h"

int main() {
  using namespace whodunit;
  bench::Header(
      "Figure 12: throughput (tx/min) under the browsing mix\n"
      "paper: no-cache saturates ~200 clients at 1184; caching scales to ~450\n"
      "clients and peaks at 3376 (~2.85x)");

  double peak_plain = 0, peak_cached = 0;
  std::printf("%7s | %12s | %12s\n", "clients", "original", "caching");
  std::printf("--------+--------------+-------------\n");
  for (int clients : {50, 100, 150, 200, 250, 300, 350, 400, 450, 500}) {
    apps::BookstoreOptions base;
    base.clients = clients;
    base.duration = sim::Seconds(1800);
    base.warmup = sim::Seconds(300);
    apps::BookstoreResult plain = apps::RunBookstore(base);
    base.servlet_caching = true;
    apps::BookstoreResult cached = apps::RunBookstore(base);
    peak_plain = std::max(peak_plain, plain.throughput_tpm);
    peak_cached = std::max(peak_cached, cached.throughput_tpm);
    std::printf("%7d | %12.0f | %12.0f\n", clients, plain.throughput_tpm,
                cached.throughput_tpm);
  }
  std::printf("\npeak throughput: original %.0f tx/min (paper: 1184), caching %.0f\n"
              "tx/min (paper: 3376) — ratio %.2fx (paper: 2.85x)\n",
              peak_plain, peak_cached, peak_cached / peak_plain);
  whodunit::bench::DumpMetrics("fig12_throughput");
  return 0;
}
