// Shared helpers for the experiment harnesses.
//
// Each bench binary regenerates one table or figure from the paper and
// prints the paper's number next to the measured one. Absolute values
// are calibrated (see workload/calibration.h); the claims under test
// are the SHAPES: who wins, by roughly what factor, where crossovers
// and saturation points fall.
#ifndef BENCH_BENCH_UTIL_H_
#define BENCH_BENCH_UTIL_H_

#include <cstdio>
#include <cstdlib>
#include <string>

#include "src/obs/export.h"

namespace whodunit::bench {

inline void Header(const char* title) {
  std::printf("\n================================================================\n");
  std::printf("%s\n", title);
  std::printf("================================================================\n");
}

inline void Note(const char* text) { std::printf("%s\n", text); }

// Directory metric dumps land in: $WHODUNIT_METRICS_DIR when set
// (scripts/run_benches.sh points it at the run's workdir), otherwise
// the current directory. Keeps by-hand bench runs from littering the
// source tree root with BENCH_*.metrics.json files.
inline std::string MetricsDir() {
  const char* dir = std::getenv("WHODUNIT_METRICS_DIR");
  if (dir != nullptr && dir[0] != '\0') {
    return dir;
  }
  return ".";
}

// Writes the profiler's internal counters (src/obs, docs/METRICS.md)
// to BENCH_<name>.metrics.json under MetricsDir(), so result
// trajectories carry the self-observability data next to the
// wall-clock numbers. Call once, at bench exit.
inline void DumpMetrics(const char* bench_name) {
  const std::string path =
      MetricsDir() + "/BENCH_" + bench_name + ".metrics.json";
  if (obs::DumpGlobalMetrics(path)) {
    std::printf("\n[obs] internal metrics dumped to %s\n", path.c_str());
  } else {
    std::printf("\n[obs] FAILED to write %s\n", path.c_str());
  }
}

}  // namespace whodunit::bench

#endif  // BENCH_BENCH_UTIL_H_
