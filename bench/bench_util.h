// Shared helpers for the experiment harnesses.
//
// Each bench binary regenerates one table or figure from the paper and
// prints the paper's number next to the measured one. Absolute values
// are calibrated (see workload/calibration.h); the claims under test
// are the SHAPES: who wins, by roughly what factor, where crossovers
// and saturation points fall.
#ifndef BENCH_BENCH_UTIL_H_
#define BENCH_BENCH_UTIL_H_

#include <cstdio>
#include <cstdlib>
#include <string>
#include <type_traits>
#include <utility>
#include <vector>

#include "src/obs/export.h"
#include "src/obs/metrics.h"
#include "src/sim/parallel_runner.h"

namespace whodunit::bench {

inline void Header(const char* title) {
  std::printf("\n================================================================\n");
  std::printf("%s\n", title);
  std::printf("================================================================\n");
}

inline void Note(const char* text) { std::printf("%s\n", text); }

// ---- Parallel execution knobs (docs/PERFORMANCE.md) -------------------
//
// $BENCH_THREADS sets the PHYSICAL parallelism of a bench's job list
// (default 1 = today's serial behavior). The job list itself is fixed,
// results print in job order, and per-job metrics fold into the
// process registry in job order — so bench output and metrics dumps
// are byte-identical for any thread count.
//
// $BENCH_SHARDS sets the LOGICAL shard count passed to apps that
// support shard-parallel runs (default 1). Shard count is part of the
// workload definition: changing it changes the numbers (documented in
// docs/PERFORMANCE.md), which is why it is a separate knob.

inline int EnvInt(const char* name, int fallback) {
  const char* v = std::getenv(name);
  if (v == nullptr || v[0] == '\0') {
    return fallback;
  }
  const int n = std::atoi(v);
  return n < 1 ? fallback : n;
}

inline int BenchThreads() { return EnvInt("BENCH_THREADS", 1); }
inline int BenchShards() { return EnvInt("BENCH_SHARDS", 1); }

// $BENCH_SAMPLE_RATE sets the production sampling rate the app-level
// benches profile at (docs/PRODUCTION.md); run_benches.sh records it
// in the whodunit-bench-v1 JSON. Committed baselines use 1.0, which
// is byte-identical to the pre-sampling profiler.
inline double BenchSampleRate() {
  const char* v = std::getenv("BENCH_SAMPLE_RATE");
  if (v == nullptr || v[0] == '\0') {
    return 1.0;
  }
  const double rate = std::atof(v);
  return rate <= 0.0 || rate > 1.0 ? 1.0 : rate;
}

// Runs jobs 0..count-1 (each `fn(job)` returning a result) on
// BenchThreads() workers, each job in its own shard environment
// (sim::ShardEnv: private metrics registry, trace ring, context
// tree). Returns results in job order, after folding each job's
// metrics into the process registry in that same order.
template <typename Fn>
auto RunJobs(size_t count, Fn&& fn) {
  auto runs = sim::ParallelRunner::Run(
      count, static_cast<size_t>(BenchThreads()),
      [&fn](size_t job, sim::ShardEnv&) { return fn(job); });
  using R = std::decay_t<decltype(fn(size_t{0}))>;
  std::vector<R> out;
  out.reserve(runs.size());
  for (auto& run : runs) {
    run.env->FoldMetricsInto(obs::Registry());
    out.push_back(std::move(run.result));
  }
  return out;
}

// Directory metric dumps land in: $WHODUNIT_METRICS_DIR when set
// (scripts/run_benches.sh points it at the run's workdir), otherwise
// the current directory. Keeps by-hand bench runs from littering the
// source tree root with BENCH_*.metrics.json files.
inline std::string MetricsDir() {
  const char* dir = std::getenv("WHODUNIT_METRICS_DIR");
  if (dir != nullptr && dir[0] != '\0') {
    return dir;
  }
  return ".";
}

// Writes the profiler's internal counters (src/obs, docs/METRICS.md)
// to BENCH_<name>.metrics.json under MetricsDir(), so result
// trajectories carry the self-observability data next to the
// wall-clock numbers. Call once, at bench exit.
inline void DumpMetrics(const char* bench_name) {
  const std::string path =
      MetricsDir() + "/BENCH_" + bench_name + ".metrics.json";
  if (obs::DumpGlobalMetrics(path)) {
    std::printf("\n[obs] internal metrics dumped to %s\n", path.c_str());
  } else {
    std::printf("\n[obs] FAILED to write %s\n", path.c_str());
  }
}

}  // namespace whodunit::bench

#endif  // BENCH_BENCH_UTIL_H_
