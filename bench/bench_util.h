// Shared helpers for the experiment harnesses.
//
// Each bench binary regenerates one table or figure from the paper and
// prints the paper's number next to the measured one. Absolute values
// are calibrated (see workload/calibration.h); the claims under test
// are the SHAPES: who wins, by roughly what factor, where crossovers
// and saturation points fall.
#ifndef BENCH_BENCH_UTIL_H_
#define BENCH_BENCH_UTIL_H_

#include <cstdio>

namespace whodunit::bench {

inline void Header(const char* title) {
  std::printf("\n================================================================\n");
  std::printf("%s\n", title);
  std::printf("================================================================\n");
}

inline void Note(const char* text) { std::printf("%s\n", text); }

}  // namespace whodunit::bench

#endif  // BENCH_BENCH_UTIL_H_
