// Figure 8 + §8.1: transactional profile of the Apache stand-in under
// the Rice-like web workload, plus the MySQL negative validation.
//
// Reproduced claims:
//   * Whodunit detects the listener -> worker transaction flow through
//     the shared queue (ap_queue_push -> ap_queue_pop) and tracks the
//     workers' CPU under the listener's transaction context;
//   * the listener's own context is a small share of total CPU
//     (paper: ~2.4% around apr_socket_accept/ap_queue_push) while the
//     ap_process_connection subtree dominates;
//   * the synchronized memory allocator is detected and demoted;
//   * MySQL-style shared-memory traffic yields NO transaction flow.
#include <cstdio>

#include "bench/bench_util.h"
#include "src/apps/minihttpd/minihttpd.h"

int main() {
  using namespace whodunit;
  bench::Header("Figure 8: transactional profile of Apache (minihttpd)");

  apps::MinihttpdOptions options;
  options.mode = callpath::ProfilerMode::kWhodunit;
  options.clients = 64;
  options.workers = 8;
  options.duration = sim::Seconds(30);
  apps::MinihttpdResult r = apps::RunMinihttpd(options);

  std::printf("%s\n", r.profile_text.c_str());
  std::printf("requests served:             %lu (%lu connections)\n",
              static_cast<unsigned long>(r.requests),
              static_cast<unsigned long>(r.connections));
  std::printf("throughput:                  %.1f Mb/s\n", r.throughput_mbps);
  std::printf("queue flow detected:         %s   (paper: yes, the dashed edge)\n",
              r.queue_flow_detected ? "yes" : "NO");
  std::printf("flows detected:              %lu\n",
              static_cast<unsigned long>(r.flows_detected));
  std::printf("allocator demoted:           %s   (paper: detected, not a flow)\n",
              r.allocator_demoted ? "yes" : "NO");
  std::printf("listener-context CPU share:  %.2f%%   (paper: ~2.4%% listener side)\n",
              r.listener_context_share);
  std::printf("worker-context CPU share:    %.2f%%   (paper: bulk of profile,\n"
              "                             ap_process_connection subtree ~22.7%%+)\n",
              r.worker_context_share);

  bench::Header("Section 8.1: MySQL shared-memory validation");
  apps::MysqlShmValidationResult v = apps::RunMysqlShmValidation(8, 2000);
  std::printf("critical sections analyzed:  %lu\n",
              static_cast<unsigned long>(v.critical_sections_run));
  std::printf("transaction flows detected:  %lu   (paper: 0 — no flow in MySQL)\n",
              static_cast<unsigned long>(v.flows_detected));
  std::printf("table resource demoted:      %s   (threads read AND write rows)\n",
              v.table_lock_demoted ? "yes" : "NO");
  whodunit::bench::DumpMetrics("fig8_apache_profile");
  return 0;
}
