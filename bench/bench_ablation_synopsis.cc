// Ablation: 4-byte synopses vs shipping full transaction contexts.
//
// §7.4 motivates synopses: "Propagating a synopsis instead of a
// transaction context reduces Whodunit's communication overhead."
// This bench quantifies it on the TPC-W rig: bytes actually sent as
// synopses vs what the same messages would carry if each context were
// serialized in full (call-path elements at 4 bytes per frame id plus
// framing), per message and in total.
#include <cstdio>

#include "bench/bench_util.h"
#include "src/apps/bookstore/bookstore.h"
#include "src/context/synopsis.h"
#include "src/profiler/deployment.h"
#include "src/profiler/stage_profiler.h"

int main() {
  using namespace whodunit;
  bench::Header("Ablation: synopsis vs full-context piggybacking (TPC-W)");

  apps::BookstoreOptions options;
  options.clients = 100;
  options.duration = sim::Seconds(1200);
  options.warmup = sim::Seconds(120);
  apps::BookstoreResult r = apps::RunBookstore(options);

  // A full context for a TPC-W DB query carries the web-proxy call
  // path, the Tomcat servlet call path, and per-element kind bytes; a
  // conservative serialized encoding is ~12 bytes per call-path frame.
  // The deepest paths in this rig are ~4 frames over 2 stages.
  const double kFullContextBytesPerMessage = 2 /*stages*/ * 4 /*frames*/ * 12.0;
  const double messages =
      static_cast<double>(r.interactions) * 6.0;  // 3 hops, request+response
  const double full_bytes = messages * kFullContextBytesPerMessage;

  std::printf("interactions:                    %lu\n",
              static_cast<unsigned long>(r.interactions));
  std::printf("synopsis bytes sent:             %.3f MB (%.1f B/message avg)\n",
              static_cast<double>(r.context_bytes) / 1e6,
              static_cast<double>(r.context_bytes) / messages);
  std::printf("full contexts would have sent:   %.3f MB (%.0f B/message)\n",
              full_bytes / 1e6, kFullContextBytesPerMessage);
  std::printf("synopsis saving:                 %.1fx fewer context bytes\n",
              full_bytes / static_cast<double>(r.context_bytes));
  std::printf("context overhead vs app data:    %.2f%% (synopses)  %.2f%% (full)\n",
              100.0 * static_cast<double>(r.context_bytes) /
                  static_cast<double>(r.payload_bytes),
              100.0 * full_bytes / static_cast<double>(r.payload_bytes));
  whodunit::bench::DumpMetrics("ablation_synopsis");
  return 0;
}
