// Ablation: transaction-context loop pruning (§4.1).
//
// On a persistent connection the handler sequence grows
// [accept, read, write, read, write, ...] forever. Pruning collapses
// it, bounding both the context length and the number of distinct
// contexts (and hence CCTs). Without pruning, every request count
// yields a new context — profile data fragments and memory grows with
// trace length.
#include <cstdio>
#include <unordered_set>

#include "bench/bench_util.h"
#include "src/context/transaction_context.h"

int main() {
  using namespace whodunit;
  using context::Element;
  using context::ElementKind;
  using context::TransactionContext;

  bench::Header("Ablation: context loop pruning on persistent connections (§4.1)");

  const Element accept{ElementKind::kHandler, 0};
  const Element read{ElementKind::kHandler, 1};
  const Element write{ElementKind::kHandler, 2};

  std::printf("%12s | %16s %16s | %16s %16s\n", "requests/conn", "len (pruned)",
              "len (unpruned)", "ctxts (pruned)", "ctxts (unpruned)");
  std::printf("-------------+-----------------------------------+--------------------"
              "-------------\n");
  for (int requests : {1, 2, 8, 64, 512}) {
    std::unordered_set<uint64_t> pruned_ctxts, unpruned_ctxts;
    TransactionContext pruned, unpruned;
    pruned.Append(accept);
    unpruned.Append(accept, /*prune=*/false);
    size_t max_pruned = 0, max_unpruned = 0;
    for (int r = 0; r < requests; ++r) {
      for (const Element& h : {read, write}) {
        pruned.Append(h);
        unpruned.Append(h, /*prune=*/false);
        pruned_ctxts.insert(pruned.Hash());
        unpruned_ctxts.insert(unpruned.Hash());
        max_pruned = std::max(max_pruned, pruned.size());
        max_unpruned = std::max(max_unpruned, unpruned.size());
      }
    }
    std::printf("%12d | %16zu %16zu | %16zu %16zu\n", requests, max_pruned, max_unpruned,
                pruned_ctxts.size(), unpruned_ctxts.size());
  }
  bench::Note(
      "\nPruned contexts stay at <= 3 elements and 2 distinct contexts (the\n"
      "read-phase and write-phase of a request) regardless of connection\n"
      "length; unpruned state grows linearly with the trace — each profile\n"
      "sample would land in a CCT of its own.");
  whodunit::bench::DumpMetrics("ablation_pruning");
  return 0;
}
