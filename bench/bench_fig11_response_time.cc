// Figure 11: average response time of the AdminConfirm, BestSellers
// and SearchResult transactions vs concurrent clients, for the
// original system and the Whodunit-guided optimizations.
//
// Reproduced claims:
//   * converting `item` to row locks (InnoDB) eliminates
//     AdminConfirm's table-lock crosstalk (the paper measures a 9-72%
//     response-time reduction, e.g. 640 ms -> 550 ms at 100 clients;
//     in our FIFO-CPU model the latency effect is within queueing
//     noise while the crosstalk elimination is exact — see
//     EXPERIMENTS.md and DESIGN.md §4b);
//   * caching BestSellers/SearchResult results in the servlets
//     (TPC-W clause 6.3.3.1) slashes their response times;
//   * without optimizations, response times blow up as the database
//     CPU saturates (~200 clients).
#include <cstdio>

#include "bench/bench_util.h"
#include "src/apps/bookstore/bookstore.h"

int main() {
  using namespace whodunit;
  using workload::TpcwTransaction;
  bench::Header(
      "Figure 11: mean response time (ms) vs concurrent clients\n"
      "paper anchors: AdminConfirm 640 -> 550 ms at 100 clients (MyISAM -> InnoDB);\n"
      "BestSellers/SearchResult collapse to milliseconds with result caching");

  std::printf("%7s | %9s %9s %9s | %9s %9s | %9s %9s\n", "clients", "AC-orig", "AC-inno",
              "AC-xtalk", "BS-orig", "BS-cache", "SR-orig", "SR-cache");
  std::printf("--------+-------------------------------+---------------------+---------"
              "------------\n");
  for (int clients : {50, 100, 150, 200, 250, 300, 350, 400, 450, 500}) {
    apps::BookstoreOptions base;
    base.clients = clients;
    // Long runs: AdminConfirm is 0.09% of the mix, so averaging its
    // response time needs many interactions.
    base.duration = sim::Seconds(4800);
    base.warmup = sim::Seconds(300);

    apps::BookstoreResult orig = apps::RunBookstore(base);
    apps::BookstoreOptions inno = base;
    inno.item_granularity = db::LockGranularity::kRowLocks;
    apps::BookstoreResult r_inno = apps::RunBookstore(inno);
    apps::BookstoreOptions cache = base;
    cache.servlet_caching = true;
    apps::BookstoreResult r_cache = apps::RunBookstore(cache);

    const auto& ac_o = orig.per_type[static_cast<size_t>(TpcwTransaction::kAdminConfirm)];
    const auto& ac_i = r_inno.per_type[static_cast<size_t>(TpcwTransaction::kAdminConfirm)];
    const auto& bs_o = orig.per_type[static_cast<size_t>(TpcwTransaction::kBestSellers)];
    const auto& bs_c = r_cache.per_type[static_cast<size_t>(TpcwTransaction::kBestSellers)];
    const auto& sr_o = orig.per_type[static_cast<size_t>(TpcwTransaction::kSearchResult)];
    const auto& sr_c = r_cache.per_type[static_cast<size_t>(TpcwTransaction::kSearchResult)];
    std::printf("%7d | %9.0f %9.0f %9.1f | %9.0f %9.0f | %9.0f %9.0f\n", clients,
                ac_o.mean_response_ms, ac_i.mean_response_ms, ac_o.mean_crosstalk_ms,
                bs_o.mean_response_ms, bs_c.mean_response_ms, sr_o.mean_response_ms,
                sr_c.mean_response_ms);
  }
  bench::Note(
      "\nAC-xtalk is AdminConfirm's mean lock wait under MyISAM; with InnoDB\n"
      "row locks it is (near) zero — the mechanism behind the AC-inno column.");
  whodunit::bench::DumpMetrics("fig11_response_time");
  return 0;
}
