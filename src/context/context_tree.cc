#include "src/context/context_tree.h"

#include <algorithm>

namespace whodunit::context {
namespace {

// One FNV-1a fold step over the 8 bytes of a packed element; chaining
// these left-to-right reproduces TransactionContext::Hash exactly.
uint64_t FnvStep(uint64_t h, uint64_t packed) {
  for (int i = 0; i < 8; ++i) {
    h ^= (packed >> (i * 8)) & 0xff;
    h *= 0x100000001b3ull;
  }
  return h;
}

constexpr uint64_t kFnvBasis = 0xcbf29ce484222325ull;

}  // namespace

ContextTree::ContextTree()
    : obs_appends_(&obs::Registry().GetCounter("context.tree_appends")),
      obs_prunings_(&obs::Registry().GetCounter("context.tree_prunings")),
      obs_nodes_(&obs::Registry().GetGauge("context.tree_nodes")) {
  // Node 0: the empty context (the tree root).
  nodes_.push_back(Node{kEmptyContext, Element{}, 0, kFnvBasis});
  obs_nodes_->Set(1);
}

NodeId ContextTree::Child(NodeId parent, Element e) {
  const ChildKey key{parent, e.Packed()};
  if (NodeId* found = children_.Find(key)) {
    return *found;
  }
  const auto id = static_cast<NodeId>(nodes_.size());
  nodes_.push_back(Node{parent, e, nodes_[parent].depth + 1,
                        FnvStep(nodes_[parent].hash, e.Packed())});
  children_.Upsert(key, id);
  obs_nodes_->Set(static_cast<int64_t>(nodes_.size()));
  return id;
}

NodeId ContextTree::Append(NodeId ctxt, Element e, bool prune) {
  obs_appends_->Add();
  if (prune) {
    // §4.1: if e already occurs on the path, the new occurrence closes
    // a loop; cut the suffix after the latest prior occurrence — which
    // is exactly the nearest ancestor (or self) spelling e.
    for (NodeId walk = ctxt; walk != kEmptyContext; walk = nodes_[walk].parent) {
      if (nodes_[walk].elem == e) {
        obs_prunings_->Add();
        return walk;
      }
    }
  }
  return Child(ctxt, e);
}

NodeId ContextTree::AppendPath(NodeId onto, NodeId suffix, bool prune) {
  if (suffix == kEmptyContext) {
    return onto;
  }
  // Collect the suffix's elements root-to-leaf. Pruned contexts are
  // short (bounded by the element universe); spill to the heap only
  // for unpruned debug-mode histories.
  Element stack_buf[64];
  std::vector<Element> heap_buf;
  const uint32_t depth = nodes_[suffix].depth;
  Element* elems = stack_buf;
  if (depth > 64) {
    heap_buf.resize(depth);
    elems = heap_buf.data();
  }
  uint32_t i = depth;
  for (NodeId walk = suffix; walk != kEmptyContext; walk = nodes_[walk].parent) {
    elems[--i] = nodes_[walk].elem;
  }
  NodeId out = onto;
  for (uint32_t j = 0; j < depth; ++j) {
    out = Append(out, elems[j], prune);
  }
  return out;
}

NodeId ContextTree::Concat(NodeId prefix, NodeId suffix, bool prune) {
  return AppendPath(prefix, suffix, prune);
}

bool ContextTree::HasPrefix(NodeId ctxt, NodeId prefix) const {
  const uint32_t want = nodes_[prefix].depth;
  if (want > nodes_[ctxt].depth) {
    return false;
  }
  NodeId walk = ctxt;
  for (uint32_t d = nodes_[ctxt].depth; d > want; --d) {
    walk = nodes_[walk].parent;
  }
  return walk == prefix;
}

NodeId ContextTree::Intern(const TransactionContext& ctxt) {
  NodeId node = kEmptyContext;
  for (const Element& e : ctxt.elements()) {
    node = Child(node, e);
  }
  return node;
}

TransactionContext ContextTree::Materialize(NodeId ctxt) const {
  std::vector<Element> elems(nodes_[ctxt].depth);
  uint32_t i = nodes_[ctxt].depth;
  for (NodeId walk = ctxt; walk != kEmptyContext; walk = nodes_[walk].parent) {
    elems[--i] = nodes_[walk].elem;
  }
  return TransactionContext(std::move(elems));
}

std::string ContextTree::ToString(
    NodeId ctxt, const std::function<std::string(ElementKind, uint32_t)>& namer) const {
  return Materialize(ctxt).ToString(namer);
}

std::vector<NodeId> ContextTree::MergeFrom(const ContextTree& other) {
  std::vector<NodeId> remap(other.nodes_.size(), kEmptyContext);
  // Nodes are append-only, so every parent precedes its children and a
  // single forward pass suffices.
  for (NodeId id = 1; id < other.nodes_.size(); ++id) {
    const Node& node = other.nodes_[id];
    remap[id] = Child(remap[node.parent], node.elem);
  }
  return remap;
}

namespace {

thread_local ContextTree* current_tree = nullptr;

}  // namespace

ContextTree& ProcessContextTree() {
  static ContextTree* tree = new ContextTree();
  return *tree;
}

ContextTree& GlobalContextTree() {
  ContextTree* tree = current_tree;
  return tree != nullptr ? *tree : ProcessContextTree();
}

ScopedContextTree::ScopedContextTree(ContextTree& tree) : prev_(current_tree) {
  current_tree = &tree;
}

ScopedContextTree::~ScopedContextTree() { current_tree = prev_; }

}  // namespace whodunit::context
