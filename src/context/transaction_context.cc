#include "src/context/transaction_context.h"

#include <sstream>

#include "src/obs/metrics.h"

namespace whodunit::context {
namespace {

// TransactionContext is a value type with no construction point tied
// to a shard, so the counter handles are cached per thread and
// re-resolved whenever the thread's current registry changes (i.e. on
// entering or leaving a shard isolate).
struct AppendCounters {
  obs::MetricsRegistry* registry = nullptr;
  obs::Counter* appends = nullptr;
  obs::Counter* prunings = nullptr;
};

AppendCounters& CurrentAppendCounters() {
  thread_local AppendCounters cache;
  obs::MetricsRegistry* reg = &obs::Registry();
  if (cache.registry != reg) {
    cache.registry = reg;
    cache.appends = &reg->GetCounter("context.appends");
    cache.prunings = &reg->GetCounter("context.prunings");
  }
  return cache;
}

}  // namespace

void TransactionContext::Append(Element e, bool prune) {
  AppendCounters& obs = CurrentAppendCounters();
  obs.appends->Add();
  if (prune) {
    // One rule covers both cases from §4.1: if e already occurs in the
    // sequence, the new occurrence closes a loop (length 1 when it is
    // the immediately preceding element — consecutive-duplicate
    // collapse; length > 1 otherwise — cycle pruning). Cut the suffix
    // after the latest prior occurrence of e instead of appending, so
    // [accept, read, write] + read -> [accept, read].
    for (size_t i = elements_.size(); i-- > 0;) {
      if (elements_[i] == e) {
        elements_.resize(i + 1);
        obs.prunings->Add();
        return;
      }
    }
  }
  elements_.push_back(e);
}

TransactionContext TransactionContext::Concat(const TransactionContext& prefix,
                                              const TransactionContext& suffix, bool prune) {
  TransactionContext out = prefix;
  for (const Element& e : suffix.elements_) {
    out.Append(e, prune);
  }
  return out;
}

bool TransactionContext::HasPrefix(const TransactionContext& p) const {
  if (p.size() > size()) {
    return false;
  }
  for (size_t i = 0; i < p.size(); ++i) {
    if (elements_[i] != p.elements_[i]) {
      return false;
    }
  }
  return true;
}

uint64_t TransactionContext::Hash() const {
  uint64_t h = 0xcbf29ce484222325ull;
  for (const Element& e : elements_) {
    uint64_t v = e.Packed();
    for (int i = 0; i < 8; ++i) {
      h ^= (v >> (i * 8)) & 0xff;
      h *= 0x100000001b3ull;
    }
  }
  return h;
}

std::string TransactionContext::ToString(
    const std::function<std::string(ElementKind, uint32_t)>& namer) const {
  std::ostringstream out;
  out << "[";
  bool first = true;
  for (const Element& e : elements_) {
    if (!first) {
      out << "|";
    }
    first = false;
    out << namer(e.kind, e.id);
  }
  out << "]";
  return out.str();
}

}  // namespace whodunit::context
