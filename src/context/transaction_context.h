// Transaction contexts (paper §2).
//
// A transaction context is the execution history of a request across
// stages: an ordered sequence of elements, each one either a call path
// (at a message-send point), an event-handler name, or a stage name.
// Appending applies the paper's §4.1 pruning: consecutive duplicate
// elements collapse (an event handler re-scheduled to finish an I/O),
// and loops of length > 1 are pruned by cutting the suffix that closes
// the loop (requests on a persistent connection, RPC-style ping-pong).
#ifndef SRC_CONTEXT_TRANSACTION_CONTEXT_H_
#define SRC_CONTEXT_TRANSACTION_CONTEXT_H_

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

namespace whodunit::context {

enum class ElementKind : uint8_t {
  kCallPath = 0,  // an interned call path at a produce/send point
  kHandler = 1,   // an event handler (event-driven stage)
  kStage = 2,     // a SEDA stage
};

// One step of a transaction's execution history.
struct Element {
  ElementKind kind;
  uint32_t id;

  friend bool operator==(const Element&, const Element&) = default;
  uint64_t Packed() const { return (static_cast<uint64_t>(kind) << 32) | id; }
};

class TransactionContext {
 public:
  TransactionContext() = default;
  explicit TransactionContext(std::vector<Element> elements)
      : elements_(std::move(elements)) {}

  // Appends with pruning (enabled by default, per the paper; the full
  // unpruned history can be kept for debugging by passing false).
  void Append(Element e, bool prune = true);

  // Returns prefix-then-suffix with pruning applied at the seam.
  static TransactionContext Concat(const TransactionContext& prefix,
                                   const TransactionContext& suffix, bool prune = true);

  const std::vector<Element>& elements() const { return elements_; }
  bool empty() const { return elements_.empty(); }
  size_t size() const { return elements_.size(); }

  // True if `p` is a (not necessarily proper) prefix of *this.
  bool HasPrefix(const TransactionContext& p) const;

  friend bool operator==(const TransactionContext&, const TransactionContext&) = default;

  // Stable 64-bit hash (FNV-1a over packed elements).
  uint64_t Hash() const;

  // Debug form like "[H:accept|H:read]" given a namer for (kind, id).
  std::string ToString(
      const std::function<std::string(ElementKind, uint32_t)>& namer) const;

 private:
  std::vector<Element> elements_;
};

struct TransactionContextHash {
  size_t operator()(const TransactionContext& c) const { return static_cast<size_t>(c.Hash()); }
};

}  // namespace whodunit::context

#endif  // SRC_CONTEXT_TRANSACTION_CONTEXT_H_
