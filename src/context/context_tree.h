// Interned transaction contexts: a global hash-consed context tree.
//
// A TransactionContext is an ordered element sequence, and the legacy
// value API (transaction_context.h) copies that vector on every
// event/SEDA hop — O(n) per append, per enqueue, per message. But the
// set of contexts a run ever produces is tiny and highly shared (the
// §4.1 pruning bounds each context by the element universe), so the
// sequences form a tree: every context is a path from the root, and
// two contexts that share a prefix share the tree nodes for it.
//
// This file interns that tree. A context becomes a 32-bit NodeId whose
// node stores (parent, last element, depth, running hash), and the
// context operations become:
//   * Append       — one hash-cons probe, plus an ancestor walk of at
//                    most the pruned-context length when pruning cuts
//                    a loop (O(loop window), paper §4.1);
//   * equality     — NodeId comparison (hash-consing is canonical:
//                    same element sequence <=> same NodeId);
//   * Hash         — precomputed at interning, O(1), and bit-for-bit
//                    identical to TransactionContext::Hash();
//   * Concat       — appends of the suffix's elements at the seam;
//   * HasPrefix    — ancestor walk of the depth difference.
//
// The tree is append-only and global (GlobalContextTree); like the
// rest of the profiler runtime it assumes the simulator's
// single-threaded execution model. The legacy value type remains the
// interchange/debug format; Intern/Materialize convert losslessly.
#ifndef SRC_CONTEXT_CONTEXT_TREE_H_
#define SRC_CONTEXT_CONTEXT_TREE_H_

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "src/context/transaction_context.h"
#include "src/obs/metrics.h"
#include "src/util/robin_hood.h"

namespace whodunit::context {

// An interned transaction context. Value 0 is the empty context.
//
// shm::CtxtId aliases this type (src/shm/section_summary.h pins the
// bridge with static_asserts): flow summaries store NodeIds directly,
// so replaying a cached critical section never materializes a context.
// shm reserves 0xffffffff as its invalid-context sentinel — keep
// NodeIds well below it (the tree is bounded by distinct prefixes,
// orders of magnitude smaller).
using NodeId = uint32_t;
inline constexpr NodeId kEmptyContext = 0;

class ContextTree {
 public:
  ContextTree();

  // The §4.1 append: collapses consecutive duplicates and cuts loops,
  // exactly like TransactionContext::Append on the materialized
  // sequence. O(1) hash-cons probe on the no-loop fast path; the
  // pruning scan walks ancestors instead of a vector.
  NodeId Append(NodeId ctxt, Element e, bool prune = true);

  // Prefix-then-suffix with pruning applied at the seam; matches
  // TransactionContext::Concat on the materialized sequences.
  NodeId Concat(NodeId prefix, NodeId suffix, bool prune = true);

  // Precomputed FNV-1a over the packed element sequence — equal to
  // TransactionContext::Hash() of the materialized context.
  uint64_t HashOf(NodeId ctxt) const { return nodes_[ctxt].hash; }

  // Element count of the context (depth of the node).
  uint32_t SizeOf(NodeId ctxt) const { return nodes_[ctxt].depth; }
  bool Empty(NodeId ctxt) const { return ctxt == kEmptyContext; }

  // True if `prefix` is a (not necessarily proper) prefix of `ctxt`:
  // an ancestor-or-self check, O(depth difference).
  bool HasPrefix(NodeId ctxt, NodeId prefix) const;

  // Last element / parent of a non-empty context.
  Element LastElement(NodeId ctxt) const { return nodes_[ctxt].elem; }
  NodeId ParentOf(NodeId ctxt) const { return nodes_[ctxt].parent; }

  // Interns the exact element sequence of a legacy value context (no
  // re-pruning: the value API already applied its own policy).
  NodeId Intern(const TransactionContext& ctxt);

  // The inverse: materializes the node's path as a value context.
  TransactionContext Materialize(NodeId ctxt) const;

  // Grafts every node of `other` into this tree (exact element
  // sequences, no re-pruning) and returns the old->new id map:
  // remap[id_in_other] = id_here. Hash-consing makes the merge
  // canonical — nodes whose sequences already exist map onto them, so
  // merging shard trees in canonical shard order yields the same tree
  // regardless of which threads built the shards. O(|other|).
  std::vector<NodeId> MergeFrom(const ContextTree& other);

  // Debug form like "[H:accept|H:read]", mirroring
  // TransactionContext::ToString.
  std::string ToString(
      NodeId ctxt,
      const std::function<std::string(ElementKind, uint32_t)>& namer) const;

  size_t node_count() const { return nodes_.size(); }

 private:
  struct Node {
    NodeId parent = kEmptyContext;
    Element elem{};      // last element of the sequence this node spells
    uint32_t depth = 0;  // element count
    uint64_t hash = 0;   // FNV-1a of the packed element sequence
  };
  struct ChildKey {
    NodeId parent;
    uint64_t elem;  // Element::Packed()
    friend bool operator==(const ChildKey&, const ChildKey&) = default;
  };
  struct ChildKeyHash {
    size_t operator()(const ChildKey& k) const {
      return SplitMix(k.elem * 0x9e3779b97f4a7c15ull + k.parent);
    }
    static size_t SplitMix(uint64_t x) {
      x ^= x >> 30;
      x *= 0xbf58476d1ce4e5b9ull;
      x ^= x >> 27;
      return static_cast<size_t>(x ^ (x >> 31));
    }
  };

  // The hash-cons step: the child of `parent` extending it with `e`,
  // creating it on first use.
  NodeId Child(NodeId parent, Element e);

  // Appends the elements of `suffix` (as a small stack-allocated or
  // heap spill walk) onto `onto`.
  NodeId AppendPath(NodeId onto, NodeId suffix, bool prune);

  std::vector<Node> nodes_;
  util::RobinHoodMap<ChildKey, NodeId, ChildKeyHash> children_;

  // Self-observability handles, resolved once (see docs/METRICS.md).
  obs::Counter* obs_appends_;
  obs::Counter* obs_prunings_;
  obs::Gauge* obs_nodes_;
};

// The tree shared by the event library, the SEDA middleware, and the
// profiler. Normally one process-wide instance (single-threaded
// simulator); a shard isolate (sim::ShardEnv::Scope) installs a
// private arena for the calling thread so concurrent shard
// simulations intern into disjoint trees.
ContextTree& GlobalContextTree();
// The process-wide default tree, regardless of any installed scope.
ContextTree& ProcessContextTree();

// Installs `tree` as the calling thread's GlobalContextTree() for the
// lifetime of the scope; restores the previous target on destruction.
class ScopedContextTree {
 public:
  explicit ScopedContextTree(ContextTree& tree);
  ~ScopedContextTree();
  ScopedContextTree(const ScopedContextTree&) = delete;
  ScopedContextTree& operator=(const ScopedContextTree&) = delete;

 private:
  ContextTree* prev_;
};

}  // namespace whodunit::context

#endif  // SRC_CONTEXT_CONTEXT_TREE_H_
