// Transaction-context synopses (paper §7.4).
//
// Shipping a whole transaction context with every message would be
// expensive, so Whodunit sends a *synopsis*: each stage keeps a
// dictionary of the contexts it has seen and represents each with a
// 4-byte id. A response's synopsis is the caller's synopsis, the '#'
// delimiter, then the callee's own part — `synopsis(α)#synopsis(β)` —
// which lets the caller recognize its own synopsis as a prefix and
// conclude the message is a reply rather than a new request.
#ifndef SRC_CONTEXT_SYNOPSIS_H_
#define SRC_CONTEXT_SYNOPSIS_H_

#include <cstdint>
#include <string>
#include <vector>

#include "src/context/context_tree.h"
#include "src/context/transaction_context.h"
#include "src/obs/metrics.h"
#include "src/util/robin_hood.h"

namespace whodunit::context {

// A synopsis: one or more 4-byte context ids joined by '#'.
struct Synopsis {
  std::vector<uint32_t> parts;

  friend bool operator==(const Synopsis&, const Synopsis&) = default;

  bool empty() const { return parts.empty(); }

  // True when `p` is a prefix of this synopsis (the reply-recognition
  // test of §5).
  bool HasPrefix(const Synopsis& p) const;

  // Appends the other synopsis after a '#'.
  Synopsis Extend(const Synopsis& tail) const;

  // Bytes this synopsis occupies on the wire: 4 bytes per part plus
  // one '#' delimiter between parts. This is what the communication
  // overhead measurement (§9.1) charges.
  size_t WireBytes() const;

  // "12#7" — for reports and debugging.
  std::string ToString() const;

  uint64_t Hash() const;
};

struct SynopsisHash {
  size_t operator()(const Synopsis& s) const { return static_cast<size_t>(s.Hash()); }
};

// Per-stage dictionary: transaction context <-> 4-byte synopsis part.
// (The paper: "maintains transaction contexts and their synopses in a
// dictionary".) Contexts are stored as interned context-tree NodeIds,
// so interning at a send point is one O(1) integer-keyed probe rather
// than a full-sequence hash and copy.
class SynopsisDictionary {
 public:
  // Returns the synopsis part for the interned context, assigning the
  // next id if new. This is the send-point hot path.
  uint32_t Intern(NodeId ctxt);

  // Legacy value-API entry point: interns into the global context tree
  // first. Hash-consing guarantees the same element sequence maps to
  // the same part id either way.
  uint32_t Intern(const TransactionContext& ctxt) {
    return Intern(GlobalContextTree().Intern(ctxt));
  }

  // The context for a previously interned part id, as an interned
  // node (O(1)) or materialized into the legacy value form.
  NodeId LookupNode(uint32_t part) const { return contexts_.at(part); }
  TransactionContext Lookup(uint32_t part) const;

  bool Contains(uint32_t part) const { return part < contexts_.size(); }
  size_t size() const { return contexts_.size(); }

 private:
  util::RobinHoodMap<NodeId, uint32_t> ids_;
  std::vector<NodeId> contexts_;
  // Bound at construction so a dictionary built inside a shard isolate
  // reports into that shard's registry.
  obs::Counter* obs_hits_ = &obs::Registry().GetCounter("synopsis.dict_hits");
  obs::Counter* obs_inserts_ = &obs::Registry().GetCounter("synopsis.dict_inserts");
};

}  // namespace whodunit::context

#endif  // SRC_CONTEXT_SYNOPSIS_H_
