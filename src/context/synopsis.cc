#include "src/context/synopsis.h"

#include <sstream>

#include "src/obs/metrics.h"

namespace whodunit::context {

bool Synopsis::HasPrefix(const Synopsis& p) const {
  if (p.parts.size() > parts.size()) {
    return false;
  }
  for (size_t i = 0; i < p.parts.size(); ++i) {
    if (parts[i] != p.parts[i]) {
      return false;
    }
  }
  return true;
}

Synopsis Synopsis::Extend(const Synopsis& tail) const {
  Synopsis out = *this;
  out.parts.insert(out.parts.end(), tail.parts.begin(), tail.parts.end());
  return out;
}

size_t Synopsis::WireBytes() const {
  if (parts.empty()) {
    return 0;
  }
  return parts.size() * 4 + (parts.size() - 1);
}

std::string Synopsis::ToString() const {
  std::ostringstream out;
  bool first = true;
  for (uint32_t p : parts) {
    if (!first) {
      out << "#";
    }
    first = false;
    out << p;
  }
  return out.str();
}

uint64_t Synopsis::Hash() const {
  uint64_t h = 0xcbf29ce484222325ull;
  for (uint32_t p : parts) {
    for (int i = 0; i < 4; ++i) {
      h ^= (p >> (i * 8)) & 0xff;
      h *= 0x100000001b3ull;
    }
  }
  return h;
}

uint32_t SynopsisDictionary::Intern(NodeId ctxt) {
  if (const uint32_t* found = ids_.Find(ctxt)) {
    obs_hits_->Add();
    return *found;
  }
  obs_inserts_->Add();
  const auto id = static_cast<uint32_t>(contexts_.size());
  contexts_.push_back(ctxt);
  ids_.Upsert(ctxt, id);
  return id;
}

TransactionContext SynopsisDictionary::Lookup(uint32_t part) const {
  return GlobalContextTree().Materialize(contexts_.at(part));
}

}  // namespace whodunit::context
