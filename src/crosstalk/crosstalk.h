// Transaction crosstalk: interference between concurrent transactions
// via lock contention (paper §6).
//
// The recorder observes every lock acquisition (through the simulated
// locks' observer hook). Tags are transaction-type identifiers (the
// profiler's context ids). For each wait it records the waiting
// transaction, the transaction that was holding the lock when the wait
// began, and the wait's length; the report aggregates the mean wait per
// ordered (waiter, holder) pair and per waiting transaction type —
// Table 1's "mean crosstalk wait time" column.
#ifndef SRC_CROSSTALK_CROSSTALK_H_
#define SRC_CROSSTALK_CROSSTALK_H_

#include <cstdint>
#include <functional>
#include <map>
#include <string>
#include <vector>

#include "src/sim/lock.h"
#include "src/util/stats.h"

namespace whodunit::crosstalk {

class CrosstalkRecorder : public sim::LockObserver {
 public:
  void OnAcquired(const sim::SimMutex& lock, uint64_t waiter_tag, uint64_t blocking_tag,
                  sim::SimTime wait) override;
  void OnReleased(const sim::SimMutex& lock, uint64_t holder_tag) override;

  // Mean wait (ns) of `waiter` when blocked behind `holder`; 0 if the
  // pair never contended.
  double MeanPairWait(uint64_t waiter, uint64_t holder) const;
  // Mean wait (ns) over all of this waiter's *waiting* acquisitions.
  double MeanWait(uint64_t waiter) const;
  // Mean wait (ns) over ALL of this waiter's acquisitions, waiting or
  // not — Table 1's "mean crosstalk wait time" per transaction type.
  double MeanWaitAllAcquires(uint64_t waiter) const;
  uint64_t WaitCount(uint64_t waiter) const;
  uint64_t acquires_observed() const { return acquires_observed_; }

  // Every tag this recorder has observed (waiters and holders),
  // ascending. Shard merging uses this to build tag translations.
  std::vector<uint64_t> Tags() const;

  struct PairRow {
    uint64_t waiter;
    uint64_t holder;
    uint64_t count;
    double mean_wait_ns;
  };
  // All contended pairs, heaviest mean wait first.
  std::vector<PairRow> PairRows() const;

  struct LockRow {
    std::string lock_name;
    uint64_t count;          // contended acquires
    double mean_wait_ns;     // over contended acquires
    double total_wait_ns;
  };
  // Which locks the interference happens on, heaviest total first —
  // the `item` table lock in the paper's §8.4 analysis.
  std::vector<LockRow> LockRows() const;

  // Text table using `namer` for tags.
  std::string Render(const std::function<std::string(uint64_t)>& namer) const;

  // Streaming tap: invoked for every *contended* acquire with a known
  // holder, as (waiter_tag, holder_tag, wait_ns). The live aggregation
  // daemon subscribes through this without the recorder depending on
  // it. Per-instance state, so concurrent per-shard recorders never
  // share a sink.
  using WaitSink = std::function<void(uint64_t, uint64_t, uint64_t)>;
  void set_wait_sink(WaitSink sink) { wait_sink_ = std::move(sink); }

  // Folds another recorder (a shard's) into this one. `tag_remap`
  // translates the other recorder's tags — per-shard profiler context
  // ids — into this side's tag space; tags without a mapping keep
  // their value. Merging RunningStats is exact (count/sum/sum-of-
  // squares add), so folding shards in canonical order reproduces the
  // matrix a serial run over the combined job list would have built.
  void MergeFrom(const CrosstalkRecorder& other,
                 const std::function<uint64_t(uint64_t)>& tag_remap = nullptr);

 private:
  std::map<std::pair<uint64_t, uint64_t>, util::RunningStat> pair_waits_;
  std::map<uint64_t, util::RunningStat> waiter_waits_;
  std::map<uint64_t, util::RunningStat> all_acquires_;
  std::map<std::string, util::RunningStat> lock_waits_;
  uint64_t acquires_observed_ = 0;
  WaitSink wait_sink_;
};

}  // namespace whodunit::crosstalk

#endif  // SRC_CROSSTALK_CROSSTALK_H_
