#include "src/crosstalk/crosstalk.h"

#include <algorithm>
#include <sstream>

namespace whodunit::crosstalk {

void CrosstalkRecorder::OnAcquired(const sim::SimMutex& lock, uint64_t waiter_tag,
                                   uint64_t blocking_tag, sim::SimTime wait) {
  ++acquires_observed_;
  all_acquires_[waiter_tag].Add(static_cast<double>(wait));
  if (wait <= 0) {
    return;  // uncontended acquire: no interference
  }
  waiter_waits_[waiter_tag].Add(static_cast<double>(wait));
  lock_waits_[lock.name()].Add(static_cast<double>(wait));
  if (blocking_tag != kNoTag) {
    pair_waits_[{waiter_tag, blocking_tag}].Add(static_cast<double>(wait));
    if (wait_sink_) {
      wait_sink_(waiter_tag, blocking_tag, static_cast<uint64_t>(wait));
    }
  }
}

void CrosstalkRecorder::OnReleased(const sim::SimMutex& /*lock*/, uint64_t /*holder_tag*/) {}

double CrosstalkRecorder::MeanPairWait(uint64_t waiter, uint64_t holder) const {
  auto it = pair_waits_.find({waiter, holder});
  return it == pair_waits_.end() ? 0.0 : it->second.mean();
}

double CrosstalkRecorder::MeanWait(uint64_t waiter) const {
  auto it = waiter_waits_.find(waiter);
  return it == waiter_waits_.end() ? 0.0 : it->second.mean();
}

double CrosstalkRecorder::MeanWaitAllAcquires(uint64_t waiter) const {
  auto it = all_acquires_.find(waiter);
  return it == all_acquires_.end() ? 0.0 : it->second.mean();
}

uint64_t CrosstalkRecorder::WaitCount(uint64_t waiter) const {
  auto it = waiter_waits_.find(waiter);
  return it == waiter_waits_.end() ? 0 : it->second.count();
}

std::vector<CrosstalkRecorder::PairRow> CrosstalkRecorder::PairRows() const {
  std::vector<PairRow> rows;
  rows.reserve(pair_waits_.size());
  for (const auto& [key, stat] : pair_waits_) {
    rows.push_back(PairRow{key.first, key.second, stat.count(), stat.mean()});
  }
  std::sort(rows.begin(), rows.end(),
            [](const PairRow& a, const PairRow& b) { return a.mean_wait_ns > b.mean_wait_ns; });
  return rows;
}

std::vector<CrosstalkRecorder::LockRow> CrosstalkRecorder::LockRows() const {
  std::vector<LockRow> rows;
  rows.reserve(lock_waits_.size());
  for (const auto& [name, stat] : lock_waits_) {
    rows.push_back(LockRow{name, stat.count(), stat.mean(), stat.sum()});
  }
  std::sort(rows.begin(), rows.end(), [](const LockRow& a, const LockRow& b) {
    return a.total_wait_ns > b.total_wait_ns;
  });
  return rows;
}

std::string CrosstalkRecorder::Render(
    const std::function<std::string(uint64_t)>& namer) const {
  std::ostringstream out;
  out << "crosstalk (waiter <- holder): mean wait [count]\n";
  for (const PairRow& row : PairRows()) {
    out << "  " << namer(row.waiter) << " <- " << namer(row.holder) << ": "
        << row.mean_wait_ns / 1e6 << " ms [" << row.count << "]\n";
  }
  out << "by lock: total wait (mean) [contended acquires]\n";
  for (const LockRow& row : LockRows()) {
    out << "  " << row.lock_name << ": " << row.total_wait_ns / 1e6 << " ms ("
        << row.mean_wait_ns / 1e6 << " ms) [" << row.count << "]\n";
  }
  return out.str();
}

}  // namespace whodunit::crosstalk
