#include "src/crosstalk/crosstalk.h"

#include <algorithm>
#include <sstream>

namespace whodunit::crosstalk {

void CrosstalkRecorder::OnAcquired(const sim::SimMutex& lock, uint64_t waiter_tag,
                                   uint64_t blocking_tag, sim::SimTime wait) {
  ++acquires_observed_;
  all_acquires_[waiter_tag].Add(static_cast<double>(wait));
  if (wait <= 0) {
    return;  // uncontended acquire: no interference
  }
  waiter_waits_[waiter_tag].Add(static_cast<double>(wait));
  lock_waits_[lock.name()].Add(static_cast<double>(wait));
  if (blocking_tag != kNoTag) {
    pair_waits_[{waiter_tag, blocking_tag}].Add(static_cast<double>(wait));
    if (wait_sink_) {
      wait_sink_(waiter_tag, blocking_tag, static_cast<uint64_t>(wait));
    }
  }
}

void CrosstalkRecorder::OnReleased(const sim::SimMutex& /*lock*/, uint64_t /*holder_tag*/) {}

void CrosstalkRecorder::MergeFrom(const CrosstalkRecorder& other,
                                  const std::function<uint64_t(uint64_t)>& tag_remap) {
  const auto map_tag = [&](uint64_t tag) { return tag_remap ? tag_remap(tag) : tag; };
  for (const auto& [key, stat] : other.pair_waits_) {
    pair_waits_[{map_tag(key.first), map_tag(key.second)}].Merge(stat);
  }
  for (const auto& [tag, stat] : other.waiter_waits_) {
    waiter_waits_[map_tag(tag)].Merge(stat);
  }
  for (const auto& [tag, stat] : other.all_acquires_) {
    all_acquires_[map_tag(tag)].Merge(stat);
  }
  for (const auto& [name, stat] : other.lock_waits_) {
    lock_waits_[name].Merge(stat);
  }
  acquires_observed_ += other.acquires_observed_;
}

std::vector<uint64_t> CrosstalkRecorder::Tags() const {
  std::map<uint64_t, bool> seen;
  for (const auto& [key, stat] : pair_waits_) {
    seen[key.first] = true;
    seen[key.second] = true;
  }
  for (const auto& [tag, stat] : waiter_waits_) {
    seen[tag] = true;
  }
  for (const auto& [tag, stat] : all_acquires_) {
    seen[tag] = true;
  }
  std::vector<uint64_t> tags;
  tags.reserve(seen.size());
  for (const auto& [tag, unused] : seen) {
    tags.push_back(tag);
  }
  return tags;
}

double CrosstalkRecorder::MeanPairWait(uint64_t waiter, uint64_t holder) const {
  auto it = pair_waits_.find({waiter, holder});
  return it == pair_waits_.end() ? 0.0 : it->second.mean();
}

double CrosstalkRecorder::MeanWait(uint64_t waiter) const {
  auto it = waiter_waits_.find(waiter);
  return it == waiter_waits_.end() ? 0.0 : it->second.mean();
}

double CrosstalkRecorder::MeanWaitAllAcquires(uint64_t waiter) const {
  auto it = all_acquires_.find(waiter);
  return it == all_acquires_.end() ? 0.0 : it->second.mean();
}

uint64_t CrosstalkRecorder::WaitCount(uint64_t waiter) const {
  auto it = waiter_waits_.find(waiter);
  return it == waiter_waits_.end() ? 0 : it->second.count();
}

std::vector<CrosstalkRecorder::PairRow> CrosstalkRecorder::PairRows() const {
  std::vector<PairRow> rows;
  rows.reserve(pair_waits_.size());
  for (const auto& [key, stat] : pair_waits_) {
    rows.push_back(PairRow{key.first, key.second, stat.count(), stat.mean()});
  }
  std::sort(rows.begin(), rows.end(),
            [](const PairRow& a, const PairRow& b) { return a.mean_wait_ns > b.mean_wait_ns; });
  return rows;
}

std::vector<CrosstalkRecorder::LockRow> CrosstalkRecorder::LockRows() const {
  std::vector<LockRow> rows;
  rows.reserve(lock_waits_.size());
  for (const auto& [name, stat] : lock_waits_) {
    rows.push_back(LockRow{name, stat.count(), stat.mean(), stat.sum()});
  }
  std::sort(rows.begin(), rows.end(), [](const LockRow& a, const LockRow& b) {
    return a.total_wait_ns > b.total_wait_ns;
  });
  return rows;
}

std::string CrosstalkRecorder::Render(
    const std::function<std::string(uint64_t)>& namer) const {
  std::ostringstream out;
  out << "crosstalk (waiter <- holder): mean wait [count]\n";
  for (const PairRow& row : PairRows()) {
    out << "  " << namer(row.waiter) << " <- " << namer(row.holder) << ": "
        << row.mean_wait_ns / 1e6 << " ms [" << row.count << "]\n";
  }
  out << "by lock: total wait (mean) [contended acquires]\n";
  for (const LockRow& row : LockRows()) {
    out << "  " << row.lock_name << ": " << row.total_wait_ns / 1e6 << " ms ("
        << row.mean_wait_ns / 1e6 << " ms) [" << row.count << "]\n";
  }
  return out.str();
}

}  // namespace whodunit::crosstalk
