// Canonical guest programs exercising the flow-detection algorithm.
//
// These are MiniVM renderings of the shared-memory access patterns the
// paper discusses:
//   * ApQueuePush / ApQueuePop  — Apache 2.x's fd_queue critical
//     sections (Figure 1): the true producer-consumer pattern.
//   * CounterIncrement          — the shared counter of Figure 2:
//     shared state, but no transaction flow.
//   * MemAlloc / MemFree        — the memory allocator of Figure 3:
//     isomorphic to producer-consumer, demoted via role lists.
//   * ListEnqueue / ListDequeue — a sys/queue.h-style linked queue
//     with NULL sanity checks (§3.3.2), including the empty-queue
//     NULL-propagation case.
//   * TableRead / TableWrite    — a MySQL-like pattern: server threads
//     both inspect and update rows under one lock (§3.4, §8.1).
//
// Register conventions are documented per program. All programs begin
// with a Lock marker and end with Halt; consumers include their
// post-critical-section "use" instructions so the consume window sees
// them.
#ifndef SRC_SHM_GUEST_CODE_H_
#define SRC_SHM_GUEST_CODE_H_

#include <cstdint>

#include "src/vm/isa.h"
#include "src/vm/loc.h"

namespace whodunit::shm {

// ---- Apache fd_queue (Figure 1) -------------------------------------
// Memory layout at base Q (register r0):
//   [Q+0]        nelts
//   [Q+8+16*i]   data[i].sd
//   [Q+16+16*i]  data[i].p
inline constexpr int64_t kApQueueDataOffset = 8;
inline constexpr int64_t kApQueueElemSize = 16;

// ap_queue_push: r0 = queue base, r1 = sd, r2 = p.
vm::Program ApQueuePush(uint64_t lock_id);

// ap_queue_pop: r0 = queue base, r5 = &out_sd, r6 = &out_p.
// After the critical section the caller uses *out_sd and *out_p
// (loaded into r7/r8), which is where consumption is detected.
vm::Program ApQueuePop(uint64_t lock_id);

// ---- Shared counter (Figure 2) --------------------------------------
// count++: r0 = &count.
vm::Program CounterIncrement(uint64_t lock_id);

// ---- Memory allocator (Figure 3) ------------------------------------
// Free list head at [r0+0]; a block's word 0 is its next pointer.
// mem_free: r0 = &head, r1 = block being freed.
vm::Program MemFree(uint64_t lock_id);
// mem_alloc: r0 = &head; returns block in r1 (0 if empty); the
// post-critical-section use of r1 is included.
vm::Program MemAlloc(uint64_t lock_id);

// ---- Linked queue with NULL sanity checks (§3.3.2) -------------------
// Queue at base Q (r0): [Q+0]=head, [Q+8]=tail.
// Element at e: [e+0]=next, [e+8]=payload.
// enqueue: r0 = queue, r1 = element, r2 = payload value.
vm::Program ListEnqueue(uint64_t lock_id);
// dequeue: r0 = queue; element in r1 (0 if empty), payload in r2;
// post-critical-section uses of r1/r2 included.
vm::Program ListDequeue(uint64_t lock_id);

// ---- sys/queue.h TAILQ-style doubly-linked queue (§3.3.2) ------------
// The paper: "We have verified the correctness of our algorithm on
// test programs involving producers and consumers using the different
// data structures implemented by sys/queue.h."
// Queue at base Q (r0): [Q+0]=head, [Q+8]=tail.
// Element e: [e+0]=next, [e+8]=prev, [e+16]=payload.
// insert at tail: r0 = queue, r1 = element, r2 = payload.
vm::Program TailqInsertTail(uint64_t lock_id);
// insert at head: r0 = queue, r1 = element, r2 = payload.
vm::Program TailqInsertHead(uint64_t lock_id);
// remove from head: r0 = queue; element in r1, payload in r2;
// post-critical-section uses included.
vm::Program TailqRemoveHead(uint64_t lock_id);

// ---- Fixed-capacity ring buffer ---------------------------------------
// Ring at base Q (r0): [Q+0]=head index, [Q+8]=tail index,
// slots at [Q+16 + 8*(i % kRingCapacity)].
inline constexpr int64_t kRingCapacity = 8;
// enqueue: r0 = ring, r1 = value (assumes not full).
vm::Program RingEnqueue(uint64_t lock_id);
// dequeue: r0 = ring; value in r1 (assumes not empty);
// post-critical-section use included.
vm::Program RingDequeue(uint64_t lock_id);

// ---- Binary-heap priority queue (§3.2, element moves) -----------------
// The paper: "producers and consumers may also move elements in the
// queue to maintain the priority queue properties. Our algorithm
// automatically detects that." A 2-level sift: the dequeue moves the
// last element to the root and sifts it down one level — elements
// change addresses, and their transaction contexts must follow.
// Heap at base Q (r0): [Q+0]=count, slots of (key, payload) pairs at
// [Q+8 + 16*i]: key at +0, payload at +8.
// insert: r0 = heap, r1 = key, r2 = payload (appends then sifts up one
// level if smaller than the root).
vm::Program HeapInsert(uint64_t lock_id);
// extract-min: r0 = heap; key in r1, payload in r2; moves the last
// element to the root; post-critical-section uses included.
vm::Program HeapExtractMin(uint64_t lock_id);

// ---- MySQL-like table access (§3.4, §8.1) ----------------------------
// Table rows at [r0 + 8*i].
// Reads row r1 into r3 and uses it after the critical section.
vm::Program TableRead(uint64_t lock_id);
// Writes the pre-computed value r2 into row r1.
vm::Program TableWrite(uint64_t lock_id);

}  // namespace whodunit::shm

#endif  // SRC_SHM_GUEST_CODE_H_
