#include "src/shm/guest_code.h"

#include "src/vm/program_builder.h"

namespace whodunit::shm {

vm::Program ApQueuePush(uint64_t lock_id) {
  vm::ProgramBuilder b("ap_queue_push");
  b.Lock(lock_id)
      .MovRM(3, 0, 0)   // r3 = queue->nelts
      .MovRR(4, 3)      // r4 = nelts
      .MulRI(4, kApQueueElemSize)
      .AddRR(4, 0)      // r4 = Q + nelts*16
      .AddRI(4, kApQueueDataOffset)
      .MovMR(4, 0, 1)   // elem->sd = sd   (production)
      .MovMR(4, 8, 2)   // elem->p  = p    (production)
      .IncM(0, 0)       // queue->nelts++  (non-MOV -> invlctxt)
      .Unlock(lock_id)
      .Halt();
  return b.Build();
}

vm::Program ApQueuePop(uint64_t lock_id) {
  vm::ProgramBuilder b("ap_queue_pop");
  b.Lock(lock_id)
      .MovRM(3, 0, 0)   // r3 = nelts
      .SubRI(3, 1)      // --nelts (arith -> r3 invalid)
      .MovMR(0, 0, 3)   // store nelts back (invalid propagates)
      .MovRR(4, 3)
      .MulRI(4, kApQueueElemSize)
      .AddRR(4, 0)
      .AddRI(4, kApQueueDataOffset)
      .MovRM(1, 4, 0)   // r1 = elem->sd (inherits producer context)
      .MovRM(2, 4, 8)   // r2 = elem->p
      .MovMR(5, 0, 1)   // *out_sd = sd
      .MovMR(6, 0, 2)   // *out_p  = p
      .Unlock(lock_id)
      // Caller uses the values after ap_queue_pop returns:
      .MovRM(7, 5, 0)   // use *out_sd -> consumption detected here
      .MovRM(8, 6, 0)   // use *out_p
      .Halt();
  return b.Build();
}

vm::Program CounterIncrement(uint64_t lock_id) {
  vm::ProgramBuilder b("counter_increment");
  b.Lock(lock_id)
      .IncM(0, 0)  // count++ (non-MOV: location gets invlctxt)
      .Unlock(lock_id)
      .Halt();
  return b.Build();
}

vm::Program MemFree(uint64_t lock_id) {
  vm::ProgramBuilder b("mem_free");
  b.Lock(lock_id)
      .MovRM(3, 0, 0)   // r3 = head
      .MovMR(1, 0, 3)   // blk->next = head
      .MovMR(0, 0, 1)   // head = blk (production: blk ptr computed pre-CS)
      .Unlock(lock_id)
      .Halt();
  return b.Build();
}

vm::Program MemAlloc(uint64_t lock_id) {
  vm::ProgramBuilder b("mem_alloc");
  const int done = b.DefineLabel();
  b.Lock(lock_id)
      .MovRM(1, 0, 0)  // r1 = head (inherits freeing thread's context)
      .CmpRI(1, 0)
      .Je(done)
      .MovRM(3, 1, 0)  // r3 = blk->next
      .MovMR(0, 0, 3)  // head = blk->next
      .Bind(done)
      .Unlock(lock_id)
      // Caller immediately uses the returned pointer:
      .CmpRI(1, 0)     // consumption of r1 detected here
      .Halt();
  return b.Build();
}

vm::Program ListEnqueue(uint64_t lock_id) {
  vm::ProgramBuilder b("list_enqueue");
  const int nonempty = b.DefineLabel();
  const int done = b.DefineLabel();
  b.Lock(lock_id)
      .MovMI(1, 0, 0)   // elem->next = NULL (immediate -> invlctxt)
      .MovMR(1, 8, 2)   // elem->payload = value (production)
      .CmpMI(0, 0, 0)   // head == NULL ?
      .Jne(nonempty)
      .MovMR(0, 0, 1)   // head = elem (production of the pointer)
      .MovMR(0, 8, 1)   // tail = elem
      .Jmp(done)
      .Bind(nonempty)
      .MovRM(3, 0, 8)   // r3 = tail
      .MovMR(3, 0, 1)   // tail->next = elem (production)
      .MovMR(0, 8, 1)   // tail = elem
      .Bind(done)
      .Unlock(lock_id)
      .Halt();
  return b.Build();
}

vm::Program ListDequeue(uint64_t lock_id) {
  vm::ProgramBuilder b("list_dequeue");
  const int empty = b.DefineLabel();
  const int out = b.DefineLabel();
  const int no_use = b.DefineLabel();
  b.Lock(lock_id)
      .MovRM(1, 0, 0)  // r1 = head (producer ctxt; or invalid if the
                       // NULL that emptied the queue propagated here)
      .CmpRI(1, 0)
      .Je(empty)
      .MovRM(3, 1, 0)  // r3 = elem->next
      .MovMR(0, 0, 3)  // head = elem->next (may propagate NULL's invl)
      .MovRM(2, 1, 8)  // r2 = elem->payload
      .Jmp(out)
      .Bind(empty)
      .MovRI(2, 0)
      .Bind(out)
      .Unlock(lock_id)
      // Caller checks and uses the dequeued element:
      .CmpRI(1, 0)     // use of elem pointer (consume if context valid)
      .Je(no_use)
      .CmpRI(2, 0)     // use of payload
      .Bind(no_use)
      .Halt();
  return b.Build();
}

vm::Program TailqInsertTail(uint64_t lock_id) {
  vm::ProgramBuilder b("tailq_insert_tail");
  const int was_empty = b.DefineLabel();
  const int set_tail = b.DefineLabel();
  b.Lock(lock_id)
      .MovMI(1, 0, 0)    // e->next = NULL (invlctxt)
      .MovRM(3, 0, 8)    // r3 = tail
      .MovMR(1, 8, 3)    // e->prev = tail
      .MovMR(1, 16, 2)   // e->payload = value (production)
      .CmpMI(0, 0, 0)    // head == NULL?
      .Je(was_empty)
      .MovRM(4, 0, 8)    // r4 = tail
      .MovMR(4, 0, 1)    // tail->next = e (production of the pointer)
      .Jmp(set_tail)
      .Bind(was_empty)
      .MovMR(0, 0, 1)    // head = e
      .Bind(set_tail)
      .MovMR(0, 8, 1)    // tail = e
      .Unlock(lock_id)
      .Halt();
  return b.Build();
}

vm::Program TailqInsertHead(uint64_t lock_id) {
  vm::ProgramBuilder b("tailq_insert_head");
  const int had_head = b.DefineLabel();
  const int set_head = b.DefineLabel();
  b.Lock(lock_id)
      .MovMI(1, 8, 0)    // e->prev = NULL
      .MovRM(3, 0, 0)    // r3 = old head
      .MovMR(1, 0, 3)    // e->next = old head
      .MovMR(1, 16, 2)   // e->payload = value (production)
      .CmpRI(3, 0)
      .Jne(had_head)
      .MovMR(0, 8, 1)    // tail = e (queue was empty)
      .Jmp(set_head)
      .Bind(had_head)
      .MovMR(3, 8, 1)    // old_head->prev = e
      .Bind(set_head)
      .MovMR(0, 0, 1)    // head = e
      .Unlock(lock_id)
      .Halt();
  return b.Build();
}

vm::Program TailqRemoveHead(uint64_t lock_id) {
  vm::ProgramBuilder b("tailq_remove_head");
  const int empty = b.DefineLabel();
  const int fix_prev = b.DefineLabel();
  const int load = b.DefineLabel();
  const int out = b.DefineLabel();
  const int done = b.DefineLabel();
  b.Lock(lock_id)
      .MovRM(1, 0, 0)    // r1 = head (carries its producer's context)
      .CmpRI(1, 0)
      .Je(empty)
      .MovRM(3, 1, 0)    // r3 = head->next
      .MovMR(0, 0, 3)    // head = next
      .CmpRI(3, 0)
      .Jne(fix_prev)
      .MovMI(0, 8, 0)    // queue now empty: tail = NULL (invlctxt)
      .Jmp(load)
      .Bind(fix_prev)
      .MovMI(3, 8, 0)    // next->prev = NULL (sanity store, invlctxt)
      .Bind(load)
      .MovRM(2, 1, 16)   // r2 = payload
      .Jmp(out)
      .Bind(empty)
      .MovRI(2, 0)
      .Bind(out)
      .Unlock(lock_id)
      .CmpRI(1, 0)       // caller checks/uses the element pointer
      .Je(done)
      .CmpRI(2, 0)       // and the payload
      .Bind(done)
      .Halt();
  return b.Build();
}

vm::Program RingEnqueue(uint64_t lock_id) {
  vm::ProgramBuilder b("ring_enqueue");
  const int store = b.DefineLabel();
  b.Lock(lock_id)
      .MovRM(3, 0, 8)    // r3 = tail index
      .MovRR(4, 3)
      .MulRI(4, 8)
      .AddRR(4, 0)
      .AddRI(4, 16)      // r4 = &slot[tail]
      .MovMR(4, 0, 1)    // slot = value (production)
      .AddRI(3, 1)       // advance (arith -> invl)
      .CmpRI(3, kRingCapacity)
      .Jl(store)
      .MovRI(3, 0)       // wrap
      .Bind(store)
      .MovMR(0, 8, 3)    // tail = new index
      .Unlock(lock_id)
      .Halt();
  return b.Build();
}

vm::Program RingDequeue(uint64_t lock_id) {
  vm::ProgramBuilder b("ring_dequeue");
  const int store = b.DefineLabel();
  b.Lock(lock_id)
      .MovRM(3, 0, 0)    // r3 = head index
      .MovRR(4, 3)
      .MulRI(4, 8)
      .AddRR(4, 0)
      .AddRI(4, 16)
      .MovRM(1, 4, 0)    // r1 = slot value (inherits producer context)
      .AddRI(3, 1)
      .CmpRI(3, kRingCapacity)
      .Jl(store)
      .MovRI(3, 0)
      .Bind(store)
      .MovMR(0, 0, 3)    // head = new index
      .Unlock(lock_id)
      .CmpRI(1, 0)       // use the value
      .Halt();
  return b.Build();
}

vm::Program HeapInsert(uint64_t lock_id) {
  vm::ProgramBuilder b("heap_insert");
  const int done = b.DefineLabel();
  b.Lock(lock_id)
      .MovRM(3, 0, 0)    // r3 = count
      .MovRR(4, 3)
      .MulRI(4, 16)
      .AddRR(4, 0)
      .AddRI(4, 8)       // r4 = &slot[count]
      .MovMR(4, 0, 1)    // slot.key = key (production)
      .MovMR(4, 8, 2)    // slot.payload = payload (production)
      .IncM(0, 0)        // count++
      .CmpRI(3, 0)       // first element? nothing to sift
      .Je(done)
      .MovRM(5, 0, 8)    // r5 = root.key
      .CmpRR(1, 5)       // new key < root key?
      .Jge(done)
      // One-level sift-up: swap the new element with the root. The
      // elements MOVE between addresses; their transaction contexts
      // must move with them (§3.2).
      .MovRM(6, 0, 8)    // r6 = root.key      (context follows)
      .MovRM(7, 0, 16)   // r7 = root.payload
      .MovMM(0, 8, 4, 0)   // root.key = new.key
      .MovMM(0, 16, 4, 8)  // root.payload = new.payload
      .MovMR(4, 0, 6)    // slot.key = old root key
      .MovMR(4, 8, 7)    // slot.payload = old root payload
      .Bind(done)
      .Unlock(lock_id)
      .Halt();
  return b.Build();
}

vm::Program HeapExtractMin(uint64_t lock_id) {
  vm::ProgramBuilder b("heap_extract_min");
  const int out = b.DefineLabel();
  b.Lock(lock_id)
      .MovRM(1, 0, 8)    // r1 = root.key (min)
      .MovRM(2, 0, 16)   // r2 = root.payload
      .MovRM(3, 0, 0)    // r3 = count
      .SubRI(3, 1)
      .MovMR(0, 0, 3)    // count--
      .CmpRI(3, 0)
      .Je(out)
      .MovRR(4, 3)
      .MulRI(4, 16)
      .AddRR(4, 0)
      .AddRI(4, 8)       // r4 = &slot[last]
      .MovMM(0, 8, 4, 0)   // root = last element (element move)
      .MovMM(0, 16, 4, 8)
      .Bind(out)
      .Unlock(lock_id)
      .CmpRI(1, 0)       // caller uses key and payload
      .CmpRI(2, 0)
      .Halt();
  return b.Build();
}

vm::Program TableRead(uint64_t lock_id) {
  vm::ProgramBuilder b("table_read");
  b.Lock(lock_id)
      .MovRR(4, 1)
      .MulRI(4, 8)
      .AddRR(4, 0)     // r4 = &row
      .MovRM(3, 4, 0)  // r3 = row value
      .Unlock(lock_id)
      .CmpRI(3, 0)     // query code inspects the value it read
      .Halt();
  return b.Build();
}

vm::Program TableWrite(uint64_t lock_id) {
  vm::ProgramBuilder b("table_write");
  b.Lock(lock_id)
      .MovRR(4, 1)
      .MulRI(4, 8)
      .AddRR(4, 0)     // r4 = &row
      .MovMR(4, 0, 2)  // row = r2 (computed before the critical section)
      .Unlock(lock_id)
      .Halt();
  return b.Build();
}

}  // namespace whodunit::shm
