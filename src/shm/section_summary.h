// Flow-summary cache data model (paper §3 + §7.2 memoization).
//
// A critical section's effect on the flow dictionary is a pure
// function of (the hook stream, the dictionary's pre-state, the
// thread's current transaction context, the per-lock role lists). The
// hook stream itself is pinned by the architectural fingerprint
// (vm::ArchEffects validates every value that fed addressing, compares
// or arithmetic, plus the initial flags), so a SectionSummary only has
// to fingerprint the *dictionary* pre-state the cold run observed and
// store the effects with their context/producer kept symbolic:
//
//   * a propagated context is "whatever input entry j holds at replay"
//     (kInput), not the concrete CtxtId of the cold run;
//   * an associated context is "the thread's current context at
//     replay" (kCurrent);
//   * only invlctxt poisonings are concrete.
//
// This is what lets a queue push recorded under transaction A replay
// under transaction B: the dictionary *shape* (entry present? valid?
// produced by self? under which lock?) repeats even though the context
// values never do. Role bookkeeping that must stay exact under
// symbolic resolution — consume-window dedup, demotion checks, flow
// emission — is re-executed live from a compact op log rather than
// baked into the summary.
//
// Contexts here are context-tree node ids: the profiler layer hands
// the detector interned context::NodeId values, and summaries store
// them verbatim (kInput/kCurrent provenance aside).
#ifndef SRC_SHM_SECTION_SUMMARY_H_
#define SRC_SHM_SECTION_SUMMARY_H_

#include <cstdint>
#include <type_traits>
#include <utility>
#include <vector>

#include "src/context/context_tree.h"
#include "src/vm/interpreter.h"
#include "src/vm/loc.h"

namespace whodunit::shm {

// Opaque transaction-context handle supplied by the profiler layer —
// an interned context-tree node id (synopsis part id in the full
// system).
using CtxtId = uint32_t;
inline constexpr CtxtId kInvalidCtxt = 0xffffffffu;  // invlctxt

static_assert(std::is_same_v<CtxtId, context::NodeId>,
              "section summaries store interned context-tree node ids");
static_assert(kInvalidCtxt != context::kEmptyContext,
              "invlctxt must not collide with the empty context");

// Provenance of a context value stored/emitted by a summary replay.
struct CtxtProv {
  enum class Kind : uint8_t {
    kConcrete,  // value recorded on the cold run (invlctxt poisonings)
    kCurrent,   // the thread's current context, resolved at replay
    kInput,     // context of dictionary input `input` at replay
  };
  Kind kind = Kind::kConcrete;
  CtxtId value = kInvalidCtxt;
  int32_t input = -1;
};

// Provenance of a producer thread id, same idea.
struct ProducerProv {
  enum class Kind : uint8_t { kConcrete, kInput };
  Kind kind = Kind::kConcrete;
  vm::ThreadId value = 0;
  int32_t input = -1;
};

// One dictionary location whose pre-state the cold run branched on.
// The fingerprint pins the branch-relevant *shape*, never the context
// value itself.
struct DictInput {
  enum class Role : uint8_t {
    kMovSrc,   // read as a MOV source inside the critical section
    kConsume,  // read in the post-critical-section consume window
  };
  enum class Shape : uint8_t {
    kAbsent,   // no dictionary entry
    kForeign,  // entry set under a different lock (kMovSrc only: flushed)
    kPresent,  // entry present (same lock for kMovSrc)
  };
  vm::Loc loc;
  Role role = Role::kMovSrc;
  Shape shape = Shape::kAbsent;
  bool invalid = false;        // entry.ctxt == invlctxt   (kPresent only)
  bool producer_self = false;  // entry.producer == thread (valid entries)
  // kMovSrc: the critical section's lock (kForeign means "any other").
  // kConsume: the entry's own lock (feeds RecordConsumer/IsDemoted);
  // don't-care for invalid entries, which never consume.
  uint64_t lock_id = 0;
};

// Ordered side effects whose outcome depends on live state (role
// lists, demotion, window dedup) and therefore re-executes at replay
// instead of being collapsed.
struct DictOp {
  enum class Kind : uint8_t {
    kLockReset,    // outermost lock entry: clear regs, close window
    kWindowStart,  // outermost unlock: open consume window
    kProduce,      // RecordProducer(lock_id, t) + demotion check
    kConsume,      // RecordConsumer + dedup + flow emission
  };
  Kind kind = Kind::kLockReset;
  uint64_t lock_id = 0;
  vm::Loc loc;                 // kConsume: location consumed from
  bool flow_eligible = false;  // kConsume: cold-run producer != thread
  CtxtProv ctxt;               // kConsume: flow context
  ProducerProv producer;       // kConsume: flow producer
};

// Final dictionary state of one location touched by the section,
// applied after the op log.
struct DictWrite {
  vm::Loc loc;
  bool erase = false;
  uint64_t lock_id = 0;
  CtxtProv ctxt;
  ProducerProv producer;
};

struct DictEffects {
  std::vector<DictInput> inputs;
  std::vector<DictOp> ops;
  std::vector<DictWrite> writes;
  // Detector configuration the recording assumed.
  int post_window_config = 0;
  // Pre-state pins beyond the per-location inputs. The consume window
  // inherited from the previous section only matters when the run
  // touched it before (or without) opening its own window.
  bool pin_pre_window = false;
  int pre_post_window = 0;
  bool pin_pre_window_flows = false;
  std::vector<std::pair<uint64_t, CtxtId>> pre_window_flows;
  int final_post_window = 0;
  // Current-context resolution: whether any effect uses kCurrent, and
  // whether the cold run's current context was invlctxt (the replay's
  // must be in the same validity class — consume branches depend on it).
  bool uses_current = false;
  bool current_was_invalid = false;
  // Deterministic counter deltas (exact given a fingerprint match,
  // except dst-side foreign flushes — see docs/METRICS.md).
  uint32_t n_propagations = 0;
  uint32_t n_associations = 0;
  uint32_t n_poisonings = 0;
  uint32_t n_flushes = 0;
  bool cacheable = true;
};

// Live scratch state the FlowDetector reports into during one recorded
// section run (FlowDetector::BeginSectionRecording installs it; the
// Note* methods are called from the hook bodies). Finish() collapses
// it into DictEffects.
class SectionRecording {
 public:
  // Caps touched-location tracking; larger sections are uncacheable.
  static constexpr size_t kMaxLocs = 256;

  void Begin(vm::ThreadId t, int pre_post_window,
             std::vector<std::pair<uint64_t, CtxtId>> pre_window_flows,
             int post_window_config) {
    t_ = t;
    // Field-wise reset rather than `fx_ = DictEffects{}` so a pooled
    // recording's vector capacities survive when the previous run never
    // reached Finish() (uncacheable aborts).
    fx_.inputs.clear();
    fx_.ops.clear();
    fx_.writes.clear();
    fx_.post_window_config = post_window_config;
    fx_.pin_pre_window = false;
    fx_.pre_post_window = pre_post_window;
    fx_.pin_pre_window_flows = false;
    fx_.pre_window_flows = std::move(pre_window_flows);
    fx_.final_post_window = 0;
    fx_.uses_current = false;
    fx_.current_was_invalid = false;
    fx_.n_propagations = 0;
    fx_.n_associations = 0;
    fx_.n_poisonings = 0;
    fx_.n_flushes = 0;
    fx_.cacheable = true;
    locs_.clear();
    saw_window_start_ = false;
    saw_lock_reset_ = false;
    window_sensitive_ = false;
    consumed_pre_reset_ = false;
    has_current_ = false;
    current_ = kInvalidCtxt;
    cacheable_ = true;
  }

  void NoteLockReset(uint64_t lock_id) {
    saw_lock_reset_ = true;
    fx_.ops.push_back(DictOp{DictOp::Kind::kLockReset, lock_id, {}, false, {}, {}});
    // The reset clears every register entry of the recorded thread;
    // tracked register locations become (deterministically) absent.
    for (LocState& ls : locs_) {
      if (!ls.loc.is_mem() && ls.loc.thread == t_) {
        ls.present = false;
      }
    }
  }

  void NoteWindowStart() {
    saw_window_start_ = true;
    fx_.ops.push_back(DictOp{DictOp::Kind::kWindowStart, 0, {}, false, {}, {}});
  }

  // Pre-state observation: MOV source inside a critical section. `e`
  // is the raw dictionary entry (may be null), *before* the foreign
  // flush. ectxt/elock/eproducer are e's fields when e != null.
  void NoteMovSrcAccess(const vm::Loc& src, bool present, CtxtId ectxt, uint64_t elock,
                        vm::ThreadId eproducer, uint64_t section_lock) {
    if (FindLoc(src) != nullptr || DeterministicReg(src)) {
      return;  // internal state or post-reset register: no pin needed
    }
    DictInput in;
    in.loc = src;
    in.role = DictInput::Role::kMovSrc;
    in.lock_id = section_lock;
    if (!present) {
      in.shape = DictInput::Shape::kAbsent;
    } else if (elock != section_lock) {
      in.shape = DictInput::Shape::kForeign;
    } else {
      in.shape = DictInput::Shape::kPresent;
      in.invalid = ectxt == kInvalidCtxt;
      // An invalid entry's producer never feeds flow eligibility;
      // leave it a don't-care so equivalent shapes fingerprint equal.
      in.producer_self = !in.invalid && eproducer == t_;
    }
    AddInputLoc(src, in, elock);
  }

  // Pre-state observation: read in consume position (outside any
  // critical section, window open).
  void NoteConsumeAccess(const vm::Loc& src, bool present, CtxtId ectxt, uint64_t elock,
                         vm::ThreadId eproducer) {
    if (FindLoc(src) != nullptr || DeterministicReg(src)) {
      return;
    }
    DictInput in;
    in.loc = src;
    in.role = DictInput::Role::kConsume;
    in.shape = present ? DictInput::Shape::kPresent : DictInput::Shape::kAbsent;
    if (present) {
      in.invalid = ectxt == kInvalidCtxt;
      // Invalid entries are never consumed: lock and producer are
      // don't-cares for the branch the cold run took.
      in.producer_self = !in.invalid && eproducer == t_;
      in.lock_id = in.invalid ? 0 : elock;
    }
    AddInputLoc(src, in, elock);
  }

  // Any read or retire delivered outside a critical section consults
  // the inherited consume window until this run opens its own.
  void NoteOutsideWindowUse() {
    if (!saw_window_start_) {
      window_sensitive_ = true;
    }
  }

  void NoteFlush(const vm::Loc& loc) {
    ++fx_.n_flushes;
    LocState* ls = FindLoc(loc);
    if (ls == nullptr) {
      ls = AddLoc(loc);  // dst-side flush: loc was never fingerprinted
      if (ls == nullptr) {
        return;
      }
    }
    ls->present = false;
    ls->mutated = true;
  }

  void NotePropagate(const vm::Loc& dst, const vm::Loc& src, uint64_t lock_id) {
    ++fx_.n_propagations;
    EntryProv p = LookupProv(src);
    p.lock = lock_id;
    SetLocProv(dst, p);
  }

  void NoteAssociate(const vm::Loc& dst, uint64_t lock_id, CtxtId current, bool produced) {
    ++fx_.n_associations;
    if (!has_current_) {
      has_current_ = true;
      current_ = current;
    } else if (current_ != current) {
      cacheable_ = false;  // context changed mid-section: don't summarize
    }
    EntryProv p;
    p.ctxt = CtxtProv{CtxtProv::Kind::kCurrent, current, -1};
    p.producer = ProducerProv{ProducerProv::Kind::kConcrete, t_, -1};
    p.lock = lock_id;
    SetLocProv(dst, p);
    if (produced) {
      fx_.ops.push_back(DictOp{DictOp::Kind::kProduce, lock_id, {}, false, {}, {}});
    }
  }

  void NotePoison(const vm::Loc& dst, uint64_t lock_id) {
    ++fx_.n_poisonings;
    EntryProv p;
    p.ctxt = CtxtProv{CtxtProv::Kind::kConcrete, kInvalidCtxt, -1};
    p.producer = ProducerProv{ProducerProv::Kind::kConcrete, t_, -1};
    p.lock = lock_id;
    SetLocProv(dst, p);
  }

  void NoteOutsideErase(const vm::Loc& dst) {
    LocState* ls = FindLoc(dst);
    if (ls == nullptr) {
      ls = AddLoc(dst);
      if (ls == nullptr) {
        return;
      }
    }
    ls->present = false;
    ls->mutated = true;
  }

  // A consumption is about to happen on `src` (entry fields passed
  // in); called before the detector erases the entry.
  void NoteConsume(const vm::Loc& src, uint64_t entry_lock, vm::ThreadId entry_producer) {
    if (!saw_window_start_) {
      consumed_pre_reset_ = true;
    }
    const EntryProv p = LookupProv(src);
    DictOp op;
    op.kind = DictOp::Kind::kConsume;
    op.lock_id = entry_lock;
    op.loc = src;
    op.flow_eligible = entry_producer != t_;
    op.ctxt = p.ctxt;
    op.producer = p.producer;
    fx_.ops.push_back(op);
    LocState* ls = FindLoc(src);
    if (ls != nullptr) {
      ls->present = false;
      ls->mutated = true;
    }
  }

  // Collapses the recording. `end_in_section` is true when the thread
  // still holds a lock (the summary would not reproduce that state).
  DictEffects Finish(int final_post_window, bool end_in_section) {
    fx_.final_post_window = final_post_window;
    fx_.pin_pre_window = window_sensitive_ || !saw_window_start_;
    fx_.pin_pre_window_flows = consumed_pre_reset_;
    if (!fx_.pin_pre_window_flows) {
      fx_.pre_window_flows.clear();
    }
    fx_.uses_current = has_current_;
    fx_.current_was_invalid = has_current_ && current_ == kInvalidCtxt;
    for (const LocState& ls : locs_) {
      if (!ls.mutated) {
        continue;
      }
      DictWrite w;
      w.loc = ls.loc;
      if (ls.present) {
        w.erase = false;
        w.lock_id = ls.prov.lock;
        w.ctxt = ls.prov.ctxt;
        w.producer = ls.prov.producer;
      } else {
        w.erase = true;
      }
      fx_.writes.push_back(w);
    }
    fx_.cacheable = cacheable_ && !end_in_section;
    return std::move(fx_);
  }

 private:
  struct EntryProv {
    CtxtProv ctxt;
    ProducerProv producer;
    uint64_t lock = 0;
  };
  struct LocState {
    vm::Loc loc;
    int32_t input = -1;  // DictInput index, if fingerprinted
    bool present = false;
    bool mutated = false;
    EntryProv prov;
  };

  LocState* FindLoc(const vm::Loc& l) {
    for (LocState& ls : locs_) {
      if (ls.loc == l) {
        return &ls;
      }
    }
    return nullptr;
  }

  LocState* AddLoc(const vm::Loc& l) {
    if (locs_.size() >= kMaxLocs) {
      cacheable_ = false;
      return nullptr;
    }
    locs_.push_back(LocState{l, -1, false, false, {}});
    return &locs_.back();
  }

  // A register of the recorded thread is deterministically absent once
  // the section's lock reset cleared the register file (unless it was
  // re-set since, in which case it is tracked in locs_).
  bool DeterministicReg(const vm::Loc& l) const {
    return saw_lock_reset_ && !l.is_mem() && l.thread == t_;
  }

  void AddInputLoc(const vm::Loc& l, const DictInput& in, uint64_t elock) {
    LocState* ls = AddLoc(l);
    if (ls == nullptr) {
      return;
    }
    if (fx_.inputs.size() >= kMaxLocs) {
      cacheable_ = false;
      return;
    }
    fx_.inputs.push_back(in);
    const auto idx = static_cast<int32_t>(fx_.inputs.size()) - 1;
    ls->input = idx;
    if (in.shape == DictInput::Shape::kPresent) {
      ls->present = true;
      ls->prov.ctxt = CtxtProv{CtxtProv::Kind::kInput, kInvalidCtxt, idx};
      ls->prov.producer = ProducerProv{ProducerProv::Kind::kInput, 0, idx};
      ls->prov.lock = elock;
    }
  }

  // Provenance of the entry currently held by `l` (which the detector
  // just found present).
  EntryProv LookupProv(const vm::Loc& l) {
    LocState* ls = FindLoc(l);
    if (ls != nullptr && ls->present) {
      return ls->prov;
    }
    // The detector found an entry the recording cannot explain (e.g.
    // tracking overflowed): refuse to summarize rather than guess.
    cacheable_ = false;
    return EntryProv{};
  }

  void SetLocProv(const vm::Loc& l, const EntryProv& p) {
    LocState* ls = FindLoc(l);
    if (ls == nullptr) {
      ls = AddLoc(l);
      if (ls == nullptr) {
        return;
      }
    }
    ls->present = true;
    ls->mutated = true;
    ls->prov = p;
  }

  vm::ThreadId t_ = 0;
  DictEffects fx_;
  std::vector<LocState> locs_;
  bool saw_window_start_ = false;
  bool saw_lock_reset_ = false;
  bool window_sensitive_ = false;
  bool consumed_pre_reset_ = false;
  bool has_current_ = false;
  CtxtId current_ = kInvalidCtxt;
  bool cacheable_ = true;
};

// One memoized execution of one critical-section program on one
// thread: replaying it = ApplyArch (registers/memory/flags) +
// FlowDetector::ApplySection (dictionary) + returning `base`.
struct SectionSummary {
  vm::ThreadId thread = 0;
  bool has_dict = false;  // recorded with a FlowDetector attached
  vm::ArchEffects arch;
  DictEffects dict;
  // Cold-run result with the one-time translation cost subtracted;
  // replays return it verbatim so simulated guest-cycle accounting is
  // bit-identical to re-emulation.
  vm::ExecResult base;
};

}  // namespace whodunit::shm

#endif  // SRC_SHM_SECTION_SUMMARY_H_
