// Shared-memory transaction-flow detection (paper §3).
//
// The algorithm watches the instructions executed inside lock-protected
// critical sections (delivered by the MiniVM interpreter) and maintains
// a dictionary mapping locations (memory words and per-thread
// registers) to transaction contexts:
//
//   * A MOV whose source has an associated context propagates that
//     context (valid or invalid) to the destination.
//   * A MOV whose source has *no* context associates the destination
//     with the executing thread's current transaction context; if the
//     destination is shared memory, the thread has *produced* a value.
//   * Any non-MOV write (immediate store, arithmetic) associates the
//     destination with invlctxt, the invalid context — this is what
//     keeps shared counters and NULL sanity-checks from creating
//     spurious flows (§3.4, §3.3.2).
//   * After the outermost lock is released, emulation continues for up
//     to kDefaultPostWindow instructions; a read of a location holding
//     a valid context in that window means the thread *consumed* the
//     value, establishing a transaction flow from producer to consumer.
//
// Per-lock producer/consumer role lists demote resources where a
// thread appears on both sides (the memory-allocator pattern, §3.4):
// once demoted, the lock's critical sections no longer constitute
// transaction flow and may run natively (ShouldEmulate returns false).
//
// A location's dictionary entry remembers which lock protected the
// critical section that last set it; touching the location under a
// different lock flushes the stale context (§3.2, "used for different
// purposes at different times").
//
// Storage is organized for the per-instruction hot path: the §3.2
// location namespace is split at its natural seam — shared-memory
// words live in a flat open-addressing table keyed by address, while
// each thread's registers are a fixed array plus a validity bitmask
// (clearing all registers on critical-section entry is one mask
// reset). Role lists are small bitsets, so the demotion check is a
// word AND. The class is `final` so the interpreter's templated
// execute loop can bind the hook calls statically.
#ifndef SRC_SHM_FLOW_DETECTOR_H_
#define SRC_SHM_FLOW_DETECTOR_H_

#include <algorithm>
#include <array>
#include <bit>
#include <cstdint>
#include <functional>
#include <vector>

#include "src/obs/metrics.h"
#include "src/shm/section_summary.h"
#include "src/util/robin_hood.h"
#include "src/vm/interpreter.h"
#include "src/vm/loc.h"

namespace whodunit::shm {

// CtxtId / kInvalidCtxt live in section_summary.h (the summary data
// model shares them) and are re-exported through this include.

struct FlowEvent {
  vm::ThreadId producer;
  vm::ThreadId consumer;
  CtxtId ctxt;       // producer's transaction context at produce time
  uint64_t lock_id;  // lock protecting the resource the flow crossed
  vm::Loc loc;       // location the value was consumed from

  friend bool operator==(const FlowEvent& a, const FlowEvent& b) {
    return a.producer == b.producer && a.consumer == b.consumer && a.ctxt == b.ctxt &&
           a.lock_id == b.lock_id && a.loc == b.loc;
  }
};

// A set of thread ids: one machine word for ids below 64 (the common
// case by a wide margin — the simulator numbers threads densely from
// zero) with a spill vector for larger ids.
// Thread-role membership set. One inline word covers ids < 64 (the
// paper's mysqld runs a few dozen threads); larger ids land in a
// word-granular bitmap, keeping insert/contains O(1) and Intersects
// O(words) even when an open-loop scaling run parks tens of thousands
// of simulated worker threads on one lock. The previous linear
// overflow list made every insert-then-intersect pair quadratic in
// participants — at 1M clients the role bookkeeping, not the
// simulation, dominated wall time.
class ThreadSet {
 public:
  // Returns true if the thread was newly added.
  bool insert(vm::ThreadId t) {
    if (t < 64) {
      const uint64_t bit = uint64_t{1} << t;
      if ((bits_ & bit) != 0) {
        return false;
      }
      bits_ |= bit;
      return true;
    }
    const size_t w = (static_cast<size_t>(t) - 64) >> 6;
    const uint64_t bit = uint64_t{1} << ((static_cast<size_t>(t) - 64) & 63);
    if (w >= words_.size()) {
      words_.resize(w + 1, 0);
    }
    if ((words_[w] & bit) != 0) {
      return false;
    }
    words_[w] |= bit;
    ++overflow_count_;
    return true;
  }

  bool contains(vm::ThreadId t) const {
    if (t < 64) {
      return (bits_ & (uint64_t{1} << t)) != 0;
    }
    const size_t w = (static_cast<size_t>(t) - 64) >> 6;
    return w < words_.size() &&
           (words_[w] &
            (uint64_t{1} << ((static_cast<size_t>(t) - 64) & 63))) != 0;
  }

  bool empty() const { return bits_ == 0 && overflow_count_ == 0; }
  size_t size() const {
    return static_cast<size_t>(std::popcount(bits_)) + overflow_count_;
  }

  // Set equality. Equal counts plus an equal common prefix force any
  // extra trailing words in the longer bitmap to be all-zero padding.
  friend bool operator==(const ThreadSet& a, const ThreadSet& b) {
    if (a.bits_ != b.bits_ || a.overflow_count_ != b.overflow_count_) {
      return false;
    }
    const size_t n = std::min(a.words_.size(), b.words_.size());
    for (size_t i = 0; i < n; ++i) {
      if (a.words_[i] != b.words_[i]) {
        return false;
      }
    }
    return true;
  }

  // Non-empty intersection test: word-wise ANDs.
  bool Intersects(const ThreadSet& other) const {
    if ((bits_ & other.bits_) != 0) {
      return true;
    }
    const size_t n = std::min(words_.size(), other.words_.size());
    for (size_t i = 0; i < n; ++i) {
      if ((words_[i] & other.words_[i]) != 0) {
        return true;
      }
    }
    return false;
  }

 private:
  uint64_t bits_ = 0;
  size_t overflow_count_ = 0;
  std::vector<uint64_t> words_;  // bit (t - 64) set <=> id t present
};

class FlowDetector final : public vm::InstructionObserver {
 public:
  struct Config {
    // MAX in the paper (§7.2): instructions emulated past the exit
    // from a critical section while watching for consumption.
    int post_window = kDefaultPostWindow;
    // Demote locks whose producer and consumer role lists intersect.
    bool detect_demotion = true;
  };
  static constexpr int kDefaultPostWindow = 128;

  // ctxt_provider returns a thread's current transaction context; the
  // detector calls it at produce points.
  using CtxtProvider = std::function<CtxtId(vm::ThreadId)>;
  using FlowCallback = std::function<void(const FlowEvent&)>;
  using DemoteCallback = std::function<void(uint64_t lock_id)>;

  FlowDetector(Config config, CtxtProvider ctxt_provider);
  explicit FlowDetector(CtxtProvider ctxt_provider)
      : FlowDetector(Config{}, std::move(ctxt_provider)) {}
  ~FlowDetector() override { FlushObsTallies(); }
  FlowDetector(const FlowDetector&) = default;
  FlowDetector& operator=(const FlowDetector&) = default;

  void set_flow_callback(FlowCallback cb) { on_flow_ = std::move(cb); }
  void set_demote_callback(DemoteCallback cb) { on_demote_ = std::move(cb); }

  // vm::InstructionObserver. The hook bodies are split into inline
  // fast paths (defined below the class; they pay one predicted-
  // not-taken branch on the recording sink) and out-of-line Rec*
  // variants in flow_detector.cc that additionally report every
  // classification into the active SectionRecording. The fast paths
  // fold each hook's probes — a MOV's foreign-lock flush, dictionary
  // lookup, and destination write collapse from four hash probes to
  // two — but their dictionary-state transitions and counter totals
  // are exactly the recording variants' (shadow verification holds
  // the two paths to the same observable behavior).
  void OnMov(vm::ThreadId t, const vm::Loc& dst, const vm::Loc& src) override;
  void OnWriteValue(vm::ThreadId t, const vm::Loc& dst) override;
  // Affine writes (INC/DEC/ADD-immediate) are non-MOV modifications:
  // same invlctxt poisoning as any arithmetic. Overridden explicitly
  // so the templated execute loop binds it statically.
  void OnAffineWrite(vm::ThreadId t, const vm::Loc& dst, const vm::Loc& /*src*/,
                     uint64_t /*delta*/) override {
    OnWriteValue(t, dst);
  }
  void OnRead(vm::ThreadId t, const vm::Loc& src) override;
  void OnLock(vm::ThreadId t, uint64_t lock_id) override;
  void OnUnlock(vm::ThreadId t, uint64_t lock_id) override;
  void OnRetire(vm::ThreadId t) override { OnRetireBatch(t, 1); }
  // Batched retire bookkeeping: the consume window only shrinks, and
  // only reads delivered *between* batches can consume, so decrementing
  // by the whole batch at once is exact.
  void OnRetireBatch(vm::ThreadId t, int64_t n) override;

  // Publishes the batched per-event counts (propagations, poisonings,
  // …) to the metrics registry. Hot hooks stage counts in plain
  // members — a sharded-atomic fetch_add per dictionary event was a
  // measurable slice of the per-section budget — and publish every
  // kObsFlushSections critical sections and at destruction. Totals
  // are exact; mid-lifetime snapshots lag by bounded staleness
  // (docs/METRICS.md). Flow/demotion counts and the flow log are
  // never batched.
  void FlushObsTallies();

  // False once the lock's resource was demoted (allocator pattern):
  // the performance optimization of §7.2 — run such critical sections
  // natively from then on.
  bool ShouldEmulate(uint64_t lock_id) const;
  bool IsDemoted(uint64_t lock_id) const;

  // Introspection for tests and reports.
  uint64_t flows_detected() const { return flows_detected_; }
  const std::vector<FlowEvent>& flow_log() const { return flow_log_; }
  size_t dictionary_size() const { return mem_dict_.size() + reg_entries_; }
  // Role lists are returned by value: a copy is two words in the dense
  // case, and the miss path safely yields an empty set instead of a
  // reference into mutable storage.
  ThreadSet producers_of(uint64_t lock_id) const;
  ThreadSet consumers_of(uint64_t lock_id) const;

  // --- Section-summary recording and replay (see section_summary.h) -

  // Dictionary input values captured while matching a fingerprint;
  // symbolic provenances resolve against these during ApplySection.
  struct ResolvedDictInputs {
    std::vector<CtxtId> ctxts;
    std::vector<vm::ThreadId> producers;
    bool has_current = false;
    CtxtId current = kInvalidCtxt;
  };

  // Recording is only sound from a clean section boundary: the thread
  // must not already hold a lock.
  bool CanRecordSection(vm::ThreadId t) const;
  // Installs `rec` as the recording sink for thread t's next section
  // run; every hook reports its classification and effects into it.
  void BeginSectionRecording(SectionRecording* rec, vm::ThreadId t);
  // Uninstalls the sink and collapses the recording.
  DictEffects EndSectionRecording();

  // True when the live dictionary/window state matches the summary's
  // fingerprint; fills `out` with the input entries' live contexts and
  // producers (and the thread's current context if the summary needs
  // it).
  bool MatchSection(const DictEffects& fx, vm::ThreadId t, ResolvedDictInputs* out) const;
  // Replays the summary: ordered ops (lock resets, window starts,
  // role updates, consumes with live dedup/demotion/flow emission),
  // then the collapsed per-location dictionary writes.
  void ApplySection(const DictEffects& fx, vm::ThreadId t, const ResolvedDictInputs& r);

  int post_window_config() const { return config_.post_window; }

  // Shadow-verify support: an independent copy whose callbacks (and
  // recording sink) are detached, and a deep structural comparison.
  FlowDetector CloneForShadow() const;
  bool DeepEquals(const FlowDetector& other) const;

 private:
  struct Entry {
    CtxtId ctxt = kInvalidCtxt;
    uint64_t lock_id = 0;       // lock of the CS that last set this entry
    vm::ThreadId producer = 0;  // thread whose context this value carries

    friend bool operator==(const Entry& a, const Entry& b) {
      return a.ctxt == b.ctxt && a.lock_id == b.lock_id && a.producer == b.producer;
    }
  };
  struct ThreadState {
    std::vector<uint64_t> lock_stack;  // held locks, outermost first
    int post_window_left = 0;
    // Flows already reported in the current consume window; a consumer
    // that picks up several words of one element (Apache's sd and p)
    // performed one logical flow, not one per word.
    std::vector<std::pair<uint64_t, CtxtId>> window_flows;
    // Register namespace: fixed slots, validity tracked in one mask so
    // clearing every register is a single store.
    std::array<Entry, vm::kNumRegs> regs{};
    uint32_t reg_valid = 0;
  };
  struct LockRoles {
    ThreadSet producers;
    ThreadSet consumers;
    bool demoted = false;
  };
  static_assert(vm::kNumRegs <= 32, "reg_valid mask is 32 bits");

  ThreadState& St(vm::ThreadId t) {
    if (t >= threads_.size()) {
      threads_.resize(static_cast<size_t>(t) + 1);
    }
    return threads_[t];
  }

  bool InCriticalSection(const ThreadState& ts) const { return !ts.lock_stack.empty(); }
  // The lock whose critical section governs analysis: the outermost
  // held lock (§3.3.2, nested locks).
  uint64_t OutermostLock(const ThreadState& ts) const { return ts.lock_stack.front(); }

  // Dictionary access, dispatching on the location's namespace.
  // Inline (defined below the class): the fast hook paths call these
  // from other translation units and an out-of-line call per probe is
  // measurable at this grain.
  const Entry* FindEntry(const vm::Loc& loc);
  const Entry* FindEntryConst(const vm::Loc& loc) const;
  void SetEntry(const vm::Loc& loc, const Entry& entry);
  bool EraseEntry(const vm::Loc& loc);

  // Single probe of `loc` with the foreign-lock flush folded in: a
  // same-lock entry is copied into *out (by value — a subsequent
  // insert can displace robin-hood slots), a foreign entry is erased
  // and counted, an absent entry is a miss. Returns whether *out holds
  // an entry.
  bool ProbeSourceEntry(const vm::Loc& loc, uint64_t lock_id, Entry* out);
  // Overwrites `dst` with `entry`, folding the foreign-lock flush
  // accounting into the single find-or-insert probe.
  void WriteEntryFlushingForeign(const vm::Loc& dst, uint64_t lock_id, const Entry& entry);

  // Out-of-line tails of the fast hook paths (flow_detector.cc).
  void ConsumeInWindow(vm::ThreadId t, ThreadState& ts, const vm::Loc& src);
  void PopLockSlow(ThreadState& ts, uint64_t lock_id);

  // Recording variants of the hooks: the original single-path bodies,
  // reporting every classification into rec_. Cold runs only.
  void RecOnMov(vm::ThreadId t, const vm::Loc& dst, const vm::Loc& src);
  void RecOnWriteValue(vm::ThreadId t, const vm::Loc& dst);
  void RecOnRead(vm::ThreadId t, const vm::Loc& src);
  void RecOnLock(vm::ThreadId t, uint64_t lock_id);
  void RecOnUnlock(vm::ThreadId t, uint64_t lock_id);

  CtxtId ResolveCtxt(const CtxtProv& p, const ResolvedDictInputs& r) const {
    switch (p.kind) {
      case CtxtProv::Kind::kCurrent:
        return r.current;
      case CtxtProv::Kind::kInput:
        return r.ctxts[static_cast<size_t>(p.input)];
      case CtxtProv::Kind::kConcrete:
        break;
    }
    return p.value;
  }
  vm::ThreadId ResolveProducer(const ProducerProv& p, const ResolvedDictInputs& r) const {
    return p.kind == ProducerProv::Kind::kInput ? r.producers[static_cast<size_t>(p.input)]
                                                : p.value;
  }

  // Flushes loc's entry if it was set under a different lock.
  void FlushIfForeign(const vm::Loc& loc, uint64_t lock_id);
  void ClearThreadRegisters(vm::ThreadId t);
  void RecordProducer(uint64_t lock_id, vm::ThreadId t);
  void RecordConsumer(uint64_t lock_id, vm::ThreadId t);
  // Called right after `t` was newly inserted into one role list;
  // `other_role` is the opposite list. A fresh insert is the only way
  // the intersection can become non-empty, so one O(1) contains()
  // maintains the full-intersection invariant that used to cost an
  // Intersects() scan per insert.
  void MaybeDemote(uint64_t lock_id, LockRoles& roles,
                   const ThreadSet& other_role, vm::ThreadId t);

  // Role-list lookup with a one-entry cache. Valid while roles_ has
  // not inserted since the pointer was taken: roles_ never erases, so
  // an unchanged size() proves no insert (and no robin-hood
  // displacement) happened. The cache resets on copy — a cloned
  // detector's pointer would dangle into the original's table.
  LockRoles& RolesOf(uint64_t lock_id) {
    if (roles_cache_.ptr != nullptr && roles_cache_.lock == lock_id &&
        roles_cache_.gen == roles_.size()) {
      return *roles_cache_.ptr;
    }
    LockRoles& r = roles_.GetOrInsert(lock_id);
    roles_cache_ = RolesCache{lock_id, roles_.size(), &r};
    return r;
  }

  struct RolesCache {
    uint64_t lock = 0;
    size_t gen = 0;
    LockRoles* ptr = nullptr;
    RolesCache() = default;
    RolesCache(uint64_t l, size_t g, LockRoles* p) : lock(l), gen(g), ptr(p) {}
    // Reset on copy: a pointer into another detector's table is stale.
    RolesCache(const RolesCache&) {}
    RolesCache& operator=(const RolesCache&) {
      lock = 0;
      gen = 0;
      ptr = nullptr;
      return *this;
    }
  };

  // Batched counter deltas (see FlushObsTallies). Reset on copy so a
  // shadow clone starts from zero instead of double-publishing the
  // source's pending counts.
  struct ObsTallies {
    uint64_t critical_sections = 0;
    uint64_t propagations = 0;
    uint64_t associations = 0;
    uint64_t poisonings = 0;
    uint64_t flushes = 0;
    uint64_t window_dedups = 0;
    ObsTallies() = default;
    ObsTallies(const ObsTallies&) {}
    ObsTallies& operator=(const ObsTallies&) {
      critical_sections = propagations = associations = 0;
      poisonings = flushes = window_dedups = 0;
      return *this;
    }
  };

  // Critical sections between metric publications.
  static constexpr uint32_t kObsFlushSections = 64;

  Config config_;
  CtxtProvider ctxt_provider_;
  FlowCallback on_flow_;
  DemoteCallback on_demote_;

  // Active recording sink (null outside a recorded cold run). Each
  // hook pays one predictable-not-taken branch on it.
  SectionRecording* rec_ = nullptr;
  vm::ThreadId rec_thread_ = 0;

  // Memory namespace of the location dictionary; registers live in
  // each ThreadState.
  util::RobinHoodMap<vm::Addr, Entry> mem_dict_;
  size_t reg_entries_ = 0;  // total set bits across all reg_valid masks
  std::vector<ThreadState> threads_;
  util::RobinHoodMap<uint64_t, LockRoles> roles_;

  uint64_t flows_detected_ = 0;
  std::vector<FlowEvent> flow_log_;

  RolesCache roles_cache_;
  ObsTallies tally_;
  uint32_t sections_until_flush_ = kObsFlushSections;

  // Self-observability handles, resolved once (see docs/METRICS.md).
  obs::Counter* obs_critical_sections_;
  obs::Counter* obs_propagations_;
  obs::Counter* obs_associations_;
  obs::Counter* obs_poisonings_;
  obs::Counter* obs_flushes_;
  obs::Counter* obs_flows_;
  obs::Counter* obs_demotions_;
  obs::Counter* obs_window_dedups_;
  obs::Gauge* obs_dict_size_;
};

// --- Inline hot path -------------------------------------------------
//
// One hook fires per emulated data movement; everything here is sized
// to inline into the interpreter's templated execute loop. The rare
// paths — an active section recording, the consume-window tail, a
// non-LIFO unlock — branch out to flow_detector.cc.

inline const FlowDetector::Entry* FlowDetector::FindEntry(const vm::Loc& loc) {
  if (loc.is_mem()) {
    return mem_dict_.Find(loc.addr);
  }
  ThreadState& ts = St(loc.thread);
  const auto r = static_cast<uint32_t>(loc.addr);
  return (ts.reg_valid >> r) & 1u ? &ts.regs[r] : nullptr;
}

inline const FlowDetector::Entry* FlowDetector::FindEntryConst(const vm::Loc& loc) const {
  if (loc.is_mem()) {
    return mem_dict_.Find(loc.addr);
  }
  if (loc.thread >= threads_.size()) {
    return nullptr;
  }
  const ThreadState& ts = threads_[loc.thread];
  const auto r = static_cast<uint32_t>(loc.addr);
  return (ts.reg_valid >> r) & 1u ? &ts.regs[r] : nullptr;
}

inline void FlowDetector::SetEntry(const vm::Loc& loc, const Entry& entry) {
  if (loc.is_mem()) {
    mem_dict_.Upsert(loc.addr, entry);
    return;
  }
  ThreadState& ts = St(loc.thread);
  const auto r = static_cast<uint32_t>(loc.addr);
  reg_entries_ += static_cast<size_t>(((ts.reg_valid >> r) & 1u) == 0);
  ts.reg_valid |= 1u << r;
  ts.regs[r] = entry;
}

inline bool FlowDetector::EraseEntry(const vm::Loc& loc) {
  if (loc.is_mem()) {
    return mem_dict_.Erase(loc.addr);
  }
  ThreadState& ts = St(loc.thread);
  const auto r = static_cast<uint32_t>(loc.addr);
  if (((ts.reg_valid >> r) & 1u) == 0) {
    return false;
  }
  ts.reg_valid &= ~(1u << r);
  --reg_entries_;
  return true;
}

inline bool FlowDetector::ProbeSourceEntry(const vm::Loc& loc, uint64_t lock_id,
                                           Entry* out) {
  if (loc.is_mem()) {
    if (Entry* e = mem_dict_.Find(loc.addr)) {
      if (e->lock_id != lock_id) {
        mem_dict_.Erase(loc.addr);
        ++tally_.flushes;
        return false;
      }
      *out = *e;
      return true;
    }
    return false;
  }
  ThreadState& ts = St(loc.thread);
  const auto r = static_cast<uint32_t>(loc.addr);
  if (((ts.reg_valid >> r) & 1u) == 0) {
    return false;
  }
  if (ts.regs[r].lock_id != lock_id) {
    ts.reg_valid &= ~(1u << r);
    --reg_entries_;
    ++tally_.flushes;
    return false;
  }
  *out = ts.regs[r];
  return true;
}

inline void FlowDetector::WriteEntryFlushingForeign(const vm::Loc& dst, uint64_t lock_id,
                                                    const Entry& entry) {
  if (dst.is_mem()) {
    bool existed = false;
    Entry& slot = mem_dict_.FindOrInsert(dst.addr, &existed);
    tally_.flushes += static_cast<uint64_t>(existed && slot.lock_id != lock_id);
    slot = entry;
    return;
  }
  ThreadState& ts = St(dst.thread);
  const auto r = static_cast<uint32_t>(dst.addr);
  if ((ts.reg_valid >> r) & 1u) {
    tally_.flushes += static_cast<uint64_t>(ts.regs[r].lock_id != lock_id);
  } else {
    ts.reg_valid |= 1u << r;
    ++reg_entries_;
  }
  ts.regs[r] = entry;
}

inline void FlowDetector::ClearThreadRegisters(vm::ThreadId t) {
  ThreadState& ts = St(t);
  reg_entries_ -= std::popcount(ts.reg_valid);
  ts.reg_valid = 0;
}

inline void FlowDetector::FlushObsTallies() {
  if (tally_.critical_sections != 0) {
    obs_critical_sections_->Add(tally_.critical_sections);
    tally_.critical_sections = 0;
  }
  if (tally_.propagations != 0) {
    obs_propagations_->Add(tally_.propagations);
    tally_.propagations = 0;
  }
  if (tally_.associations != 0) {
    obs_associations_->Add(tally_.associations);
    tally_.associations = 0;
  }
  if (tally_.poisonings != 0) {
    obs_poisonings_->Add(tally_.poisonings);
    tally_.poisonings = 0;
  }
  if (tally_.flushes != 0) {
    obs_flushes_->Add(tally_.flushes);
    tally_.flushes = 0;
  }
  if (tally_.window_dedups != 0) {
    obs_window_dedups_->Add(tally_.window_dedups);
    tally_.window_dedups = 0;
  }
  sections_until_flush_ = kObsFlushSections;
}

inline void FlowDetector::OnMov(vm::ThreadId t, const vm::Loc& dst, const vm::Loc& src) {
  if (rec_ != nullptr) [[unlikely]] {
    RecOnMov(t, dst, src);
    return;
  }
  ThreadState& ts = St(t);
  if (ts.lock_stack.empty()) {
    // Outside any critical section the algorithm does not propagate;
    // a write still clobbers whatever context the destination held.
    EraseEntry(dst);
    return;
  }
  const uint64_t lock_id = ts.lock_stack.front();
  Entry sv;
  const bool have_src = ProbeSourceEntry(src, lock_id, &sv);
  // Propagation inherits the source's context and producer;
  // association stamps the thread's own. Selected without control
  // flow past the provider call so the common MOV chain compiles to
  // conditional moves.
  const CtxtId ctxt = have_src ? sv.ctxt : ctxt_provider_(t);
  const vm::ThreadId producer = have_src ? sv.producer : t;
  WriteEntryFlushingForeign(dst, lock_id, Entry{ctxt, lock_id, producer});
  if (have_src) {
    ++tally_.propagations;
    return;
  }
  ++tally_.associations;
  if (dst.is_mem()) {
    // Writing an un-contexted value into shared memory is production.
    LockRoles& roles = RolesOf(lock_id);
    if (roles.producers.insert(t)) {
      MaybeDemote(lock_id, roles, roles.consumers, t);
    }
  }
}

inline void FlowDetector::OnWriteValue(vm::ThreadId t, const vm::Loc& dst) {
  if (rec_ != nullptr) [[unlikely]] {
    RecOnWriteValue(t, dst);
    return;
  }
  ThreadState& ts = St(t);
  if (ts.lock_stack.empty()) {
    EraseEntry(dst);
    return;
  }
  // Non-MOV modification: immediate store, arithmetic result. The
  // location's value no longer carries any transaction's data.
  SetEntry(dst, Entry{kInvalidCtxt, ts.lock_stack.front(), t});
  ++tally_.poisonings;
}

inline void FlowDetector::OnRead(vm::ThreadId t, const vm::Loc& src) {
  if (rec_ != nullptr) [[unlikely]] {
    RecOnRead(t, src);
    return;
  }
  ThreadState& ts = St(t);
  // Reads inside critical sections are handled by OnMov propagation;
  // reads past the consume window are un-emulated in the real system.
  if (!ts.lock_stack.empty() || ts.post_window_left <= 0) {
    return;
  }
  ConsumeInWindow(t, ts, src);
}

inline void FlowDetector::OnLock(vm::ThreadId t, uint64_t lock_id) {
  if (rec_ != nullptr) [[unlikely]] {
    RecOnLock(t, lock_id);
    return;
  }
  ThreadState& ts = St(t);
  if (ts.lock_stack.empty()) {
    // Entering an outermost critical section: registers carry values
    // computed in un-emulated code, so they have no associated context
    // (§3.2, "live registers on entry"). A pending consume window is
    // over. With the bitmask register file this is one mask reset.
    reg_entries_ -= std::popcount(ts.reg_valid);
    ts.reg_valid = 0;
    ts.post_window_left = 0;
    ++tally_.critical_sections;
    if (--sections_until_flush_ == 0) [[unlikely]] {
      FlushObsTallies();
    }
  }
  ts.lock_stack.push_back(lock_id);
}

inline void FlowDetector::OnUnlock(vm::ThreadId t, uint64_t lock_id) {
  if (rec_ != nullptr) [[unlikely]] {
    RecOnUnlock(t, lock_id);
    return;
  }
  ThreadState& ts = St(t);
  if (!ts.lock_stack.empty() && ts.lock_stack.back() == lock_id) {
    ts.lock_stack.pop_back();
  } else {
    PopLockSlow(ts, lock_id);
  }
  if (ts.lock_stack.empty()) {
    // Keep emulating for MAX instructions watching for consumption.
    ts.post_window_left = config_.post_window;
    ts.window_flows.clear();
    obs_dict_size_->Set(static_cast<int64_t>(dictionary_size()));
  }
}

inline void FlowDetector::OnRetireBatch(vm::ThreadId t, int64_t n) {
  // No recording note: window decrements are deterministic given the
  // trace, and every branch that *reads* the inherited window (a read
  // outside a critical section) pins it via NoteOutsideWindowUse.
  ThreadState& ts = St(t);
  if (ts.lock_stack.empty() && ts.post_window_left > 0) {
    ts.post_window_left -= static_cast<int>(std::min<int64_t>(n, ts.post_window_left));
  }
}

}  // namespace whodunit::shm

#endif  // SRC_SHM_FLOW_DETECTOR_H_
