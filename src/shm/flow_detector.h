// Shared-memory transaction-flow detection (paper §3).
//
// The algorithm watches the instructions executed inside lock-protected
// critical sections (delivered by the MiniVM interpreter) and maintains
// a dictionary mapping locations (memory words and per-thread
// registers) to transaction contexts:
//
//   * A MOV whose source has an associated context propagates that
//     context (valid or invalid) to the destination.
//   * A MOV whose source has *no* context associates the destination
//     with the executing thread's current transaction context; if the
//     destination is shared memory, the thread has *produced* a value.
//   * Any non-MOV write (immediate store, arithmetic) associates the
//     destination with invlctxt, the invalid context — this is what
//     keeps shared counters and NULL sanity-checks from creating
//     spurious flows (§3.4, §3.3.2).
//   * After the outermost lock is released, emulation continues for up
//     to kDefaultPostWindow instructions; a read of a location holding
//     a valid context in that window means the thread *consumed* the
//     value, establishing a transaction flow from producer to consumer.
//
// Per-lock producer/consumer role lists demote resources where a
// thread appears on both sides (the memory-allocator pattern, §3.4):
// once demoted, the lock's critical sections no longer constitute
// transaction flow and may run natively (ShouldEmulate returns false).
//
// A location's dictionary entry remembers which lock protected the
// critical section that last set it; touching the location under a
// different lock flushes the stale context (§3.2, "used for different
// purposes at different times").
#ifndef SRC_SHM_FLOW_DETECTOR_H_
#define SRC_SHM_FLOW_DETECTOR_H_

#include <cstdint>
#include <functional>
#include <set>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "src/obs/metrics.h"
#include "src/vm/interpreter.h"
#include "src/vm/loc.h"

namespace whodunit::shm {

// Opaque transaction-context handle supplied by the profiler layer
// (a synopsis part id in the full system).
using CtxtId = uint32_t;
inline constexpr CtxtId kInvalidCtxt = 0xffffffffu;  // invlctxt

struct FlowEvent {
  vm::ThreadId producer;
  vm::ThreadId consumer;
  CtxtId ctxt;       // producer's transaction context at produce time
  uint64_t lock_id;  // lock protecting the resource the flow crossed
  vm::Loc loc;       // location the value was consumed from
};

class FlowDetector : public vm::InstructionObserver {
 public:
  struct Config {
    // MAX in the paper (§7.2): instructions emulated past the exit
    // from a critical section while watching for consumption.
    int post_window = kDefaultPostWindow;
    // Demote locks whose producer and consumer role lists intersect.
    bool detect_demotion = true;
  };
  static constexpr int kDefaultPostWindow = 128;

  // ctxt_provider returns a thread's current transaction context; the
  // detector calls it at produce points.
  using CtxtProvider = std::function<CtxtId(vm::ThreadId)>;
  using FlowCallback = std::function<void(const FlowEvent&)>;
  using DemoteCallback = std::function<void(uint64_t lock_id)>;

  FlowDetector(Config config, CtxtProvider ctxt_provider);
  explicit FlowDetector(CtxtProvider ctxt_provider)
      : FlowDetector(Config{}, std::move(ctxt_provider)) {}

  void set_flow_callback(FlowCallback cb) { on_flow_ = std::move(cb); }
  void set_demote_callback(DemoteCallback cb) { on_demote_ = std::move(cb); }

  // vm::InstructionObserver:
  void OnMov(vm::ThreadId t, const vm::Loc& dst, const vm::Loc& src) override;
  void OnWriteValue(vm::ThreadId t, const vm::Loc& dst) override;
  void OnRead(vm::ThreadId t, const vm::Loc& src) override;
  void OnLock(vm::ThreadId t, uint64_t lock_id) override;
  void OnUnlock(vm::ThreadId t, uint64_t lock_id) override;
  void OnRetire(vm::ThreadId t) override;

  // False once the lock's resource was demoted (allocator pattern):
  // the performance optimization of §7.2 — run such critical sections
  // natively from then on.
  bool ShouldEmulate(uint64_t lock_id) const;
  bool IsDemoted(uint64_t lock_id) const;

  // Introspection for tests and reports.
  uint64_t flows_detected() const { return flows_detected_; }
  const std::vector<FlowEvent>& flow_log() const { return flow_log_; }
  size_t dictionary_size() const { return dict_.size(); }
  const std::set<vm::ThreadId>& producers_of(uint64_t lock_id) const;
  const std::set<vm::ThreadId>& consumers_of(uint64_t lock_id) const;

 private:
  struct Entry {
    CtxtId ctxt;
    uint64_t lock_id;       // lock of the CS that last set this entry
    vm::ThreadId producer;  // thread whose context this value carries
  };
  struct ThreadState {
    std::vector<uint64_t> lock_stack;  // held locks, outermost first
    int post_window_left = 0;
    // Flows already reported in the current consume window; a consumer
    // that picks up several words of one element (Apache's sd and p)
    // performed one logical flow, not one per word.
    std::vector<std::pair<uint64_t, CtxtId>> window_flows;
  };
  struct LockRoles {
    std::set<vm::ThreadId> producers;
    std::set<vm::ThreadId> consumers;
    bool demoted = false;
  };

  bool InCriticalSection(const ThreadState& ts) const { return !ts.lock_stack.empty(); }
  // The lock whose critical section governs analysis: the outermost
  // held lock (§3.3.2, nested locks).
  uint64_t OutermostLock(const ThreadState& ts) const { return ts.lock_stack.front(); }

  // Flushes loc's entry if it was set under a different lock.
  void FlushIfForeign(const vm::Loc& loc, uint64_t lock_id);
  void ClearThreadRegisters(vm::ThreadId t);
  void RecordProducer(uint64_t lock_id, vm::ThreadId t);
  void RecordConsumer(uint64_t lock_id, vm::ThreadId t);
  void MaybeDemote(uint64_t lock_id, LockRoles& roles);

  Config config_;
  CtxtProvider ctxt_provider_;
  FlowCallback on_flow_;
  DemoteCallback on_demote_;

  std::unordered_map<vm::Loc, Entry, vm::LocHash> dict_;
  std::unordered_map<vm::ThreadId, ThreadState> threads_;
  std::unordered_map<uint64_t, LockRoles> roles_;

  uint64_t flows_detected_ = 0;
  std::vector<FlowEvent> flow_log_;

  // Self-observability handles, resolved once (see docs/METRICS.md).
  obs::Counter* obs_critical_sections_;
  obs::Counter* obs_propagations_;
  obs::Counter* obs_associations_;
  obs::Counter* obs_poisonings_;
  obs::Counter* obs_flushes_;
  obs::Counter* obs_flows_;
  obs::Counter* obs_demotions_;
  obs::Counter* obs_window_dedups_;
  obs::Gauge* obs_dict_size_;
};

}  // namespace whodunit::shm

#endif  // SRC_SHM_FLOW_DETECTOR_H_
