// Shared-memory transaction-flow detection (paper §3).
//
// The algorithm watches the instructions executed inside lock-protected
// critical sections (delivered by the MiniVM interpreter) and maintains
// a dictionary mapping locations (memory words and per-thread
// registers) to transaction contexts:
//
//   * A MOV whose source has an associated context propagates that
//     context (valid or invalid) to the destination.
//   * A MOV whose source has *no* context associates the destination
//     with the executing thread's current transaction context; if the
//     destination is shared memory, the thread has *produced* a value.
//   * Any non-MOV write (immediate store, arithmetic) associates the
//     destination with invlctxt, the invalid context — this is what
//     keeps shared counters and NULL sanity-checks from creating
//     spurious flows (§3.4, §3.3.2).
//   * After the outermost lock is released, emulation continues for up
//     to kDefaultPostWindow instructions; a read of a location holding
//     a valid context in that window means the thread *consumed* the
//     value, establishing a transaction flow from producer to consumer.
//
// Per-lock producer/consumer role lists demote resources where a
// thread appears on both sides (the memory-allocator pattern, §3.4):
// once demoted, the lock's critical sections no longer constitute
// transaction flow and may run natively (ShouldEmulate returns false).
//
// A location's dictionary entry remembers which lock protected the
// critical section that last set it; touching the location under a
// different lock flushes the stale context (§3.2, "used for different
// purposes at different times").
//
// Storage is organized for the per-instruction hot path: the §3.2
// location namespace is split at its natural seam — shared-memory
// words live in a flat open-addressing table keyed by address, while
// each thread's registers are a fixed array plus a validity bitmask
// (clearing all registers on critical-section entry is one mask
// reset). Role lists are small bitsets, so the demotion check is a
// word AND. The class is `final` so the interpreter's templated
// execute loop can bind the hook calls statically.
#ifndef SRC_SHM_FLOW_DETECTOR_H_
#define SRC_SHM_FLOW_DETECTOR_H_

#include <array>
#include <bit>
#include <cstdint>
#include <functional>
#include <vector>

#include "src/obs/metrics.h"
#include "src/shm/section_summary.h"
#include "src/util/robin_hood.h"
#include "src/vm/interpreter.h"
#include "src/vm/loc.h"

namespace whodunit::shm {

// CtxtId / kInvalidCtxt live in section_summary.h (the summary data
// model shares them) and are re-exported through this include.

struct FlowEvent {
  vm::ThreadId producer;
  vm::ThreadId consumer;
  CtxtId ctxt;       // producer's transaction context at produce time
  uint64_t lock_id;  // lock protecting the resource the flow crossed
  vm::Loc loc;       // location the value was consumed from

  friend bool operator==(const FlowEvent& a, const FlowEvent& b) {
    return a.producer == b.producer && a.consumer == b.consumer && a.ctxt == b.ctxt &&
           a.lock_id == b.lock_id && a.loc == b.loc;
  }
};

// A set of thread ids: one machine word for ids below 64 (the common
// case by a wide margin — the simulator numbers threads densely from
// zero) with a spill vector for larger ids.
class ThreadSet {
 public:
  // Returns true if the thread was newly added.
  bool insert(vm::ThreadId t) {
    if (t < 64) {
      const uint64_t bit = uint64_t{1} << t;
      if ((bits_ & bit) != 0) {
        return false;
      }
      bits_ |= bit;
      return true;
    }
    for (vm::ThreadId o : overflow_) {
      if (o == t) {
        return false;
      }
    }
    overflow_.push_back(t);
    return true;
  }

  bool contains(vm::ThreadId t) const {
    if (t < 64) {
      return (bits_ & (uint64_t{1} << t)) != 0;
    }
    for (vm::ThreadId o : overflow_) {
      if (o == t) {
        return true;
      }
    }
    return false;
  }

  bool empty() const { return bits_ == 0 && overflow_.empty(); }
  size_t size() const { return std::popcount(bits_) + overflow_.size(); }

  // Set equality (overflow order-insensitive; ids there are unique).
  friend bool operator==(const ThreadSet& a, const ThreadSet& b) {
    if (a.bits_ != b.bits_ || a.overflow_.size() != b.overflow_.size()) {
      return false;
    }
    for (vm::ThreadId t : a.overflow_) {
      if (!b.contains(t)) {
        return false;
      }
    }
    return true;
  }

  // Non-empty intersection test: one AND for the dense range.
  bool Intersects(const ThreadSet& other) const {
    if ((bits_ & other.bits_) != 0) {
      return true;
    }
    for (vm::ThreadId t : overflow_) {
      if (other.contains(t)) {
        return true;
      }
    }
    for (vm::ThreadId t : other.overflow_) {
      if (contains(t)) {
        return true;
      }
    }
    return false;
  }

 private:
  uint64_t bits_ = 0;
  std::vector<vm::ThreadId> overflow_;
};

class FlowDetector final : public vm::InstructionObserver {
 public:
  struct Config {
    // MAX in the paper (§7.2): instructions emulated past the exit
    // from a critical section while watching for consumption.
    int post_window = kDefaultPostWindow;
    // Demote locks whose producer and consumer role lists intersect.
    bool detect_demotion = true;
  };
  static constexpr int kDefaultPostWindow = 128;

  // ctxt_provider returns a thread's current transaction context; the
  // detector calls it at produce points.
  using CtxtProvider = std::function<CtxtId(vm::ThreadId)>;
  using FlowCallback = std::function<void(const FlowEvent&)>;
  using DemoteCallback = std::function<void(uint64_t lock_id)>;

  FlowDetector(Config config, CtxtProvider ctxt_provider);
  explicit FlowDetector(CtxtProvider ctxt_provider)
      : FlowDetector(Config{}, std::move(ctxt_provider)) {}

  void set_flow_callback(FlowCallback cb) { on_flow_ = std::move(cb); }
  void set_demote_callback(DemoteCallback cb) { on_demote_ = std::move(cb); }

  // vm::InstructionObserver:
  void OnMov(vm::ThreadId t, const vm::Loc& dst, const vm::Loc& src) override;
  void OnWriteValue(vm::ThreadId t, const vm::Loc& dst) override;
  // Affine writes (INC/DEC/ADD-immediate) are non-MOV modifications:
  // same invlctxt poisoning as any arithmetic. Overridden explicitly
  // so the templated execute loop binds it statically.
  void OnAffineWrite(vm::ThreadId t, const vm::Loc& dst, const vm::Loc& /*src*/,
                     uint64_t /*delta*/) override {
    OnWriteValue(t, dst);
  }
  void OnRead(vm::ThreadId t, const vm::Loc& src) override;
  void OnLock(vm::ThreadId t, uint64_t lock_id) override;
  void OnUnlock(vm::ThreadId t, uint64_t lock_id) override;
  void OnRetire(vm::ThreadId t) override { OnRetireBatch(t, 1); }
  // Batched retire bookkeeping: the consume window only shrinks, and
  // only reads delivered *between* batches can consume, so decrementing
  // by the whole batch at once is exact.
  void OnRetireBatch(vm::ThreadId t, int64_t n) override;

  // False once the lock's resource was demoted (allocator pattern):
  // the performance optimization of §7.2 — run such critical sections
  // natively from then on.
  bool ShouldEmulate(uint64_t lock_id) const;
  bool IsDemoted(uint64_t lock_id) const;

  // Introspection for tests and reports.
  uint64_t flows_detected() const { return flows_detected_; }
  const std::vector<FlowEvent>& flow_log() const { return flow_log_; }
  size_t dictionary_size() const { return mem_dict_.size() + reg_entries_; }
  // Role lists are returned by value: a copy is two words in the dense
  // case, and the miss path safely yields an empty set instead of a
  // reference into mutable storage.
  ThreadSet producers_of(uint64_t lock_id) const;
  ThreadSet consumers_of(uint64_t lock_id) const;

  // --- Section-summary recording and replay (see section_summary.h) -

  // Dictionary input values captured while matching a fingerprint;
  // symbolic provenances resolve against these during ApplySection.
  struct ResolvedDictInputs {
    std::vector<CtxtId> ctxts;
    std::vector<vm::ThreadId> producers;
    bool has_current = false;
    CtxtId current = kInvalidCtxt;
  };

  // Recording is only sound from a clean section boundary: the thread
  // must not already hold a lock.
  bool CanRecordSection(vm::ThreadId t) const;
  // Installs `rec` as the recording sink for thread t's next section
  // run; every hook reports its classification and effects into it.
  void BeginSectionRecording(SectionRecording* rec, vm::ThreadId t);
  // Uninstalls the sink and collapses the recording.
  DictEffects EndSectionRecording();

  // True when the live dictionary/window state matches the summary's
  // fingerprint; fills `out` with the input entries' live contexts and
  // producers (and the thread's current context if the summary needs
  // it).
  bool MatchSection(const DictEffects& fx, vm::ThreadId t, ResolvedDictInputs* out) const;
  // Replays the summary: ordered ops (lock resets, window starts,
  // role updates, consumes with live dedup/demotion/flow emission),
  // then the collapsed per-location dictionary writes.
  void ApplySection(const DictEffects& fx, vm::ThreadId t, const ResolvedDictInputs& r);

  int post_window_config() const { return config_.post_window; }

  // Shadow-verify support: an independent copy whose callbacks (and
  // recording sink) are detached, and a deep structural comparison.
  FlowDetector CloneForShadow() const;
  bool DeepEquals(const FlowDetector& other) const;

 private:
  struct Entry {
    CtxtId ctxt = kInvalidCtxt;
    uint64_t lock_id = 0;       // lock of the CS that last set this entry
    vm::ThreadId producer = 0;  // thread whose context this value carries

    friend bool operator==(const Entry& a, const Entry& b) {
      return a.ctxt == b.ctxt && a.lock_id == b.lock_id && a.producer == b.producer;
    }
  };
  struct ThreadState {
    std::vector<uint64_t> lock_stack;  // held locks, outermost first
    int post_window_left = 0;
    // Flows already reported in the current consume window; a consumer
    // that picks up several words of one element (Apache's sd and p)
    // performed one logical flow, not one per word.
    std::vector<std::pair<uint64_t, CtxtId>> window_flows;
    // Register namespace: fixed slots, validity tracked in one mask so
    // clearing every register is a single store.
    std::array<Entry, vm::kNumRegs> regs{};
    uint32_t reg_valid = 0;
  };
  struct LockRoles {
    ThreadSet producers;
    ThreadSet consumers;
    bool demoted = false;
  };
  static_assert(vm::kNumRegs <= 32, "reg_valid mask is 32 bits");

  ThreadState& St(vm::ThreadId t) {
    if (t >= threads_.size()) {
      threads_.resize(static_cast<size_t>(t) + 1);
    }
    return threads_[t];
  }

  bool InCriticalSection(const ThreadState& ts) const { return !ts.lock_stack.empty(); }
  // The lock whose critical section governs analysis: the outermost
  // held lock (§3.3.2, nested locks).
  uint64_t OutermostLock(const ThreadState& ts) const { return ts.lock_stack.front(); }

  // Dictionary access, dispatching on the location's namespace.
  const Entry* FindEntry(const vm::Loc& loc);
  const Entry* FindEntryConst(const vm::Loc& loc) const;
  void SetEntry(const vm::Loc& loc, const Entry& entry);
  bool EraseEntry(const vm::Loc& loc);

  CtxtId ResolveCtxt(const CtxtProv& p, const ResolvedDictInputs& r) const {
    switch (p.kind) {
      case CtxtProv::Kind::kCurrent:
        return r.current;
      case CtxtProv::Kind::kInput:
        return r.ctxts[static_cast<size_t>(p.input)];
      case CtxtProv::Kind::kConcrete:
        break;
    }
    return p.value;
  }
  vm::ThreadId ResolveProducer(const ProducerProv& p, const ResolvedDictInputs& r) const {
    return p.kind == ProducerProv::Kind::kInput ? r.producers[static_cast<size_t>(p.input)]
                                                : p.value;
  }

  // Flushes loc's entry if it was set under a different lock.
  void FlushIfForeign(const vm::Loc& loc, uint64_t lock_id);
  void ClearThreadRegisters(vm::ThreadId t);
  void RecordProducer(uint64_t lock_id, vm::ThreadId t);
  void RecordConsumer(uint64_t lock_id, vm::ThreadId t);
  void MaybeDemote(uint64_t lock_id, LockRoles& roles);

  Config config_;
  CtxtProvider ctxt_provider_;
  FlowCallback on_flow_;
  DemoteCallback on_demote_;

  // Active recording sink (null outside a recorded cold run). Each
  // hook pays one predictable-not-taken branch on it.
  SectionRecording* rec_ = nullptr;
  vm::ThreadId rec_thread_ = 0;

  // Memory namespace of the location dictionary; registers live in
  // each ThreadState.
  util::RobinHoodMap<vm::Addr, Entry> mem_dict_;
  size_t reg_entries_ = 0;  // total set bits across all reg_valid masks
  std::vector<ThreadState> threads_;
  util::RobinHoodMap<uint64_t, LockRoles> roles_;

  uint64_t flows_detected_ = 0;
  std::vector<FlowEvent> flow_log_;

  // Self-observability handles, resolved once (see docs/METRICS.md).
  obs::Counter* obs_critical_sections_;
  obs::Counter* obs_propagations_;
  obs::Counter* obs_associations_;
  obs::Counter* obs_poisonings_;
  obs::Counter* obs_flushes_;
  obs::Counter* obs_flows_;
  obs::Counter* obs_demotions_;
  obs::Counter* obs_window_dedups_;
  obs::Gauge* obs_dict_size_;
};

}  // namespace whodunit::shm

#endif  // SRC_SHM_FLOW_DETECTOR_H_
