#include "src/shm/section_cache.h"

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <optional>
#include <utility>

#include "src/obs/trace.h"

namespace whodunit::shm {

SectionCache::SectionCache(Config config)
    : config_(config),
      obs_hits_(&obs::Registry().GetCounter("shm.section_cache.hits")),
      obs_misses_(&obs::Registry().GetCounter("shm.section_cache.misses")),
      obs_fingerprint_misses_(
          &obs::Registry().GetCounter("shm.section_cache.fingerprint_misses")),
      obs_records_(&obs::Registry().GetCounter("shm.section_cache.records")),
      obs_uncacheable_(&obs::Registry().GetCounter("shm.section_cache.uncacheable")),
      obs_churn_demotions_(
          &obs::Registry().GetCounter("shm.section_cache.churn_demotions")),
      obs_invalidations_(&obs::Registry().GetCounter("shm.section_cache.invalidations")),
      obs_shadow_checks_(&obs::Registry().GetCounter("shm.section_cache.shadow_checks")),
      obs_sections_(&obs::Registry().GetGauge("shm.section_cache.sections")),
      obs_variants_(&obs::Registry().GetGauge("shm.section_cache.variants")) {}

vm::ExecResult SectionCache::Plain(vm::Interpreter& interp, const vm::Program& program,
                                   vm::ThreadId t, vm::CpuState& cpu, vm::Memory& mem,
                                   FlowDetector* det) {
  if (det != nullptr) {
    return interp.ExecuteWith(program, t, cpu, mem, det);
  }
  return interp.Execute(program, t, cpu, mem);
}

vm::ExecResult SectionCache::RunMiss(vm::Interpreter& interp, const vm::Program& program,
                                     vm::ThreadId t, vm::CpuState& cpu, vm::Memory& mem,
                                     FlowDetector* det) {
  if (!config_.enabled) {
    return Plain(interp, program, t, cpu, mem, det);
  }
  ++misses_;
  obs_misses_->Add();
  if (!interp.IsTranslated(program.id)) {
    // Pay the one-time translation in a plain cold run; recording
    // waits for the next (warm) execution so summaries never embed
    // translation cycles in their replayed cost.
    return Plain(interp, program, t, cpu, mem, det);
  }
  const ProgramEntry* pe = table_.Find(program.id);
  if (pe != nullptr &&
      (pe->never_cache || (t < pe->rings.size() && pe->rings[t].demoted))) {
    return Plain(interp, program, t, cpu, mem, det);
  }
  if (det != nullptr && !det->CanRecordSection(t)) {
    // Mid-section start (thread already holds a lock): transient —
    // skip recording this run only.
    return Plain(interp, program, t, cpu, mem, det);
  }
  return RecordCold(interp, program, t, cpu, mem, det);
}

vm::ExecResult SectionCache::RecordCold(vm::Interpreter& interp, const vm::Program& program,
                                        vm::ThreadId t, vm::CpuState& cpu, vm::Memory& mem,
                                        FlowDetector* det) {
  const auto start = std::chrono::steady_clock::now();
  if (det != nullptr) {
    det->BeginSectionRecording(&scratch_rec_, t);
  }
  scratch_arch_.Reset(t, cpu, mem, det);
  const vm::ExecResult res = interp.ExecuteWith(program, t, cpu, mem, &scratch_arch_);
  vm::ArchEffects arch = scratch_arch_.Finish();
  DictEffects dict;
  if (det != nullptr) {
    dict = det->EndSectionRecording();
  }
  const auto ns = std::chrono::duration_cast<std::chrono::nanoseconds>(
                      std::chrono::steady_clock::now() - start)
                      .count();
  obs::Tracer().Record(obs::SpanRecord{"shm.section_cache.record", program.name, 0,
                                       /*start_ns=*/0, /*duration_ns=*/ns});

  const bool cacheable = arch.cacheable && (det == nullptr || dict.cacheable);
  ProgramEntry& pe = table_.GetOrInsert(program.id);
  if (!cacheable) {
    pe.never_cache = true;
    obs_uncacheable_->Add();
    obs_sections_->Set(static_cast<int64_t>(table_.size()));
    return res;
  }
  if (t >= pe.rings.size()) {
    pe.rings.resize(static_cast<size_t>(t) + 1);
  }
  ThreadRing& ring = pe.rings[t];
  const bool full = ring.summaries.size() >= config_.max_variants;
  if (full) {
    ++ring.evictions;
    if (config_.churn_demote_records != 0 &&
        ring.evictions >= config_.churn_demote_records &&
        ring.replay_hits < ring.evictions) {
      // This thread's fingerprints walk an unbounded set (evictions
      // outpace replays even with a full ring), so the cache is a net
      // slowdown here: demote the ring to plain emulation for good.
      variant_count_ -= ring.summaries.size();
      obs_invalidations_->Add(static_cast<uint64_t>(ring.summaries.size()));
      ring.summaries.clear();
      ring.summaries.shrink_to_fit();
      ring.demoted = true;
      obs_churn_demotions_->Add();
      obs_sections_->Set(static_cast<int64_t>(table_.size()));
      obs_variants_->Set(static_cast<int64_t>(variant_count_));
      return res;
    }
  }
  SectionSummary s;
  s.thread = t;
  s.has_dict = det != nullptr;
  s.arch = std::move(arch);
  s.dict = std::move(dict);
  s.base = res;  // translation was paid on an earlier run; res excludes it
  if (full) {
    // Least recently replayed lives at the back (Run swaps hits to the
    // front); drop it to make room.
    ring.summaries.pop_back();
    obs_invalidations_->Add();
  } else {
    ++variant_count_;
  }
  ring.summaries.insert(ring.summaries.begin(), std::move(s));
  obs_records_->Add();
  obs_sections_->Set(static_cast<int64_t>(table_.size()));
  obs_variants_->Set(static_cast<int64_t>(variant_count_));
  return res;
}

vm::ExecResult SectionCache::ShadowVerifyHit(const SectionSummary& s, vm::Interpreter& interp,
                                             const vm::Program& program, vm::ThreadId t,
                                             vm::CpuState& cpu, vm::Memory& mem,
                                             FlowDetector* det) {
  obs_shadow_checks_->Add();
  // Replay into copies; the authoritative emulation below runs on the
  // real state, so a divergence can never corrupt the simulation.
  vm::CpuState shadow_cpu = cpu;
  vm::Memory shadow_mem = mem;
  ApplyArch(s.arch, shadow_cpu, shadow_mem);
  std::optional<FlowDetector> shadow_det;
  if (det != nullptr) {
    shadow_det.emplace(det->CloneForShadow());
    shadow_det->ApplySection(s.dict, t, resolved_);
  }
  const vm::ExecResult res = Plain(interp, program, t, cpu, mem, det);

  const char* divergence = nullptr;
  if (shadow_cpu.regs != cpu.regs || shadow_cpu.cmp != cpu.cmp) {
    divergence = "cpu state";
  } else if (shadow_mem.Snapshot() != mem.Snapshot()) {
    divergence = "memory";
  } else if (det != nullptr && !shadow_det->DeepEquals(*det)) {
    divergence = "flow dictionary";
  } else if (res.instructions != s.base.instructions ||
             res.guest_cycles != s.base.guest_cycles ||
             res.direct_cycles != s.base.direct_cycles || res.translated) {
    divergence = "exec result";
  }
  if (divergence != nullptr) {
    std::fprintf(stderr,
                 "shadow-verify: section cache replay diverged from full emulation\n"
                 "  program: %s (id %llu)  thread: %u  divergence: %s\n",
                 program.name.c_str(), static_cast<unsigned long long>(program.id), t,
                 divergence);
    std::abort();
  }
  return res;
}

void SectionCache::Invalidate(uint64_t program_id) {
  ProgramEntry* pe = table_.Find(program_id);
  if (pe == nullptr) {
    return;
  }
  size_t dropped = 0;
  for (const ThreadRing& ring : pe->rings) {
    dropped += ring.summaries.size();
  }
  variant_count_ -= dropped;
  obs_invalidations_->Add(static_cast<uint64_t>(dropped));
  table_.Erase(program_id);
  obs_sections_->Set(static_cast<int64_t>(table_.size()));
  obs_variants_->Set(static_cast<int64_t>(variant_count_));
}

void SectionCache::Clear() {
  obs_invalidations_->Add(static_cast<uint64_t>(variant_count_));
  table_.Clear();
  variant_count_ = 0;
  obs_sections_->Set(0);
  obs_variants_->Set(0);
}

}  // namespace whodunit::shm
