// Flow-summary cache: memoized critical-section execution (§7.2).
//
// Whodunit's dominant cost is emulating critical sections that are
// short and executed over and over (queue push/pop, allocator paths —
// paper §3, Table 3). The first time a section runs, the cache records
// its *net effect* — architectural (vm::ArchEffects: the read-set
// fingerprint and the final register/memory/flag writes with MOV
// chains and final compares kept symbolic) and dictionary-side
// (shm::DictEffects: propagations, poisonings, consume ops, role
// updates with contexts kept symbolic) — in a ring keyed by
// (program id, executing thread). Subsequent executions whose
// fingerprints match replay the summary and bypass the MiniVM
// dispatch loop entirely.
//
// Invalidation is structural rather than epochal:
//   * guest-code change  — programs are immutable and get fresh ids
//     from the builder, so a rebuilt section simply misses;
//   * fingerprint mismatch — a pinned value or dictionary shape
//     differs; the cold run records a new variant into the
//     (program, thread) ring (`max_variants`);
//   * demotion-state / window state — never stale by construction:
//     demotion checks, window dedup and flow emission re-execute live
//     during replay, and summaries whose behavior depended on the
//     inherited consume window pin it in their fingerprint;
//   * translation-cache flush — a summary only replays while the
//     interpreter still holds the translation (IsTranslated), so the
//     re-translation cost is paid by a real cold run.
//
// Shadow-verify mode (WHODUNIT_SHADOW_VERIFY, on in the asan-ubsan
// preset) replays every hit against copies of the machine and
// dictionary state, then runs the authoritative full emulation and
// aborts on any divergence — the fast path stays honest.
#ifndef SRC_SHM_SECTION_CACHE_H_
#define SRC_SHM_SECTION_CACHE_H_

#include <cstdint>
#include <utility>
#include <vector>

#include "src/obs/metrics.h"
#include "src/shm/flow_detector.h"
#include "src/shm/section_summary.h"
#include "src/util/robin_hood.h"
#include "src/vm/interpreter.h"

namespace whodunit::shm {

#ifdef WHODUNIT_SHADOW_VERIFY
inline constexpr bool kShadowVerifyDefault = true;
#else
inline constexpr bool kShadowVerifyDefault = false;
#endif

class SectionCache {
 public:
  struct Config {
    bool enabled = true;
    // Fingerprint variants retained per (program, thread) ring; a full
    // ring evicts the least recently replayed. Sections whose pinned
    // values walk a bounded set (a table section whose fingerprint pins
    // the row index, a queue fingerprinting its depth) get one variant
    // per distinct value, so the default covers a 64-value working set
    // for each thread before anything is evicted.
    size_t max_variants = 64;
    // Churn guard: once a full ring has evicted this many summaries
    // while replaying fewer hits than evictions, that (program, thread)
    // ring is demoted to plain emulation for good. Recording costs
    // several times a plain run, so a section whose pinned values walk
    // an unbounded set (a monotonically growing depth) would otherwise
    // turn the cache into a steady-state slowdown. 0 disables.
    uint32_t churn_demote_records = 32;
    // Re-emulate every hit and assert equivalence (debug).
    bool shadow_verify = kShadowVerifyDefault;
  };

  SectionCache() : SectionCache(Config{}) {}
  explicit SectionCache(Config config);

  // Executes `program` through the cache. Semantically identical to
  // interp.ExecuteWith(program, t, cpu, mem, det) — including the
  // returned simulated-cost accounting — but replays a stored summary
  // when one matches the live machine/dictionary state. `det` may be
  // null (architectural effects only).
  //
  // Defined inline so the steady-state scan + replay compiles into the
  // caller; everything past a fingerprint miss goes out-of-line.
  vm::ExecResult Run(vm::Interpreter& interp, const vm::Program& program, vm::ThreadId t,
                     vm::CpuState& cpu, vm::Memory& mem, FlowDetector* det) {
    if (config_.enabled) {
      ProgramEntry* pe = table_.Find(program.id);
      if (pe != nullptr && t < pe->rings.size() && interp.IsTranslated(program.id)) {
        ThreadRing& ring = pe->rings[t];
        std::vector<SectionSummary>& sums = ring.summaries;
        const bool want_dict = det != nullptr;
        for (size_t i = 0; i < sums.size(); ++i) {
          SectionSummary& s = sums[i];
          if (s.has_dict != want_dict) {
            continue;
          }
          if (!MatchArch(s.arch, cpu, mem)) {
            continue;
          }
          if (want_dict && !det->MatchSection(s.dict, t, &resolved_)) {
            continue;
          }
          ++hits_;
          ++ring.replay_hits;
          obs_hits_->Add();
          if (i != 0) {
            // Keep the ring in replay-recency order: repeated sections
            // match at the front, and eviction drops the back.
            std::swap(sums[0], s);
          }
          SectionSummary& m = sums[0];
          if (config_.shadow_verify) {
            return ShadowVerifyHit(m, interp, program, t, cpu, mem, det);
          }
          ApplyArch(m.arch, cpu, mem);
          if (want_dict) {
            det->ApplySection(m.dict, t, resolved_);
          }
          return m.base;
        }
        if (!sums.empty()) {
          obs_fingerprint_misses_->Add();
        }
      }
    }
    return RunMiss(interp, program, t, cpu, mem, det);
  }

  // Drops all summaries for one program / for everything.
  void Invalidate(uint64_t program_id);
  void Clear();

  uint64_t hits() const { return hits_; }
  uint64_t misses() const { return misses_; }
  size_t sections() const { return table_.size(); }
  size_t variants() const { return variant_count_; }

 private:
  // Summaries recorded by one thread for one program, most recently
  // replayed first. Keying the ring per (program, thread) keeps one
  // thread's walking fingerprints (its own row indices, its own queue
  // slots) from evicting another thread's working set, and drops the
  // per-summary thread check from the hit scan.
  struct ThreadRing {
    std::vector<SectionSummary> summaries;
    // Replay/eviction tallies for the churn guard: a ring whose
    // evictions outpace its hits past `churn_demote_records` is paying
    // record cost on ~every run and gets demoted.
    uint64_t replay_hits = 0;
    uint32_t evictions = 0;
    bool demoted = false;
  };
  struct ProgramEntry {
    std::vector<ThreadRing> rings;  // dense, indexed by ThreadId
    // Set when a recording declared the program uncacheable (effect
    // overflow, mid-section context change, lock held at exit): skip
    // the recording overhead on later runs, for every thread.
    bool never_cache = false;
  };

  static vm::ExecResult Plain(vm::Interpreter& interp, const vm::Program& program,
                              vm::ThreadId t, vm::CpuState& cpu, vm::Memory& mem,
                              FlowDetector* det);

  // Single gather pass: reads every input's live value into arch_vals_
  // (ApplyArch reuses them — a section may overwrite its own inputs)
  // and fail-fasts on a pinned-value mismatch. Register pins are
  // checked first — they're free to read — while the memory inputs'
  // bucket lines stream in behind a prefetch sweep.
  bool MatchArch(const vm::ArchEffects& fx, const vm::CpuState& cpu, const vm::Memory& mem) {
    if (fx.pin_initial_cmp && cpu.cmp != fx.initial_cmp) {
      return false;
    }
    const size_t n = fx.inputs.size();
    for (size_t i = 0; i < n; ++i) {
      const vm::ArchInput& in = fx.inputs[i];
      if (in.loc.kind == vm::Loc::Kind::kReg) {
        const uint64_t live = cpu.regs[in.loc.addr];
        if (in.required && live != in.value) {
          return false;
        }
        arch_vals_[i] = live;
      } else {
        mem.Prefetch(in.loc.addr);
      }
    }
    for (size_t i = 0; i < n; ++i) {
      const vm::ArchInput& in = fx.inputs[i];
      if (in.loc.kind != vm::Loc::Kind::kReg) {
        const uint64_t live = mem.Read(in.loc.addr);
        if (in.required && live != in.value) {
          return false;
        }
        arch_vals_[i] = live;
      }
    }
    return true;
  }

  // Writes the recorded final state; only valid immediately after a
  // successful MatchArch (consumes arch_vals_).
  void ApplyArch(const vm::ArchEffects& fx, vm::CpuState& cpu, vm::Memory& mem) const {
    for (const vm::ArchWrite& w : fx.writes) {
      uint64_t v;
      switch (w.kind) {
        case vm::ArchWrite::Kind::kCopy:
          v = arch_vals_[w.input];
          break;
        case vm::ArchWrite::Kind::kAffine:
          v = arch_vals_[w.input] + w.delta;
          break;
        case vm::ArchWrite::Kind::kConcrete:
        default:
          v = w.value;
          break;
      }
      if (w.loc.kind == vm::Loc::Kind::kReg) {
        cpu.regs[w.loc.addr] = v;
      } else {
        mem.Write(w.loc.addr, v);
      }
    }
    switch (fx.final_cmp_kind) {
      case vm::ArchEffects::CmpKind::kInitial:
        break;  // flags never written: replay leaves them untouched
      case vm::ArchEffects::CmpKind::kSym:
        cpu.cmp = vm::internal::Sign(
            static_cast<int64_t>(arch_vals_[fx.final_cmp_input] + fx.final_cmp_delta) -
            fx.final_cmp_imm);
        break;
      case vm::ArchEffects::CmpKind::kConcrete:
      default:
        cpu.cmp = fx.final_cmp;
        break;
    }
  }

  vm::ExecResult RunMiss(vm::Interpreter& interp, const vm::Program& program, vm::ThreadId t,
                         vm::CpuState& cpu, vm::Memory& mem, FlowDetector* det);
  vm::ExecResult RecordCold(vm::Interpreter& interp, const vm::Program& program,
                            vm::ThreadId t, vm::CpuState& cpu, vm::Memory& mem,
                            FlowDetector* det);
  vm::ExecResult ShadowVerifyHit(const SectionSummary& s, vm::Interpreter& interp,
                                 const vm::Program& program, vm::ThreadId t,
                                 vm::CpuState& cpu, vm::Memory& mem, FlowDetector* det);

  Config config_;
  util::RobinHoodMap<uint64_t, ProgramEntry> table_;
  size_t variant_count_ = 0;
  uint64_t hits_ = 0;
  uint64_t misses_ = 0;
  // Scratch reused across calls so the hit path never allocates once
  // capacities are warm. arch_vals_ is bounded by the recording cap.
  FlowDetector::ResolvedDictInputs resolved_;
  uint64_t arch_vals_[vm::kMaxArchEntries];
  // Pooled recording scratch: RecordCold reuses these so cold runs
  // stop paying a fresh allocation burst per recording.
  SectionRecording scratch_rec_;
  vm::EffectRecorder<FlowDetector> scratch_arch_;

  // Self-observability handles, resolved once (see docs/METRICS.md).
  obs::Counter* obs_hits_;
  obs::Counter* obs_misses_;
  obs::Counter* obs_fingerprint_misses_;
  obs::Counter* obs_records_;
  obs::Counter* obs_uncacheable_;
  obs::Counter* obs_churn_demotions_;
  obs::Counter* obs_invalidations_;
  obs::Counter* obs_shadow_checks_;
  obs::Gauge* obs_sections_;
  obs::Gauge* obs_variants_;
};

}  // namespace whodunit::shm

#endif  // SRC_SHM_SECTION_CACHE_H_
