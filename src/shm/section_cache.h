// Flow-summary cache: memoized critical-section execution (§7.2).
//
// Whodunit's dominant cost is emulating critical sections that are
// short and executed over and over (queue push/pop, allocator paths —
// paper §3, Table 3). The first time a section runs, the cache records
// its *net effect* — architectural (vm::ArchEffects: the read-set
// fingerprint and the final register/memory/flag writes with MOV
// chains kept symbolic) and dictionary-side (shm::DictEffects:
// propagations, poisonings, consume ops, role updates with contexts
// kept symbolic) — keyed by the program id and the executing thread.
// Subsequent executions whose fingerprints match replay the summary
// and bypass the MiniVM dispatch loop entirely.
//
// Invalidation is structural rather than epochal:
//   * guest-code change  — programs are immutable and get fresh ids
//     from the builder, so a rebuilt section simply misses;
//   * fingerprint mismatch — a pinned value or dictionary shape
//     differs; the cold run records a new variant (per-section ring,
//     `max_variants`);
//   * demotion-state / window state — never stale by construction:
//     demotion checks, window dedup and flow emission re-execute live
//     during replay, and summaries whose behavior depended on the
//     inherited consume window pin it in their fingerprint;
//   * translation-cache flush — a summary only replays while the
//     interpreter still holds the translation (IsTranslated), so the
//     re-translation cost is paid by a real cold run.
//
// Shadow-verify mode (WHODUNIT_SHADOW_VERIFY, on in the asan-ubsan
// preset) replays every hit against copies of the machine and
// dictionary state, then runs the authoritative full emulation and
// aborts on any divergence — the fast path stays honest.
#ifndef SRC_SHM_SECTION_CACHE_H_
#define SRC_SHM_SECTION_CACHE_H_

#include <cstdint>
#include <vector>

#include "src/obs/metrics.h"
#include "src/shm/flow_detector.h"
#include "src/shm/section_summary.h"
#include "src/util/robin_hood.h"
#include "src/vm/interpreter.h"

namespace whodunit::shm {

#ifdef WHODUNIT_SHADOW_VERIFY
inline constexpr bool kShadowVerifyDefault = true;
#else
inline constexpr bool kShadowVerifyDefault = false;
#endif

class SectionCache {
 public:
  struct Config {
    bool enabled = true;
    // Fingerprint variants retained per (program, thread) section; a
    // ring evicts the oldest beyond this. Sections whose pinned values
    // walk (a queue fingerprinting its depth) get one variant per
    // distinct value, so steady-state workloads cycle within the ring.
    size_t max_variants = 8;
    // Churn guard: once a section has recorded this many variants while
    // replaying fewer hits than recordings, it is demoted to plain
    // emulation for good. Recording costs several times a plain run, so
    // a section whose pinned values walk on every execution (a queue
    // fingerprinting a monotonically growing depth) would otherwise
    // turn the cache into a steady-state slowdown. 0 disables.
    uint32_t churn_demote_records = 32;
    // Re-emulate every hit and assert equivalence (debug).
    bool shadow_verify = kShadowVerifyDefault;
  };

  SectionCache() : SectionCache(Config{}) {}
  explicit SectionCache(Config config);

  // Executes `program` through the cache. Semantically identical to
  // interp.ExecuteWith(program, t, cpu, mem, det) — including the
  // returned simulated-cost accounting — but replays a stored summary
  // when one matches the live machine/dictionary state. `det` may be
  // null (architectural effects only).
  //
  // Defined inline so the steady-state scan + replay compiles into the
  // caller; everything past a fingerprint miss goes out-of-line.
  vm::ExecResult Run(vm::Interpreter& interp, const vm::Program& program, vm::ThreadId t,
                     vm::CpuState& cpu, vm::Memory& mem, FlowDetector* det) {
    if (config_.enabled) {
      Variants* v = table_.Find(program.id);
      if (v != nullptr && !v->summaries.empty() && interp.IsTranslated(program.id)) {
        for (SectionSummary& s : v->summaries) {
          if (s.thread != t || s.has_dict != (det != nullptr)) {
            continue;
          }
          if (!MatchArch(s.arch, cpu, mem)) {
            continue;
          }
          if (det != nullptr && !det->MatchSection(s.dict, t, &resolved_)) {
            continue;
          }
          ++hits_;
          ++v->replay_hits;
          obs_hits_->Add();
          if (config_.shadow_verify) {
            return ShadowVerifyHit(s, interp, program, t, cpu, mem, det);
          }
          ApplyArch(s.arch, cpu, mem);
          if (det != nullptr) {
            det->ApplySection(s.dict, t, resolved_);
          }
          return s.base;
        }
        obs_fingerprint_misses_->Add();
      }
    }
    return RunMiss(interp, program, t, cpu, mem, det);
  }

  // Drops all summaries for one program / for everything.
  void Invalidate(uint64_t program_id);
  void Clear();

  uint64_t hits() const { return hits_; }
  uint64_t misses() const { return misses_; }
  size_t sections() const { return table_.size(); }
  size_t variants() const { return variant_count_; }

 private:
  struct Variants {
    std::vector<SectionSummary> summaries;
    size_t next_evict = 0;
    // Recording/replay tallies for the churn guard: a section whose
    // recordings outpace its hits past `churn_demote_records` is
    // paying record cost on ~every run and gets demoted.
    uint32_t records = 0;
    uint64_t replay_hits = 0;
    // Set when a recording declared the section uncacheable (effect
    // overflow, mid-section context change, lock held at exit) or the
    // churn guard demoted it: skip the recording overhead on later
    // runs too.
    bool never_cache = false;
  };

  static vm::ExecResult Plain(vm::Interpreter& interp, const vm::Program& program,
                              vm::ThreadId t, vm::CpuState& cpu, vm::Memory& mem,
                              FlowDetector* det);

  // Single gather pass: reads every input's live value into arch_vals_
  // (ApplyArch reuses them — a section may overwrite its own inputs)
  // and fail-fasts on a pinned-value mismatch.
  bool MatchArch(const vm::ArchEffects& fx, const vm::CpuState& cpu, const vm::Memory& mem) {
    if (cpu.cmp != fx.initial_cmp) {
      return false;
    }
    const size_t n = fx.inputs.size();
    for (size_t i = 0; i < n; ++i) {
      const vm::ArchInput& in = fx.inputs[i];
      const uint64_t live = in.loc.kind == vm::Loc::Kind::kReg ? cpu.regs[in.loc.addr]
                                                               : mem.Read(in.loc.addr);
      if (in.required && live != in.value) {
        return false;
      }
      arch_vals_[i] = live;
    }
    return true;
  }

  // Writes the recorded final state; only valid immediately after a
  // successful MatchArch (consumes arch_vals_).
  void ApplyArch(const vm::ArchEffects& fx, vm::CpuState& cpu, vm::Memory& mem) const {
    for (const vm::ArchWrite& w : fx.writes) {
      uint64_t v;
      switch (w.kind) {
        case vm::ArchWrite::Kind::kCopy:
          v = arch_vals_[w.input];
          break;
        case vm::ArchWrite::Kind::kAffine:
          v = arch_vals_[w.input] + w.delta;
          break;
        case vm::ArchWrite::Kind::kConcrete:
        default:
          v = w.value;
          break;
      }
      if (w.loc.kind == vm::Loc::Kind::kReg) {
        cpu.regs[w.loc.addr] = v;
      } else {
        mem.Write(w.loc.addr, v);
      }
    }
    cpu.cmp = fx.final_cmp;
  }

  vm::ExecResult RunMiss(vm::Interpreter& interp, const vm::Program& program, vm::ThreadId t,
                         vm::CpuState& cpu, vm::Memory& mem, FlowDetector* det);
  vm::ExecResult RecordCold(vm::Interpreter& interp, const vm::Program& program,
                            vm::ThreadId t, vm::CpuState& cpu, vm::Memory& mem,
                            FlowDetector* det);
  vm::ExecResult ShadowVerifyHit(const SectionSummary& s, vm::Interpreter& interp,
                                 const vm::Program& program, vm::ThreadId t,
                                 vm::CpuState& cpu, vm::Memory& mem, FlowDetector* det);

  Config config_;
  util::RobinHoodMap<uint64_t, Variants> table_;
  size_t variant_count_ = 0;
  uint64_t hits_ = 0;
  uint64_t misses_ = 0;
  // Scratch reused across calls so the hit path never allocates once
  // capacities are warm. arch_vals_ is bounded by the recording cap.
  FlowDetector::ResolvedDictInputs resolved_;
  uint64_t arch_vals_[vm::kMaxArchEntries];

  // Self-observability handles, resolved once (see docs/METRICS.md).
  obs::Counter* obs_hits_;
  obs::Counter* obs_misses_;
  obs::Counter* obs_fingerprint_misses_;
  obs::Counter* obs_records_;
  obs::Counter* obs_uncacheable_;
  obs::Counter* obs_churn_demotions_;
  obs::Counter* obs_invalidations_;
  obs::Counter* obs_shadow_checks_;
  obs::Gauge* obs_sections_;
  obs::Gauge* obs_variants_;
};

}  // namespace whodunit::shm

#endif  // SRC_SHM_SECTION_CACHE_H_
