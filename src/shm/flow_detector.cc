#include "src/shm/flow_detector.h"

#include <utility>

namespace whodunit::shm {

FlowDetector::FlowDetector(Config config, CtxtProvider ctxt_provider)
    : config_(config),
      ctxt_provider_(std::move(ctxt_provider)),
      obs_critical_sections_(&obs::Registry().GetCounter("shm.critical_sections")),
      obs_propagations_(&obs::Registry().GetCounter("shm.dict_propagations")),
      obs_associations_(&obs::Registry().GetCounter("shm.dict_associations")),
      obs_poisonings_(&obs::Registry().GetCounter("shm.invlctxt_poisonings")),
      obs_flushes_(&obs::Registry().GetCounter("shm.foreign_lock_flushes")),
      obs_flows_(&obs::Registry().GetCounter("shm.flows_detected")),
      obs_demotions_(&obs::Registry().GetCounter("shm.lock_demotions")),
      obs_window_dedups_(&obs::Registry().GetCounter("shm.consume_window_dedups")),
      obs_dict_size_(&obs::Registry().GetGauge("shm.dict_size")) {}

void FlowDetector::FlushIfForeign(const vm::Loc& loc, uint64_t lock_id) {
  auto it = dict_.find(loc);
  if (it != dict_.end() && it->second.lock_id != lock_id) {
    dict_.erase(it);
    obs_flushes_->Add();
  }
}

void FlowDetector::ClearThreadRegisters(vm::ThreadId t) {
  for (uint8_t r = 0; r < vm::kNumRegs; ++r) {
    dict_.erase(vm::Loc::Reg(t, r));
  }
}

void FlowDetector::OnLock(vm::ThreadId t, uint64_t lock_id) {
  ThreadState& ts = threads_[t];
  if (ts.lock_stack.empty()) {
    // Entering an outermost critical section: registers carry values
    // computed in un-emulated code, so they have no associated context
    // (§3.2, "live registers on entry"). A pending consume window is
    // over.
    ClearThreadRegisters(t);
    ts.post_window_left = 0;
    obs_critical_sections_->Add();
  }
  ts.lock_stack.push_back(lock_id);
}

void FlowDetector::OnUnlock(vm::ThreadId t, uint64_t lock_id) {
  ThreadState& ts = threads_[t];
  // Pop the matching lock (LIFO discipline is the normal case).
  for (size_t i = ts.lock_stack.size(); i-- > 0;) {
    if (ts.lock_stack[i] == lock_id) {
      ts.lock_stack.erase(ts.lock_stack.begin() + static_cast<long>(i));
      break;
    }
  }
  if (ts.lock_stack.empty()) {
    // Keep emulating for MAX instructions watching for consumption.
    ts.post_window_left = config_.post_window;
    ts.window_flows.clear();
    obs_dict_size_->Set(static_cast<int64_t>(dict_.size()));
  }
}

void FlowDetector::OnMov(vm::ThreadId t, const vm::Loc& dst, const vm::Loc& src) {
  ThreadState& ts = threads_[t];
  if (!InCriticalSection(ts)) {
    // Outside any critical section the algorithm does not propagate;
    // a write still clobbers whatever context the destination held.
    dict_.erase(dst);
    return;
  }
  const uint64_t lock_id = OutermostLock(ts);
  FlushIfForeign(src, lock_id);
  FlushIfForeign(dst, lock_id);

  auto it = dict_.find(src);
  if (it != dict_.end()) {
    // Propagation: dst inherits src's context, valid or invalid,
    // along with the identity of the value's original producer.
    dict_[dst] = Entry{it->second.ctxt, lock_id, it->second.producer};
    obs_propagations_->Add();
    return;
  }
  // Source has no context: the executing thread is contributing a
  // value it computed before entering the critical section. Associate
  // the thread's transaction context with the destination. Writing
  // such a value into *memory* is production of a resource.
  dict_[dst] = Entry{ctxt_provider_(t), lock_id, t};
  obs_associations_->Add();
  if (dst.is_mem()) {
    RecordProducer(lock_id, t);
  }
}

void FlowDetector::OnWriteValue(vm::ThreadId t, const vm::Loc& dst) {
  ThreadState& ts = threads_[t];
  if (!InCriticalSection(ts)) {
    dict_.erase(dst);
    return;
  }
  const uint64_t lock_id = OutermostLock(ts);
  // Non-MOV modification: immediate store, arithmetic result. The
  // location's value no longer carries any transaction's data.
  dict_[dst] = Entry{kInvalidCtxt, lock_id, t};
  obs_poisonings_->Add();
}

void FlowDetector::OnRead(vm::ThreadId t, const vm::Loc& src) {
  ThreadState& ts = threads_[t];
  if (InCriticalSection(ts) || ts.post_window_left <= 0) {
    // Reads inside critical sections are handled by OnMov propagation;
    // reads outside the consume window are un-emulated in the real
    // system.
    return;
  }
  auto it = dict_.find(src);
  if (it == dict_.end() || it->second.ctxt == kInvalidCtxt) {
    return;
  }
  // Consumption: the thread used, after leaving the critical section,
  // a value that carries a transaction context.
  const Entry entry = it->second;
  dict_.erase(it);
  RecordConsumer(entry.lock_id, t);
  if (entry.producer != t && !IsDemoted(entry.lock_id)) {
    const auto key = std::make_pair(entry.lock_id, entry.ctxt);
    for (const auto& seen : ts.window_flows) {
      if (seen == key) {
        obs_window_dedups_->Add();
        return;  // same logical flow, another word of the element
      }
    }
    ts.window_flows.push_back(key);
    ++flows_detected_;
    obs_flows_->Add();
    FlowEvent ev{entry.producer, t, entry.ctxt, entry.lock_id, src};
    flow_log_.push_back(ev);
    if (on_flow_) {
      on_flow_(ev);
    }
  }
}

void FlowDetector::OnRetire(vm::ThreadId t) {
  ThreadState& ts = threads_[t];
  if (!InCriticalSection(ts) && ts.post_window_left > 0) {
    --ts.post_window_left;
  }
}

void FlowDetector::RecordProducer(uint64_t lock_id, vm::ThreadId t) {
  LockRoles& roles = roles_[lock_id];
  roles.producers.insert(t);
  MaybeDemote(lock_id, roles);
}

void FlowDetector::RecordConsumer(uint64_t lock_id, vm::ThreadId t) {
  LockRoles& roles = roles_[lock_id];
  roles.consumers.insert(t);
  MaybeDemote(lock_id, roles);
}

void FlowDetector::MaybeDemote(uint64_t lock_id, LockRoles& roles) {
  if (!config_.detect_demotion || roles.demoted) {
    return;
  }
  // First common member of the two lists => not transaction flow
  // (the memory-allocator pattern, §3.4).
  const auto& small = roles.producers.size() <= roles.consumers.size() ? roles.producers
                                                                       : roles.consumers;
  const auto& large = roles.producers.size() <= roles.consumers.size() ? roles.consumers
                                                                       : roles.producers;
  for (vm::ThreadId t : small) {
    if (large.contains(t)) {
      roles.demoted = true;
      obs_demotions_->Add();
      if (on_demote_) {
        on_demote_(lock_id);
      }
      return;
    }
  }
}

bool FlowDetector::ShouldEmulate(uint64_t lock_id) const { return !IsDemoted(lock_id); }

bool FlowDetector::IsDemoted(uint64_t lock_id) const {
  auto it = roles_.find(lock_id);
  return it != roles_.end() && it->second.demoted;
}

const std::set<vm::ThreadId>& FlowDetector::producers_of(uint64_t lock_id) const {
  static const std::set<vm::ThreadId> kEmpty;
  auto it = roles_.find(lock_id);
  return it == roles_.end() ? kEmpty : it->second.producers;
}

const std::set<vm::ThreadId>& FlowDetector::consumers_of(uint64_t lock_id) const {
  static const std::set<vm::ThreadId> kEmpty;
  auto it = roles_.find(lock_id);
  return it == roles_.end() ? kEmpty : it->second.consumers;
}

}  // namespace whodunit::shm
