#include "src/shm/flow_detector.h"

#include <algorithm>
#include <utility>

namespace whodunit::shm {

FlowDetector::FlowDetector(Config config, CtxtProvider ctxt_provider)
    : config_(config),
      ctxt_provider_(std::move(ctxt_provider)),
      obs_critical_sections_(&obs::Registry().GetCounter("shm.critical_sections")),
      obs_propagations_(&obs::Registry().GetCounter("shm.dict_propagations")),
      obs_associations_(&obs::Registry().GetCounter("shm.dict_associations")),
      obs_poisonings_(&obs::Registry().GetCounter("shm.invlctxt_poisonings")),
      obs_flushes_(&obs::Registry().GetCounter("shm.foreign_lock_flushes")),
      obs_flows_(&obs::Registry().GetCounter("shm.flows_detected")),
      obs_demotions_(&obs::Registry().GetCounter("shm.lock_demotions")),
      obs_window_dedups_(&obs::Registry().GetCounter("shm.consume_window_dedups")),
      obs_dict_size_(&obs::Registry().GetGauge("shm.dict_size")) {}

const FlowDetector::Entry* FlowDetector::FindEntry(const vm::Loc& loc) {
  if (loc.is_mem()) {
    return mem_dict_.Find(loc.addr);
  }
  ThreadState& ts = St(loc.thread);
  const auto r = static_cast<uint32_t>(loc.addr);
  return (ts.reg_valid >> r) & 1u ? &ts.regs[r] : nullptr;
}

void FlowDetector::SetEntry(const vm::Loc& loc, const Entry& entry) {
  if (loc.is_mem()) {
    mem_dict_.Upsert(loc.addr, entry);
    return;
  }
  ThreadState& ts = St(loc.thread);
  const auto r = static_cast<uint32_t>(loc.addr);
  reg_entries_ += static_cast<size_t>(((ts.reg_valid >> r) & 1u) == 0);
  ts.reg_valid |= 1u << r;
  ts.regs[r] = entry;
}

bool FlowDetector::EraseEntry(const vm::Loc& loc) {
  if (loc.is_mem()) {
    return mem_dict_.Erase(loc.addr);
  }
  ThreadState& ts = St(loc.thread);
  const auto r = static_cast<uint32_t>(loc.addr);
  if (((ts.reg_valid >> r) & 1u) == 0) {
    return false;
  }
  ts.reg_valid &= ~(1u << r);
  --reg_entries_;
  return true;
}

void FlowDetector::FlushIfForeign(const vm::Loc& loc, uint64_t lock_id) {
  const Entry* e = FindEntry(loc);
  if (e != nullptr && e->lock_id != lock_id) {
    EraseEntry(loc);
    obs_flushes_->Add();
  }
}

void FlowDetector::ClearThreadRegisters(vm::ThreadId t) {
  ThreadState& ts = St(t);
  reg_entries_ -= std::popcount(ts.reg_valid);
  ts.reg_valid = 0;
}

void FlowDetector::OnLock(vm::ThreadId t, uint64_t lock_id) {
  ThreadState& ts = St(t);
  if (ts.lock_stack.empty()) {
    // Entering an outermost critical section: registers carry values
    // computed in un-emulated code, so they have no associated context
    // (§3.2, "live registers on entry"). A pending consume window is
    // over. With the bitmask register file this is one mask reset.
    ClearThreadRegisters(t);
    ts.post_window_left = 0;
    obs_critical_sections_->Add();
  }
  ts.lock_stack.push_back(lock_id);
}

void FlowDetector::OnUnlock(vm::ThreadId t, uint64_t lock_id) {
  ThreadState& ts = St(t);
  // Pop the matching lock (LIFO discipline is the normal case).
  for (size_t i = ts.lock_stack.size(); i-- > 0;) {
    if (ts.lock_stack[i] == lock_id) {
      ts.lock_stack.erase(ts.lock_stack.begin() + static_cast<long>(i));
      break;
    }
  }
  if (ts.lock_stack.empty()) {
    // Keep emulating for MAX instructions watching for consumption.
    ts.post_window_left = config_.post_window;
    ts.window_flows.clear();
    obs_dict_size_->Set(static_cast<int64_t>(dictionary_size()));
  }
}

void FlowDetector::OnMov(vm::ThreadId t, const vm::Loc& dst, const vm::Loc& src) {
  ThreadState& ts = St(t);
  if (!InCriticalSection(ts)) {
    // Outside any critical section the algorithm does not propagate;
    // a write still clobbers whatever context the destination held.
    EraseEntry(dst);
    return;
  }
  const uint64_t lock_id = OutermostLock(ts);
  FlushIfForeign(src, lock_id);
  FlushIfForeign(dst, lock_id);

  if (const Entry* e = FindEntry(src)) {
    // Propagation: dst inherits src's context, valid or invalid,
    // along with the identity of the value's original producer.
    SetEntry(dst, Entry{e->ctxt, lock_id, e->producer});
    obs_propagations_->Add();
    return;
  }
  // Source has no context: the executing thread is contributing a
  // value it computed before entering the critical section. Associate
  // the thread's transaction context with the destination. Writing
  // such a value into *memory* is production of a resource.
  SetEntry(dst, Entry{ctxt_provider_(t), lock_id, t});
  obs_associations_->Add();
  if (dst.is_mem()) {
    RecordProducer(lock_id, t);
  }
}

void FlowDetector::OnWriteValue(vm::ThreadId t, const vm::Loc& dst) {
  ThreadState& ts = St(t);
  if (!InCriticalSection(ts)) {
    EraseEntry(dst);
    return;
  }
  const uint64_t lock_id = OutermostLock(ts);
  // Non-MOV modification: immediate store, arithmetic result. The
  // location's value no longer carries any transaction's data.
  SetEntry(dst, Entry{kInvalidCtxt, lock_id, t});
  obs_poisonings_->Add();
}

void FlowDetector::OnRead(vm::ThreadId t, const vm::Loc& src) {
  ThreadState& ts = St(t);
  if (InCriticalSection(ts) || ts.post_window_left <= 0) {
    // Reads inside critical sections are handled by OnMov propagation;
    // reads outside the consume window are un-emulated in the real
    // system.
    return;
  }
  const Entry* found = FindEntry(src);
  if (found == nullptr || found->ctxt == kInvalidCtxt) {
    return;
  }
  // Consumption: the thread used, after leaving the critical section,
  // a value that carries a transaction context.
  const Entry entry = *found;
  EraseEntry(src);
  RecordConsumer(entry.lock_id, t);
  if (entry.producer != t && !IsDemoted(entry.lock_id)) {
    const auto key = std::make_pair(entry.lock_id, entry.ctxt);
    for (const auto& seen : ts.window_flows) {
      if (seen == key) {
        obs_window_dedups_->Add();
        return;  // same logical flow, another word of the element
      }
    }
    ts.window_flows.push_back(key);
    ++flows_detected_;
    obs_flows_->Add();
    FlowEvent ev{entry.producer, t, entry.ctxt, entry.lock_id, src};
    flow_log_.push_back(ev);
    if (on_flow_) {
      on_flow_(ev);
    }
  }
}

void FlowDetector::OnRetireBatch(vm::ThreadId t, int64_t n) {
  ThreadState& ts = St(t);
  if (!InCriticalSection(ts) && ts.post_window_left > 0) {
    ts.post_window_left -=
        static_cast<int>(std::min<int64_t>(n, ts.post_window_left));
  }
}

void FlowDetector::RecordProducer(uint64_t lock_id, vm::ThreadId t) {
  LockRoles& roles = roles_.GetOrInsert(lock_id);
  roles.producers.insert(t);
  MaybeDemote(lock_id, roles);
}

void FlowDetector::RecordConsumer(uint64_t lock_id, vm::ThreadId t) {
  LockRoles& roles = roles_.GetOrInsert(lock_id);
  roles.consumers.insert(t);
  MaybeDemote(lock_id, roles);
}

void FlowDetector::MaybeDemote(uint64_t lock_id, LockRoles& roles) {
  if (!config_.detect_demotion || roles.demoted) {
    return;
  }
  // A common member of the two lists => not transaction flow (the
  // memory-allocator pattern, §3.4). One word AND in the dense case.
  if (roles.producers.Intersects(roles.consumers)) {
    roles.demoted = true;
    obs_demotions_->Add();
    if (on_demote_) {
      on_demote_(lock_id);
    }
  }
}

bool FlowDetector::ShouldEmulate(uint64_t lock_id) const { return !IsDemoted(lock_id); }

bool FlowDetector::IsDemoted(uint64_t lock_id) const {
  const LockRoles* roles = roles_.Find(lock_id);
  return roles != nullptr && roles->demoted;
}

ThreadSet FlowDetector::producers_of(uint64_t lock_id) const {
  const LockRoles* roles = roles_.Find(lock_id);
  return roles == nullptr ? ThreadSet{} : roles->producers;
}

ThreadSet FlowDetector::consumers_of(uint64_t lock_id) const {
  const LockRoles* roles = roles_.Find(lock_id);
  return roles == nullptr ? ThreadSet{} : roles->consumers;
}

}  // namespace whodunit::shm
