#include "src/shm/flow_detector.h"

#include <algorithm>
#include <utility>

namespace whodunit::shm {

FlowDetector::FlowDetector(Config config, CtxtProvider ctxt_provider)
    : config_(config),
      ctxt_provider_(std::move(ctxt_provider)),
      obs_critical_sections_(&obs::Registry().GetCounter("shm.critical_sections")),
      obs_propagations_(&obs::Registry().GetCounter("shm.dict_propagations")),
      obs_associations_(&obs::Registry().GetCounter("shm.dict_associations")),
      obs_poisonings_(&obs::Registry().GetCounter("shm.invlctxt_poisonings")),
      obs_flushes_(&obs::Registry().GetCounter("shm.foreign_lock_flushes")),
      obs_flows_(&obs::Registry().GetCounter("shm.flows_detected")),
      obs_demotions_(&obs::Registry().GetCounter("shm.lock_demotions")),
      obs_window_dedups_(&obs::Registry().GetCounter("shm.consume_window_dedups")),
      obs_dict_size_(&obs::Registry().GetGauge("shm.dict_size")) {}

void FlowDetector::FlushIfForeign(const vm::Loc& loc, uint64_t lock_id) {
  const Entry* e = FindEntry(loc);
  if (e != nullptr && e->lock_id != lock_id) {
    EraseEntry(loc);
    ++tally_.flushes;
    if (rec_ != nullptr) {
      rec_->NoteFlush(loc);
    }
  }
}

// --- Fast-path tails -------------------------------------------------

// The consume-window read path past the single lock-stack/window test:
// one folded dictionary probe, then role/demotion/dedup bookkeeping
// for the (rare) hit.
void FlowDetector::ConsumeInWindow(vm::ThreadId t, ThreadState& ts, const vm::Loc& src) {
  Entry entry;
  if (src.is_mem()) {
    const Entry* e = mem_dict_.Find(src.addr);
    if (e == nullptr || e->ctxt == kInvalidCtxt) {
      return;
    }
    entry = *e;
    mem_dict_.Erase(src.addr);
  } else {
    ThreadState& ss = St(src.thread);
    const auto r = static_cast<uint32_t>(src.addr);
    if (((ss.reg_valid >> r) & 1u) == 0 || ss.regs[r].ctxt == kInvalidCtxt) {
      return;
    }
    entry = ss.regs[r];
    ss.reg_valid &= ~(1u << r);
    --reg_entries_;
  }
  // Consumption: the thread used, after leaving the critical section,
  // a value that carries a transaction context.
  LockRoles& roles = RolesOf(entry.lock_id);
  if (roles.consumers.insert(t)) {
    MaybeDemote(entry.lock_id, roles, roles.producers, t);
  }
  if (entry.producer != t && !roles.demoted) {
    const auto key = std::make_pair(entry.lock_id, entry.ctxt);
    for (const auto& seen : ts.window_flows) {
      if (seen == key) {
        ++tally_.window_dedups;
        return;  // same logical flow, another word of the element
      }
    }
    ts.window_flows.push_back(key);
    ++flows_detected_;
    obs_flows_->Add();
    FlowEvent ev{entry.producer, t, entry.ctxt, entry.lock_id, src};
    flow_log_.push_back(ev);
    if (on_flow_) {
      on_flow_(ev);
    }
  }
}

// Pop for the non-LIFO unlock order (legal, rare): release the
// matching lock wherever it sits in the stack.
void FlowDetector::PopLockSlow(ThreadState& ts, uint64_t lock_id) {
  for (size_t i = ts.lock_stack.size(); i-- > 0;) {
    if (ts.lock_stack[i] == lock_id) {
      ts.lock_stack.erase(ts.lock_stack.begin() + static_cast<long>(i));
      return;
    }
  }
}

// --- Recording variants ----------------------------------------------
//
// Single-path bodies used during cold-run section recording: same
// dictionary transitions and counter totals as the inline fast paths,
// plus a Note* classification per event into rec_.

void FlowDetector::RecOnLock(vm::ThreadId t, uint64_t lock_id) {
  ThreadState& ts = St(t);
  if (ts.lock_stack.empty()) {
    ClearThreadRegisters(t);
    ts.post_window_left = 0;
    ++tally_.critical_sections;
    if (--sections_until_flush_ == 0) {
      FlushObsTallies();
    }
    rec_->NoteLockReset(lock_id);
  }
  ts.lock_stack.push_back(lock_id);
}

void FlowDetector::RecOnUnlock(vm::ThreadId t, uint64_t lock_id) {
  ThreadState& ts = St(t);
  if (!ts.lock_stack.empty() && ts.lock_stack.back() == lock_id) {
    ts.lock_stack.pop_back();
  } else {
    PopLockSlow(ts, lock_id);
  }
  if (ts.lock_stack.empty()) {
    // Keep emulating for MAX instructions watching for consumption.
    ts.post_window_left = config_.post_window;
    ts.window_flows.clear();
    obs_dict_size_->Set(static_cast<int64_t>(dictionary_size()));
    rec_->NoteWindowStart();
  }
}

void FlowDetector::RecOnMov(vm::ThreadId t, const vm::Loc& dst, const vm::Loc& src) {
  ThreadState& ts = St(t);
  if (!InCriticalSection(ts)) {
    rec_->NoteOutsideErase(dst);
    EraseEntry(dst);
    return;
  }
  const uint64_t lock_id = OutermostLock(ts);
  {
    // Fingerprint the source's raw pre-state before the foreign flush.
    const Entry* pre = FindEntry(src);
    rec_->NoteMovSrcAccess(src, pre != nullptr, pre != nullptr ? pre->ctxt : kInvalidCtxt,
                           pre != nullptr ? pre->lock_id : 0,
                           pre != nullptr ? pre->producer : 0, lock_id);
  }
  FlushIfForeign(src, lock_id);
  FlushIfForeign(dst, lock_id);

  if (const Entry* e = FindEntry(src)) {
    // Propagation: dst inherits src's context, valid or invalid,
    // along with the identity of the value's original producer.
    SetEntry(dst, Entry{e->ctxt, lock_id, e->producer});
    ++tally_.propagations;
    rec_->NotePropagate(dst, src, lock_id);
    return;
  }
  // Source has no context: the executing thread is contributing a
  // value it computed before entering the critical section. Associate
  // the thread's transaction context with the destination. Writing
  // such a value into *memory* is production of a resource.
  const CtxtId current = ctxt_provider_(t);
  SetEntry(dst, Entry{current, lock_id, t});
  ++tally_.associations;
  rec_->NoteAssociate(dst, lock_id, current, dst.is_mem());
  if (dst.is_mem()) {
    RecordProducer(lock_id, t);
  }
}

void FlowDetector::RecOnWriteValue(vm::ThreadId t, const vm::Loc& dst) {
  ThreadState& ts = St(t);
  if (!InCriticalSection(ts)) {
    rec_->NoteOutsideErase(dst);
    EraseEntry(dst);
    return;
  }
  const uint64_t lock_id = OutermostLock(ts);
  SetEntry(dst, Entry{kInvalidCtxt, lock_id, t});
  ++tally_.poisonings;
  rec_->NotePoison(dst, lock_id);
}

void FlowDetector::RecOnRead(vm::ThreadId t, const vm::Loc& src) {
  ThreadState& ts = St(t);
  if (InCriticalSection(ts)) {
    return;
  }
  rec_->NoteOutsideWindowUse();
  if (ts.post_window_left <= 0) {
    return;
  }
  const Entry* found = FindEntry(src);
  rec_->NoteConsumeAccess(src, found != nullptr,
                          found != nullptr ? found->ctxt : kInvalidCtxt,
                          found != nullptr ? found->lock_id : 0,
                          found != nullptr ? found->producer : 0);
  if (found == nullptr || found->ctxt == kInvalidCtxt) {
    return;
  }
  const Entry entry = *found;
  rec_->NoteConsume(src, entry.lock_id, entry.producer);
  EraseEntry(src);
  RecordConsumer(entry.lock_id, t);
  if (entry.producer != t && !IsDemoted(entry.lock_id)) {
    const auto key = std::make_pair(entry.lock_id, entry.ctxt);
    for (const auto& seen : ts.window_flows) {
      if (seen == key) {
        ++tally_.window_dedups;
        return;  // same logical flow, another word of the element
      }
    }
    ts.window_flows.push_back(key);
    ++flows_detected_;
    obs_flows_->Add();
    FlowEvent ev{entry.producer, t, entry.ctxt, entry.lock_id, src};
    flow_log_.push_back(ev);
    if (on_flow_) {
      on_flow_(ev);
    }
  }
}

// --- Role lists ------------------------------------------------------

void FlowDetector::RecordProducer(uint64_t lock_id, vm::ThreadId t) {
  LockRoles& roles = RolesOf(lock_id);
  if (roles.producers.insert(t)) {
    MaybeDemote(lock_id, roles, roles.consumers, t);
  }
}

void FlowDetector::RecordConsumer(uint64_t lock_id, vm::ThreadId t) {
  LockRoles& roles = RolesOf(lock_id);
  if (roles.consumers.insert(t)) {
    MaybeDemote(lock_id, roles, roles.producers, t);
  }
}

void FlowDetector::MaybeDemote(uint64_t lock_id, LockRoles& roles,
                               const ThreadSet& other_role, vm::ThreadId t) {
  if (!config_.detect_demotion || roles.demoted) {
    return;
  }
  // A common member of the two lists => not transaction flow (the
  // memory-allocator pattern, §3.4). Only the thread just added to one
  // list can have created an overlap, so a single membership probe of
  // the other list maintains the intersection invariant.
  if (other_role.contains(t)) {
    roles.demoted = true;
    obs_demotions_->Add();
    if (on_demote_) {
      on_demote_(lock_id);
    }
  }
}

bool FlowDetector::ShouldEmulate(uint64_t lock_id) const { return !IsDemoted(lock_id); }

bool FlowDetector::IsDemoted(uint64_t lock_id) const {
  const LockRoles* roles = roles_.Find(lock_id);
  return roles != nullptr && roles->demoted;
}

ThreadSet FlowDetector::producers_of(uint64_t lock_id) const {
  const LockRoles* roles = roles_.Find(lock_id);
  return roles == nullptr ? ThreadSet{} : roles->producers;
}

ThreadSet FlowDetector::consumers_of(uint64_t lock_id) const {
  const LockRoles* roles = roles_.Find(lock_id);
  return roles == nullptr ? ThreadSet{} : roles->consumers;
}

// --- Section-summary recording and replay ---------------------------

bool FlowDetector::CanRecordSection(vm::ThreadId t) const {
  return t >= threads_.size() || threads_[t].lock_stack.empty();
}

void FlowDetector::BeginSectionRecording(SectionRecording* rec, vm::ThreadId t) {
  rec_ = rec;
  rec_thread_ = t;
  const ThreadState* ts = t < threads_.size() ? &threads_[t] : nullptr;
  rec->Begin(t, ts != nullptr ? ts->post_window_left : 0,
             ts != nullptr ? ts->window_flows : std::vector<std::pair<uint64_t, CtxtId>>{},
             config_.post_window);
}

DictEffects FlowDetector::EndSectionRecording() {
  SectionRecording* rec = rec_;
  rec_ = nullptr;
  const ThreadState* ts = rec_thread_ < threads_.size() ? &threads_[rec_thread_] : nullptr;
  const bool end_in_section = ts != nullptr && !ts->lock_stack.empty();
  return rec->Finish(ts != nullptr ? ts->post_window_left : 0, end_in_section);
}

bool FlowDetector::MatchSection(const DictEffects& fx, vm::ThreadId t,
                                ResolvedDictInputs* out) const {
  if (!fx.cacheable || fx.post_window_config != config_.post_window) {
    return false;
  }
  const ThreadState* ts = t < threads_.size() ? &threads_[t] : nullptr;
  if (ts != nullptr && !ts->lock_stack.empty()) {
    return false;
  }
  if (fx.pin_pre_window &&
      (ts != nullptr ? ts->post_window_left : 0) != fx.pre_post_window) {
    return false;
  }
  if (fx.pin_pre_window_flows) {
    if (ts != nullptr ? ts->window_flows != fx.pre_window_flows
                      : !fx.pre_window_flows.empty()) {
      return false;
    }
  }
  // Prefetch the memory-namespace buckets up front: the validation
  // loop then probes lines already in flight instead of serializing
  // one miss per input.
  for (const DictInput& in : fx.inputs) {
    if (in.loc.is_mem()) {
      mem_dict_.Prefetch(in.loc.addr);
    }
  }
  out->ctxts.assign(fx.inputs.size(), kInvalidCtxt);
  out->producers.assign(fx.inputs.size(), 0);
  for (size_t i = 0; i < fx.inputs.size(); ++i) {
    const DictInput& in = fx.inputs[i];
    const Entry* e = FindEntryConst(in.loc);
    switch (in.shape) {
      case DictInput::Shape::kAbsent:
        if (e != nullptr) {
          return false;
        }
        continue;
      case DictInput::Shape::kForeign:
        // Any entry under a different lock flushes identically.
        if (e == nullptr || e->lock_id == in.lock_id) {
          return false;
        }
        break;
      case DictInput::Shape::kPresent:
        if (e == nullptr || (e->ctxt == kInvalidCtxt) != in.invalid) {
          return false;
        }
        if (in.role == DictInput::Role::kMovSrc) {
          // lock_id is the section's lock: a foreign entry would have
          // been flushed and treated as absent.
          if (e->lock_id != in.lock_id ||
              (!in.invalid && (e->producer == t) != in.producer_self)) {
            return false;
          }
        } else if (!in.invalid &&
                   (e->lock_id != in.lock_id ||
                    (e->producer == t) != in.producer_self)) {
          // Consume role: the entry's own lock feeds RecordConsumer and
          // the demotion check; don't-care for invalid entries.
          return false;
        }
        break;
    }
    out->ctxts[i] = e->ctxt;
    out->producers[i] = e->producer;
  }
  if (fx.uses_current) {
    out->has_current = true;
    out->current = ctxt_provider_(t);
    // Consume branches distinguish valid from invalid contexts; the
    // replay's current context must be in the cold run's class.
    if ((out->current == kInvalidCtxt) != fx.current_was_invalid) {
      return false;
    }
  }
  return true;
}

void FlowDetector::ApplySection(const DictEffects& fx, vm::ThreadId t,
                                const ResolvedDictInputs& r) {
  ThreadState& ts = St(t);
  for (const DictOp& op : fx.ops) {
    switch (op.kind) {
      case DictOp::Kind::kLockReset:
        ClearThreadRegisters(t);
        ts.post_window_left = 0;
        ++tally_.critical_sections;
        if (--sections_until_flush_ == 0) {
          FlushObsTallies();
        }
        break;
      case DictOp::Kind::kWindowStart:
        ts.post_window_left = config_.post_window;
        ts.window_flows.clear();
        break;
      case DictOp::Kind::kProduce:
        RecordProducer(op.lock_id, t);
        break;
      case DictOp::Kind::kConsume: {
        RecordConsumer(op.lock_id, t);
        // Eligibility by producer identity was pinned by the
        // fingerprint; demotion and window dedup depend on live state
        // and symbolic context resolution, so they re-execute here.
        if (!op.flow_eligible || IsDemoted(op.lock_id)) {
          break;
        }
        const CtxtId ctxt = ResolveCtxt(op.ctxt, r);
        const auto key = std::make_pair(op.lock_id, ctxt);
        bool duplicate = false;
        for (const auto& seen : ts.window_flows) {
          if (seen == key) {
            duplicate = true;
            break;
          }
        }
        if (duplicate) {
          ++tally_.window_dedups;
          break;
        }
        ts.window_flows.push_back(key);
        ++flows_detected_;
        obs_flows_->Add();
        FlowEvent ev{ResolveProducer(op.producer, r), t, ctxt, op.lock_id, op.loc};
        flow_log_.push_back(ev);
        if (on_flow_) {
          on_flow_(ev);
        }
        break;
      }
    }
  }
  for (const DictWrite& w : fx.writes) {
    if (w.loc.is_mem()) {
      mem_dict_.Prefetch(w.loc.addr);
    }
  }
  for (const DictWrite& w : fx.writes) {
    if (w.erase) {
      EraseEntry(w.loc);
    } else {
      SetEntry(w.loc, Entry{ResolveCtxt(w.ctxt, r), w.lock_id, ResolveProducer(w.producer, r)});
    }
  }
  ts.post_window_left = fx.final_post_window;
  tally_.propagations += fx.n_propagations;
  tally_.associations += fx.n_associations;
  tally_.poisonings += fx.n_poisonings;
  tally_.flushes += fx.n_flushes;
  obs_dict_size_->Set(static_cast<int64_t>(dictionary_size()));
}

FlowDetector FlowDetector::CloneForShadow() const {
  FlowDetector clone(*this);
  clone.on_flow_ = nullptr;
  clone.on_demote_ = nullptr;
  clone.rec_ = nullptr;
  return clone;
}

bool FlowDetector::DeepEquals(const FlowDetector& other) const {
  if (flows_detected_ != other.flows_detected_ || flow_log_.size() != other.flow_log_.size()) {
    return false;
  }
  for (size_t i = 0; i < flow_log_.size(); ++i) {
    if (!(flow_log_[i] == other.flow_log_[i])) {
      return false;
    }
  }
  if (mem_dict_.size() != other.mem_dict_.size()) {
    return false;
  }
  bool equal = true;
  mem_dict_.ForEach([&](const vm::Addr& a, const Entry& e) {
    const Entry* oe = other.mem_dict_.Find(a);
    if (oe == nullptr || !(*oe == e)) {
      equal = false;
    }
  });
  if (!equal) {
    return false;
  }
  // Thread states beyond either vector's size are default-constructed.
  const ThreadState empty_ts;
  const size_t nthreads = std::max(threads_.size(), other.threads_.size());
  for (size_t i = 0; i < nthreads; ++i) {
    const ThreadState& a = i < threads_.size() ? threads_[i] : empty_ts;
    const ThreadState& b = i < other.threads_.size() ? other.threads_[i] : empty_ts;
    if (a.lock_stack != b.lock_stack || a.post_window_left != b.post_window_left ||
        a.window_flows != b.window_flows || a.reg_valid != b.reg_valid) {
      return false;
    }
    for (uint32_t r = 0; r < vm::kNumRegs; ++r) {
      if (((a.reg_valid >> r) & 1u) != 0 && !(a.regs[r] == b.regs[r])) {
        return false;
      }
    }
  }
  if (roles_.size() != other.roles_.size()) {
    return false;
  }
  roles_.ForEach([&](const uint64_t& lock, const LockRoles& lr) {
    const LockRoles* olr = other.roles_.Find(lock);
    if (olr == nullptr || lr.demoted != olr->demoted || !(lr.producers == olr->producers) ||
        !(lr.consumers == olr->consumers)) {
      equal = false;
    }
  });
  return equal;
}

}  // namespace whodunit::shm
