// Post-mortem stitching of per-stage profiles (paper §5, §7.1).
//
// After a run, each stage holds a dictionary of CCTs labeled by
// transaction-context synopsis. Because a callee's label extends its
// caller's send synopsis by exactly one part, the global transactional
// profile is recovered by connecting each labeled CCT to the stage
// whose send created its last synopsis part — the request/response
// edges of Figure 7.
#ifndef SRC_PROFILER_STITCHER_H_
#define SRC_PROFILER_STITCHER_H_

#include <string>
#include <vector>

#include "src/context/synopsis.h"
#include "src/profiler/deployment.h"

namespace whodunit::profiler {

class Stitcher {
 public:
  explicit Stitcher(const Deployment& deployment) : deployment_(deployment) {}

  struct Edge {
    std::string from_stage;
    context::Synopsis from_label;  // caller's CCT label
    std::string to_stage;
    context::Synopsis to_label;  // callee's CCT label (extends the send)
    std::string send_context;    // description of the send point
  };

  // All request edges recoverable from the stages' CCT labels.
  std::vector<Edge> Edges() const;

  // The full multi-stage transactional profile: every stage's labeled
  // CCTs plus the stitched request edges.
  std::string Render(double min_fraction = 0.0) const;

  // Graphviz rendering of the Figure 7 graph: one cluster per stage,
  // one node per (stage, context) CCT, request edges labeled with the
  // send point.
  std::string RenderDot() const;

 private:
  const Deployment& deployment_;
};

}  // namespace whodunit::profiler

#endif  // SRC_PROFILER_STITCHER_H_
