// Deployment-wide profiling state.
//
// A Deployment models one profiled multi-tier application: the shared
// name spaces (function names, interned call paths, the transaction
// context <-> synopsis dictionary) plus every stage's profiler.
//
// In the real system each stage keeps these tables privately and the
// presentation phase merges them post mortem (paper §7.1); sharing the
// interners up front is an implementation simplification that changes
// no observable behaviour — synopses are still the only thing that
// crosses stage boundaries, and they remain 4-byte parts.
#ifndef SRC_PROFILER_DEPLOYMENT_H_
#define SRC_PROFILER_DEPLOYMENT_H_

#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "src/callpath/function_registry.h"
#include "src/callpath/path_table.h"
#include "src/context/synopsis.h"
#include "src/context/transaction_context.h"
#include "src/profiler/sampling.h"

namespace whodunit::obs::live {
class Whodunitd;
}  // namespace whodunit::obs::live

namespace whodunit::profiler {

class StageProfiler;

class Deployment {
 public:
  // Names a context element for reports; apps register namers for
  // their handler/stage id spaces. Call-path elements are rendered
  // from the shared path table automatically.
  using ElementNamer = std::function<std::string(context::ElementKind, uint32_t)>;

  Deployment();
  ~Deployment();

  callpath::FunctionRegistry& functions() { return functions_; }
  const callpath::FunctionRegistry& functions() const { return functions_; }
  callpath::CallPathTable& paths() { return paths_; }
  context::SynopsisDictionary& synopses() { return synopses_; }
  const context::SynopsisDictionary& synopses() const { return synopses_; }

  void set_element_namer(ElementNamer namer) { element_namer_ = std::move(namer); }

  // ---- Production sampling (docs/PRODUCTION.md) -----------------------
  // One policy per deployment: every stage's ResetTransaction draws its
  // per-transaction decision here, so the deployment-wide decision
  // stream is a single deterministic sequence.
  SamplingPolicy& sampling() { return sampling_; }
  const SamplingPolicy& sampling() const { return sampling_; }

  // Human-readable rendering of a context element / context / synopsis.
  std::string DescribeElement(context::ElementKind kind, uint32_t id) const;
  std::string DescribeContext(const context::TransactionContext& ctxt) const;
  std::string DescribeSynopsis(const context::Synopsis& synopsis) const;

  // Stage registry (for the post-mortem stitcher).
  StageProfiler& AddStage(std::unique_ptr<StageProfiler> stage);
  const std::vector<std::unique_ptr<StageProfiler>>& stages() const { return stages_; }

  // ---- Shard identity -------------------------------------------------
  // Which shard of a ParallelRunner fan-out this deployment is; a
  // serial deployment is shard 0 of 1. Reports and exports use this to
  // label per-shard artifacts.
  void set_shard(size_t index, size_t count) {
    shard_index_ = index;
    shard_count_ = count;
  }
  size_t shard_index() const { return shard_index_; }
  size_t shard_count() const { return shard_count_; }

  // ---- Live observability (src/obs/live) ------------------------------
  // Attaches the aggregation daemon to every stage (current and
  // future), wires the daemon's pre-query flush hook to
  // FlushLiveCosts, and gives it a context namer backed by this
  // deployment's dictionaries. Pass nullptr to detach.
  void AttachLive(obs::live::Whodunitd* live);
  obs::live::Whodunitd* live() const { return live_; }
  // Publishes every stage's batched per-thread CPU costs to the daemon.
  void FlushLiveCosts();

 private:
  callpath::FunctionRegistry functions_;
  callpath::CallPathTable paths_;
  context::SynopsisDictionary synopses_;
  SamplingPolicy sampling_;
  ElementNamer element_namer_;
  std::vector<std::unique_ptr<StageProfiler>> stages_;
  size_t shard_index_ = 0;
  size_t shard_count_ = 1;
  obs::live::Whodunitd* live_ = nullptr;
};

}  // namespace whodunit::profiler

#endif  // SRC_PROFILER_DEPLOYMENT_H_
