#include "src/profiler/stitcher.h"

#include <sstream>

#include "src/obs/metrics.h"
#include "src/profiler/stage_profiler.h"

namespace whodunit::profiler {

std::vector<Stitcher::Edge> Stitcher::Edges() const {
  std::vector<Edge> edges;
  // Index every (stage, label) pair.
  struct Owner {
    const StageProfiler* stage;
    context::Synopsis label;
  };
  std::vector<Owner> owners;
  for (const auto& stage : deployment_.stages()) {
    for (const auto& [label, cct] : stage->LabeledCcts()) {
      owners.push_back(Owner{stage.get(), label});
    }
  }
  // A label with parts [p0..pn] was created by a send whose caller ran
  // with label [p0..pn-1] (or a prefix of it, since the caller's label
  // omits a purely-local tail). Match the longest proper prefix owned
  // by another (or the same) stage.
  for (const Owner& callee : owners) {
    if (callee.label.parts.empty()) {
      continue;
    }
    context::Synopsis prefix = callee.label;
    prefix.parts.pop_back();
    const Owner* best = nullptr;
    size_t best_len = 0;
    for (const Owner& caller : owners) {
      if (&caller == &callee) {
        continue;
      }
      if (prefix.HasPrefix(caller.label) && (best == nullptr ||
                                             caller.label.parts.size() >= best_len)) {
        best = &caller;
        best_len = caller.label.parts.size();
      }
    }
    if (best != nullptr) {
      const uint32_t last_part = callee.label.parts.back();
      std::string send_desc =
          deployment_.synopses().Contains(last_part)
              ? deployment_.DescribeContext(deployment_.synopses().Lookup(last_part))
              : "?";
      edges.push_back(Edge{best->stage->name(), best->label, callee.stage->name(), callee.label,
                           std::move(send_desc)});
    }
  }
  obs::Registry().GetCounter("stitcher.edges_stitched").Add(edges.size());
  return edges;
}

std::string Stitcher::Render(double min_fraction) const {
  std::ostringstream out;
  out << "===== stitched transactional profile =====\n";
  for (const auto& stage : deployment_.stages()) {
    out << stage->RenderTransactionalProfile(min_fraction);
  }
  out << "===== transaction flow edges =====\n";
  for (const Edge& e : Edges()) {
    out << "  " << e.from_stage << " "
        << (e.from_label.empty() ? "(origin)" : e.from_label.ToString()) << " --"
        << e.send_context << "--> " << e.to_stage << " " << e.to_label.ToString() << "\n";
  }
  return out.str();
}

std::string Stitcher::RenderDot() const {
  std::ostringstream out;
  out << "digraph whodunit {\n  rankdir=LR;\n  node [shape=box];\n";
  int cluster = 0;
  auto node_id = [](const StageProfiler* stage, const context::Synopsis& label) {
    std::string id = "\"" + stage->name() + ":";
    id += label.empty() ? "origin" : label.ToString();
    id += "\"";
    return id;
  };
  for (const auto& stage : deployment_.stages()) {
    out << "  subgraph cluster_" << cluster++ << " {\n    label=\"" << stage->name()
        << "\";\n";
    const double total = static_cast<double>(stage->total_cpu_time());
    for (const auto& [label, cct] : stage->LabeledCcts()) {
      const double share =
          total > 0 ? 100.0 * static_cast<double>(cct->TotalCpuTime()) / total : 0.0;
      out << "    " << node_id(stage.get(), label) << " [label=\""
          << (label.empty() ? "(origin)" : deployment_.DescribeSynopsis(label)) << "\\n"
          << share << "% CPU\"];\n";
    }
    out << "  }\n";
  }
  // Find the owning stage pointer for each edge endpoint.
  for (const Edge& e : Edges()) {
    const StageProfiler* from = nullptr;
    const StageProfiler* to = nullptr;
    for (const auto& stage : deployment_.stages()) {
      if (stage->name() == e.from_stage) {
        from = stage.get();
      }
      if (stage->name() == e.to_stage) {
        to = stage.get();
      }
    }
    if (from != nullptr && to != nullptr) {
      out << "  " << node_id(from, e.from_label) << " -> " << node_id(to, e.to_label)
          << " [label=\"" << e.send_context << "\", style=dashed];\n";
    }
  }
  out << "}\n";
  return out.str();
}

}  // namespace whodunit::profiler
