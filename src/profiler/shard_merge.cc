#include "src/profiler/shard_merge.h"

#include <algorithm>
#include <sstream>

#include "src/profiler/stage_profiler.h"

namespace whodunit::profiler {

void AppendStageCcts(const Deployment& deployment, const StageProfiler& stage,
                     ShardProfile* out) {
  for (const auto& [label, cct] : stage.LabeledCcts()) {
    out->ccts.push_back(ShardProfile::LabeledCct{
        stage.name(),
        label.empty() ? std::string("(origin)") : deployment.DescribeSynopsis(label), *cct});
  }
}

ShardProfile ExtractShardProfile(const Deployment& deployment,
                                 const crosstalk::CrosstalkRecorder* crosstalk,
                                 const std::function<std::string(uint64_t)>& tag_namer) {
  ShardProfile out;
  out.functions = deployment.functions();
  for (const auto& stage : deployment.stages()) {
    AppendStageCcts(deployment, *stage, &out);
  }
  std::sort(out.ccts.begin(), out.ccts.end(), [](const auto& a, const auto& b) {
    return std::tie(a.stage, a.label) < std::tie(b.stage, b.label);
  });
  if (crosstalk != nullptr) {
    out.crosstalk = *crosstalk;
    for (uint64_t tag : crosstalk->Tags()) {
      out.tag_names.emplace(tag, tag_namer ? tag_namer(tag)
                                           : "tag_" + std::to_string(tag));
    }
  }
  return out;
}

void MergedProfile::Fold(const ShardProfile& shard) {
  const std::vector<callpath::FunctionId> fn_remap = functions_.MergeFrom(shard.functions);
  for (const ShardProfile::LabeledCct& entry : shard.ccts) {
    ccts_[{entry.stage, entry.label}].MergeFrom(entry.cct, fn_remap);
  }
  crosstalk_.MergeFrom(shard.crosstalk, [this, &shard](uint64_t tag) -> uint64_t {
    auto it = shard.tag_names.find(tag);
    const std::string name = it != shard.tag_names.end() ? it->second
                                                         : "tag_" + std::to_string(tag);
    return tag_names_.Intern(name);
  });
}

std::vector<std::pair<std::string, const callpath::CallingContextTree*>>
MergedProfile::LabeledCcts(std::string_view stage) const {
  std::vector<std::pair<std::string, const callpath::CallingContextTree*>> out;
  for (const auto& [key, cct] : ccts_) {
    if (key.first == stage) {
      out.emplace_back(key.second, &cct);
    }
  }
  return out;  // map order: already label-sorted within the stage
}

std::string MergedProfile::RenderTransactionalProfile(std::string_view stage,
                                                      double min_fraction) const {
  std::ostringstream out;
  sim::SimTime stage_total = 0;
  for (const auto& [label, cct] : LabeledCcts(stage)) {
    stage_total += cct->TotalCpuTime();
  }
  const double total = static_cast<double>(stage_total);
  out << "=== transactional profile of stage '" << stage << "' (merged) ===\n";
  for (const auto& [label, cct] : LabeledCcts(stage)) {
    const double share =
        total > 0 ? 100.0 * static_cast<double>(cct->TotalCpuTime()) / total : 0.0;
    out << "--- context " << label << "  [" << share << "% of stage CPU, "
        << cct->TotalSamples() << " samples]\n";
    out << cct->Render(functions_, min_fraction);
  }
  return out.str();
}

uint64_t MergedProfile::MergedTag(std::string_view name) const {
  const uint32_t id = tag_names_.Find(name);
  return id == util::StringInterner::kNotFound ? kNoMergedTag : id;
}

std::string MergedProfile::RenderCrosstalk() const {
  return crosstalk_.Render([this](uint64_t tag) {
    return tag < tag_names_.size() ? tag_names_.NameOf(static_cast<uint32_t>(tag))
                                   : "tag_" + std::to_string(tag);
  });
}

}  // namespace whodunit::profiler
