// Profile serialization and post-mortem loading (paper §7.1).
//
// "When the program exits, Whodunit finalizes its state and writes the
// profile data to disk. In a final presentation phase, Whodunit
// stitches together the profiles from the application stages using
// transaction context information."
//
// The format is line-oriented text, self-contained per stage (function
// names inline, CCT labels as synopsis part lists), plus a deployment
// dictionary file mapping part ids to human-readable context
// descriptions. An offline tool (or the OfflineStitch function) can
// reconstruct the full transactional profile from the files alone.
#ifndef SRC_PROFILER_PROFILE_IO_H_
#define SRC_PROFILER_PROFILE_IO_H_

#include <cstdint>
#include <map>
#include <string>
#include <string_view>
#include <vector>

#include "src/callpath/cct.h"
#include "src/callpath/function_registry.h"
#include "src/context/synopsis.h"
#include "src/profiler/stage_profiler.h"

namespace whodunit::profiler {

// One stage's profile as written at exit.
std::string SerializeProfile(const StageProfiler& stage);

// The deployment's synopsis dictionary: part id -> description.
std::string SerializeDictionary(const Deployment& deployment);

// A stage profile re-read from its serialized form. Owns its own
// function registry (ids are file-local).
struct LoadedProfile {
  std::string stage_name;
  uint64_t payload_bytes = 0;
  uint64_t context_bytes = 0;
  callpath::FunctionRegistry functions;
  std::vector<std::pair<context::Synopsis, callpath::CallingContextTree>> ccts;
};

// Parses a serialized profile. Returns false on malformed input.
bool ParseProfile(std::string_view text, LoadedProfile* out);

// Parses a serialized dictionary into part id -> description.
bool ParseDictionary(std::string_view text, std::map<uint32_t, std::string>* out);

// The presentation phase, run entirely from serialized data: renders
// each stage's per-context profile and the request edges recovered by
// the synopsis prefix rule.
std::string OfflineStitch(const std::vector<LoadedProfile>& profiles,
                          const std::map<uint32_t, std::string>& dictionary,
                          double min_fraction = 0.0);

}  // namespace whodunit::profiler

#endif  // SRC_PROFILER_PROFILE_IO_H_
