// Whodunit's per-stage run-time (paper §7).
//
// One StageProfiler profiles one stage (one simulated process). It
// owns:
//   * a dictionary of CCTs labeled by transaction-context synopsis;
//     the executing thread's samples accumulate in the CCT matching
//     its current transaction context (§7.1);
//   * the send/receive context machinery: PrepareSend computes the
//     synopsis at the send point and OnReceive either adopts a request
//     context or recognizes a response by the prefix rule (§5, §7.4);
//   * the bridge to the shared-memory flow detector: CurrentCtxtId
//     snapshots the executing thread's full context for produce
//     points, AdoptCtxt makes a consumer continue the producer's
//     transaction (§3.5);
//   * profiling-cost accounting per §9: sampling cost per sample,
//     per-call cost in gprof mode, per-message context cost.
#ifndef SRC_PROFILER_STAGE_PROFILER_H_
#define SRC_PROFILER_STAGE_PROFILER_H_

#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "src/callpath/cct.h"
#include "src/callpath/profiler_mode.h"
#include "src/obs/metrics.h"
#include "src/callpath/sampler.h"
#include "src/callpath/shadow_stack.h"
#include "src/context/context_tree.h"
#include "src/context/synopsis.h"
#include "src/context/transaction_context.h"
#include "src/profiler/deployment.h"
#include "src/sim/time.h"

namespace whodunit::obs::live {
class Whodunitd;
}  // namespace whodunit::obs::live

namespace whodunit::profiler {

// Profiling state of one simulated thread of control (a worker thread,
// an event loop, a SEDA stage worker).
class ThreadProfile {
 public:
  explicit ThreadProfile(std::string name, sim::SimTime sample_period)
      : name_(std::move(name)), sampler_(sample_period) {}

  const std::string& name() const { return name_; }
  const callpath::ShadowStack& stack() const { return stack_; }
  const context::Synopsis& incoming() const { return incoming_; }
  context::NodeId local_node() const { return local_node_; }
  context::TransactionContext local_context() const {
    return context::GlobalContextTree().Materialize(local_node_);
  }

 private:
  friend class StageProfiler;

  struct SavedState {
    context::Synopsis incoming;
    context::NodeId local_node;
  };

  std::string name_;
  callpath::ShadowStack stack_;
  callpath::Sampler sampler_;
  // κ: transaction context inherited from other stages, as a synopsis.
  context::Synopsis incoming_;
  // Locally accumulated context elements (handlers, stages, adopted
  // shared-memory flows), interned into the global context tree.
  context::NodeId local_node_ = context::kEmptyContext;
  // Outstanding requests: sent synopsis -> state to restore when the
  // matching response arrives.
  std::vector<std::pair<context::Synopsis, SavedState>> pending_sends_;
  context::Synopsis current_label_;
  bool label_valid_ = false;
  // Production sampling (docs/PRODUCTION.md): whether the transaction
  // this thread is currently executing was chosen by the deployment's
  // SamplingPolicy. Starts true so non-transactional modes (gprof,
  // csprof) and rate-1.0 runs behave exactly as before sampling
  // existed.
  bool sampled_ = true;
  uint64_t uncharged_pushes_ = 0;
  uint64_t uncharged_messages_ = 0;
  // Live-observability state: the daemon transaction this thread is
  // currently executing, the interned full-context node the thread's
  // CPU charges accrue to, and the batched not-yet-published cost.
  uint64_t live_txn_ = 0;
  context::NodeId live_ctxt_node_ = context::kEmptyContext;
  sim::SimTime live_cost_acc_ = 0;
  // Wait-state measurements of the thread's current live span
  // (docs/OBSERVABILITY.md taxonomy): CPU charged and lock wait
  // incurred since the span opened, flushed to the daemon as the span
  // closes.
  sim::SimTime live_span_service_ = 0;
  sim::SimTime live_span_lock_ = 0;
};

class StageProfiler {
 public:
  struct Options {
    std::string name;
    callpath::ProfilerMode mode = callpath::ProfilerMode::kWhodunit;
    callpath::ProfilerCosts costs;
    // The paper samples at gprof's default, 666 Hz.
    sim::SimTime sample_period = 1501501;
  };

  StageProfiler(Deployment& deployment, Options options);

  const std::string& name() const { return options_.name; }
  callpath::ProfilerMode mode() const { return options_.mode; }
  Deployment& deployment() { return deployment_; }
  const Deployment& deployment() const { return deployment_; }

  // ---- Thread and call-path structure -------------------------------
  ThreadProfile& CreateThread(std::string name);
  callpath::FunctionId RegisterFunction(std::string_view fn_name);

  // RAII procedure frame; apps mark their procedure structure with it.
  class FrameGuard {
   public:
    FrameGuard(StageProfiler& prof, ThreadProfile& tp, callpath::FunctionId fn);
    ~FrameGuard();
    FrameGuard(const FrameGuard&) = delete;
    FrameGuard& operator=(const FrameGuard&) = delete;

   private:
    StageProfiler& prof_;
    ThreadProfile& tp_;
  };
  FrameGuard EnterFrame(ThreadProfile& tp, callpath::FunctionId fn) {
    return FrameGuard(*this, tp, fn);
  }

  // Records `n` procedure entries executed by un-instrumented-at-
  // source internal code (the database's per-row handler functions).
  // They cost nothing under sampling profilers but pay gprof's mcount
  // like any other call — the effect behind Table 2's gprof column.
  void NoteInternalCalls(ThreadProfile& tp, uint64_t n) {
    if (callpath::CountsCalls(options_.mode)) {
      tp.uncharged_pushes_ += n;
    }
  }

  // ---- CPU accounting ------------------------------------------------
  // Returns app_cost plus the profiling overhead incurred (sampling
  // handlers, gprof mcount work, pending message-context costs); the
  // app charges the returned total to its CpuResource. Samples are
  // attributed to the thread's current CCT node.
  sim::SimTime ChargeCpu(ThreadProfile& tp, sim::SimTime app_cost);

  // ---- Transaction contexts (events / SEDA / fresh requests) ---------
  // Replaces the thread's locally accumulated context (the event/SEDA
  // libraries feed their current node through this). The NodeId form is
  // the hot path; the value form interns first.
  void SetLocalContext(ThreadProfile& tp, context::NodeId node);
  void SetLocalContext(ThreadProfile& tp, const context::TransactionContext& ctxt) {
    SetLocalContext(tp, context::GlobalContextTree().Intern(ctxt));
  }
  // Begins a fresh top-level transaction at an origin stage. Draws the
  // deployment's per-transaction sampling decision: an unsampled
  // transaction pays only that coin flip — PrepareSend emits no
  // synopsis, ChargeCpu skips the sampler and live batching, LiveBegin
  // returns 0 — until the next ResetTransaction/OnReceive.
  void ResetTransaction(ThreadProfile& tp);

  // ---- Production sampling (docs/PRODUCTION.md) -----------------------
  // Whether the thread's current transaction is being profiled. Apps
  // gate their shm-emulation and crosstalk hooks on this so unsampled
  // transactions skip the flow detector entirely.
  bool IsSampled(const ThreadProfile& tp) const { return tp.sampled_; }
  // Restores the sampling bit on a thread that picked up work through
  // an un-instrumented channel (an app-level queue carrying the bit
  // alongside the payload instead of a synopsis).
  void SetSampled(ThreadProfile& tp, bool sampled) { tp.sampled_ = sampled; }

  // ---- Messaging (§5, §7.4) ------------------------------------------
  // Computes the synopsis to piggy-back on an outgoing request and
  // saves state so the response can restore it. For one-way sends or
  // responses pass expect_response = false.
  context::Synopsis PrepareSend(ThreadProfile& tp, bool expect_response = true);
  // Handles a piggy-backed synopsis on receive: recognizes responses
  // by the prefix rule (restoring the saved context), otherwise adopts
  // the request context. Returns true if it was a response.
  bool OnReceive(ThreadProfile& tp, const context::Synopsis& synopsis);

  // ---- Shared-memory flow (§3.5) --------------------------------------
  // Snapshot of the thread's full current context (including its call
  // path), as a dense id for the flow detector's dictionary.
  uint32_t CurrentCtxtId(ThreadProfile& tp);
  // Consumer side of a detected flow: continue the producer's
  // transaction from here on.
  void AdoptCtxt(ThreadProfile& tp, uint32_t ctxt_id);
  const context::Synopsis& SynopsisOfCtxtId(uint32_t ctxt_id) const;

  // ---- Crosstalk ------------------------------------------------------
  // Tag identifying the thread's current transaction type for lock
  // instrumentation (resolve back with SynopsisOfCtxtId).
  uint64_t CrosstalkTag(ThreadProfile& tp);
  // The tag a thread running under `label` would report — lets report
  // generators join crosstalk rows with CCT labels.
  uint64_t TagForLabel(const context::Synopsis& label) { return InternCtxt(label); }

  // ---- Live observability (src/obs/live) ------------------------------
  // When a Whodunitd is attached (normally via Deployment::AttachLive),
  // the stage publishes transaction lifecycle events and batched CPU
  // costs to it. All hooks are no-ops when detached — a single null
  // check on the publish path. Attaching interns the stage's name into
  // the daemon's symbol table once, so every later hook passes a
  // 32-bit SymId instead of a string.
  void AttachLive(obs::live::Whodunitd* live);
  obs::live::Whodunitd* live() const { return live_; }
  // Origin stage: opens a live transaction of the given type on this
  // thread (call after ResetTransaction). Returns the live txn id to
  // thread through the app's messages (0 = daemon off or overloaded).
  // The SymId form is the steady-state path; apps intern their type
  // names once at wiring time (live()->symbols().Intern(...)).
  uint64_t LiveBegin(ThreadProfile& tp, uint32_t type_sym);
  uint64_t LiveBegin(ThreadProfile& tp, std::string_view type);
  // Non-origin stage: joins the thread to a transaction carried here
  // by a message (call after OnReceive; the innermost incoming synopsis
  // part becomes the span's link). `queue_ns` is the measured queue
  // residency of the message that carried the work here — it becomes
  // the span's kQueueWait attribution.
  void LiveJoin(ThreadProfile& tp, uint64_t txn, sim::SimTime queue_ns = 0);
  // Closes this stage's span (the thread is done with the txn here).
  void LiveLeave(ThreadProfile& tp);
  // Origin stage, transaction finished end-to-end: publishes it.
  void LiveComplete(ThreadProfile& tp, bool error = false);
  // Re-labels the thread's current live transaction (e.g. once a cache
  // stage knows hit vs. miss).
  void LiveType(ThreadProfile& tp, uint32_t type_sym);
  void LiveType(ThreadProfile& tp, std::string_view type);
  // Accumulates measured lock wait onto the thread's current live span
  // (fed by resource acquire paths, e.g. Database::Execute).
  void LiveLockWait(ThreadProfile& tp, sim::SimTime wait_ns);
  uint64_t live_txn(const ThreadProfile& tp) const { return tp.live_txn_; }
  // Publishes every thread's batched CPU cost to the daemon; the
  // daemon invokes this (via Deployment's flush hook) before answering
  // a query so snapshots are current.
  void FlushLive();

  // ---- Message byte accounting (§9.1) ---------------------------------
  void AccountMessage(size_t payload_bytes, size_t context_bytes);
  uint64_t payload_bytes_sent() const { return payload_bytes_; }
  uint64_t context_bytes_sent() const { return context_bytes_; }

  // ---- Results ---------------------------------------------------------
  // CCT for a given transaction-context label (nullptr if absent).
  const callpath::CallingContextTree* FindCct(const context::Synopsis& label) const;
  // All labels with their CCTs, in a deterministic order.
  std::vector<std::pair<context::Synopsis, const callpath::CallingContextTree*>> LabeledCcts()
      const;
  uint64_t total_samples() const;
  sim::SimTime total_cpu_time() const;

  // Renders the stage's transactional profile: one section per
  // transaction context, with the CCT and its share of stage CPU.
  std::string RenderTransactionalProfile(double min_fraction = 0.0) const;

  // A gprof-style flat profile over ALL contexts: functions ranked by
  // exclusive CPU time, with call counts. What a conventional profiler
  // would report — useful as the "before" view next to the
  // transactional profile.
  std::string RenderFlatProfile(size_t max_rows = 20) const;

 private:
  friend class FrameGuard;

  callpath::CallingContextTree& CctFor(const context::Synopsis& label);
  context::Synopsis ComputeLabel(const ThreadProfile& tp);
  void UpdateCct(ThreadProfile& tp);
  // Interned full-context node (incoming parts ++ local elements) the
  // thread's live CPU costs are attributed to.
  context::NodeId LiveCtxtNode(const ThreadProfile& tp) const;
  void FlushLiveCost(ThreadProfile& tp);
  // Publishes the span's accumulated service/lock-wait measurements to
  // the daemon and resets them; called as the span closes.
  void FlushSpanMeasurements(ThreadProfile& tp);
  // The thread's full context including its current call path.
  context::Synopsis FullSynopsis(ThreadProfile& tp);
  uint32_t InternCtxt(const context::Synopsis& synopsis);

  Deployment& deployment_;
  Options options_;
  obs::live::Whodunitd* live_ = nullptr;
  // This stage's name interned into the attached daemon's symbol table
  // (obs::live::SymId; valid while live_ != nullptr). Every publish
  // hook passes it instead of options_.name.
  uint32_t live_name_sym_ = 0;
  std::vector<std::unique_ptr<ThreadProfile>> threads_;
  std::unordered_map<context::Synopsis, std::unique_ptr<callpath::CallingContextTree>,
                     context::SynopsisHash>
      ccts_;
  // Dense ids for full-context snapshots handed to the flow detector
  // and the crosstalk recorder.
  std::unordered_map<context::Synopsis, uint32_t, context::SynopsisHash> ctxt_ids_;
  std::vector<context::Synopsis> ctxt_table_;

  uint64_t payload_bytes_ = 0;
  uint64_t context_bytes_ = 0;

  // Resolved against obs::Registry() at construction so profilers built
  // inside a shard isolate report into that shard's registry (a
  // function-local static would capture whichever registry the first
  // profiler ever saw).
  obs::Counter* obs_sends_;
  obs::Counter* obs_matches_;
  obs::Counter* obs_misses_;
  obs::Counter* obs_adoptions_;
  obs::Counter* obs_switches_;
  obs::Counter* obs_suppressed_;
};

}  // namespace whodunit::profiler

#endif  // SRC_PROFILER_STAGE_PROFILER_H_
