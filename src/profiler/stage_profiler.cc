#include "src/profiler/stage_profiler.h"

#include <algorithm>
#include <sstream>
#include <utility>

#include "src/obs/live/daemon.h"
#include "src/obs/metrics.h"

namespace whodunit::profiler {

using callpath::CountsCalls;
using callpath::Samples;
using callpath::TracksTransactions;

StageProfiler::StageProfiler(Deployment& deployment, Options options)
    : deployment_(deployment),
      options_(std::move(options)),
      obs_sends_(&obs::Registry().GetCounter("profiler.sends_prepared")),
      obs_matches_(&obs::Registry().GetCounter("profiler.synopsis_matches")),
      obs_misses_(&obs::Registry().GetCounter("profiler.synopsis_misses")),
      obs_adoptions_(&obs::Registry().GetCounter("profiler.flow_adoptions")),
      obs_switches_(&obs::Registry().GetCounter("profiler.cct_switches")),
      obs_suppressed_(&obs::Registry().GetCounter("sampling.sends_suppressed")) {}

ThreadProfile& StageProfiler::CreateThread(std::string thread_name) {
  threads_.push_back(
      std::make_unique<ThreadProfile>(std::move(thread_name), options_.sample_period));
  ThreadProfile& tp = *threads_.back();
  UpdateCct(tp);
  return tp;
}

callpath::FunctionId StageProfiler::RegisterFunction(std::string_view fn_name) {
  return deployment_.functions().Register(fn_name);
}

StageProfiler::FrameGuard::FrameGuard(StageProfiler& prof, ThreadProfile& tp,
                                      callpath::FunctionId fn)
    : prof_(prof), tp_(tp) {
  tp_.stack_.Push(fn);
  if (CountsCalls(prof_.options_.mode)) {
    ++tp_.uncharged_pushes_;
  }
}

StageProfiler::FrameGuard::~FrameGuard() { tp_.stack_.Pop(); }

sim::SimTime StageProfiler::ChargeCpu(ThreadProfile& tp, sim::SimTime app_cost) {
  sim::SimTime total = app_cost;
  if (options_.mode == callpath::ProfilerMode::kNone) {
    return total;
  }
  // gprof's mcount: a fixed cost per procedure entry since last charge.
  if (CountsCalls(options_.mode) && tp.uncharged_pushes_ > 0) {
    total += static_cast<sim::SimTime>(tp.uncharged_pushes_) * options_.costs.per_call;
    tp.uncharged_pushes_ = 0;
  }
  // Whodunit's synopsis computation/propagation per message.
  if (TracksTransactions(options_.mode) && tp.uncharged_messages_ > 0) {
    total +=
        static_cast<sim::SimTime>(tp.uncharged_messages_) * options_.costs.per_message_context;
    tp.uncharged_messages_ = 0;
  }
  if (Samples(options_.mode) && tp.sampled_) {
    const uint64_t before = tp.sampler_.samples_taken();
    tp.sampler_.OnCpu(tp.stack_, app_cost);
    const uint64_t fired = tp.sampler_.samples_taken() - before;
    total += static_cast<sim::SimTime>(fired) * options_.costs.per_sample;
  }
  // Live observability: batch the app cost against the thread's current
  // context node; UpdateCct / FlushLive publish the batch. Within a
  // live span the same cost also accumulates as the span's kService
  // wait-state measurement (flushed as the span closes).
  if (live_ != nullptr && tp.sampled_) {
    tp.live_cost_acc_ += app_cost;
    if (tp.live_txn_ != 0) {
      tp.live_span_service_ += app_cost;
    }
  }
  return total;
}

void StageProfiler::SetLocalContext(ThreadProfile& tp, context::NodeId node) {
  if (!TracksTransactions(options_.mode)) {
    return;
  }
  tp.local_node_ = node;
  UpdateCct(tp);
}

void StageProfiler::ResetTransaction(ThreadProfile& tp) {
  if (!TracksTransactions(options_.mode)) {
    return;
  }
  tp.incoming_ = {};
  tp.local_node_ = context::kEmptyContext;
  tp.pending_sends_.clear();
  tp.sampled_ = deployment_.sampling().Decide();
  UpdateCct(tp);
}

context::Synopsis StageProfiler::PrepareSend(ThreadProfile& tp, bool expect_response) {
  if (!TracksTransactions(options_.mode)) {
    return {};
  }
  // Unsampled transaction: piggy-back nothing. A sampled send always
  // carries at least one part, so the receiver reads an empty wire
  // synopsis unambiguously as "unsampled" (OnReceive below). No
  // dictionary work, no pending-send state, no per-message cost.
  if (!tp.sampled_) {
    obs_suppressed_->Add();
    return {};
  }
  obs_sends_->Add();
  // Transaction context at the send point: the locally accumulated
  // elements plus the call path leading to the send (§5). Two O(1)
  // probes: one hash-cons append, one synopsis-dictionary lookup.
  const context::NodeId send_node = context::GlobalContextTree().Append(
      tp.local_node_, context::Element{context::ElementKind::kCallPath,
                                       deployment_.paths().Intern(tp.stack_.path())});
  const uint32_t part = deployment_.synopses().Intern(send_node);
  context::Synopsis wire = tp.incoming_.Extend(context::Synopsis{{part}});
  if (expect_response) {
    tp.pending_sends_.emplace_back(
        wire, ThreadProfile::SavedState{tp.incoming_, tp.local_node_});
  }
  ++tp.uncharged_messages_;
  if (live_ != nullptr && tp.live_txn_ != 0) {
    live_->NoteSend(tp.live_txn_, live_name_sym_, part);
  }
  return wire;
}

bool StageProfiler::OnReceive(ThreadProfile& tp, const context::Synopsis& synopsis) {
  if (!TracksTransactions(options_.mode)) {
    return false;
  }
  // An empty wire synopsis under active sampling means the sender's
  // transaction was unsampled (PrepareSend above): carry the unsampled
  // state across the hop and skip the context machinery. Gated on
  // always_on so rate-1.0 deployments keep the historical
  // adopt-empty-context behaviour byte for byte.
  if (synopsis.empty() && !deployment_.sampling().always_on()) {
    tp.sampled_ = false;
    tp.pending_sends_.clear();
    return false;
  }
  tp.sampled_ = true;
  ++tp.uncharged_messages_;
  // Response recognition (§5): a message whose synopsis extends one we
  // sent is the reply to that request; restore the context we had when
  // we issued it.
  for (auto it = tp.pending_sends_.begin(); it != tp.pending_sends_.end(); ++it) {
    if (synopsis.parts.size() > it->first.parts.size() && synopsis.HasPrefix(it->first)) {
      tp.incoming_ = it->second.incoming;
      tp.local_node_ = it->second.local_node;
      tp.pending_sends_.erase(it);
      UpdateCct(tp);
      obs_matches_->Add();
      return true;
    }
  }
  // New request: adopt the sender's transaction context wholesale.
  obs_misses_->Add();
  tp.incoming_ = synopsis;
  tp.local_node_ = context::kEmptyContext;
  UpdateCct(tp);
  return false;
}

uint32_t StageProfiler::CurrentCtxtId(ThreadProfile& tp) { return InternCtxt(FullSynopsis(tp)); }

void StageProfiler::AdoptCtxt(ThreadProfile& tp, uint32_t ctxt_id) {
  if (!TracksTransactions(options_.mode)) {
    return;
  }
  obs_adoptions_->Add();
  tp.incoming_ = ctxt_table_.at(ctxt_id);
  tp.local_node_ = context::kEmptyContext;
  UpdateCct(tp);
}

const context::Synopsis& StageProfiler::SynopsisOfCtxtId(uint32_t ctxt_id) const {
  return ctxt_table_.at(ctxt_id);
}

uint64_t StageProfiler::CrosstalkTag(ThreadProfile& tp) {
  return InternCtxt(ComputeLabel(tp));
}

void StageProfiler::AttachLive(obs::live::Whodunitd* live) {
  live_ = live;
  live_name_sym_ = live_ != nullptr ? live_->symbols().Intern(options_.name) : 0;
}

uint64_t StageProfiler::LiveBegin(ThreadProfile& tp, uint32_t type_sym) {
  if (live_ == nullptr || !TracksTransactions(options_.mode)) {
    return 0;
  }
  // Unsampled transactions never reach the daemon; every downstream
  // live hook already no-ops on txn id 0.
  if (!tp.sampled_) {
    tp.live_txn_ = 0;
    return 0;
  }
  FlushLiveCost(tp);
  tp.live_txn_ = live_->BeginTxn(live_name_sym_, live_->now());
  tp.live_span_service_ = 0;
  tp.live_span_lock_ = 0;
  if (tp.live_txn_ != 0 && type_sym != 0) {
    live_->SetTxnType(tp.live_txn_, obs::live::SymId{type_sym});
  }
  return tp.live_txn_;
}

uint64_t StageProfiler::LiveBegin(ThreadProfile& tp, std::string_view type) {
  if (live_ == nullptr) {
    return 0;
  }
  return LiveBegin(tp, type.empty() ? 0 : live_->symbols().Intern(type));
}

void StageProfiler::LiveJoin(ThreadProfile& tp, uint64_t txn, sim::SimTime queue_ns) {
  if (live_ == nullptr) {
    return;
  }
  FlushLiveCost(tp);
  tp.live_txn_ = txn;
  tp.live_ctxt_node_ = LiveCtxtNode(tp);
  tp.live_span_service_ = 0;
  tp.live_span_lock_ = 0;
  if (txn == 0) {
    return;
  }
  const uint32_t link = tp.incoming_.parts.empty() ? 0 : tp.incoming_.parts.back();
  live_->JoinSpan(txn, live_name_sym_, link, live_->now(), queue_ns, tp.live_ctxt_node_);
}

void StageProfiler::LiveLeave(ThreadProfile& tp) {
  if (live_ == nullptr) {
    return;
  }
  FlushLiveCost(tp);
  FlushSpanMeasurements(tp);
  if (tp.live_txn_ != 0) {
    live_->EndSpan(tp.live_txn_, live_name_sym_, live_->now());
  }
  tp.live_txn_ = 0;
}

void StageProfiler::LiveComplete(ThreadProfile& tp, bool error) {
  if (live_ == nullptr) {
    return;
  }
  FlushLiveCost(tp);
  FlushSpanMeasurements(tp);
  if (tp.live_txn_ != 0) {
    if (error) {
      live_->ErrorTxn(tp.live_txn_);
    }
    live_->SetTxnCtxt(tp.live_txn_, tp.live_ctxt_node_);
    live_->CompleteTxn(tp.live_txn_, live_->now());
  }
  tp.live_txn_ = 0;
}

void StageProfiler::LiveLockWait(ThreadProfile& tp, sim::SimTime wait_ns) {
  if (live_ != nullptr && tp.live_txn_ != 0 && wait_ns > 0) {
    tp.live_span_lock_ += wait_ns;
  }
}

void StageProfiler::LiveType(ThreadProfile& tp, uint32_t type_sym) {
  if (live_ != nullptr && tp.live_txn_ != 0) {
    live_->SetTxnType(tp.live_txn_, obs::live::SymId{type_sym});
  }
}

void StageProfiler::LiveType(ThreadProfile& tp, std::string_view type) {
  if (live_ != nullptr && tp.live_txn_ != 0) {
    live_->SetTxnType(tp.live_txn_, type);
  }
}

void StageProfiler::FlushLive() {
  for (const auto& tp : threads_) {
    FlushLiveCost(*tp);
  }
}

context::NodeId StageProfiler::LiveCtxtNode(const ThreadProfile& tp) const {
  context::ContextTree& tree = context::GlobalContextTree();
  context::NodeId node = context::kEmptyContext;
  for (uint32_t part : tp.incoming_.parts) {
    node = tree.Concat(node, deployment_.synopses().LookupNode(part));
  }
  if (tp.local_node_ != context::kEmptyContext) {
    node = tree.Concat(node, tp.local_node_);
  }
  return node;
}

void StageProfiler::FlushLiveCost(ThreadProfile& tp) {
  if (live_ == nullptr || tp.live_cost_acc_ == 0) {
    return;
  }
  live_->AddCost(tp.live_ctxt_node_, static_cast<uint64_t>(tp.live_cost_acc_));
  tp.live_cost_acc_ = 0;
}

void StageProfiler::FlushSpanMeasurements(ThreadProfile& tp) {
  if (live_ == nullptr || tp.live_txn_ == 0) {
    tp.live_span_service_ = 0;
    tp.live_span_lock_ = 0;
    return;
  }
  if (tp.live_span_service_ > 0) {
    live_->AddSpanWait(tp.live_txn_, live_name_sym_, obs::live::WaitState::kService,
                       static_cast<int64_t>(tp.live_span_service_));
    tp.live_span_service_ = 0;
  }
  if (tp.live_span_lock_ > 0) {
    live_->AddSpanWait(tp.live_txn_, live_name_sym_, obs::live::WaitState::kLockWait,
                       static_cast<int64_t>(tp.live_span_lock_));
    tp.live_span_lock_ = 0;
  }
}

void StageProfiler::AccountMessage(size_t payload_bytes, size_t context_bytes) {
  payload_bytes_ += payload_bytes;
  context_bytes_ += context_bytes;
}

const callpath::CallingContextTree* StageProfiler::FindCct(
    const context::Synopsis& label) const {
  auto it = ccts_.find(label);
  return it == ccts_.end() ? nullptr : it->second.get();
}

std::vector<std::pair<context::Synopsis, const callpath::CallingContextTree*>>
StageProfiler::LabeledCcts() const {
  std::vector<std::pair<context::Synopsis, const callpath::CallingContextTree*>> out;
  out.reserve(ccts_.size());
  for (const auto& [label, cct] : ccts_) {
    // Skip trees that were created (a thread merely passed through the
    // context) but never accumulated any profile data.
    if (cct->TotalCpuTime() == 0 && cct->TotalSamples() == 0 && cct->size() == 1) {
      continue;
    }
    out.emplace_back(label, cct.get());
  }
  std::sort(out.begin(), out.end(), [](const auto& a, const auto& b) {
    return a.first.parts < b.first.parts;
  });
  return out;
}

uint64_t StageProfiler::total_samples() const {
  uint64_t total = 0;
  for (const auto& [label, cct] : ccts_) {
    total += cct->TotalSamples();
  }
  return total;
}

sim::SimTime StageProfiler::total_cpu_time() const {
  sim::SimTime total = 0;
  for (const auto& [label, cct] : ccts_) {
    total += cct->TotalCpuTime();
  }
  return total;
}

std::string StageProfiler::RenderTransactionalProfile(double min_fraction) const {
  std::ostringstream out;
  const double stage_total = static_cast<double>(total_cpu_time());
  out << "=== transactional profile of stage '" << options_.name << "' ===\n";
  for (const auto& [label, cct] : LabeledCcts()) {
    const double share =
        stage_total > 0 ? 100.0 * static_cast<double>(cct->TotalCpuTime()) / stage_total : 0.0;
    out << "--- context " << (label.empty() ? "(origin)" : deployment_.DescribeSynopsis(label))
        << "  [" << share << "% of stage CPU, " << cct->TotalSamples() << " samples]\n";
    out << cct->Render(deployment_.functions(), min_fraction);
  }
  return out.str();
}

std::string StageProfiler::RenderFlatProfile(size_t max_rows) const {
  struct Row {
    sim::SimTime cpu = 0;
    uint64_t samples = 0;
    uint64_t calls = 0;
  };
  std::map<callpath::FunctionId, Row> rows;
  for (const auto& [label, cct] : ccts_) {
    for (callpath::NodeIndex i = 0; i < cct->size(); ++i) {
      const auto& node = cct->node(i);
      if (i == cct->root()) {
        continue;
      }
      Row& row = rows[node.function];
      row.cpu += node.cpu_time;
      row.samples += node.samples;
      row.calls += node.calls;
    }
  }
  std::vector<std::pair<callpath::FunctionId, Row>> sorted(rows.begin(), rows.end());
  std::sort(sorted.begin(), sorted.end(),
            [](const auto& a, const auto& b) { return a.second.cpu > b.second.cpu; });

  const double total = static_cast<double>(total_cpu_time());
  std::ostringstream out;
  out << "=== flat profile of stage '" << options_.name << "' (all contexts merged) ===\n";
  out << "  %time        cpu   samples     calls  function\n";
  size_t emitted = 0;
  for (const auto& [fn, row] : sorted) {
    if (emitted++ >= max_rows) {
      break;
    }
    const double pct = total > 0 ? 100.0 * static_cast<double>(row.cpu) / total : 0.0;
    out << "  " << pct << "%  " << sim::ToMillis(row.cpu) << "ms  " << row.samples << "  "
        << row.calls << "  " << deployment_.functions().NameOf(fn) << "\n";
  }
  return out.str();
}

callpath::CallingContextTree& StageProfiler::CctFor(const context::Synopsis& label) {
  auto it = ccts_.find(label);
  if (it == ccts_.end()) {
    it = ccts_.emplace(label, std::make_unique<callpath::CallingContextTree>()).first;
  }
  return *it->second;
}

context::Synopsis StageProfiler::ComputeLabel(const ThreadProfile& tp) {
  if (tp.local_node_ == context::kEmptyContext) {
    return tp.incoming_;
  }
  context::Synopsis label = tp.incoming_;
  label.parts.push_back(deployment_.synopses().Intern(tp.local_node_));
  return label;
}

void StageProfiler::UpdateCct(ThreadProfile& tp) {
  context::Synopsis label = ComputeLabel(tp);
  if (tp.label_valid_ && label == tp.current_label_) {
    return;
  }
  obs_switches_->Add();
  if (live_ != nullptr) {
    // Costs batched so far belong to the outgoing context.
    FlushLiveCost(tp);
  }
  tp.current_label_ = label;
  tp.label_valid_ = true;
  tp.stack_.AttachCct(&CctFor(label));
  if (live_ != nullptr) {
    tp.live_ctxt_node_ = LiveCtxtNode(tp);
  }
}

context::Synopsis StageProfiler::FullSynopsis(ThreadProfile& tp) {
  const context::NodeId full = context::GlobalContextTree().Append(
      tp.local_node_, context::Element{context::ElementKind::kCallPath,
                                       deployment_.paths().Intern(tp.stack_.path())});
  return tp.incoming_.Extend(context::Synopsis{{deployment_.synopses().Intern(full)}});
}

uint32_t StageProfiler::InternCtxt(const context::Synopsis& synopsis) {
  auto it = ctxt_ids_.find(synopsis);
  if (it != ctxt_ids_.end()) {
    return it->second;
  }
  const auto id = static_cast<uint32_t>(ctxt_table_.size());
  ctxt_table_.push_back(synopsis);
  ctxt_ids_.emplace(synopsis, id);
  return id;
}

}  // namespace whodunit::profiler
