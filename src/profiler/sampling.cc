#include "src/profiler/sampling.h"

namespace whodunit::profiler {
namespace {

// splitmix64 finalizer (same mixer util::Rng seeds with): a bijective
// scramble of seed ^ index, so the decision stream is uncorrelated
// with the workload's xoshiro draws and nearby seeds give independent
// streams.
uint64_t Mix(uint64_t x) {
  uint64_t z = x + 0x9e3779b97f4a7c15ULL;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

}  // namespace

SamplingPolicy::SamplingPolicy()
    : obs_total_(&obs::Registry().GetCounter("sampling.txns_total")),
      obs_sampled_(&obs::Registry().GetCounter("sampling.txns_sampled")) {}

void SamplingPolicy::Configure(const SamplingConfig& config) {
  config_ = config;
  if (config.rate >= 1.0) {
    threshold_ = kAlwaysOn;
  } else if (config.rate <= 0.0) {
    threshold_ = 0;
  } else {
    // rate * 2^64, computed in double; rate < 1 keeps it below 2^64.
    threshold_ = static_cast<uint64_t>(config.rate * 18446744073709551616.0);
  }
}

bool SamplingPolicy::Decide() {
  ++decisions_;
  obs_total_->Add();
  bool sampled;
  if (threshold_ == kAlwaysOn) {
    sampled = true;
  } else {
    sampled = Mix(config_.seed ^ decisions_) < threshold_;
  }
  if (sampled) {
    obs_sampled_->Add();
  }
  return sampled;
}

}  // namespace whodunit::profiler
