// Queries over a collected transactional profile.
//
// The paper's §1 motivation: "if in a 3-stage application ... we find
// that the database sort routine is consuming a lot of CPU, our
// transactional profiler allows us to infer which type of request at
// the web server or the application server invoked those expensive
// executions of the sort routine." Analysis::WhoCauses is that query;
// TopContexts ranks a stage's transaction types by cost.
#ifndef SRC_PROFILER_ANALYSIS_H_
#define SRC_PROFILER_ANALYSIS_H_

#include <string>
#include <string_view>
#include <vector>

#include "src/context/synopsis.h"
#include "src/profiler/deployment.h"
#include "src/profiler/stage_profiler.h"

namespace whodunit::profiler {

struct ContextShare {
  context::Synopsis label;
  std::string description;  // human-readable context
  sim::SimTime cpu = 0;     // virtual ns attributed
  double share = 0;         // percent of the ranked total
};

class Analysis {
 public:
  explicit Analysis(const Deployment& deployment) : deployment_(deployment) {}

  // The stage's transaction contexts ranked by CPU consumption.
  std::vector<ContextShare> TopContexts(const StageProfiler& stage,
                                        size_t max_rows = 10) const;

  // Which transaction contexts ran `function_name`, ranked by that
  // function's inclusive CPU within each context. Empty if the
  // function never ran.
  std::vector<ContextShare> WhoCauses(const StageProfiler& stage,
                                      std::string_view function_name,
                                      size_t max_rows = 10) const;

  // Renders a WhoCauses result as the paper would narrate it.
  std::string RenderWhoCauses(const StageProfiler& stage, std::string_view function_name,
                              size_t max_rows = 5) const;

 private:
  const Deployment& deployment_;
};

}  // namespace whodunit::profiler

#endif  // SRC_PROFILER_ANALYSIS_H_
