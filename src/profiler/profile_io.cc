#include "src/profiler/profile_io.h"

#include <sstream>

namespace whodunit::profiler {
namespace {

// Replaces whitespace in names so the line format stays parseable.
std::string Sanitize(std::string_view name) {
  std::string out(name);
  for (char& c : out) {
    if (c == ' ' || c == '\t' || c == '\n') {
      c = '_';
    }
  }
  return out;
}

void SerializeSubtree(const callpath::CallingContextTree& cct,
                      const callpath::FunctionRegistry& functions, callpath::NodeIndex node,
                      callpath::NodeIndex parent_out, callpath::NodeIndex& next_out,
                      std::ostringstream& out) {
  const auto& n = cct.node(node);
  const callpath::NodeIndex my_out = next_out++;
  if (node != cct.root()) {
    out << "node " << my_out << " " << parent_out << " " << Sanitize(functions.NameOf(n.function))
        << " " << n.samples << " " << n.cpu_time << " " << n.calls << "\n";
  }
  for (const auto& [f, child] : n.children) {
    SerializeSubtree(cct, functions, child, my_out, next_out, out);
  }
}

std::string LabelToString(const context::Synopsis& label) {
  if (label.parts.empty()) {
    return "-";
  }
  return label.ToString();
}

bool ParseLabel(std::string_view text, context::Synopsis* out) {
  out->parts.clear();
  if (text == "-") {
    return true;
  }
  uint32_t value = 0;
  bool have_digit = false;
  for (char c : text) {
    if (c == '#') {
      if (!have_digit) {
        return false;
      }
      out->parts.push_back(value);
      value = 0;
      have_digit = false;
    } else if (c >= '0' && c <= '9') {
      value = value * 10 + static_cast<uint32_t>(c - '0');
      have_digit = true;
    } else {
      return false;
    }
  }
  if (!have_digit) {
    return false;
  }
  out->parts.push_back(value);
  return true;
}

}  // namespace

std::string SerializeProfile(const StageProfiler& stage) {
  std::ostringstream out;
  out << "whodunit-profile 1\n";
  out << "stage " << Sanitize(stage.name()) << "\n";
  out << "bytes " << stage.payload_bytes_sent() << " " << stage.context_bytes_sent() << "\n";
  const auto& functions = stage.deployment().functions();
  for (const auto& [label, cct] : stage.LabeledCcts()) {
    out << "cct " << LabelToString(label) << "\n";
    callpath::NodeIndex next_out = 0;
    SerializeSubtree(*cct, functions, cct->root(), 0, next_out, out);
  }
  out << "end\n";
  return out.str();
}

std::string SerializeDictionary(const Deployment& deployment) {
  std::ostringstream out;
  out << "whodunit-dictionary 1\n";
  for (uint32_t part = 0; part < deployment.synopses().size(); ++part) {
    out << "part " << part << " "
        << Sanitize(deployment.DescribeContext(deployment.synopses().Lookup(part))) << "\n";
  }
  out << "end\n";
  return out.str();
}

bool ParseProfile(std::string_view text, LoadedProfile* out) {
  std::istringstream in{std::string(text)};
  std::string line;
  if (!std::getline(in, line) || line != "whodunit-profile 1") {
    return false;
  }
  callpath::CallingContextTree* current = nullptr;
  // Serialized node index -> node in the rebuilt tree.
  std::map<callpath::NodeIndex, callpath::NodeIndex> node_map;
  while (std::getline(in, line)) {
    std::istringstream fields(line);
    std::string kind;
    fields >> kind;
    if (kind == "stage") {
      fields >> out->stage_name;
    } else if (kind == "bytes") {
      fields >> out->payload_bytes >> out->context_bytes;
    } else if (kind == "cct") {
      std::string label_text;
      fields >> label_text;
      context::Synopsis label;
      if (!ParseLabel(label_text, &label)) {
        return false;
      }
      out->ccts.emplace_back(label, callpath::CallingContextTree());
      current = &out->ccts.back().second;
      node_map.clear();
      node_map[0] = current->root();
    } else if (kind == "node") {
      if (current == nullptr) {
        return false;
      }
      callpath::NodeIndex idx = 0, parent = 0;
      std::string fn_name;
      uint64_t samples = 0, calls = 0;
      int64_t cpu = 0;
      fields >> idx >> parent >> fn_name >> samples >> cpu >> calls;
      if (fields.fail() || !node_map.contains(parent)) {
        return false;
      }
      const auto fn = out->functions.Register(fn_name);
      const callpath::NodeIndex node = current->Child(node_map[parent], fn);
      node_map[idx] = node;
      current->AddSample(node, samples);
      current->AddCpuTime(node, cpu);
      for (uint64_t c = 0; c < calls; ++c) {
        current->AddCall(node);
      }
    } else if (kind == "end") {
      return true;
    } else if (!kind.empty()) {
      return false;
    }
  }
  return false;  // missing "end"
}

bool ParseDictionary(std::string_view text, std::map<uint32_t, std::string>* out) {
  std::istringstream in{std::string(text)};
  std::string line;
  if (!std::getline(in, line) || line != "whodunit-dictionary 1") {
    return false;
  }
  while (std::getline(in, line)) {
    std::istringstream fields(line);
    std::string kind;
    fields >> kind;
    if (kind == "part") {
      uint32_t id = 0;
      std::string desc;
      fields >> id >> desc;
      (*out)[id] = desc;
    } else if (kind == "end") {
      return true;
    } else if (!kind.empty()) {
      return false;
    }
  }
  return false;
}

std::string OfflineStitch(const std::vector<LoadedProfile>& profiles,
                          const std::map<uint32_t, std::string>& dictionary,
                          double min_fraction) {
  std::ostringstream out;
  auto describe = [&dictionary](const context::Synopsis& label) {
    if (label.parts.empty()) {
      return std::string("(origin)");
    }
    std::string text;
    for (uint32_t part : label.parts) {
      if (!text.empty()) {
        text += " # ";
      }
      auto it = dictionary.find(part);
      text += it == dictionary.end() ? "?" + std::to_string(part) : it->second;
    }
    return text;
  };

  out << "===== stitched transactional profile (post mortem) =====\n";
  for (const LoadedProfile& profile : profiles) {
    sim::SimTime total = 0;
    for (const auto& [label, cct] : profile.ccts) {
      total += cct.TotalCpuTime();
    }
    out << "=== stage '" << profile.stage_name << "' ===\n";
    for (const auto& [label, cct] : profile.ccts) {
      const double share =
          total > 0 ? 100.0 * static_cast<double>(cct.TotalCpuTime()) / static_cast<double>(total)
                    : 0.0;
      out << "--- context " << describe(label) << "  [" << share << "% of stage CPU]\n";
      out << cct.Render(profile.functions, min_fraction);
    }
  }
  // Request edges by the prefix rule, across the loaded stages.
  out << "===== transaction flow edges =====\n";
  for (const LoadedProfile& callee : profiles) {
    for (const auto& [label, cct] : callee.ccts) {
      if (label.parts.empty()) {
        continue;
      }
      context::Synopsis prefix = label;
      prefix.parts.pop_back();
      for (const LoadedProfile& caller : profiles) {
        for (const auto& [caller_label, caller_cct] : caller.ccts) {
          if (&caller_cct == &cct) {
            continue;
          }
          if (caller_label == prefix ||
              (prefix.HasPrefix(caller_label) && caller_label.parts.size() + 1 ==
                                                     label.parts.size())) {
            out << "  " << caller.stage_name << " " << describe(caller_label) << " --["
                << describe(context::Synopsis{{label.parts.back()}}) << "]--> "
                << callee.stage_name << "\n";
          }
        }
      }
    }
  }
  return out.str();
}

}  // namespace whodunit::profiler
