// Deterministic cross-shard profile merging (the presentation-phase
// merge of paper §7.1, applied across shard deployments).
//
// A shard deployment assigns its own FunctionIds, synopsis parts, and
// crosstalk tags, so its profile cannot be summed into another shard's
// by raw id. The merge therefore goes through names: a ShardProfile is
// a self-contained copy of one shard's labeled CCTs (labels rendered
// to their description strings), its crosstalk recorder, and the
// names of its crosstalk tags. MergedProfile folds ShardProfiles in
// the order given — fold shards in shard-index order and the merged
// profile is byte-identical no matter how many threads ran the shards.
#ifndef SRC_PROFILER_SHARD_MERGE_H_
#define SRC_PROFILER_SHARD_MERGE_H_

#include <functional>
#include <map>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "src/callpath/cct.h"
#include "src/callpath/function_registry.h"
#include "src/crosstalk/crosstalk.h"
#include "src/profiler/deployment.h"
#include "src/util/interner.h"

namespace whodunit::profiler {

// A self-contained snapshot of one shard deployment's profile: safe to
// move across threads and to keep after the deployment is destroyed.
struct ShardProfile {
  struct LabeledCct {
    std::string stage;
    std::string label;  // the synopsis description, e.g. "servlet_Buy..."
    callpath::CallingContextTree cct;
  };
  callpath::FunctionRegistry functions;
  std::vector<LabeledCct> ccts;  // sorted by (stage, label)
  crosstalk::CrosstalkRecorder crosstalk;
  std::map<uint64_t, std::string> tag_names;
};

// Copies the deployment's per-stage labeled CCTs (labels described via
// the deployment's namers) and, when given, the crosstalk recorder
// with `tag_namer` applied to every observed tag. Call while the
// deployment is alive — typically as the last step of a shard job.
ShardProfile ExtractShardProfile(const Deployment& deployment,
                                 const crosstalk::CrosstalkRecorder* crosstalk,
                                 const std::function<std::string(uint64_t)>& tag_namer);

// Appends one stage's labeled CCTs to `out` — for apps whose stage
// profiler lives outside deployment.stages(). Appended entries are
// label-sorted per stage, matching ExtractShardProfile's order.
class StageProfiler;
void AppendStageCcts(const Deployment& deployment, const StageProfiler& stage,
                     ShardProfile* out);

class MergedProfile {
 public:
  // Folds one shard in. Function ids are unified by name
  // (FunctionRegistry::MergeFrom), CCTs are summed per (stage, label)
  // with the id translation applied, and crosstalk stats are summed
  // with tags re-keyed by name — shards reporting the same transaction
  // type fold into one row, exactly as a serial run would have.
  void Fold(const ShardProfile& shard);

  // Merged labeled CCTs of one stage, label-sorted (mirrors
  // StageProfiler::LabeledCcts).
  std::vector<std::pair<std::string, const callpath::CallingContextTree*>> LabeledCcts(
      std::string_view stage) const;

  // Transactional-profile text over the merged CCTs of `stage`
  // (mirrors StageProfiler::RenderTransactionalProfile).
  std::string RenderTransactionalProfile(std::string_view stage,
                                         double min_fraction = 0.0) const;

  // Merged crosstalk matrix; MergedTag resolves a tag name to its
  // merged tag id (kNoMergedTag if the name never appeared).
  static constexpr uint64_t kNoMergedTag = ~0ull;
  uint64_t MergedTag(std::string_view name) const;
  const crosstalk::CrosstalkRecorder& crosstalk() const { return crosstalk_; }
  std::string RenderCrosstalk() const;

  const callpath::FunctionRegistry& functions() const { return functions_; }

 private:
  callpath::FunctionRegistry functions_;
  std::map<std::pair<std::string, std::string>, callpath::CallingContextTree> ccts_;
  crosstalk::CrosstalkRecorder crosstalk_;
  util::StringInterner tag_names_;
};

}  // namespace whodunit::profiler

#endif  // SRC_PROFILER_SHARD_MERGE_H_
