// Production-mode transaction sampling (ROADMAP item 2).
//
// Whodunit's §8 overhead numbers assume every transaction is profiled;
// production deployments instead flip one cheap coin per top-level
// transaction (FoundationDB's `profile client set 0.01 100MB` model)
// and pay the full tracking cost — sampler, synopsis piggybacking,
// shm flow emulation, live publish — only for the sampled fraction.
//
// The decision is a stateless hash of (seed, decision index), not a
// stateful RNG stream: every shard draws its decisions in its own
// deterministic scheduler order, so the decision sequence depends only
// on the workload definition (seed + shard decomposition), never on
// how many pool threads ran the shards. That is what keeps the PR 5
// shard-determinism contract intact at any rate.
#ifndef SRC_PROFILER_SAMPLING_H_
#define SRC_PROFILER_SAMPLING_H_

#include <cstdint>

#include "src/obs/metrics.h"

namespace whodunit::profiler {

struct SamplingConfig {
  // Probability a fresh top-level transaction is profiled. 1.0 (the
  // default) keeps the pre-sampling behaviour byte-for-byte: every
  // transaction is sampled and no decision hash is even computed.
  double rate = 1.0;
  // Decision-stream seed. Shard k of a sharded run must use a
  // distinct seed (apps derive base_seed + shard) so shards sample
  // independent subsets.
  uint64_t seed = 0;
};

class SamplingPolicy {
 public:
  // Counters resolve against obs::Registry() at construction so a
  // policy built inside a shard isolate reports into that shard's
  // registry (same rule as StageProfiler's counters).
  SamplingPolicy();

  void Configure(const SamplingConfig& config);
  const SamplingConfig& config() const { return config_; }

  // True when rate >= 1: the gate is wide open and callers may skip
  // sampling-only branches entirely (keeps rate-1.0 byte-identical to
  // the pre-sampling profiler).
  bool always_on() const { return threshold_ == kAlwaysOn; }

  // One per-transaction coin flip; this is the only cost an unsampled
  // transaction pays.
  bool Decide();

  uint64_t decisions() const { return decisions_; }

 private:
  static constexpr uint64_t kAlwaysOn = ~0ULL;

  SamplingConfig config_;
  uint64_t threshold_ = kAlwaysOn;
  uint64_t decisions_ = 0;
  obs::Counter* obs_total_;
  obs::Counter* obs_sampled_;
};

}  // namespace whodunit::profiler

#endif  // SRC_PROFILER_SAMPLING_H_
