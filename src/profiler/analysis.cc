#include "src/profiler/analysis.h"

#include <algorithm>
#include <sstream>

namespace whodunit::profiler {
namespace {

void FinalizeShares(std::vector<ContextShare>& rows, size_t max_rows) {
  std::sort(rows.begin(), rows.end(),
            [](const ContextShare& a, const ContextShare& b) { return a.cpu > b.cpu; });
  sim::SimTime total = 0;
  for (const ContextShare& row : rows) {
    total += row.cpu;
  }
  for (ContextShare& row : rows) {
    row.share = total > 0 ? 100.0 * static_cast<double>(row.cpu) /
                                static_cast<double>(total)
                          : 0.0;
  }
  if (rows.size() > max_rows) {
    rows.resize(max_rows);
  }
}

}  // namespace

std::vector<ContextShare> Analysis::TopContexts(const StageProfiler& stage,
                                                size_t max_rows) const {
  std::vector<ContextShare> rows;
  for (const auto& [label, cct] : stage.LabeledCcts()) {
    ContextShare row;
    row.label = label;
    row.description = label.empty() ? "(origin)" : deployment_.DescribeSynopsis(label);
    row.cpu = cct->TotalCpuTime();
    rows.push_back(std::move(row));
  }
  FinalizeShares(rows, max_rows);
  return rows;
}

std::vector<ContextShare> Analysis::WhoCauses(const StageProfiler& stage,
                                              std::string_view function_name,
                                              size_t max_rows) const {
  const uint32_t fn = deployment_.functions().size() == 0
                          ? util::StringInterner::kNotFound
                          : [&] {
                              // Linear lookup by name (analysis is offline).
                              for (uint32_t i = 0; i < deployment_.functions().size(); ++i) {
                                if (deployment_.functions().NameOf(i) == function_name) {
                                  return i;
                                }
                              }
                              return util::StringInterner::kNotFound;
                            }();
  std::vector<ContextShare> rows;
  if (fn == util::StringInterner::kNotFound) {
    return rows;
  }
  for (const auto& [label, cct] : stage.LabeledCcts()) {
    sim::SimTime fn_cpu = 0;
    for (callpath::NodeIndex i = 1; i < cct->size(); ++i) {
      if (cct->node(i).function == fn) {
        fn_cpu += cct->InclusiveCpuTime(i);
      }
    }
    if (fn_cpu == 0) {
      continue;
    }
    ContextShare row;
    row.label = label;
    row.description = label.empty() ? "(origin)" : deployment_.DescribeSynopsis(label);
    row.cpu = fn_cpu;
    rows.push_back(std::move(row));
  }
  FinalizeShares(rows, max_rows);
  return rows;
}

std::string Analysis::RenderWhoCauses(const StageProfiler& stage,
                                      std::string_view function_name, size_t max_rows) const {
  std::ostringstream out;
  out << "who causes '" << function_name << "' at stage '" << stage.name() << "':\n";
  auto rows = WhoCauses(stage, function_name, max_rows);
  if (rows.empty()) {
    out << "  (function never sampled)\n";
    return out.str();
  }
  for (const ContextShare& row : rows) {
    out << "  " << row.share << "% (" << sim::ToMillis(row.cpu) << "ms)  via "
        << row.description << "\n";
  }
  return out.str();
}

}  // namespace whodunit::profiler
