#include "src/profiler/deployment.h"

#include <sstream>
#include <utility>

#include "src/context/context_tree.h"
#include "src/obs/live/daemon.h"
#include "src/profiler/stage_profiler.h"

namespace whodunit::profiler {

Deployment::Deployment() = default;
Deployment::~Deployment() = default;

std::string Deployment::DescribeElement(context::ElementKind kind, uint32_t id) const {
  if (kind == context::ElementKind::kCallPath) {
    return paths_.Render(id, functions_);
  }
  if (element_namer_) {
    return element_namer_(kind, id);
  }
  std::ostringstream out;
  out << (kind == context::ElementKind::kHandler ? "handler:" : "stage:") << id;
  return out.str();
}

std::string Deployment::DescribeContext(const context::TransactionContext& ctxt) const {
  return ctxt.ToString(
      [this](context::ElementKind kind, uint32_t id) { return DescribeElement(kind, id); });
}

std::string Deployment::DescribeSynopsis(const context::Synopsis& synopsis) const {
  std::ostringstream out;
  bool first = true;
  for (uint32_t part : synopsis.parts) {
    if (!first) {
      out << " # ";
    }
    first = false;
    if (synopses_.Contains(part)) {
      out << DescribeContext(synopses_.Lookup(part));
    } else {
      out << "?" << part;
    }
  }
  return out.str();
}

StageProfiler& Deployment::AddStage(std::unique_ptr<StageProfiler> stage) {
  stages_.push_back(std::move(stage));
  stages_.back()->AttachLive(live_);
  return *stages_.back();
}

void Deployment::AttachLive(obs::live::Whodunitd* live) {
  live_ = live;
  for (const auto& stage : stages_) {
    stage->AttachLive(live);
  }
  if (live == nullptr) {
    return;
  }
  live->set_flush_hook([this] { FlushLiveCosts(); });
  live->set_ctxt_namer([this](context::NodeId node) {
    if (node == context::kEmptyContext) {
      return std::string("(origin)");
    }
    return DescribeContext(context::GlobalContextTree().Materialize(node));
  });
}

void Deployment::FlushLiveCosts() {
  for (const auto& stage : stages_) {
    stage->FlushLive();
  }
}

}  // namespace whodunit::profiler
