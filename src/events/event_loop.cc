#include "src/events/event_loop.h"

#include <algorithm>
#include <utility>

namespace whodunit::events {

EventLoop::EventLoop(sim::Scheduler& sched, std::string name)
    : sched_(sched),
      name_(std::move(name)),
      queue_(sched),
      obs_dispatched_(&obs::Registry().GetCounter("events.dispatched")),
      obs_external_(&obs::Registry().GetCounter("events.external_injected")),
      obs_queue_depth_(&obs::Registry().GetHistogram("events.queue_depth",
                                                     obs::DefaultDepthBounds())),
      obs_handler_ns_(&obs::Registry().GetHistogram("events.handler_ns",
                                                    obs::DefaultLatencyBoundsNs())),
      obs_queue_wait_(&obs::Registry().GetHistogram("events.queue_wait_ns",
                                                    obs::DefaultLatencyBoundsNs())) {}

HandlerId EventLoop::RegisterHandler(std::string_view name, Handler handler) {
  const HandlerId id = handlers_.Intern(name);
  if (id >= handler_fns_.size()) {
    handler_fns_.resize(id + 1);
  }
  handler_fns_[id] = std::move(handler);
  return id;
}

void EventLoop::AddEvent(HandlerId handler, uint64_t payload) {
  Event ev{handler, payload, context::kEmptyContext, curr_sampled_};
  if (tracking_ && curr_sampled_) {
    ev.tran_ctxt = curr_node_;  // Figure 4, line 12
  }
  ev.posted_ns = sched_.now();
  queue_.Send(std::move(ev));
}

void EventLoop::AddExternalEvent(HandlerId handler, uint64_t payload, bool sampled) {
  obs_external_->Add();
  queue_.Send(Event{handler, payload, context::kEmptyContext, sampled, sched_.now()});
}

sim::Process EventLoop::Run() {
  for (;;) {
    auto ev = co_await queue_.Receive();
    if (!ev) {
      break;  // Stop() was called
    }
    obs_queue_depth_->Observe(queue_.pending());
    curr_queue_wait_ns_ = std::max<int64_t>(0, sched_.now() - ev->posted_ns);
    obs_queue_wait_->Observe(static_cast<uint64_t>(curr_queue_wait_ns_));
    if (tracking_) {
      curr_sampled_ = ev->sampled;
      if (ev->sampled) {
        // Figure 4, lines 5-6: concatenate the event's context with
        // its handler; Append prunes consecutive duplicates and loops.
        // With the interned tree this is one hash-cons probe, not a
        // vector copy.
        curr_node_ = context::GlobalContextTree().Append(
            ev->tran_ctxt,
            context::Element{context::ElementKind::kHandler, ev->handler}, pruning_);
      } else {
        curr_node_ = context::kEmptyContext;
      }
      if (listener_) {
        listener_(curr_node_, ev->sampled);
      }
    }
    ++events_dispatched_;
    obs_dispatched_->Add();
    const sim::SimTime start = sched_.now();
    HandlerContext hc{*this, ev->payload};
    co_await handler_fns_[ev->handler](hc);
    const sim::SimTime elapsed = sched_.now() - start;
    obs_handler_ns_->Observe(static_cast<uint64_t>(elapsed));
    obs::Tracer().Record(obs::SpanRecord{"events.handler", handlers_.NameOf(ev->handler),
                                         tracking_ ? context::GlobalContextTree().HashOf(curr_node_) : 0,
                                         static_cast<int64_t>(start),
                                         static_cast<int64_t>(elapsed)});
  }
}

}  // namespace whodunit::events
