// A libevent-like event library with transaction-context propagation.
//
// Figure 4 of the paper: the event structure carries a transaction
// context (`ev_tran_ctxt`), stamped when the event is registered; the
// event loop computes the current transaction context by concatenating
// the selected event's context with its handler (pruning loops) before
// dispatch. An application written against this library needs no
// modification for transactional profiling — exactly the property the
// paper claims for instrumented event libraries.
#ifndef SRC_EVENTS_EVENT_LOOP_H_
#define SRC_EVENTS_EVENT_LOOP_H_

#include <cstdint>
#include <deque>
#include <functional>
#include <string>
#include <string_view>
#include <vector>

#include "src/context/context_tree.h"
#include "src/context/transaction_context.h"
#include "src/obs/metrics.h"
#include "src/obs/trace.h"
#include "src/sim/channel.h"
#include "src/sim/scheduler.h"
#include "src/sim/task.h"
#include "src/util/interner.h"

namespace whodunit::events {

using HandlerId = uint32_t;

struct Event {
  HandlerId handler;
  uint64_t payload;  // application data (connection id, fd, ...)
  // ev_tran_ctxt: the registering handler's transaction context, as an
  // interned context-tree node — a 4-byte handle, so stamping an event
  // no longer copies the element sequence.
  context::NodeId tran_ctxt = context::kEmptyContext;
  // Production sampling (docs/PRODUCTION.md): the transaction's
  // sampling decision rides beside the context handle; unsampled
  // events are dispatched without any context-tree work.
  bool sampled = true;
  // Virtual time the event was queued (stamped by AddEvent/Post); the
  // loop's queue residency is dispatch time minus this, the
  // kQueueWait attribution feed.
  int64_t posted_ns = 0;
};

class EventLoop {
 public:
  // A handler is a coroutine; the loop runs handlers to completion one
  // at a time (a single-threaded event-driven program).
  struct HandlerContext;
  using Handler = std::function<sim::Task<void>(HandlerContext&)>;

  // Fired whenever the current transaction context changes (before a
  // handler runs); the profiler glue hangs off this. Receives the
  // interned node id (materialize via GlobalContextTree() if the
  // element sequence itself is needed) and the event's sampling
  // decision (the node is kEmptyContext when unsampled — no
  // concatenation was performed).
  using ContextListener = std::function<void(context::NodeId, bool sampled)>;

  explicit EventLoop(sim::Scheduler& sched, std::string name = "event_loop");

  HandlerId RegisterHandler(std::string_view name, Handler handler);
  const std::string& HandlerName(HandlerId h) const { return handlers_.NameOf(h); }

  // event_add: stamps the new event with the CURRENT transaction
  // context (Figure 4 line 12) and queues it for dispatch.
  void AddEvent(HandlerId handler, uint64_t payload);

  // Injects an event from outside any handler (a fresh external
  // stimulus): its transaction context starts empty. `sampled` is the
  // fresh transaction's sampling decision
  // (profiler::SamplingPolicy::Decide at the origin).
  void AddExternalEvent(HandlerId handler, uint64_t payload, bool sampled = true);

  // The commSetSelect pattern: a handler registers interest in a
  // future I/O completion. MakeEvent stamps the CURRENT transaction
  // context into the event immediately (at registration time); Post
  // queues it later, when the I/O completes, preserving that context.
  Event MakeEvent(HandlerId handler, uint64_t payload) {
    Event ev{handler, payload, context::kEmptyContext, curr_sampled_};
    if (tracking_ && curr_sampled_) {
      ev.tran_ctxt = curr_node_;
    }
    return ev;
  }
  void Post(Event ev) {
    ev.posted_ns = sched_.now();
    queue_.Send(std::move(ev));
  }

  void set_context_listener(ContextListener listener) { listener_ = std::move(listener); }

  // The event_loop() of Figure 4. Runs until Stop().
  sim::Process Run();
  void Stop() { queue_.Close(); }

  // The current transaction context as an interned node (the hot-path
  // representation) and materialized into the legacy value form.
  context::NodeId current_node() const { return curr_node_; }
  context::TransactionContext current_context() const {
    return context::GlobalContextTree().Materialize(curr_node_);
  }
  // The sampling decision of the event being dispatched.
  bool current_sampled() const { return curr_sampled_; }
  // Queue residency of the event being dispatched (dispatch time
  // minus its AddEvent/Post stamp) — the kQueueWait feed.
  int64_t current_queue_wait_ns() const { return curr_queue_wait_ns_; }
  uint64_t events_dispatched() const { return events_dispatched_; }

  // Whether context tracking is enabled (profiling on). When off, the
  // library behaves like stock libevent.
  void set_tracking(bool on) { tracking_ = on; }

  // Disables §4.1 loop pruning, keeping the complete handler history.
  // The paper: "the complete transaction context may be useful for
  // some applications, e.g., for debugging."
  void set_pruning(bool on) { pruning_ = on; }

  sim::Scheduler& scheduler() { return sched_; }

  struct HandlerContext {
    EventLoop& loop;
    uint64_t payload;
  };

 private:
  sim::Scheduler& sched_;
  std::string name_;
  util::StringInterner handlers_;
  std::vector<Handler> handler_fns_;
  sim::Channel<Event> queue_;
  context::NodeId curr_node_ = context::kEmptyContext;
  bool curr_sampled_ = true;
  int64_t curr_queue_wait_ns_ = 0;
  ContextListener listener_;
  bool tracking_ = true;
  bool pruning_ = true;
  uint64_t events_dispatched_ = 0;

  // Self-observability handles, resolved once (see docs/METRICS.md).
  obs::Counter* obs_dispatched_;
  obs::Counter* obs_external_;
  obs::Histogram* obs_queue_depth_;
  obs::Histogram* obs_handler_ns_;
  obs::Histogram* obs_queue_wait_;
};

}  // namespace whodunit::events

#endif  // SRC_EVENTS_EVENT_LOOP_H_
