// whodunit_top: a `top`-style console for the live observability
// daemon (docs/OBSERVABILITY.md).
//
// Runs the TPC-W bookstore with a whodunitd daemon attached and
// renders the daemon's top-transactions table every poll interval of
// *virtual* time — latency quantiles and error counts per transaction
// type, per-stage throughput, the live crosstalk matrix, and the most
// expensive transaction contexts. On exit it prints the final
// snapshot and can dump the retained transactions as Chrome trace
// JSON (load in chrome://tracing or https://ui.perfetto.dev).
//
// Usage:
//   whodunit_top [--duration S] [--warmup S] [--clients N]
//                [--interval S] [--ring N] [--span-out FILE]
//                [--json-out FILE] [--no-clear] [--seed N]
//                [--shards S] [--threads T]
//                [--sample-rate R] [--sample-seed N] [--history-bytes B]
//                [--publish-batch N]
//                [--why-tail] [--attr-out FILE] [--no-attribution]
//
// --sample-rate R profiles a fraction R of transactions (the
// production-sampling knob, docs/PRODUCTION.md); the header then shows
// the sampled/total ratio. --history-bytes B bounds the daemon's
// retained-transaction store (oldest evicted first; 0 disables).
//
// --why-tail prints the p99-vs-p50 wait-state differential per
// transaction type (docs/OBSERVABILITY.md §tail diagnosis); --attr-out
// writes the whodunit-attr-v1 folded-stack attribution profile
// (docs/PROFILE_FORMAT.md) for flamegraph tooling; --no-attribution
// turns the critical-path attribution pass off entirely (the ablation
// knob measured by bench_ablation_live_obs).
//
// --shards S > 1 partitions the clients into S independent
// deployments run on --threads workers (sim::ParallelRunner) and
// prints the merged final snapshot; the periodic refresh is disabled
// (the live table callback is not shard-safe).
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>

#include "src/apps/bookstore/bookstore.h"
#include "src/callpath/profiler_mode.h"
#include "src/sim/time.h"

namespace {

struct Flags {
  long duration_s = 300;
  long warmup_s = 30;
  int clients = 100;
  long interval_s = 30;
  size_t ring = 128;
  std::string span_out;
  std::string json_out;
  bool clear_screen = true;
  uint64_t seed = 1;
  int shards = 1;
  int threads = 1;
  double sample_rate = 1.0;
  uint64_t sample_seed = 0;
  size_t history_bytes = 1 << 20;
  size_t publish_batch = 64;
  bool why_tail = false;
  std::string attr_out;
  bool attribution = true;
  whodunit::workload::ArrivalConfig arrivals;
};

void Usage(const char* argv0) {
  std::fprintf(stderr,
               "usage: %s [--duration S] [--warmup S] [--clients N]\n"
               "          [--interval S] [--ring N] [--span-out FILE]\n"
               "          [--json-out FILE] [--no-clear] [--seed N]\n"
               "          [--shards S] [--threads T]\n"
               "          [--sample-rate R] [--sample-seed N] [--history-bytes B]\n"
               "          [--publish-batch N]\n"
               "          [--why-tail] [--attr-out FILE] [--no-attribution]\n"
               "          [--arrivals closed|poisson|bursty] [--offered-load TPS]\n",
               argv0);
}

bool ParseFlags(int argc, char** argv, Flags* flags) {
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    auto next = [&](long* out) {
      if (i + 1 >= argc) return false;
      *out = std::strtol(argv[++i], nullptr, 10);
      return true;
    };
    long v = 0;
    if (arg == "--duration" && next(&v)) {
      flags->duration_s = v;
    } else if (arg == "--warmup" && next(&v)) {
      flags->warmup_s = v;
    } else if (arg == "--clients" && next(&v)) {
      flags->clients = static_cast<int>(v);
    } else if (arg == "--interval" && next(&v)) {
      flags->interval_s = v;
    } else if (arg == "--ring" && next(&v)) {
      flags->ring = static_cast<size_t>(v);
    } else if (arg == "--seed" && next(&v)) {
      flags->seed = static_cast<uint64_t>(v);
    } else if (arg == "--shards" && next(&v)) {
      flags->shards = static_cast<int>(v);
    } else if (arg == "--threads" && next(&v)) {
      flags->threads = static_cast<int>(v);
    } else if (arg == "--sample-rate" && i + 1 < argc) {
      flags->sample_rate = std::strtod(argv[++i], nullptr);
    } else if (arg == "--sample-seed" && next(&v)) {
      flags->sample_seed = static_cast<uint64_t>(v);
    } else if (arg == "--history-bytes" && next(&v)) {
      flags->history_bytes = static_cast<size_t>(v);
    } else if (arg == "--publish-batch" && next(&v)) {
      flags->publish_batch = static_cast<size_t>(v);
    } else if (arg == "--why-tail") {
      flags->why_tail = true;
    } else if (arg == "--attr-out" && i + 1 < argc) {
      flags->attr_out = argv[++i];
    } else if (arg == "--no-attribution") {
      flags->attribution = false;
    } else if (arg == "--arrivals" && i + 1 < argc) {
      const std::string kind = argv[++i];
      if (!whodunit::workload::ParseArrivalKind(kind, &flags->arrivals.kind)) {
        std::fprintf(stderr, "bad --arrivals value: %s\n", kind.c_str());
        return false;
      }
    } else if (arg == "--offered-load" && i + 1 < argc) {
      flags->arrivals.offered_load_tps = std::strtod(argv[++i], nullptr);
    } else if (arg == "--span-out" && i + 1 < argc) {
      flags->span_out = argv[++i];
    } else if (arg == "--json-out" && i + 1 < argc) {
      flags->json_out = argv[++i];
    } else if (arg == "--no-clear") {
      flags->clear_screen = false;
    } else if (arg == "--help" || arg == "-h") {
      Usage(argv[0]);
      std::exit(0);
    } else {
      std::fprintf(stderr, "unknown flag: %s\n", arg.c_str());
      Usage(argv[0]);
      return false;
    }
  }
  return true;
}

bool WriteFile(const std::string& path, const std::string& body) {
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) {
    std::fprintf(stderr, "whodunit_top: cannot open %s\n", path.c_str());
    return false;
  }
  std::fwrite(body.data(), 1, body.size(), f);
  std::fclose(f);
  return true;
}

}  // namespace

int main(int argc, char** argv) {
  Flags flags;
  if (!ParseFlags(argc, argv, &flags)) return 2;

  whodunit::apps::BookstoreOptions options;
  options.mode = whodunit::callpath::ProfilerMode::kWhodunit;
  options.clients = flags.clients;
  options.duration = whodunit::sim::Seconds(flags.duration_s);
  options.warmup = whodunit::sim::Seconds(flags.warmup_s);
  options.seed = flags.seed;
  options.live = true;
  options.sample_rate = flags.sample_rate;
  options.sample_seed = flags.sample_seed;
  options.live_history_bytes = flags.history_bytes;
  options.live_publish_batch = flags.publish_batch;
  options.live_span_ring = flags.ring;
  options.live_attribution = flags.attribution;
  options.live_poll_interval = whodunit::sim::Seconds(flags.interval_s);
  options.shards = flags.shards;
  options.threads = flags.threads;
  options.arrivals = flags.arrivals;
  if (flags.shards > 1) {
    // RunBookstore ignores on_live_top when sharded; say so up front
    // rather than silently never refreshing.
    std::printf("[%d shards on %d threads: periodic refresh disabled, "
                "final merged snapshot only]\n",
                flags.shards, flags.threads);
  } else {
    options.on_live_top = [&flags](const std::string& table) {
      if (flags.clear_screen) {
        std::fputs("\x1b[H\x1b[2J", stdout);  // cursor home + clear
      }
      std::fputs(table.c_str(), stdout);
      std::fflush(stdout);
    };
  }

  const auto result = whodunit::apps::RunBookstore(options);

  if (flags.clear_screen) std::fputs("\x1b[H\x1b[2J", stdout);
  std::fputs(result.live_top_text.c_str(), stdout);
  if (flags.why_tail) {
    std::fputs(result.live_why_tail_text.c_str(), stdout);
  }
  std::printf("\n[run complete: %.0f interactions/min, %llu interactions]\n",
              result.throughput_tpm,
              static_cast<unsigned long long>(result.interactions));

  int rc = 0;
  if (!flags.attr_out.empty()) {
    if (WriteFile(flags.attr_out, result.live_attr_folded)) {
      std::printf("attribution profile written to %s (whodunit-attr-v1)\n",
                  flags.attr_out.c_str());
    } else {
      rc = 1;
    }
  }
  if (!flags.span_out.empty()) {
    if (WriteFile(flags.span_out, result.live_span_json)) {
      std::printf("spans written to %s (load in chrome://tracing)\n",
                  flags.span_out.c_str());
    } else {
      rc = 1;
    }
  }
  if (!flags.json_out.empty()) {
    if (WriteFile(flags.json_out, result.live_query_json)) {
      std::printf("query snapshot written to %s\n", flags.json_out.c_str());
    } else {
      rc = 1;
    }
  }
  return rc;
}
