#include "src/apps/miniproxy/miniproxy.h"

#include <algorithm>
#include <list>
#include <map>
#include <memory>
#include <unordered_map>
#include <vector>

#include "src/events/event_loop.h"
#include "src/http/http.h"
#include "src/obs/metrics.h"
#include "src/profiler/deployment.h"
#include "src/profiler/shard_merge.h"
#include "src/profiler/stage_profiler.h"
#include "src/sim/parallel_runner.h"
#include "src/sim/channel.h"
#include "src/sim/cpu.h"
#include "src/sim/scheduler.h"
#include "src/sim/task.h"
#include "src/util/rng.h"
#include "src/util/zipf.h"
#include "src/workload/arrivals.h"
#include "src/workload/calibration.h"
#include "src/workload/webtrace.h"

namespace whodunit::apps {
namespace {

using callpath::TracksTransactions;
using events::EventLoop;
using profiler::StageProfiler;
using profiler::ThreadProfile;

// A small LRU object cache (Squid's in-memory store).
class LruCache {
 public:
  explicit LruCache(size_t capacity) : capacity_(capacity) {}

  bool Lookup(uint32_t object) {
    auto it = index_.find(object);
    if (it == index_.end()) {
      return false;
    }
    order_.splice(order_.begin(), order_, it->second);
    return true;
  }

  void Insert(uint32_t object) {
    if (index_.contains(object)) {
      return;
    }
    order_.push_front(object);
    index_[object] = order_.begin();
    if (order_.size() > capacity_) {
      index_.erase(order_.back());
      order_.pop_back();
    }
  }

 private:
  size_t capacity_;
  std::list<uint32_t> order_;
  std::unordered_map<uint32_t, std::list<uint32_t>::iterator> index_;
};

// Connections injected by an open-loop generator carry this sentinel
// client id: no closed-loop coroutine is waiting on client_done_.
constexpr uint32_t kOpenLoopClient = 0xFFFFFFFFu;

struct ClientConn {
  uint32_t client;
  std::vector<uint32_t> objects;  // Zipf-drawn, one per request
};

struct OriginRequest {
  uint64_t req_handle;
  uint32_t object;
};

class Proxy {
 public:
  explicit Proxy(const MiniproxyOptions& options)
      : options_(options),
        proxy_cpu_(sched_, workload::kProxyCores, "squid_cpu"),
        origin_cpu_(sched_, 2, "origin_cpu"),
        loop_(sched_, "comm_poll"),
        prof_(dep_, MakeProfilerOptions(options)),
        origin_ch_(sched_, workload::kLanLatency),
        accept_ch_(sched_),
        cache_(workload::kProxyCacheObjects) {
    dep_.sampling().Configure(profiler::SamplingConfig{
        options.sample_rate,
        options.sample_seed != 0 ? options.sample_seed : options.seed});
  }

  MiniproxyResult Run(profiler::ShardProfile* out_profile = nullptr);

  void SetShard(size_t index, size_t count) { dep_.set_shard(index, count); }

 private:
  static StageProfiler::Options MakeProfilerOptions(const MiniproxyOptions& options) {
    StageProfiler::Options po;
    po.name = "squid";
    po.mode = options.mode;
    po.sample_period = workload::kSamplePeriod;
    po.costs.per_sample = workload::kPerSampleCost;
    po.costs.per_call = workload::kPerCallCost;
    po.costs.per_message_context = workload::kPerMessageContextCost;
    return po;
  }

  // Per-dispatch cost of the instrumented event library when
  // transaction tracking is on (context concatenation + annotation).
  // Unsampled events skip it: the library elides the concatenation for
  // them, which is the overhead sampling buys back.
  sim::SimTime TrackingCost() const {
    return TracksTransactions(options_.mode) && loop_.current_sampled()
               ? workload::kPerEventTrackingCost
               : 0;
  }

  sim::Task<void> Charge(sim::SimTime cost) {
    co_await proxy_cpu_.Consume(prof_.ChargeCpu(*loop_tp_, cost));
  }

  struct ReqState {
    uint32_t client;
    uint32_t object = 0;
    std::vector<uint32_t> objects;
    size_t next_index = 0;
  };

  void RegisterHandlers() {
    accept_h_ = loop_.RegisterHandler(
        "httpAccept", [this](EventLoop::HandlerContext& hc) -> sim::Task<void> {
          co_await Charge(workload::kAcceptCost + TrackingCost());
          hc.loop.AddEvent(read_h_, hc.payload);
        });

    read_h_ = loop_.RegisterHandler(
        "clientReadRequest", [this](EventLoop::HandlerContext& hc) -> sim::Task<void> {
          ReqState& st = requests_.at(hc.payload);
          co_await Charge(workload::kHttpParseCost + workload::kCacheLookupCost +
                          TrackingCost());
          if (cache_.Lookup(st.object)) {
            ++hits_;
            hc.loop.AddEvent(write_h_, hc.payload);
          } else {
            ++misses_;
            hc.loop.AddEvent(connect_h_, hc.payload);
          }
        });

    connect_h_ = loop_.RegisterHandler(
        "commConnectHandle", [this](EventLoop::HandlerContext& hc) -> sim::Task<void> {
          ReqState& st = requests_.at(hc.payload);
          co_await Charge(sim::Micros(40) + TrackingCost());
          // Register interest in the origin's reply NOW (this is where
          // the transaction context is captured), then fire the I/O.
          events::Event ev = hc.loop.MakeEvent(reply_h_, hc.payload);
          pending_replies_.emplace(hc.payload, std::move(ev));
          origin_ch_.Send(OriginRequest{hc.payload, st.object});
        });

    reply_h_ = loop_.RegisterHandler(
        "httpReadReply", [this](EventLoop::HandlerContext& hc) -> sim::Task<void> {
          ReqState& st = requests_.at(hc.payload);
          const uint64_t bytes = trace_.ObjectBytes(st.object);
          co_await Charge(static_cast<sim::SimTime>(static_cast<double>(bytes) *
                                                    workload::kProxyNsPerByte / 2) +
                          TrackingCost());
          cache_.Insert(st.object);
          hc.loop.AddEvent(write_h_, hc.payload);
        });

    write_h_ = loop_.RegisterHandler(
        "commHandleWrite", [this](EventLoop::HandlerContext& hc) -> sim::Task<void> {
          ReqState& st = requests_.at(hc.payload);
          const uint64_t bytes = trace_.ObjectBytes(st.object);
          co_await Charge(static_cast<sim::SimTime>(static_cast<double>(bytes) *
                                                    workload::kProxyNsPerByte) +
                          TrackingCost());
          bytes_served_ += bytes;
          ++requests_served_;
          if (st.next_index < st.objects.size()) {
            // Persistent connection: next request on the same fd. The
            // event context loops back to clientReadRequest — the
            // pruning case of §4.1.
            st.object = st.objects[st.next_index++];
            hc.loop.AddEvent(read_h_, hc.payload);
          } else {
            if (st.client != kOpenLoopClient) {
              client_done_[st.client]->Send(1);
            }
            requests_.erase(hc.payload);
          }
          co_return;
        });
  }

  sim::Process AcceptPump() {
    for (;;) {
      auto conn = co_await accept_ch_.Receive();
      if (!conn) {
        break;
      }
      const uint64_t handle = next_handle_++;
      ReqState st;
      st.client = conn->client;
      st.objects = std::move(conn->objects);
      st.object = st.objects.empty() ? 0 : st.objects[0];
      st.next_index = 1;
      requests_.emplace(handle, std::move(st));
      // The sampling decision is drawn once per connection, here at
      // the transaction's origin; it rides on every event the
      // connection spawns.
      const bool sampled =
          !TracksTransactions(options_.mode) || dep_.sampling().Decide();
      loop_.AddExternalEvent(accept_h_, handle, sampled);
    }
  }

  sim::Process OriginServer() {
    for (;;) {
      auto req = co_await origin_ch_.Receive();
      if (!req) {
        break;
      }
      sim::Spawn(sched_, OriginWorker(*req));
    }
  }

  sim::Process OriginWorker(OriginRequest req) {
    const uint64_t bytes = trace_.ObjectBytes(req.object);
    co_await origin_cpu_.Consume(
        workload::kOriginServiceCost +
        static_cast<sim::SimTime>(static_cast<double>(bytes) * 2.0));
    // Network latency back to the proxy, then fire the armed event.
    co_await sim::Delay{sched_, workload::kLanLatency};
    auto it = pending_replies_.find(req.req_handle);
    if (it != pending_replies_.end()) {
      loop_.Post(std::move(it->second));
      pending_replies_.erase(it);
    }
  }

  sim::Process Client(uint32_t index, uint64_t seed) {
    util::Rng rng(seed);
    for (;;) {
      if (sched_.now() >= options_.duration) {
        break;
      }
      ClientConn conn;
      conn.client = index;
      conn.objects = trace_.DrawConnection(rng);
      accept_ch_.Send(std::move(conn));
      auto done = co_await client_done_[index]->Receive();
      if (!done) {
        break;
      }
    }
  }

  // Open-loop load: one generator stands in for ~10k logical clients,
  // injecting connections on an arrival clock instead of waiting for
  // completions (src/workload/arrivals.h).
  sim::Process OpenLoopGenerator(double tps, uint64_t seed) {
    util::Rng base(seed);
    workload::ArrivalProcess arrivals(options_.arrivals, tps, base.NextU64());
    util::Rng draw(base.NextU64());
    for (;;) {
      co_await sim::Delay{sched_, arrivals.NextInterarrival()};
      if (sched_.now() >= options_.duration) {
        break;
      }
      ClientConn conn;
      conn.client = kOpenLoopClient;
      conn.objects = trace_.DrawConnection(draw);
      accept_ch_.Send(std::move(conn));
    }
  }

  MiniproxyOptions options_;
  sim::Scheduler sched_;
  sim::CpuResource proxy_cpu_;
  sim::CpuResource origin_cpu_;
  EventLoop loop_;
  profiler::Deployment dep_;
  StageProfiler prof_;
  ThreadProfile* loop_tp_ = nullptr;
  sim::Channel<OriginRequest> origin_ch_;
  sim::Channel<ClientConn> accept_ch_;
  LruCache cache_;
  workload::WebTrace trace_;

  events::HandlerId accept_h_ = 0, read_h_ = 0, connect_h_ = 0, reply_h_ = 0, write_h_ = 0;
  std::map<uint64_t, ReqState> requests_;
  std::map<uint64_t, events::Event> pending_replies_;
  std::vector<std::unique_ptr<sim::Channel<uint8_t>>> client_done_;
  uint64_t next_handle_ = 1;

  uint64_t bytes_served_ = 0;
  uint64_t requests_served_ = 0;
  uint64_t hits_ = 0;
  uint64_t misses_ = 0;
};

MiniproxyResult Proxy::Run(profiler::ShardProfile* out_profile) {
  loop_tp_ = &prof_.CreateThread("event_loop");
  RegisterHandlers();
  loop_.set_tracking(TracksTransactions(options_.mode));
  loop_.set_context_listener([this](context::NodeId node, bool sampled) {
    prof_.SetSampled(*loop_tp_, sampled);
    prof_.SetLocalContext(*loop_tp_, node);
  });
  dep_.set_element_namer([this](context::ElementKind kind, uint32_t id) {
    return kind == context::ElementKind::kHandler ? loop_.HandlerName(id)
                                                  : "stage:" + std::to_string(id);
  });

  const bool open_loop =
      options_.arrivals.kind != workload::ArrivalKind::kClosed;
  if (!open_loop) {
    for (int c = 0; c < options_.clients; ++c) {
      client_done_.push_back(std::make_unique<sim::Channel<uint8_t>>(sched_));
    }
  }
  sim::Spawn(sched_, loop_.Run());
  sim::Spawn(sched_, AcceptPump());
  sim::Spawn(sched_, OriginServer());
  if (open_loop) {
    const auto clients = static_cast<uint64_t>(options_.clients);
    const uint64_t per_gen =
        std::max<uint64_t>(1, options_.arrivals.clients_per_generator);
    const auto gens = static_cast<int>((clients + per_gen - 1) / per_gen);
    // Miniproxy clients have no think time; the 0 mean falls back to
    // 1 conn/client/sec unless --offered-load pins the aggregate.
    const double tps = workload::EffectiveOfferedTps(
        options_.arrivals, clients, /*per_client_think_mean=*/0);
    util::Rng gen_seeder(options_.seed ^ 0x9E3779B97F4A7C15ULL);
    for (int g = 0; g < gens; ++g) {
      sim::Spawn(sched_, OpenLoopGenerator(tps / gens, gen_seeder.NextU64()));
    }
  } else {
    util::Rng seeder(options_.seed);
    for (int c = 0; c < options_.clients; ++c) {
      sim::Spawn(sched_, Client(static_cast<uint32_t>(c), seeder.NextU64()));
    }
  }

  const sim::SimTime warmup = options_.duration / 5;
  uint64_t warm_bytes = 0;
  sched_.ScheduleAt(warmup, [&] { warm_bytes = bytes_served_; });
  sched_.RunUntil(options_.duration);

  accept_ch_.Close();
  origin_ch_.Close();
  loop_.Stop();
  for (auto& ch : client_done_) {
    ch->Close();
  }
  sched_.Run();

  MiniproxyResult result;
  result.requests = requests_served_;
  result.cache_hits = hits_;
  result.cache_misses = misses_;
  result.hit_ratio =
      hits_ + misses_ > 0 ? static_cast<double>(hits_) / static_cast<double>(hits_ + misses_)
                          : 0.0;
  const double window_s = sim::ToSeconds(options_.duration - warmup);
  result.throughput_mbps =
      static_cast<double>(bytes_served_ - warm_bytes) * 8.0 / 1e6 / window_s;
  result.profile_text = prof_.RenderTransactionalProfile(0.001);

  // Count the contexts in which commHandleWrite executed, and the
  // hit/miss path shares.
  result.total_cpu_ns = prof_.total_cpu_time();
  for (const auto& [label, cct] : prof_.LabeledCcts()) {
    if (label.parts.empty()) {
      continue;
    }
    const context::TransactionContext& ctxt = dep_.synopses().Lookup(label.parts.back());
    if (ctxt.elements().empty()) {
      continue;
    }
    const bool ends_in_write =
        ctxt.elements().back() ==
        context::Element{context::ElementKind::kHandler, write_h_};
    bool via_reply = false;
    for (const auto& e : ctxt.elements()) {
      if (e == context::Element{context::ElementKind::kHandler, reply_h_}) {
        via_reply = true;
      }
    }
    if (ends_in_write) {
      ++result.write_handler_context_count;
      if (via_reply) {
        result.miss_path_cpu_ns += cct->TotalCpuTime();
      } else {
        result.hit_path_cpu_ns += cct->TotalCpuTime();
      }
    }
  }
  if (result.total_cpu_ns > 0) {
    const double total = static_cast<double>(result.total_cpu_ns);
    result.hit_path_share = 100.0 * static_cast<double>(result.hit_path_cpu_ns) / total;
    result.miss_path_share = 100.0 * static_cast<double>(result.miss_path_cpu_ns) / total;
  }
  if (out_profile != nullptr) {
    out_profile->functions = dep_.functions();
    profiler::AppendStageCcts(dep_, prof_, out_profile);
  }
  return result;
}

struct MiniproxyShardOutput {
  MiniproxyResult result;
  profiler::ShardProfile profile;
};

MiniproxyResult RunShardedMiniproxy(const MiniproxyOptions& options) {
  const size_t shards = static_cast<size_t>(options.shards);
  auto runs = sim::ParallelRunner::Run(
      shards, static_cast<size_t>(options.threads),
      [&options, shards](size_t shard, sim::ShardEnv&) {
        MiniproxyOptions shard_options = options;
        shard_options.shards = 1;
        shard_options.threads = 1;
        const int base = options.clients / static_cast<int>(shards);
        const int extra = options.clients % static_cast<int>(shards);
        shard_options.clients = base + (static_cast<int>(shard) < extra ? 1 : 0);
        shard_options.seed = options.seed + shard;
        shard_options.sample_seed =
            options.sample_seed != 0 ? options.sample_seed + shard : 0;
        MiniproxyShardOutput out;
        Proxy proxy(shard_options);
        proxy.SetShard(shard, shards);
        out.result = proxy.Run(&out.profile);
        return out;
      });

  MiniproxyResult merged;
  profiler::MergedProfile profile;
  for (size_t shard = 0; shard < runs.size(); ++shard) {
    const MiniproxyResult& r = runs[shard].result.result;
    merged.throughput_mbps += r.throughput_mbps;
    merged.requests += r.requests;
    merged.cache_hits += r.cache_hits;
    merged.cache_misses += r.cache_misses;
    // Every shard sees the same hit/miss context pair, so the merged
    // count is the max, not the sum.
    merged.write_handler_context_count =
        std::max(merged.write_handler_context_count, r.write_handler_context_count);
    merged.hit_path_cpu_ns += r.hit_path_cpu_ns;
    merged.miss_path_cpu_ns += r.miss_path_cpu_ns;
    merged.total_cpu_ns += r.total_cpu_ns;
    profile.Fold(runs[shard].result.profile);
    runs[shard].env->FoldMetricsInto(obs::Registry());
  }
  if (merged.cache_hits + merged.cache_misses > 0) {
    merged.hit_ratio = static_cast<double>(merged.cache_hits) /
                       static_cast<double>(merged.cache_hits + merged.cache_misses);
  }
  if (merged.total_cpu_ns > 0) {
    const double total = static_cast<double>(merged.total_cpu_ns);
    merged.hit_path_share = 100.0 * static_cast<double>(merged.hit_path_cpu_ns) / total;
    merged.miss_path_share = 100.0 * static_cast<double>(merged.miss_path_cpu_ns) / total;
  }
  merged.profile_text = profile.RenderTransactionalProfile("squid", 0.001);
  return merged;
}

}  // namespace

MiniproxyResult RunMiniproxy(const MiniproxyOptions& options) {
  if (options.shards > 1) {
    return RunShardedMiniproxy(options);
  }
  Proxy proxy(options);
  return proxy.Run();
}

}  // namespace whodunit::apps
