// Miniproxy: the Squid stand-in (paper §8.2, §9.3, Figure 9).
//
// An event-driven web proxy cache built on the instrumented event
// library (src/events). Its handlers mirror Squid's: httpAccept
// accepts client connections, clientReadRequest parses a request and
// consults the cache, commConnectHandle opens a connection to the
// origin server on a miss, httpReadReply receives origin content, and
// commHandleWrite sends the response to the client.
//
// The experiment the paper highlights: commHandleWrite executes under
// TWO transaction contexts — one reached via the cache-hit handler
// sequence and one via the cache-miss sequence — a distinction no
// conventional profiler makes.
#ifndef SRC_APPS_MINIPROXY_MINIPROXY_H_
#define SRC_APPS_MINIPROXY_MINIPROXY_H_

#include <cstdint>
#include <string>

#include "src/callpath/profiler_mode.h"
#include "src/sim/time.h"
#include "src/workload/arrivals.h"

namespace whodunit::apps {

struct MiniproxyOptions {
  callpath::ProfilerMode mode = callpath::ProfilerMode::kWhodunit;
  int clients = 48;
  sim::SimTime duration = sim::Seconds(20);
  uint64_t seed = 1;

  // ---- Open-loop arrivals (src/workload/arrivals.h) -------------------
  // kind == kClosed reproduces the seed behavior exactly. Open-loop
  // kinds inject connections on an arrival clock via ~1 generator per
  // 10k logical clients; with offered_load_tps == 0 the aggregate rate
  // defaults to one connection per client per second.
  workload::ArrivalConfig arrivals;

  // ---- Production sampling (docs/PRODUCTION.md) -----------------------
  // Fraction of client connections that are profiled (the
  // --sample-rate knob). The decision is drawn when the accept event is
  // injected and rides on every event the connection spawns; unsampled
  // connections are dispatched with no context-tree work.
  double sample_rate = 1.0;
  // Decision-stream seed; 0 derives it from `seed`.
  uint64_t sample_seed = 0;

  // Shard-parallel execution (src/sim/parallel_runner.h): shards > 1
  // partitions the client population into independent deployments
  // (seed = seed + shard index) merged in shard order. For a fixed
  // `shards`, the merged result is byte-identical for any `threads`.
  int shards = 1;
  int threads = 1;
};

struct MiniproxyResult {
  double throughput_mbps = 0;
  uint64_t requests = 0;
  uint64_t cache_hits = 0;
  uint64_t cache_misses = 0;
  double hit_ratio = 0;

  // Figure 9's claim: the number of distinct transaction contexts the
  // write handler executed under (2: hit path and miss path).
  size_t write_handler_context_count = 0;
  double hit_path_share = 0;   // % of proxy CPU in the hit-path context
  double miss_path_share = 0;  // % in the miss-path context (incl. read)
  // Raw accumulators behind the shares; shard merging sums these and
  // recomputes the percentages so merged shares are exact.
  uint64_t hit_path_cpu_ns = 0;
  uint64_t miss_path_cpu_ns = 0;
  uint64_t total_cpu_ns = 0;

  std::string profile_text;
};

// Runs the proxy. With options.shards > 1 the run fans out over a
// sim::ParallelRunner: numeric results merge exactly (raw-sum fields;
// write_handler_context_count takes the per-shard max, since every
// shard sees the same hit/miss context pair) and profile_text is the
// canonical cross-shard merge (profiler::MergedProfile).
MiniproxyResult RunMiniproxy(const MiniproxyOptions& options);

}  // namespace whodunit::apps

#endif  // SRC_APPS_MINIPROXY_MINIPROXY_H_
