// Bookstore: the TPC-W rig (paper §8.4, §9.1; Tables 1-2, Figures
// 11-12).
//
// Three stages on separate simulated machines, as in the paper:
//   clients -> squid (proxy) -> tomcat (servlets) -> mysql (MiniDB)
//
// Each of the fourteen TPC-W interactions is a separate servlet, so
// each has a distinct call path through Tomcat and therefore extends a
// distinct transaction context into MySQL — which is how Whodunit
// separates MySQL's CPU and lock-wait time per interaction (Table 1).
//
// Two optimization knobs reproduce the paper's §8.4 tuning:
//   * item_granularity: MyISAM table locks vs InnoDB row locks for the
//     `item` table (Figure 11, AdminConfirm);
//   * servlet_caching: 30-second result caching of BestSellers /
//     SearchResult in the servlets (Figures 11-12).
#ifndef SRC_APPS_BOOKSTORE_BOOKSTORE_H_
#define SRC_APPS_BOOKSTORE_BOOKSTORE_H_

#include <array>
#include <cstdint>
#include <functional>
#include <string>

#include "src/callpath/profiler_mode.h"
#include "src/db/database.h"
#include "src/sim/time.h"
#include "src/workload/arrivals.h"
#include "src/workload/calibration.h"
#include "src/workload/tpcw.h"

namespace whodunit::apps {

struct BookstoreOptions {
  callpath::ProfilerMode mode = callpath::ProfilerMode::kWhodunit;
  int clients = 100;
  bool servlet_caching = false;
  db::LockGranularity item_granularity = db::LockGranularity::kTableLocks;
  sim::SimTime duration = sim::Seconds(900);
  sim::SimTime warmup = sim::Seconds(120);
  uint64_t seed = 1;
  int proxy_workers = 24;
  int tomcat_workers = 24;
  int db_workers = 24;

  // Stage core counts. Defaults are the §8.4 calibration (one-socket
  // 2007 boxes), which keeps every existing result byte-identical; the
  // client-scaling bench raises them in proportion to offered load so
  // the variable under test is population size, not modeled hardware.
  int proxy_cores = workload::kProxyCores;
  int tomcat_cores = workload::kAppServerCores;
  int db_cores = workload::kDbCores;

  // ---- Open-loop arrivals (src/workload/arrivals.h) -------------------
  // kind == kClosed reproduces the seed behavior exactly: one
  // think-send-wait coroutine per client. kPoisson / kBursty switch to
  // open-loop generators (the --arrivals / --offered-load knobs): ~1
  // generator coroutine per 10k logical clients injects requests on an
  // arrival clock, and per-client memory goes flat — see
  // docs/PRODUCTION.md.
  workload::ArrivalConfig arrivals;

  // ---- Production sampling (docs/PRODUCTION.md) -----------------------
  // Fraction of top-level transactions that are profiled (the
  // --sample-rate knob). 1.0 profiles everything and is byte-identical
  // to the pre-sampling profiler; unsampled transactions pay only the
  // per-transaction coin flip.
  double sample_rate = 1.0;
  // Decision-stream seed; 0 derives it from `seed` (so sharded runs
  // sample independent per-shard subsets automatically).
  uint64_t sample_seed = 0;

  // ---- Shard-parallel execution (src/sim/parallel_runner.h) -----------
  // shards > 1 partitions the client population into `shards`
  // independent deployments (each with its own scheduler, context
  // tree, dictionaries, and seed = seed + shard index) and merges the
  // results in shard order. The partition is part of the workload
  // definition: for a fixed `shards`, the merged result is
  // byte-identical for any `threads` — which only sets the worker-pool
  // size (1 = run shards serially on the calling thread).
  int shards = 1;
  int threads = 1;

  // ---- Live observability (src/obs/live) ------------------------------
  // Attach a whodunitd aggregation daemon: stages publish transaction
  // lifecycle events to it and the result carries its final snapshot.
  bool live = false;
  // Completed transactions retained for Chrome-trace span export.
  size_t live_span_ring = 128;
  // Byte budget of the daemon's retention-bounded history store (the
  // --history-bytes knob; 0 disables it).
  size_t live_history_bytes = 1 << 20;
  // When set, a poller queries the daemon at this virtual-time period
  // and hands the rendered top table to the callback (whodunit_top's
  // refresh loop).
  sim::SimTime live_poll_interval = sim::Seconds(30);
  std::function<void(const std::string&)> on_live_top;
  // Critical-path wait-state attribution of every published
  // transaction (docs/OBSERVABILITY.md; the --no-attribution knob
  // turns it off for ablation).
  bool live_attribution = true;
  // Publish batching (the --publish-batch knob): completed
  // transactions accumulate in a publisher-side batch flushed to the
  // daemon when it reaches this size (or on the flush interval), so
  // the pump wakes once per batch instead of once per transaction.
  // End-of-run exports are byte-identical for any value ≥ 1.
  size_t live_publish_batch = 64;
};

struct BookstorePerType {
  uint64_t count = 0;                // completed in the measure window
  double mean_response_ms = 0;       // client-observed
  double db_cpu_percent = 0;         // share of MySQL CPU (from CCT labels)
  double db_cpu_percent_ground = 0;  // same, from direct accounting
  double mean_crosstalk_ms = 0;      // mean lock wait per DB query
  // Raw accumulators behind the percentages; shard merging sums these
  // and recomputes the ratios so merged rows are exact.
  uint64_t db_cpu_ns = 0;            // MySQL CPU from this type's CCT labels
  uint64_t db_cpu_ground_ns = 0;     // same, from direct accounting
};

struct BookstoreResult {
  double throughput_tpm = 0;  // interactions per minute in the window
  uint64_t interactions = 0;
  std::array<BookstorePerType, workload::kTpcwTransactionCount> per_type;

  // §9.1 communication accounting, all stages summed.
  uint64_t payload_bytes = 0;
  uint64_t context_bytes = 0;

  std::string db_profile_text;
  std::string crosstalk_text;
  std::string stitched_text;  // Figure 7-style end-to-end profile
  std::string stitched_dot;   // graphviz rendering of the same
  // The paper's §1 query, answered: which transaction types invoked
  // the database's sort routine.
  std::string who_causes_sort;

  // §8.1 inside the profiled run: the flow detector watches MySQL's
  // own shared-memory critical sections (row buffers under table
  // mutexes, a shared statistics counter). Must find no flows.
  uint64_t db_shm_flows = 0;
  bool db_shared_state_demoted = false;

  // Stage CPU utilizations over the whole run — the Figure 12
  // bottleneck story (DB saturates without caching; caching moves the
  // bottleneck to the app server).
  double db_utilization = 0;
  double tomcat_utilization = 0;
  double proxy_utilization = 0;

  // Final whodunitd snapshot (empty unless options.live): the rendered
  // top table, the query API's JSON form, and the Chrome trace JSON of
  // the retained transactions.
  std::string live_top_text;
  std::string live_query_json;
  std::string live_span_json;
  // Tail diagnosis (empty unless options.live): the rendered
  // --why-tail report and the whodunit-attr-v1 folded-stack export,
  // both taken after the daemon drained at end of run.
  std::string live_why_tail_text;
  std::string live_attr_folded;

  // DES engine accounting (summed over shards): total events the
  // scheduler executed and the calendar's high-water mark. The
  // client-scaling bench derives events/sec and per-client memory
  // curves from these.
  uint64_t sim_events = 0;
  uint64_t peak_event_queue_depth = 0;
};

// Runs the bookstore. With options.shards > 1 the run fans out over a
// sim::ParallelRunner: numeric results merge exactly (raw-sum fields),
// db_profile_text / crosstalk_text are the canonical cross-shard merge
// (profiler::MergedProfile), stitched_text and the live snapshots are
// per-shard sections in shard order, and stitched_dot /
// who_causes_sort come from shard 0. on_live_top is ignored when
// sharded (the callback is not shard-safe).
BookstoreResult RunBookstore(const BookstoreOptions& options);

}  // namespace whodunit::apps

#endif  // SRC_APPS_BOOKSTORE_BOOKSTORE_H_
