#include "src/apps/bookstore/bookstore.h"

#include <algorithm>
#include <map>
#include <memory>
#include <sstream>
#include <vector>

#include "src/crosstalk/crosstalk.h"
#include "src/profiler/shard_merge.h"
#include "src/sim/parallel_runner.h"
#include "src/obs/live/daemon.h"
#include "src/profiler/deployment.h"
#include "src/profiler/stage_profiler.h"
#include "src/profiler/analysis.h"
#include "src/profiler/stitcher.h"
#include "src/sim/channel.h"
#include "src/sim/cpu.h"
#include "src/sim/scheduler.h"
#include "src/shm/flow_detector.h"
#include "src/shm/guest_code.h"
#include "src/shm/section_cache.h"
#include "src/sim/task.h"
#include "src/vm/interpreter.h"
#include "src/util/rng.h"
#include "src/util/stats.h"
#include "src/workload/calibration.h"

namespace whodunit::apps {
namespace {

using callpath::TracksTransactions;
using context::Synopsis;
using profiler::StageProfiler;
using profiler::ThreadProfile;
using workload::TpcwTransaction;

struct DbReply {
  Synopsis syn;
};
struct DbRequest {
  TpcwTransaction type;  // ground-truth accounting only
  db::Query query;
  uint64_t rows_touched = 0;
  Synopsis syn;
  uint64_t txn = 0;      // live-observability transaction id
  int64_t sent_ns = 0;   // send stamp; receiver derives queue wait
  sim::Channel<DbReply>* reply = nullptr;
};
struct TomcatReply {
  uint64_t body_bytes = 0;
  Synopsis syn;
};
struct TomcatRequest {
  TpcwTransaction type;
  uint32_t cache_key = 0;
  Synopsis syn;
  uint64_t txn = 0;      // live-observability transaction id
  int64_t sent_ns = 0;   // send stamp; receiver derives queue wait
  sim::Channel<TomcatReply>* reply = nullptr;
};
struct ProxyReply {
  uint64_t bytes = 0;
};
struct ProxyRequest {
  TpcwTransaction type;
  uint32_t cache_key = 0;
  sim::Channel<ProxyReply>* reply = nullptr;
};

constexpr uint64_t kRequestBytes = 600;
constexpr uint64_t kPageBytes = 8 * 1024;
constexpr uint64_t kImageBytes = 5 * 1024;

uint64_t RowsTouched(const db::Query& query) {
  uint64_t rows = 0;
  for (const auto& step : query.steps) {
    rows += step.rows_touched;
  }
  return rows;
}

StageProfiler::Options ProfOptions(std::string name, callpath::ProfilerMode mode) {
  StageProfiler::Options po;
  po.name = std::move(name);
  po.mode = mode;
  po.sample_period = workload::kSamplePeriod;
  po.costs.per_sample = workload::kPerSampleCost;
  po.costs.per_call = workload::kPerCallCost;
  po.costs.per_message_context = workload::kPerMessageContextCost;
  return po;
}

class Bookstore {
 public:
  explicit Bookstore(const BookstoreOptions& options)
      : options_(options),
        proxy_cpu_(sched_, options.proxy_cores, "squid_cpu"),
        tomcat_cpu_(sched_, options.tomcat_cores, "tomcat_cpu"),
        db_cpu_(sched_, options.db_cores, "mysql_cpu"),
        squid_(dep_.AddStage(
            std::make_unique<StageProfiler>(dep_, ProfOptions("squid", options.mode)))),
        tomcat_(dep_.AddStage(
            std::make_unique<StageProfiler>(dep_, ProfOptions("tomcat", options.mode)))),
        mysql_(dep_.AddStage(
            std::make_unique<StageProfiler>(dep_, ProfOptions("mysql", options.mode)))),
        database_(sched_, db_cpu_, db::CostModel{}),
        proxy_ch_(sched_, workload::kLanLatency),
        tomcat_ch_(sched_, workload::kLanLatency),
        db_ch_(sched_, workload::kLanLatency) {
    workload::CreateTpcwTables(database_, options.item_granularity);
    database_.SetLockObserver(&crosstalk_);
    dep_.sampling().Configure(profiler::SamplingConfig{
        options.sample_rate,
        options.sample_seed != 0 ? options.sample_seed : options.seed});
    if (options.live) {
      obs::live::LiveOptions lo;
      lo.span_ring = options.live_span_ring;
      lo.history_bytes = options.live_history_bytes;
      lo.attribution = options.live_attribution;
      lo.publish_batch = options.live_publish_batch;
      daemon_ = std::make_unique<obs::live::Whodunitd>(sched_, lo);
      dep_.AttachLive(daemon_.get());
      // Intern the fourteen interaction names once at wiring time so
      // the per-request publish path is pure integer work.
      for (int t = 0; t < workload::kTpcwTransactionCount; ++t) {
        tpcw_syms_[static_cast<size_t>(t)] = daemon_->symbols().Intern(
            workload::TpcwName(static_cast<TpcwTransaction>(t)));
      }
      crosstalk_.set_wait_sink([this](uint64_t waiter, uint64_t holder, uint64_t wait_ns) {
        daemon_->IngestWait(waiter, holder, wait_ns);
      });
    }
    // §8.1: Whodunit also watches mysqld's own critical sections.
    shm_detector_ = std::make_unique<shm::FlowDetector>([this](vm::ThreadId t) {
      return mysql_.CurrentCtxtId(*mysql_tps_[t]);
    });
    table_read_prog_ = shm::TableRead(kDbBufferLockId);
    table_write_prog_ = shm::TableWrite(kDbBufferLockId);
    counter_prog_ = shm::CounterIncrement(kDbCounterLockId);
  }

  // Runs the simulation; when `out_profile` is set, also extracts the
  // mergeable profile snapshot (for the shard-parallel path).
  BookstoreResult Run(profiler::ShardProfile* out_profile = nullptr);

  void SetShard(size_t index, size_t count) { dep_.set_shard(index, count); }

 private:
  sim::Process ProxyWorker(int index) {
    ThreadProfile& tp = *squid_tps_[static_cast<size_t>(index)];
    auto& reply_ch = *proxy_reply_[static_cast<size_t>(index)];
    const auto client_side_fn = squid_.RegisterFunction("client_side");
    const auto forward_fn = squid_.RegisterFunction("http_forward");
    for (;;) {
      auto req = co_await proxy_ch_.Receive();
      if (!req) {
        break;
      }
      squid_.ResetTransaction(tp);
      const uint64_t live_txn =
          squid_.LiveBegin(tp, tpcw_syms_[static_cast<size_t>(req->type)]);
      uint64_t bytes = 0;
      {
        auto f0 = squid_.EnterFrame(tp, client_side_fn);
        // Static images served from Squid's cache.
        co_await proxy_cpu_.Consume(squid_.ChargeCpu(
            tp, workload::kProxyForwardCost +
                    workload::kStaticImagesPerPage * workload::kProxyStaticHitCost));
        {
          auto f1 = squid_.EnterFrame(tp, forward_fn);
          TomcatRequest treq;
          treq.type = req->type;
          treq.cache_key = req->cache_key;
          treq.txn = live_txn;
          treq.reply = &reply_ch;
          treq.syn = squid_.PrepareSend(tp);
          squid_.AccountMessage(kRequestBytes, treq.syn.WireBytes());
          treq.sent_ns = sched_.now();
          tomcat_ch_.Send(treq);
          auto rep = co_await reply_ch.Receive();
          if (!rep) {
            break;
          }
          squid_.OnReceive(tp, rep->syn);
          squid_.AccountMessage(rep->body_bytes, rep->syn.WireBytes());
          bytes = rep->body_bytes +
                  workload::kStaticImagesPerPage * kImageBytes;
        }
      }
      squid_.LiveComplete(tp);
      req->reply->Send(ProxyReply{bytes});
    }
  }

  sim::Process TomcatWorker(int index) {
    ThreadProfile& tp = *tomcat_tps_[static_cast<size_t>(index)];
    auto& reply_ch = *tomcat_reply_[static_cast<size_t>(index)];
    for (;;) {
      auto req = co_await tomcat_ch_.Receive();
      if (!req) {
        break;
      }
      tomcat_.OnReceive(tp, req->syn);
      // Queue residency: time since the send stamp beyond the wire
      // latency is time the request sat waiting for a free worker.
      tomcat_.LiveJoin(tp, req->txn,
                       std::max<int64_t>(0, sched_.now() - req->sent_ns -
                                                workload::kLanLatency));
      {
        auto f0 = tomcat_.EnterFrame(tp, service_fn_);
        auto f1 = tomcat_.EnterFrame(tp, servlet_fns_[static_cast<size_t>(req->type)]);
        const bool cacheable = options_.servlet_caching && workload::IsCacheable(req->type);
        bool cache_hit = false;
        if (cacheable) {
          auto it = result_cache_.find({req->type, req->cache_key});
          cache_hit = it != result_cache_.end() && it->second > sched_.now();
        }
        if (cache_hit) {
          co_await tomcat_cpu_.Consume(
              tomcat_.ChargeCpu(tp, workload::kServletCacheHitCost));
        } else {
          {
            auto f2 = tomcat_.EnterFrame(tp, db_rpc_fn_);
            DbRequest dreq;
            dreq.type = req->type;
            dreq.query = workload::TpcwQuery(req->type, *tomcat_rngs_[static_cast<size_t>(index)]);
            dreq.rows_touched = RowsTouched(dreq.query);
            dreq.txn = req->txn;
            dreq.reply = &reply_ch;
            dreq.syn = tomcat_.PrepareSend(tp);
            tomcat_.AccountMessage(kRequestBytes, dreq.syn.WireBytes());
            dreq.sent_ns = sched_.now();
            db_ch_.Send(dreq);
            auto drep = co_await reply_ch.Receive();
            if (!drep) {
              break;
            }
            tomcat_.OnReceive(tp, drep->syn);
            tomcat_.AccountMessage(2048, drep->syn.WireBytes());
          }
          if (cacheable) {
            result_cache_[{req->type, req->cache_key}] =
                sched_.now() + workload::kResultCacheTtl;
          }
          tomcat_.NoteInternalCalls(tp, 12000);
          co_await tomcat_cpu_.Consume(tomcat_.ChargeCpu(tp, workload::kServletCost));
        }
      }
      TomcatReply rep;
      rep.body_bytes = kPageBytes;
      rep.syn = tomcat_.PrepareSend(tp, /*expect_response=*/false);
      tomcat_.AccountMessage(rep.body_bytes, rep.syn.WireBytes());
      tomcat_.LiveLeave(tp);
      req->reply->Send(rep);
    }
  }

  // MySQL-internal shared-memory traffic for one query: the server
  // thread touches row buffers (read or write, depending on the plan)
  // under the buffer mutex and bumps a shared statistics counter —
  // the access patterns §8.1 validates the algorithm against.
  sim::SimTime RunDbGuestOps(int worker, bool writes, uint64_t row) {
    // Unsampled transactions skip the flow detector entirely — no
    // produce-point snapshots, no emulation, no guest cycles.
    if (!TracksTransactions(options_.mode) ||
        !mysql_.IsSampled(*mysql_tps_[static_cast<size_t>(worker)])) {
      return 0;
    }
    const auto t = static_cast<vm::ThreadId>(worker);
    vm::CpuState& cpu = guest_cpus_[t];
    int64_t cycles = 0;
    if (shm_detector_->ShouldEmulate(kDbBufferLockId)) {
      cpu.regs[0] = kDbTableBase;
      cpu.regs[1] = row % 64;
      cpu.regs[2] = row | 1;
      const vm::Program& prog = writes ? table_write_prog_ : table_read_prog_;
      cycles += section_cache_.Run(interp_, prog, t, cpu, guest_mem_, shm_detector_.get())
                    .guest_cycles;
    }
    if (shm_detector_->ShouldEmulate(kDbCounterLockId)) {
      cpu.regs[0] = kDbCounterAddr;
      cycles +=
          section_cache_.Run(interp_, counter_prog_, t, cpu, guest_mem_, shm_detector_.get())
              .guest_cycles;
    }
    return workload::CyclesToNs(cycles);
  }

  sim::Process DbWorker(int index) {
    ThreadProfile& tp = *mysql_tps_[static_cast<size_t>(index)];
    for (;;) {
      auto req = co_await db_ch_.Receive();
      if (!req) {
        break;
      }
      mysql_.OnReceive(tp, req->syn);
      mysql_.LiveJoin(tp, req->txn,
                      std::max<int64_t>(0, sched_.now() - req->sent_ns -
                                               workload::kLanLatency));
      {
        auto f0 = mysql_.EnterFrame(tp, do_command_fn_);
        auto f1 = mysql_.EnterFrame(tp, execute_fn_);
        // Row handlers, comparisons, copies, index probes: gprof pays
        // mcount for each of these internal calls.
        mysql_.NoteInternalCalls(tp, req->rows_touched * 5);
        const uint64_t tag = mysql_.CrosstalkTag(tp);
        if (daemon_ != nullptr && mysql_.IsSampled(tp)) {
          // Crosstalk tags resolve to TPC-W interaction names in the
          // daemon's live matrix.
          daemon_->NameTag(tag, workload::TpcwName(req->type));
        }
        // mysqld's own shared-memory critical sections run as part of
        // query processing (§8.1); their emulation cost rides on the
        // query's CPU charge rather than a separate scheduler pass.
        bool writes = false;
        uint64_t row = 0;
        for (const auto& step : req->query.steps) {
          if (step.kind == db::QueryStep::Kind::kUpdateRow) {
            writes = true;
            row = step.row;
          }
        }
        const sim::SimTime guest_cost = RunDbGuestOps(index, writes, row);
        // Per-step frames: sorts, scans etc. appear as their own
        // procedures in the CCT, so the §1 "who causes the sort?"
        // query has something to point at.
        const sim::SimTime raw = co_await database_.Execute(
            req->query, tag,
            [&](sim::SimTime c) { return mysql_.ChargeCpu(tp, c + guest_cost); },
            [&](const db::QueryStep& step, sim::SimTime c) {
              auto frame =
                  mysql_.EnterFrame(tp, step_fns_[static_cast<size_t>(step.kind)]);
              return mysql_.ChargeCpu(tp, c);
            },
            [&](sim::SimTime wait_ns) { mysql_.LiveLockWait(tp, wait_ns); });
        if (sched_.now() >= options_.warmup && sched_.now() <= options_.duration) {
          db_cpu_ground_[static_cast<size_t>(req->type)] += raw;
        }
      }
      DbReply rep;
      rep.syn = mysql_.PrepareSend(tp, /*expect_response=*/false);
      mysql_.AccountMessage(2048, rep.syn.WireBytes());
      mysql_.LiveLeave(tp);
      req->reply->Send(rep);
    }
  }

  // ---- Open-loop path (workload::ArrivalKind::kPoisson / kBursty) ----
  //
  // One generator coroutine stands in for ~10k logical clients: it
  // draws aggregate interarrival gaps and spawns one short-lived
  // request process per arrival. Reply channels are pooled (a freelist
  // of indices into client_reply_), so steady state allocates nothing
  // per request — frames and channels both recycle.

  size_t AcquireReplyChannel() {
    if (!reply_free_.empty()) {
      const size_t idx = reply_free_.back();
      reply_free_.pop_back();
      return idx;
    }
    client_reply_.push_back(std::make_unique<sim::Channel<ProxyReply>>(
        sched_, workload::kLanLatency));
    return client_reply_.size() - 1;
  }

  sim::Process OpenLoopRequest(TpcwTransaction type, uint32_t cache_key) {
    const size_t ch_idx = AcquireReplyChannel();
    auto& reply_ch = *client_reply_[ch_idx];
    ProxyRequest req;
    req.type = type;
    req.cache_key = cache_key;
    req.reply = &reply_ch;
    const sim::SimTime start = sched_.now();
    proxy_ch_.Send(req);
    auto rep = co_await reply_ch.Receive();
    reply_free_.push_back(ch_idx);
    if (!rep) {
      co_return;  // drained at shutdown
    }
    const sim::SimTime end = sched_.now();
    if (start >= options_.warmup && end <= options_.duration) {
      ++interactions_;
      response_ms_[static_cast<size_t>(type)].Add(sim::ToMillis(end - start));
    }
  }

  sim::Process OpenLoopGenerator(double tps, uint64_t seed) {
    util::Rng base(seed);
    workload::ArrivalProcess arrivals(options_.arrivals, tps, base.NextU64());
    util::Rng mix(base.NextU64());
    for (;;) {
      co_await sim::Delay{sched_, arrivals.NextInterarrival()};
      if (sched_.now() >= options_.duration) {
        break;
      }
      const TpcwTransaction type = workload::SampleBrowsingMix(mix);
      const auto cache_key = static_cast<uint32_t>(
          mix.NextBelow(type == TpcwTransaction::kBestSellers ? 20 : 40));
      sim::Spawn(sched_, OpenLoopRequest(type, cache_key));
    }
  }

  sim::Process Client(uint32_t index, uint64_t seed) {
    util::Rng rng(seed);
    auto& reply_ch = *client_reply_[index];
    for (;;) {
      co_await sim::Delay{
          sched_, static_cast<sim::SimTime>(rng.NextExponential(
                      static_cast<double>(workload::kTpcwThinkTimeMean)))};
      if (sched_.now() >= options_.duration) {
        break;
      }
      const TpcwTransaction type = workload::SampleBrowsingMix(rng);
      ProxyRequest req;
      req.type = type;
      req.cache_key = static_cast<uint32_t>(
          rng.NextBelow(type == TpcwTransaction::kBestSellers ? 20 : 40));
      req.reply = &reply_ch;
      const sim::SimTime start = sched_.now();
      proxy_ch_.Send(req);
      auto rep = co_await reply_ch.Receive();
      if (!rep) {
        break;
      }
      const sim::SimTime end = sched_.now();
      if (start >= options_.warmup && end <= options_.duration) {
        ++interactions_;
        response_ms_[static_cast<size_t>(type)].Add(sim::ToMillis(end - start));
      }
    }
  }

  // whodunit_top's refresh loop: query + render + hand to the callback
  // at every poll interval while the workload runs.
  sim::Process LivePoller() {
    // Snapshot rows and the rendered string are members so every
    // refresh after the first reuses their capacity (no per-poll
    // allocation once row counts stabilize).
    for (;;) {
      co_await sim::Delay{sched_, options_.live_poll_interval};
      if (sched_.now() >= options_.duration) {
        break;
      }
      daemon_->Top(top_snap_);
      daemon_->RenderTop(top_snap_, top_text_);
      options_.on_live_top(top_text_);
    }
  }

  BookstoreOptions options_;
  sim::Scheduler sched_;
  sim::CpuResource proxy_cpu_;
  sim::CpuResource tomcat_cpu_;
  sim::CpuResource db_cpu_;
  profiler::Deployment dep_;
  StageProfiler& squid_;
  StageProfiler& tomcat_;
  StageProfiler& mysql_;
  db::Database database_;
  crosstalk::CrosstalkRecorder crosstalk_;
  std::unique_ptr<obs::live::Whodunitd> daemon_;
  // Interaction names pre-interned against the daemon's symbol table
  // (filled in the ctor when options.live); index by TpcwTransaction.
  std::array<obs::live::SymId, workload::kTpcwTransactionCount> tpcw_syms_{};
  // LivePoller's reused snapshot + render buffer.
  obs::live::Whodunitd::TopSnapshot top_snap_;
  std::string top_text_;

  sim::Channel<ProxyRequest> proxy_ch_;
  sim::Channel<TomcatRequest> tomcat_ch_;
  sim::Channel<DbRequest> db_ch_;

  callpath::FunctionId service_fn_ = 0, db_rpc_fn_ = 0, do_command_fn_ = 0, execute_fn_ = 0;
  std::array<callpath::FunctionId, 5> step_fns_{};  // indexed by QueryStep::Kind
  std::vector<callpath::FunctionId> servlet_fns_;

  std::vector<ThreadProfile*> squid_tps_, tomcat_tps_, mysql_tps_;
  std::vector<std::unique_ptr<sim::Channel<TomcatReply>>> proxy_reply_;
  std::vector<std::unique_ptr<sim::Channel<DbReply>>> tomcat_reply_;
  std::vector<std::unique_ptr<sim::Channel<ProxyReply>>> client_reply_;
  std::vector<size_t> reply_free_;  // open-loop reply-channel pool
  std::vector<std::unique_ptr<util::Rng>> tomcat_rngs_;

  static constexpr uint64_t kDbBufferLockId = 0xDB0F;
  static constexpr uint64_t kDbCounterLockId = 0xDB0C;
  static constexpr uint64_t kDbTableBase = 0xA000;
  static constexpr uint64_t kDbCounterAddr = 0x5000;
  std::unique_ptr<shm::FlowDetector> shm_detector_;
  vm::Interpreter interp_;
  shm::SectionCache section_cache_;
  vm::Memory guest_mem_;
  vm::Program table_read_prog_, table_write_prog_, counter_prog_;
  std::map<vm::ThreadId, vm::CpuState> guest_cpus_;

  std::map<std::pair<TpcwTransaction, uint32_t>, sim::SimTime> result_cache_;
  std::array<util::SampleSet, workload::kTpcwTransactionCount> response_ms_;
  std::array<sim::SimTime, workload::kTpcwTransactionCount> db_cpu_ground_{};
  uint64_t interactions_ = 0;
};

BookstoreResult Bookstore::Run(profiler::ShardProfile* out_profile) {
  service_fn_ = tomcat_.RegisterFunction("service");
  db_rpc_fn_ = tomcat_.RegisterFunction("jdbc_execute");
  do_command_fn_ = mysql_.RegisterFunction("do_command");
  execute_fn_ = mysql_.RegisterFunction("mysql_execute");
  step_fns_[static_cast<size_t>(db::QueryStep::Kind::kScan)] =
      mysql_.RegisterFunction("row_scan");
  step_fns_[static_cast<size_t>(db::QueryStep::Kind::kSort)] =
      mysql_.RegisterFunction("sort_records");
  step_fns_[static_cast<size_t>(db::QueryStep::Kind::kTempTable)] =
      mysql_.RegisterFunction("create_tmp_table");
  step_fns_[static_cast<size_t>(db::QueryStep::Kind::kPointRead)] =
      mysql_.RegisterFunction("index_read");
  step_fns_[static_cast<size_t>(db::QueryStep::Kind::kUpdateRow)] =
      mysql_.RegisterFunction("update_row");
  for (int t = 0; t < workload::kTpcwTransactionCount; ++t) {
    servlet_fns_.push_back(tomcat_.RegisterFunction(
        std::string("servlet_") + workload::TpcwName(static_cast<TpcwTransaction>(t))));
  }

  util::Rng seeder(options_.seed);
  for (int i = 0; i < options_.proxy_workers; ++i) {
    squid_tps_.push_back(&squid_.CreateThread("squid_w" + std::to_string(i)));
    proxy_reply_.push_back(std::make_unique<sim::Channel<TomcatReply>>(
        sched_, workload::kLanLatency));
  }
  for (int i = 0; i < options_.tomcat_workers; ++i) {
    tomcat_tps_.push_back(&tomcat_.CreateThread("tomcat_w" + std::to_string(i)));
    tomcat_reply_.push_back(
        std::make_unique<sim::Channel<DbReply>>(sched_, workload::kLanLatency));
    tomcat_rngs_.push_back(std::make_unique<util::Rng>(seeder.NextU64()));
  }
  for (int i = 0; i < options_.db_workers; ++i) {
    mysql_tps_.push_back(&mysql_.CreateThread("mysql_w" + std::to_string(i)));
  }
  const bool open_loop =
      options_.arrivals.kind != workload::ArrivalKind::kClosed;
  if (!open_loop) {
    for (int c = 0; c < options_.clients; ++c) {
      client_reply_.push_back(
          std::make_unique<sim::Channel<ProxyReply>>(sched_, workload::kLanLatency));
    }
  }

  for (int i = 0; i < options_.proxy_workers; ++i) {
    sim::Spawn(sched_, ProxyWorker(i));
  }
  for (int i = 0; i < options_.tomcat_workers; ++i) {
    sim::Spawn(sched_, TomcatWorker(i));
  }
  for (int i = 0; i < options_.db_workers; ++i) {
    sim::Spawn(sched_, DbWorker(i));
  }
  if (open_loop) {
    // Poisson superposition: N clients at rate r == one process at
    // rate N*r, so generators each carry an equal slice of the
    // aggregate. Seeds derive from a dedicated stream so the closed-
    // loop seeder draws stay untouched (and shard seeds keep the merge
    // thread-count-invariant).
    const auto clients = static_cast<uint64_t>(
        options_.clients < 0 ? 0 : options_.clients);
    const uint64_t per_gen =
        options_.arrivals.clients_per_generator > 0
            ? options_.arrivals.clients_per_generator
            : 10000;
    const uint64_t gens =
        clients == 0 ? 0 : (clients + per_gen - 1) / per_gen;
    const double tps = workload::EffectiveOfferedTps(
        options_.arrivals, clients, workload::kTpcwThinkTimeMean);
    util::Rng gen_seeder(options_.seed ^ 0x9E3779B97F4A7C15ULL);
    for (uint64_t g = 0; g < gens; ++g) {
      sim::Spawn(sched_, OpenLoopGenerator(tps / static_cast<double>(gens),
                                           gen_seeder.NextU64()));
    }
  } else {
    for (int c = 0; c < options_.clients; ++c) {
      sim::Spawn(sched_, Client(static_cast<uint32_t>(c), seeder.NextU64()));
    }
  }
  if (daemon_ != nullptr && options_.on_live_top) {
    sim::Spawn(sched_, LivePoller());
  }

  sched_.RunUntil(options_.duration);
  proxy_ch_.Close();
  tomcat_ch_.Close();
  db_ch_.Close();
  for (auto& ch : proxy_reply_) ch->Close();
  for (auto& ch : tomcat_reply_) ch->Close();
  for (auto& ch : client_reply_) ch->Close();
  sched_.Run();

  BookstoreResult result;
  result.interactions = interactions_;
  result.throughput_tpm =
      static_cast<double>(interactions_) /
      sim::ToSeconds(options_.duration - options_.warmup) * 60.0;

  // Per-type DB CPU shares derived from the mysql stage's CCT labels —
  // the Whodunit way: each label's description names the servlet whose
  // send created it.
  sim::SimTime label_total = 0;
  std::array<sim::SimTime, workload::kTpcwTransactionCount> label_cpu{};
  std::array<uint64_t, workload::kTpcwTransactionCount> type_tags{};
  std::array<bool, workload::kTpcwTransactionCount> tag_known{};
  for (const auto& [label, cct] : mysql_.LabeledCcts()) {
    const std::string desc = dep_.DescribeSynopsis(label);
    for (int t = 0; t < workload::kTpcwTransactionCount; ++t) {
      const std::string needle =
          std::string("servlet_") + workload::TpcwName(static_cast<TpcwTransaction>(t));
      if (desc.find(needle) != std::string::npos) {
        label_cpu[static_cast<size_t>(t)] += cct->TotalCpuTime();
        label_total += cct->TotalCpuTime();
        type_tags[static_cast<size_t>(t)] = mysql_.TagForLabel(label);
        tag_known[static_cast<size_t>(t)] = true;
        break;
      }
    }
  }
  sim::SimTime ground_total = 0;
  for (sim::SimTime t : db_cpu_ground_) {
    ground_total += t;
  }
  for (int t = 0; t < workload::kTpcwTransactionCount; ++t) {
    auto& row = result.per_type[static_cast<size_t>(t)];
    row.count = response_ms_[static_cast<size_t>(t)].count();
    row.mean_response_ms = response_ms_[static_cast<size_t>(t)].mean();
    if (label_total > 0) {
      row.db_cpu_percent = 100.0 * static_cast<double>(label_cpu[static_cast<size_t>(t)]) /
                           static_cast<double>(label_total);
    }
    if (ground_total > 0) {
      row.db_cpu_percent_ground =
          100.0 * static_cast<double>(db_cpu_ground_[static_cast<size_t>(t)]) /
          static_cast<double>(ground_total);
    }
    if (tag_known[static_cast<size_t>(t)]) {
      row.mean_crosstalk_ms =
          crosstalk_.MeanWaitAllAcquires(type_tags[static_cast<size_t>(t)]) / 1e6;
    }
    row.db_cpu_ns = static_cast<uint64_t>(label_cpu[static_cast<size_t>(t)]);
    row.db_cpu_ground_ns = static_cast<uint64_t>(db_cpu_ground_[static_cast<size_t>(t)]);
  }

  for (const auto& stage : dep_.stages()) {
    result.payload_bytes += stage->payload_bytes_sent();
    result.context_bytes += stage->context_bytes_sent();
  }
  result.db_shm_flows = shm_detector_ ? shm_detector_->flows_detected() : 0;
  result.db_shared_state_demoted =
      shm_detector_ != nullptr && shm_detector_->IsDemoted(kDbBufferLockId);
  result.db_utilization = db_cpu_.Utilization(options_.duration);
  result.tomcat_utilization = tomcat_cpu_.Utilization(options_.duration);
  result.proxy_utilization = proxy_cpu_.Utilization(options_.duration);
  result.db_profile_text = mysql_.RenderTransactionalProfile(0.001);
  profiler::Stitcher stitcher(dep_);
  result.stitched_text = stitcher.Render(0.02);
  result.stitched_dot = stitcher.RenderDot();
  profiler::Analysis analysis(dep_);
  result.who_causes_sort = analysis.RenderWhoCauses(mysql_, "sort_records");
  const auto tag_namer = [&](uint64_t tag) {
    for (int t = 0; t < workload::kTpcwTransactionCount; ++t) {
      if (tag_known[static_cast<size_t>(t)] && type_tags[static_cast<size_t>(t)] == tag) {
        return std::string(workload::TpcwName(static_cast<TpcwTransaction>(t)));
      }
    }
    return std::string("tag_") + std::to_string(tag);
  };
  result.crosstalk_text = crosstalk_.Render(tag_namer);
  if (out_profile != nullptr) {
    *out_profile = profiler::ExtractShardProfile(dep_, &crosstalk_, tag_namer);
  }
  if (daemon_ != nullptr) {
    // Close the publish channel (flushing the partial publish batch)
    // and drain, so every export below reflects every published event
    // regardless of --publish-batch — then snapshot. This ordering is
    // what makes the end-of-run exports batch-size invariant.
    daemon_->Shutdown();
    sched_.Run();
    result.live_top_text = daemon_->RenderTop();
    result.live_query_json = daemon_->QueryJson();
    result.live_span_json = daemon_->ExportSpansJson();
    result.live_why_tail_text = daemon_->RenderWhyTail();
    result.live_attr_folded = daemon_->ExportAttrFolded();
  }
  result.sim_events = sched_.events_executed();
  result.peak_event_queue_depth = sched_.queue_stats().peak_depth;
  return result;
}

// One shard's output: the scaled-down deployment's result plus its
// mergeable profile snapshot.
struct BookstoreShardOutput {
  BookstoreResult result;
  profiler::ShardProfile profile;
};

BookstoreResult RunShardedBookstore(const BookstoreOptions& options) {
  const int shards = options.shards;
  auto runs = sim::ParallelRunner::Run(
      static_cast<size_t>(shards), static_cast<size_t>(options.threads),
      [&options, shards](size_t shard, sim::ShardEnv& /*env*/) {
        BookstoreOptions shard_options = options;
        shard_options.shards = 1;
        shard_options.threads = 1;
        // Fixed partition: sizes depend only on (clients, shards).
        shard_options.clients = options.clients / shards +
                                (static_cast<int>(shard) < options.clients % shards ? 1 : 0);
        // An explicit offered load splits proportionally to the shard's
        // client share (a rate-0 config derives from clients anyway).
        if (options.arrivals.offered_load_tps > 0.0 && options.clients > 0) {
          shard_options.arrivals.offered_load_tps =
              options.arrivals.offered_load_tps *
              static_cast<double>(shard_options.clients) /
              static_cast<double>(options.clients);
        }
        shard_options.seed = options.seed + shard;
        // Shards draw independent decision streams; an explicit
        // sample_seed shifts per shard the same way `seed` does.
        shard_options.sample_seed =
            options.sample_seed != 0 ? options.sample_seed + shard : 0;
        shard_options.on_live_top = nullptr;
        Bookstore bookstore(shard_options);
        bookstore.SetShard(shard, static_cast<size_t>(shards));
        BookstoreShardOutput out;
        out.result = bookstore.Run(&out.profile);
        return out;
      });

  // Canonical merge, shard order, on the calling thread.
  profiler::MergedProfile merged;
  BookstoreResult out;
  std::ostringstream stitched, live_top, live_query, live_spans, live_why, live_attr;
  for (size_t i = 0; i < runs.size(); ++i) {
    const BookstoreResult& r = runs[i].result.result;
    merged.Fold(runs[i].result.profile);
    out.interactions += r.interactions;
    out.throughput_tpm += r.throughput_tpm;
    out.payload_bytes += r.payload_bytes;
    out.context_bytes += r.context_bytes;
    out.db_shm_flows += r.db_shm_flows;
    out.db_shared_state_demoted = out.db_shared_state_demoted || r.db_shared_state_demoted;
    out.db_utilization += r.db_utilization;
    out.tomcat_utilization += r.tomcat_utilization;
    out.proxy_utilization += r.proxy_utilization;
    out.sim_events += r.sim_events;
    out.peak_event_queue_depth += r.peak_event_queue_depth;
    for (int t = 0; t < workload::kTpcwTransactionCount; ++t) {
      auto& row = out.per_type[static_cast<size_t>(t)];
      const auto& shard_row = r.per_type[static_cast<size_t>(t)];
      row.mean_response_ms += shard_row.mean_response_ms * static_cast<double>(shard_row.count);
      row.count += shard_row.count;
      row.db_cpu_ns += shard_row.db_cpu_ns;
      row.db_cpu_ground_ns += shard_row.db_cpu_ground_ns;
    }
    stitched << "=== shard " << i << " ===\n" << r.stitched_text;
    if (options.live) {
      live_top << "=== shard " << i << " ===\n" << r.live_top_text;
      live_query << "=== shard " << i << " ===\n" << r.live_query_json << "\n";
      live_spans << "=== shard " << i << " ===\n" << r.live_span_json << "\n";
      live_why << "=== shard " << i << " ===\n" << r.live_why_tail_text;
      live_attr << "=== shard " << i << " ===\n" << r.live_attr_folded;
    }
  }
  // Shard machines are replicas, so merged utilization is their mean.
  out.db_utilization /= static_cast<double>(shards);
  out.tomcat_utilization /= static_cast<double>(shards);
  out.proxy_utilization /= static_cast<double>(shards);
  uint64_t label_total = 0;
  uint64_t ground_total = 0;
  for (const auto& row : out.per_type) {
    label_total += row.db_cpu_ns;
    ground_total += row.db_cpu_ground_ns;
  }
  for (int t = 0; t < workload::kTpcwTransactionCount; ++t) {
    auto& row = out.per_type[static_cast<size_t>(t)];
    if (row.count > 0) {
      row.mean_response_ms /= static_cast<double>(row.count);
    }
    if (label_total > 0) {
      row.db_cpu_percent =
          100.0 * static_cast<double>(row.db_cpu_ns) / static_cast<double>(label_total);
    }
    if (ground_total > 0) {
      row.db_cpu_percent_ground = 100.0 * static_cast<double>(row.db_cpu_ground_ns) /
                                  static_cast<double>(ground_total);
    }
    const uint64_t tag =
        merged.MergedTag(workload::TpcwName(static_cast<TpcwTransaction>(t)));
    if (tag != profiler::MergedProfile::kNoMergedTag) {
      row.mean_crosstalk_ms = merged.crosstalk().MeanWaitAllAcquires(tag) / 1e6;
    }
  }
  out.db_profile_text = merged.RenderTransactionalProfile("mysql", 0.001);
  out.crosstalk_text = merged.RenderCrosstalk();
  out.stitched_text = stitched.str();
  out.stitched_dot = runs.front().result.result.stitched_dot;
  out.who_causes_sort = runs.front().result.result.who_causes_sort;
  if (options.live) {
    out.live_top_text = live_top.str();
    out.live_query_json = live_query.str();
    out.live_span_json = live_spans.str();
    out.live_why_tail_text = live_why.str();
    out.live_attr_folded = live_attr.str();
  }
  // Shard metrics fold into the caller's registry in shard order so
  // WHODUNIT_METRICS_DIR dumps cover the sharded work deterministically.
  for (const auto& run : runs) {
    run.env->FoldMetricsInto(obs::Registry());
  }
  return out;
}

}  // namespace

BookstoreResult RunBookstore(const BookstoreOptions& options) {
  if (options.shards > 1) {
    return RunShardedBookstore(options);
  }
  Bookstore bookstore(options);
  return bookstore.Run();
}

}  // namespace whodunit::apps
