// Minihttpd: the Apache 2.x stand-in (paper §8.1, §9.2, Figure 8).
//
// A multithreaded web server with Apache's worker-pool architecture:
// one listener thread accepts connections and pushes them into a
// mutex-protected shared queue (`ap_queue_push`); worker threads pop
// (`ap_queue_pop`) and process the connection. The queue's critical
// sections are MiniVM guest code executed under the shared-memory flow
// detector — the paper's central validation case. The server also runs
// a pooled memory allocator and a shared statistics counter through
// the same machinery, exercising the §3.4 false-positive cases.
//
// The workload models the Rice CS trace as used in §9.2: concurrent
// clients that open a connection, issue a few requests, close, and
// reconnect — so transaction flow through the queue recurs constantly.
#ifndef SRC_APPS_MINIHTTPD_MINIHTTPD_H_
#define SRC_APPS_MINIHTTPD_MINIHTTPD_H_

#include <cstdint>
#include <string>

#include "src/callpath/profiler_mode.h"
#include "src/sim/time.h"
#include "src/workload/arrivals.h"

namespace whodunit::apps {

struct MinihttpdOptions {
  callpath::ProfilerMode mode = callpath::ProfilerMode::kWhodunit;
  int workers = 8;
  int clients = 64;
  sim::SimTime duration = sim::Seconds(20);
  uint64_t seed = 1;
  // §9.2: with all-persistent connections no new work flows through
  // the shared queue, so Whodunit has (almost) nothing to emulate.
  // Each client then opens exactly one connection for the whole run;
  // use workers >= clients in this mode.
  bool persistent_connections = false;
  // ---- Open-loop arrivals (src/workload/arrivals.h) -------------------
  // kind == kClosed reproduces the seed behavior exactly (one
  // back-to-back coroutine per client). Open-loop kinds inject
  // connections on an arrival clock via ~1 generator per 10k logical
  // clients; with offered_load_tps == 0 the aggregate rate defaults to
  // one connection per client per second. Ignores
  // persistent_connections (open loop models connection churn).
  workload::ArrivalConfig arrivals;
  // Attach a whodunitd live-observability daemon (src/obs/live): each
  // connection becomes a live transaction from accept to completion.
  bool live = false;
  // Byte budget of the daemon's retention-bounded history store (the
  // --history-bytes knob; 0 disables it).
  size_t live_history_bytes = 1 << 20;
  // Publish batching (the --publish-batch knob): completed
  // transactions flush to the daemon in batches of this size. Final
  // exports are byte-identical for any value ≥ 1.
  size_t live_publish_batch = 64;

  // ---- Production sampling (docs/PRODUCTION.md) -----------------------
  // Fraction of connections that are profiled (the --sample-rate
  // knob). The listener's coin flip rides to the workers on the
  // connection record, so the queue pop is emulated only while a
  // sampled connection may be in the queue.
  double sample_rate = 1.0;
  // Decision-stream seed; 0 derives it from `seed`.
  uint64_t sample_seed = 0;

  // Shard-parallel execution (src/sim/parallel_runner.h): shards > 1
  // partitions the client population into independent deployments
  // (each with its own scheduler and seed = seed + shard index, and a
  // full worker pool) merged in shard order. For a fixed `shards`, the
  // merged result is byte-identical for any `threads`.
  int shards = 1;
  int threads = 1;
};

struct MinihttpdResult {
  double throughput_mbps = 0;  // measured after warmup
  uint64_t requests = 0;
  uint64_t connections = 0;
  uint64_t bytes_served = 0;

  // Flow-detection outcomes (only meaningful under kWhodunit).
  uint64_t flows_detected = 0;
  bool queue_flow_detected = false;
  bool allocator_demoted = false;
  uint64_t critical_sections_emulated = 0;

  // Profile shares (Figure 8): CPU fraction in the listener's own
  // (origin) context vs in worker contexts adopted via the queue.
  double listener_context_share = 0;
  double worker_context_share = 0;
  // Raw accumulators behind the shares; shard merging sums these and
  // recomputes the percentages so merged shares are exact.
  uint64_t origin_cpu_ns = 0;
  uint64_t total_cpu_ns = 0;

  std::string profile_text;

  // Final whodunitd snapshot (empty unless options.live).
  std::string live_top_text;
  std::string live_span_json;
};

// Runs minihttpd. With options.shards > 1 the run fans out over a
// sim::ParallelRunner: numeric results merge exactly (raw-sum fields,
// flags OR-ed), profile_text is the canonical cross-shard merge
// (profiler::MergedProfile), and the live snapshots are per-shard
// sections in shard order.
MinihttpdResult RunMinihttpd(const MinihttpdOptions& options);

// §8.1's negative result: MySQL-style shared-memory traffic (table
// reads/writes and a shared counter under locks) must produce no
// transaction flow.
struct MysqlShmValidationResult {
  uint64_t flows_detected = 0;
  bool table_lock_demoted = false;
  uint64_t critical_sections_run = 0;
};
MysqlShmValidationResult RunMysqlShmValidation(int threads = 4, int rounds = 200,
                                               uint64_t seed = 42);

}  // namespace whodunit::apps

#endif  // SRC_APPS_MINIHTTPD_MINIHTTPD_H_
