#include "src/apps/minihttpd/minihttpd.h"

#include <algorithm>
#include <map>
#include <memory>
#include <sstream>
#include <vector>

#include "src/http/http.h"
#include "src/obs/live/daemon.h"
#include "src/obs/metrics.h"
#include "src/profiler/deployment.h"
#include "src/profiler/shard_merge.h"
#include "src/profiler/stage_profiler.h"
#include "src/sim/parallel_runner.h"
#include "src/shm/flow_detector.h"
#include "src/shm/guest_code.h"
#include "src/shm/section_cache.h"
#include "src/sim/channel.h"
#include "src/sim/cpu.h"
#include "src/sim/lock.h"
#include "src/sim/scheduler.h"
#include "src/sim/task.h"
#include "src/util/rng.h"
#include "src/util/zipf.h"
#include "src/vm/interpreter.h"
#include "src/workload/arrivals.h"
#include "src/workload/calibration.h"
#include "src/workload/webtrace.h"

namespace whodunit::apps {
namespace {

using callpath::ProfilerMode;
using callpath::TracksTransactions;
using profiler::StageProfiler;
using profiler::ThreadProfile;

// Guest memory layout.
constexpr uint64_t kQueueBase = 0x1000;
constexpr uint64_t kCounterAddr = 0x5000;
constexpr uint64_t kFreeListHead = 0x6000;
constexpr uint64_t kBlockBase = 0x10000;
constexpr uint64_t kBlockStride = 64;
constexpr int kPoolBlocks = 64;
// Per-worker scratch addresses for ap_queue_pop's out parameters.
constexpr uint64_t kScratchBase = 0x20000;

// Connections injected by an open-loop generator carry this sentinel
// client id: no closed-loop coroutine is waiting on client_done_.
constexpr uint32_t kOpenLoopClient = 0xFFFFFFFFu;

struct Connection {
  uint32_t client;
  std::vector<uint32_t> objects;
  uint64_t txn = 0;  // live-observability transaction id
  // The listener's per-connection sampling decision, carried to the
  // worker beside the payload (the queue itself carries no synopsis).
  bool sampled = true;
  // When the listener queued the connection: the worker's span reports
  // now() - enqueued_ns as its kQueueWait component.
  int64_t enqueued_ns = 0;
};

class Server {
 public:
  explicit Server(const MinihttpdOptions& options)
      : options_(options),
        cpu_(sched_, workload::kWebServerCores, "apache_cpu"),
        prof_(dep_, MakeProfilerOptions(options)),
        detector_(MakeDetector()),
        queue_mutex_(sched_, "fd_queue_mutex"),
        alloc_mutex_(sched_, "pool_mutex"),
        stats_mutex_(sched_, "stats_mutex"),
        items_(sched_),
        accept_ch_(sched_),
        rng_(options.seed) {
    push_prog_ = shm::ApQueuePush(queue_mutex_.id());
    pop_prog_ = shm::ApQueuePop(queue_mutex_.id());
    alloc_prog_ = shm::MemAlloc(alloc_mutex_.id());
    free_prog_ = shm::MemFree(alloc_mutex_.id());
    counter_prog_ = shm::CounterIncrement(stats_mutex_.id());

    // Seed the allocator's free list (native initialization, unseen by
    // the detector, like state set up before profiling attaches).
    uint64_t head = 0;
    for (int i = 0; i < kPoolBlocks; ++i) {
      const uint64_t blk = kBlockBase + static_cast<uint64_t>(i) * kBlockStride;
      mem_.Write(blk, head);
      head = blk;
    }
    mem_.Write(kFreeListHead, head);

    dep_.sampling().Configure(profiler::SamplingConfig{
        options.sample_rate,
        options.sample_seed != 0 ? options.sample_seed : options.seed});

    detector_.set_flow_callback([this](const shm::FlowEvent& ev) {
      prof_.AdoptCtxt(*thread_profiles_[ev.consumer], ev.ctxt);
      if (ev.lock_id == queue_mutex_.id()) {
        queue_flow_seen_ = true;
      }
    });

    if (options.live) {
      obs::live::LiveOptions lo;
      lo.history_bytes = options.live_history_bytes;
      lo.publish_batch = options.live_publish_batch;
      daemon_ = std::make_unique<obs::live::Whodunitd>(sched_, lo);
      dep_.AttachLive(daemon_.get());
      // The server's stage lives outside the deployment's registry, so
      // attach it and route the daemon's pre-query flush to it directly.
      prof_.AttachLive(daemon_.get());
      daemon_->set_flush_hook([this] { prof_.FlushLive(); });
      // Intern the two connection-type names once so the per-accept
      // publish path is pure integer work.
      conn_small_sym_ = daemon_->symbols().Intern("conn_small");
      conn_large_sym_ = daemon_->symbols().Intern("conn_large");
    }
  }

  MinihttpdResult Run(profiler::ShardProfile* out_profile = nullptr);

  void SetShard(size_t index, size_t count) { dep_.set_shard(index, count); }

 private:
  static StageProfiler::Options MakeProfilerOptions(const MinihttpdOptions& options) {
    StageProfiler::Options po;
    po.name = "apache";
    po.mode = options.mode;
    po.sample_period = workload::kSamplePeriod;
    po.costs.per_sample = workload::kPerSampleCost;
    po.costs.per_call = workload::kPerCallCost;
    po.costs.per_message_context = workload::kPerMessageContextCost;
    return po;
  }

  shm::FlowDetector MakeDetector() {
    return shm::FlowDetector([this](vm::ThreadId t) {
      return prof_.CurrentCtxtId(*thread_profiles_[t]);
    });
  }

  // Runs a guest critical section for simulated thread `t`, returning
  // the virtual CPU time it costs. Whodunit emulates critical sections
  // whose lock still might carry transaction flow; everything else
  // (and every other profiling mode) runs directly.
  // `sampled` is the current transaction's sampling decision: an
  // unsampled section runs directly (no detector, no flow summary),
  // exactly like a non-transactional profiling mode would run it.
  sim::SimTime RunGuest(const vm::Program& prog, vm::ThreadId t, uint64_t lock_id,
                        const std::map<int, uint64_t>& regs, bool sampled = true) {
    vm::CpuState& cpu_state = guest_cpus_[t];
    for (const auto& [r, v] : regs) {
      cpu_state.regs[static_cast<size_t>(r)] = v;
    }
    const bool emulate =
        TracksTransactions(options_.mode) && sampled && detector_.ShouldEmulate(lock_id);
    // Emulated sections go through the flow-summary cache: the first
    // run of each section records its effects, steady-state runs
    // replay them without re-entering the MiniVM dispatch loop.
    const vm::ExecResult res =
        emulate ? section_cache_.Run(interp_, prog, t, cpu_state, mem_, &detector_)
                : interp_.Execute(prog, t, cpu_state, mem_, nullptr,
                                  vm::Interpreter::Mode::kDirect);
    if (emulate) {
      ++emulated_sections_;
    }
    return workload::CyclesToNs(res.guest_cycles);
  }

  sim::Process Listener() {
    ThreadProfile& tp = *thread_profiles_[0];
    const auto main_fn = prof_.RegisterFunction("listener_main");
    const auto accept_fn = prof_.RegisterFunction("apr_socket_accept");
    const auto push_fn = prof_.RegisterFunction("ap_queue_push");
    auto main_frame = std::make_unique<StageProfiler::FrameGuard>(prof_, tp, main_fn);
    for (;;) {
      auto conn = co_await accept_ch_.Receive();
      if (!conn) {
        break;
      }
      // Each accepted connection begins a fresh transaction.
      prof_.ResetTransaction(tp);
      conn->sampled = prof_.IsSampled(tp);
      if (daemon_ != nullptr) {
        // Type the live transaction by the connection's weight; the
        // origin span stays open until a worker completes it, so its
        // duration covers the queue wait too.
        uint64_t total_bytes = 0;
        for (uint32_t object : conn->objects) {
          total_bytes += trace_.ObjectBytes(object);
        }
        prof_.LiveBegin(tp, total_bytes >= 64 * 1024 ? conn_large_sym_
                                                     : conn_small_sym_);
        conn->txn = prof_.live_txn(tp);
      }
      {
        auto f = prof_.EnterFrame(tp, accept_fn);
        co_await cpu_.Consume(prof_.ChargeCpu(tp, workload::kAcceptCost));
      }
      {
        auto f = prof_.EnterFrame(tp, push_fn);
        co_await queue_mutex_.Acquire(/*tag=*/0);
        const uint64_t handle = StashConnection(*conn);
        const sim::SimTime cost =
            RunGuest(push_prog_, /*t=*/0, queue_mutex_.id(),
                     {{0, kQueueBase}, {1, handle}, {2, handle + 1}}, conn->sampled);
        co_await cpu_.Consume(prof_.ChargeCpu(tp, cost));
        queue_mutex_.Release(0);
      }
      if (conn->sampled) {
        ++sampled_in_queue_;
      }
      items_.Send(1);
    }
    main_frame.reset();
  }

  // The VM queue carries a small integer handle; connection metadata
  // lives beside it (as Apache's fd + pool pointers reference heap
  // state).
  uint64_t StashConnection(const Connection& conn) {
    const uint64_t handle = next_handle_++;
    in_flight_[handle] = conn;
    in_flight_[handle].enqueued_ns = sched_.now();
    return handle;
  }

  sim::Process Worker(int index) {
    const auto vm_thread = static_cast<vm::ThreadId>(1 + index);
    ThreadProfile& tp = *thread_profiles_[vm_thread];
    const auto pop_fn = prof_.RegisterFunction("ap_queue_pop");
    const auto process_fn = prof_.RegisterFunction("ap_process_connection");
    const auto parse_fn = prof_.RegisterFunction("http_parse");
    const auto sendfile_fn = prof_.RegisterFunction("sendfile");
    const uint64_t out_sd = kScratchBase + vm_thread * 64;
    const uint64_t out_p = out_sd + 8;

    for (;;) {
      auto token = co_await items_.Receive();
      if (!token) {
        break;
      }
      uint64_t handle = 0;
      {
        auto f = prof_.EnterFrame(tp, pop_fn);
        co_await queue_mutex_.Acquire(/*tag=*/0);
        // The pop must be emulated only while a sampled connection may
        // still be queued — emulating it is what fires the flow
        // adoption. When every queued connection is unsampled the pop
        // runs directly, which is where the sampled-rate savings on
        // the §3 machinery come from.
        const sim::SimTime cost =
            RunGuest(pop_prog_, vm_thread, queue_mutex_.id(),
                     {{0, kQueueBase}, {5, out_sd}, {6, out_p}}, sampled_in_queue_ > 0);
        // The pop's consume window fired the flow callback: this
        // worker now executes under the listener's transaction context.
        co_await cpu_.Consume(prof_.ChargeCpu(tp, cost));
        queue_mutex_.Release(0);
        handle = guest_cpus_[vm_thread].regs[7];
      }
      auto conn_it = in_flight_.find(handle);
      if (conn_it == in_flight_.end()) {
        continue;
      }
      const Connection conn = conn_it->second;
      in_flight_.erase(conn_it);
      if (conn.sampled) {
        --sampled_in_queue_;
      }
      // Adopt the connection's sampling decision for all the work done
      // on its behalf (the queue carried the bit, not a synopsis).
      prof_.SetSampled(tp, conn.sampled);
      prof_.LiveJoin(tp, conn.txn,
                     std::max<int64_t>(0, sched_.now() - conn.enqueued_ns));

      {
        auto f = prof_.EnterFrame(tp, process_fn);
        for (uint32_t object : conn.objects) {
          if (sched_.now() >= options_.duration) {
            break;  // run over; don't drain a persistent connection
          }
          // Request-scoped pool memory from the shared allocator.
          co_await RunAllocatorOp(tp, vm_thread, alloc_prog_, /*blk=*/0);
          const uint64_t blk = guest_cpus_[vm_thread].regs[1];
          {
            auto pf = prof_.EnterFrame(tp, parse_fn);
            co_await cpu_.Consume(prof_.ChargeCpu(tp, workload::kHttpParseCost));
          }
          const uint64_t bytes = trace_.ObjectBytes(object);
          {
            auto sf = prof_.EnterFrame(tp, sendfile_fn);
            co_await cpu_.Consume(prof_.ChargeCpu(
                tp, static_cast<sim::SimTime>(static_cast<double>(bytes) *
                                              workload::kSendNsPerByte)));
          }
          bytes_served_ += bytes;
          ++requests_;
          // Shared statistics counter (the Figure 2 pattern).
          {
            co_await stats_mutex_.Acquire(0);
            const sim::SimTime cost =
                RunGuest(counter_prog_, vm_thread, stats_mutex_.id(), {{0, kCounterAddr}},
                         prof_.IsSampled(tp));
            co_await cpu_.Consume(prof_.ChargeCpu(tp, cost));
            stats_mutex_.Release(0);
          }
          if (blk != 0) {
            co_await RunAllocatorOp(tp, vm_thread, free_prog_, blk);
          }
        }
      }
      ++connections_done_;
      prof_.LiveComplete(tp);
      if (conn.client != kOpenLoopClient) {
        client_done_[conn.client]->Send(1);
      }
    }
  }

  sim::Task<void> RunAllocatorOp(ThreadProfile& tp, vm::ThreadId vm_thread,
                                 const vm::Program& prog, uint64_t blk) {
    co_await alloc_mutex_.Acquire(0);
    std::map<int, uint64_t> regs{{0, kFreeListHead}};
    if (blk != 0) {
      regs[1] = blk;
    }
    const sim::SimTime cost =
        RunGuest(prog, vm_thread, alloc_mutex_.id(), regs, prof_.IsSampled(tp));
    co_await cpu_.Consume(prof_.ChargeCpu(tp, cost));
    alloc_mutex_.Release(0);
  }

  // Open-loop load: one generator stands in for ~10k logical clients,
  // injecting connections on an arrival clock instead of waiting for
  // completions. See src/workload/arrivals.h for the determinism
  // contract (per-generator seed stream, shard-split independent of
  // thread count).
  sim::Process OpenLoopGenerator(double tps, uint64_t seed) {
    util::Rng base(seed);
    workload::ArrivalProcess arrivals(options_.arrivals, tps, base.NextU64());
    util::Rng draw(base.NextU64());
    for (;;) {
      co_await sim::Delay{sched_, arrivals.NextInterarrival()};
      if (sched_.now() >= options_.duration) {
        break;
      }
      Connection conn;
      conn.client = kOpenLoopClient;
      conn.objects = trace_.DrawConnection(draw);
      ++connections_;
      accept_ch_.Send(std::move(conn));
    }
  }

  sim::Process Client(uint32_t index, uint64_t seed) {
    util::Rng rng(seed);
    for (;;) {
      if (sched_.now() >= options_.duration) {
        break;
      }
      Connection conn;
      conn.client = index;
      if (options_.persistent_connections) {
        // One connection for the whole run: many requests, no churn.
        for (int i = 0; i < 50000; ++i) {
          const auto piece = trace_.DrawConnection(rng);
          conn.objects.insert(conn.objects.end(), piece.begin(), piece.end());
        }
      } else {
        conn.objects = trace_.DrawConnection(rng);
      }
      accept_ch_.Send(std::move(conn));
      auto done = co_await client_done_[index]->Receive();
      if (!done) {
        break;
      }
      ++connections_;
    }
  }

  MinihttpdOptions options_;
  sim::Scheduler sched_;
  sim::CpuResource cpu_;
  profiler::Deployment dep_;
  StageProfiler prof_;
  vm::Memory mem_;
  vm::Interpreter interp_;
  shm::FlowDetector detector_;
  shm::SectionCache section_cache_;
  sim::SimMutex queue_mutex_;
  sim::SimMutex alloc_mutex_;
  sim::SimMutex stats_mutex_;
  sim::Channel<uint8_t> items_;
  sim::Channel<Connection> accept_ch_;
  workload::WebTrace trace_;
  util::Rng rng_;
  std::unique_ptr<obs::live::Whodunitd> daemon_;
  // Connection-type names pre-interned against the daemon's symbol
  // table (set in the ctor when options.live).
  obs::live::SymId conn_small_sym_ = 0;
  obs::live::SymId conn_large_sym_ = 0;

  vm::Program push_prog_, pop_prog_, alloc_prog_, free_prog_, counter_prog_;
  std::map<vm::ThreadId, vm::CpuState> guest_cpus_;
  std::vector<ThreadProfile*> thread_profiles_;
  std::vector<std::unique_ptr<sim::Channel<uint8_t>>> client_done_;
  std::map<uint64_t, Connection> in_flight_;
  uint64_t next_handle_ = 1;
  // Sampled connections currently queued; gates the pop emulation.
  uint64_t sampled_in_queue_ = 0;

  uint64_t bytes_served_ = 0;
  uint64_t requests_ = 0;
  uint64_t connections_ = 0;
  uint64_t connections_done_ = 0;
  uint64_t emulated_sections_ = 0;
  bool queue_flow_seen_ = false;
};

MinihttpdResult Server::Run(profiler::ShardProfile* out_profile) {
  // Threads: 0 = listener, 1..workers = workers.
  thread_profiles_.push_back(&prof_.CreateThread("listener"));
  for (int w = 0; w < options_.workers; ++w) {
    thread_profiles_.push_back(&prof_.CreateThread("worker_" + std::to_string(w)));
  }
  const bool open_loop =
      options_.arrivals.kind != workload::ArrivalKind::kClosed;
  if (!open_loop) {
    for (int c = 0; c < options_.clients; ++c) {
      client_done_.push_back(std::make_unique<sim::Channel<uint8_t>>(sched_));
    }
  }

  sim::Spawn(sched_, Listener());
  for (int w = 0; w < options_.workers; ++w) {
    sim::Spawn(sched_, Worker(w));
  }
  if (open_loop) {
    const auto clients = static_cast<uint64_t>(options_.clients);
    const uint64_t per_gen =
        std::max<uint64_t>(1, options_.arrivals.clients_per_generator);
    const auto gens = static_cast<int>((clients + per_gen - 1) / per_gen);
    // Minihttpd clients have no think time, so there is no natural
    // per-client rate; the 0 mean falls back to 1 conn/client/sec
    // unless --offered-load pins the aggregate.
    const double tps = workload::EffectiveOfferedTps(
        options_.arrivals, clients, /*per_client_think_mean=*/0);
    util::Rng gen_seeder(options_.seed ^ 0x9E3779B97F4A7C15ULL);
    for (int g = 0; g < gens; ++g) {
      sim::Spawn(sched_, OpenLoopGenerator(tps / gens, gen_seeder.NextU64()));
    }
  } else {
    util::Rng seeder(options_.seed);
    for (int c = 0; c < options_.clients; ++c) {
      sim::Spawn(sched_, Client(static_cast<uint32_t>(c), seeder.NextU64()));
    }
  }

  // Warmup snapshot, then measure to the end of the run.
  const sim::SimTime warmup = options_.duration / 5;
  uint64_t warm_bytes = 0;
  sched_.ScheduleAt(warmup, [&] { warm_bytes = bytes_served_; });
  sched_.RunUntil(options_.duration);

  // Drain: closing the channels releases every blocked coroutine.
  accept_ch_.Close();
  items_.Close();
  for (auto& ch : client_done_) {
    ch->Close();
  }
  sched_.Run();

  MinihttpdResult result;
  result.bytes_served = bytes_served_;
  result.requests = requests_;
  result.connections = connections_done_;
  const double window_s = sim::ToSeconds(options_.duration - warmup);
  result.throughput_mbps =
      static_cast<double>(bytes_served_ - warm_bytes) * 8.0 / 1e6 / window_s;
  result.flows_detected = detector_.flows_detected();
  result.queue_flow_detected = queue_flow_seen_;
  result.allocator_demoted = detector_.IsDemoted(alloc_mutex_.id());
  result.critical_sections_emulated = emulated_sections_;
  result.profile_text = prof_.RenderTransactionalProfile(0.005);

  // Origin (empty-label) CCT = the listener's own context.
  sim::SimTime origin = 0, total = prof_.total_cpu_time();
  for (const auto& [label, cct] : prof_.LabeledCcts()) {
    if (label.empty()) {
      origin += cct->TotalCpuTime();
    }
  }
  result.origin_cpu_ns = origin;
  result.total_cpu_ns = total;
  if (total > 0) {
    result.listener_context_share = 100.0 * static_cast<double>(origin) /
                                    static_cast<double>(total);
    result.worker_context_share = 100.0 - result.listener_context_share;
  }
  if (out_profile != nullptr) {
    out_profile->functions = dep_.functions();
    profiler::AppendStageCcts(dep_, prof_, out_profile);
  }
  if (daemon_ != nullptr) {
    // Flush the partial publish batch and drain before snapshotting,
    // so the exports reflect every published event regardless of
    // --publish-batch (batch-size invariance).
    daemon_->Shutdown();
    sched_.Run();
    result.live_top_text = daemon_->RenderTop();
    result.live_span_json = daemon_->ExportSpansJson();
  }
  return result;
}

struct MinihttpdShardOutput {
  MinihttpdResult result;
  profiler::ShardProfile profile;
};

MinihttpdResult RunShardedMinihttpd(const MinihttpdOptions& options) {
  const size_t shards = static_cast<size_t>(options.shards);
  auto runs = sim::ParallelRunner::Run(
      shards, static_cast<size_t>(options.threads),
      [&options, shards](size_t shard, sim::ShardEnv&) {
        MinihttpdOptions shard_options = options;
        shard_options.shards = 1;
        shard_options.threads = 1;
        const int base = options.clients / static_cast<int>(shards);
        const int extra = options.clients % static_cast<int>(shards);
        shard_options.clients = base + (static_cast<int>(shard) < extra ? 1 : 0);
        shard_options.seed = options.seed + shard;
        shard_options.sample_seed =
            options.sample_seed != 0 ? options.sample_seed + shard : 0;
        MinihttpdShardOutput out;
        Server server(shard_options);
        server.SetShard(shard, shards);
        out.result = server.Run(&out.profile);
        return out;
      });

  MinihttpdResult merged;
  profiler::MergedProfile profile;
  std::ostringstream live_top, live_spans;
  for (size_t shard = 0; shard < runs.size(); ++shard) {
    const MinihttpdResult& r = runs[shard].result.result;
    merged.throughput_mbps += r.throughput_mbps;
    merged.requests += r.requests;
    merged.connections += r.connections;
    merged.bytes_served += r.bytes_served;
    merged.flows_detected += r.flows_detected;
    merged.queue_flow_detected = merged.queue_flow_detected || r.queue_flow_detected;
    merged.allocator_demoted = merged.allocator_demoted || r.allocator_demoted;
    merged.critical_sections_emulated += r.critical_sections_emulated;
    merged.origin_cpu_ns += r.origin_cpu_ns;
    merged.total_cpu_ns += r.total_cpu_ns;
    profile.Fold(runs[shard].result.profile);
    if (options.live) {
      live_top << "=== shard " << shard << " ===\n" << r.live_top_text;
      live_spans << "=== shard " << shard << " ===\n" << r.live_span_json;
    }
    runs[shard].env->FoldMetricsInto(obs::Registry());
  }
  if (merged.total_cpu_ns > 0) {
    merged.listener_context_share = 100.0 * static_cast<double>(merged.origin_cpu_ns) /
                                    static_cast<double>(merged.total_cpu_ns);
    merged.worker_context_share = 100.0 - merged.listener_context_share;
  }
  merged.profile_text = profile.RenderTransactionalProfile("apache", 0.005);
  merged.live_top_text = live_top.str();
  merged.live_span_json = live_spans.str();
  return merged;
}

}  // namespace

MinihttpdResult RunMinihttpd(const MinihttpdOptions& options) {
  if (options.shards > 1) {
    return RunShardedMinihttpd(options);
  }
  Server server(options);
  return server.Run();
}

MysqlShmValidationResult RunMysqlShmValidation(int threads, int rounds, uint64_t seed) {
  // MySQL-like shared-memory traffic: every server thread both reads
  // and writes table rows under the table lock, and bumps a shared
  // counter. Per §8.1, the algorithm must find no transaction flow.
  sim::Scheduler sched;
  profiler::Deployment dep;
  StageProfiler::Options po;
  po.name = "mysqld";
  StageProfiler prof(dep, po);
  std::vector<ThreadProfile*> tps;
  for (int t = 0; t < threads; ++t) {
    tps.push_back(&prof.CreateThread("db_thread_" + std::to_string(t)));
  }

  shm::FlowDetector detector(
      [&](vm::ThreadId t) { return prof.CurrentCtxtId(*tps[t]); });
  vm::Memory mem;
  vm::Interpreter interp;
  sim::SimMutex table_lock(sched, "table_lock");
  sim::SimMutex counter_lock(sched, "counter_lock");
  vm::Program rd = shm::TableRead(table_lock.id());
  vm::Program wr = shm::TableWrite(table_lock.id());
  vm::Program cnt = shm::CounterIncrement(counter_lock.id());

  constexpr uint64_t kTableBase = 0xA000;
  constexpr uint64_t kCounter = 0x5000;
  util::Rng rng(seed);
  MysqlShmValidationResult result;
  std::map<vm::ThreadId, vm::CpuState> cpus;
  for (int round = 0; round < rounds; ++round) {
    const auto t = static_cast<vm::ThreadId>(rng.NextBelow(static_cast<uint64_t>(threads)));
    vm::CpuState& cpu = cpus[t];
    const uint64_t row = rng.NextBelow(64);
    if (rng.NextBernoulli(0.5)) {
      cpu.regs[0] = kTableBase;
      cpu.regs[1] = row;
      if (detector.ShouldEmulate(table_lock.id())) {
        interp.Execute(rd, t, cpu, mem, &detector);
        ++result.critical_sections_run;
      }
    } else {
      cpu.regs[0] = kTableBase;
      cpu.regs[1] = row;
      cpu.regs[2] = rng.NextU64() | 1;
      if (detector.ShouldEmulate(table_lock.id())) {
        interp.Execute(wr, t, cpu, mem, &detector);
        ++result.critical_sections_run;
      }
    }
    cpu.regs[0] = kCounter;
    if (detector.ShouldEmulate(counter_lock.id())) {
      interp.Execute(cnt, t, cpu, mem, &detector);
      ++result.critical_sections_run;
    }
  }
  result.flows_detected = detector.flows_detected();
  result.table_lock_demoted = detector.IsDemoted(table_lock.id());
  return result;
}

}  // namespace whodunit::apps
