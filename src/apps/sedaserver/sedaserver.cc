#include "src/apps/sedaserver/sedaserver.h"

#include <algorithm>
#include <list>
#include <map>
#include <memory>
#include <sstream>
#include <unordered_map>
#include <vector>

#include "src/http/http.h"
#include "src/obs/live/daemon.h"
#include "src/obs/metrics.h"
#include "src/profiler/deployment.h"
#include "src/profiler/shard_merge.h"
#include "src/profiler/stage_profiler.h"
#include "src/sim/parallel_runner.h"
#include "src/seda/stage.h"
#include "src/sim/channel.h"
#include "src/sim/cpu.h"
#include "src/util/rng.h"
#include "src/util/zipf.h"
#include "src/workload/arrivals.h"
#include "src/workload/calibration.h"
#include "src/workload/webtrace.h"

namespace whodunit::apps {
namespace {

using callpath::TracksTransactions;
using profiler::StageProfiler;
using profiler::ThreadProfile;
using seda::StageGraph;
using seda::StageId;

// Requests injected by an open-loop generator carry this sentinel
// client id: no closed-loop coroutine is waiting on client_done_.
constexpr uint32_t kOpenLoopClient = 0xFFFFFFFFu;

struct ReqState {
  uint32_t client;
  uint32_t object = 0;
  std::vector<uint32_t> objects;
  size_t next_index = 0;
  uint64_t txn = 0;  // live-observability transaction id
};

class Haboob {
 public:
  explicit Haboob(const SedaServerOptions& options)
      : options_(options),
        cpu_(sched_, workload::kWebServerCores, "haboob_cpu"),
        graph_(sched_),
        prof_(dep_, MakeProfilerOptions(options)),
        accept_ch_(sched_) {
    dep_.sampling().Configure(profiler::SamplingConfig{
        options.sample_rate,
        options.sample_seed != 0 ? options.sample_seed : options.seed});
    if (options.live) {
      obs::live::LiveOptions lo;
      lo.history_bytes = options.live_history_bytes;
      lo.publish_batch = options.live_publish_batch;
      daemon_ = std::make_unique<obs::live::Whodunitd>(sched_, lo);
      dep_.AttachLive(daemon_.get());
      // The server's stage lives outside the deployment's registry, so
      // attach it and route the daemon's pre-query flush to it directly.
      prof_.AttachLive(daemon_.get());
      daemon_->set_flush_hook([this] { prof_.FlushLive(); });
      // Type names interned once; per-stage span names are interned in
      // Run() after the stage graph is built.
      http_request_sym_ = daemon_->symbols().Intern("http_request");
      cache_hit_sym_ = daemon_->symbols().Intern("cache_hit");
      cache_miss_sym_ = daemon_->symbols().Intern("cache_miss");
    }
  }

  SedaServerResult Run(profiler::ShardProfile* out_profile = nullptr);

  void SetShard(size_t index, size_t count) { dep_.set_shard(index, count); }

 private:
  static StageProfiler::Options MakeProfilerOptions(const SedaServerOptions& options) {
    StageProfiler::Options po;
    po.name = "haboob";
    po.mode = options.mode;
    po.sample_period = workload::kSamplePeriod;
    po.costs.per_sample = workload::kPerSampleCost;
    po.costs.per_call = workload::kPerCallCost;
    po.costs.per_message_context = workload::kPerMessageContextCost;
    return po;
  }

  ThreadProfile& TpOf(StageId stage, int worker) {
    return *worker_tps_.at(stage).at(static_cast<size_t>(worker));
  }

  // Unsampled elements skip the per-element context-concatenation
  // cost: that work really is elided for them (stage.cc never touches
  // the context tree), which is the overhead sampling buys back.
  sim::SimTime TrackingCost(bool sampled) const {
    return TracksTransactions(options_.mode) && sampled ? workload::kSedaTrackingCost : 0;
  }

  sim::Task<void> Charge(StageGraph::WorkerContext& wc, sim::SimTime cost) {
    ThreadProfile& tp = TpOf(wc.stage, wc.worker);
    co_await cpu_.Consume(prof_.ChargeCpu(
        tp, cost + workload::kSedaStageDispatchCost + TrackingCost(wc.sampled)));
  }

  // Each SEDA stage gets its own track in the live daemon, so the
  // transaction's spans are opened/closed against the stage's name
  // directly rather than through StageProfiler's (single) stage name.
  uint64_t TxnOf(uint64_t handle) const {
    auto it = requests_.find(handle);
    return it == requests_.end() ? 0 : it->second.txn;
  }
  void LiveJoinStage(const StageGraph::WorkerContext& wc) {
    if (daemon_ != nullptr) {
      daemon_->JoinSpan(TxnOf(wc.payload), stage_syms_[wc.stage], /*link=*/0,
                        daemon_->now(), wc.queue_wait_ns);
    }
  }
  void LiveLeaveStage(const StageGraph::WorkerContext& wc) {
    if (daemon_ != nullptr) {
      daemon_->EndSpan(TxnOf(wc.payload), stage_syms_[wc.stage], daemon_->now());
    }
  }

  void BuildStages() {
    listen_ = graph_.AddStage("ListenStage", 1, [this](auto& wc) -> sim::Task<void> {
      if (daemon_ != nullptr && wc.sampled) {
        ReqState& st = requests_.at(wc.payload);
        st.txn = daemon_->BeginTxn(stage_syms_[listen_], daemon_->now());
        daemon_->SetTxnType(st.txn, http_request_sym_);
      }
      co_await Charge(wc, workload::kAcceptCost);
      LiveLeaveStage(wc);
      wc.EnqueueTo(http_server_, wc.payload);
    });
    http_server_ = graph_.AddStage("HttpServer", options_.workers_per_stage,
                                   [this](auto& wc) -> sim::Task<void> {
                                     LiveJoinStage(wc);
                                     co_await Charge(wc, sim::Micros(12));
                                     LiveLeaveStage(wc);
                                     wc.EnqueueTo(read_, wc.payload);
                                   });
    read_ = graph_.AddStage("ReadStage", options_.workers_per_stage,
                            [this](auto& wc) -> sim::Task<void> {
                              LiveJoinStage(wc);
                              co_await Charge(wc, sim::Micros(15));
                              LiveLeaveStage(wc);
                              wc.EnqueueTo(http_recv_, wc.payload);
                            });
    http_recv_ = graph_.AddStage("HttpRecv", options_.workers_per_stage,
                                 [this](auto& wc) -> sim::Task<void> {
                                   LiveJoinStage(wc);
                                   co_await Charge(wc, workload::kHttpParseCost);
                                   LiveLeaveStage(wc);
                                   wc.EnqueueTo(cache_, wc.payload);
                                 });
    cache_ = graph_.AddStage("CacheStage", options_.workers_per_stage,
                             [this](auto& wc) -> sim::Task<void> {
                               LiveJoinStage(wc);
                               ReqState& st = requests_.at(wc.payload);
                               co_await Charge(wc, workload::kCacheLookupCost);
                               const bool hit = InCache(st.object);
                               if (daemon_ != nullptr) {
                                 // The cache outcome is this request's real
                                 // type; re-label the live transaction.
                                 daemon_->SetTxnType(
                                     st.txn, hit ? cache_hit_sym_ : cache_miss_sym_);
                               }
                               LiveLeaveStage(wc);
                               if (hit) {
                                 ++hits_;
                                 wc.EnqueueTo(write_, wc.payload);
                               } else {
                                 ++misses_;
                                 wc.EnqueueTo(miss_, wc.payload);
                               }
                             });
    miss_ = graph_.AddStage("MissStage", options_.workers_per_stage,
                            [this](auto& wc) -> sim::Task<void> {
                              LiveJoinStage(wc);
                              co_await Charge(wc, sim::Micros(20));
                              LiveLeaveStage(wc);
                              wc.EnqueueTo(file_io_, wc.payload);
                            });
    file_io_ = graph_.AddStage("FileIoStage", options_.workers_per_stage,
                               [this](auto& wc) -> sim::Task<void> {
                                 LiveJoinStage(wc);
                                 ReqState& st = requests_.at(wc.payload);
                                 // Disk read, then populate the cache.
                                 co_await sim::Delay{sched_, sim::Micros(400)};
                                 const uint64_t bytes = trace_.ObjectBytes(st.object);
                                 co_await Charge(
                                     wc, static_cast<sim::SimTime>(
                                             static_cast<double>(bytes) * 1.5));
                                 InsertCache(st.object);
                                 LiveLeaveStage(wc);
                                 wc.EnqueueTo(write_, wc.payload);
                               });
    write_ = graph_.AddStage("WriteStage", options_.workers_per_stage,
                             [this](auto& wc) -> sim::Task<void> {
                               LiveJoinStage(wc);
                               ReqState& st = requests_.at(wc.payload);
                               const uint64_t bytes = trace_.ObjectBytes(st.object);
                               co_await Charge(
                                   wc, static_cast<sim::SimTime>(static_cast<double>(bytes) *
                                                                 workload::kSedaSendNsPerByte));
                               bytes_served_ += bytes;
                               ++requests_served_;
                               if (st.next_index < st.objects.size()) {
                                 st.object = st.objects[st.next_index++];
                                 LiveLeaveStage(wc);
                                 wc.EnqueueTo(read_, wc.payload);
                               } else {
                                 const uint64_t txn = st.txn;
                                 if (st.client != kOpenLoopClient) {
                                   client_done_[st.client]->Send(1);
                                 }
                                 requests_.erase(wc.payload);
                                 if (daemon_ != nullptr) {
                                   // Closes the write span too.
                                   daemon_->CompleteTxn(txn, daemon_->now());
                                 }
                               }
                               co_return;
                             });
  }

  bool InCache(uint32_t object) {
    auto it = cache_index_.find(object);
    if (it == cache_index_.end()) {
      return false;
    }
    cache_order_.splice(cache_order_.begin(), cache_order_, it->second);
    return true;
  }
  void InsertCache(uint32_t object) {
    if (cache_index_.contains(object)) {
      return;
    }
    cache_order_.push_front(object);
    cache_index_[object] = cache_order_.begin();
    if (cache_order_.size() > workload::kProxyCacheObjects) {
      cache_index_.erase(cache_order_.back());
      cache_order_.pop_back();
    }
  }

  sim::Process AcceptPump() {
    for (;;) {
      auto conn = co_await accept_ch_.Receive();
      if (!conn) {
        break;
      }
      // The sampling decision is drawn once per request, here at the
      // transaction's origin; it rides on every queue element the
      // request spawns through the stage graph.
      const bool sampled =
          !TracksTransactions(options_.mode) || dep_.sampling().Decide();
      graph_.InjectExternal(listen_, *conn, sampled);
    }
  }

  sim::Process Client(uint32_t index, uint64_t seed) {
    util::Rng rng(seed);
    for (;;) {
      if (sched_.now() >= options_.duration) {
        break;
      }
      const uint64_t handle = next_handle_++;
      ReqState st;
      st.client = index;
      st.objects = trace_.DrawConnection(rng);
      st.object = st.objects[0];
      st.next_index = 1;
      requests_.emplace(handle, std::move(st));
      accept_ch_.Send(handle);
      auto done = co_await client_done_[index]->Receive();
      if (!done) {
        break;
      }
    }
  }

  // Open-loop load: one generator stands in for ~10k logical clients,
  // injecting requests on an arrival clock instead of waiting for
  // completions (src/workload/arrivals.h).
  sim::Process OpenLoopGenerator(double tps, uint64_t seed) {
    util::Rng base(seed);
    workload::ArrivalProcess arrivals(options_.arrivals, tps, base.NextU64());
    util::Rng draw(base.NextU64());
    for (;;) {
      co_await sim::Delay{sched_, arrivals.NextInterarrival()};
      if (sched_.now() >= options_.duration) {
        break;
      }
      const uint64_t handle = next_handle_++;
      ReqState st;
      st.client = kOpenLoopClient;
      st.objects = trace_.DrawConnection(draw);
      st.object = st.objects[0];
      st.next_index = 1;
      requests_.emplace(handle, std::move(st));
      accept_ch_.Send(handle);
    }
  }

  SedaServerOptions options_;
  sim::Scheduler sched_;
  sim::CpuResource cpu_;
  StageGraph graph_;
  profiler::Deployment dep_;
  StageProfiler prof_;
  sim::Channel<uint64_t> accept_ch_;
  workload::WebTrace trace_;
  std::unique_ptr<obs::live::Whodunitd> daemon_;

  StageId listen_ = 0, http_server_ = 0, read_ = 0, http_recv_ = 0, cache_ = 0, miss_ = 0,
          file_io_ = 0, write_ = 0;
  // Stage/type names pre-interned against the daemon's symbol table:
  // stage_syms_ is indexed by StageId (filled in Run() once the stage
  // graph exists), the type syms in the ctor.
  std::vector<obs::live::SymId> stage_syms_;
  obs::live::SymId http_request_sym_ = 0;
  obs::live::SymId cache_hit_sym_ = 0;
  obs::live::SymId cache_miss_sym_ = 0;
  std::map<StageId, std::vector<ThreadProfile*>> worker_tps_;
  std::map<uint64_t, ReqState> requests_;
  std::vector<std::unique_ptr<sim::Channel<uint8_t>>> client_done_;
  std::list<uint32_t> cache_order_;
  std::unordered_map<uint32_t, std::list<uint32_t>::iterator> cache_index_;
  uint64_t next_handle_ = 1;

  uint64_t bytes_served_ = 0;
  uint64_t requests_served_ = 0;
  uint64_t hits_ = 0;
  uint64_t misses_ = 0;
};

SedaServerResult Haboob::Run(profiler::ShardProfile* out_profile) {
  BuildStages();
  if (daemon_ != nullptr) {
    for (StageId s = 0; s < graph_.stage_count(); ++s) {
      stage_syms_.push_back(daemon_->symbols().Intern(graph_.StageName(s)));
    }
  }
  graph_.set_tracking(TracksTransactions(options_.mode));
  for (StageId s = 0; s < graph_.stage_count(); ++s) {
    const int workers = graph_.stage(s).workers();
    for (int w = 0; w < workers; ++w) {
      worker_tps_[s].push_back(
          &prof_.CreateThread(graph_.StageName(s) + "_w" + std::to_string(w)));
    }
  }
  graph_.set_context_listener(
      [this](StageId stage, int worker, context::NodeId node, bool sampled) {
        ThreadProfile& tp = TpOf(stage, worker);
        prof_.SetSampled(tp, sampled);
        prof_.SetLocalContext(tp, node);
      });
  dep_.set_element_namer([this](context::ElementKind kind, uint32_t id) {
    return kind == context::ElementKind::kStage ? graph_.StageName(id)
                                                : "handler:" + std::to_string(id);
  });

  const bool open_loop =
      options_.arrivals.kind != workload::ArrivalKind::kClosed;
  if (!open_loop) {
    for (int c = 0; c < options_.clients; ++c) {
      client_done_.push_back(std::make_unique<sim::Channel<uint8_t>>(sched_));
    }
  }
  graph_.Start();
  sim::Spawn(sched_, AcceptPump());
  if (open_loop) {
    const auto clients = static_cast<uint64_t>(options_.clients);
    const uint64_t per_gen =
        std::max<uint64_t>(1, options_.arrivals.clients_per_generator);
    const auto gens = static_cast<int>((clients + per_gen - 1) / per_gen);
    // Haboob clients have no think time; the 0 mean falls back to
    // 1 req/client/sec unless --offered-load pins the aggregate.
    const double tps = workload::EffectiveOfferedTps(
        options_.arrivals, clients, /*per_client_think_mean=*/0);
    util::Rng gen_seeder(options_.seed ^ 0x9E3779B97F4A7C15ULL);
    for (int g = 0; g < gens; ++g) {
      sim::Spawn(sched_, OpenLoopGenerator(tps / gens, gen_seeder.NextU64()));
    }
  } else {
    util::Rng seeder(options_.seed);
    for (int c = 0; c < options_.clients; ++c) {
      sim::Spawn(sched_, Client(static_cast<uint32_t>(c), seeder.NextU64()));
    }
  }

  const sim::SimTime warmup = options_.duration / 5;
  uint64_t warm_bytes = 0;
  sched_.ScheduleAt(warmup, [&] { warm_bytes = bytes_served_; });
  sched_.RunUntil(options_.duration);

  accept_ch_.Close();
  graph_.Stop();
  for (auto& ch : client_done_) {
    ch->Close();
  }
  sched_.Run();

  SedaServerResult result;
  result.requests = requests_served_;
  result.cache_hits = hits_;
  result.cache_misses = misses_;
  const double window_s = sim::ToSeconds(options_.duration - warmup);
  result.throughput_mbps =
      static_cast<double>(bytes_served_ - warm_bytes) * 8.0 / 1e6 / window_s;
  result.profile_text = prof_.RenderTransactionalProfile(0.001);

  result.total_cpu_ns = prof_.total_cpu_time();
  for (const auto& [label, cct] : prof_.LabeledCcts()) {
    if (label.parts.empty()) {
      continue;
    }
    const context::TransactionContext& ctxt = dep_.synopses().Lookup(label.parts.back());
    if (ctxt.elements().empty() ||
        ctxt.elements().back() !=
            context::Element{context::ElementKind::kStage, write_}) {
      continue;
    }
    bool via_miss = false;
    for (const auto& e : ctxt.elements()) {
      if (e == context::Element{context::ElementKind::kStage, miss_}) {
        via_miss = true;
      }
    }
    ++result.write_stage_context_count;
    if (via_miss) {
      result.write_miss_cpu_ns += cct->TotalCpuTime();
    } else {
      result.write_hit_cpu_ns += cct->TotalCpuTime();
    }
  }
  if (result.total_cpu_ns > 0) {
    const double total = static_cast<double>(result.total_cpu_ns);
    result.write_hit_share = 100.0 * static_cast<double>(result.write_hit_cpu_ns) / total;
    result.write_miss_share = 100.0 * static_cast<double>(result.write_miss_cpu_ns) / total;
  }
  if (out_profile != nullptr) {
    out_profile->functions = dep_.functions();
    profiler::AppendStageCcts(dep_, prof_, out_profile);
  }
  if (daemon_ != nullptr) {
    // Flush the partial publish batch and drain before snapshotting,
    // so the exports reflect every published event regardless of
    // --publish-batch (batch-size invariance).
    daemon_->Shutdown();
    sched_.Run();
    result.live_top_text = daemon_->RenderTop();
    result.live_span_json = daemon_->ExportSpansJson();
  }
  return result;
}

struct SedaShardOutput {
  SedaServerResult result;
  profiler::ShardProfile profile;
};

SedaServerResult RunShardedSedaServer(const SedaServerOptions& options) {
  const size_t shards = static_cast<size_t>(options.shards);
  auto runs = sim::ParallelRunner::Run(
      shards, static_cast<size_t>(options.threads),
      [&options, shards](size_t shard, sim::ShardEnv&) {
        SedaServerOptions shard_options = options;
        shard_options.shards = 1;
        shard_options.threads = 1;
        const int base = options.clients / static_cast<int>(shards);
        const int extra = options.clients % static_cast<int>(shards);
        shard_options.clients = base + (static_cast<int>(shard) < extra ? 1 : 0);
        shard_options.seed = options.seed + shard;
        shard_options.sample_seed =
            options.sample_seed != 0 ? options.sample_seed + shard : 0;
        SedaShardOutput out;
        Haboob haboob(shard_options);
        haboob.SetShard(shard, shards);
        out.result = haboob.Run(&out.profile);
        return out;
      });

  SedaServerResult merged;
  profiler::MergedProfile profile;
  std::ostringstream live_top, live_spans;
  for (size_t shard = 0; shard < runs.size(); ++shard) {
    const SedaServerResult& r = runs[shard].result.result;
    merged.throughput_mbps += r.throughput_mbps;
    merged.requests += r.requests;
    merged.cache_hits += r.cache_hits;
    merged.cache_misses += r.cache_misses;
    // Every shard sees the same hit/miss context pair, so the merged
    // count is the max, not the sum.
    merged.write_stage_context_count =
        std::max(merged.write_stage_context_count, r.write_stage_context_count);
    merged.write_hit_cpu_ns += r.write_hit_cpu_ns;
    merged.write_miss_cpu_ns += r.write_miss_cpu_ns;
    merged.total_cpu_ns += r.total_cpu_ns;
    profile.Fold(runs[shard].result.profile);
    if (options.live) {
      live_top << "=== shard " << shard << " ===\n" << r.live_top_text;
      live_spans << "=== shard " << shard << " ===\n" << r.live_span_json;
    }
    runs[shard].env->FoldMetricsInto(obs::Registry());
  }
  if (merged.total_cpu_ns > 0) {
    const double total = static_cast<double>(merged.total_cpu_ns);
    merged.write_hit_share = 100.0 * static_cast<double>(merged.write_hit_cpu_ns) / total;
    merged.write_miss_share = 100.0 * static_cast<double>(merged.write_miss_cpu_ns) / total;
  }
  merged.profile_text = profile.RenderTransactionalProfile("haboob", 0.001);
  merged.live_top_text = live_top.str();
  merged.live_span_json = live_spans.str();
  return merged;
}

}  // namespace

SedaServerResult RunSedaServer(const SedaServerOptions& options) {
  if (options.shards > 1) {
    return RunShardedSedaServer(options);
  }
  Haboob haboob(options);
  return haboob.Run();
}

}  // namespace whodunit::apps
