// SEDA server: the Haboob stand-in (paper §8.3, §9.3, Figure 10).
//
// A staged event-driven web server on the instrumented SEDA middleware
// (src/seda) with Haboob's stage graph:
//
//   ListenStage -> HttpServer -> ReadStage -> HttpRecv -> CacheStage
//       CacheStage -(hit)-> WriteStage
//       CacheStage -(miss)-> MissStage -> FileIoStage -> WriteStage
//
// The reproduced claim: WriteStage executes under two transaction
// contexts (reached via the hit path and via the miss path), and
// Whodunit separates their CPU shares (the paper measures 37.65% vs
// 46.58% of total CPU).
#ifndef SRC_APPS_SEDASERVER_SEDASERVER_H_
#define SRC_APPS_SEDASERVER_SEDASERVER_H_

#include <cstdint>
#include <string>

#include "src/callpath/profiler_mode.h"
#include "src/sim/time.h"

namespace whodunit::apps {

struct SedaServerOptions {
  callpath::ProfilerMode mode = callpath::ProfilerMode::kWhodunit;
  int clients = 48;
  int workers_per_stage = 2;
  sim::SimTime duration = sim::Seconds(20);
  uint64_t seed = 1;
  // Attach a whodunitd live-observability daemon (src/obs/live): each
  // HTTP request becomes a live transaction with one span per SEDA
  // stage it passes through, re-typed cache_hit/cache_miss at the
  // cache stage.
  bool live = false;
};

struct SedaServerResult {
  double throughput_mbps = 0;
  uint64_t requests = 0;
  uint64_t cache_hits = 0;
  uint64_t cache_misses = 0;

  // Figure 10: WriteStage's CPU share via the two paths.
  size_t write_stage_context_count = 0;
  double write_hit_share = 0;
  double write_miss_share = 0;

  std::string profile_text;

  // Final whodunitd snapshot (empty unless options.live).
  std::string live_top_text;
  std::string live_span_json;
};

SedaServerResult RunSedaServer(const SedaServerOptions& options);

}  // namespace whodunit::apps

#endif  // SRC_APPS_SEDASERVER_SEDASERVER_H_
