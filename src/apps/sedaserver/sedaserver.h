// SEDA server: the Haboob stand-in (paper §8.3, §9.3, Figure 10).
//
// A staged event-driven web server on the instrumented SEDA middleware
// (src/seda) with Haboob's stage graph:
//
//   ListenStage -> HttpServer -> ReadStage -> HttpRecv -> CacheStage
//       CacheStage -(hit)-> WriteStage
//       CacheStage -(miss)-> MissStage -> FileIoStage -> WriteStage
//
// The reproduced claim: WriteStage executes under two transaction
// contexts (reached via the hit path and via the miss path), and
// Whodunit separates their CPU shares (the paper measures 37.65% vs
// 46.58% of total CPU).
#ifndef SRC_APPS_SEDASERVER_SEDASERVER_H_
#define SRC_APPS_SEDASERVER_SEDASERVER_H_

#include <cstdint>
#include <string>

#include "src/callpath/profiler_mode.h"
#include "src/sim/time.h"
#include "src/workload/arrivals.h"

namespace whodunit::apps {

struct SedaServerOptions {
  callpath::ProfilerMode mode = callpath::ProfilerMode::kWhodunit;
  int clients = 48;
  int workers_per_stage = 2;
  sim::SimTime duration = sim::Seconds(20);
  uint64_t seed = 1;

  // ---- Open-loop arrivals (src/workload/arrivals.h) -------------------
  // kind == kClosed reproduces the seed behavior exactly. Open-loop
  // kinds inject requests on an arrival clock via ~1 generator per
  // 10k logical clients; with offered_load_tps == 0 the aggregate rate
  // defaults to one request per client per second.
  workload::ArrivalConfig arrivals;
  // Attach a whodunitd live-observability daemon (src/obs/live): each
  // HTTP request becomes a live transaction with one span per SEDA
  // stage it passes through, re-typed cache_hit/cache_miss at the
  // cache stage.
  bool live = false;
  // Byte budget of the daemon's retention-bounded history store (the
  // --history-bytes knob; 0 disables it).
  size_t live_history_bytes = 1 << 20;
  // Publish batching (the --publish-batch knob): completed
  // transactions flush to the daemon in batches of this size. Final
  // exports are byte-identical for any value ≥ 1.
  size_t live_publish_batch = 64;

  // ---- Production sampling (docs/PRODUCTION.md) -----------------------
  // Fraction of HTTP requests that are profiled (the --sample-rate
  // knob). The decision is drawn once when a request is injected into
  // ListenStage and rides on every queue element it spawns; unsampled
  // requests cross the stage graph with no context-tree work.
  double sample_rate = 1.0;
  // Decision-stream seed; 0 derives it from `seed`.
  uint64_t sample_seed = 0;

  // Shard-parallel execution (src/sim/parallel_runner.h): shards > 1
  // partitions the client population into independent deployments
  // (seed = seed + shard index) merged in shard order. For a fixed
  // `shards`, the merged result is byte-identical for any `threads`.
  int shards = 1;
  int threads = 1;
};

struct SedaServerResult {
  double throughput_mbps = 0;
  uint64_t requests = 0;
  uint64_t cache_hits = 0;
  uint64_t cache_misses = 0;

  // Figure 10: WriteStage's CPU share via the two paths.
  size_t write_stage_context_count = 0;
  double write_hit_share = 0;
  double write_miss_share = 0;
  // Raw accumulators behind the shares; shard merging sums these and
  // recomputes the percentages so merged shares are exact.
  uint64_t write_hit_cpu_ns = 0;
  uint64_t write_miss_cpu_ns = 0;
  uint64_t total_cpu_ns = 0;

  std::string profile_text;

  // Final whodunitd snapshot (empty unless options.live).
  std::string live_top_text;
  std::string live_span_json;
};

// Runs the SEDA server. With options.shards > 1 the run fans out over
// a sim::ParallelRunner: numeric results merge exactly (raw-sum
// fields; write_stage_context_count takes the per-shard max, since
// every shard sees the same hit/miss context pair), profile_text is
// the canonical cross-shard merge (profiler::MergedProfile), and the
// live snapshots are per-shard sections in shard order.
SedaServerResult RunSedaServer(const SedaServerOptions& options);

}  // namespace whodunit::apps

#endif  // SRC_APPS_SEDASERVER_SEDASERVER_H_
