// MiniDB: the database substrate standing in for MySQL 4.0.25.
//
// The reproduced experiments need exactly three things from the
// database (DESIGN.md §2):
//   * a query cost model (scans, sorts, temp tables, point ops) that
//     charges a CPU resource in virtual time;
//   * MyISAM-style table locking vs InnoDB-style row locking — the
//     mechanism behind the paper's Figure 11 optimization (converting
//     the `item` table to InnoDB cuts AdminConfirm's crosstalk);
//   * lock instrumentation so transaction crosstalk (§6) can be
//     attributed to (waiter, holder) transaction-type pairs.
//
// Locking model:
//   kTableLocks (MyISAM): readers take the table lock shared, writers
//     take it exclusive.
//   kRowLocks (InnoDB): readers run lock-free (MVCC consistent reads),
//     writers lock only a row-hash stripe of the table.
#ifndef SRC_DB_DATABASE_H_
#define SRC_DB_DATABASE_H_

#include <cstdint>
#include <memory>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "src/sim/cpu.h"
#include "src/sim/lock.h"
#include "src/sim/scheduler.h"
#include "src/sim/task.h"

namespace whodunit::db {

enum class LockGranularity {
  kTableLocks,  // MyISAM
  kRowLocks,    // InnoDB
};

class Table {
 public:
  Table(sim::Scheduler& sched, std::string name, uint64_t rows, LockGranularity granularity,
        int row_stripes = 16);

  const std::string& name() const { return name_; }
  uint64_t rows() const { return rows_; }
  LockGranularity granularity() const { return granularity_; }
  void set_granularity(LockGranularity g) { granularity_ = g; }

  sim::SimMutex& table_lock() { return *table_lock_; }
  sim::SimMutex& row_lock(uint64_t row) { return *row_stripes_[row % row_stripes_.size()]; }

  void SetLockObserver(sim::LockObserver* observer);

 private:
  std::string name_;
  uint64_t rows_;
  LockGranularity granularity_;
  std::unique_ptr<sim::SimMutex> table_lock_;
  std::vector<std::unique_ptr<sim::SimMutex>> row_stripes_;
};

// One step of a query plan.
struct QueryStep {
  enum class Kind {
    kScan,       // read rows_touched rows of `table` (shared access)
    kSort,       // sort rows_touched records (CPU only, no new locks)
    kTempTable,  // materialize rows_touched rows (CPU only)
    kPointRead,  // read one row (shared access)
    kUpdateRow,  // write one row (exclusive access on table or row)
  };
  Kind kind;
  std::string table;
  uint64_t rows_touched = 1;
  uint64_t row = 0;  // for kUpdateRow / kPointRead
};

struct Query {
  std::string name;
  std::vector<QueryStep> steps;
};

// Cost model constants (per step kind); see workload/calibration.h for
// the calibrated values used in the experiments.
struct CostModel {
  sim::SimTime per_row_scan = sim::Nanos(1000);
  sim::SimTime per_row_sort = sim::Nanos(2800);
  sim::SimTime per_row_temp = sim::Nanos(1700);
  sim::SimTime per_point_read = sim::Micros(170);
  sim::SimTime per_row_update = sim::Micros(450);
  sim::SimTime fixed_per_query = sim::Micros(135);
  // Disk time per scanned row (buffer-pool misses). Charged as I/O
  // wait, not CPU — but it is incurred WHILE HOLDING the query's
  // locks, which is precisely why MyISAM table locks hurt and InnoDB
  // row locks help (Figure 11).
  sim::SimTime per_row_disk = sim::Nanos(600);
};

class Database {
 public:
  // charge_cpu: maps raw CPU cost to the cost actually consumed (the
  // profiler's overhead hook); identity by default.
  using ChargeHook = std::function<sim::SimTime(sim::SimTime)>;
  // Per-step hook: invoked once per plan step with the step and its
  // raw cost; returns the cost to consume. Lets the profiler attribute
  // CPU to per-step call-path frames (row_scan, sort_records, ...) —
  // the paper's §1 example of blaming the database sort routine.
  using StepHook = std::function<sim::SimTime(const QueryStep&, sim::SimTime)>;
  // Invoked with the virtual time the plan spent blocked acquiring its
  // lock set (only when > 0) — the kLockWait attribution feed
  // (docs/OBSERVABILITY.md).
  using LockWaitHook = std::function<void(sim::SimTime)>;

  Database(sim::Scheduler& sched, sim::CpuResource& cpu, CostModel costs);

  Table& CreateTable(std::string_view name, uint64_t rows, LockGranularity granularity);
  Table& table(std::string_view name);
  bool HasTable(std::string_view name) const;

  // Observes every table/row lock (crosstalk recording).
  void SetLockObserver(sim::LockObserver* observer);

  // Executes a query on behalf of transaction type `tag` (the
  // crosstalk tag). Acquires the locks the plan needs, performs the
  // plan's disk I/O, charges the CPU resource (through `charge` if
  // provided), releases, and co_returns the raw (pre-overhead) CPU
  // cost consumed.
  sim::Task<sim::SimTime> Execute(const Query& query, uint64_t tag,
                                  const ChargeHook& charge = nullptr,
                                  const StepHook& step_hook = nullptr,
                                  const LockWaitHook& lock_wait = nullptr);

  // Raw CPU cost of one plan step.
  sim::SimTime StepCost(const QueryStep& step) const;

  // Pure cost estimation (no locks, no CPU): used by tests and for
  // calibration reporting.
  sim::SimTime EstimateCost(const Query& query) const;
  // Disk wait the plan incurs while holding its locks.
  sim::SimTime EstimateDiskTime(const Query& query) const;

  uint64_t queries_executed() const { return queries_executed_; }
  const CostModel& costs() const { return costs_; }

 private:
  sim::Scheduler& sched_;
  sim::CpuResource& cpu_;
  CostModel costs_;
  std::unordered_map<std::string, std::unique_ptr<Table>> tables_;
  uint64_t queries_executed_ = 0;
};

}  // namespace whodunit::db

#endif  // SRC_DB_DATABASE_H_
