#include "src/db/database.h"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <map>
#include <utility>

namespace whodunit::db {

Table::Table(sim::Scheduler& sched, std::string name, uint64_t rows,
             LockGranularity granularity, int row_stripes)
    : name_(std::move(name)), rows_(rows), granularity_(granularity) {
  table_lock_ = std::make_unique<sim::SimMutex>(sched, name_ + ".table_lock");
  row_stripes_.reserve(static_cast<size_t>(row_stripes));
  for (int i = 0; i < row_stripes; ++i) {
    row_stripes_.push_back(
        std::make_unique<sim::SimMutex>(sched, name_ + ".row_stripe_" + std::to_string(i)));
  }
}

void Table::SetLockObserver(sim::LockObserver* observer) {
  table_lock_->set_observer(observer);
  for (auto& stripe : row_stripes_) {
    stripe->set_observer(observer);
  }
}

Database::Database(sim::Scheduler& sched, sim::CpuResource& cpu, CostModel costs)
    : sched_(sched), cpu_(cpu), costs_(costs) {}

Table& Database::CreateTable(std::string_view name, uint64_t rows,
                             LockGranularity granularity) {
  auto table = std::make_unique<Table>(sched_, std::string(name), rows, granularity);
  Table& ref = *table;
  tables_.emplace(std::string(name), std::move(table));
  return ref;
}

Table& Database::table(std::string_view name) {
  auto it = tables_.find(std::string(name));
  assert(it != tables_.end() && "unknown table");
  return *it->second;
}

bool Database::HasTable(std::string_view name) const {
  return tables_.contains(std::string(name));
}

void Database::SetLockObserver(sim::LockObserver* observer) {
  for (auto& [name, table] : tables_) {
    table->SetLockObserver(observer);
  }
}

sim::SimTime Database::StepCost(const QueryStep& step) const {
  const auto rows = static_cast<sim::SimTime>(step.rows_touched);
  switch (step.kind) {
    case QueryStep::Kind::kScan:
      return rows * costs_.per_row_scan;
    case QueryStep::Kind::kSort: {
      // n log2(n) comparisons, per-row-sort cost per comparison unit.
      const double n = static_cast<double>(step.rows_touched);
      const double units = n <= 1 ? 1.0 : n * std::log2(n) / 10.0;
      return static_cast<sim::SimTime>(units * static_cast<double>(costs_.per_row_sort));
    }
    case QueryStep::Kind::kTempTable:
      return rows * costs_.per_row_temp;
    case QueryStep::Kind::kPointRead:
      return costs_.per_point_read;
    case QueryStep::Kind::kUpdateRow:
      return costs_.per_row_update;
  }
  return 0;
}

sim::SimTime Database::EstimateCost(const Query& query) const {
  sim::SimTime cost = costs_.fixed_per_query;
  for (const QueryStep& step : query.steps) {
    cost += StepCost(step);
  }
  return cost;
}

sim::SimTime Database::EstimateDiskTime(const Query& query) const {
  sim::SimTime disk = 0;
  for (const QueryStep& step : query.steps) {
    if (step.kind == QueryStep::Kind::kScan) {
      disk += static_cast<sim::SimTime>(step.rows_touched) * costs_.per_row_disk;
    }
  }
  return disk;
}

sim::Task<sim::SimTime> Database::Execute(const Query& query, uint64_t tag,
                                          const ChargeHook& charge,
                                          const StepHook& step_hook,
                                          const LockWaitHook& lock_wait) {
  ++queries_executed_;

  // Work out the lock set: per table, the strongest access the plan
  // performs. MySQL 4's MyISAM path acquires all table locks up front.
  struct Need {
    bool writes = false;
    std::vector<uint64_t> rows;  // rows updated (row-lock mode)
  };
  std::map<std::string, Need> needs;  // ordered: deadlock-free acquisition
  for (const QueryStep& step : query.steps) {
    if (step.table.empty()) {
      continue;  // pure CPU step (sort / temp table)
    }
    Need& need = needs[step.table];
    if (step.kind == QueryStep::Kind::kUpdateRow) {
      need.writes = true;
      need.rows.push_back(step.row);
    }
  }

  // Acquire. The virtual time this loop blocks is the query's lock
  // wait, reported through `lock_wait` for latency attribution.
  const sim::SimTime acquire_start = sched_.now();
  std::vector<std::pair<sim::SimMutex*, uint64_t>> held;
  for (auto& [table_name, need] : needs) {
    Table& t = table(table_name);
    if (t.granularity() == LockGranularity::kTableLocks) {
      co_await t.table_lock().Acquire(
          tag, need.writes ? sim::LockMode::kExclusive : sim::LockMode::kShared);
      held.emplace_back(&t.table_lock(), tag);
    } else if (need.writes) {
      // InnoDB: readers are MVCC (no lock); writers lock row stripes.
      std::vector<sim::SimMutex*> stripes;
      for (uint64_t row : need.rows) {
        sim::SimMutex* stripe = &t.row_lock(row);
        if (std::find(stripes.begin(), stripes.end(), stripe) == stripes.end()) {
          stripes.push_back(stripe);
        }
      }
      std::sort(stripes.begin(), stripes.end());
      for (sim::SimMutex* stripe : stripes) {
        co_await stripe->Acquire(tag, sim::LockMode::kExclusive);
        held.emplace_back(stripe, tag);
      }
    }
  }

  const sim::SimTime lock_wait_ns = sched_.now() - acquire_start;
  if (lock_wait && lock_wait_ns > 0) {
    lock_wait(lock_wait_ns);
  }

  // Execute: disk waits and the whole plan's CPU happen while holding
  // the locks (the behaviour that creates crosstalk).
  const sim::SimTime disk = EstimateDiskTime(query);
  if (disk > 0) {
    co_await sim::Delay{sched_, disk};
  }
  sim::SimTime raw_cost = costs_.fixed_per_query;
  sim::SimTime charged = charge ? charge(costs_.fixed_per_query) : costs_.fixed_per_query;
  for (const QueryStep& step : query.steps) {
    const sim::SimTime raw_step = StepCost(step);
    raw_cost += raw_step;
    if (step_hook) {
      charged += step_hook(step, raw_step);
    } else if (charge) {
      charged += charge(raw_step);
    } else {
      charged += raw_step;
    }
  }
  co_await cpu_.Consume(charged);

  for (auto it = held.rbegin(); it != held.rend(); ++it) {
    it->first->Release(it->second);
  }
  co_return raw_cost;
}

}  // namespace whodunit::db
