#include "src/vm/isa.h"

#include <sstream>

namespace whodunit::vm {

const char* OpcodeName(Opcode op) {
  switch (op) {
    case Opcode::kMovRR: return "mov_rr";
    case Opcode::kMovRI: return "mov_ri";
    case Opcode::kMovRM: return "mov_rm";
    case Opcode::kMovMR: return "mov_mr";
    case Opcode::kMovMI: return "mov_mi";
    case Opcode::kMovMM: return "mov_mm";
    case Opcode::kAddRR: return "add_rr";
    case Opcode::kAddRI: return "add_ri";
    case Opcode::kSubRI: return "sub_ri";
    case Opcode::kMulRI: return "mul_ri";
    case Opcode::kIncM: return "inc_m";
    case Opcode::kDecM: return "dec_m";
    case Opcode::kAddMI: return "add_mi";
    case Opcode::kCmpRI: return "cmp_ri";
    case Opcode::kCmpRR: return "cmp_rr";
    case Opcode::kCmpMI: return "cmp_mi";
    case Opcode::kJmp: return "jmp";
    case Opcode::kJe: return "je";
    case Opcode::kJne: return "jne";
    case Opcode::kJl: return "jl";
    case Opcode::kJge: return "jge";
    case Opcode::kLock: return "lock";
    case Opcode::kUnlock: return "unlock";
    case Opcode::kNop: return "nop";
    case Opcode::kHalt: return "halt";
  }
  return "?";
}

std::string Disassemble(const Program& program) {
  std::ostringstream out;
  out << program.name << ":\n";
  for (size_t i = 0; i < program.code.size(); ++i) {
    const Instruction& ins = program.code[i];
    out << "  " << i << ": " << OpcodeName(ins.op);
    switch (ins.op) {
      case Opcode::kMovRR:
      case Opcode::kAddRR:
      case Opcode::kCmpRR:
        out << " r" << int{ins.r1} << ", r" << int{ins.r2};
        break;
      case Opcode::kMovRI:
      case Opcode::kAddRI:
      case Opcode::kSubRI:
      case Opcode::kMulRI:
      case Opcode::kCmpRI:
        out << " r" << int{ins.r1} << ", " << ins.imm;
        break;
      case Opcode::kMovRM:
        out << " r" << int{ins.r1} << ", [r" << int{ins.m1.base} << "+" << ins.m1.disp << "]";
        break;
      case Opcode::kMovMR:
        out << " [r" << int{ins.m1.base} << "+" << ins.m1.disp << "], r" << int{ins.r1};
        break;
      case Opcode::kMovMI:
      case Opcode::kAddMI:
      case Opcode::kCmpMI:
        out << " [r" << int{ins.m1.base} << "+" << ins.m1.disp << "], " << ins.imm;
        break;
      case Opcode::kMovMM:
        out << " [r" << int{ins.m1.base} << "+" << ins.m1.disp << "], [r" << int{ins.m2.base}
            << "+" << ins.m2.disp << "]";
        break;
      case Opcode::kIncM:
      case Opcode::kDecM:
        out << " [r" << int{ins.m1.base} << "+" << ins.m1.disp << "]";
        break;
      case Opcode::kJmp:
      case Opcode::kJe:
      case Opcode::kJne:
      case Opcode::kJl:
      case Opcode::kJge:
        out << " -> " << ins.target;
        break;
      case Opcode::kLock:
      case Opcode::kUnlock:
        out << " #" << ins.imm;
        break;
      default:
        break;
    }
    out << "\n";
  }
  return out.str();
}

}  // namespace whodunit::vm
