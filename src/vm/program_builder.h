// Fluent assembler for MiniVM programs.
//
// Guest code in this reproduction (the Apache queue critical sections,
// allocators, counters, sys/queue.h-style lists) is written against
// this builder; see src/shm/guest_code.h for the canonical programs.
#ifndef SRC_VM_PROGRAM_BUILDER_H_
#define SRC_VM_PROGRAM_BUILDER_H_

#include <cstdint>
#include <string>
#include <vector>

#include "src/vm/isa.h"

namespace whodunit::vm {

class ProgramBuilder {
 public:
  explicit ProgramBuilder(std::string name);

  // Register-register / immediate moves and arithmetic.
  ProgramBuilder& MovRR(uint8_t dst, uint8_t src);
  ProgramBuilder& MovRI(uint8_t dst, int64_t imm);
  ProgramBuilder& MovRM(uint8_t dst, uint8_t base, int64_t disp = 0);
  ProgramBuilder& MovMR(uint8_t base, int64_t disp, uint8_t src);
  ProgramBuilder& MovMI(uint8_t base, int64_t disp, int64_t imm);
  ProgramBuilder& MovMM(uint8_t dst_base, int64_t dst_disp, uint8_t src_base, int64_t src_disp);
  ProgramBuilder& AddRR(uint8_t dst, uint8_t src);
  ProgramBuilder& AddRI(uint8_t dst, int64_t imm);
  ProgramBuilder& SubRI(uint8_t dst, int64_t imm);
  ProgramBuilder& MulRI(uint8_t dst, int64_t imm);
  ProgramBuilder& IncM(uint8_t base, int64_t disp = 0);
  ProgramBuilder& DecM(uint8_t base, int64_t disp = 0);
  ProgramBuilder& AddMI(uint8_t base, int64_t disp, int64_t imm);
  ProgramBuilder& CmpRI(uint8_t reg, int64_t imm);
  ProgramBuilder& CmpRR(uint8_t a, uint8_t b);
  ProgramBuilder& CmpMI(uint8_t base, int64_t disp, int64_t imm);
  ProgramBuilder& Nop();
  ProgramBuilder& Halt();

  // Critical-section markers. The id names the lock; the flow detector
  // keys its per-lock state on it.
  ProgramBuilder& Lock(uint64_t lock_id);
  ProgramBuilder& Unlock(uint64_t lock_id);

  // Labels and branches. DefineLabel returns a label handle; Bind
  // attaches it to the next instruction; jumps may reference labels
  // bound later (fixed up in Build).
  int DefineLabel();
  ProgramBuilder& Bind(int label);
  ProgramBuilder& Jmp(int label);
  ProgramBuilder& Je(int label);
  ProgramBuilder& Jne(int label);
  ProgramBuilder& Jl(int label);
  ProgramBuilder& Jge(int label);

  // Finalizes: resolves labels, assigns a fresh program id.
  Program Build();

  size_t size() const { return code_.size(); }

 private:
  ProgramBuilder& Emit(Instruction ins);
  ProgramBuilder& EmitJump(Opcode op, int label);

  std::string name_;
  std::vector<Instruction> code_;
  std::vector<int32_t> label_targets_;          // label -> instruction index (-1 unbound)
  std::vector<std::pair<size_t, int>> fixups_;  // (instruction, label)
};

}  // namespace whodunit::vm

#endif  // SRC_VM_PROGRAM_BUILDER_H_
