// MiniVM instruction set.
//
// The reproduction's stand-in for the QEMU CPU-emulator core the paper
// extracts (§7.2). The flow-detection algorithm of §3 only needs to
// see, for code inside critical sections:
//   * MOV-class operations that move a value location-to-location,
//   * non-MOV writes (immediates, arithmetic results), and
//   * reads (to detect post-critical-section consumption).
// MiniVM is a small register machine (16 general registers, 64-bit
// words, base+displacement addressing) whose interpreter reports
// exactly those events.
#ifndef SRC_VM_ISA_H_
#define SRC_VM_ISA_H_

#include <cstdint>
#include <string>
#include <vector>

namespace whodunit::vm {

inline constexpr int kNumRegs = 16;

// Memory operand: effective address = regs[base] + disp.
struct MemRef {
  uint8_t base = 0;
  int64_t disp = 0;
};

enum class Opcode : uint8_t {
  kMovRR,  // r1 <- r2
  kMovRI,  // r1 <- imm          (value creation, not a data move)
  kMovRM,  // r1 <- [m1]
  kMovMR,  // [m1] <- r1
  kMovMI,  // [m1] <- imm        (value creation, not a data move)
  kMovMM,  // [m1] <- [m2]
  kAddRR,  // r1 += r2
  kAddRI,  // r1 += imm
  kSubRI,  // r1 -= imm
  kMulRI,  // r1 *= imm
  kIncM,   // [m1] += 1
  kDecM,   // [m1] -= 1
  kAddMI,  // [m1] += imm
  kCmpRI,  // flags <- compare(r1, imm)
  kCmpRR,  // flags <- compare(r1, r2)
  kCmpMI,  // flags <- compare([m1], imm)
  kJmp,    // pc <- target
  kJe,     // if equal
  kJne,    // if not equal
  kJl,     // if less (signed)
  kJge,    // if greater-or-equal (signed)
  kLock,   // critical-section begin marker; imm = lock id
  kUnlock, // critical-section end marker; imm = lock id
  kNop,
  kHalt,
};

struct Instruction {
  Opcode op = Opcode::kNop;
  uint8_t r1 = 0;
  uint8_t r2 = 0;
  MemRef m1;
  MemRef m2;
  int64_t imm = 0;
  int32_t target = 0;  // jump destination (instruction index)
};

inline constexpr int kNumOpcodes = static_cast<int>(Opcode::kHalt) + 1;

// Guest-cycle cost model, as constexpr tables indexed by opcode so the
// interpreter's inner loop is a single indexed load (no branchy
// switch). Table order must match the Opcode enum above.
//
// Direct execution ("native" in Table 3): a simple per-class model of
// a 2007-era x86. Lock/Unlock model an uncontended atomic + fence, the
// dominant direct-execution cost of the tiny Apache critical sections
// (Table 3: ~110-130 cycles total, mostly lock/unlock).
inline constexpr int64_t kDirectCycles[kNumOpcodes] = {
    /*kMovRR*/ 1,  /*kMovRI*/ 1,  /*kMovRM*/ 3, /*kMovMR*/ 3, /*kMovMI*/ 3,
    /*kMovMM*/ 5,  /*kAddRR*/ 1,  /*kAddRI*/ 1, /*kSubRI*/ 1, /*kMulRI*/ 3,
    /*kIncM*/ 5,   /*kDecM*/ 5,   /*kAddMI*/ 5, /*kCmpRI*/ 1, /*kCmpRR*/ 1,
    /*kCmpMI*/ 3,  /*kJmp*/ 2,    /*kJe*/ 2,    /*kJne*/ 2,   /*kJl*/ 2,
    /*kJge*/ 2,    /*kLock*/ 45,  /*kUnlock*/ 45, /*kNop*/ 1, /*kHalt*/ 0,
};

// Emulation from the translation cache: dispatch + operand decode +
// hook delivery per instruction; memory operations pay an extra
// soft-TLB-ish cost. The constants put the Table 3 magnitudes (~10^2
// direct, ~10^4 cached emulation, ~10^4-10^5 translate+emulate) in the
// paper's regime; the *ordering* is a property of the design
// (translation >> cached emulation >> direct).
inline constexpr int64_t kEmulateCycles[kNumOpcodes] = {
    /*kMovRR*/ 800,  /*kMovRI*/ 800,  /*kMovRM*/ 1400, /*kMovMR*/ 1400,
    /*kMovMI*/ 1400, /*kMovMM*/ 1400, /*kAddRR*/ 800,  /*kAddRI*/ 800,
    /*kSubRI*/ 800,  /*kMulRI*/ 800,  /*kIncM*/ 1400,  /*kDecM*/ 1400,
    /*kAddMI*/ 1400, /*kCmpRI*/ 800,  /*kCmpRR*/ 800,  /*kCmpMI*/ 1400,
    /*kJmp*/ 800,    /*kJe*/ 800,     /*kJne*/ 800,    /*kJl*/ 800,
    /*kJge*/ 800,    /*kLock*/ 1500,  /*kUnlock*/ 1500, /*kNop*/ 800,
    /*kHalt*/ 80,
};

// True for opcodes whose emulation delivers observer hooks (data
// movement, reads, compares, conditional branches, lock markers).
// Unconditional control flow, nops and halt report nothing, which is
// what lets the interpreter batch their OnRetire bookkeeping.
// Conditional jumps deliver OnBranch — the point where the flags value
// is *consumed*, which effect recorders use to decide whether a
// symbolic compare result must be pinned.
inline constexpr bool kDeliversHooks[kNumOpcodes] = {
    /*kMovRR*/ true,  /*kMovRI*/ true,  /*kMovRM*/ true, /*kMovMR*/ true,
    /*kMovMI*/ true,  /*kMovMM*/ true,  /*kAddRR*/ true, /*kAddRI*/ true,
    /*kSubRI*/ true,  /*kMulRI*/ true,  /*kIncM*/ true,  /*kDecM*/ true,
    /*kAddMI*/ true,  /*kCmpRI*/ true,  /*kCmpRR*/ true, /*kCmpMI*/ true,
    /*kJmp*/ false,   /*kJe*/ true,     /*kJne*/ true,   /*kJl*/ true,
    /*kJge*/ true,    /*kLock*/ true,   /*kUnlock*/ true, /*kNop*/ false,
    /*kHalt*/ false,
};

// Guest-cycle cost of one instruction when run natively.
inline int64_t DirectCycles(Opcode op) {
  return kDirectCycles[static_cast<int>(op)];
}

// Guest-cycle cost of emulating one instruction from the translation
// cache, and of translating it the first time.
inline int64_t EmulateCycles(Opcode op) {
  return kEmulateCycles[static_cast<int>(op)];
}

// Decoding guest code, building the intermediate representation, and
// emitting the translated block: one-time cost, far larger than
// executing the cached translation (QEMU's behaviour in Table 3).
inline int64_t TranslateCycles(Opcode) { return 4200; }

const char* OpcodeName(Opcode op);

struct Program {
  std::string name;
  std::vector<Instruction> code;
  uint64_t id = 0;  // unique per program; translation-cache key
};

std::string Disassemble(const Program& program);

}  // namespace whodunit::vm

#endif  // SRC_VM_ISA_H_
