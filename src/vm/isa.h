// MiniVM instruction set.
//
// The reproduction's stand-in for the QEMU CPU-emulator core the paper
// extracts (§7.2). The flow-detection algorithm of §3 only needs to
// see, for code inside critical sections:
//   * MOV-class operations that move a value location-to-location,
//   * non-MOV writes (immediates, arithmetic results), and
//   * reads (to detect post-critical-section consumption).
// MiniVM is a small register machine (16 general registers, 64-bit
// words, base+displacement addressing) whose interpreter reports
// exactly those events.
#ifndef SRC_VM_ISA_H_
#define SRC_VM_ISA_H_

#include <cstdint>
#include <string>
#include <vector>

namespace whodunit::vm {

inline constexpr int kNumRegs = 16;

// Memory operand: effective address = regs[base] + disp.
struct MemRef {
  uint8_t base = 0;
  int64_t disp = 0;
};

enum class Opcode : uint8_t {
  kMovRR,  // r1 <- r2
  kMovRI,  // r1 <- imm          (value creation, not a data move)
  kMovRM,  // r1 <- [m1]
  kMovMR,  // [m1] <- r1
  kMovMI,  // [m1] <- imm        (value creation, not a data move)
  kMovMM,  // [m1] <- [m2]
  kAddRR,  // r1 += r2
  kAddRI,  // r1 += imm
  kSubRI,  // r1 -= imm
  kMulRI,  // r1 *= imm
  kIncM,   // [m1] += 1
  kDecM,   // [m1] -= 1
  kAddMI,  // [m1] += imm
  kCmpRI,  // flags <- compare(r1, imm)
  kCmpRR,  // flags <- compare(r1, r2)
  kCmpMI,  // flags <- compare([m1], imm)
  kJmp,    // pc <- target
  kJe,     // if equal
  kJne,    // if not equal
  kJl,     // if less (signed)
  kJge,    // if greater-or-equal (signed)
  kLock,   // critical-section begin marker; imm = lock id
  kUnlock, // critical-section end marker; imm = lock id
  kNop,
  kHalt,
};

struct Instruction {
  Opcode op = Opcode::kNop;
  uint8_t r1 = 0;
  uint8_t r2 = 0;
  MemRef m1;
  MemRef m2;
  int64_t imm = 0;
  int32_t target = 0;  // jump destination (instruction index)
};

// Guest-cycle cost of one instruction when run natively ("direct
// execution" in Table 3): a simple per-class model of a 2007-era x86.
int64_t DirectCycles(Opcode op);

// Guest-cycle cost of emulating one instruction from the translation
// cache, and of translating it the first time. The constants are
// chosen so the Table 3 magnitudes (~10^2 direct, ~10^4 cached
// emulation, ~10^4-10^5 translate+emulate for the Apache critical
// sections) come out in the paper's regime; the *ordering* is a
// property of the design (translation >> cached emulation >> direct).
int64_t EmulateCycles(Opcode op);
int64_t TranslateCycles(Opcode op);

const char* OpcodeName(Opcode op);

struct Program {
  std::string name;
  std::vector<Instruction> code;
  uint64_t id = 0;  // unique per program; translation-cache key
};

std::string Disassemble(const Program& program);

}  // namespace whodunit::vm

#endif  // SRC_VM_ISA_H_
