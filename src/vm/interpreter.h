// MiniVM interpreter with a translation cache and instruction hooks.
//
// Mirrors how Whodunit uses its QEMU-derived emulator (paper §7.2):
// critical-section code is *emulated*, with every data movement
// reported to an observer (the flow detector); everything else runs
// "directly". Translation happens once per program and is cached —
// Table 3's three cost regimes (direct execution, translation +
// emulation, emulation from cache) fall directly out of this design.
#ifndef SRC_VM_INTERPRETER_H_
#define SRC_VM_INTERPRETER_H_

#include <array>
#include <cstdint>
#include <unordered_map>
#include <unordered_set>

#include "src/obs/metrics.h"
#include "src/vm/isa.h"
#include "src/vm/loc.h"
#include "src/vm/memory.h"

namespace whodunit::vm {

// Per-thread register file and flags.
struct CpuState {
  std::array<uint64_t, kNumRegs> regs{};
  int cmp = 0;  // sign of (lhs - rhs) from the last compare
};

// Receives the instruction-level events the flow-detection algorithm
// consumes. Default implementations ignore everything.
class InstructionObserver {
 public:
  virtual ~InstructionObserver() = default;

  // A MOV-class data movement dst <- src.
  virtual void OnMov(ThreadId /*t*/, const Loc& /*dst*/, const Loc& /*src*/) {}
  // A non-MOV write: immediate store or arithmetic result.
  virtual void OnWriteValue(ThreadId /*t*/, const Loc& /*dst*/) {}
  // Any operand read (includes MOV sources and address bases).
  virtual void OnRead(ThreadId /*t*/, const Loc& /*src*/) {}
  virtual void OnLock(ThreadId /*t*/, uint64_t /*lock_id*/) {}
  virtual void OnUnlock(ThreadId /*t*/, uint64_t /*lock_id*/) {}
  // Fired after each instruction completes.
  virtual void OnRetire(ThreadId /*t*/) {}
};

struct ExecResult {
  int64_t instructions = 0;
  // Guest cycles actually paid in the chosen mode. In kEmulate this
  // includes the one-time translation cost on a cache miss.
  int64_t guest_cycles = 0;
  // What the same run would have cost executed directly (for overhead
  // reporting).
  int64_t direct_cycles = 0;
  bool translated = false;  // true if this run paid translation
};

class Interpreter {
 public:
  enum class Mode {
    kDirect,   // native execution: no hooks, direct cost
    kEmulate,  // emulated execution: hooks delivered, emulation cost
  };

  // Runs `program` to completion (Halt or falling off the end) on the
  // given thread's register state over `mem`. Aborts after max_steps
  // instructions as a runaway-loop guard.
  ExecResult Execute(const Program& program, ThreadId thread, CpuState& cpu, Memory& mem,
                     InstructionObserver* observer = nullptr, Mode mode = Mode::kEmulate,
                     int64_t max_steps = 1 << 20);

  // Drops all cached translations (as if the code cache were flushed).
  void FlushTranslationCache() { translated_.clear(); }
  bool IsTranslated(uint64_t program_id) const { return translated_.contains(program_id); }
  size_t translation_cache_size() const { return translated_.size(); }

  uint64_t translations_performed() const { return translations_performed_; }

 private:
  std::unordered_set<uint64_t> translated_;
  uint64_t translations_performed_ = 0;

  // Self-observability handles, resolved once (see docs/METRICS.md).
  obs::Counter* obs_translations_ = &obs::Registry().GetCounter("vm.translations");
  obs::Counter* obs_cache_hits_ = &obs::Registry().GetCounter("vm.translation_cache_hits");
  obs::Counter* obs_emulated_ = &obs::Registry().GetCounter("vm.instructions_emulated");
  obs::Counter* obs_direct_ = &obs::Registry().GetCounter("vm.instructions_direct");
};

}  // namespace whodunit::vm

#endif  // SRC_VM_INTERPRETER_H_
