// MiniVM interpreter with a translation cache and instruction hooks.
//
// Mirrors how Whodunit uses its QEMU-derived emulator (paper §7.2):
// critical-section code is *emulated*, with every data movement
// reported to an observer (the flow detector); everything else runs
// "directly". Translation happens once per program and is cached —
// Table 3's three cost regimes (direct execution, translation +
// emulation, emulation from cache) fall directly out of this design.
//
// The execute loop is a template over the observer's concrete type
// (ExecuteWith). Instantiating it on a final observer class lets the
// compiler resolve every hook call statically — no vtable dispatch in
// the per-instruction path — and instantiating it on the NoObserver
// tag compiles the hook code out entirely (the direct-execution
// regime). The virtual-dispatch path survives as the
// ExecuteWith<InstructionObserver> instantiation behind Execute(), for
// callers that only hold the abstract interface. Retire bookkeeping is
// batched: opcodes that deliver no hooks (jumps, nop, halt — see
// kDeliversHooks) accumulate a pending count that is flushed as one
// OnRetireBatch call before the next hook-delivering instruction.
#ifndef SRC_VM_INTERPRETER_H_
#define SRC_VM_INTERPRETER_H_

#include <array>
#include <cstdint>
#include <type_traits>
#include <vector>

#include "src/obs/metrics.h"
#include "src/util/robin_hood.h"
#include "src/vm/isa.h"
#include "src/vm/loc.h"
#include "src/vm/memory.h"

namespace whodunit::vm {

// Per-thread register file and flags.
struct CpuState {
  std::array<uint64_t, kNumRegs> regs{};
  int cmp = 0;  // sign of (lhs - rhs) from the last compare
};

// Receives the instruction-level events the flow-detection algorithm
// consumes. Default implementations ignore everything.
namespace internal {
inline int Sign(int64_t v) { return v < 0 ? -1 : (v > 0 ? 1 : 0); }
}  // namespace internal

class InstructionObserver {
 public:
  virtual ~InstructionObserver() = default;

  // A MOV-class data movement dst <- src.
  virtual void OnMov(ThreadId /*t*/, const Loc& /*dst*/, const Loc& /*src*/) {}
  // A non-MOV write: immediate store or arithmetic result.
  virtual void OnWriteValue(ThreadId /*t*/, const Loc& /*dst*/) {}
  // A write whose value is the source location's value plus a constant
  // (wrapping): INC/DEC/ADD-immediate. For flow purposes this is a
  // non-MOV write, so the default forwards to OnWriteValue and every
  // existing observer sees unchanged behavior; the section-summary
  // effect recorder overrides it to memoize the delta symbolically
  // (a shared counter's increment replays without re-emulation even
  // though the counter's value differs every execution).
  virtual void OnAffineWrite(ThreadId t, const Loc& dst, const Loc& /*src*/,
                             uint64_t /*delta*/) {
    OnWriteValue(t, dst);
  }
  // Any operand read (includes MOV sources and address bases).
  virtual void OnRead(ThreadId /*t*/, const Loc& /*src*/) {}
  // A compare against an immediate: cmp <- sign(value(lhs) - imm).
  // Delivered after the operand's OnRead, before the flags update.
  // Effect recorders use it to keep the flags *symbolic* in lhs — a
  // table read whose only post-section use is `CmpRI(row, 0)` replays
  // for any row value instead of pinning the payload.
  virtual void OnCompare(ThreadId /*t*/, const Loc& /*lhs*/, int64_t /*imm*/) {}
  // A compare of two locations: cmp <- sign(value(lhs) - value(rhs)).
  virtual void OnCompareLocs(ThreadId /*t*/, const Loc& /*lhs*/, const Loc& /*rhs*/) {}
  // A conditional jump consulted the flags (taken or not). This is
  // where a symbolic compare result must collapse to a concrete pin:
  // the recorded instruction trace embeds the branch direction.
  virtual void OnBranch(ThreadId /*t*/) {}
  virtual void OnLock(ThreadId /*t*/, uint64_t /*lock_id*/) {}
  virtual void OnUnlock(ThreadId /*t*/, uint64_t /*lock_id*/) {}
  // Fired after each instruction completes.
  virtual void OnRetire(ThreadId /*t*/) {}
  // `n` consecutive instructions retired with no intervening hook
  // deliveries. The interpreter batches hookless stretches (control
  // flow, nops) into one call; the default unrolls to OnRetire so
  // observers that count retires individually keep exact semantics.
  virtual void OnRetireBatch(ThreadId t, int64_t n) {
    for (int64_t i = 0; i < n; ++i) {
      OnRetire(t);
    }
  }
};

struct ExecResult {
  int64_t instructions = 0;
  // Guest cycles actually paid in the chosen mode. In kEmulate this
  // includes the one-time translation cost on a cache miss.
  int64_t guest_cycles = 0;
  // What the same run would have cost executed directly (for overhead
  // reporting).
  int64_t direct_cycles = 0;
  bool translated = false;  // true if this run paid translation
};

class Interpreter {
 public:
  enum class Mode {
    kDirect,   // native execution: no hooks, direct cost
    kEmulate,  // emulated execution: hooks delivered, emulation cost
  };

  // Tag type selecting the hookless instantiation of ExecuteWith: all
  // observer code compiles out. Pass observer = nullptr with it.
  struct NoObserver {
    void OnMov(ThreadId, const Loc&, const Loc&) {}
    void OnWriteValue(ThreadId, const Loc&) {}
    void OnAffineWrite(ThreadId, const Loc&, const Loc&, uint64_t) {}
    void OnRead(ThreadId, const Loc&) {}
    void OnCompare(ThreadId, const Loc&, int64_t) {}
    void OnCompareLocs(ThreadId, const Loc&, const Loc&) {}
    void OnBranch(ThreadId) {}
    void OnLock(ThreadId, uint64_t) {}
    void OnUnlock(ThreadId, uint64_t) {}
    void OnRetireBatch(ThreadId, int64_t) {}
  };

  // Runs `program` to completion (Halt or falling off the end) on the
  // given thread's register state over `mem`. Aborts after max_steps
  // instructions as a runaway-loop guard. Dispatches to the hookless
  // instantiation when no hooks can fire, the virtual one otherwise.
  ExecResult Execute(const Program& program, ThreadId thread, CpuState& cpu, Memory& mem,
                     InstructionObserver* observer = nullptr, Mode mode = Mode::kEmulate,
                     int64_t max_steps = 1 << 20) {
    if (observer == nullptr || mode == Mode::kDirect) {
      return ExecuteWith<NoObserver>(program, thread, cpu, mem, nullptr, mode, max_steps);
    }
    return ExecuteWith(program, thread, cpu, mem, observer, mode, max_steps);
  }

  // The execute loop, statically bound to the observer's concrete
  // type. Calling this with a `final` observer class (e.g.
  // shm::FlowDetector) devirtualizes every hook call.
  template <typename Obs>
  ExecResult ExecuteWith(const Program& program, ThreadId thread, CpuState& cpu, Memory& mem,
                         Obs* observer, Mode mode = Mode::kEmulate,
                         int64_t max_steps = 1 << 20);

  // Drops all cached translations (as if the code cache were flushed).
  void FlushTranslationCache() { translated_.Clear(); }
  bool IsTranslated(uint64_t program_id) const { return translated_.Contains(program_id); }
  size_t translation_cache_size() const { return translated_.size(); }

  uint64_t translations_performed() const { return translations_performed_; }

  ~Interpreter() { FlushObsTallies(); }

  // Publishes batched per-Execute counts (translation-cache hits,
  // instructions emulated/direct) to the metrics registry. Called
  // automatically every kObsFlushExecutes executions and at
  // destruction; explicit calls are only needed when exact counts must
  // be visible mid-lifetime.
  void FlushObsTallies() {
    if (tally_cache_hits_ != 0) {
      obs_cache_hits_->Add(tally_cache_hits_);
      tally_cache_hits_ = 0;
    }
    if (tally_emulated_ != 0) {
      obs_emulated_->Add(tally_emulated_);
      tally_emulated_ = 0;
    }
    if (tally_direct_ != 0) {
      obs_direct_->Add(tally_direct_);
      tally_direct_ = 0;
    }
    obs_flush_countdown_ = kObsFlushExecutes;
  }

 private:
  // Executions between metric publications. Per-Execute sharded-atomic
  // updates were a measurable fraction of the short-critical-section
  // emulation cost; counts are staged in plain members instead and
  // published in batches (bounded staleness, exact totals).
  static constexpr uint32_t kObsFlushExecutes = 256;

  // Used as a set: presence of the program id means "translated".
  util::RobinHoodMap<uint64_t, uint8_t> translated_;
  uint64_t translations_performed_ = 0;
  uint64_t tally_cache_hits_ = 0;
  uint64_t tally_emulated_ = 0;
  uint64_t tally_direct_ = 0;
  uint32_t obs_flush_countdown_ = kObsFlushExecutes;

  // Self-observability handles, resolved once (see docs/METRICS.md).
  obs::Counter* obs_translations_ = &obs::Registry().GetCounter("vm.translations");
  obs::Counter* obs_cache_hits_ = &obs::Registry().GetCounter("vm.translation_cache_hits");
  obs::Counter* obs_emulated_ = &obs::Registry().GetCounter("vm.instructions_emulated");
  obs::Counter* obs_direct_ = &obs::Registry().GetCounter("vm.instructions_direct");
};

template <typename Obs>
ExecResult Interpreter::ExecuteWith(const Program& program, ThreadId thread, CpuState& cpu,
                                    Memory& mem, Obs* observer, Mode mode,
                                    int64_t max_steps) {
  constexpr bool kObserved = !std::is_same_v<Obs, NoObserver>;
  ExecResult result;

  const bool emulate = (mode == Mode::kEmulate);
  if (emulate) {
    // One translation-cache probe per Execute, hoisted out of the
    // instruction loop (translation state cannot change mid-run).
    if (translated_.Contains(program.id)) {
      ++tally_cache_hits_;
    } else {
      // Translation pass: in the real system this decodes guest code
      // and emits a translated block; here the per-instruction cost
      // model stands in for that work. Paid once per program until the
      // cache is flushed.
      for (const Instruction& ins : program.code) {
        result.guest_cycles += TranslateCycles(ins.op);
      }
      translated_.Upsert(program.id, 1);
      ++translations_performed_;
      obs_translations_->Add();
      result.translated = true;
    }
  }

  // With Obs = NoObserver this is statically false and every hook
  // block below is dead code.
  const bool hooks = kObserved && emulate && observer != nullptr;
  // Cycle-cost table for the chosen mode, selected once.
  const int64_t* const cost = emulate ? kEmulateCycles : kDirectCycles;

  // Retires accumulated since the last hook delivery; flushed as one
  // batch before the next hook-delivering instruction so the observer
  // sees retire counts at exactly the points where they can matter.
  int64_t pending_retires = 0;
  const auto flush_retires = [&] {
    if (pending_retires > 0) {
      observer->OnRetireBatch(thread, pending_retires);
      pending_retires = 0;
    }
  };

  const auto ea = [&cpu](const MemRef& m) -> Addr {
    return cpu.regs[m.base] + static_cast<uint64_t>(m.disp);
  };
  const auto read_base = [&](const MemRef& m) {
    if (hooks) {
      observer->OnRead(thread, Loc::Reg(thread, m.base));
    }
  };

  int64_t pc = 0;
  const auto code_size = static_cast<int64_t>(program.code.size());
  while (pc >= 0 && pc < code_size) {
    if (result.instructions >= max_steps) {
      // Runaway-loop guard: bounded termination is the contract
      // (tests/callpath_paths_test.cc), not a can't-happen condition.
      break;
    }
    const Instruction& ins = program.code[pc];
    ++result.instructions;
    const int oi = static_cast<int>(ins.op);
    result.direct_cycles += kDirectCycles[oi];
    result.guest_cycles += cost[oi];
    int64_t next_pc = pc + 1;

    if (hooks && kDeliversHooks[oi]) {
      flush_retires();
    }

    switch (ins.op) {
      case Opcode::kMovRR:
        if (hooks) {
          observer->OnRead(thread, Loc::Reg(thread, ins.r2));
          observer->OnMov(thread, Loc::Reg(thread, ins.r1), Loc::Reg(thread, ins.r2));
        }
        cpu.regs[ins.r1] = cpu.regs[ins.r2];
        break;
      case Opcode::kMovRI:
        if (hooks) {
          observer->OnWriteValue(thread, Loc::Reg(thread, ins.r1));
        }
        cpu.regs[ins.r1] = static_cast<uint64_t>(ins.imm);
        break;
      case Opcode::kMovRM: {
        const Addr a = ea(ins.m1);
        if (hooks) {
          read_base(ins.m1);
          observer->OnRead(thread, Loc::Mem(a));
          observer->OnMov(thread, Loc::Reg(thread, ins.r1), Loc::Mem(a));
        }
        cpu.regs[ins.r1] = mem.Read(a);
        break;
      }
      case Opcode::kMovMR: {
        const Addr a = ea(ins.m1);
        if (hooks) {
          read_base(ins.m1);
          observer->OnRead(thread, Loc::Reg(thread, ins.r1));
          observer->OnMov(thread, Loc::Mem(a), Loc::Reg(thread, ins.r1));
        }
        mem.Write(a, cpu.regs[ins.r1]);
        break;
      }
      case Opcode::kMovMI: {
        const Addr a = ea(ins.m1);
        if (hooks) {
          read_base(ins.m1);
          observer->OnWriteValue(thread, Loc::Mem(a));
        }
        mem.Write(a, static_cast<uint64_t>(ins.imm));
        break;
      }
      case Opcode::kMovMM: {
        const Addr src = ea(ins.m2);
        const Addr dst = ea(ins.m1);
        if (hooks) {
          read_base(ins.m2);
          read_base(ins.m1);
          observer->OnRead(thread, Loc::Mem(src));
          observer->OnMov(thread, Loc::Mem(dst), Loc::Mem(src));
        }
        mem.Write(dst, mem.Read(src));
        break;
      }
      case Opcode::kAddRR:
        if (hooks) {
          observer->OnRead(thread, Loc::Reg(thread, ins.r1));
          observer->OnRead(thread, Loc::Reg(thread, ins.r2));
          observer->OnWriteValue(thread, Loc::Reg(thread, ins.r1));
        }
        cpu.regs[ins.r1] += cpu.regs[ins.r2];
        break;
      case Opcode::kAddRI:
      case Opcode::kSubRI: {
        // dst = dst + delta with a constant delta: delivered as an
        // affine write so effect recorders can keep the chain symbolic.
        const uint64_t delta = ins.op == Opcode::kAddRI
                                   ? static_cast<uint64_t>(ins.imm)
                                   : 0 - static_cast<uint64_t>(ins.imm);
        if (hooks) {
          observer->OnRead(thread, Loc::Reg(thread, ins.r1));
          observer->OnAffineWrite(thread, Loc::Reg(thread, ins.r1),
                                  Loc::Reg(thread, ins.r1), delta);
        }
        cpu.regs[ins.r1] += delta;
        break;
      }
      case Opcode::kMulRI: {
        if (hooks) {
          observer->OnRead(thread, Loc::Reg(thread, ins.r1));
          observer->OnWriteValue(thread, Loc::Reg(thread, ins.r1));
        }
        cpu.regs[ins.r1] *= static_cast<uint64_t>(ins.imm);
        break;
      }
      case Opcode::kIncM:
      case Opcode::kDecM:
      case Opcode::kAddMI: {
        const Addr a = ea(ins.m1);
        const uint64_t delta = ins.op == Opcode::kIncM    ? uint64_t{1}
                               : ins.op == Opcode::kDecM ? ~uint64_t{0}
                                                         : static_cast<uint64_t>(ins.imm);
        if (hooks) {
          read_base(ins.m1);
          observer->OnRead(thread, Loc::Mem(a));
          observer->OnAffineWrite(thread, Loc::Mem(a), Loc::Mem(a), delta);
        }
        mem.Write(a, mem.Read(a) + delta);
        break;
      }
      case Opcode::kCmpRI:
        if (hooks) {
          observer->OnRead(thread, Loc::Reg(thread, ins.r1));
          observer->OnCompare(thread, Loc::Reg(thread, ins.r1), ins.imm);
        }
        cpu.cmp = internal::Sign(static_cast<int64_t>(cpu.regs[ins.r1]) - ins.imm);
        break;
      case Opcode::kCmpRR:
        if (hooks) {
          observer->OnRead(thread, Loc::Reg(thread, ins.r1));
          observer->OnRead(thread, Loc::Reg(thread, ins.r2));
          observer->OnCompareLocs(thread, Loc::Reg(thread, ins.r1),
                                  Loc::Reg(thread, ins.r2));
        }
        cpu.cmp = internal::Sign(static_cast<int64_t>(cpu.regs[ins.r1]) -
                                 static_cast<int64_t>(cpu.regs[ins.r2]));
        break;
      case Opcode::kCmpMI: {
        const Addr a = ea(ins.m1);
        if (hooks) {
          read_base(ins.m1);
          observer->OnRead(thread, Loc::Mem(a));
          observer->OnCompare(thread, Loc::Mem(a), ins.imm);
        }
        cpu.cmp = internal::Sign(static_cast<int64_t>(mem.Read(a)) - ins.imm);
        break;
      }
      case Opcode::kJmp:
        next_pc = ins.target;
        break;
      case Opcode::kJe:
        if (hooks) {
          observer->OnBranch(thread);
        }
        if (cpu.cmp == 0) {
          next_pc = ins.target;
        }
        break;
      case Opcode::kJne:
        if (hooks) {
          observer->OnBranch(thread);
        }
        if (cpu.cmp != 0) {
          next_pc = ins.target;
        }
        break;
      case Opcode::kJl:
        if (hooks) {
          observer->OnBranch(thread);
        }
        if (cpu.cmp < 0) {
          next_pc = ins.target;
        }
        break;
      case Opcode::kJge:
        if (hooks) {
          observer->OnBranch(thread);
        }
        if (cpu.cmp >= 0) {
          next_pc = ins.target;
        }
        break;
      case Opcode::kLock:
        if (hooks) {
          observer->OnLock(thread, static_cast<uint64_t>(ins.imm));
        }
        break;
      case Opcode::kUnlock:
        if (hooks) {
          observer->OnUnlock(thread, static_cast<uint64_t>(ins.imm));
        }
        break;
      case Opcode::kNop:
        break;
      case Opcode::kHalt:
        next_pc = code_size;
        break;
    }

    if (hooks) {
      ++pending_retires;
    }
    pc = next_pc;
  }
  if (hooks) {
    flush_retires();
  }

  // Aggregated once per Execute so the per-instruction loop stays
  // free of instrumentation; staged in plain members and published in
  // batches so short sections don't pay a sharded-atomic update each.
  (emulate ? tally_emulated_ : tally_direct_) += static_cast<uint64_t>(result.instructions);
  if (--obs_flush_countdown_ == 0) {
    FlushObsTallies();
  }
  return result;
}

// ---------------------------------------------------------------------------
// Architectural section effects (consumed by shm::SectionCache).
//
// A critical section's net effect on registers/memory/flags, recorded
// once during a cold emulated run and replayed on later executions.
// Values that only move (MOV chains) or shift by a constant (INC/DEC/
// ADD-immediate chains) stay *symbolic* — the replay re-reads them
// from the live pre-state — so a section hits the cache even when its
// payload differs run to run. Only values that feed addressing,
// compares, or general arithmetic are pinned concretely (`required`)
// and validated before a replay is allowed.

// One location the section read before writing it.
struct ArchInput {
  Loc loc;
  uint64_t value = 0;  // value observed on the cold run
  bool required = false;  // replay only valid if the live value matches
};

// One location the section left modified, collapsed to its final value.
struct ArchWrite {
  enum class Kind : uint8_t {
    kConcrete,  // final value is a constant of the recorded run
    kCopy,      // final value = live value of inputs[input]
    kAffine,    // final value = live value of inputs[input] + delta
  };
  Kind kind = Kind::kConcrete;
  Loc loc;
  int32_t input = -1;  // source input index for kCopy/kAffine
  uint64_t value = 0;  // kConcrete payload
  uint64_t delta = 0;  // kAffine payload (wrapping)
};

// Caps recordings; sections touching more state than this are declared
// uncacheable rather than truncated. Replay scratch buffers are sized
// to this, so inputs.size() <= kMaxArchEntries always holds.
inline constexpr size_t kMaxArchEntries = 256;

struct ArchEffects {
  // Provenance of the flags value the section leaves behind.
  //   kConcrete — replay writes final_cmp (a constant of the recorded
  //               run; deterministic given the pinned inputs).
  //   kInitial  — the section never wrote the flags; replay leaves the
  //               live cpu.cmp untouched.
  //   kSym      — the last compare's operand stayed symbolic; replay
  //               recomputes sign(live(inputs[final_cmp_input]) +
  //               final_cmp_delta - final_cmp_imm). This is what lets a
  //               table read whose only post-section use is
  //               `CmpRI(row, 0)` hit the cache for any row payload.
  enum class CmpKind : uint8_t { kConcrete, kInitial, kSym };

  std::vector<ArchInput> inputs;
  std::vector<ArchWrite> writes;
  int initial_cmp = 0;  // cpu.cmp fingerprint of the recorded run
  int final_cmp = 0;
  CmpKind final_cmp_kind = CmpKind::kConcrete;
  int32_t final_cmp_input = -1;   // kSym: input index of the operand
  uint64_t final_cmp_delta = 0;   // kSym: affine offset from that input
  int64_t final_cmp_imm = 0;      // kSym: compare immediate
  // True when a conditional branch consulted the flags before any
  // compare in the section: the recorded trace embeds that direction,
  // so replay must validate the live cpu.cmp against initial_cmp.
  bool pin_initial_cmp = false;
  bool cacheable = true;  // false: recording overflowed, do not summarize
};

// Observer that wraps an optional inner observer (forwarding every
// hook unchanged, statically bound when Inner is final) while building
// the ArchEffects of one section run. Duck-typed for ExecuteWith; not
// an InstructionObserver so nothing here dispatches virtually.
//
// Classification protocol: every operand read lands in a pending list;
// the instruction's classifying hook (OnMov / OnAffineWrite) claims
// its data source as symbolic and promotes the leftovers (address
// bases) to required. OnWriteValue promotes everything pending
// (arithmetic operands), and instruction boundaries (OnRetireBatch,
// lock edges, Finish) sweep up reads with no classifying hook at all
// (compares). Hooks fire before the architectural write, so a value
// captured at first read is the true pre-section value.
template <typename Inner>
class EffectRecorder {
 public:
  static constexpr size_t kMaxEntries = kMaxArchEntries;

  EffectRecorder(ThreadId t, const CpuState& cpu, const Memory& mem, Inner* inner) {
    Reset(t, cpu, mem, inner);
  }

  // Pooling support: a default-constructed recorder is inert until
  // Reset. Reset clears field-by-field (not `fx_ = {}`), so pending_/
  // written_ keep their capacity across recordings — a cold record
  // then costs no allocations.
  EffectRecorder() = default;

  void Reset(ThreadId t, const CpuState& cpu, const Memory& mem, Inner* inner) {
    thread_ = t;
    cpu_ = &cpu;
    mem_ = &mem;
    inner_ = inner;
    fx_.inputs.clear();
    fx_.writes.clear();
    fx_.initial_cmp = cpu.cmp;
    fx_.final_cmp = 0;
    fx_.final_cmp_kind = ArchEffects::CmpKind::kConcrete;
    fx_.final_cmp_input = -1;
    fx_.final_cmp_delta = 0;
    fx_.final_cmp_imm = 0;
    fx_.pin_initial_cmp = false;
    fx_.cacheable = true;
    pending_.clear();
    written_.clear();
    cmp_state_ = CmpState::kInitial;
    cmp_input_ = -1;
    cmp_delta_ = 0;
    cmp_imm_ = 0;
    initial_cmp_read_ = false;
  }

  void OnMov(ThreadId t, const Loc& dst, const Loc& src) {
    if (inner_ != nullptr) {
      inner_->OnMov(t, dst, src);
    }
    const Taint st = SourceTaint(src, /*affine_delta=*/0, /*affine=*/false);
    ClaimPending(src);
    PromotePending();
    SetTaint(dst, st);
  }

  void OnWriteValue(ThreadId t, const Loc& dst) {
    if (inner_ != nullptr) {
      inner_->OnWriteValue(t, dst);
    }
    PromotePending();  // all pending reads fed real arithmetic
    SetTaint(dst, Taint{ArchWrite::Kind::kConcrete, -1, 0});
  }

  void OnAffineWrite(ThreadId t, const Loc& dst, const Loc& src, uint64_t delta) {
    if (inner_ != nullptr) {
      inner_->OnAffineWrite(t, dst, src, delta);
    }
    const Taint st = SourceTaint(src, delta, /*affine=*/true);
    ClaimPending(src);
    PromotePending();
    SetTaint(dst, st);
  }

  void OnRead(ThreadId t, const Loc& src) {
    if (inner_ != nullptr) {
      inner_->OnRead(t, src);
    }
    pending_.push_back(src);
  }

  // Compare against an immediate: the operand's provenance becomes the
  // flags' provenance. A symbolic operand (kCopy/kAffine of an input)
  // keeps the flags symbolic — no pin — unless a later OnBranch
  // consumes them.
  void OnCompare(ThreadId t, const Loc& lhs, int64_t imm) {
    if (inner_ != nullptr) {
      inner_->OnCompare(t, lhs, imm);
    }
    const Taint st = SourceTaint(lhs, /*affine_delta=*/0, /*affine=*/false);
    ClaimPending(lhs);
    PromotePending();
    if (st.kind == ArchWrite::Kind::kConcrete || st.input < 0) {
      // Deterministic given already-pinned inputs.
      cmp_state_ = CmpState::kConcrete;
    } else {
      cmp_state_ = CmpState::kSym;
      cmp_input_ = st.input;
      cmp_delta_ = st.kind == ArchWrite::Kind::kAffine ? st.delta : 0;
      cmp_imm_ = imm;
    }
  }

  // Two-location compares pin both operands (the difference of two
  // live values has no single-input symbolic form).
  void OnCompareLocs(ThreadId t, const Loc& lhs, const Loc& rhs) {
    if (inner_ != nullptr) {
      inner_->OnCompareLocs(t, lhs, rhs);
    }
    ClaimPending(lhs);
    ClaimPending(rhs);
    RequireLoc(lhs);
    RequireLoc(rhs);
    PromotePending();
    cmp_state_ = CmpState::kConcrete;
  }

  // A conditional branch consumed the flags: the recorded trace embeds
  // its direction, so a symbolic compare result collapses to a pin of
  // the operand's source *input index* (not its current loc — the loc
  // may have been overwritten since the compare).
  void OnBranch(ThreadId t) {
    if (inner_ != nullptr) {
      inner_->OnBranch(t);
    }
    if (cmp_state_ == CmpState::kSym) {
      fx_.inputs[static_cast<size_t>(cmp_input_)].required = true;
      cmp_state_ = CmpState::kConcrete;
    } else if (cmp_state_ == CmpState::kInitial) {
      initial_cmp_read_ = true;
    }
  }

  void OnLock(ThreadId t, uint64_t lock_id) {
    if (inner_ != nullptr) {
      inner_->OnLock(t, lock_id);
    }
    PromotePending();
  }

  void OnUnlock(ThreadId t, uint64_t lock_id) {
    if (inner_ != nullptr) {
      inner_->OnUnlock(t, lock_id);
    }
    PromotePending();
  }

  void OnRetireBatch(ThreadId t, int64_t n) {
    if (inner_ != nullptr) {
      inner_->OnRetireBatch(t, n);
    }
    PromotePending();
  }

  // Collapses the recording into replayable effects. Call after the
  // section's ExecuteWith returns (cpu/mem then hold the final state).
  ArchEffects Finish() {
    PromotePending();
    fx_.final_cmp = cpu_->cmp;
    fx_.pin_initial_cmp = initial_cmp_read_;
    switch (cmp_state_) {
      case CmpState::kInitial:
        fx_.final_cmp_kind = ArchEffects::CmpKind::kInitial;
        break;
      case CmpState::kSym:
        fx_.final_cmp_kind = ArchEffects::CmpKind::kSym;
        fx_.final_cmp_input = cmp_input_;
        fx_.final_cmp_delta = cmp_delta_;
        fx_.final_cmp_imm = cmp_imm_;
        break;
      case CmpState::kConcrete:
        fx_.final_cmp_kind = ArchEffects::CmpKind::kConcrete;
        break;
    }
    fx_.writes.reserve(written_.size());
    for (const WrittenLoc& w : written_) {
      ArchWrite aw;
      aw.kind = w.taint.kind;
      aw.loc = w.loc;
      aw.input = w.taint.input;
      aw.delta = w.taint.delta;
      if (aw.kind == ArchWrite::Kind::kConcrete) {
        aw.value = ValueOf(w.loc);
      }
      fx_.writes.push_back(aw);
    }
    CompactInputs();
    return std::move(fx_);
  }

 private:
  struct Taint {
    ArchWrite::Kind kind;
    int32_t input;   // kCopy/kAffine source
    uint64_t delta;  // kAffine offset from that input (wrapping)
  };
  struct WrittenLoc {
    Loc loc;
    Taint taint;
  };

  uint64_t ValueOf(const Loc& l) const {
    return l.kind == Loc::Kind::kReg ? cpu_->regs[l.addr] : mem_->Read(l.addr);
  }

  int FindWritten(const Loc& l) const {
    for (size_t i = 0; i < written_.size(); ++i) {
      if (written_[i].loc == l) {
        return static_cast<int>(i);
      }
    }
    return -1;
  }

  // Registers `l` as a section input, capturing its (pre-section)
  // value. Only valid while `l` has not been written by the section.
  int FindOrAddInput(const Loc& l) {
    for (size_t i = 0; i < fx_.inputs.size(); ++i) {
      if (fx_.inputs[i].loc == l) {
        return static_cast<int>(i);
      }
    }
    if (fx_.inputs.size() >= kMaxEntries) {
      fx_.cacheable = false;
      return -1;
    }
    fx_.inputs.push_back(ArchInput{l, ValueOf(l), false});
    return static_cast<int>(fx_.inputs.size()) - 1;
  }

  // The live value of `l` was consumed concretely: pin the input it
  // derives from (if any) so the fingerprint validates it.
  void RequireLoc(const Loc& l) {
    const int wi = FindWritten(l);
    if (wi >= 0) {
      const Taint& t = written_[wi].taint;
      if (t.kind != ArchWrite::Kind::kConcrete && t.input >= 0) {
        fx_.inputs[t.input].required = true;
      }
      return;  // kConcrete: deterministic given already-pinned inputs
    }
    const int idx = FindOrAddInput(l);
    if (idx >= 0) {
      fx_.inputs[idx].required = true;
    }
  }

  // Provenance of a data movement's source, before the write lands.
  Taint SourceTaint(const Loc& src, uint64_t affine_delta, bool affine) {
    Taint t;
    const int wi = FindWritten(src);
    if (wi >= 0) {
      t = written_[wi].taint;
    } else {
      const int idx = FindOrAddInput(src);
      if (idx < 0) {
        return Taint{ArchWrite::Kind::kConcrete, -1, 0};  // overflowed
      }
      t = Taint{ArchWrite::Kind::kCopy, idx, 0};
    }
    if (affine && t.kind == ArchWrite::Kind::kCopy) {
      t = Taint{ArchWrite::Kind::kAffine, t.input, affine_delta};
    } else if (affine && t.kind == ArchWrite::Kind::kAffine) {
      t.delta += affine_delta;
    }
    return t;
  }

  void ClaimPending(const Loc& src) {
    for (size_t i = pending_.size(); i-- > 0;) {
      if (pending_[i] == src) {
        pending_.erase(pending_.begin() + static_cast<ptrdiff_t>(i));
        return;
      }
    }
  }

  void PromotePending() {
    for (const Loc& l : pending_) {
      RequireLoc(l);
    }
    pending_.clear();
  }

  // Inputs that are neither pinned nor the source of a surviving
  // symbolic write (intermediate values a later write clobbered) are
  // dead weight on every replay — drop them and remap write indices.
  void CompactInputs() {
    std::vector<char> used(fx_.inputs.size(), 0);
    for (const ArchWrite& w : fx_.writes) {
      if (w.input >= 0) {
        used[static_cast<size_t>(w.input)] = 1;
      }
    }
    if (fx_.final_cmp_kind == ArchEffects::CmpKind::kSym && fx_.final_cmp_input >= 0) {
      used[static_cast<size_t>(fx_.final_cmp_input)] = 1;
    }
    std::vector<int32_t> remap(fx_.inputs.size(), -1);
    size_t kept = 0;
    for (size_t i = 0; i < fx_.inputs.size(); ++i) {
      if (fx_.inputs[i].required || used[i] != 0) {
        remap[i] = static_cast<int32_t>(kept);
        fx_.inputs[kept++] = fx_.inputs[i];
      }
    }
    fx_.inputs.resize(kept);
    for (ArchWrite& w : fx_.writes) {
      if (w.input >= 0) {
        w.input = remap[static_cast<size_t>(w.input)];
      }
    }
    if (fx_.final_cmp_kind == ArchEffects::CmpKind::kSym && fx_.final_cmp_input >= 0) {
      fx_.final_cmp_input = remap[static_cast<size_t>(fx_.final_cmp_input)];
    }
  }

  void SetTaint(const Loc& dst, const Taint& t) {
    const int wi = FindWritten(dst);
    if (wi >= 0) {
      written_[wi].taint = t;
      return;
    }
    if (written_.size() >= kMaxEntries) {
      fx_.cacheable = false;
      return;
    }
    written_.push_back(WrittenLoc{dst, t});
  }

  // Provenance of the current flags value, mirroring
  // ArchEffects::CmpKind but tracked live as compares/branches fire.
  enum class CmpState : uint8_t { kInitial, kConcrete, kSym };

  [[maybe_unused]] ThreadId thread_ = 0;
  const CpuState* cpu_ = nullptr;
  const Memory* mem_ = nullptr;
  Inner* inner_ = nullptr;
  ArchEffects fx_;
  std::vector<Loc> pending_;
  std::vector<WrittenLoc> written_;
  CmpState cmp_state_ = CmpState::kInitial;
  int32_t cmp_input_ = -1;
  uint64_t cmp_delta_ = 0;
  int64_t cmp_imm_ = 0;
  bool initial_cmp_read_ = false;
};

}  // namespace whodunit::vm

#endif  // SRC_VM_INTERPRETER_H_
