// MiniVM interpreter with a translation cache and instruction hooks.
//
// Mirrors how Whodunit uses its QEMU-derived emulator (paper §7.2):
// critical-section code is *emulated*, with every data movement
// reported to an observer (the flow detector); everything else runs
// "directly". Translation happens once per program and is cached —
// Table 3's three cost regimes (direct execution, translation +
// emulation, emulation from cache) fall directly out of this design.
//
// The execute loop is a template over the observer's concrete type
// (ExecuteWith). Instantiating it on a final observer class lets the
// compiler resolve every hook call statically — no vtable dispatch in
// the per-instruction path — and instantiating it on the NoObserver
// tag compiles the hook code out entirely (the direct-execution
// regime). The virtual-dispatch path survives as the
// ExecuteWith<InstructionObserver> instantiation behind Execute(), for
// callers that only hold the abstract interface. Retire bookkeeping is
// batched: opcodes that deliver no hooks (jumps, nop, halt — see
// kDeliversHooks) accumulate a pending count that is flushed as one
// OnRetireBatch call before the next hook-delivering instruction.
#ifndef SRC_VM_INTERPRETER_H_
#define SRC_VM_INTERPRETER_H_

#include <array>
#include <cassert>
#include <cstdint>
#include <type_traits>

#include "src/obs/metrics.h"
#include "src/util/robin_hood.h"
#include "src/vm/isa.h"
#include "src/vm/loc.h"
#include "src/vm/memory.h"

namespace whodunit::vm {

// Per-thread register file and flags.
struct CpuState {
  std::array<uint64_t, kNumRegs> regs{};
  int cmp = 0;  // sign of (lhs - rhs) from the last compare
};

// Receives the instruction-level events the flow-detection algorithm
// consumes. Default implementations ignore everything.
namespace internal {
inline int Sign(int64_t v) { return v < 0 ? -1 : (v > 0 ? 1 : 0); }
}  // namespace internal

class InstructionObserver {
 public:
  virtual ~InstructionObserver() = default;

  // A MOV-class data movement dst <- src.
  virtual void OnMov(ThreadId /*t*/, const Loc& /*dst*/, const Loc& /*src*/) {}
  // A non-MOV write: immediate store or arithmetic result.
  virtual void OnWriteValue(ThreadId /*t*/, const Loc& /*dst*/) {}
  // Any operand read (includes MOV sources and address bases).
  virtual void OnRead(ThreadId /*t*/, const Loc& /*src*/) {}
  virtual void OnLock(ThreadId /*t*/, uint64_t /*lock_id*/) {}
  virtual void OnUnlock(ThreadId /*t*/, uint64_t /*lock_id*/) {}
  // Fired after each instruction completes.
  virtual void OnRetire(ThreadId /*t*/) {}
  // `n` consecutive instructions retired with no intervening hook
  // deliveries. The interpreter batches hookless stretches (control
  // flow, nops) into one call; the default unrolls to OnRetire so
  // observers that count retires individually keep exact semantics.
  virtual void OnRetireBatch(ThreadId t, int64_t n) {
    for (int64_t i = 0; i < n; ++i) {
      OnRetire(t);
    }
  }
};

struct ExecResult {
  int64_t instructions = 0;
  // Guest cycles actually paid in the chosen mode. In kEmulate this
  // includes the one-time translation cost on a cache miss.
  int64_t guest_cycles = 0;
  // What the same run would have cost executed directly (for overhead
  // reporting).
  int64_t direct_cycles = 0;
  bool translated = false;  // true if this run paid translation
};

class Interpreter {
 public:
  enum class Mode {
    kDirect,   // native execution: no hooks, direct cost
    kEmulate,  // emulated execution: hooks delivered, emulation cost
  };

  // Tag type selecting the hookless instantiation of ExecuteWith: all
  // observer code compiles out. Pass observer = nullptr with it.
  struct NoObserver {
    void OnMov(ThreadId, const Loc&, const Loc&) {}
    void OnWriteValue(ThreadId, const Loc&) {}
    void OnRead(ThreadId, const Loc&) {}
    void OnLock(ThreadId, uint64_t) {}
    void OnUnlock(ThreadId, uint64_t) {}
    void OnRetireBatch(ThreadId, int64_t) {}
  };

  // Runs `program` to completion (Halt or falling off the end) on the
  // given thread's register state over `mem`. Aborts after max_steps
  // instructions as a runaway-loop guard. Dispatches to the hookless
  // instantiation when no hooks can fire, the virtual one otherwise.
  ExecResult Execute(const Program& program, ThreadId thread, CpuState& cpu, Memory& mem,
                     InstructionObserver* observer = nullptr, Mode mode = Mode::kEmulate,
                     int64_t max_steps = 1 << 20) {
    if (observer == nullptr || mode == Mode::kDirect) {
      return ExecuteWith<NoObserver>(program, thread, cpu, mem, nullptr, mode, max_steps);
    }
    return ExecuteWith(program, thread, cpu, mem, observer, mode, max_steps);
  }

  // The execute loop, statically bound to the observer's concrete
  // type. Calling this with a `final` observer class (e.g.
  // shm::FlowDetector) devirtualizes every hook call.
  template <typename Obs>
  ExecResult ExecuteWith(const Program& program, ThreadId thread, CpuState& cpu, Memory& mem,
                         Obs* observer, Mode mode = Mode::kEmulate,
                         int64_t max_steps = 1 << 20);

  // Drops all cached translations (as if the code cache were flushed).
  void FlushTranslationCache() { translated_.Clear(); }
  bool IsTranslated(uint64_t program_id) const { return translated_.Contains(program_id); }
  size_t translation_cache_size() const { return translated_.size(); }

  uint64_t translations_performed() const { return translations_performed_; }

 private:
  // Used as a set: presence of the program id means "translated".
  util::RobinHoodMap<uint64_t, uint8_t> translated_;
  uint64_t translations_performed_ = 0;

  // Self-observability handles, resolved once (see docs/METRICS.md).
  obs::Counter* obs_translations_ = &obs::Registry().GetCounter("vm.translations");
  obs::Counter* obs_cache_hits_ = &obs::Registry().GetCounter("vm.translation_cache_hits");
  obs::Counter* obs_emulated_ = &obs::Registry().GetCounter("vm.instructions_emulated");
  obs::Counter* obs_direct_ = &obs::Registry().GetCounter("vm.instructions_direct");
};

template <typename Obs>
ExecResult Interpreter::ExecuteWith(const Program& program, ThreadId thread, CpuState& cpu,
                                    Memory& mem, Obs* observer, Mode mode,
                                    int64_t max_steps) {
  constexpr bool kObserved = !std::is_same_v<Obs, NoObserver>;
  ExecResult result;

  const bool emulate = (mode == Mode::kEmulate);
  if (emulate) {
    // One translation-cache probe per Execute, hoisted out of the
    // instruction loop (translation state cannot change mid-run).
    if (translated_.Contains(program.id)) {
      obs_cache_hits_->Add();
    } else {
      // Translation pass: in the real system this decodes guest code
      // and emits a translated block; here the per-instruction cost
      // model stands in for that work. Paid once per program until the
      // cache is flushed.
      for (const Instruction& ins : program.code) {
        result.guest_cycles += TranslateCycles(ins.op);
      }
      translated_.Upsert(program.id, 1);
      ++translations_performed_;
      obs_translations_->Add();
      result.translated = true;
    }
  }

  // With Obs = NoObserver this is statically false and every hook
  // block below is dead code.
  const bool hooks = kObserved && emulate && observer != nullptr;
  // Cycle-cost table for the chosen mode, selected once.
  const int64_t* const cost = emulate ? kEmulateCycles : kDirectCycles;

  // Retires accumulated since the last hook delivery; flushed as one
  // batch before the next hook-delivering instruction so the observer
  // sees retire counts at exactly the points where they can matter.
  int64_t pending_retires = 0;
  const auto flush_retires = [&] {
    if (pending_retires > 0) {
      observer->OnRetireBatch(thread, pending_retires);
      pending_retires = 0;
    }
  };

  const auto ea = [&cpu](const MemRef& m) -> Addr {
    return cpu.regs[m.base] + static_cast<uint64_t>(m.disp);
  };
  const auto read_base = [&](const MemRef& m) {
    if (hooks) {
      observer->OnRead(thread, Loc::Reg(thread, m.base));
    }
  };

  int64_t pc = 0;
  const auto code_size = static_cast<int64_t>(program.code.size());
  while (pc >= 0 && pc < code_size) {
    if (result.instructions >= max_steps) {
      assert(false && "MiniVM runaway loop");
      break;
    }
    const Instruction& ins = program.code[pc];
    ++result.instructions;
    const int oi = static_cast<int>(ins.op);
    result.direct_cycles += kDirectCycles[oi];
    result.guest_cycles += cost[oi];
    int64_t next_pc = pc + 1;

    if (hooks && kDeliversHooks[oi]) {
      flush_retires();
    }

    switch (ins.op) {
      case Opcode::kMovRR:
        if (hooks) {
          observer->OnRead(thread, Loc::Reg(thread, ins.r2));
          observer->OnMov(thread, Loc::Reg(thread, ins.r1), Loc::Reg(thread, ins.r2));
        }
        cpu.regs[ins.r1] = cpu.regs[ins.r2];
        break;
      case Opcode::kMovRI:
        if (hooks) {
          observer->OnWriteValue(thread, Loc::Reg(thread, ins.r1));
        }
        cpu.regs[ins.r1] = static_cast<uint64_t>(ins.imm);
        break;
      case Opcode::kMovRM: {
        const Addr a = ea(ins.m1);
        if (hooks) {
          read_base(ins.m1);
          observer->OnRead(thread, Loc::Mem(a));
          observer->OnMov(thread, Loc::Reg(thread, ins.r1), Loc::Mem(a));
        }
        cpu.regs[ins.r1] = mem.Read(a);
        break;
      }
      case Opcode::kMovMR: {
        const Addr a = ea(ins.m1);
        if (hooks) {
          read_base(ins.m1);
          observer->OnRead(thread, Loc::Reg(thread, ins.r1));
          observer->OnMov(thread, Loc::Mem(a), Loc::Reg(thread, ins.r1));
        }
        mem.Write(a, cpu.regs[ins.r1]);
        break;
      }
      case Opcode::kMovMI: {
        const Addr a = ea(ins.m1);
        if (hooks) {
          read_base(ins.m1);
          observer->OnWriteValue(thread, Loc::Mem(a));
        }
        mem.Write(a, static_cast<uint64_t>(ins.imm));
        break;
      }
      case Opcode::kMovMM: {
        const Addr src = ea(ins.m2);
        const Addr dst = ea(ins.m1);
        if (hooks) {
          read_base(ins.m2);
          read_base(ins.m1);
          observer->OnRead(thread, Loc::Mem(src));
          observer->OnMov(thread, Loc::Mem(dst), Loc::Mem(src));
        }
        mem.Write(dst, mem.Read(src));
        break;
      }
      case Opcode::kAddRR:
        if (hooks) {
          observer->OnRead(thread, Loc::Reg(thread, ins.r1));
          observer->OnRead(thread, Loc::Reg(thread, ins.r2));
          observer->OnWriteValue(thread, Loc::Reg(thread, ins.r1));
        }
        cpu.regs[ins.r1] += cpu.regs[ins.r2];
        break;
      case Opcode::kAddRI:
      case Opcode::kSubRI:
      case Opcode::kMulRI: {
        if (hooks) {
          observer->OnRead(thread, Loc::Reg(thread, ins.r1));
          observer->OnWriteValue(thread, Loc::Reg(thread, ins.r1));
        }
        uint64_t& r = cpu.regs[ins.r1];
        if (ins.op == Opcode::kAddRI) {
          r += static_cast<uint64_t>(ins.imm);
        } else if (ins.op == Opcode::kSubRI) {
          r -= static_cast<uint64_t>(ins.imm);
        } else {
          r *= static_cast<uint64_t>(ins.imm);
        }
        break;
      }
      case Opcode::kIncM:
      case Opcode::kDecM:
      case Opcode::kAddMI: {
        const Addr a = ea(ins.m1);
        if (hooks) {
          read_base(ins.m1);
          observer->OnRead(thread, Loc::Mem(a));
          observer->OnWriteValue(thread, Loc::Mem(a));
        }
        uint64_t v = mem.Read(a);
        if (ins.op == Opcode::kIncM) {
          ++v;
        } else if (ins.op == Opcode::kDecM) {
          --v;
        } else {
          v += static_cast<uint64_t>(ins.imm);
        }
        mem.Write(a, v);
        break;
      }
      case Opcode::kCmpRI:
        if (hooks) {
          observer->OnRead(thread, Loc::Reg(thread, ins.r1));
        }
        cpu.cmp = internal::Sign(static_cast<int64_t>(cpu.regs[ins.r1]) - ins.imm);
        break;
      case Opcode::kCmpRR:
        if (hooks) {
          observer->OnRead(thread, Loc::Reg(thread, ins.r1));
          observer->OnRead(thread, Loc::Reg(thread, ins.r2));
        }
        cpu.cmp = internal::Sign(static_cast<int64_t>(cpu.regs[ins.r1]) -
                                 static_cast<int64_t>(cpu.regs[ins.r2]));
        break;
      case Opcode::kCmpMI: {
        const Addr a = ea(ins.m1);
        if (hooks) {
          read_base(ins.m1);
          observer->OnRead(thread, Loc::Mem(a));
        }
        cpu.cmp = internal::Sign(static_cast<int64_t>(mem.Read(a)) - ins.imm);
        break;
      }
      case Opcode::kJmp:
        next_pc = ins.target;
        break;
      case Opcode::kJe:
        if (cpu.cmp == 0) {
          next_pc = ins.target;
        }
        break;
      case Opcode::kJne:
        if (cpu.cmp != 0) {
          next_pc = ins.target;
        }
        break;
      case Opcode::kJl:
        if (cpu.cmp < 0) {
          next_pc = ins.target;
        }
        break;
      case Opcode::kJge:
        if (cpu.cmp >= 0) {
          next_pc = ins.target;
        }
        break;
      case Opcode::kLock:
        if (hooks) {
          observer->OnLock(thread, static_cast<uint64_t>(ins.imm));
        }
        break;
      case Opcode::kUnlock:
        if (hooks) {
          observer->OnUnlock(thread, static_cast<uint64_t>(ins.imm));
        }
        break;
      case Opcode::kNop:
        break;
      case Opcode::kHalt:
        next_pc = code_size;
        break;
    }

    if (hooks) {
      ++pending_retires;
    }
    pc = next_pc;
  }
  if (hooks) {
    flush_retires();
  }

  // Aggregated once per Execute so the per-instruction loop stays
  // free of instrumentation.
  (emulate ? obs_emulated_ : obs_direct_)->Add(static_cast<uint64_t>(result.instructions));
  return result;
}

}  // namespace whodunit::vm

#endif  // SRC_VM_INTERPRETER_H_
