#include "src/vm/interpreter.h"

namespace whodunit::vm {

// The execute loop lives in the header as the ExecuteWith template so
// callers can instantiate it on concrete observer types (devirtualized
// hooks). This TU pins the common instantiations so every other TU can
// link against them instead of re-instantiating.
template ExecResult Interpreter::ExecuteWith<InstructionObserver>(
    const Program&, ThreadId, CpuState&, Memory&, InstructionObserver*, Mode, int64_t);
template ExecResult Interpreter::ExecuteWith<Interpreter::NoObserver>(
    const Program&, ThreadId, CpuState&, Memory&, Interpreter::NoObserver*, Mode, int64_t);

}  // namespace whodunit::vm
