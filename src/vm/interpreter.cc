#include "src/vm/interpreter.h"

#include <cassert>

namespace whodunit::vm {
namespace {

int Sign(int64_t v) { return v < 0 ? -1 : (v > 0 ? 1 : 0); }

}  // namespace

ExecResult Interpreter::Execute(const Program& program, ThreadId thread, CpuState& cpu,
                                Memory& mem, InstructionObserver* observer, Mode mode,
                                int64_t max_steps) {
  ExecResult result;

  if (mode == Mode::kEmulate && translated_.contains(program.id)) {
    obs_cache_hits_->Add();
  }
  if (mode == Mode::kEmulate && !translated_.contains(program.id)) {
    // Translation pass: in the real system this decodes guest code and
    // emits a translated block; here the per-instruction cost model
    // stands in for that work. It is paid once per program until the
    // cache is flushed.
    for (const Instruction& ins : program.code) {
      result.guest_cycles += TranslateCycles(ins.op);
    }
    translated_.insert(program.id);
    ++translations_performed_;
    obs_translations_->Add();
    result.translated = true;
  }

  const bool hooks = (mode == Mode::kEmulate) && observer != nullptr;

  auto ea = [&cpu](const MemRef& m) -> Addr {
    return cpu.regs[m.base] + static_cast<uint64_t>(m.disp);
  };
  auto read_base = [&](const MemRef& m) {
    if (hooks) {
      observer->OnRead(thread, Loc::Reg(thread, m.base));
    }
  };

  int64_t pc = 0;
  const auto code_size = static_cast<int64_t>(program.code.size());
  while (pc >= 0 && pc < code_size) {
    if (result.instructions >= max_steps) {
      assert(false && "MiniVM runaway loop");
      break;
    }
    const Instruction& ins = program.code[pc];
    ++result.instructions;
    result.direct_cycles += DirectCycles(ins.op);
    if (mode == Mode::kEmulate) {
      result.guest_cycles += EmulateCycles(ins.op);
    } else {
      result.guest_cycles += DirectCycles(ins.op);
    }
    int64_t next_pc = pc + 1;

    switch (ins.op) {
      case Opcode::kMovRR:
        if (hooks) {
          observer->OnRead(thread, Loc::Reg(thread, ins.r2));
          observer->OnMov(thread, Loc::Reg(thread, ins.r1), Loc::Reg(thread, ins.r2));
        }
        cpu.regs[ins.r1] = cpu.regs[ins.r2];
        break;
      case Opcode::kMovRI:
        if (hooks) {
          observer->OnWriteValue(thread, Loc::Reg(thread, ins.r1));
        }
        cpu.regs[ins.r1] = static_cast<uint64_t>(ins.imm);
        break;
      case Opcode::kMovRM: {
        const Addr a = ea(ins.m1);
        if (hooks) {
          read_base(ins.m1);
          observer->OnRead(thread, Loc::Mem(a));
          observer->OnMov(thread, Loc::Reg(thread, ins.r1), Loc::Mem(a));
        }
        cpu.regs[ins.r1] = mem.Read(a);
        break;
      }
      case Opcode::kMovMR: {
        const Addr a = ea(ins.m1);
        if (hooks) {
          read_base(ins.m1);
          observer->OnRead(thread, Loc::Reg(thread, ins.r1));
          observer->OnMov(thread, Loc::Mem(a), Loc::Reg(thread, ins.r1));
        }
        mem.Write(a, cpu.regs[ins.r1]);
        break;
      }
      case Opcode::kMovMI: {
        const Addr a = ea(ins.m1);
        if (hooks) {
          read_base(ins.m1);
          observer->OnWriteValue(thread, Loc::Mem(a));
        }
        mem.Write(a, static_cast<uint64_t>(ins.imm));
        break;
      }
      case Opcode::kMovMM: {
        const Addr src = ea(ins.m2);
        const Addr dst = ea(ins.m1);
        if (hooks) {
          read_base(ins.m2);
          read_base(ins.m1);
          observer->OnRead(thread, Loc::Mem(src));
          observer->OnMov(thread, Loc::Mem(dst), Loc::Mem(src));
        }
        mem.Write(dst, mem.Read(src));
        break;
      }
      case Opcode::kAddRR:
        if (hooks) {
          observer->OnRead(thread, Loc::Reg(thread, ins.r1));
          observer->OnRead(thread, Loc::Reg(thread, ins.r2));
          observer->OnWriteValue(thread, Loc::Reg(thread, ins.r1));
        }
        cpu.regs[ins.r1] += cpu.regs[ins.r2];
        break;
      case Opcode::kAddRI:
      case Opcode::kSubRI:
      case Opcode::kMulRI: {
        if (hooks) {
          observer->OnRead(thread, Loc::Reg(thread, ins.r1));
          observer->OnWriteValue(thread, Loc::Reg(thread, ins.r1));
        }
        uint64_t& r = cpu.regs[ins.r1];
        if (ins.op == Opcode::kAddRI) {
          r += static_cast<uint64_t>(ins.imm);
        } else if (ins.op == Opcode::kSubRI) {
          r -= static_cast<uint64_t>(ins.imm);
        } else {
          r *= static_cast<uint64_t>(ins.imm);
        }
        break;
      }
      case Opcode::kIncM:
      case Opcode::kDecM:
      case Opcode::kAddMI: {
        const Addr a = ea(ins.m1);
        if (hooks) {
          read_base(ins.m1);
          observer->OnRead(thread, Loc::Mem(a));
          observer->OnWriteValue(thread, Loc::Mem(a));
        }
        uint64_t v = mem.Read(a);
        if (ins.op == Opcode::kIncM) {
          ++v;
        } else if (ins.op == Opcode::kDecM) {
          --v;
        } else {
          v += static_cast<uint64_t>(ins.imm);
        }
        mem.Write(a, v);
        break;
      }
      case Opcode::kCmpRI:
        if (hooks) {
          observer->OnRead(thread, Loc::Reg(thread, ins.r1));
        }
        cpu.cmp = Sign(static_cast<int64_t>(cpu.regs[ins.r1]) - ins.imm);
        break;
      case Opcode::kCmpRR:
        if (hooks) {
          observer->OnRead(thread, Loc::Reg(thread, ins.r1));
          observer->OnRead(thread, Loc::Reg(thread, ins.r2));
        }
        cpu.cmp =
            Sign(static_cast<int64_t>(cpu.regs[ins.r1]) - static_cast<int64_t>(cpu.regs[ins.r2]));
        break;
      case Opcode::kCmpMI: {
        const Addr a = ea(ins.m1);
        if (hooks) {
          read_base(ins.m1);
          observer->OnRead(thread, Loc::Mem(a));
        }
        cpu.cmp = Sign(static_cast<int64_t>(mem.Read(a)) - ins.imm);
        break;
      }
      case Opcode::kJmp:
        next_pc = ins.target;
        break;
      case Opcode::kJe:
        if (cpu.cmp == 0) {
          next_pc = ins.target;
        }
        break;
      case Opcode::kJne:
        if (cpu.cmp != 0) {
          next_pc = ins.target;
        }
        break;
      case Opcode::kJl:
        if (cpu.cmp < 0) {
          next_pc = ins.target;
        }
        break;
      case Opcode::kJge:
        if (cpu.cmp >= 0) {
          next_pc = ins.target;
        }
        break;
      case Opcode::kLock:
        if (hooks) {
          observer->OnLock(thread, static_cast<uint64_t>(ins.imm));
        }
        break;
      case Opcode::kUnlock:
        if (hooks) {
          observer->OnUnlock(thread, static_cast<uint64_t>(ins.imm));
        }
        break;
      case Opcode::kNop:
        break;
      case Opcode::kHalt:
        next_pc = code_size;
        break;
    }

    if (hooks) {
      observer->OnRetire(thread);
    }
    pc = next_pc;
  }

  // Aggregated once per Execute so the per-instruction loop stays
  // free of instrumentation.
  (mode == Mode::kEmulate ? obs_emulated_ : obs_direct_)
      ->Add(static_cast<uint64_t>(result.instructions));
  return result;
}

}  // namespace whodunit::vm
