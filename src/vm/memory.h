// Sparse 64-bit word memory for MiniVM guest code.
//
// One Memory instance is the shared address space of one simulated
// multithreaded process; all that process's guest programs (and all
// its simulated threads) read and write it.
#ifndef SRC_VM_MEMORY_H_
#define SRC_VM_MEMORY_H_

#include <cstdint>
#include <map>

#include "src/util/robin_hood.h"
#include "src/vm/loc.h"

namespace whodunit::vm {

class Memory {
 public:
  // Unwritten words read as zero (like freshly mapped pages).
  uint64_t Read(Addr a) const {
    const uint64_t* v = words_.Find(a);
    return v == nullptr ? 0 : *v;
  }

  void Write(Addr a, uint64_t v) { words_.Upsert(a, v); }

  // Hints the word's bucket line into cache. The section cache's
  // fingerprint sweep prefetches every memory input before probing so
  // the validation loop overlaps its misses.
  void Prefetch(Addr a) const { words_.Prefetch(a); }

  size_t footprint_words() const { return words_.size(); }

  // Sorted copy of all written words; for test comparisons and dumps.
  std::map<Addr, uint64_t> Snapshot() const {
    std::map<Addr, uint64_t> out;
    words_.ForEach([&out](const Addr& a, const uint64_t& v) { out.emplace(a, v); });
    return out;
  }

 private:
  util::RobinHoodMap<Addr, uint64_t> words_;
};

}  // namespace whodunit::vm

#endif  // SRC_VM_MEMORY_H_
