#include "src/vm/program_builder.h"

#include <cassert>
#include <utility>

#include "src/util/shard_state.h"

namespace whodunit::vm {
namespace {

// Thread-local + shard-registered for the same reason as sim's lock
// ids: program ids key the section cache, so a shard must allocate
// the same ids no matter which pool thread runs it.
uint64_t& ProgramIdCounter() {
  thread_local uint64_t next = 1;
  return next;
}

uint64_t NextProgramId() { return ProgramIdCounter()++; }

const util::ShardCounterRegistrar program_id_registrar{util::ShardCounter{
    []() { return ProgramIdCounter(); },
    [](uint64_t v) { ProgramIdCounter() = v; },
    1,
}};

}  // namespace

ProgramBuilder::ProgramBuilder(std::string name) : name_(std::move(name)) {}

ProgramBuilder& ProgramBuilder::Emit(Instruction ins) {
  code_.push_back(ins);
  return *this;
}

ProgramBuilder& ProgramBuilder::MovRR(uint8_t dst, uint8_t src) {
  return Emit({.op = Opcode::kMovRR, .r1 = dst, .r2 = src});
}
ProgramBuilder& ProgramBuilder::MovRI(uint8_t dst, int64_t imm) {
  return Emit({.op = Opcode::kMovRI, .r1 = dst, .imm = imm});
}
ProgramBuilder& ProgramBuilder::MovRM(uint8_t dst, uint8_t base, int64_t disp) {
  return Emit({.op = Opcode::kMovRM, .r1 = dst, .m1 = {base, disp}});
}
ProgramBuilder& ProgramBuilder::MovMR(uint8_t base, int64_t disp, uint8_t src) {
  return Emit({.op = Opcode::kMovMR, .r1 = src, .m1 = {base, disp}});
}
ProgramBuilder& ProgramBuilder::MovMI(uint8_t base, int64_t disp, int64_t imm) {
  return Emit({.op = Opcode::kMovMI, .m1 = {base, disp}, .imm = imm});
}
ProgramBuilder& ProgramBuilder::MovMM(uint8_t dst_base, int64_t dst_disp, uint8_t src_base,
                                      int64_t src_disp) {
  return Emit({.op = Opcode::kMovMM, .m1 = {dst_base, dst_disp}, .m2 = {src_base, src_disp}});
}
ProgramBuilder& ProgramBuilder::AddRR(uint8_t dst, uint8_t src) {
  return Emit({.op = Opcode::kAddRR, .r1 = dst, .r2 = src});
}
ProgramBuilder& ProgramBuilder::AddRI(uint8_t dst, int64_t imm) {
  return Emit({.op = Opcode::kAddRI, .r1 = dst, .imm = imm});
}
ProgramBuilder& ProgramBuilder::SubRI(uint8_t dst, int64_t imm) {
  return Emit({.op = Opcode::kSubRI, .r1 = dst, .imm = imm});
}
ProgramBuilder& ProgramBuilder::MulRI(uint8_t dst, int64_t imm) {
  return Emit({.op = Opcode::kMulRI, .r1 = dst, .imm = imm});
}
ProgramBuilder& ProgramBuilder::IncM(uint8_t base, int64_t disp) {
  return Emit({.op = Opcode::kIncM, .m1 = {base, disp}});
}
ProgramBuilder& ProgramBuilder::DecM(uint8_t base, int64_t disp) {
  return Emit({.op = Opcode::kDecM, .m1 = {base, disp}});
}
ProgramBuilder& ProgramBuilder::AddMI(uint8_t base, int64_t disp, int64_t imm) {
  return Emit({.op = Opcode::kAddMI, .m1 = {base, disp}, .imm = imm});
}
ProgramBuilder& ProgramBuilder::CmpRI(uint8_t reg, int64_t imm) {
  return Emit({.op = Opcode::kCmpRI, .r1 = reg, .imm = imm});
}
ProgramBuilder& ProgramBuilder::CmpRR(uint8_t a, uint8_t b) {
  return Emit({.op = Opcode::kCmpRR, .r1 = a, .r2 = b});
}
ProgramBuilder& ProgramBuilder::CmpMI(uint8_t base, int64_t disp, int64_t imm) {
  return Emit({.op = Opcode::kCmpMI, .m1 = {base, disp}, .imm = imm});
}
ProgramBuilder& ProgramBuilder::Nop() { return Emit({.op = Opcode::kNop}); }
ProgramBuilder& ProgramBuilder::Halt() { return Emit({.op = Opcode::kHalt}); }
ProgramBuilder& ProgramBuilder::Lock(uint64_t lock_id) {
  return Emit({.op = Opcode::kLock, .imm = static_cast<int64_t>(lock_id)});
}
ProgramBuilder& ProgramBuilder::Unlock(uint64_t lock_id) {
  return Emit({.op = Opcode::kUnlock, .imm = static_cast<int64_t>(lock_id)});
}

int ProgramBuilder::DefineLabel() {
  label_targets_.push_back(-1);
  return static_cast<int>(label_targets_.size()) - 1;
}

ProgramBuilder& ProgramBuilder::Bind(int label) {
  label_targets_[static_cast<size_t>(label)] = static_cast<int32_t>(code_.size());
  return *this;
}

ProgramBuilder& ProgramBuilder::EmitJump(Opcode op, int label) {
  fixups_.emplace_back(code_.size(), label);
  return Emit({.op = op});
}
ProgramBuilder& ProgramBuilder::Jmp(int label) { return EmitJump(Opcode::kJmp, label); }
ProgramBuilder& ProgramBuilder::Je(int label) { return EmitJump(Opcode::kJe, label); }
ProgramBuilder& ProgramBuilder::Jne(int label) { return EmitJump(Opcode::kJne, label); }
ProgramBuilder& ProgramBuilder::Jl(int label) { return EmitJump(Opcode::kJl, label); }
ProgramBuilder& ProgramBuilder::Jge(int label) { return EmitJump(Opcode::kJge, label); }

Program ProgramBuilder::Build() {
  for (const auto& [instr, label] : fixups_) {
    const int32_t target = label_targets_[static_cast<size_t>(label)];
    assert(target >= 0 && "jump to unbound label");
    code_[instr].target = target;
  }
  Program p;
  p.name = name_;
  p.code = std::move(code_);
  p.id = NextProgramId();
  return p;
}

}  // namespace whodunit::vm
