// Data locations, as seen by the shared-memory flow algorithm.
//
// Paper §3.2: "The union of the virtual address space and the name
// space of annotated registers is the complete name space of all
// locations where application data reside." A Loc names either a
// memory word or a (thread, register) pair.
#ifndef SRC_VM_LOC_H_
#define SRC_VM_LOC_H_

#include <cstdint>
#include <string>

namespace whodunit::vm {

using ThreadId = uint32_t;
using Addr = uint64_t;

struct Loc {
  enum class Kind : uint8_t { kMem, kReg };

  Kind kind;
  ThreadId thread;  // meaningful for registers only (reg_ti in the paper)
  uint64_t addr;    // memory address, or register number

  static Loc Mem(Addr a) { return Loc{Kind::kMem, 0, a}; }
  static Loc Reg(ThreadId t, uint8_t r) { return Loc{Kind::kReg, t, r}; }

  bool is_mem() const { return kind == Kind::kMem; }

  friend bool operator==(const Loc& a, const Loc& b) {
    if (a.kind != b.kind || a.addr != b.addr) {
      return false;
    }
    return a.kind == Kind::kMem || a.thread == b.thread;
  }

  std::string ToString() const {
    if (kind == Kind::kMem) {
      return "[" + std::to_string(addr) + "]";
    }
    return "r" + std::to_string(addr) + "@t" + std::to_string(thread);
  }
};

struct LocHash {
  size_t operator()(const Loc& l) const {
    uint64_t h = l.addr * 0x9e3779b97f4a7c15ull;
    h ^= static_cast<uint64_t>(l.kind) << 62;
    if (l.kind == Loc::Kind::kReg) {
      h ^= static_cast<uint64_t>(l.thread) * 0xbf58476d1ce4e5b9ull;
    }
    return static_cast<size_t>(h ^ (h >> 31));
  }
};

}  // namespace whodunit::vm

#endif  // SRC_VM_LOC_H_
