// Virtual time for the discrete-event simulator.
//
// All experiment timing in this reproduction is virtual: the simulator
// advances a nanosecond-resolution clock only when work is modelled.
// That makes every throughput/latency result deterministic and
// independent of the host machine (the paper's testbed is unavailable;
// see DESIGN.md §2).
#ifndef SRC_SIM_TIME_H_
#define SRC_SIM_TIME_H_

#include <cstdint>

namespace whodunit::sim {

// Nanoseconds of virtual time. Signed so that durations subtract
// naturally; 2^63 ns is ~292 years, far beyond any run.
using SimTime = int64_t;

constexpr SimTime Nanos(int64_t n) { return n; }
constexpr SimTime Micros(int64_t us) { return us * 1000; }
constexpr SimTime Millis(int64_t ms) { return ms * 1000000; }
constexpr SimTime Seconds(int64_t s) { return s * 1000000000; }

constexpr double ToMillis(SimTime t) { return static_cast<double>(t) / 1e6; }
constexpr double ToSeconds(SimTime t) { return static_cast<double>(t) / 1e9; }

}  // namespace whodunit::sim

#endif  // SRC_SIM_TIME_H_
