// Shard-parallel simulation with deterministic profile merge.
//
// A workload that decomposes into independent jobs — fig12's client-
// count sweep points, a fixed partition of a client population — can
// run each job as its own fully self-contained deployment: a private
// Scheduler, ContextTree arena, flow dictionaries, metrics registry,
// trace ring, and (optionally) live daemon. Nothing is shared between
// shards while they run, so shards are embarrassingly parallel; the
// only cross-shard step is the merge, and the merge runs serially on
// the caller's thread in canonical shard order.
//
// Determinism contract: the *logical* decomposition (how many jobs,
// what each simulates, each job's seed) is part of the workload
// definition and never depends on the thread count. Every job runs
// inside a fresh ShardEnv even when threads == 1, and the merge folds
// shard results in shard-index order, so the merged profile is
// byte-identical regardless of thread interleaving — and identical to
// a serial run of the same job list.
#ifndef SRC_SIM_PARALLEL_RUNNER_H_
#define SRC_SIM_PARALLEL_RUNNER_H_

#include <cstddef>
#include <memory>
#include <type_traits>
#include <utility>
#include <vector>

#include "src/context/context_tree.h"
#include "src/obs/live/symbol_table.h"
#include "src/obs/metrics.h"
#include "src/obs/trace.h"
#include "src/util/thread_pool.h"

namespace whodunit::sim {

// One shard's private process-globals: everything the profiler
// pipeline would otherwise reach through process-wide statics.
class ShardEnv {
 public:
  ShardEnv();
  ShardEnv(const ShardEnv&) = delete;
  ShardEnv& operator=(const ShardEnv&) = delete;

  obs::MetricsRegistry& metrics() { return *metrics_; }
  const obs::MetricsRegistry& metrics() const { return *metrics_; }
  obs::TraceLog& trace() { return *trace_; }
  context::ContextTree& context_tree() { return *tree_; }
  const context::ContextTree& context_tree() const { return *tree_; }
  obs::live::SymbolTable& symbols() { return *syms_; }
  const obs::live::SymbolTable& symbols() const { return *syms_; }

  // Installs this env as the calling thread's current metrics
  // registry, trace log, and context tree, and restarts the shard-
  // registered thread-local id allocators (lock ids, program ids)
  // from their fresh seeds. Restores everything on destruction.
  class Scope {
   public:
    explicit Scope(ShardEnv& env);
    ~Scope();
    Scope(const Scope&) = delete;
    Scope& operator=(const Scope&) = delete;

   private:
    std::vector<uint64_t> saved_counters_;
    obs::ScopedMetricsRegistry metrics_scope_;
    obs::ScopedTraceLog trace_scope_;
    context::ScopedContextTree tree_scope_;
    obs::live::ScopedSymbolTable syms_scope_;
  };

  // Folds this shard's metrics into `target` (counters and histogram
  // buckets add; gauges add). Call in canonical shard order for
  // byte-identical exports.
  void FoldMetricsInto(obs::MetricsRegistry& target) const;

 private:
  std::unique_ptr<obs::MetricsRegistry> metrics_;
  std::unique_ptr<obs::TraceLog> trace_;
  std::unique_ptr<context::ContextTree> tree_;
  // Per-shard symbol table: each shard interns its own SymIds; the
  // merge remaps them through SymbolTable::MergeFrom.
  std::unique_ptr<obs::live::SymbolTable> syms_;
};

// A completed shard: the job's result plus the env it ran in. The env
// is kept alive so merge steps that need the shard's ContextTree
// (NodeId remapping) can still reach it.
template <typename R>
struct ShardRun {
  R result{};
  std::unique_ptr<ShardEnv> env;
};

class ParallelRunner {
 public:
  // Runs `fn(shard_index, env)` for each shard on a pool of `threads`
  // workers (1 = inline, deterministic-serial). Each invocation runs
  // under its own ShardEnv::Scope. Returns the completed shards in
  // shard-index order — merge them in that order.
  //
  // `fn` must not throw; an escaping exception terminates the process
  // (it would otherwise unwind a pool worker).
  template <typename Fn>
  static auto Run(size_t shards, size_t threads, Fn&& fn) {
    using R = std::decay_t<decltype(fn(size_t{0}, std::declval<ShardEnv&>()))>;
    static_assert(std::is_default_constructible_v<R>,
                  "shard result type must be default-constructible");
    std::vector<ShardRun<R>> runs(shards);
    for (auto& run : runs) {
      run.env = std::make_unique<ShardEnv>();
    }
    util::ThreadPool pool(threads);
    for (size_t i = 0; i < shards; ++i) {
      pool.Submit([&runs, &fn, i] {
        ShardEnv::Scope scope(*runs[i].env);
        runs[i].result = fn(i, *runs[i].env);
      });
    }
    pool.Wait();
    return runs;
  }
};

}  // namespace whodunit::sim

#endif  // SRC_SIM_PARALLEL_RUNNER_H_
