#include "src/sim/scheduler.h"

#include <utility>

namespace whodunit::sim {

void Scheduler::ScheduleAt(SimTime t, Callback cb) {
  if (t < now_) {
    t = now_;
  }
  queue_.push(Item{t, next_seq_++, std::move(cb)});
}

void Scheduler::ScheduleAfter(SimTime dt, Callback cb) {
  ScheduleAt(now_ + (dt < 0 ? 0 : dt), std::move(cb));
}

void Scheduler::ResumeAt(SimTime t, std::coroutine_handle<> h) {
  ScheduleAt(t, [h] { h.resume(); });
}

void Scheduler::ResumeAfter(SimTime dt, std::coroutine_handle<> h) {
  ScheduleAfter(dt, [h] { h.resume(); });
}

void Scheduler::Run() {
  while (Step()) {
  }
}

void Scheduler::RunUntil(SimTime t) {
  while (!queue_.empty() && queue_.top().time <= t) {
    Step();
  }
  if (now_ < t) {
    now_ = t;
  }
}

bool Scheduler::Step() {
  if (queue_.empty()) {
    return false;
  }
  // Move the callback out before popping: the callback may schedule
  // new events, which can reallocate the heap's storage.
  Item item = std::move(const_cast<Item&>(queue_.top()));
  queue_.pop();
  now_ = item.time;
  ++events_executed_;
  item.cb();
  return true;
}

}  // namespace whodunit::sim
