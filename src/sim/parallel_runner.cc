#include "src/sim/parallel_runner.h"

#include "src/util/shard_state.h"

namespace whodunit::sim {

ShardEnv::ShardEnv()
    : metrics_(std::make_unique<obs::MetricsRegistry>()),
      trace_(std::make_unique<obs::TraceLog>()),
      syms_(std::make_unique<obs::live::SymbolTable>()) {
  // The ContextTree constructor registers its gauges with the current
  // metrics registry, so build it with this shard's registry installed
  // — regardless of which thread constructs the env.
  obs::ScopedMetricsRegistry scope(*metrics_);
  tree_ = std::make_unique<context::ContextTree>();
}

ShardEnv::Scope::Scope(ShardEnv& env)
    : saved_counters_(util::SaveShardCounters()),
      metrics_scope_(env.metrics()),
      trace_scope_(env.trace()),
      tree_scope_(env.context_tree()),
      syms_scope_(env.symbols()) {
  util::ResetShardCounters();
}

ShardEnv::Scope::~Scope() { util::RestoreShardCounters(saved_counters_); }

void ShardEnv::FoldMetricsInto(obs::MetricsRegistry& target) const {
  target.MergeFrom(metrics_->Snapshot());
}

}  // namespace whodunit::sim
