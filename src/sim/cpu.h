// CPU resources: where simulated work costs virtual time.
//
// Every stage (web server, proxy, database...) runs on a CpuResource
// with a fixed core count. Consuming S ns of service occupies one core
// for S ns; when all cores are busy, requests queue FIFO. Saturation of
// a stage's CPU is what produces the throughput plateaus in the
// reproduced Figures 11/12.
#ifndef SRC_SIM_CPU_H_
#define SRC_SIM_CPU_H_

#include <coroutine>
#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "src/sim/scheduler.h"
#include "src/sim/time.h"

namespace whodunit::sim {

class CpuResource {
 public:
  // A hook invoked for every Consume with the service cost actually
  // charged; the sampling profiler uses it to attribute CPU time to the
  // transaction context current at the call site.
  using ConsumeHook = std::function<void(SimTime cost)>;

  CpuResource(Scheduler& sched, int cores, std::string name = "cpu");

  CpuResource(const CpuResource&) = delete;
  CpuResource& operator=(const CpuResource&) = delete;

  // Awaitable: co_await cpu.Consume(cost). The awaiting process is
  // resumed once `cost` ns of service have been rendered (queueing
  // included). Zero/negative costs complete immediately.
  struct ConsumeAwaiter {
    CpuResource& cpu;
    SimTime cost;
    SimTime finish_at = 0;

    bool await_ready();
    void await_suspend(std::coroutine_handle<> h);
    void await_resume() const noexcept {}
  };
  ConsumeAwaiter Consume(SimTime cost) { return ConsumeAwaiter{*this, cost}; }

  void set_consume_hook(ConsumeHook hook) { hook_ = std::move(hook); }

  int cores() const { return static_cast<int>(core_free_.size()); }
  const std::string& name() const { return name_; }
  SimTime busy_time() const { return busy_; }
  uint64_t requests() const { return requests_; }

  // Fraction of capacity used over [0, window]; window must be > 0.
  double Utilization(SimTime window) const;

 private:
  friend struct ConsumeAwaiter;

  // Reserves a core: returns the finish time for `cost` ns of work
  // starting no earlier than now.
  SimTime Reserve(SimTime cost);

  Scheduler& sched_;
  std::string name_;
  std::vector<SimTime> core_free_;  // min-heap of core-available times
  SimTime busy_ = 0;
  uint64_t requests_ = 0;
  ConsumeHook hook_;
};

}  // namespace whodunit::sim

#endif  // SRC_SIM_CPU_H_
