#include "src/sim/ladder_queue.h"

namespace whodunit::sim {

void LadderQueue::Push(ScheduledEvent ev) {
  ++size_;
  if (size_ > stats_.peak_depth) {
    stats_.peak_depth = size_;
  }
  if (ev.time < bottom_limit_) {
    // Sorted insert. Every new event keys strictly greater than every
    // already-consumed one (time >= now, fresh seq), so the position
    // always lands at or after bottom_pos_.
    auto it = std::upper_bound(
        bottom_.begin() + static_cast<ptrdiff_t>(bottom_pos_), bottom_.end(),
        ev, [](const ScheduledEvent& a, const ScheduledEvent& b) {
          return EventBefore(a, b);
        });
    bottom_.insert(it, std::move(ev));
    if (ActiveBottom() > kBottomMax) {
      SpillBottomTail();
    }
    return;
  }
  PushToRungOrTop(std::move(ev));
}

void LadderQueue::PushToRungOrTop(ScheduledEvent&& ev) {
  // Finest (earliest-range) rung first: tier regions are contiguous,
  // so the first rung whose limit exceeds t owns it.
  for (auto r = rungs_.rbegin(); r != rungs_.rend(); ++r) {
    if (ev.time < r->limit) {
      size_t idx = static_cast<size_t>((ev.time - r->origin) / r->width);
      if (idx >= r->buckets.size()) {
        idx = r->buckets.size() - 1;
      }
      if (idx < r->cur) {
        idx = r->cur;  // defensive: never land in a drained bucket
      }
      r->buckets[idx].push_back(std::move(ev));
      return;
    }
  }
  if (top_.empty()) {
    top_min_ = top_max_ = ev.time;
  } else {
    top_min_ = std::min(top_min_, ev.time);
    top_max_ = std::max(top_max_, ev.time);
  }
  top_.push_back(std::move(ev));
  ++stats_.spills;
}

void LadderQueue::SpawnRung(SimTime origin, SimTime limit,
                            std::vector<ScheduledEvent> events) {
  Rung r;
  r.origin = origin;
  r.limit = limit;
  const SimTime span = limit - origin;  // >= 1 by construction
  r.width = (span + static_cast<SimTime>(kRungBuckets) - 1) /
            static_cast<SimTime>(kRungBuckets);
  if (r.width < 1) {
    r.width = 1;
  }
  const size_t nb = static_cast<size_t>((span + r.width - 1) / r.width);
  r.buckets.resize(nb);
  r.cur = 0;
  for (ScheduledEvent& ev : events) {
    size_t idx = static_cast<size_t>((ev.time - origin) / r.width);
    if (idx >= nb) {
      idx = nb - 1;
    }
    r.buckets[idx].push_back(std::move(ev));
  }
  rungs_.push_back(std::move(r));
  // The new rung is the finest tier above bottom: bottom's region now
  // ends where the rung begins.
  bottom_limit_ = origin;
  ++stats_.promotions;
}

void LadderQueue::SpillBottomTail() {
  if (rungs_.size() >= kMaxRungs) {
    return;  // graceful degradation: let bottom grow, stay correct
  }
  const size_t keep_end = bottom_pos_ + kBottomKeep;
  const SimTime limit = bottom_[keep_end].time;
  std::vector<ScheduledEvent> tail;
  tail.reserve(bottom_.size() - keep_end);
  for (size_t i = keep_end; i < bottom_.size(); ++i) {
    tail.push_back(std::move(bottom_[i]));
  }
  bottom_.resize(keep_end);
  const SimTime old_limit = bottom_limit_;
  if (old_limit == kVirginLimit) {
    // No structure above bottom yet: the shed tail becomes the top
    // tier and bottom's responsibility shrinks to [0, limit).
    bottom_limit_ = limit;
    for (ScheduledEvent& ev : tail) {
      if (top_.empty()) {
        top_min_ = top_max_ = ev.time;
      } else {
        top_min_ = std::min(top_min_, ev.time);
        top_max_ = std::max(top_max_, ev.time);
      }
      top_.push_back(std::move(ev));
      ++stats_.spills;
    }
    return;
  }
  // A tier already bounds the range at old_limit; slot a rung covering
  // exactly [limit, old_limit) between bottom and it. (Kept events at
  // time == limit stay in bottom with smaller seqs; they drain before
  // the rung is touched, so (time, seq) order is preserved.)
  SpawnRung(limit, old_limit, std::move(tail));
}

void LadderQueue::EnsureBottom() {
  while (bottom_pos_ == bottom_.size()) {
    bottom_.clear();
    bottom_pos_ = 0;
    if (!rungs_.empty()) {
      Rung& r = rungs_.back();
      while (r.cur < r.buckets.size() && r.buckets[r.cur].empty()) {
        ++r.cur;
      }
      if (r.cur == r.buckets.size()) {
        rungs_.pop_back();
        continue;
      }
      const size_t b = r.cur;
      std::vector<ScheduledEvent> events = std::move(r.buckets[b]);
      r.buckets[b].clear();
      r.cur = b + 1;
      const SimTime bs = r.origin + r.width * static_cast<SimTime>(b);
      const SimTime be = std::min(bs + r.width, r.limit);
      if (events.size() > kSortThreshold && r.width > 1 &&
          rungs_.size() < kMaxRungs) {
        // Over-full bucket: subdivide into a finer rung instead of
        // paying a big sort. Terminates because child width strictly
        // shrinks (width > 1).
        SpawnRung(bs, be, std::move(events));
        continue;
      }
      std::sort(events.begin(), events.end(),
                [](const ScheduledEvent& a, const ScheduledEvent& b2) {
                  return EventBefore(a, b2);
                });
      bottom_ = std::move(events);
      bottom_limit_ = be;
      ++stats_.refills;
      continue;
    }
    if (!top_.empty()) {
      SpawnRung(top_min_, top_max_ + 1, std::move(top_));
      top_.clear();
      continue;
    }
    // Fully drained: return to the virgin state where bottom owns the
    // whole time axis again.
    bottom_limit_ = kVirginLimit;
    return;
  }
}

const ScheduledEvent* LadderQueue::Peek() {
  if (size_ == 0) {
    return nullptr;
  }
  EnsureBottom();
  return &bottom_[bottom_pos_];
}

ScheduledEvent LadderQueue::Pop() {
  EnsureBottom();
  ScheduledEvent ev = std::move(bottom_[bottom_pos_]);
  ++bottom_pos_;
  --size_;
  // Reset a fully consumed bottom now rather than waiting for the next
  // EnsureBottom: Peek() short-circuits on an empty queue, so a
  // workload that repeatedly drains the calendar (the live daemon's
  // flush -> deliver -> idle cadence) would otherwise keep appending
  // to bottom_ behind an ever-advancing bottom_pos_ — unbounded growth
  // and a fresh allocation every capacity doubling.
  if (bottom_pos_ == bottom_.size()) {
    bottom_.clear();
    bottom_pos_ = 0;
  }
  return ev;
}

}  // namespace whodunit::sim
